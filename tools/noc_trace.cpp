// noc_trace — summarizes a Chrome trace_event JSON file recorded by the
// observability subsystem (noc_sim --trace / a scenario `trace` line).
//
// The writer emits one event per line (obs/trace.cpp), so this tool is a
// line scanner, not a JSON parser: it extracts the few fields it needs
// ("cat", "name", "ts", "args.site") with plain string matching and folds
// them into per-category and per-event counts, the cycle span, the
// busiest trace sites, and the trailing drop_accounting metadata the
// tracer appends (recorded/dropped per category — the completeness proof).
//
// Usage:
//   noc_trace [options] TRACE_FILE
//     --top N             show the N busiest sites (default 5)
//     --assert-no-drops   exit 2 when any ring dropped events (CI smoke:
//                         the default cap must hold a canonical run)
//     --quiet             suppress everything except assertion failures
//
// Exit status: 0 on success, 1 on I/O or format errors, 2 when
// --assert-no-drops found drops.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cli_common.h"
#include "obs/trace.h"
#include "util/table.h"

using namespace aethereal;

namespace {

struct CliOptions {
  std::string trace_path;
  std::int64_t top = 5;
  bool assert_no_drops = false;
  bool quiet = false;
};

void PrintUsage(std::ostream& os) {
  cli::PrintUsage(os, "noc_trace",
                  {"[--top N]", "[--assert-no-drops]", "[--quiet]",
                   "TRACE_FILE"});
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  cli::ArgReader args("noc_trace", argc, argv);
  while (args.Next()) {
    const std::string& arg = args.Arg();
    if (arg == "--top") {
      const auto parsed = args.U64Value("a site count >= 1", 1, 1000);
      if (!parsed.has_value()) return false;
      options->top = static_cast<std::int64_t>(*parsed);
    } else if (arg == "--assert-no-drops") {
      options->assert_no_drops = true;
    } else if (arg == "--quiet") {
      options->quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      PrintUsage(std::cout);
      std::exit(0);
    } else if (args.IsOption()) {
      std::cerr << "noc_trace: unknown option '" << arg << "'\n";
      return false;
    } else if (options->trace_path.empty()) {
      options->trace_path = arg;
    } else {
      std::cerr << "noc_trace: exactly one TRACE_FILE\n";
      return false;
    }
  }
  if (options->trace_path.empty()) {
    std::cerr << "noc_trace: no trace file given\n";
    PrintUsage(std::cerr);
    return false;
  }
  return true;
}

/// The value of `"key":"..."` on `line`; nullopt when the key is absent.
std::optional<std::string> StringField(const std::string& line,
                                       const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t begin = at + needle.size();
  const std::size_t end = line.find('"', begin);
  if (end == std::string::npos) return std::nullopt;
  return line.substr(begin, end - begin);
}

/// The value of `"key":N` on `line`; nullopt when absent or non-numeric.
std::optional<std::int64_t> IntField(const std::string& line,
                                     const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::size_t i = at + needle.size();
  bool negative = false;
  if (i < line.size() && line[i] == '-') {
    negative = true;
    ++i;
  }
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return std::nullopt;
  std::int64_t value = 0;
  for (; i < line.size() && line[i] >= '0' && line[i] <= '9'; ++i) {
    value = value * 10 + (line[i] - '0');
  }
  return negative ? -value : value;
}

struct CatTally {
  std::int64_t in_file = 0;   // event lines seen in the document
  std::int64_t recorded = 0;  // from drop_accounting
  std::int64_t dropped = 0;   // from drop_accounting
  std::map<std::string, std::int64_t> by_name;
};

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) return 1;

  std::ifstream in(options.trace_path);
  if (!in.good()) {
    std::cerr << "noc_trace: cannot open '" << options.trace_path << "'\n";
    return 1;
  }

  std::map<std::string, CatTally> cats;
  std::map<std::string, std::int64_t> site_events;
  std::int64_t total_events = 0;
  std::optional<Cycle> ts_min;
  Cycle ts_max = 0;
  bool saw_accounting = false;

  std::string line;
  while (std::getline(in, line)) {
    const auto cat = StringField(line, "cat");
    if (!cat.has_value()) continue;  // document framing lines
    if (*cat == "meta") {
      // The trailing drop_accounting event: per-category recorded/dropped.
      saw_accounting = true;
      for (int c = 0; c < obs::kNumTraceCats; ++c) {
        const char* name = obs::TraceCatName(static_cast<obs::TraceCat>(c));
        CatTally& tally = cats[name];
        tally.recorded = IntField(line, std::string(name) + "_recorded")
                             .value_or(tally.recorded);
        tally.dropped = IntField(line, std::string(name) + "_dropped")
                            .value_or(tally.dropped);
      }
      continue;
    }
    CatTally& tally = cats[*cat];
    ++tally.in_file;
    ++total_events;
    if (const auto name = StringField(line, "name"); name.has_value()) {
      ++tally.by_name[*name];
    }
    if (const auto ts = IntField(line, "ts"); ts.has_value()) {
      if (!ts_min.has_value() || *ts < *ts_min) ts_min = *ts;
      ts_max = std::max(ts_max, *ts);
    }
    if (const auto site = StringField(line, "site"); site.has_value()) {
      ++site_events[*site];
    }
  }

  if (total_events == 0 && !saw_accounting) {
    std::cerr << "noc_trace: '" << options.trace_path
              << "' holds no trace events (not a noc_sim trace?)\n";
    return 1;
  }

  std::int64_t total_dropped = 0;
  for (const auto& [name, tally] : cats) total_dropped += tally.dropped;

  if (!options.quiet) {
    std::cout << "=== trace " << options.trace_path << " (" << total_events
              << " events";
    if (ts_min.has_value()) {
      std::cout << ", cycles " << *ts_min << ".." << ts_max;
    }
    std::cout << ") ===\n";
    Table table({"category", "in file", "recorded", "dropped", "events"});
    for (const auto& [name, tally] : cats) {
      std::string names;
      for (const auto& [event, count] : tally.by_name) {
        if (!names.empty()) names += " ";
        names += event + ":" + std::to_string(count);
      }
      table.AddRow({name, Table::Fmt(tally.in_file),
                    Table::Fmt(tally.recorded), Table::Fmt(tally.dropped),
                    names});
    }
    table.Print(std::cout);
    if (!saw_accounting) {
      std::cout << "warning: no drop_accounting event (truncated trace?)\n";
    }
    if (!site_events.empty()) {
      // Busiest sites by event count; ties break alphabetically so the
      // summary is deterministic.
      std::vector<std::pair<std::string, std::int64_t>> busiest(
          site_events.begin(), site_events.end());
      std::stable_sort(busiest.begin(), busiest.end(),
                       [](const auto& a, const auto& b) {
                         return a.second > b.second;
                       });
      if (static_cast<std::int64_t>(busiest.size()) > options.top) {
        busiest.resize(static_cast<std::size_t>(options.top));
      }
      Table sites({"site", "events"});
      for (const auto& [site, count] : busiest) {
        sites.AddRow({site, Table::Fmt(count)});
      }
      std::cout << "busiest sites:\n";
      sites.Print(std::cout);
    }
  }

  if (options.assert_no_drops) {
    if (!saw_accounting) {
      std::cerr << "noc_trace: --assert-no-drops: no drop_accounting event "
                   "in '"
                << options.trace_path << "'\n";
      return 2;
    }
    if (total_dropped > 0) {
      std::cerr << "noc_trace: --assert-no-drops: " << total_dropped
                << " event(s) dropped (raise the trace cap)\n";
      return 2;
    }
    if (!options.quiet) std::cout << "no dropped events\n";
  }
  return 0;
}
