// noc_sweep — parallel parameter sweeps over scenario specs.
//
// Expands one or more .swp sweep specs (see src/sweep/spec.h for the
// format) into a cartesian job grid, runs every point as an independent
// ScenarioRunner on a work-stealing thread pool, and emits deterministic
// sweep JSON / CSV — byte-identical for any --jobs value.
//
// Usage:
//   noc_sweep [options] SWEEP_FILE...
//     --jobs N            worker threads (default: all hardware threads)
//     -o FILE             write sweep JSON to FILE (several sweeps: an
//                         array). '-' writes JSON to stdout.
//     --csv FILE          write the per-point CSV (single sweep only)
//     --curve PARAM       with --csv: emit the latency–throughput curve
//                         keyed on axis PARAM instead of the point table
//     --axis PARAM=V1,V2,...  add or replace an axis from the command
//                         line (repeatable). PARAM accepts the same gN.
//                         directive scoping and pN. phase scoping
//                         (pN.duration / pN.warmup of phased bases) as
//                         the .swp grammar (src/sweep/spec.h)
//     --verify            arm the guarantee-verification layer in every
//                         grid point and saturation probe; any violation
//                         fails the sweep
//     --engine E          override the base scenario's engine (naive |
//                         optimized | soa) for every point
//     --threads N         override the base's engine thread count for
//                         every point (N > 1 needs the soa engine)
//     --seed N            override the base scenario's RNG seed
//     --fault FILE        arm the fault models from a fault file in every
//                         grid point (replaces the base's fault block)
//     --converge E        arm stop-on-convergence mode (DESIGN.md §14) in
//                         every grid point: each point runs until its
//                         batch-means latency CI reaches relative error E.
//                         Tunables: --converge-conf C,
//                         --converge-max-duration D, --converge-interval I,
//                         --converge-batches B
//     --validate          expand and fully validate every grid point
//                         (parse + pattern + wiring) without running
//     --quiet             suppress the human-readable summary
//
// Exit status: 0 on success, 1 on parse/validate/run failure, 3 when a
// grid point timed out on a bounded wait, 4 when a grid point exhausted
// its config retry budget.
#include <algorithm>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cli_common.h"
#include "fault/spec.h"
#include "scenario/inspect.h"
#include "sweep/runner.h"
#include "sweep/spec.h"
#include "util/table.h"

using namespace aethereal;

namespace {

struct CliOptions {
  cli::CommonOptions common;
  std::vector<std::string> sweep_paths;
  std::string csv_path;    // empty: no CSV output
  std::string curve_param; // empty: point CSV
  std::vector<std::pair<std::string, std::string>> axis_overrides;
  int jobs = 0;            // 0: hardware concurrency
  bool validate = false;
  bool quiet = false;
};

void PrintUsage(std::ostream& os) {
  cli::PrintUsage(os, "noc_sweep",
                  {"[--jobs N]", "[-o FILE]", "[--csv FILE]",
                   "[--curve PARAM]", "[--axis PARAM=V1,V2,...]",
                   "[--verify]",
                   std::string("[--engine ") + sim::kEngineKindChoices + "]",
                   "[--threads N]", "[--seed N]", "[--fault FILE]",
                   "[--converge E]",
                   "[--converge-conf C]", "[--converge-max-duration D]",
                   "[--converge-interval I]", "[--converge-batches B]",
                   "[--validate]", "[--quiet]", "SWEEP_FILE..."});
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  cli::ArgReader args("noc_sweep", argc, argv);
  while (args.Next()) {
    switch (cli::MatchCommonArg(args, &options->common)) {
      case cli::Match::kYes:
        continue;
      case cli::Match::kError:
        return false;
      case cli::Match::kNo:
        break;
    }
    const std::string& arg = args.Arg();
    if (arg == "--csv") {
      const char* v = args.Value();
      if (v == nullptr) return false;
      options->csv_path = v;
    } else if (arg == "--curve") {
      const char* v = args.Value();
      if (v == nullptr) return false;
      options->curve_param = v;
    } else if (arg == "--jobs") {
      const auto parsed = args.U64Value("an integer in [1, 1024]", 1, 1024);
      if (!parsed.has_value()) return false;
      options->jobs = static_cast<int>(*parsed);
    } else if (arg == "--axis") {
      const char* v = args.Value();
      if (v == nullptr) return false;
      const std::string spec = v;
      const auto eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::cerr << "noc_sweep: --axis needs PARAM=V1,V2,..., got '" << spec
                  << "'\n";
        return false;
      }
      options->axis_overrides.emplace_back(spec.substr(0, eq),
                                           spec.substr(eq + 1));
    } else if (arg == "--validate") {
      options->validate = true;
    } else if (arg == "--quiet") {
      options->quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      PrintUsage(std::cout);
      std::exit(0);
    } else if (args.IsOption()) {
      std::cerr << "noc_sweep: unknown option '" << arg << "'\n";
      return false;
    } else {
      options->sweep_paths.push_back(arg);
    }
  }
  if (options->sweep_paths.empty()) {
    std::cerr << "noc_sweep: no sweep spec given\n";
    PrintUsage(std::cerr);
    return false;
  }
  if (!options->csv_path.empty() && options->sweep_paths.size() > 1) {
    std::cerr << "noc_sweep: --csv takes exactly one sweep spec\n";
    return false;
  }
  if (!options->curve_param.empty() && options->csv_path.empty()) {
    std::cerr << "noc_sweep: --curve needs --csv FILE\n";
    return false;
  }
  if (options->common.output_path == "-") options->quiet = true;
  return true;
}

/// Folds --axis PARAM=V1,V2,... overrides into the parsed sweep,
/// replacing an existing axis on the same parameter or appending a new
/// one. Values are validated exactly like file axes.
Status ApplyAxisOverrides(const CliOptions& options, sweep::SweepSpec* spec) {
  for (const auto& [name, csv_values] : options.axis_overrides) {
    auto param = sweep::ParseParamRef(name);
    if (!param.ok()) return param.status();
    sweep::Axis axis;
    axis.param = *param;
    std::istringstream values(csv_values);
    std::string token;
    while (std::getline(values, token, ',')) {
      if (token.empty()) continue;
      if (Status s = sweep::ValidateAxisValue(*param, token, spec->base);
          !s.ok()) {
        return Status(s.code(), "--axis " + name + " value '" + token +
                                    "': " + s.message());
      }
      axis.values.push_back(token);
    }
    if (axis.values.empty()) {
      return InvalidArgumentError("--axis " + name + " has no values");
    }
    if (spec->saturation.enabled && axis.param == spec->saturation.param) {
      return InvalidArgumentError("--axis " + name +
                                  " collides with the saturate parameter");
    }
    bool replaced = false;
    for (sweep::Axis& existing : spec->axes) {
      if (existing.param == axis.param) {
        existing.values = axis.values;
        replaced = true;
      }
    }
    if (!replaced) spec->axes.push_back(std::move(axis));
  }
  return OkStatus();
}

/// --validate: materialize and fully wire every grid point. Catches the
/// cross-axis combinations the per-axis parse-time checks cannot.
int ValidateSweep(const std::string& path, const sweep::SweepSpec& spec,
                  bool quiet) {
  const auto grid = sweep::ExpandGrid(spec);
  int failures = 0;
  for (const sweep::GridPoint& point : grid) {
    auto materialized = sweep::MaterializePoint(spec, point);
    if (materialized.ok()) {
      auto inspection =
          scenario::InspectScenario(*materialized, /*wire=*/true);
      if (inspection.ok()) continue;
      std::cerr << "noc_sweep: " << path << " point " << point.index << ": "
                << inspection.status() << "\n";
    } else {
      std::cerr << "noc_sweep: " << path << ": " << materialized.status()
                << "\n";
    }
    ++failures;
  }
  if (!quiet) {
    std::cout << path << ": " << spec.name << ", " << grid.size()
              << " grid points"
              << (spec.saturation.enabled ? " (saturation search)" : "")
              << ", " << (grid.size() - static_cast<std::size_t>(failures))
              << " valid\n";
  }
  return failures;
}

void PrintSummary(const sweep::SweepResult& result) {
  std::cout << "=== sweep " << result.spec.name << " ("
            << result.points.size() << " points) ===\n";
  if (result.spec.saturation.enabled) {
    Table table({"point", "params", "saturation", "probes"});
    for (const auto& point : result.points) {
      std::string params;
      for (std::size_t a = 0; a < result.spec.axes.size(); ++a) {
        if (!params.empty()) params += " ";
        params += result.spec.axes[a].param.Name() + "=" + point.values[a];
      }
      table.AddRow({std::to_string(point.index),
                    params.empty() ? "-" : params,
                    point.saturation.feasible
                        ? point.saturation.value_label
                        : "< " + point.saturation.value_label,
                    std::to_string(point.saturation.probes.size())});
    }
    table.Print(std::cout);
  } else {
    Table table({"point", "params", "offered", "delivered", "lat mean",
                 "lat p99", "util"});
    for (const auto& point : result.points) {
      std::string params;
      for (std::size_t a = 0; a < result.spec.axes.size(); ++a) {
        if (!params.empty()) params += " ";
        params += result.spec.axes[a].param.Name() + "=" + point.values[a];
      }
      table.AddRow({std::to_string(point.index),
                    params.empty() ? "-" : params,
                    Table::Fmt(point.all.offered_wpc, 4),
                    Table::Fmt(point.all.throughput_wpc, 4),
                    point.all.latency_count > 0
                        ? Table::Fmt(point.all.latency_mean, 1)
                        : "-",
                    point.all.latency_count > 0
                        ? Table::Fmt(point.all.latency_p99, 0)
                        : "-",
                    Table::Fmt(100.0 * point.slot_utilization, 1) + "%"});
    }
    table.Print(std::cout);
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) return 1;
  const int jobs =
      options.jobs > 0
          ? options.jobs
          : static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));

  std::optional<fault::FaultSpec> fault_override;
  if (!options.common.fault_path.empty()) {
    fault_override =
        cli::LoadFaultOverride("noc_sweep", options.common.fault_path);
    if (!fault_override.has_value()) return 1;
  }

  int validate_failures = 0;
  std::vector<std::string> jsons;
  for (const std::string& path : options.sweep_paths) {
    auto spec = sweep::LoadSweepFile(path);
    if (!spec.ok()) {
      std::cerr << "noc_sweep: " << spec.status() << "\n";
      // --validate keeps going so one bad sweep doesn't mask the next
      // one's problems (mirrors noc_sim --validate).
      if (!options.validate) return 1;
      ++validate_failures;
      continue;
    }
    if (Status s = ApplyAxisOverrides(options, &*spec); !s.ok()) {
      std::cerr << "noc_sweep: " << path << ": " << s << "\n";
      if (!options.validate) return 1;
      ++validate_failures;
      continue;
    }
    // Materialized points copy the base spec, so these overrides reach
    // every grid point and saturation probe.
    if (options.common.verify) spec->base.verify = true;
    if (!cli::ApplyEngineOverrides("noc_sweep", options.common,
                                   &spec->base)) {
      if (!options.validate) return 1;
      ++validate_failures;
      continue;
    }
    if (options.common.seed) spec->base.seed = *options.common.seed;
    if (!cli::ApplyConvergeOverrides("noc_sweep", options.common,
                                     &spec->base)) {
      if (!options.validate) return 1;
      ++validate_failures;
      continue;
    }
    if (fault_override.has_value()) {
      if (!cli::FaultOverrideApplies("noc_sweep", options.common.fault_path,
                                     *fault_override, spec->base, path)) {
        if (!options.validate) return 1;
        ++validate_failures;
        continue;
      }
      spec->base.fault = fault_override;
    }

    if (options.validate) {
      validate_failures += ValidateSweep(path, *spec, options.quiet);
      continue;
    }

    sweep::SweepRunner runner(std::move(*spec));
    auto result = runner.Run(jobs);
    if (!result.ok()) {
      std::cerr << "noc_sweep: " << path << ": " << result.status() << "\n";
      return cli::ExitCodeOf(result.status());
    }
    if (!options.quiet) PrintSummary(*result);
    jsons.push_back(result->ToJson());

    if (!options.csv_path.empty()) {
      std::string csv;
      if (options.curve_param.empty()) {
        csv = result->ToCsv();
      } else {
        auto curve = result->ToCurveCsv(options.curve_param);
        if (!curve.ok()) {
          std::cerr << "noc_sweep: " << path << ": " << curve.status()
                    << "\n";
          return 1;
        }
        csv = *curve;
      }
      if (!cli::WriteOutput("noc_sweep", options.csv_path, csv,
                            options.quiet)) {
        return 1;
      }
    }
  }
  if (options.validate) return validate_failures == 0 ? 0 : 1;

  if (!options.common.output_path.empty()) {
    if (!cli::WriteOutput("noc_sweep", options.common.output_path,
                          cli::JoinJsonDocuments(jsons), options.quiet)) {
      return 1;
    }
  }
  return 0;
}
