// Shared CLI layer of the NoC tools (noc_sim, noc_sweep, noc_verify).
//
// The three tools are front-ends over the same scenario stack and must
// speak the same dialect: one --engine grammar (the sim::EngineKind
// choices), one --verify / --fault / --seed / -o surface, one usage
// formatter, and one failure-to-exit-code mapping. This header is that
// dialect; each tool keeps only its genuinely tool-specific flags.
//
// Structure:
//  * ArgReader       — argv cursor with the shared "needs a value"
//                      diagnostics and checked integer parsing;
//  * CommonOptions   — the flags every tool accepts, filled by
//                      MatchCommonArg() from inside the tool's arg loop
//                      (tri-state: matched / no match / error);
//  * PrintUsage      — the one usage formatter (wrapped, aligned);
//  * ExitCodeOf      — consistent exit codes: 0 success, 1 generic
//                      failure, 3 bounded-wait expiry, 4 retry budget
//                      exhausted;
//  * fault helpers   — --fault file loading and the phased-scenario
//                      applicability rule, with shared diagnostics;
//  * output helpers  — result-document assembly ('-' streams to stdout;
//                      several documents form a JSON array).
#ifndef AETHEREAL_TOOLS_CLI_COMMON_H
#define AETHEREAL_TOOLS_CLI_COMMON_H

#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "fault/spec.h"
#include "scenario/spec.h"
#include "sim/engine.h"
#include "util/parse.h"
#include "util/status.h"

namespace aethereal::cli {

/// Cursor over argv. Owns the shared diagnostics so every tool reports
/// missing or malformed option values with identical wording.
class ArgReader {
 public:
  ArgReader(const char* prog, int argc, char** argv)
      : prog_(prog), argc_(argc), argv_(argv) {}

  const char* prog() const { return prog_; }

  /// Advances to the next argument; false when argv is exhausted.
  bool Next() {
    if (index_ + 1 >= argc_) return false;
    arg_ = argv_[++index_];
    return true;
  }

  /// The current argument.
  const std::string& Arg() const { return arg_; }

  /// True when the current argument looks like an option.
  bool IsOption() const { return !arg_.empty() && arg_[0] == '-'; }

  /// Consumes the next argument as the current option's value; nullptr
  /// (with the shared diagnostic) when argv is exhausted.
  const char* Value() {
    if (index_ + 1 >= argc_) {
      std::cerr << prog_ << ": " << arg_ << " needs a value\n";
      return nullptr;
    }
    return argv_[++index_];
  }

  /// Value() parsed as an unsigned integer in [min, max]; nullopt (with a
  /// diagnostic naming `what`) on anything else.
  std::optional<std::uint64_t> U64Value(
      const char* what, std::uint64_t min = 0,
      std::uint64_t max = std::numeric_limits<std::uint64_t>::max()) {
    const char* v = Value();
    if (v == nullptr) return std::nullopt;
    const auto parsed = ParseU64(v);
    if (!parsed || *parsed < min || *parsed > max) {
      std::cerr << prog_ << ": " << arg_ << " needs " << what << ", got '"
                << v << "'\n";
      return std::nullopt;
    }
    return parsed;
  }

  /// Value() parsed as a double in the OPEN interval (lo, hi); nullopt
  /// (with a diagnostic naming `what`) on anything else.
  std::optional<double> F64Value(const char* what, double lo, double hi) {
    const char* v = Value();
    if (v == nullptr) return std::nullopt;
    const auto parsed = ParseF64(v);
    if (!parsed || *parsed <= lo || *parsed >= hi) {
      std::cerr << prog_ << ": " << arg_ << " needs " << what << ", got '"
                << v << "'\n";
      return std::nullopt;
    }
    return parsed;
  }

 private:
  const char* prog_;
  int argc_;
  char** argv_;
  int index_ = 0;
  std::string arg_;
};

/// The option surface every tool shares. Tools interpret the fields
/// through their own semantics (e.g. `seed` overrides the scenario seed in
/// noc_sim / noc_sweep but seeds the fuzz batches in noc_verify); the
/// grammar and diagnostics are identical everywhere.
struct CommonOptions {
  std::optional<sim::EngineKind> engine;  // --engine (one specific engine)
  bool engine_all = false;                // --engine all (cross-check mode)
  std::optional<unsigned> threads;        // --threads N (soa only)
  bool verify = false;                    // --verify
  std::string fault_path;                 // --fault FILE ("" = none)
  std::optional<std::uint64_t> seed;      // --seed N
  std::string output_path;                // -o/--output FILE ("" = none)

  /// Stop-on-convergence overrides (--converge REL_ERR arms the mode; the
  /// --converge-* flags tune it and require it). Applied on top of any
  /// in-file `converge` directive by ApplyConvergeOverrides().
  std::optional<double> converge_rel_err;        // --converge
  std::optional<double> converge_conf;           // --converge-conf
  std::optional<Cycle> converge_max_duration;    // --converge-max-duration
  std::optional<Cycle> converge_interval;        // --converge-interval
  std::optional<int> converge_batches;           // --converge-batches
};

enum class Match {
  kNo,     // not a common option; the tool's own loop handles it
  kYes,    // consumed (including any value)
  kError,  // consumed but malformed; diagnostics already printed
};

/// Applies the --engine / --threads overrides to a loaded spec. Each flag
/// overrides only its own half of the EngineConfig, so `--threads 4` on a
/// spec that says `engine soa` works without repeating the kind. Returns
/// false (with diagnostics) when the combination is invalid.
inline bool ApplyEngineOverrides(const char* prog,
                                 const CommonOptions& options,
                                 scenario::ScenarioSpec* spec) {
  if (options.engine.has_value()) spec->engine.kind = *options.engine;
  if (options.threads.has_value()) spec->engine.threads = *options.threads;
  if (const std::string error = sim::ValidateEngineConfig(spec->engine);
      !error.empty()) {
    std::cerr << prog << ": " << error << "\n";
    return false;
  }
  return true;
}

/// Matches the current argument of `args` against the common option set.
/// `allow_engine_all` admits `--engine all` (noc_verify's cross-check
/// mode, with `both` kept as a deprecated alias for one release).
inline Match MatchCommonArg(ArgReader& args, CommonOptions* out,
                            bool allow_engine_all = false) {
  const std::string& arg = args.Arg();
  if (arg == "-o" || arg == "--output") {
    const char* v = args.Value();
    if (v == nullptr) return Match::kError;
    out->output_path = v;
    return Match::kYes;
  }
  if (arg == "--engine") {
    const char* v = args.Value();
    if (v == nullptr) return Match::kError;
    const std::string engine = v;
    if (allow_engine_all && (engine == "all" || engine == "both")) {
      out->engine_all = true;
      out->engine.reset();
      return Match::kYes;
    }
    const auto parsed = sim::ParseEngineKind(engine);
    if (!parsed.has_value()) {
      std::cerr << args.prog() << ": --engine must be one of "
                << sim::kEngineKindChoices
                << (allow_engine_all ? "|all" : "") << ", got '" << engine
                << "'\n";
      return Match::kError;
    }
    out->engine = *parsed;
    out->engine_all = false;
    return Match::kYes;
  }
  if (arg == "--threads") {
    const auto parsed = args.U64Value("a thread count in [1, 64]", 1,
                                      sim::kMaxEngineThreads);
    if (!parsed.has_value()) return Match::kError;
    out->threads = static_cast<unsigned>(*parsed);
    return Match::kYes;
  }
  if (arg == "--verify") {
    out->verify = true;
    return Match::kYes;
  }
  if (arg == "--fault") {
    const char* v = args.Value();
    if (v == nullptr) return Match::kError;
    out->fault_path = v;
    return Match::kYes;
  }
  if (arg == "--seed") {
    const auto parsed = args.U64Value("a non-negative integer");
    if (!parsed.has_value()) return Match::kError;
    out->seed = *parsed;
    return Match::kYes;
  }
  if (arg == "--converge") {
    const auto parsed = args.F64Value("a relative error in (0, 1)", 0.0, 1.0);
    if (!parsed.has_value()) return Match::kError;
    out->converge_rel_err = *parsed;
    return Match::kYes;
  }
  if (arg == "--converge-conf") {
    const auto parsed =
        args.F64Value("a confidence level in (0.5, 1)", 0.5, 1.0);
    if (!parsed.has_value()) return Match::kError;
    out->converge_conf = *parsed;
    return Match::kYes;
  }
  if (arg == "--converge-max-duration") {
    const auto parsed =
        args.U64Value("a positive cycle count", 1, std::uint64_t{1} << 40);
    if (!parsed.has_value()) return Match::kError;
    out->converge_max_duration = static_cast<Cycle>(*parsed);
    return Match::kYes;
  }
  if (arg == "--converge-interval") {
    const auto parsed =
        args.U64Value("a positive cycle count", 1, std::uint64_t{1} << 40);
    if (!parsed.has_value()) return Match::kError;
    out->converge_interval = static_cast<Cycle>(*parsed);
    return Match::kYes;
  }
  if (arg == "--converge-batches") {
    const auto parsed = args.U64Value("a batch count in [2, 4096]", 2, 4096);
    if (!parsed.has_value()) return Match::kError;
    out->converge_batches = static_cast<int>(*parsed);
    return Match::kYes;
  }
  return Match::kNo;
}

/// Applies the CLI convergence overrides to a spec. --converge arms the
/// mode (or tightens an in-file `converge` directive); the tuning flags
/// require the mode to be armed — by either surface — because silently
/// ignoring them would misreport error bars. Returns false with
/// diagnostics on that misuse.
inline bool ApplyConvergeOverrides(const char* prog,
                                   const CommonOptions& options,
                                   scenario::ScenarioSpec* spec) {
  if (options.converge_rel_err.has_value()) {
    spec->converge.enabled = true;
    spec->converge.rel_err = *options.converge_rel_err;
  }
  const bool tuning = options.converge_conf.has_value() ||
                      options.converge_max_duration.has_value() ||
                      options.converge_interval.has_value() ||
                      options.converge_batches.has_value();
  if (tuning && !spec->converge.enabled) {
    std::cerr << prog << ": --converge-* flags need convergence mode armed "
              << "(pass --converge REL_ERR or add a `converge` directive "
              << "to the spec)\n";
    return false;
  }
  if (options.converge_conf.has_value()) {
    spec->converge.conf = *options.converge_conf;
  }
  if (options.converge_max_duration.has_value()) {
    spec->converge.max_duration = *options.converge_max_duration;
  }
  if (options.converge_interval.has_value()) {
    spec->converge.interval = *options.converge_interval;
  }
  if (options.converge_batches.has_value()) {
    spec->converge.batches = *options.converge_batches;
  }
  return true;
}

/// The one usage formatter: "usage: PROG PIECE PIECE ...", wrapped at 78
/// columns with continuation lines aligned under the first piece.
inline void PrintUsage(std::ostream& os, const char* prog,
                       const std::vector<std::string>& pieces) {
  const std::string head = std::string("usage: ") + prog + " ";
  const std::string indent(head.size(), ' ');
  std::string line = head;
  bool line_has_piece = false;
  for (const std::string& piece : pieces) {
    if (line_has_piece && line.size() + 1 + piece.size() > 78) {
      os << line << "\n";
      line = indent;
      line_has_piece = false;
    }
    if (line_has_piece) line += " ";
    line += piece;
    line_has_piece = true;
  }
  os << line << "\n";
}

/// CLI exit code of a failed run: bounded-wait expiries and exhausted
/// retry budgets get their own codes so scripts can tell "the workload is
/// wedged" from "the spec is wrong" without parsing stderr.
inline int ExitCodeOf(const Status& status) {
  switch (status.code()) {
    case StatusCode::kTimeout:
      return 3;
    case StatusCode::kRetriesExhausted:
      return 4;
    default:
      return 1;
  }
}

/// Loads a --fault FILE override; nullopt (diagnostics printed) on error.
inline std::optional<fault::FaultSpec> LoadFaultOverride(
    const char* prog, const std::string& path) {
  auto loaded = fault::LoadFaultFile(path);
  if (!loaded.ok()) {
    std::cerr << prog << ": --fault " << path << ": " << loaded.status()
              << "\n";
    return std::nullopt;
  }
  return std::move(*loaded);
}

/// The applicability rule a fault override shares with in-file fault
/// blocks: config faults and the retry policy act on the runtime
/// configuration protocol, which only phased scenarios exercise. Returns
/// false (diagnostics printed, naming `label`) when the override cannot
/// arm `spec`.
inline bool FaultOverrideApplies(const char* prog,
                                 const std::string& fault_path,
                                 const fault::FaultSpec& fault,
                                 const scenario::ScenarioSpec& spec,
                                 const std::string& label) {
  if ((fault.AnyConfigFaults() || fault.retry.enabled) && !spec.Phased()) {
    std::cerr << prog << ": --fault " << fault_path << ": config faults "
              << "and the retry policy act on the runtime configuration "
              << "protocol, which only phased scenarios exercise ('" << label
              << "' is not phased)\n";
    return false;
  }
  return true;
}

/// Assembles the output document: a single result stays a bare object; a
/// batch becomes a JSON array of them.
inline std::string JoinJsonDocuments(const std::vector<std::string>& jsons) {
  if (jsons.size() == 1) return jsons.front();
  std::string document = "[\n";
  for (std::size_t i = 0; i < jsons.size(); ++i) {
    std::string entry = jsons[i];
    if (!entry.empty() && entry.back() == '\n') entry.pop_back();
    document += entry;
    document += i + 1 < jsons.size() ? ",\n" : "\n";
  }
  document += "]\n";
  return document;
}

/// Writes `content` to `path`; '-' streams to stdout. Returns false (with
/// diagnostics) on I/O failure; announces the file unless quiet.
inline bool WriteOutput(const char* prog, const std::string& path,
                        const std::string& content, bool quiet) {
  if (path == "-") {
    std::cout << content;
    return true;
  }
  std::ofstream out(path);
  out << content;
  out.flush();
  if (!out.good()) {
    std::cerr << prog << ": failed writing '" << path << "'\n";
    return false;
  }
  if (!quiet) std::cout << "wrote " << path << "\n";
  return true;
}

}  // namespace aethereal::cli

#endif  // AETHEREAL_TOOLS_CLI_COMMON_H
