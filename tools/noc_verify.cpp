// noc_verify — the guarantee-verification CLI.
//
// Runs scenario specs (and/or seeded random conformance configs) with the
// verification layer armed: the runtime invariant monitor (slot-table
// conformance, GT timing, flit integrity/ordering, credit conservation)
// plus the analytical GT throughput/latency bound checks. By default every
// workload runs on BOTH engines and the result JSON is compared
// byte-for-byte across them.
//
// Usage:
//   noc_verify [options] [SPEC_FILE...]
//     --engine E          optimized | naive | both     (default both)
//     --fuzz N            also run N seeded random conformance configs
//     --seed S            fuzz batch seed              (default 1)
//     --bounds            print the analytical GT bound table per workload
//     --quiet             only report failures
//
// Exit status: 0 when every run passed verified (and, with --engine both,
// every pair of runs agreed bit-for-bit); 1 otherwise.
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "scenario/runner.h"
#include "scenario/spec.h"
#include "util/parse.h"
#include "util/table.h"
#include "verify/fuzz.h"
#include "verify/monitor.h"

using namespace aethereal;

namespace {

struct CliOptions {
  std::vector<std::string> spec_paths;
  bool run_optimized = true;
  bool run_naive = true;
  int fuzz = 0;
  std::uint64_t seed = 1;
  bool bounds = false;
  bool quiet = false;
};

void PrintUsage(std::ostream& os) {
  os << "usage: noc_verify [--engine optimized|naive|both] [--fuzz N]\n"
        "                  [--seed S] [--bounds] [--quiet] [SPEC_FILE...]\n";
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "noc_verify: " << arg << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--engine") {
      const char* v = value();
      if (v == nullptr) return false;
      const std::string engine = v;
      if (engine == "optimized") {
        options->run_naive = false;
      } else if (engine == "naive") {
        options->run_optimized = false;
      } else if (engine != "both") {
        std::cerr << "noc_verify: --engine must be optimized, naive or "
                     "both\n";
        return false;
      }
    } else if (arg == "--fuzz" || arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return false;
      const auto parsed = ParseU64(v);
      if (!parsed) {
        std::cerr << "noc_verify: " << arg
                  << " needs a non-negative integer, got '" << v << "'\n";
        return false;
      }
      if (arg == "--fuzz") {
        if (*parsed > 1'000'000) {
          std::cerr << "noc_verify: --fuzz batch too large\n";
          return false;
        }
        options->fuzz = static_cast<int>(*parsed);
      } else {
        options->seed = *parsed;
      }
    } else if (arg == "--bounds") {
      options->bounds = true;
    } else if (arg == "--quiet") {
      options->quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      PrintUsage(std::cout);
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "noc_verify: unknown option '" << arg << "'\n";
      return false;
    } else {
      options->spec_paths.push_back(arg);
    }
  }
  if (options->spec_paths.empty() && options->fuzz == 0) {
    std::cerr << "noc_verify: nothing to do (no specs, no --fuzz)\n";
    PrintUsage(std::cerr);
    return false;
  }
  return true;
}

void PrintBounds(const std::string& label,
                 const std::vector<scenario::GtFlowBound>& bounds) {
  if (bounds.empty()) {
    std::cout << label << ": no GT flows\n";
    return;
  }
  std::cout << "=== GT bounds: " << label << " ===\n";
  Table table({"flow", "slots/stu", "max gap", "hops", "words/rot",
               "min w/cyc", "worst lat"});
  for (const scenario::GtFlowBound& flow : bounds) {
    table.AddRow({std::to_string(flow.src) + "->" + std::to_string(flow.dst),
                  std::to_string(flow.bound.slots) + "/" +
                      std::to_string(flow.bound.table_slots),
                  std::to_string(flow.bound.max_gap_slots),
                  std::to_string(flow.bound.hops),
                  Table::Fmt(flow.bound.words_per_rotation),
                  Table::Fmt(flow.bound.min_throughput_wpc, 4),
                  Table::Fmt(flow.bound.worst_case_latency)});
  }
  table.Print(std::cout);
}

/// Runs one workload verified on the selected engines; returns false on
/// any verification failure or cross-engine divergence.
bool RunWorkload(const CliOptions& options, scenario::ScenarioSpec spec,
                 const std::string& label) {
  spec.verify = true;
  if (options.bounds) {
    scenario::ScenarioRunner prober(spec);
    auto bounds = prober.ComputeGtBounds();
    if (!bounds.ok()) {
      std::cerr << "noc_verify: " << label << ": " << bounds.status() << "\n";
      return false;
    }
    PrintBounds(label, *bounds);
  }

  std::vector<std::pair<const char*, bool>> engines;
  if (options.run_optimized) engines.emplace_back("optimized", true);
  if (options.run_naive) engines.emplace_back("naive", false);

  std::vector<std::string> jsons;
  for (const auto& [engine_name, optimized] : engines) {
    spec.optimize_engine = optimized;
    scenario::ScenarioRunner runner(spec);
    auto result = runner.Run();
    if (!result.ok()) {
      std::cerr << "FAIL " << label << " (" << engine_name
                << "): " << result.status() << "\n";
      return false;
    }
    jsons.push_back(result->ToJson());
    if (!options.quiet) {
      const verify::Monitor* monitor = runner.soc()->monitor();
      std::cout << "PASS " << label << " (" << engine_name << "): "
                << (monitor != nullptr ? monitor->Describe()
                                       : std::string("no monitor"))
                << "\n";
    }
  }
  if (jsons.size() == 2 && jsons[0] != jsons[1]) {
    std::cerr << "FAIL " << label
              << ": optimized and naive engines disagree bit-for-bit\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) return 1;

  int failures = 0;
  for (const std::string& path : options.spec_paths) {
    auto spec = scenario::LoadScenarioFile(path);
    if (!spec.ok()) {
      std::cerr << "noc_verify: " << spec.status() << "\n";
      ++failures;
      continue;
    }
    if (!RunWorkload(options, *spec, path)) ++failures;
  }
  for (int i = 0; i < options.fuzz; ++i) {
    scenario::ScenarioSpec spec =
        verify::RandomConformanceSpec(options.seed, i);
    if (!RunWorkload(options, spec, spec.name)) ++failures;
  }
  if (failures > 0) {
    std::cerr << "noc_verify: " << failures << " workload(s) FAILED\n";
    return 1;
  }
  if (!options.quiet) {
    std::cout << "noc_verify: all "
              << options.spec_paths.size() + options.fuzz
              << " workload(s) passed verified\n";
  }
  return 0;
}
