// noc_verify — the guarantee-verification CLI.
//
// Runs scenario specs (and/or seeded random conformance configs) with the
// verification layer armed: the runtime invariant monitor (slot-table
// conformance, GT timing, flit integrity/ordering, credit conservation)
// plus the analytical GT throughput/latency bound checks. By default every
// workload runs on BOTH engines and the result JSON is compared
// byte-for-byte across them.
//
// Usage:
//   noc_verify [options] [SPEC_FILE...]
//     --engine E          optimized | naive | both     (default both)
//     --fuzz N            also run N seeded random conformance configs
//     --fault FILE        arm the fault models from a fault file in every
//                         SPEC_FILE workload (replaces the spec's own
//                         fault block); fault-induced guarantee shortfalls
//                         degrade instead of failing, unexplained
//                         violations still fail
//     --fault-fuzz N      also run N seeded random fault configs over
//                         stream-only random workloads (the resilience
//                         soak; DESIGN.md §12)
//     --seed S            fuzz / fault-fuzz batch seed (default 1)
//     --bounds            print the analytical GT bound table per workload
//     --quiet             only report failures
//
// Exit status: 0 when every run passed verified (and, with --engine both,
// every pair of runs agreed bit-for-bit); 3 when the worst failure was a
// bounded-wait expiry, 4 when a retry budget ran out, 1 otherwise.
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "fault/spec.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "util/parse.h"
#include "util/table.h"
#include "verify/fuzz.h"
#include "verify/monitor.h"

using namespace aethereal;

namespace {

struct CliOptions {
  std::vector<std::string> spec_paths;
  bool run_optimized = true;
  bool run_naive = true;
  int fuzz = 0;
  int fault_fuzz = 0;
  std::string fault_path;  // empty: no fault-file override
  std::uint64_t seed = 1;
  bool bounds = false;
  bool quiet = false;
};

void PrintUsage(std::ostream& os) {
  os << "usage: noc_verify [--engine optimized|naive|both] [--fuzz N]\n"
        "                  [--fault FILE] [--fault-fuzz N] [--seed S]\n"
        "                  [--bounds] [--quiet] [SPEC_FILE...]\n";
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "noc_verify: " << arg << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--engine") {
      const char* v = value();
      if (v == nullptr) return false;
      const std::string engine = v;
      if (engine == "optimized") {
        options->run_naive = false;
      } else if (engine == "naive") {
        options->run_optimized = false;
      } else if (engine != "both") {
        std::cerr << "noc_verify: --engine must be optimized, naive or "
                     "both\n";
        return false;
      }
    } else if (arg == "--fuzz" || arg == "--fault-fuzz" || arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return false;
      const auto parsed = ParseU64(v);
      if (!parsed) {
        std::cerr << "noc_verify: " << arg
                  << " needs a non-negative integer, got '" << v << "'\n";
        return false;
      }
      if (arg == "--seed") {
        options->seed = *parsed;
      } else {
        if (*parsed > 1'000'000) {
          std::cerr << "noc_verify: " << arg << " batch too large\n";
          return false;
        }
        (arg == "--fuzz" ? options->fuzz : options->fault_fuzz) =
            static_cast<int>(*parsed);
      }
    } else if (arg == "--fault") {
      const char* v = value();
      if (v == nullptr) return false;
      options->fault_path = v;
    } else if (arg == "--bounds") {
      options->bounds = true;
    } else if (arg == "--quiet") {
      options->quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      PrintUsage(std::cout);
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "noc_verify: unknown option '" << arg << "'\n";
      return false;
    } else {
      options->spec_paths.push_back(arg);
    }
  }
  if (options->spec_paths.empty() && options->fuzz == 0 &&
      options->fault_fuzz == 0) {
    std::cerr << "noc_verify: nothing to do (no specs, no --fuzz, no "
                 "--fault-fuzz)\n";
    PrintUsage(std::cerr);
    return false;
  }
  if (!options->fault_path.empty() && options->spec_paths.empty()) {
    std::cerr << "noc_verify: --fault needs SPEC_FILE workloads to arm\n";
    return false;
  }
  return true;
}

void PrintBounds(const std::string& label,
                 const std::vector<scenario::GtFlowBound>& bounds) {
  if (bounds.empty()) {
    std::cout << label << ": no GT flows\n";
    return;
  }
  std::cout << "=== GT bounds: " << label << " ===\n";
  Table table({"flow", "slots/stu", "max gap", "hops", "words/rot",
               "min w/cyc", "worst lat"});
  for (const scenario::GtFlowBound& flow : bounds) {
    table.AddRow({std::to_string(flow.src) + "->" + std::to_string(flow.dst),
                  std::to_string(flow.bound.slots) + "/" +
                      std::to_string(flow.bound.table_slots),
                  std::to_string(flow.bound.max_gap_slots),
                  std::to_string(flow.bound.hops),
                  Table::Fmt(flow.bound.words_per_rotation),
                  Table::Fmt(flow.bound.min_throughput_wpc, 4),
                  Table::Fmt(flow.bound.worst_case_latency)});
  }
  table.Print(std::cout);
}

/// CLI exit code of a failed run (mirrors noc_sim): 3 = bounded wait
/// expired, 4 = retry budget exhausted, 1 = everything else.
int ExitCodeOf(const Status& status) {
  switch (status.code()) {
    case StatusCode::kTimeout:
      return 3;
    case StatusCode::kRetriesExhausted:
      return 4;
    default:
      return 1;
  }
}

/// Runs one workload verified on the selected engines; returns 0 on pass
/// or the exit code of the first verification failure / cross-engine
/// divergence.
int RunWorkload(const CliOptions& options, scenario::ScenarioSpec spec,
                const std::string& label) {
  spec.verify = true;
  if (options.bounds) {
    scenario::ScenarioRunner prober(spec);
    auto bounds = prober.ComputeGtBounds();
    if (!bounds.ok()) {
      std::cerr << "noc_verify: " << label << ": " << bounds.status() << "\n";
      return 1;
    }
    PrintBounds(label, *bounds);
  }

  std::vector<std::pair<const char*, bool>> engines;
  if (options.run_optimized) engines.emplace_back("optimized", true);
  if (options.run_naive) engines.emplace_back("naive", false);

  std::vector<std::string> jsons;
  for (const auto& [engine_name, optimized] : engines) {
    spec.optimize_engine = optimized;
    scenario::ScenarioRunner runner(spec);
    auto result = runner.Run();
    if (!result.ok()) {
      const char* detail =
          result.status().code() == StatusCode::kTimeout
              ? " [bounded wait expired]"
              : result.status().code() == StatusCode::kRetriesExhausted
                    ? " [retry budget exhausted]"
                    : "";
      std::cerr << "FAIL " << label << " (" << engine_name
                << "): " << result.status() << detail << "\n";
      return ExitCodeOf(result.status());
    }
    jsons.push_back(result->ToJson());
    if (!options.quiet) {
      const verify::Monitor* monitor = runner.soc()->monitor();
      std::cout << "PASS " << label << " (" << engine_name << "): "
                << (monitor != nullptr ? monitor->Describe()
                                       : std::string("no monitor"));
      if (result->fault.has_value()) {
        const auto& f = *result->fault;
        std::cout << "; faults: " << f.events_total << " event(s), "
                  << f.degradations.size() << " degradation(s), GT "
                  << f.gt_words_delivered << "/" << f.gt_words_offered
                  << " words";
      }
      std::cout << "\n";
    }
  }
  if (jsons.size() == 2 && jsons[0] != jsons[1]) {
    std::cerr << "FAIL " << label
              << ": optimized and naive engines disagree bit-for-bit\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) return 1;

  std::optional<fault::FaultSpec> fault_override;
  if (!options.fault_path.empty()) {
    auto loaded = fault::LoadFaultFile(options.fault_path);
    if (!loaded.ok()) {
      std::cerr << "noc_verify: --fault " << options.fault_path << ": "
                << loaded.status() << "\n";
      return 1;
    }
    fault_override = std::move(*loaded);
  }

  int failures = 0;
  int worst_code = 0;  // 4 (retries) outranks 3 (timeout) outranks 1
  const auto rank = [](int code) { return code == 4 ? 3 : code == 3 ? 2 : 1; };
  const auto tally = [&](int code) {
    if (code == 0) return;
    ++failures;
    if (worst_code == 0 || rank(code) > rank(worst_code)) worst_code = code;
  };
  for (const std::string& path : options.spec_paths) {
    auto spec = scenario::LoadScenarioFile(path);
    if (!spec.ok()) {
      std::cerr << "noc_verify: " << spec.status() << "\n";
      tally(1);
      continue;
    }
    if (fault_override.has_value()) {
      if ((fault_override->AnyConfigFaults() ||
           fault_override->retry.enabled) &&
          !spec->Phased()) {
        std::cerr << "noc_verify: --fault " << options.fault_path
                  << ": config faults and the retry policy act on the "
                  << "runtime configuration protocol, which only phased "
                  << "scenarios exercise ('" << path << "' is not phased)\n";
        tally(1);
        continue;
      }
      spec->fault = fault_override;
    }
    tally(RunWorkload(options, *spec, path));
  }
  for (int i = 0; i < options.fuzz; ++i) {
    scenario::ScenarioSpec spec =
        verify::RandomConformanceSpec(options.seed, i);
    tally(RunWorkload(options, spec, spec.name));
  }
  for (int i = 0; i < options.fault_fuzz; ++i) {
    scenario::ScenarioSpec spec =
        verify::RandomFaultWorkload(options.seed, i);
    const int num_routers = spec.topology == scenario::TopologyKind::kStar
                                ? 1
                                : spec.topology == scenario::TopologyKind::kMesh
                                      ? spec.dim_a * spec.dim_b
                                      : spec.dim_a;
    spec.fault = fault::RandomFaultSpec(options.seed, i, num_routers,
                                        spec.NumNis(), spec.duration);
    tally(RunWorkload(options, spec, spec.name));
  }
  if (failures > 0) {
    std::cerr << "noc_verify: " << failures << " workload(s) FAILED\n";
    return worst_code == 0 ? 1 : worst_code;
  }
  if (!options.quiet) {
    std::cout << "noc_verify: all "
              << options.spec_paths.size() + options.fuzz +
                     options.fault_fuzz
              << " workload(s) passed verified\n";
  }
  return 0;
}
