// noc_verify — the guarantee-verification CLI.
//
// Runs scenario specs (and/or seeded random conformance configs) with the
// verification layer armed: the runtime invariant monitor (slot-table
// conformance, GT timing, flit integrity/ordering, credit conservation)
// plus the analytical GT throughput/latency bound checks. By default every
// workload runs on ALL THREE engines (naive, optimized, soa) AND the
// threaded soa engine (threads=4, or --threads N), and the result JSON is
// compared byte-for-byte across all of them — including --fault and
// --verify runs, so the thread-count cross-compare covers the fault ledger
// and the monitor too.
//
// Usage:
//   noc_verify [options] [SPEC_FILE...]
//     --engine E          naive | optimized | soa | all  (default all;
//                         'both' is a deprecated alias for all)
//     --threads N         thread count of the threaded-soa leg of the
//                         cross-check (default 4; 1 disables the leg).
//                         With --engine E, runs that single engine at N
//                         threads instead (N > 1 needs soa)
//     -o FILE             write the verified result JSON to FILE (single
//                         workload: the scenario object; several: an
//                         array). '-' writes JSON to stdout.
//     --fuzz N            also run N seeded random conformance configs
//     --fault FILE        arm the fault models from a fault file in every
//                         SPEC_FILE workload (replaces the spec's own
//                         fault block); fault-induced guarantee shortfalls
//                         degrade instead of failing, unexplained
//                         violations still fail
//     --fault-fuzz N      also run N seeded random fault configs over
//                         stream-only random workloads (the resilience
//                         soak; DESIGN.md §12)
//     --seed S            fuzz / fault-fuzz batch seed (default 1)
//     --bounds            print the analytical GT bound table per workload
//     --quiet             only report failures
//
// Exit status: 0 when every run passed verified (and every pair of
// same-workload runs agreed bit-for-bit); 3 when the worst failure was a
// bounded-wait expiry, 4 when a retry budget ran out, 1 otherwise.
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "cli_common.h"
#include "fault/spec.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "util/table.h"
#include "verify/fuzz.h"
#include "verify/monitor.h"

using namespace aethereal;

namespace {

struct CliOptions {
  cli::CommonOptions common;
  std::vector<std::string> spec_paths;
  int fuzz = 0;
  int fault_fuzz = 0;
  bool bounds = false;
  bool quiet = false;

  /// The engine configs every workload runs on: one with --engine E, or
  /// the full cross-check set — naive, optimized, soa, and the threaded
  /// soa engine — by default or with --engine all. Every config's result
  /// JSON must agree byte-for-byte.
  std::vector<sim::EngineConfig> Engines() const {
    if (common.engine.has_value()) {
      return {sim::EngineConfig(*common.engine, common.threads.value_or(1))};
    }
    std::vector<sim::EngineConfig> engines = {sim::EngineKind::kNaive,
                                              sim::EngineKind::kOptimized,
                                              sim::EngineKind::kSoa};
    const unsigned threads = common.threads.value_or(4);
    if (threads > 1) {
      engines.push_back(sim::EngineConfig(sim::EngineKind::kSoa, threads));
    }
    return engines;
  }
};

void PrintUsage(std::ostream& os) {
  cli::PrintUsage(os, "noc_verify",
                  {std::string("[--engine ") + sim::kEngineKindChoices +
                       "|all]",
                   "[--threads N]", "[-o FILE]", "[--fuzz N]",
                   "[--fault FILE]",
                   "[--fault-fuzz N]", "[--seed S]", "[--bounds]",
                   "[--quiet]", "[SPEC_FILE...]"});
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  cli::ArgReader args("noc_verify", argc, argv);
  while (args.Next()) {
    switch (cli::MatchCommonArg(args, &options->common,
                                /*allow_engine_all=*/true)) {
      case cli::Match::kYes:
        continue;
      case cli::Match::kError:
        return false;
      case cli::Match::kNo:
        break;
    }
    const std::string& arg = args.Arg();
    if (arg == "--fuzz" || arg == "--fault-fuzz") {
      const auto parsed =
          args.U64Value("a batch size in [0, 1000000]", 0, 1'000'000);
      if (!parsed.has_value()) return false;
      (arg == "--fuzz" ? options->fuzz : options->fault_fuzz) =
          static_cast<int>(*parsed);
    } else if (arg == "--bounds") {
      options->bounds = true;
    } else if (arg == "--quiet") {
      options->quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      PrintUsage(std::cout);
      std::exit(0);
    } else if (args.IsOption()) {
      std::cerr << "noc_verify: unknown option '" << arg << "'\n";
      return false;
    } else {
      options->spec_paths.push_back(arg);
    }
  }
  if (options->spec_paths.empty() && options->fuzz == 0 &&
      options->fault_fuzz == 0) {
    std::cerr << "noc_verify: nothing to do (no specs, no --fuzz, no "
                 "--fault-fuzz)\n";
    PrintUsage(std::cerr);
    return false;
  }
  if (!options->common.fault_path.empty() && options->spec_paths.empty()) {
    std::cerr << "noc_verify: --fault needs SPEC_FILE workloads to arm\n";
    return false;
  }
  if (options->common.output_path == "-") options->quiet = true;
  // A single-engine run must be a valid config up front (e.g. --engine
  // naive --threads 4 is a contradiction, not a cross-check).
  if (options->common.engine.has_value()) {
    const std::string error =
        sim::ValidateEngineConfig(options->Engines().front());
    if (!error.empty()) {
      std::cerr << "noc_verify: " << error << "\n";
      return false;
    }
  }
  return true;
}

void PrintBounds(const std::string& label,
                 const std::vector<scenario::GtFlowBound>& bounds) {
  if (bounds.empty()) {
    std::cout << label << ": no GT flows\n";
    return;
  }
  std::cout << "=== GT bounds: " << label << " ===\n";
  Table table({"flow", "slots/stu", "max gap", "hops", "words/rot",
               "min w/cyc", "worst lat"});
  for (const scenario::GtFlowBound& flow : bounds) {
    table.AddRow({std::to_string(flow.src) + "->" + std::to_string(flow.dst),
                  std::to_string(flow.bound.slots) + "/" +
                      std::to_string(flow.bound.table_slots),
                  std::to_string(flow.bound.max_gap_slots),
                  std::to_string(flow.bound.hops),
                  Table::Fmt(flow.bound.words_per_rotation),
                  Table::Fmt(flow.bound.min_throughput_wpc, 4),
                  Table::Fmt(flow.bound.worst_case_latency)});
  }
  table.Print(std::cout);
}

/// Runs one workload verified on the selected engines; appends the
/// (cross-checked) result JSON to `jsons` on pass. Returns 0 on pass or
/// the exit code of the first verification failure / cross-engine
/// divergence.
int RunWorkload(const CliOptions& options, scenario::ScenarioSpec spec,
                const std::string& label, std::vector<std::string>* jsons) {
  spec.verify = true;
  if (options.bounds) {
    scenario::ScenarioRunner prober(spec);
    auto bounds = prober.ComputeGtBounds();
    if (!bounds.ok()) {
      std::cerr << "noc_verify: " << label << ": " << bounds.status() << "\n";
      return 1;
    }
    PrintBounds(label, *bounds);
  }

  std::vector<std::string> engine_jsons;
  for (const sim::EngineConfig& engine : options.Engines()) {
    spec.engine = engine;
    scenario::ScenarioRunner runner(spec);
    auto result = runner.Run();
    if (!result.ok()) {
      const char* detail =
          result.status().code() == StatusCode::kTimeout
              ? " [bounded wait expired]"
              : result.status().code() == StatusCode::kRetriesExhausted
                    ? " [retry budget exhausted]"
                    : "";
      std::cerr << "FAIL " << label << " (" << sim::EngineConfigName(engine)
                << "): " << result.status() << detail << "\n";
      return cli::ExitCodeOf(result.status());
    }
    engine_jsons.push_back(result->ToJson());
    if (!options.quiet) {
      const verify::Monitor* monitor = runner.soc()->monitor();
      std::cout << "PASS " << label << " (" << sim::EngineConfigName(engine)
                << "): "
                << (monitor != nullptr ? monitor->Describe()
                                       : std::string("no monitor"));
      if (result->fault.has_value()) {
        const auto& f = *result->fault;
        std::cout << "; faults: " << f.events_total << " event(s), "
                  << f.degradations.size() << " degradation(s), GT "
                  << f.gt_words_delivered << "/" << f.gt_words_offered
                  << " words";
      }
      std::cout << "\n";
    }
  }
  for (std::size_t i = 1; i < engine_jsons.size(); ++i) {
    if (engine_jsons[i] != engine_jsons[0]) {
      std::cerr << "FAIL " << label << ": "
                << sim::EngineConfigName(options.Engines()[0]) << " and "
                << sim::EngineConfigName(options.Engines()[i])
                << " engines disagree bit-for-bit\n";
      return 1;
    }
  }
  jsons->push_back(engine_jsons.front());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) return 1;

  std::optional<fault::FaultSpec> fault_override;
  if (!options.common.fault_path.empty()) {
    fault_override =
        cli::LoadFaultOverride("noc_verify", options.common.fault_path);
    if (!fault_override.has_value()) return 1;
  }

  int failures = 0;
  int worst_code = 0;  // 4 (retries) outranks 3 (timeout) outranks 1
  const auto rank = [](int code) { return code == 4 ? 3 : code == 3 ? 2 : 1; };
  const auto tally = [&](int code) {
    if (code == 0) return;
    ++failures;
    if (worst_code == 0 || rank(code) > rank(worst_code)) worst_code = code;
  };
  std::vector<std::string> jsons;
  for (const std::string& path : options.spec_paths) {
    auto spec = scenario::LoadScenarioFile(path);
    if (!spec.ok()) {
      std::cerr << "noc_verify: " << spec.status() << "\n";
      tally(1);
      continue;
    }
    if (fault_override.has_value()) {
      if (!cli::FaultOverrideApplies("noc_verify", options.common.fault_path,
                                     *fault_override, *spec, path)) {
        tally(1);
        continue;
      }
      spec->fault = fault_override;
    }
    tally(RunWorkload(options, *spec, path, &jsons));
  }
  for (int i = 0; i < options.fuzz; ++i) {
    scenario::ScenarioSpec spec =
        verify::RandomConformanceSpec(options.common.seed.value_or(1), i);
    tally(RunWorkload(options, spec, spec.name, &jsons));
  }
  for (int i = 0; i < options.fault_fuzz; ++i) {
    const std::uint64_t seed = options.common.seed.value_or(1);
    scenario::ScenarioSpec spec = verify::RandomFaultWorkload(seed, i);
    const int num_routers = spec.topology == scenario::TopologyKind::kStar
                                ? 1
                                : spec.topology == scenario::TopologyKind::kMesh
                                      ? spec.dim_a * spec.dim_b
                                      : spec.dim_a;
    spec.fault = fault::RandomFaultSpec(seed, i, num_routers, spec.NumNis(),
                                        spec.duration);
    tally(RunWorkload(options, spec, spec.name, &jsons));
  }
  if (failures > 0) {
    std::cerr << "noc_verify: " << failures << " workload(s) FAILED\n";
    return worst_code == 0 ? 1 : worst_code;
  }
  if (!options.common.output_path.empty() &&
      !cli::WriteOutput("noc_verify", options.common.output_path,
                        cli::JoinJsonDocuments(jsons), options.quiet)) {
    return 1;
  }
  if (!options.quiet) {
    std::cout << "noc_verify: all "
              << options.spec_paths.size() + options.fuzz +
                     options.fault_fuzz
              << " workload(s) passed verified\n";
  }
  return 0;
}
