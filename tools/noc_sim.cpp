// noc_sim — the scenario-driven NoC simulator CLI.
//
// Parses one or more declarative scenario specs (see src/scenario/spec.h
// for the format), wires and runs each on the cycle engine, prints a
// human-readable summary, and emits a machine-readable result JSON
// (deterministic for a given spec + seed, on either engine).
//
// Usage:
//   noc_sim [options] SPEC_FILE...
//     -o FILE             write result JSON to FILE (single spec: the
//                         scenario object; several specs: an array).
//                         '-' writes JSON to stdout.
//     --engine E          override the spec's engine (optimized | naive)
//     --seed N            override the spec's RNG seed
//     --duration N        override the spec's measured-cycle count
//     --verify            arm the guarantee-verification layer (runtime
//                         invariant checkers + analytical GT bounds); any
//                         violation fails the run
//     --fault FILE        arm the fault models from a fault file (the
//                         fault/spec.h grammar; replaces the spec's own
//                         fault block). A zero-rate file keeps the result
//                         byte-identical to the fault-free run — the CI
//                         kill-switch check
//     --validate          parse + fully wire each spec, report diagnostics
//                         (with line numbers), and exit without running
//     --print             like --validate, and dump the expanded SoC
//                         (topology, per-NI channels, every flow + connid)
//     --quiet             suppress the human-readable summary
//
// Exit status: 0 on success, 1 on parse/build/run failure, 3 when a
// bounded wait expired (drain window, config-ack timeout without retry),
// 4 when the config retry policy exhausted its budget.
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/spec.h"
#include "scenario/inspect.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "util/parse.h"
#include "util/table.h"

using namespace aethereal;

namespace {

struct CliOptions {
  std::vector<std::string> spec_paths;
  std::string json_path;  // empty: no JSON output
  std::optional<bool> optimize_engine;
  std::optional<std::uint64_t> seed;
  std::optional<Cycle> duration;
  std::string fault_path;  // empty: no fault-file override
  bool verify = false;
  bool validate = false;
  bool print = false;
  bool quiet = false;
};

/// CLI exit code of a failed run: bounded-wait expiries and exhausted
/// retry budgets get their own codes so scripts can tell "the workload is
/// wedged" from "the spec is wrong" without parsing stderr.
int ExitCodeOf(const Status& status) {
  switch (status.code()) {
    case StatusCode::kTimeout:
      return 3;
    case StatusCode::kRetriesExhausted:
      return 4;
    default:
      return 1;
  }
}

void PrintUsage(std::ostream& os) {
  os << "usage: noc_sim [-o FILE] [--engine optimized|naive] [--seed N]\n"
        "               [--duration N] [--verify] [--fault FILE]\n"
        "               [--validate] [--print] [--quiet] SPEC_FILE...\n";
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "noc_sim: " << arg << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "-o" || arg == "--output") {
      const char* v = value();
      if (v == nullptr) return false;
      options->json_path = v;
    } else if (arg == "--engine") {
      const char* v = value();
      if (v == nullptr) return false;
      const std::string engine = v;
      if (engine != "optimized" && engine != "naive") {
        std::cerr << "noc_sim: --engine must be 'optimized' or 'naive'\n";
        return false;
      }
      options->optimize_engine = engine == "optimized";
    } else if (arg == "--seed" || arg == "--duration") {
      const char* v = value();
      if (v == nullptr) return false;
      const auto parsed = ParseU64(v);
      if (!parsed || (arg == "--duration" &&
                      (*parsed < 1 ||
                       *parsed > static_cast<std::uint64_t>(
                                     std::numeric_limits<Cycle>::max())))) {
        std::cerr << "noc_sim: " << arg << " needs a "
                  << (arg == "--seed" ? "non-negative integer"
                                      : "cycle count >= 1")
                  << ", got '" << v << "'\n";
        return false;
      }
      if (arg == "--seed") {
        options->seed = *parsed;
      } else {
        options->duration = static_cast<Cycle>(*parsed);
      }
    } else if (arg == "--verify") {
      options->verify = true;
    } else if (arg == "--fault") {
      const char* v = value();
      if (v == nullptr) return false;
      options->fault_path = v;
    } else if (arg == "--validate") {
      options->validate = true;
    } else if (arg == "--print") {
      options->print = true;
    } else if (arg == "--quiet") {
      options->quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      PrintUsage(std::cout);
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "noc_sim: unknown option '" << arg << "'\n";
      return false;
    } else {
      options->spec_paths.push_back(arg);
    }
  }
  if (options->spec_paths.empty()) {
    std::cerr << "noc_sim: no scenario spec given\n";
    PrintUsage(std::cerr);
    return false;
  }
  // '-o -' streams the document to stdout, which must then be valid JSON:
  // suppress the human-readable summary.
  if (options->json_path == "-") options->quiet = true;
  return true;
}

void PrintSummary(const scenario::ScenarioResult& result, bool optimized) {
  std::cout << "=== scenario " << result.spec.name << " ("
            << scenario::TopologyKindName(result.spec.topology) << ", "
            << result.spec.NumNis() << " NIs, "
            << (optimized ? "optimized" : "naive") << " engine";
  if (result.spec.Phased()) {
    std::cout << ", " << result.spec.phases.size() << " phases";
  }
  std::cout << ") ===\n";
  if (result.spec.Phased()) {
    Table phases({"phase", "window", "words", "w/cyc", "opens", "closes",
                  "setup", "teardown", "cfg msgs", "slots +/-"});
    for (std::size_t k = 0; k < result.phases.size(); ++k) {
      const auto& phase = result.phases[k];
      const auto& tr = result.transitions[k];
      phases.AddRow(
          {phase.name,
           Table::Fmt(phase.window_start) + "+" + Table::Fmt(phase.duration),
           Table::Fmt(phase.words_in_window),
           Table::Fmt(phase.throughput_wpc, 4), std::to_string(tr.opens),
           std::to_string(tr.closes),
           tr.opens > 0 ? Table::Fmt(tr.setup_latency_max) : "-",
           tr.closes > 0 ? Table::Fmt(tr.teardown_latency_max) : "-",
           Table::Fmt(tr.config_messages),
           "+" + std::to_string(tr.slots_allocated) + "/-" +
               std::to_string(tr.slots_reclaimed)});
    }
    phases.Print(std::cout);
  }
  Table table({"pattern", "flow", "qos", "words", "w/cyc", "lat mean",
               "lat p99", "lat max"});
  for (const auto& flow : result.flows) {
    const std::string qos =
        flow.gt ? "gt/" + std::to_string(flow.gt_slots) : "be";
    table.AddRow({flow.pattern,
                  std::to_string(flow.src) + "->" + std::to_string(flow.dst),
                  qos, Table::Fmt(flow.words_in_window),
                  Table::Fmt(flow.throughput_wpc, 4),
                  flow.latency.count > 0 ? Table::Fmt(flow.latency.mean, 1)
                                         : "-",
                  flow.latency.count > 0 ? Table::Fmt(flow.latency.p99, 0)
                                         : "-",
                  flow.latency.count > 0 ? Table::Fmt(flow.latency.max, 0)
                                         : "-"});
  }
  table.Print(std::cout);
  std::cout << "aggregate: " << result.words_in_window << " words in "
            << result.spec.TotalDuration() << " measured cycles ("
            << Table::Fmt(result.throughput_wpc, 3)
            << " w/cyc), slot utilization "
            << Table::Fmt(100.0 * result.slot_utilization, 1) << "%\n";
  if (result.fault.has_value()) {
    const auto& f = *result.fault;
    std::cout << "faults (seed " << f.seed << "): " << f.flits_corrupted
              << " corrupted, "
              << f.link_packets_dropped + f.router_stall_packets_dropped
              << " packets dropped, config " << f.config_requests_dropped
              << " lost / " << f.config_requests_delayed << " delayed, "
              << f.config_write_retries << " write retries";
    if (result.spec.verify) {
      std::cout << ", GT recovery "
                << Table::Fmt(100.0 * f.gt_recovery_ratio, 2) << "%, "
                << f.degradations.size() << " degradation(s), "
                << f.monitor_unexplained_violations << " unexplained";
    }
    std::cout << "\n";
  }
  std::cout << "\n";
}

/// --validate / --print: parse and fully wire each spec without running.
/// Reports per-file diagnostics (parse errors carry line numbers) and
/// keeps going so one bad spec doesn't mask the next one's problems.
int ValidateSpecs(const CliOptions& options) {
  int failures = 0;
  for (const std::string& path : options.spec_paths) {
    auto spec = scenario::LoadScenarioFile(path);
    if (!spec.ok()) {
      std::cerr << "noc_sim: " << spec.status() << "\n";
      ++failures;
      continue;
    }
    auto inspection = scenario::InspectScenario(*spec, /*wire=*/true);
    if (!inspection.ok()) {
      std::cerr << "noc_sim: " << path << ": " << inspection.status() << "\n";
      ++failures;
      continue;
    }
    if (options.print) {
      std::cout << inspection->Describe();
    } else if (!options.quiet) {
      std::cout << path << ": OK (" << spec->name << ", "
                << inspection->num_nis << " NIs, " << inspection->flows.size()
                << " flows)\n";
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) return 1;
  if (options.validate || options.print) return ValidateSpecs(options);

  std::optional<fault::FaultSpec> fault_override;
  if (!options.fault_path.empty()) {
    auto loaded = fault::LoadFaultFile(options.fault_path);
    if (!loaded.ok()) {
      std::cerr << "noc_sim: --fault " << options.fault_path << ": "
                << loaded.status() << "\n";
      return 1;
    }
    fault_override = std::move(*loaded);
  }

  std::vector<std::string> jsons;
  for (const std::string& path : options.spec_paths) {
    auto spec = scenario::LoadScenarioFile(path);
    if (!spec.ok()) {
      std::cerr << "noc_sim: " << spec.status() << "\n";
      return 1;
    }
    if (fault_override.has_value()) {
      // Same rule the scenario parser enforces for in-file fault blocks.
      if ((fault_override->AnyConfigFaults() ||
           fault_override->retry.enabled) &&
          !spec->Phased()) {
        std::cerr << "noc_sim: --fault " << options.fault_path << ": config "
                  << "faults and the retry policy act on the runtime "
                  << "configuration protocol, which only phased scenarios "
                  << "exercise ('" << path << "' is not phased)\n";
        return 1;
      }
      spec->fault = fault_override;
    }
    if (options.optimize_engine) {
      spec->optimize_engine = *options.optimize_engine;
    }
    if (options.seed) spec->seed = *options.seed;
    if (options.duration) {
      if (spec->Phased()) {
        std::cerr << "noc_sim: " << path << ": --duration cannot override a "
                  << "phased scenario (durations are per phase)\n";
        return 1;
      }
      spec->duration = *options.duration;
    }
    if (options.verify) spec->verify = true;

    scenario::ScenarioRunner runner(*spec);
    auto result = runner.Run();
    if (!result.ok()) {
      std::cerr << "noc_sim: " << path << ": " << result.status() << "\n";
      if (result.status().code() == StatusCode::kTimeout) {
        std::cerr << "noc_sim: a bounded wait expired (drain window or "
                     "config ack) — the workload is wedged, not misparsed\n";
      } else if (result.status().code() == StatusCode::kRetriesExhausted) {
        std::cerr << "noc_sim: the config retry policy spent its whole "
                     "budget without an ack\n";
      }
      return ExitCodeOf(result.status());
    }
    if (!options.quiet) PrintSummary(*result, spec->optimize_engine);
    jsons.push_back(result->ToJson());
  }

  if (!options.json_path.empty()) {
    // Single spec: the scenario object. Several: a JSON array of them.
    std::string document;
    if (jsons.size() == 1) {
      document = jsons.front();
    } else {
      document = "[\n";
      for (std::size_t i = 0; i < jsons.size(); ++i) {
        std::string entry = jsons[i];
        if (!entry.empty() && entry.back() == '\n') entry.pop_back();
        document += entry;
        document += i + 1 < jsons.size() ? ",\n" : "\n";
      }
      document += "]\n";
    }
    if (options.json_path == "-") {
      std::cout << document;
    } else {
      std::ofstream out(options.json_path);
      out << document;
      out.flush();
      if (!out.good()) {
        std::cerr << "noc_sim: failed writing '" << options.json_path
                  << "'\n";
        return 1;
      }
      if (!options.quiet) {
        std::cout << "wrote " << options.json_path << "\n";
      }
    }
  }
  return 0;
}
