// noc_sim — the scenario-driven NoC simulator CLI.
//
// Parses one or more declarative scenario specs (see src/scenario/spec.h
// for the format), wires and runs each on the cycle engine, prints a
// human-readable summary, and emits a machine-readable result JSON
// (deterministic for a given spec + seed, on any engine).
//
// Usage:
//   noc_sim [options] SPEC_FILE...
//     -o FILE             write result JSON to FILE (single spec: the
//                         scenario object; several specs: an array).
//                         '-' writes JSON to stdout.
//     --engine E          override the spec's engine (naive | optimized |
//                         soa)
//     --threads N         override the spec's engine thread count (N > 1
//                         needs the soa engine; results are bit-identical
//                         at any thread count)
//     --seed N            override the spec's RNG seed
//     --duration N        override the spec's measured-cycle count
//     --verify            arm the guarantee-verification layer (runtime
//                         invariant checkers + analytical GT bounds); any
//                         violation fails the run
//     --fault FILE        arm the fault models from a fault file (the
//                         fault/spec.h grammar; replaces the spec's own
//                         fault block). A zero-rate file keeps the result
//                         byte-identical to the fault-free run — the CI
//                         kill-switch check
//     --trace FILE        record a Chrome trace_event JSON of the run to
//                         FILE (overrides the spec's own `trace` line)
//     --sample-every N    sample windowed time-series stats every N cycles
//                         (overrides the spec's `stats sample_every` line)
//     --converge E        stop-on-convergence mode (DESIGN.md §14): run
//                         until the batch-means CI of the measured latency
//                         tightens to relative error E, instead of the
//                         fixed duration. Tunables: --converge-conf C,
//                         --converge-max-duration D, --converge-interval I,
//                         --converge-batches B
//     --stats-csv FILE    write the per-window per-link utilization CSV to
//                         FILE (needs sampling: a `stats` line in the spec
//                         or --sample-every)
//     --validate          parse + fully wire each spec, report diagnostics
//                         (with line numbers), and exit without running
//     --print             like --validate, and dump the expanded SoC
//                         (topology, per-NI channels, every flow + connid)
//     --quiet             suppress the human-readable summary
//
// Exit status: 0 on success, 1 on parse/build/run failure, 3 when a
// bounded wait expired (drain window, config-ack timeout without retry),
// 4 when the config retry policy exhausted its budget.
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "cli_common.h"
#include "fault/spec.h"
#include "obs/hub.h"
#include "scenario/inspect.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "util/table.h"

using namespace aethereal;

namespace {

struct CliOptions {
  cli::CommonOptions common;
  std::vector<std::string> spec_paths;
  std::optional<Cycle> duration;
  std::string trace_path;
  std::optional<Cycle> sample_every;
  std::string stats_csv_path;
  bool validate = false;
  bool print = false;
  bool quiet = false;
};

void PrintUsage(std::ostream& os) {
  cli::PrintUsage(os, "noc_sim",
                  {"[-o FILE]",
                   std::string("[--engine ") + sim::kEngineKindChoices + "]",
                   "[--threads N]", "[--seed N]", "[--duration N]",
                   "[--verify]",
                   "[--fault FILE]", "[--trace FILE]", "[--sample-every N]",
                   "[--stats-csv FILE]", "[--converge E]",
                   "[--converge-conf C]", "[--converge-max-duration D]",
                   "[--converge-interval I]", "[--converge-batches B]",
                   "[--validate]", "[--print]", "[--quiet]", "SPEC_FILE..."});
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  cli::ArgReader args("noc_sim", argc, argv);
  while (args.Next()) {
    switch (cli::MatchCommonArg(args, &options->common)) {
      case cli::Match::kYes:
        continue;
      case cli::Match::kError:
        return false;
      case cli::Match::kNo:
        break;
    }
    const std::string& arg = args.Arg();
    if (arg == "--duration") {
      const auto parsed = args.U64Value(
          "a cycle count >= 1", 1,
          static_cast<std::uint64_t>(std::numeric_limits<Cycle>::max()));
      if (!parsed.has_value()) return false;
      options->duration = static_cast<Cycle>(*parsed);
    } else if (arg == "--trace") {
      const char* v = args.Value();
      if (v == nullptr) return false;
      options->trace_path = v;
    } else if (arg == "--sample-every") {
      const auto parsed = args.U64Value(
          "a cycle count >= one slot (3 cycles)",
          static_cast<std::uint64_t>(kFlitWords),
          static_cast<std::uint64_t>(std::int64_t{1} << 40));
      if (!parsed.has_value()) return false;
      options->sample_every = static_cast<Cycle>(*parsed);
    } else if (arg == "--stats-csv") {
      const char* v = args.Value();
      if (v == nullptr) return false;
      options->stats_csv_path = v;
    } else if (arg == "--validate") {
      options->validate = true;
    } else if (arg == "--print") {
      options->print = true;
    } else if (arg == "--quiet") {
      options->quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      PrintUsage(std::cout);
      std::exit(0);
    } else if (args.IsOption()) {
      std::cerr << "noc_sim: unknown option '" << arg << "'\n";
      return false;
    } else {
      options->spec_paths.push_back(arg);
    }
  }
  if (options->spec_paths.empty()) {
    std::cerr << "noc_sim: no scenario spec given\n";
    PrintUsage(std::cerr);
    return false;
  }
  // One trace / stats-CSV file cannot hold several runs: the second spec
  // would silently overwrite the first one's artifact.
  if (options->spec_paths.size() > 1 &&
      (!options->trace_path.empty() || !options->stats_csv_path.empty())) {
    std::cerr << "noc_sim: --trace / --stats-csv take exactly one "
                 "SPEC_FILE\n";
    return false;
  }
  // '-o -' streams the document to stdout, which must then be valid JSON:
  // suppress the human-readable summary.
  if (options->common.output_path == "-") options->quiet = true;
  return true;
}

void PrintSummary(const scenario::ScenarioResult& result,
                  const sim::EngineConfig& engine) {
  std::cout << "=== scenario " << result.spec.name << " ("
            << scenario::TopologyKindName(result.spec.topology) << ", "
            << result.spec.NumNis() << " NIs, "
            << sim::EngineConfigName(engine) << " engine";
  if (result.spec.Phased()) {
    std::cout << ", " << result.spec.phases.size() << " phases";
  }
  std::cout << ") ===\n";
  if (result.spec.Phased()) {
    Table phases({"phase", "window", "words", "w/cyc", "lat mean", "lat p50",
                  "lat p95", "lat p99", "opens", "closes", "setup",
                  "teardown", "cfg msgs", "slots +/-"});
    for (std::size_t k = 0; k < result.phases.size(); ++k) {
      const auto& phase = result.phases[k];
      const auto& tr = result.transitions[k];
      const bool lat = phase.latency_count > 0;
      phases.AddRow(
          {phase.name,
           Table::Fmt(phase.window_start) + "+" + Table::Fmt(phase.duration),
           Table::Fmt(phase.words_in_window),
           Table::Fmt(phase.throughput_wpc, 4),
           lat ? Table::Fmt(phase.latency_mean, 1) : "-",
           lat ? Table::Fmt(phase.latency_p50, 0) : "-",
           lat ? Table::Fmt(phase.latency_p95, 0) : "-",
           lat ? Table::Fmt(phase.latency_p99, 0) : "-",
           std::to_string(tr.opens), std::to_string(tr.closes),
           tr.opens > 0 ? Table::Fmt(tr.setup_latency_max) : "-",
           tr.closes > 0 ? Table::Fmt(tr.teardown_latency_max) : "-",
           Table::Fmt(tr.config_messages),
           "+" + std::to_string(tr.slots_allocated) + "/-" +
               std::to_string(tr.slots_reclaimed)});
    }
    phases.Print(std::cout);
  }
  Table table({"pattern", "flow", "qos", "words", "w/cyc", "lat mean",
               "lat p50", "lat p95", "lat p99", "lat max"});
  for (const auto& flow : result.flows) {
    const std::string qos =
        flow.gt ? "gt/" + std::to_string(flow.gt_slots) : "be";
    const bool lat = flow.latency.count > 0;
    table.AddRow({flow.pattern,
                  std::to_string(flow.src) + "->" + std::to_string(flow.dst),
                  qos, Table::Fmt(flow.words_in_window),
                  Table::Fmt(flow.throughput_wpc, 4),
                  lat ? Table::Fmt(flow.latency.mean, 1) : "-",
                  lat ? Table::Fmt(flow.latency.p50, 0) : "-",
                  lat ? Table::Fmt(flow.latency.p95, 0) : "-",
                  lat ? Table::Fmt(flow.latency.p99, 0) : "-",
                  lat ? Table::Fmt(flow.latency.max, 0) : "-"});
  }
  table.Print(std::cout);
  std::cout << "aggregate: " << result.words_in_window << " words in "
            << result.spec.TotalDuration() << " measured cycles ("
            << Table::Fmt(result.throughput_wpc, 3)
            << " w/cyc), slot utilization "
            << Table::Fmt(100.0 * result.slot_utilization, 1) << "%\n";
  if (result.fault.has_value()) {
    const auto& f = *result.fault;
    std::cout << "faults (seed " << f.seed << "): " << f.flits_corrupted
              << " corrupted, "
              << f.link_packets_dropped + f.router_stall_packets_dropped
              << " packets dropped, config " << f.config_requests_dropped
              << " lost / " << f.config_requests_delayed << " delayed, "
              << f.config_write_retries << " write retries";
    if (result.spec.verify) {
      std::cout << ", GT recovery "
                << Table::Fmt(100.0 * f.gt_recovery_ratio, 2) << "%, "
                << f.degradations.size() << " degradation(s), "
                << f.monitor_unexplained_violations << " unexplained";
    }
    std::cout << "\n";
  }
  std::cout << "\n";
}

/// --validate / --print: parse and fully wire each spec without running.
/// Reports per-file diagnostics (parse errors carry line numbers) and
/// keeps going so one bad spec doesn't mask the next one's problems.
int ValidateSpecs(const CliOptions& options) {
  int failures = 0;
  for (const std::string& path : options.spec_paths) {
    auto spec = scenario::LoadScenarioFile(path);
    if (!spec.ok()) {
      std::cerr << "noc_sim: " << spec.status() << "\n";
      ++failures;
      continue;
    }
    auto inspection = scenario::InspectScenario(*spec, /*wire=*/true);
    if (!inspection.ok()) {
      std::cerr << "noc_sim: " << path << ": " << inspection.status() << "\n";
      ++failures;
      continue;
    }
    if (options.print) {
      std::cout << inspection->Describe();
    } else if (!options.quiet) {
      std::cout << path << ": OK (" << spec->name << ", "
                << inspection->num_nis << " NIs, " << inspection->flows.size()
                << " flows)\n";
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) return 1;
  if (options.validate || options.print) return ValidateSpecs(options);

  std::optional<fault::FaultSpec> fault_override;
  if (!options.common.fault_path.empty()) {
    fault_override =
        cli::LoadFaultOverride("noc_sim", options.common.fault_path);
    if (!fault_override.has_value()) return 1;
  }

  std::vector<std::string> jsons;
  for (const std::string& path : options.spec_paths) {
    auto spec = scenario::LoadScenarioFile(path);
    if (!spec.ok()) {
      std::cerr << "noc_sim: " << spec.status() << "\n";
      return 1;
    }
    if (fault_override.has_value()) {
      // Same rule the scenario parser enforces for in-file fault blocks.
      if (!cli::FaultOverrideApplies("noc_sim", options.common.fault_path,
                                     *fault_override, *spec, path)) {
        return 1;
      }
      spec->fault = fault_override;
    }
    if (!cli::ApplyEngineOverrides("noc_sim", options.common, &*spec)) {
      return 1;
    }
    if (options.common.seed) spec->seed = *options.common.seed;
    if (options.duration) {
      if (spec->Phased()) {
        std::cerr << "noc_sim: " << path << ": --duration cannot override a "
                  << "phased scenario (durations are per phase)\n";
        return 1;
      }
      spec->duration = *options.duration;
    }
    if (options.common.verify) spec->verify = true;
    if (!cli::ApplyConvergeOverrides("noc_sim", options.common, &*spec)) {
      return 1;
    }
    if (!options.trace_path.empty()) spec->obs.trace_path = options.trace_path;
    if (options.sample_every) spec->obs.sample_every = *options.sample_every;
    if (!options.stats_csv_path.empty() && !spec->obs.SamplingEnabled()) {
      std::cerr << "noc_sim: " << path << ": --stats-csv needs sampling — "
                << "add 'stats sample_every N' to the spec or pass "
                << "--sample-every N\n";
      return 1;
    }

    scenario::ScenarioRunner runner(*spec);
    auto result = runner.Run();
    if (!result.ok()) {
      std::cerr << "noc_sim: " << path << ": " << result.status() << "\n";
      if (result.status().code() == StatusCode::kTimeout) {
        std::cerr << "noc_sim: a bounded wait expired (drain window or "
                     "config ack) — the workload is wedged, not misparsed\n";
      } else if (result.status().code() == StatusCode::kRetriesExhausted) {
        std::cerr << "noc_sim: the config retry policy spent its whole "
                     "budget without an ack\n";
      }
      return cli::ExitCodeOf(result.status());
    }
    if (!options.quiet) PrintSummary(*result, spec->engine);
    if (!options.stats_csv_path.empty()) {
      if (!cli::WriteOutput("noc_sim", options.stats_csv_path,
                            obs::SeriesCsv(*result->obs_stats),
                            options.quiet)) {
        return 1;
      }
    }
    jsons.push_back(result->ToJson());
  }

  if (!options.common.output_path.empty()) {
    // Single spec: the scenario object. Several: a JSON array of them.
    if (!cli::WriteOutput("noc_sim", options.common.output_path,
                          cli::JoinJsonDocuments(jsons), options.quiet)) {
      return 1;
    }
  }
  return 0;
}
