#!/usr/bin/env bash
# Regenerates golden results from the canonical specs:
#   <out>/*.json          from scenarios/*.scn           (noc_sim)
#   <out>/sweeps/*.{json,csv} from scenarios/sweeps/*.swp (noc_sweep)
#
# Run after an *intentional* simulation-behaviour change, then review the
# golden diff like any other code change:
#   ./scripts/regen_goldens.sh [build-dir] [out-dir]
# Defaults: build-dir = build, out-dir = tests/golden. CI's goldens-clean
# step regenerates into a temp out-dir and diffs it against tests/golden,
# so a forgotten regen fails with a targeted message.
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
out_dir="${2:-tests/golden}"
noc_sim="$build_dir/noc_sim"
noc_sweep="$build_dir/noc_sweep"

for tool in "$noc_sim" "$noc_sweep"; do
  if [[ ! -x "$tool" ]]; then
    echo "error: $tool not built (cmake --build $build_dir)" >&2
    exit 1
  fi
done

mkdir -p "$out_dir"
for spec in scenarios/*.scn; do
  name="$(basename "$spec" .scn)"
  "$noc_sim" --quiet -o "$out_dir/$name.json" "$spec"
  echo "regenerated $out_dir/$name.json"
done

# Sweep goldens are generated serially (--jobs 1); the golden test reruns
# them on a multi-worker pool, so a byte-match also proves the
# determinism-under-parallelism contract.
mkdir -p "$out_dir/sweeps"
for sweep in scenarios/sweeps/*.swp; do
  name="$(basename "$sweep" .swp)"
  "$noc_sweep" --quiet --jobs 1 \
    -o "$out_dir/sweeps/$name.json" \
    --csv "$out_dir/sweeps/$name.csv" "$sweep"
  echo "regenerated $out_dir/sweeps/$name.{json,csv}"
done
