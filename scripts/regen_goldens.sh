#!/usr/bin/env bash
# Regenerates tests/golden/*.json from scenarios/*.scn using noc_sim.
#
# Run after an *intentional* simulation-behaviour change, then review the
# golden diff like any other code change:
#   ./scripts/regen_goldens.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
noc_sim="$build_dir/noc_sim"

if [[ ! -x "$noc_sim" ]]; then
  echo "error: $noc_sim not built (cmake --build $build_dir --target noc_sim)" >&2
  exit 1
fi

mkdir -p tests/golden
for spec in scenarios/*.scn; do
  name="$(basename "$spec" .scn)"
  "$noc_sim" --quiet -o "tests/golden/$name.json" "$spec"
  echo "regenerated tests/golden/$name.json"
done
