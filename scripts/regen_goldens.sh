#!/usr/bin/env bash
# Regenerates tests/golden/*.json from scenarios/*.scn (noc_sim) and
# tests/golden/sweeps/*.{json,csv} from scenarios/sweeps/*.swp (noc_sweep).
#
# Run after an *intentional* simulation-behaviour change, then review the
# golden diff like any other code change:
#   ./scripts/regen_goldens.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
noc_sim="$build_dir/noc_sim"
noc_sweep="$build_dir/noc_sweep"

for tool in "$noc_sim" "$noc_sweep"; do
  if [[ ! -x "$tool" ]]; then
    echo "error: $tool not built (cmake --build $build_dir)" >&2
    exit 1
  fi
done

mkdir -p tests/golden
for spec in scenarios/*.scn; do
  name="$(basename "$spec" .scn)"
  "$noc_sim" --quiet -o "tests/golden/$name.json" "$spec"
  echo "regenerated tests/golden/$name.json"
done

# Sweep goldens are generated serially (--jobs 1); the golden test reruns
# them on a multi-worker pool, so a byte-match also proves the
# determinism-under-parallelism contract.
mkdir -p tests/golden/sweeps
for sweep in scenarios/sweeps/*.swp; do
  name="$(basename "$sweep" .swp)"
  "$noc_sweep" --quiet --jobs 1 \
    -o "tests/golden/sweeps/$name.json" \
    --csv "tests/golden/sweeps/$name.csv" "$sweep"
  echo "regenerated tests/golden/sweeps/$name.{json,csv}"
done
