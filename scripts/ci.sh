#!/usr/bin/env bash
# CI entry point for one matrix configuration. Parameterized by env:
#   CI_COMPILER    gcc | clang               (default gcc)
#   CI_BUILD_TYPE  Debug | Release           (default Debug)
#   CI_SANITIZE    ON | OFF  (ASan + UBSan)  (default OFF)
#   CI_OUTPUT_DIR  artifact directory        (default ci-artifacts)
#   CI_FUZZ_N      conformance-fuzz configs  (default 50)
#   CI_VERIFY_ONLY 1 = build + verification sections only (the dedicated
#                  verify workflow job runs a large fuzz batch without
#                  repeating ctest / smokes / benches)
#   CI_COVERAGE    1 = gcc --coverage build: ctest, then the line-coverage
#                  gate (scripts/coverage_gate.py) against the baseline in
#                  scripts/coverage_baseline.txt, plus gcovr HTML/XML
#                  artifacts when gcovr is installed. Implies gcc.
#   CI_BENCH_FULL  1 = bench_speed runs its --full tier set (adds the
#                  32x32 mesh; the nightly bench job sets this — too slow
#                  for the per-PR matrix)
#   CI_TSAN        1 = ThreadSanitizer job for the threaded soa engine:
#                  configure with -DTSAN=ON, run the engine determinism
#                  test (threads 1/2/4/8) and a threaded scenario smoke,
#                  then exit — the full matrix jobs cover everything else
#   CI_NIGHTLY     1 = deep-soak extras after the verify section: the full
#                  sweep curve set (every sweep x every axis), a
#                  phased-scenario seed soak (fresh seeds, verified,
#                  cross-engine byte-compare), and a 200-config seeded
#                  fault-fuzz soak (noc_verify --fault-fuzz). The nightly
#                  workflow runs this under ASan/UBSan with CI_FUZZ_N=1000.
#
# Steps: configure (warnings-as-errors, ccache when present), build, ctest
# with JUnit output, run noc_sim over every canonical scenario spec, check
# the committed goldens are regen-clean, run the guarantee-verification
# layer (noc_verify over every canonical scenario and sweep on both
# engines, plus a fixed-seed conformance-fuzz batch — under ASan in the
# sanitize configuration), and — on plain Release — a bench_speed smoke so
# perf regressions surface.
#
# Coverage baseline-bump procedure: scripts/coverage_baseline.txt records
# the minimum acceptable src/ line coverage (whole percents). When a PR
# adds meaningful tests, raise it to lock the gain:
#   CI_COVERAGE=1 ./scripts/ci.sh      # prints the measured percentage
#   echo NN > scripts/coverage_baseline.txt
# When a PR legitimately lowers coverage (e.g. defensive paths only a
# fuzzer reaches), lower the number in the SAME PR and justify the drop in
# its description — the gate exists to make that an explicit decision, not
# to forbid it.
set -euo pipefail

cd "$(dirname "$0")/.."

compiler="${CI_COMPILER:-gcc}"
build_type="${CI_BUILD_TYPE:-Debug}"
sanitize="${CI_SANITIZE:-OFF}"
out_dir="${CI_OUTPUT_DIR:-ci-artifacts}"
fuzz_n="${CI_FUZZ_N:-50}"
verify_only="${CI_VERIFY_ONLY:-0}"
coverage="${CI_COVERAGE:-0}"
nightly="${CI_NIGHTLY:-0}"
bench_full="${CI_BENCH_FULL:-0}"
tsan="${CI_TSAN:-0}"
build_dir="build-ci"
if [[ "$coverage" == "1" ]]; then
  compiler=gcc  # gcov data needs the gcc toolchain
  build_dir="build-cov"
fi

case "$compiler" in
  gcc)   export CC=gcc CXX=g++ ;;
  clang) export CC=clang CXX=clang++ ;;
  *) echo "unknown CI_COMPILER '$compiler'" >&2; exit 1 ;;
esac

launcher_args=()
if command -v ccache >/dev/null 2>&1; then
  launcher_args+=(-DCMAKE_C_COMPILER_LAUNCHER=ccache
                  -DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

mkdir -p "$out_dir"
out_abs="$(realpath "$out_dir")"

if [[ "$tsan" == "1" ]]; then
  echo "=== TSan: threaded soa engine (data-race gate) ==="
  build_dir="build-tsan"
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DNOC_WERROR=ON \
    -DTSAN=ON \
    "${launcher_args[@]}"
  cmake --build "$build_dir" -j"$(nproc)" \
    --target engine_determinism_test noc_sim
  # The determinism test drives the worker pool through every edge class
  # (8x8/16x16 meshes, phased reconfiguration, armed faults) at threads
  # 1/2/4/8 — under TSan every cross-thread access is checked.
  ./"$build_dir"/engine_determinism_test
  # And a threaded end-to-end smoke over canonical scenarios, fault and
  # phased ones included.
  ./"$build_dir"/noc_sim --quiet --engine soa --threads 4 \
    -o "$out_dir/tsan_scenarios.json" \
    scenarios/mixed_star.scn scenarios/video_mesh.scn \
    scenarios/fault_retry_churn.scn scenarios/open_close_churn.scn
  echo "CI OK (tsan: threaded engine clean)"
  exit 0
fi

coverage_args=()
if [[ "$coverage" == "1" ]]; then
  coverage_args+=(-DCMAKE_CXX_FLAGS=--coverage)
fi

echo "=== configure + build ($compiler, $build_type, sanitize=$sanitize, coverage=$coverage) ==="
cmake -B "$build_dir" -S . \
  -DCMAKE_BUILD_TYPE="$build_type" \
  -DNOC_WERROR=ON \
  -DSANITIZE="$sanitize" \
  "${coverage_args[@]}" \
  "${launcher_args[@]}"
if [[ "$verify_only" == "1" ]]; then
  # The verification sections only need the two tools; skip the ~25 test
  # binaries, benches and examples the matrix jobs build and run anyway.
  cmake --build "$build_dir" -j"$(nproc)" --target noc_verify noc_sweep
else
  cmake --build "$build_dir" -j"$(nproc)"
fi

if [[ "$verify_only" != "1" ]]; then

echo "=== ctest ==="
ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)" \
  --output-junit "$out_abs/ctest-junit.xml"

echo "=== noc_sim scenario smoke ==="
./"$build_dir"/noc_sim --quiet -o "$out_dir/scenarios.json" scenarios/*.scn
python3 - "$out_dir/scenarios.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    results = json.load(f)
if isinstance(results, dict):  # noc_sim emits a bare object for one spec
    results = [results]
assert len(results) >= 8, f"expected >= 8 canonical scenarios, got {len(results)}"
for r in results:
    agg = r["aggregate"]
    assert agg["words_in_window"] > 0, f"{r['scenario']}: no traffic delivered"
    print(f"  {r['scenario']}: {agg['words_in_window']} words, "
          f"slot util {100 * agg['slot_utilization']:.1f}%")
EOF

echo "=== goldens-clean: committed goldens match a fresh regeneration ==="
# A builder who changes simulation behaviour but forgets to regenerate the
# goldens gets this targeted message instead of a raw byte-compare failure
# deep inside ctest.
goldens_tmp="$(mktemp -d)"
trap 'rm -rf "$goldens_tmp"' EXIT
./scripts/regen_goldens.sh "$build_dir" "$goldens_tmp" >/dev/null
if ! diff -r "$goldens_tmp" tests/golden >/dev/null 2>&1; then
  echo "--- drift (regenerated vs committed) ---"
  diff -r "$goldens_tmp" tests/golden | head -40 || true
  echo ""
  echo "error: tests/golden/ drifts from what this build regenerates."
  echo "If the simulation change is intentional, run:"
  echo "    ./scripts/regen_goldens.sh $build_dir"
  echo "and commit the golden diff (review it like any other code change)."
  exit 1
fi
echo "goldens are regen-clean"

echo "=== threaded engine: threads=4 reproduces every committed golden ==="
# The region-parallel engine's determinism contract, enforced on the real
# binary against the real goldens: soa with 4 worker threads must emit the
# same bytes as the sequential engines for every canonical scenario —
# fault and phased scenarios included.
for scn in scenarios/*.scn; do
  name="$(basename "$scn" .scn)"
  ./"$build_dir"/noc_sim --quiet --engine soa --threads 4 \
    -o "$out_dir/threaded_${name}.json" "$scn"
  cmp "$out_dir/threaded_${name}.json" "tests/golden/${name}.json"
done
echo "soa threads=4 byte-identical to the goldens on every scenario"

echo "=== fault resilience: canonical fault goldens + kill switch ==="
# The two canonical fault scenarios (network faults; config faults +
# retry) must reproduce their committed goldens byte-for-byte on BOTH
# engines — seeded fault injection is part of the determinism contract.
for name in fault_stream_star fault_retry_churn; do
  ./"$build_dir"/noc_sim --quiet -o "$out_dir/${name}_opt.json" \
    "scenarios/${name}.scn"
  ./"$build_dir"/noc_sim --quiet --engine naive \
    -o "$out_dir/${name}_naive.json" "scenarios/${name}.scn"
  cmp "$out_dir/${name}_opt.json" "tests/golden/${name}.json"
  cmp "$out_dir/${name}_naive.json" "tests/golden/${name}.json"
  echo "  ${name}: both engines match the golden"
done
# Kill switch: a zero-rate fault file installs every tap but must not
# perturb one bit of a fault-free run.
./"$build_dir"/noc_sim --quiet -o "$out_dir/killswitch_plain.json" \
  scenarios/uniform_star.scn
./"$build_dir"/noc_sim --quiet --fault scenarios/faults/zero.flt \
  -o "$out_dir/killswitch_zero.json" scenarios/uniform_star.scn
cmp "$out_dir/killswitch_plain.json" "$out_dir/killswitch_zero.json"
echo "  zero-rate fault file is byte-inert"

echo "=== observability smoke: counters + trace + noc_trace ==="
# A canonical scenario with sampling and tracing armed: the stats section
# and histograms must be present and sane, and the trace must hold every
# recorded event at the default cap (noc_trace proves it from the trace's
# own drop accounting).
./"$build_dir"/noc_sim --quiet --sample-every 300 \
  --trace "$out_dir/obs_trace.json" --stats-csv "$out_dir/obs_series.csv" \
  -o "$out_dir/obs_mixed_star.json" scenarios/mixed_star.scn
./"$build_dir"/noc_trace --assert-no-drops "$out_dir/obs_trace.json"
python3 - "$out_dir/obs_mixed_star.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
assert r["schema_version"] == 2, f"schema_version {r.get('schema_version')}"
stats = r["stats"]
assert stats["windows"], "no sample windows"
assert any(l["gt_flits"] + l["be_flits"] > 0 for l in stats["links"]), \
    "no link saw traffic"
hist = r["histograms"]["flit_latency"]["all"]
assert hist["count"] > 0, "empty flit-latency histogram"
assert hist["p50"] <= hist["p95"] <= hist["p99"] <= hist["max"]
print(f"  obs smoke: {len(stats['windows'])} windows, flit latency "
      f"p50/p95/p99 = {hist['p50']}/{hist['p95']}/{hist['p99']}")
EOF

echo "=== convergence smoke: stop-on-convergence mode (DESIGN.md §14) ==="
# A canonical scenario in --converge mode must actually converge, report a
# CI consistent with its own mean, and stop at the same cycle on both
# engines (the convergence decision is part of the determinism contract).
# The fixed-duration runs above plus the goldens-clean step already prove
# the default mode is byte-unchanged (schema_version 2, no convergence
# sections).
./"$build_dir"/noc_sim --quiet --converge 0.05 \
  -o "$out_dir/converge_uniform_star.json" scenarios/uniform_star.scn
./"$build_dir"/noc_sim --quiet --converge 0.05 --engine naive \
  -o "$out_dir/converge_uniform_star_naive.json" scenarios/uniform_star.scn
cmp "$out_dir/converge_uniform_star.json" \
    "$out_dir/converge_uniform_star_naive.json"
python3 - "$out_dir/converge_uniform_star.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
assert r["schema_version"] == 3, f"schema_version {r.get('schema_version')}"
c = r["convergence"]
assert c["converged"], "canonical scenario failed to converge at 5%"
assert c["rel_err"] <= 0.05, f"reported rel_err {c['rel_err']} above target"
assert c["ci_low"] <= c["mean"] <= c["ci_high"], "CI does not bracket mean"
print(f"  converge smoke: stopped at {c['measured_cycles']} cycles, "
      f"mean {c['mean']:.2f} in [{c['ci_low']:.2f}, {c['ci_high']:.2f}], "
      f"engines byte-identical")
EOF

fi  # verify_only

echo "=== verify: guarantee checkers over canonical scenarios + sweeps ==="
# Every canonical scenario runs with the runtime invariant monitor and the
# analytical GT bound checks armed, on every engine config (naive,
# optimized, soa, and soa threads=4), with cross-config byte-identity of
# the result JSON enforced by noc_verify itself.
./"$build_dir"/noc_verify --quiet scenarios/*.scn
# Every canonical sweep point (and saturation probe) runs checked too,
# once per engine; both engines' verified JSON must equal the committed
# golden byte-for-byte.
for swp in scenarios/sweeps/*.swp; do
  name="$(basename "$swp" .swp)"
  ./"$build_dir"/noc_sweep --quiet --verify --jobs "$(nproc)" \
    -o "$out_dir/verify_${name}.json" "$swp"
  ./"$build_dir"/noc_sweep --quiet --verify --engine naive \
    --jobs "$(nproc)" -o "$out_dir/verify_${name}_naive.json" "$swp"
  cmp "$out_dir/verify_${name}.json" "tests/golden/sweeps/${name}.json"
  cmp "$out_dir/verify_${name}_naive.json" "tests/golden/sweeps/${name}.json"
done
echo "all canonical scenarios and sweeps pass verified on both engines"

echo "=== verify: conformance fuzz (N=$fuzz_n, fixed seed) ==="
# Seeded random topologies / slot allocations / traffic mixes, checkers
# armed, both engines (the sanitize configuration runs this under ASan).
./"$build_dir"/noc_verify --quiet --fuzz "$fuzz_n" --seed 2026
echo "fuzz batch clean: $fuzz_n configs, zero invariant violations"

if [[ "$verify_only" == "1" ]]; then
  echo "CI OK (verify-only: $compiler $build_type fuzz=$fuzz_n)"
  exit 0
fi

echo "=== noc_sweep grid smoke + determinism ==="
./"$build_dir"/noc_sweep --validate scenarios/sweeps/*.swp
# The determinism-under-parallelism contract, enforced on the real
# binary: a canonical sweep must emit byte-identical JSON and CSV for
# --jobs 1 and --jobs 8.
./"$build_dir"/noc_sweep --quiet --jobs 1 \
  -o "$out_dir/sweep_jobs1.json" --csv "$out_dir/sweep_jobs1.csv" \
  scenarios/sweeps/rate_uniform_star.swp
./"$build_dir"/noc_sweep --quiet --jobs 8 \
  -o "$out_dir/sweep_jobs8.json" --csv "$out_dir/sweep_jobs8.csv" \
  scenarios/sweeps/rate_uniform_star.swp
cmp "$out_dir/sweep_jobs1.json" "$out_dir/sweep_jobs8.json"
cmp "$out_dir/sweep_jobs1.csv" "$out_dir/sweep_jobs8.csv"
echo "sweep output byte-identical across --jobs 1 / --jobs 8"
./"$build_dir"/noc_sweep --quiet --jobs 8 --curve rate \
  --csv "$out_dir/sweep_curve.csv" scenarios/sweeps/rate_uniform_star.swp
python3 - "$out_dir/sweep_jobs8.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    sweep = json.load(f)
points = sweep["points"]
assert len(points) >= 4, f"expected a real grid, got {len(points)} points"
for p in points:
    assert p["aggregate"]["words_in_window"] > 0, \
        f"point {p['index']}: no traffic delivered"
print(f"  {sweep['sweep']}: {len(points)} points, all delivering")
EOF

if [[ "$nightly" == "1" ]]; then
  echo "=== nightly: full sweep curve set (every sweep x every axis) ==="
  for swp in scenarios/sweeps/*.swp; do
    name="$(basename "$swp" .swp)"
    for axis in $(awk '$1 == "axis" {print $2}' "$swp"); do
      safe="${axis//./_}"
      ./"$build_dir"/noc_sweep --quiet --jobs "$(nproc)" --curve "$axis" \
        --csv "$out_dir/curve_${name}_${safe}.csv" "$swp"
      echo "  curve ${name} / ${axis}"
    done
  done

  echo "=== nightly: phased-scenario seed soak (verified, both engines) ==="
  # Fresh seeds leave the golden-locked path on purpose: every seed must
  # still pass the full verification layer, and the optimized and naive
  # engines must stay byte-identical on each.
  for scn in $(grep -l '^phase ' scenarios/*.scn); do
    name="$(basename "$scn" .scn)"
    for seed in 1001 1002 1003 1004 1005; do
      ./"$build_dir"/noc_sim --quiet --verify --seed "$seed" \
        -o "$out_dir/soak_${name}_${seed}.json" "$scn"
      ./"$build_dir"/noc_sim --quiet --verify --seed "$seed" --engine naive \
        -o "$out_dir/soak_${name}_${seed}_naive.json" "$scn"
      cmp "$out_dir/soak_${name}_${seed}.json" \
          "$out_dir/soak_${name}_${seed}_naive.json"
    done
    echo "  ${name}: 5 seeds verified, engines byte-identical"
  done

  echo "=== nightly: observability artifacts (phased fault scenario) ==="
  # Full-fidelity stats CSV + Chrome trace for the phased fault scenario,
  # uploaded as nightly artifacts so a regression in fault behaviour can
  # be inspected without rerunning anything locally.
  ./"$build_dir"/noc_sim --quiet --sample-every 300 \
    --trace "$out_dir/fault_retry_churn_trace.json" \
    --stats-csv "$out_dir/fault_retry_churn_series.csv" \
    -o "$out_dir/fault_retry_churn_obs.json" scenarios/fault_retry_churn.scn
  ./"$build_dir"/noc_trace "$out_dir/fault_retry_churn_trace.json"
  # Fault events must actually appear in the trace for it to be useful.
  grep -q '"cat":"fault"' "$out_dir/fault_retry_churn_trace.json"
  echo "  fault_retry_churn: stats CSV + trace emitted, fault events present"

  echo "=== nightly: sweep with convergence CIs (artifact) ==="
  # The canonical rate sweep rerun in stop-on-convergence mode: every
  # point carries batch-means error bars in the JSON and the CSV grows
  # the ci_low/ci_high/rel_err columns. Uploaded as a nightly artifact so
  # latency curves can be plotted with confidence intervals directly.
  ./"$build_dir"/noc_sweep --quiet --jobs "$(nproc)" --converge 0.05 \
    -o "$out_dir/converge_rate_uniform_star.json" \
    --csv "$out_dir/converge_rate_uniform_star.csv" \
    scenarios/sweeps/rate_uniform_star.swp
  python3 - "$out_dir/converge_rate_uniform_star.json" \
      "$out_dir/converge_rate_uniform_star.csv" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    sweep = json.load(f)
assert sweep["schema_version"] == 3, \
    f"schema_version {sweep.get('schema_version')}"
n_conv = sum(1 for p in sweep["points"] if p["convergence"]["converged"])
with open(sys.argv[2]) as f:
    header = f.readline().strip().split(",")
for col in ("converged", "ci_low", "ci_high", "rel_err"):
    assert col in header, f"CSV lacks {col} column: {header}"
print(f"  converge sweep: {n_conv}/{len(sweep['points'])} points "
      f"converged, CSV carries CI columns")
EOF
  echo "  sweep-with-CIs artifact emitted"

  echo "=== nightly: fault-fuzz soak (N=200, seeded random fault configs) ==="
  # Random stream workloads each under a random seeded fault mix, checkers
  # armed, both engines: every violation must be classified fault-induced
  # (degradations), nothing unexplained, engines byte-identical.
  ./"$build_dir"/noc_verify --quiet --fault-fuzz 200 --seed 2026
  echo "fault-fuzz soak clean: 200 faulted configs, zero unexplained"
fi

# Perf smoke only where the numbers mean something (optimizer on, no
# sanitizer overhead). The committed BENCH_speed.json stays the curated
# baseline; CI gates on a conservative floor for noisy shared runners.
if [[ "$build_type" == "Release" && "$sanitize" == "OFF" ]]; then
  echo "=== bench_speed smoke ==="
  bench_args=()
  if [[ "$bench_full" == "1" ]]; then
    bench_args+=(--full)  # adds the 32x32 tier (nightly bench job)
  fi
  ./"$build_dir"/bench_speed "${bench_args[@]}" "$out_dir/BENCH_speed_ci.json"
  python3 - "$out_dir/BENCH_speed_ci.json" BENCH_speed.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
with open(sys.argv[2]) as f:
    baseline = json.load(f)
ratio = data["speedup_4x4_mixed"]["ratio"]
print(f"bench_speed smoke: 4x4 mixed speedup = {ratio:.2f}x")
assert ratio >= 1.5, f"optimized engine speedup collapsed: {ratio:.2f}x"

# Perf regression gate: the 8x8 mixed tier (the ISSUE-7 acceptance
# workload) must stay within 20% of the committed BENCH_speed.json
# baseline on every engine it records. bench_speed already takes the
# best of five repetitions per cell, which absorbs most runner noise.
def kcps(doc, engine):
    for row in doc["results"]:
        if (row["mesh"], row["traffic"], row["engine"]) ==            ("8x8", "mixed", engine):
            return row["kcycles_per_sec"]
    return None

for engine in ("optimized", "soa"):
    base = kcps(baseline, engine)
    got = kcps(data, engine)
    assert base is not None, f"baseline lacks 8x8 mixed {engine} row"
    assert got is not None, f"CI run lacks 8x8 mixed {engine} row"
    floor = 0.8 * base
    print(f"bench_speed gate: 8x8 mixed {engine} = {got:.1f} kcyc/s "
          f"(baseline {base:.1f}, floor {floor:.1f})")
    assert got >= floor, (
        f"8x8 mixed {engine} regressed >20%: {got:.1f} kcyc/s vs "
        f"baseline {base:.1f}")

# Observability gate (ISSUE-8): with taps off the subsystem must cost
# nothing — the obs-off 8x8 mixed rate must stay within 2% of the
# committed baseline. Unlike the 20% catch-all above, this one targets
# death-by-a-thousand-branches on the hot path specifically; override
# CI_BENCH_OBS_MIN (e.g. 0.90) on runners too noisy for a 2% bar.
import os
obs_min = float(os.environ.get("CI_BENCH_OBS_MIN", "0.98"))
base = kcps(baseline, "optimized")
got = kcps(data, "optimized")
print(f"bench_speed obs gate: 8x8 mixed optimized = {got:.1f} kcyc/s "
      f"(baseline {base:.1f}, floor {obs_min:.2f}x)")
assert got >= obs_min * base, (
    f"obs-off overhead exceeds {(1 - obs_min) * 100:.0f}%: {got:.1f} "
    f"kcyc/s vs baseline {base:.1f}")

# And when taps ARE armed, the in-process interleaved pairing (same
# binary, same cells, alternating reps) bounds the armed slowdown.
obs = data["obs_overhead_8x8_mixed"]
print(f"bench_speed obs gate: armed/off flit rate ratio = "
      f"{obs['ratio']:.3f}")
assert obs["ratio"] >= 0.50, (
    f"armed observability taps halved the cycle rate: {obs['ratio']:.3f}")

# Threaded engine gate (ISSUE-10): soa threads=4 must reach >= 2x the
# single-thread soa rate on 8x8 mixed — but only where the hardware can
# express it. Runners with fewer than 4 cores record their honest number
# without failing (a 1-core container cannot speed anything up).
thr = data["threaded_speedup_8x8_mixed"]
print(f"bench_speed threaded gate: soa threads=4 vs 1 = "
      f"{thr['ratio']:.2f}x on {thr['cores']} core(s)")
if thr["cores"] >= 4:
    assert thr["ratio"] >= 2.0, (
        f"threaded speedup {thr['ratio']:.2f}x below 2x on "
        f"{thr['cores']} cores")
else:
    print("  (< 4 cores: recording honest ratio, gate not applied)")
EOF

  echo "=== bench_sweep smoke ==="
  ./"$build_dir"/bench_sweep "$out_dir/BENCH_sweep_ci.json"
  python3 - "$out_dir/BENCH_sweep_ci.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
cores = data["cores"]
ratio = data["speedup"]["ratio"]
print(f"bench_sweep smoke: jobs=8 speedup = {ratio:.2f}x on {cores} cores")
# The acceptance bar (>= 3x at 8 jobs) needs 8 physical cores; scale the
# floor down for smaller runners and only sanity-check overhead below 2.
if cores >= 8:
    floor = 3.0
elif cores >= 4:
    floor = 2.0
elif cores >= 2:
    floor = 1.3
else:
    floor = 0.8  # 1 core: only catch pathological pool overhead
assert ratio >= floor, \
    f"parallel sweep speedup {ratio:.2f}x below floor {floor}x ({cores} cores)"
EOF
fi

if [[ "$coverage" == "1" ]]; then
  echo "=== coverage: src/ line-coverage gate ==="
  # Pretty per-file HTML/XML artifacts when gcovr is installed (the CI
  # workflow pip-installs it); the pass/fail gate itself needs only gcov.
  if command -v gcovr >/dev/null 2>&1; then
    gcovr --root . --filter 'src/' \
      --xml "$out_dir/coverage.xml" \
      --html --html-details -o "$out_dir/coverage.html" \
      "$build_dir" || echo "gcovr failed (non-fatal); the gate still runs"
  else
    echo "gcovr not installed; skipping HTML/XML artifacts"
  fi
  python3 scripts/coverage_gate.py "$build_dir" "$out_dir/coverage.json"
fi

echo "CI OK ($compiler $build_type sanitize=$sanitize coverage=$coverage nightly=$nightly)"
