#!/usr/bin/env bash
# CI entry point: configure + build + test in Debug, then build Release and
# run a bench_speed smoke iteration so perf regressions surface in CI.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== Debug: configure, build, ctest ==="
cmake -B build-debug -S . -DCMAKE_BUILD_TYPE=Debug
cmake --build build-debug -j"$(nproc)"
ctest --test-dir build-debug --output-on-failure -j"$(nproc)"

echo "=== Release: configure, build ==="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j"$(nproc)"

echo "=== Release: bench_speed smoke ==="
# Writes the JSON to a scratch path; the committed BENCH_speed.json is the
# curated baseline and is regenerated deliberately, not by CI.
./build-release/bench_speed /tmp/BENCH_speed_ci.json
python3 - <<'EOF' || exit 1
import json
with open("/tmp/BENCH_speed_ci.json") as f:
    data = json.load(f)
ratio = data["speedup_4x4_mixed"]["ratio"]
print(f"bench_speed smoke: 4x4 mixed speedup = {ratio:.2f}x")
# CI machines are noisy; gate on a conservative floor rather than the
# committed-baseline target of 3.0.
assert ratio >= 1.5, f"optimized engine speedup collapsed: {ratio:.2f}x"
EOF

echo "CI OK"
