#!/usr/bin/env python3
"""Line-coverage gate for src/.

Aggregates gcov data (gcc --coverage build) over every object file in the
build directory, computes the union line coverage of each src/ file, and
fails if the total line coverage of src/ drops below the recorded baseline
in scripts/coverage_baseline.txt.

Usage: coverage_gate.py BUILD_DIR [ARTIFACT_JSON]

Baseline-bump procedure (documented in scripts/ci.sh): when a PR
legitimately raises coverage, tighten the baseline to lock the gain; when
it legitimately lowers it (e.g. new defensive code that only a fuzzer
reaches), lower the number in scripts/coverage_baseline.txt in the same PR
and justify the drop in the PR description. The gate uses whole percents
so formatting noise never flips it.
"""
import gzip
import json
import os
import subprocess
import sys


def gcov_json(gcda, build_dir):
    """Runs gcov --json-format --stdout on one .gcda; yields file records."""
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", gcda],
        cwd=build_dir, capture_output=True)
    if proc.returncode != 0:
        return
    # --stdout emits one JSON document per input file (possibly gzipped on
    # older gcc; 9+ prints plain JSON lines).
    text = proc.stdout
    if text[:2] == b"\x1f\x8b":
        text = gzip.decompress(text)
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            continue
        for record in doc.get("files", []):
            yield record


def main():
    if len(sys.argv) < 2:
        sys.exit("usage: coverage_gate.py BUILD_DIR [ARTIFACT_JSON]")
    build_dir = os.path.abspath(sys.argv[1])
    artifact = sys.argv[2] if len(sys.argv) > 2 else None
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

    gcdas = []
    for root, _dirs, files in os.walk(build_dir):
        gcdas.extend(os.path.join(root, f)
                     for f in files if f.endswith(".gcda"))
    if not gcdas:
        sys.exit(f"coverage_gate: no .gcda files under {build_dir} — "
                 "was the build configured with --coverage and the tests run?")

    # Union coverage per source file: a line counts as covered if ANY
    # object (test binary, tool, bench) executed it.
    executable = {}  # path -> set(line)
    executed = {}    # path -> set(line)
    for gcda in gcdas:
        for record in gcov_json(gcda, build_dir):
            path = record.get("file", "")
            if not os.path.isabs(path):
                path = os.path.normpath(os.path.join(build_dir, path))
            rel = os.path.relpath(path, repo)
            if not rel.startswith("src" + os.sep):
                continue
            exe = executable.setdefault(rel, set())
            hit = executed.setdefault(rel, set())
            for line in record.get("lines", []):
                number = line.get("line_number")
                if number is None:
                    continue
                exe.add(number)
                if line.get("count", 0) > 0:
                    hit.add(number)

    if not executable:
        sys.exit("coverage_gate: no src/ coverage records found")

    total_exe = sum(len(s) for s in executable.values())
    total_hit = sum(len(executed[f]) for f in executable)
    percent = 100.0 * total_hit / total_exe

    per_file = {
        f: {"lines": len(executable[f]), "covered": len(executed[f])}
        for f in sorted(executable)
    }
    worst = sorted(
        ((v["covered"] / v["lines"], f) for f, v in per_file.items()
         if v["lines"] > 0))[:8]
    print(f"coverage_gate: src/ line coverage {percent:.2f}% "
          f"({total_hit}/{total_exe} lines over {len(per_file)} files)")
    for frac, f in worst:
        print(f"  lowest: {f} {100 * frac:.1f}%")

    if artifact:
        with open(artifact, "w") as out:
            json.dump({"percent": round(percent, 2),
                       "lines": total_exe, "covered": total_hit,
                       "files": per_file}, out, indent=1, sort_keys=True)
        print(f"coverage_gate: wrote {artifact}")

    baseline_path = os.path.join(repo, "scripts", "coverage_baseline.txt")
    with open(baseline_path) as f:
        baseline = float(f.read().split()[0])
    if percent + 1e-9 < baseline:
        sys.exit(f"coverage_gate: src/ line coverage {percent:.2f}% fell "
                 f"below the recorded baseline {baseline:.2f}% "
                 f"({baseline_path}). If the drop is intentional, lower the "
                 "baseline in the same PR and say why; see scripts/ci.sh.")
    print(f"coverage_gate: OK (baseline {baseline:.2f}%)")


if __name__ == "__main__":
    main()
