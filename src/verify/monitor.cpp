#include "verify/monitor.h"

#include <algorithm>
#include <sstream>

#include "core/registers.h"
#include "link/flit.h"
#include "link/header.h"
#include "util/check.h"

namespace aethereal::verify {

using link::Flit;
using link::FlitKind;
using link::PacketHeader;

namespace {

/// A mismatch must be seen this many times for the same (NI, slot) before
/// it is reported: a legitimate register update (open/close staged one
/// cycle before the allocator table changes) can disagree for at most one
/// observation of a slot index.
constexpr int kStuMismatchThreshold = 2;

/// Recorded-violation cap; total_violations() keeps counting beyond it.
constexpr std::size_t kMaxRecorded = 64;

/// How far ahead of the expectation FIFO the delivery matcher scans when a
/// drop fault may have consumed the oldest entries. Bounds the cost of a
/// pathological mismatch; low fault rates drop far fewer flits back to
/// back.
constexpr std::size_t kMaxResyncScan = 64;

}  // namespace

Monitor::Monitor(std::string name) : sim::Module(std::move(name)) {
  // The monitor is a pure observer: no registered state, nothing to
  // commit, and all work happens at slot boundaries.
  SetEvaluateStride(kFlitWords);
  SetDefaultCommitOnly();
}

Monitor::~Monitor() = default;

void Monitor::Attach(MonitorHookup hookup) {
  AETHEREAL_CHECK_MSG(!attached_, "monitor already attached");
  AETHEREAL_CHECK(hookup.topology != nullptr && hookup.allocator != nullptr);
  const auto num_nis = hookup.nis.size();
  AETHEREAL_CHECK(hookup.injection.size() == num_nis &&
                  hookup.delivery.size() == num_nis);
  hookup_ = std::move(hookup);
  table_slots_ = hookup_.allocator->num_slots();
  max_qid_ = link::kMaxQueueId + 1;
  prev_snapshot_.resize(num_nis);
  open_inj_gt_.resize(num_nis);
  open_inj_be_.resize(num_nis);
  open_del_gt_.resize(num_nis);
  open_del_be_.resize(num_nis);
  ledgers_.resize(num_nis * static_cast<std::size_t>(max_qid_));
  stu_mismatch_streak_.assign(
      num_nis * static_cast<std::size_t>(table_slots_), 0);
  stu_mismatch_reported_.assign(
      num_nis * static_cast<std::size_t>(table_slots_), false);
  attached_ = true;
}

int Monitor::LedgerIndex(NiId ni, int qid) const {
  AETHEREAL_CHECK(ni >= 0 && static_cast<std::size_t>(ni) < hookup_.nis.size());
  AETHEREAL_CHECK(qid >= 0 && qid < max_qid_);
  return ni * max_qid_ + qid;
}

Monitor::ChannelLedger& Monitor::Ledger(int index) {
  return ledgers_[static_cast<std::size_t>(index)];
}

void Monitor::Report(const char* check, std::string message,
                     bool fault_induced) {
  ++total_violations_;
  if (fault_induced) ++fault_violations_;
  if (violations_.size() < kMaxRecorded) {
    violations_.push_back(
        Violation{clock() != nullptr ? CycleCount() : 0, check,
                  std::move(message), fault_induced});
  }
}

void Monitor::RefreshPairs() {
  if (!hookup_.pairs_version || !hookup_.channel_pairs) return;
  const std::int64_t version = hookup_.pairs_version();
  if (version == pairs_version_seen_) return;
  pairs_version_seen_ = version;
  std::vector<int> old_peer(ledgers_.size());
  for (std::size_t i = 0; i < ledgers_.size(); ++i) {
    old_peer[i] = ledgers_[i].peer;
    ledgers_[i].peer = -1;
  }
  for (const auto& [a, b] : hookup_.channel_pairs()) {
    // a sends into b's destination queue and vice versa, so the ledger of
    // destination b is paired with the ledger of destination a: credits
    // addressed to a acknowledge words delivered to b.
    const int la = LedgerIndex(a.ni, a.channel);
    const int lb = LedgerIndex(b.ni, b.channel);
    Ledger(la).peer = lb;
    Ledger(lb).peer = la;
  }
  // A queue re-paired with a DIFFERENT partner (close + reopen) starts a
  // fresh credit loop: its conservation counters must restart with it, or
  // the old connection's totals would fire false violations against the
  // new partner's zeroed ledger. (Reconfiguring while old traffic is
  // still in flight remains outside the checked envelope.)
  for (std::size_t i = 0; i < ledgers_.size(); ++i) {
    ChannelLedger& ledger = ledgers_[i];
    if (ledger.peer != -1 && old_peer[i] != -1 &&
        ledger.peer != old_peer[i]) {
      ledger.sent_words = 0;
      ledger.delivered_words = 0;
      ledger.credits_in = 0;
      ledger.capacity = -1;
    }
  }
}

NiId Monitor::ResolveDestination(NiId ni, const link::SourcePath& path) {
  RouterId router = hookup_.topology->NiRouter(ni);
  link::SourcePath rest = path;
  while (!rest.Exhausted()) {
    const int port = rest.NextHop();
    if (port < 0 || port >= hookup_.topology->RouterPorts(router)) {
      std::ostringstream oss;
      oss << "packet from ni" << ni << " routes to port " << port
          << " of router" << router << " which has "
          << hookup_.topology->RouterPorts(router) << " ports";
      Report("gt-route-conformance", oss.str());
      return kInvalidId;
    }
    const topology::Endpoint& peer = hookup_.topology->PortPeer(router, port);
    rest = rest.Consume();
    if (peer.kind == topology::EndpointKind::kNi) {
      if (!rest.Exhausted()) {
        std::ostringstream oss;
        oss << "packet from ni" << ni << " reaches ni" << peer.id
            << " with unconsumed path hops";
        Report("gt-route-conformance", oss.str());
        return kInvalidId;
      }
      return peer.id;
    }
    if (peer.kind != topology::EndpointKind::kRouter) {
      std::ostringstream oss;
      oss << "packet from ni" << ni << " routes into unconnected port "
          << port << " of router" << router;
      Report("gt-route-conformance", oss.str());
      return kInvalidId;
    }
    router = peer.id;
  }
  std::ostringstream oss;
  oss << "packet from ni" << ni << " has an empty source path";
  Report("gt-route-conformance", oss.str());
  return kInvalidId;
}

void Monitor::CheckStuConformance(SlotIndex slot) {
  // An enabled channel owning STU slot `slot` must be backed by an
  // allocator reservation on the NI's injection link for the same channel.
  // (The reverse — reserved but not yet programmed — is the normal state
  // during connection setup and is fine.)
  for (std::size_t n = 0; n < hookup_.nis.size(); ++n) {
    const auto ni = static_cast<NiId>(n);
    const std::size_t key =
        n * static_cast<std::size_t>(table_slots_) +
        static_cast<std::size_t>(slot);
    const ChannelId stu_owner = hookup_.nis[n]->SlotOwner(slot);
    bool mismatch = false;
    if (stu_owner != kInvalidId &&
        hookup_.nis[n]->ChannelEnabled(stu_owner)) {
      const tdm::SlotTable& table = hookup_.allocator->TableOf(
          topology::LinkId{/*from_ni=*/true, ni, /*port=*/0});
      const tdm::GlobalChannel& owner = table.Owner(slot);
      mismatch = !(owner == tdm::GlobalChannel{ni, stu_owner});
    }
    if (!mismatch) {
      stu_mismatch_streak_[key] = 0;
      continue;
    }
    if (++stu_mismatch_streak_[key] >= kStuMismatchThreshold &&
        !stu_mismatch_reported_[key]) {
      stu_mismatch_reported_[key] = true;
      std::ostringstream oss;
      oss << "ni" << ni << " STU slot " << slot << " owned by enabled channel "
          << stu_owner << " without a matching allocator reservation";
      Report("stu-allocator-conformance", oss.str());
    }
  }
}

void Monitor::ObserveInjection(NiId ni, const Flit& flit) {
  ++flits_checked_;
  OpenPacket& open = flit.gt ? open_inj_gt_[static_cast<std::size_t>(ni)]
                             : open_inj_be_[static_cast<std::size_t>(ni)];
  const Cycle now = CycleCount();

  ExpectedFlit expect;
  expect.kind = flit.kind;
  expect.gt = flit.gt;
  expect.eop = flit.eop;

  if (flit.kind == FlitKind::kHeader) {
    const PacketHeader header = PacketHeader::Decode(flit.words[0]);
    if (header.gt != flit.gt) {
      std::ostringstream oss;
      oss << "ni" << ni << " injected a flit whose sideband class disagrees "
          << "with its header";
      Report("flit-integrity", oss.str());
    }
    const NiId dest = ResolveDestination(ni, header.path);
    if (dest == kInvalidId) return;  // already reported
    if (header.remote_qid >=
        hookup_.nis[static_cast<std::size_t>(dest)]->params().TotalChannels()) {
      // Diagnose the corruption instead of letting the capacity lookup
      // CHECK-abort on the nonexistent queue (the destination NI kernel
      // still treats the arrival itself as fatal, per its contract).
      std::ostringstream oss;
      oss << "ni" << ni << " packet addresses queue " << header.remote_qid
          << " of ni" << dest << " which has only "
          << hookup_.nis[static_cast<std::size_t>(dest)]->params()
                 .TotalChannels()
          << " channels";
      Report("gt-route-conformance", oss.str());
      return;
    }
    if (open.ledger != -1) {
      std::ostringstream oss;
      oss << "ni" << ni << " injected a " << (flit.gt ? "GT" : "BE")
          << " header while a packet of the same class is open";
      Report("flit-ordering", oss.str());
    }
    open.ledger = LedgerIndex(dest, header.remote_qid);
    open.hops = header.path.HopCount();
    expect.credits = header.credits;

    if (flit.gt) {
      // Drive-time slot-table conformance (the tables were snapshotted one
      // slot before this flit became observable).
      const SlotSnapshot& snap = prev_snapshot_[static_cast<std::size_t>(ni)];
      if (snap.valid) {
        if (!snap.alloc_owner.valid()) {
          std::ostringstream oss;
          oss << "ni" << ni << " injected a GT flit in slot " << snap.slot
              << " which is not reserved on its injection link";
          Report("gt-slot-reservation", oss.str());
        } else if (snap.alloc_owner.ni != ni) {
          std::ostringstream oss;
          oss << "ni" << ni << " injected a GT flit in slot " << snap.slot
              << " reserved for " << "ni" << snap.alloc_owner.ni << ".ch"
              << snap.alloc_owner.channel;
          Report("gt-slot-reservation", oss.str());
        } else {
          if (snap.stu_owner != snap.alloc_owner.channel) {
            std::ostringstream oss;
            oss << "ni" << ni << " STU granted channel " << snap.stu_owner
                << " slot " << snap.slot << " but the allocator reserved it "
                << "for channel " << snap.alloc_owner.channel;
            Report("gt-slot-reservation", oss.str());
          }
          // The emitting channel's configured route must be the route the
          // packet actually took.
          auto reg = hookup_.nis[static_cast<std::size_t>(ni)]->ReadRegister(
              core::regs::ChannelRegAddr(snap.alloc_owner.channel,
                                         core::regs::ChannelReg::kPathRqid));
          if (reg.ok()) {
            const link::SourcePath conf_path = core::regs::UnpackPath(*reg);
            const int conf_rqid = core::regs::UnpackRqid(*reg);
            if (!(conf_path == header.path) ||
                conf_rqid != header.remote_qid) {
              std::ostringstream oss;
              oss << "ni" << ni << " channel " << snap.alloc_owner.channel
                  << " emitted a GT header whose path/rqid differ from its "
                  << "configured PATH_RQID register";
              Report("gt-route-conformance", oss.str());
            }
          }
        }
      }
    }

  } else {
    if (open.ledger == -1) {
      std::ostringstream oss;
      oss << "ni" << ni << " injected a " << (flit.gt ? "GT" : "BE")
          << " payload flit with no packet open";
      Report("flit-ordering", oss.str());
      return;
    }
    if (flit.gt) {
      // Payload flits of a GT packet must stay inside reserved slots too
      // (a packet overrunning its contiguous run lands here).
      const SlotSnapshot& snap = prev_snapshot_[static_cast<std::size_t>(ni)];
      if (snap.valid &&
          (!snap.alloc_owner.valid() || snap.alloc_owner.ni != ni)) {
        std::ostringstream oss;
        oss << "ni" << ni << " GT payload flit in slot " << snap.slot
            << " which is not reserved for this NI on its injection link";
        Report("gt-slot-reservation", oss.str());
      }
    }
  }

  // Payload words (header word excluded) and the conservation ledger.
  const int first = flit.kind == FlitKind::kHeader ? 1 : 0;
  for (int i = first; i < flit.valid_words; ++i) {
    expect.payload[static_cast<std::size_t>(expect.payload_words++)] =
        flit.words[static_cast<std::size_t>(i)];
  }
  ChannelLedger& ledger = Ledger(open.ledger);
  ledger.sent_words += expect.payload_words;
  if (flit.gt) gt_words_sent_ += expect.payload_words;
  if (ledger.capacity < 0 && hookup_.dest_queue_words) {
    ledger.capacity = hookup_.dest_queue_words(tdm::GlobalChannel{
        static_cast<NiId>(open.ledger / max_qid_), open.ledger % max_qid_});
  }
  if (ledger.peer >= 0 && ledger.capacity >= 0) {
    // Space conservation for the sender: words in the network or the
    // destination queue can never exceed the queue capacity. The tap sees
    // sends one slot late and credit returns no later than the sender, so
    // this difference is a strict lower bound on capacity - Space.
    const std::int64_t outstanding =
        ledger.sent_words - Ledger(ledger.peer).credits_in;
    if (outstanding > ledger.capacity) {
      std::ostringstream oss;
      oss << "credit conservation violated toward ni"
          << open.ledger / max_qid_ << ".q" << open.ledger % max_qid_
          << ": " << ledger.sent_words << " words sent, "
          << Ledger(ledger.peer).credits_in
          << " credits returned, capacity " << ledger.capacity;
      // Dropped credit-carrying headers starve the loop; with drop faults
      // armed the imbalance is expected degradation, not a simulator bug.
      Report("credit-conservation", oss.str(),
             fault_context_.drops_possible);
    }
  }

  expect.arrival = flit.gt ? now + static_cast<Cycle>(open.hops) * kFlitWords
                           : Cycle{-1};
  ledger.expected.push_back(expect);
  if (flit.eop) open.ledger = -1;
}

void Monitor::ObserveDelivery(NiId ni, const Flit& flit) {
  OpenPacket& open = flit.gt ? open_del_gt_[static_cast<std::size_t>(ni)]
                             : open_del_be_[static_cast<std::size_t>(ni)];
  const Cycle now = CycleCount();

  int credits = 0;
  if (flit.kind == FlitKind::kHeader) {
    const PacketHeader header = PacketHeader::Decode(flit.words[0]);
    if (!header.path.Exhausted()) {
      std::ostringstream oss;
      oss << "ni" << ni << " received a packet with unconsumed path hops";
      Report("gt-route-conformance", oss.str());
    }
    if (header.remote_qid >=
        hookup_.nis[static_cast<std::size_t>(ni)]->params().TotalChannels()) {
      std::ostringstream oss;
      oss << "ni" << ni << " received a packet for queue "
          << header.remote_qid << " which it does not have";
      Report("gt-route-conformance", oss.str());
      return;
    }
    open.ledger = LedgerIndex(ni, header.remote_qid);
    credits = header.credits;
  } else if (open.ledger == -1) {
    std::ostringstream oss;
    oss << "ni" << ni << " received a " << (flit.gt ? "GT" : "BE")
        << " payload flit with no packet open";
    Report("flit-ordering", oss.str());
    return;
  }

  ChannelLedger& ledger = Ledger(open.ledger);
  const int qid = open.ledger % max_qid_;
  if (flit.eop) open.ledger = -1;

  if (ledger.expected.empty()) {
    std::ostringstream oss;
    oss << "ni" << ni << ".q" << qid << " received a flit that never "
        << "entered the network (injection tap saw nothing)";
    Report("flit-ordering", oss.str());
    return;
  }
  // In-order, uncorrupted delivery: the flit must be exactly the oldest
  // in-flight flit for this destination queue.
  int payload_words = 0;
  std::array<Word, kFlitWords> payload{};
  const int first = flit.kind == FlitKind::kHeader ? 1 : 0;
  for (int i = first; i < flit.valid_words; ++i) {
    payload[static_cast<std::size_t>(payload_words++)] =
        flit.words[static_cast<std::size_t>(i)];
  }
  const auto fields_of = [&](const ExpectedFlit& e) {
    return e.kind == flit.kind && e.gt == flit.gt && e.eop == flit.eop &&
           e.credits == credits && e.payload_words == payload_words;
  };
  const auto words_of = [&](const ExpectedFlit& e) {
    for (int i = 0; i < payload_words; ++i) {
      if (e.payload[static_cast<std::size_t>(i)] !=
          payload[static_cast<std::size_t>(i)]) {
        return false;
      }
    }
    return true;
  };

  ExpectedFlit expect = ledger.expected.front();
  const bool front_matches = fields_of(expect) && words_of(expect);
  // Under drop faults a word-exact front match that misses its GT deadline
  // is suspect: periodic sources repeat payloads, so after a drop the NEXT
  // flit matches the dropped flit's entry word-for-word and the whole
  // expectation queue would stay shifted (every later arrival one slot
  // revolution "late"). Only the deadline discriminates; prefer the
  // deadline-exact entry further in the queue.
  const bool front_on_time =
      !flit.gt || expect.arrival < 0 || expect.arrival == now;
  if (front_matches &&
      (front_on_time || !fault_context_.drops_possible)) {
    ledger.expected.pop_front();
  } else if (!front_matches && fields_of(expect) && front_on_time &&
             fault_context_.corruption_possible) {
    // Framing, class, credits and word count all agree with the oldest
    // in-flight flit — only payload bits differ. That is exactly what the
    // armed corruption fault does: delivered, degraded.
    ledger.expected.pop_front();
    ++fault_corrupted_flits_;
    std::ostringstream oss;
    oss << "ni" << ni << ".q" << qid
        << " payload corrupted in flight (fault-injected bit flip)";
    Report("flit-integrity", oss.str(), /*fault_induced=*/true);
  } else {
    // Under drop faults the oldest expectation(s) may simply never
    // arrive: scan a bounded window ahead for the entry this flit really
    // is. A GT flit is pinned to its per-flit deadline, which only the
    // true entry satisfies; with corruption also armed, a deadline-exact
    // GT candidate whose fields agree may differ in payload (dropped
    // predecessors AND a bit flip on the survivor).
    bool resynced = false;
    if (fault_context_.drops_possible) {
      const std::size_t limit =
          std::min(ledger.expected.size(), kMaxResyncScan);
      for (std::size_t k = 1; k < limit; ++k) {
        const ExpectedFlit& cand = ledger.expected[k];
        const bool deadline_ok =
            !flit.gt || cand.arrival < 0 || cand.arrival == now;
        if (!deadline_ok || !fields_of(cand)) continue;
        const bool cand_words = words_of(cand);
        const bool corrupted_survivor =
            !cand_words && flit.gt && cand.arrival == now &&
            fault_context_.corruption_possible;
        if (!cand_words && !corrupted_survivor) continue;
        std::int64_t words_lost = 0;
        for (std::size_t d = 0; d < k; ++d) {
          words_lost += ledger.expected[d].payload_words;
        }
        fault_lost_flits_ += static_cast<std::int64_t>(k);
        fault_lost_words_ += words_lost;
        ledger.sent_words -= words_lost;  // never reached the queue
        std::ostringstream oss;
        oss << "ni" << ni << ".q" << qid << " resynced past " << k
            << " flit(s) (" << words_lost
            << " word(s)) lost to injected drop faults";
        Report("flit-loss", oss.str(), /*fault_induced=*/true);
        if (corrupted_survivor) {
          ++fault_corrupted_flits_;
          std::ostringstream coss;
          coss << "ni" << ni << ".q" << qid
               << " payload corrupted in flight (fault-injected bit flip)";
          Report("flit-integrity", coss.str(), /*fault_induced=*/true);
        }
        ledger.expected.erase(
            ledger.expected.begin(),
            ledger.expected.begin() + static_cast<std::ptrdiff_t>(k));
        expect = ledger.expected.front();
        ledger.expected.pop_front();
        resynced = true;
        break;
      }
    }
    if (!resynced) {
      ledger.expected.pop_front();
      if (front_matches) {
        // The front really was this flit, merely late; the GT-timing check
        // below reports the contract breach.
      } else if (fields_of(expect) && fault_context_.corruption_possible) {
        ++fault_corrupted_flits_;
        std::ostringstream oss;
        oss << "ni" << ni << ".q" << qid
            << " payload corrupted in flight (fault-injected bit flip)";
        Report("flit-integrity", oss.str(), /*fault_induced=*/true);
      } else {
        std::ostringstream oss;
        oss << "ni" << ni << ".q" << qid
            << " delivery differs from the oldest "
            << "in-flight flit (reordered or corrupted)";
        Report("flit-integrity", oss.str());
      }
    }
  }

  // The GT latency contract: exactly one slot per traversed link, which
  // also proves the flit was never queued behind best-effort traffic.
  if (flit.gt && expect.gt && expect.arrival >= 0 &&
      now != expect.arrival) {
    std::ostringstream oss;
    oss << "ni" << ni << ".q" << qid << " GT flit arrived at cycle " << now
        << ", expected exactly " << expect.arrival
        << " (one slot per link)";
    Report("gt-timing", oss.str());
  }

  ledger.delivered_words += payload_words;
  if (flit.gt) gt_words_delivered_ += payload_words;
  if (credits > 0) {
    ledger.credits_in += credits;
    if (ledger.peer >= 0 &&
        ledger.credits_in > Ledger(ledger.peer).delivered_words) {
      std::ostringstream oss;
      oss << "ni" << ni << ".q" << qid << " accumulated " << ledger.credits_in
          << " returned credits but only " << Ledger(ledger.peer).delivered_words
          << " words were ever delivered to its paired queue "
          << "(credits fabricated)";
      Report("credit-conservation", oss.str(),
             fault_context_.drops_possible);
    }
  }
}

void Monitor::Evaluate() {
  if (!attached_ || !IsSlotBoundary()) return;
  const Cycle now = CycleCount();
  RefreshPairs();

  // Validate the flits committed at the last end-of-slot edge (driven one
  // slot ago) against the tables snapshotted one slot ago.
  if (now >= kFlitWords) {
    for (std::size_t n = 0; n < hookup_.nis.size(); ++n) {
      const Flit& inj = hookup_.injection[n]->data.Sample();
      if (!inj.IsIdle()) ObserveInjection(static_cast<NiId>(n), inj);
      const Flit& del = hookup_.delivery[n]->data.Sample();
      if (!del.IsIdle()) ObserveDelivery(static_cast<NiId>(n), del);
    }
  }

  // Snapshot the tables governing the slot the NIs are about to schedule
  // (this same cycle, after us), for use one slot from now.
  const auto slot = static_cast<SlotIndex>((now / kFlitWords) % table_slots_);
  for (std::size_t n = 0; n < hookup_.nis.size(); ++n) {
    const auto ni = static_cast<NiId>(n);
    SlotSnapshot& snap = prev_snapshot_[n];
    snap.valid = true;
    snap.slot = slot;
    snap.stu_owner = hookup_.nis[n]->SlotOwner(slot);
    snap.alloc_owner = hookup_.allocator
                           ->TableOf(topology::LinkId{/*from_ni=*/true, ni,
                                                      /*port=*/0})
                           .Owner(slot);
  }
  CheckStuConformance(slot);
}

void Monitor::NotePhaseBoundary() {
  if (!attached_) return;
  ++phase_boundaries_;
  // Invalidate the drive-time snapshots: the next slot boundary re-reads
  // the (reconfigured) allocator tables and STU state from scratch instead
  // of judging the first post-boundary flit against pre-boundary tables.
  for (SlotSnapshot& snap : prev_snapshot_) snap = SlotSnapshot{};
  // A mismatch streak must not straddle two configurations.
  std::fill(stu_mismatch_streak_.begin(), stu_mismatch_streak_.end(), 0);
  // Re-pair unconditionally on the next Evaluate.
  pairs_version_seen_ = -1;
}

void Monitor::Finalize() {
  if (!attached_ || clock() == nullptr) return;
  const Cycle now = CycleCount();
  for (std::size_t i = 0; i < ledgers_.size(); ++i) {
    ChannelLedger& ledger = ledgers_[i];
    bool reported = false;
    std::int64_t lost_flits = 0;
    std::int64_t lost_words = 0;
    for (auto it = ledger.expected.begin(); it != ledger.expected.end();) {
      const bool overdue = it->gt && it->arrival >= 0 && it->arrival < now;
      if (!overdue) {
        ++it;
        continue;
      }
      if (fault_context_.drops_possible) {
        // A GT flit cannot be late, only lost: attribute it to the drop
        // faults and retire the expectation (keeps Finalize idempotent).
        ++lost_flits;
        lost_words += it->payload_words;
        ledger.sent_words -= it->payload_words;
        it = ledger.expected.erase(it);
        continue;
      }
      if (!reported) {
        reported = true;
        std::ostringstream oss;
        oss << "ni" << i / static_cast<std::size_t>(max_qid_) << ".q"
            << i % static_cast<std::size_t>(max_qid_)
            << " GT flit still undelivered at end of run (was due at cycle "
            << it->arrival << ")";
        Report("gt-timing", oss.str());  // one report per channel is enough
      }
      ++it;
    }
    if (lost_flits > 0) {
      fault_lost_flits_ += lost_flits;
      fault_lost_words_ += lost_words;
      std::ostringstream oss;
      oss << "ni" << i / static_cast<std::size_t>(max_qid_) << ".q"
          << i % static_cast<std::size_t>(max_qid_) << " " << lost_flits
          << " GT flit(s) (" << lost_words << " word(s)) past their deadline "
          << "at end of run, attributed to injected drop faults";
      Report("gt-timing", oss.str(), /*fault_induced=*/true);
    }
  }
}

std::string Monitor::Describe() const {
  std::ostringstream oss;
  oss << flits_checked_ << " flits checked, " << total_violations_
      << " violation(s)";
  if (!violations_.empty()) {
    oss << "; first: [cycle " << violations_.front().cycle << "] "
        << violations_.front().check << ": " << violations_.front().message;
  }
  return oss.str();
}

}  // namespace aethereal::verify
