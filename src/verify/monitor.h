// Runtime invariant monitor: a read-only network tap that proves, cycle by
// cycle, that the simulator honors the GT contract the slot tables promise.
//
// The monitor is a sim::Module registered on the network clock *before*
// every other module (soc/soc.cpp registers it first when
// SocOptions::verify is set). Because modules of one clock evaluate in
// registration order and all NI/router-internal mutations happen in the
// Evaluate phase, the monitor's Evaluate at slot boundary t observes a
// consistent "end of slot t-1" snapshot: link wires as committed at the
// end-of-slot edge, NI register/credit state as left by the previous slot.
// It samples committed state only (Wire::Sample, const NiKernel accessors)
// and never stages anything, so arming it cannot change simulation results
// — the golden tests run byte-identical with the monitor on
// (tests/verify_test.cpp).
//
// Checks (violations are recorded, not fatal, so negative tests can assert
// on them; the scenario runner turns a non-empty list into a run error):
//
//  * gt-slot-reservation — a GT flit observed on an NI's injection link
//    must have been driven in a slot the centralized allocator reserved on
//    that link, for a channel of that NI, and the NI's own STU must have
//    named the same channel (the drive-time tables are snapshotted one
//    slot earlier, so reconfiguration cannot race the check).
//  * stu-allocator-conformance — an enabled GT channel owning an STU slot
//    without a matching allocator reservation (checked per slot index as
//    the table rotates; a mismatch must persist for two rotations before
//    it is reported, so the one-cycle window of a legitimate register
//    update never false-positives).
//  * gt-route-conformance — a GT header's path and remote queue id must
//    equal the emitting channel's configured PATH/RQID register.
//  * gt-timing — every GT flit entering the network at observation time t
//    on a route of h hops must appear on the destination NI's delivery
//    link at exactly t + h*kFlitWords: the pipelined-circuit latency, and
//    the proof that GT flits are never delayed by best-effort traffic.
//    Finalize() reports GT flits still unaccounted past their deadline.
//  * flit-integrity / flit-ordering — every flit delivered to (NI, queue)
//    is matched FIFO against what entered the network for (NI, queue):
//    payload words, header fields, end-of-packet, and traffic class must
//    agree (per-channel in-order, uncorrupted delivery — for BE too).
//  * credit-conservation — per connection direction a->b, the words that
//    entered the network for b minus the credits returned to a never
//    exceed b's destination-queue capacity (the Space counter can never
//    have gone negative), and credits returned to a never exceed the words
//    delivered to b (credits cannot be fabricated).
//
// The tap attributes payload flits to packets with the same per-link,
// per-class open-packet state the NI receive path uses (GT packets occupy
// consecutive slots, so at most one is open per link and class).
#ifndef AETHEREAL_VERIFY_MONITOR_H
#define AETHEREAL_VERIFY_MONITOR_H

#include <array>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/ni_kernel.h"
#include "link/wire.h"
#include "sim/kernel.h"
#include "tdm/allocator.h"
#include "topology/topology.h"

namespace aethereal::verify {

struct Violation {
  Cycle cycle = 0;
  std::string check;    // e.g. "gt-timing"
  std::string message;
  /// True when the violation is explained by the armed fault model (see
  /// FaultContext): a corrupted payload with otherwise matching framing
  /// under corruption faults, a lost packet under drop faults. The
  /// scenario runner demotes fault-induced violations to degradation
  /// records; unexplained ones still fail the run.
  bool fault_induced = false;
};

/// What the armed fault model can legitimately do to observed traffic
/// (soc.cpp derives this from the FaultSpec). With everything false — the
/// default — every violation is genuine.
struct FaultContext {
  bool drops_possible = false;       // wire drops or router stall windows
  bool corruption_possible = false;  // payload bit flips on links
};

/// Everything the monitor needs from the assembled SoC, passed as plain
/// pointers/functions so verify/ never includes soc/ (the Soc owns the
/// monitor).
struct MonitorHookup {
  const topology::Topology* topology = nullptr;
  const tdm::CentralizedAllocator* allocator = nullptr;
  std::vector<core::NiKernel*> nis;
  std::vector<const link::LinkWires*> injection;  // per NI: NI -> router
  std::vector<const link::LinkWires*> delivery;   // per NI: router -> NI
  /// Destination-queue capacity of a channel (credit-conservation bound).
  std::function<int(const tdm::GlobalChannel&)> dest_queue_words;
  /// Currently open connection endpoints (a sends to b's queue and vice
  /// versa), re-queried whenever pairs_version changes.
  std::function<std::vector<
      std::pair<tdm::GlobalChannel, tdm::GlobalChannel>>()>
      channel_pairs;
  std::function<std::int64_t()> pairs_version;
};

class Monitor : public sim::Module {
 public:
  explicit Monitor(std::string name);
  ~Monitor() override;

  /// Wires the tap to the built network. Must be called before the first
  /// cycle; the monitor idles (and checks nothing) until attached.
  void Attach(MonitorHookup hookup);
  bool attached() const { return attached_; }

  void Evaluate() override;

  /// End-of-run checks: GT flits still in flight past their deadline.
  /// Idempotent per call site (re-running after more cycles re-arms).
  void Finalize();

  /// Declares a reconfiguration boundary (the phased scenario runner calls
  /// this as each use-case transition begins, after traffic has drained):
  /// the slot tables and the open-connection set are about to change under
  /// the tap. The monitor re-snapshots — drive-time table snapshots are
  /// invalidated so the first post-boundary slot is judged against the NEW
  /// tables, the stu-allocator mismatch streaks restart (a disagreement
  /// spanning the boundary is two different configurations, not one
  /// persistent corruption), and the channel pairing is re-queried even if
  /// the version counter has not ticked yet. All checks stay armed
  /// throughout: GT traffic of connections that survive the transition is
  /// still held to exact per-flit timing, which is what proves a
  /// reconfiguration never disturbs in-flight guaranteed traffic.
  void NotePhaseBoundary();
  std::int64_t phase_boundaries() const { return phase_boundaries_; }

  /// Declares which fault effects are armed. Must be set before traffic
  /// flows; without it every violation is reported as genuine.
  void SetFaultContext(const FaultContext& context) {
    fault_context_ = context;
  }

  /// Recorded violations (capped; total_violations() keeps counting).
  const std::vector<Violation>& violations() const { return violations_; }
  std::int64_t total_violations() const { return total_violations_; }
  std::int64_t flits_checked() const { return flits_checked_; }

  /// Violations explained by the fault context vs not. A fault run is
  /// healthy exactly when unexplained_violations() == 0.
  std::int64_t fault_violations() const { return fault_violations_; }
  std::int64_t unexplained_violations() const {
    return total_violations_ - fault_violations_;
  }
  /// Graceful-degradation ledger: flits whose payload arrived flipped but
  /// framed correctly, and flits/words attributed to drop faults (resync
  /// plus end-of-run undelivered).
  std::int64_t fault_corrupted_flits() const { return fault_corrupted_flits_; }
  std::int64_t fault_lost_flits() const { return fault_lost_flits_; }
  std::int64_t fault_lost_words() const { return fault_lost_words_; }
  /// GT payload words observed entering / leaving the network (the
  /// recovery-ratio denominators of the fault report).
  std::int64_t gt_words_sent() const { return gt_words_sent_; }
  std::int64_t gt_words_delivered() const { return gt_words_delivered_; }

  /// One-line human-readable status, e.g. for noc_verify.
  std::string Describe() const;

 private:
  /// What must arrive at the destination for one flit that entered the
  /// network (header word excluded — the path field mutates en route;
  /// header fields are compared decoded).
  struct ExpectedFlit {
    Cycle arrival = -1;  // exact delivery-observation cycle; -1 for BE
    link::FlitKind kind = link::FlitKind::kIdle;
    bool gt = false;
    bool eop = false;
    int credits = 0;
    int payload_words = 0;
    std::array<Word, kFlitWords> payload{};
  };

  /// Per destination channel (ni, qid): the in-flight expectation FIFO and
  /// the credit-conservation ledgers.
  struct ChannelLedger {
    std::deque<ExpectedFlit> expected;
    std::int64_t sent_words = 0;       // entered the network toward here
    std::int64_t delivered_words = 0;  // observed on the delivery link
    std::int64_t credits_in = 0;       // credits in headers addressed here
    int capacity = -1;                 // dest-queue words (lazy)
    int peer = -1;                     // ledger index of the paired channel
  };

  /// Drive-time table snapshot of one NI's current slot, taken one slot
  /// before the driven flit becomes observable.
  struct SlotSnapshot {
    bool valid = false;
    SlotIndex slot = -1;
    tdm::GlobalChannel alloc_owner;
    ChannelId stu_owner = kInvalidId;
  };

  /// Per-link, per-class open-packet attribution state.
  struct OpenPacket {
    int ledger = -1;  // destination ledger index; -1 = no packet open
    int hops = 0;     // route length of the open packet (injection side)
  };

  bool IsSlotBoundary() const { return CycleCount() % kFlitWords == 0; }
  int LedgerIndex(NiId ni, int qid) const;
  ChannelLedger& Ledger(int index);
  void Report(const char* check, std::string message,
              bool fault_induced = false);
  void RefreshPairs();
  void CheckStuConformance(SlotIndex slot);
  void ObserveInjection(NiId ni, const link::Flit& flit);
  void ObserveDelivery(NiId ni, const link::Flit& flit);
  /// Walks a full source route from `ni`'s router; returns the destination
  /// NI or kInvalidId (reporting the violation).
  NiId ResolveDestination(NiId ni, const link::SourcePath& path);

  bool attached_ = false;
  MonitorHookup hookup_;
  int table_slots_ = 0;
  int max_qid_ = 0;  // channels addressable per NI (ledger stride)

  std::vector<SlotSnapshot> prev_snapshot_;       // per NI
  std::vector<OpenPacket> open_inj_gt_, open_inj_be_;  // per NI
  std::vector<OpenPacket> open_del_gt_, open_del_be_;  // per NI
  std::vector<ChannelLedger> ledgers_;            // NI-major, qid-minor
  std::vector<int> stu_mismatch_streak_;          // per (NI, slot)
  std::vector<bool> stu_mismatch_reported_;       // per (NI, slot)
  std::int64_t pairs_version_seen_ = -1;

  std::vector<Violation> violations_;
  std::int64_t total_violations_ = 0;
  std::int64_t flits_checked_ = 0;
  std::int64_t phase_boundaries_ = 0;

  FaultContext fault_context_;
  std::int64_t fault_violations_ = 0;
  std::int64_t fault_corrupted_flits_ = 0;
  std::int64_t fault_lost_flits_ = 0;
  std::int64_t fault_lost_words_ = 0;
  std::int64_t gt_words_sent_ = 0;
  std::int64_t gt_words_delivered_ = 0;
};

}  // namespace aethereal::verify

#endif  // AETHEREAL_VERIFY_MONITOR_H
