// Randomized conformance-fuzz configuration generator.
//
// Produces seeded random scenario specs — topology, slot-table size, queue
// depths, and a mixed GT/BE traffic blend over every injection process —
// that the conformance fuzzer (tests/conformance_fuzz_test.cpp, noc_verify
// --fuzz) runs with the verification layer armed, on both engines.
//
// Seeding contract (documented in DESIGN.md §10.4): config `index` under
// `seed` seeds its Rng with splitmix64(seed, index*64 + attempt), where
// `attempt` counts deterministic regeneration retries after infeasible
// slot allocations (attempt 0 first), so any single configuration can be
// reproduced in isolation and the same (seed, index) always yields the
// same spec, across platforms. Infeasible candidates never surface to the
// caller.
#ifndef AETHEREAL_VERIFY_FUZZ_H
#define AETHEREAL_VERIFY_FUZZ_H

#include <cstdint>

#include "scenario/spec.h"

namespace aethereal::verify {

/// The `index`-th random conformance configuration for `seed`. The
/// returned spec always wires successfully (ScenarioRunner::Build) and has
/// spec.verify already set.
scenario::ScenarioSpec RandomConformanceSpec(std::uint64_t seed, int index);

/// The `index`-th random fault-soak workload for `seed` (noc_verify
/// --fault-fuzz): stream-only traffic — no memory transactions, whose
/// framing a fault-injected bit flip could break (DESIGN.md §12) — with at
/// least one GT directive so drop faults have a target, at rates low
/// enough to stay live under the RandomFaultSpec fault models. Same
/// always-wires and reproducibility contract as RandomConformanceSpec; the
/// caller attaches the fault block.
scenario::ScenarioSpec RandomFaultWorkload(std::uint64_t seed, int index);

}  // namespace aethereal::verify

#endif  // AETHEREAL_VERIFY_FUZZ_H
