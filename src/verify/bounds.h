// Analytical GT-service bound model (the paper's TDM algebra).
//
// The headline property of the Æthereal GT service is that a connection's
// minimum throughput and worst-case latency follow from the slot tables
// alone (paper §2): reserving N of S slots on a route buys a hard bandwidth
// share, and the latency bound is the wait until the next reserved slot
// plus one slot per hop. This header turns a channel's reserved
// injection-link slots into those numbers so runtime checkers
// (verify/monitor.h, scenario/runner.cpp) can hold the simulator to them.
//
// Derivation against the simulator's exact mechanics (see DESIGN.md §10):
//
//  * Throughput. One reserved slot carries one flit of kFlitWords words,
//    but every packet spends one word on its header, and a GT packet must
//    fit inside a contiguous run of reserved slots (NiKernel::GtRunWords)
//    and inside max_packet_flits. A maximal circular run of r reserved
//    slots therefore carries ceil(r / max_packet_flits) packets per table
//    rotation, for r*kFlitWords - ceil(r / max_packet_flits) payload words.
//    Summing over the runs gives words_per_rotation; dividing by the
//    rotation length S*kFlitWords gives the guaranteed payload rate a
//    saturated, credit-unconstrained source achieves — and a floor the
//    simulator must never undercut.
//
//  * Latency. For a word that finds an empty source queue (offered load
//    within the guarantee, data threshold 1), the worst-case path from the
//    producer's Write() to the consumer's Read() is:
//      source CDC visibility        kCdcSyncEdges + 1 cycles
//      slot-boundary alignment      kFlitWords - 1 cycles
//      wait for a reserved slot     max_gap * kFlitWords cycles
//      network pipeline             (hops + 1) * kFlitWords cycles
//                                   (one slot per traversed link,
//                                   injection link included)
//      destination CDC visibility   kCdcSyncEdges + 1 cycles
//    which is bounded by (max_gap + hops) * kFlitWords + 3 * kFlitWords.
//    max_gap is the largest circular distance between consecutive reserved
//    slots (SlotTable::MaxGap) — also the paper's jitter bound.
#ifndef AETHEREAL_VERIFY_BOUNDS_H
#define AETHEREAL_VERIFY_BOUNDS_H

#include <vector>

#include "util/types.h"

namespace aethereal::verify {

/// Analytical guarantees of one GT channel, derived from its reserved
/// injection-link slots and its route length.
struct GtBound {
  int slots = 0;                  // reserved slots on the injection link
  int table_slots = 0;            // slot-table size S
  int hops = 0;                   // routers traversed (route links - 1)
  int max_gap_slots = 0;          // paper's jitter bound (slots)
  std::int64_t words_per_rotation = 0;  // guaranteed payload words / rotation
  double min_throughput_wpc = 0;  // words_per_rotation / (S * kFlitWords)
  /// Worst-case producer-Write to consumer-Read latency of a word that
  /// finds an empty source queue (cycles).
  Cycle worst_case_latency = 0;
};

/// Computes the bound for a channel holding `slots` (injection-link slot
/// indices, any order) out of a table of `table_slots`, on a route
/// traversing `hops` routers, with the NI's maximum packet length.
/// An empty slot set yields the degenerate bound (zero throughput,
/// max_gap = table_slots).
GtBound ComputeGtBound(std::vector<SlotIndex> slots, int table_slots,
                       int hops, int max_packet_flits);

}  // namespace aethereal::verify

#endif  // AETHEREAL_VERIFY_BOUNDS_H
