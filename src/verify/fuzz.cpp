#include "verify/fuzz.h"

#include <string>

#include "scenario/runner.h"
#include "util/check.h"
#include "util/rng.h"

namespace aethereal::verify {

namespace {

using scenario::InjectKind;
using scenario::PatternKind;
using scenario::ScenarioSpec;
using scenario::TopologyKind;
using scenario::TrafficSpec;

/// splitmix64 finalizer: decorrelates (seed, index, attempt) into an Rng
/// seed so neighbouring indices explore unrelated configurations.
std::uint64_t Mix(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (salt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// `count` distinct NI ids, uniformly without replacement.
std::vector<NiId> DistinctNis(Rng& rng, int num_nis, int count) {
  std::vector<NiId> all(static_cast<std::size_t>(num_nis));
  for (int i = 0; i < num_nis; ++i) all[static_cast<std::size_t>(i)] = i;
  std::vector<NiId> picked;
  for (int k = 0; k < count; ++k) {
    const auto at = static_cast<std::size_t>(
        rng.NextBelow(static_cast<std::uint64_t>(all.size())));
    picked.push_back(all[at]);
    all.erase(all.begin() + static_cast<std::ptrdiff_t>(at));
  }
  return picked;
}

TrafficSpec RandomTraffic(Rng& rng, int num_nis, int stu_slots) {
  TrafficSpec traffic;
  switch (rng.NextBelow(10)) {
    case 0:
    case 1:
    case 2:
      traffic.pattern = PatternKind::kUniform;
      break;
    case 3:
    case 4:
      traffic.pattern = PatternKind::kNeighbor;
      break;
    case 5:
      traffic.pattern = PatternKind::kHotspot;
      traffic.hotspot = static_cast<NiId>(
          rng.NextBelow(static_cast<std::uint64_t>(num_nis)));
      break;
    case 6:
    case 7: {
      traffic.pattern = PatternKind::kPairs;
      const int pairs =
          num_nis >= 4 && rng.NextBool(0.5) ? 2 : 1;
      traffic.nis = DistinctNis(rng, num_nis, 2 * pairs);
      break;
    }
    case 8: {
      traffic.pattern = PatternKind::kVideo;
      const int chain = num_nis >= 3 && rng.NextBool(0.5) ? 3 : 2;
      traffic.nis = DistinctNis(rng, num_nis, chain);
      break;
    }
    default: {
      traffic.pattern = PatternKind::kMemory;
      traffic.nis = DistinctNis(rng, num_nis, 2);
      traffic.read_fraction = 0.25 * static_cast<double>(rng.NextBelow(5));
      traffic.mem_burst_words = 2 + static_cast<int>(rng.NextBelow(7));
      break;
    }
  }

  const bool memory = traffic.pattern == PatternKind::kMemory;
  if (memory && rng.NextBool(0.3)) {
    traffic.inject = InjectKind::kClosedLoop;
  } else {
    switch (rng.NextBelow(memory ? 2 : 3)) {
      case 0:
        traffic.inject = InjectKind::kPeriodic;
        traffic.period = 4 + static_cast<std::int64_t>(rng.NextBelow(45));
        break;
      case 1:
        traffic.inject = InjectKind::kBernoulli;
        traffic.rate = 0.005 + 0.055 * rng.NextDouble();
        break;
      default:
        traffic.inject = InjectKind::kBursty;
        traffic.burst_words = 2 + static_cast<std::int64_t>(rng.NextBelow(5));
        traffic.gap_cycles = 24 + static_cast<std::int64_t>(rng.NextBelow(97));
        break;
    }
  }

  if (rng.NextBool(0.5)) {
    traffic.gt = true;
    traffic.gt_slots =
        1 + static_cast<int>(rng.NextBelow(
                static_cast<std::uint64_t>(std::max(1, stu_slots / 4))));
    if (traffic.inject == InjectKind::kPeriodic && rng.NextBool(0.4)) {
      // At most one word per table rotation: arms the analytical
      // worst-case latency check (scenario/runner.cpp).
      traffic.period = static_cast<std::int64_t>(stu_slots) * kFlitWords +
                       static_cast<std::int64_t>(rng.NextBelow(30));
    }
  }
  traffic.data_threshold =
      rng.NextBool(0.8) ? 1 : 2 + static_cast<int>(rng.NextBelow(3));
  traffic.credit_threshold = 1 + static_cast<int>(rng.NextBelow(4));
  return traffic;
}

ScenarioSpec Candidate(Rng& rng, std::uint64_t run_seed) {
  ScenarioSpec spec;
  spec.verify = true;
  spec.seed = run_seed;
  switch (rng.NextBelow(3)) {
    case 0:
      spec.topology = TopologyKind::kStar;
      spec.dim_a = 2 + static_cast<int>(rng.NextBelow(5));  // 2..6 NIs
      break;
    case 1:
      spec.topology = TopologyKind::kMesh;
      spec.dim_a = 2 + static_cast<int>(rng.NextBelow(2));  // rows 2..3
      spec.dim_b = 2 + static_cast<int>(rng.NextBelow(2));  // cols 2..3
      spec.nis_per_router = 1;
      break;
    default:
      spec.topology = TopologyKind::kRing;
      spec.dim_a = 3 + static_cast<int>(rng.NextBelow(3));  // 3..5 routers
      spec.nis_per_router = 1 + static_cast<int>(rng.NextBelow(2));
      break;
  }
  // Odd table sizes (co-prime with the 3-word flit) stress every slot
  // wraparound path; tiny queues stress the credit loop.
  const int stu_choices[] = {4, 5, 7, 8, 12, 16};
  spec.stu_slots = stu_choices[rng.NextBelow(6)];
  const int queue_choices[] = {4, 8, 16, 32};
  spec.queue_words = queue_choices[rng.NextBelow(4)];
  spec.warmup = 200 + static_cast<Cycle>(rng.NextBelow(200));
  spec.duration = 1500 + static_cast<Cycle>(rng.NextBelow(1500));

  const int num_nis = spec.NumNis();
  if (rng.NextBool(0.25)) {
    // A latency-probe configuration: only light periodic GT streams, so
    // the analytical end-to-end latency bound is armed (it requires an
    // all-GT scenario — BE traffic may legitimately delay credit returns;
    // see scenario/runner.cpp).
    spec.queue_words = 8 + static_cast<int>(rng.NextBelow(3)) * 8;
    const int directives = 1 + static_cast<int>(rng.NextBelow(2));
    for (int d = 0; d < directives; ++d) {
      TrafficSpec traffic;
      traffic.pattern =
          rng.NextBool(0.5) ? PatternKind::kNeighbor : PatternKind::kPairs;
      if (traffic.pattern == PatternKind::kPairs) {
        traffic.nis = DistinctNis(rng, num_nis, 2);
      }
      traffic.inject = InjectKind::kPeriodic;
      traffic.period = static_cast<std::int64_t>(spec.stu_slots) *
                           kFlitWords +
                       static_cast<std::int64_t>(rng.NextBelow(40));
      traffic.gt = true;
      traffic.gt_slots = 1 + static_cast<int>(rng.NextBelow(2));
      spec.traffic.push_back(traffic);
    }
    return spec;
  }
  const int directives = 1 + static_cast<int>(rng.NextBelow(3));
  for (int d = 0; d < directives; ++d) {
    spec.traffic.push_back(RandomTraffic(rng, num_nis, spec.stu_slots));
  }
  return spec;
}

/// Fault-soak candidate: stream-only (pairs / neighbor / uniform), light
/// injection, GT on the first directive. The fault models prune delivered
/// words, so the workload must tolerate loss without wedging: moderate
/// queues, no closed loops, no transaction framing.
ScenarioSpec FaultCandidate(Rng& rng, std::uint64_t run_seed) {
  ScenarioSpec spec;
  spec.verify = true;
  spec.seed = run_seed;
  switch (rng.NextBelow(3)) {
    case 0:
      spec.topology = TopologyKind::kStar;
      spec.dim_a = 3 + static_cast<int>(rng.NextBelow(4));  // 3..6 NIs
      break;
    case 1:
      spec.topology = TopologyKind::kMesh;
      spec.dim_a = 2;
      spec.dim_b = 2 + static_cast<int>(rng.NextBelow(2));  // 2x2, 2x3
      spec.nis_per_router = 1;
      break;
    default:
      spec.topology = TopologyKind::kRing;
      spec.dim_a = 3 + static_cast<int>(rng.NextBelow(2));  // 3..4 routers
      spec.nis_per_router = 1;
      break;
  }
  spec.stu_slots = rng.NextBool(0.5) ? 8 : 16;
  spec.queue_words = rng.NextBool(0.5) ? 16 : 32;
  spec.warmup = 200 + static_cast<Cycle>(rng.NextBelow(200));
  spec.duration = 2000 + static_cast<Cycle>(rng.NextBelow(1000));

  const int num_nis = spec.NumNis();
  const int directives = 1 + static_cast<int>(rng.NextBelow(2));
  for (int d = 0; d < directives; ++d) {
    TrafficSpec traffic;
    switch (rng.NextBelow(3)) {
      case 0:
        traffic.pattern = PatternKind::kNeighbor;
        break;
      case 1:
        traffic.pattern = PatternKind::kUniform;
        break;
      default:
        traffic.pattern = PatternKind::kPairs;
        traffic.nis = DistinctNis(rng, num_nis, 2);
        break;
    }
    if (rng.NextBool(0.5)) {
      traffic.inject = InjectKind::kPeriodic;
      traffic.period = 8 + static_cast<std::int64_t>(rng.NextBelow(33));
    } else {
      traffic.inject = InjectKind::kBernoulli;
      traffic.rate = 0.01 + 0.04 * rng.NextDouble();
    }
    if (d == 0 || rng.NextBool(0.5)) {
      traffic.gt = true;
      traffic.gt_slots = 1 + static_cast<int>(rng.NextBelow(2));
    }
    spec.traffic.push_back(traffic);
  }
  return spec;
}

}  // namespace

ScenarioSpec RandomFaultWorkload(std::uint64_t seed, int index) {
  AETHEREAL_CHECK(index >= 0);
  // Same attempt-salted regeneration scheme as RandomConformanceSpec, on a
  // disjoint salt plane so the two batches never correlate.
  constexpr std::uint64_t kFaultPlane = 0x400000;
  for (int attempt = 0; attempt < 32; ++attempt) {
    const std::uint64_t salt =
        kFaultPlane + static_cast<std::uint64_t>(index) * 64 +
        static_cast<std::uint64_t>(attempt);
    Rng rng(Mix(seed, salt));
    ScenarioSpec spec = FaultCandidate(rng, Mix(seed, salt + 0x100000));
    spec.name = "faultfuzz" + std::to_string(index);
    scenario::ScenarioRunner probe(spec);
    if (probe.Build().ok()) return spec;
  }
  Rng rng(Mix(seed, kFaultPlane + static_cast<std::uint64_t>(index)));
  ScenarioSpec spec = FaultCandidate(
      rng, Mix(seed, kFaultPlane + static_cast<std::uint64_t>(index) +
                         0x200000));
  for (TrafficSpec& traffic : spec.traffic) {
    traffic.gt = false;
    traffic.gt_slots = 0;
  }
  spec.name = "faultfuzz" + std::to_string(index) + "_be";
  scenario::ScenarioRunner probe(spec);
  AETHEREAL_CHECK_MSG(probe.Build().ok(),
                      "best-effort fault workload failed to wire");
  return spec;
}

ScenarioSpec RandomConformanceSpec(std::uint64_t seed, int index) {
  AETHEREAL_CHECK(index >= 0);
  // Retry with derived sub-seeds until the candidate wires (GT slot
  // allocations can legitimately exhaust a small table).
  for (int attempt = 0; attempt < 32; ++attempt) {
    const std::uint64_t salt =
        static_cast<std::uint64_t>(index) * 64 +
        static_cast<std::uint64_t>(attempt);
    Rng rng(Mix(seed, salt));
    ScenarioSpec spec = Candidate(rng, Mix(seed, salt + 0x100000));
    spec.name = "fuzz" + std::to_string(index);
    scenario::ScenarioRunner probe(spec);
    if (probe.Build().ok()) return spec;
  }
  // Degrade deterministically to best-effort only, which needs no slot
  // reservations and always wires.
  Rng rng(Mix(seed, static_cast<std::uint64_t>(index)));
  ScenarioSpec spec =
      Candidate(rng, Mix(seed, static_cast<std::uint64_t>(index) + 0x200000));
  for (TrafficSpec& traffic : spec.traffic) {
    traffic.gt = false;
    traffic.gt_slots = 0;
  }
  spec.name = "fuzz" + std::to_string(index) + "_be";
  scenario::ScenarioRunner probe(spec);
  AETHEREAL_CHECK_MSG(probe.Build().ok(),
                      "best-effort fallback config failed to wire");
  return spec;
}

}  // namespace aethereal::verify
