#include "verify/bounds.h"

#include <algorithm>

#include "tdm/slot_table.h"
#include "util/check.h"

namespace aethereal::verify {

GtBound ComputeGtBound(std::vector<SlotIndex> slots, int table_slots,
                       int hops, int max_packet_flits) {
  AETHEREAL_CHECK(table_slots > 0);
  AETHEREAL_CHECK(hops >= 0);
  AETHEREAL_CHECK(max_packet_flits > 0);
  GtBound bound;
  bound.table_slots = table_slots;
  bound.hops = hops;
  std::sort(slots.begin(), slots.end());
  bound.slots = static_cast<int>(slots.size());
  // The jitter bound, shared with SlotTable::MaxGap so the analytical
  // model can never drift from the table's own definition.
  bound.max_gap_slots = tdm::MaxCircularGap(slots, table_slots);
  if (slots.empty()) {
    // Even with no reservation, a hypothetical flit that did get a slot
    // would cross the network in the pipelined time; keep the latency field
    // meaningful for diagnostics.
    bound.worst_case_latency =
        static_cast<Cycle>(table_slots + hops + 3) * kFlitWords;
    return bound;
  }
  AETHEREAL_CHECK(slots.front() >= 0 && slots.back() < table_slots);

  // Group the reservations into maximal circular runs of consecutive slots;
  // a run of r slots carries ceil(r / max_packet_flits) packet headers per
  // rotation (NiKernel opens a fresh packet, spending one header word,
  // whenever the previous one fills or the run would end).
  std::vector<int> runs;
  if (bound.slots == table_slots) {
    runs.push_back(table_slots);  // the whole table is one circular run
  } else {
    std::vector<bool> owned(static_cast<std::size_t>(table_slots), false);
    for (SlotIndex s : slots) owned[static_cast<std::size_t>(s)] = true;
    // Start scanning just past a free slot so no run is split by the
    // table's wrap point.
    SlotIndex start = 0;
    while (owned[static_cast<std::size_t>(start)]) ++start;
    int run = 0;
    for (int k = 1; k <= table_slots; ++k) {
      if (owned[static_cast<std::size_t>((start + k) % table_slots)]) {
        ++run;
      } else if (run > 0) {
        runs.push_back(run);
        run = 0;
      }
    }
    if (run > 0) runs.push_back(run);
  }
  for (int r : runs) {
    const std::int64_t packets = (r + max_packet_flits - 1) / max_packet_flits;
    bound.words_per_rotation +=
        static_cast<std::int64_t>(r) * kFlitWords - packets;
  }
  bound.min_throughput_wpc =
      static_cast<double>(bound.words_per_rotation) /
      static_cast<double>(static_cast<std::int64_t>(table_slots) * kFlitWords);

  // See the derivation in the header: CDC visibility + slot alignment +
  // reserved-slot wait + one slot per link + destination CDC, all bounded
  // by (max_gap + hops + 3) slot times.
  bound.worst_case_latency =
      static_cast<Cycle>(bound.max_gap_slots + hops + 3) * kFlitWords;
  return bound;
}

}  // namespace aethereal::verify
