// Packet header codec.
//
// Per paper §4.1: "A packet header consists of the routing information (NI
// address for destination routing, and path for source routing), remote
// queue id (i.e., the queue of the remote NI in which the data will be
// stored), and piggybacked credits." The Æthereal prototype uses source
// routing (the configuration protocol of Fig. 9 writes `path` registers),
// which is what we implement.
//
// 32-bit header word layout:
//   [31]     gt      — 1 = guaranteed-throughput packet, 0 = best-effort
//   [30:26]  credits — piggybacked end-to-end flow-control credits (0..31;
//                      "the amount of credits is bound by implementation to
//                      the given number of bits in the packet header")
//   [25:21]  qid     — remote (destination) queue id, up to 32 channels/NI
//   [20:0]   path    — source route, 7 hops x 3 bits, each hop stores
//                      (output port + 1); 0 terminates the path
#ifndef AETHEREAL_LINK_HEADER_H
#define AETHEREAL_LINK_HEADER_H

#include <initializer_list>
#include <ostream>
#include <vector>

#include "util/types.h"

namespace aethereal::link {

/// Maximum piggybacked credits per packet header (5-bit field).
inline constexpr int kMaxHeaderCredits = 31;

/// Maximum channels (queue pairs) addressable in one NI (5-bit qid field).
inline constexpr int kMaxQueueId = 31;

/// Maximum hops representable in a source route (21-bit field, 3 bits/hop).
inline constexpr int kMaxPathHops = 7;

/// Maximum router output port encodable in a path hop (values 0..6; the
/// encoding stores port+1 so that 0 can terminate the path).
inline constexpr int kMaxPathPort = 6;

/// A source route: the output port to take at each successive router.
class SourcePath {
 public:
  SourcePath() = default;

  /// Builds a path from a hop list (output port at each router). Checks the
  /// hop count and port ranges.
  static SourcePath FromHops(const std::vector<int>& hops);
  static SourcePath FromHops(std::initializer_list<int> hops);

  /// Reconstructs a path from its 21-bit packed representation.
  static SourcePath FromPacked(std::uint32_t packed);

  /// Output port at the current (next) router; path must not be exhausted.
  int NextHop() const;

  /// True when all hops have been consumed.
  bool Exhausted() const { return packed_ == 0; }

  /// Path remaining after the current hop is taken.
  SourcePath Consume() const;

  /// Number of hops remaining.
  int HopCount() const;

  std::uint32_t packed() const { return packed_; }

  friend bool operator==(const SourcePath& a, const SourcePath& b) {
    return a.packed_ == b.packed_;
  }

 private:
  std::uint32_t packed_ = 0;
};

std::ostream& operator<<(std::ostream& os, const SourcePath& path);

/// Decoded packet header.
struct PacketHeader {
  bool gt = false;     // guaranteed-throughput (vs best-effort)
  int credits = 0;     // piggybacked credits, 0..kMaxHeaderCredits
  int remote_qid = 0;  // destination queue id, 0..kMaxQueueId
  SourcePath path;

  /// Packs into the 32-bit header word (checks field ranges).
  Word Encode() const;

  /// Unpacks from a 32-bit header word.
  static PacketHeader Decode(Word word);

  friend bool operator==(const PacketHeader& a, const PacketHeader& b) {
    return a.gt == b.gt && a.credits == b.credits &&
           a.remote_qid == b.remote_qid && a.path == b.path;
  }
};

std::ostream& operator<<(std::ostream& os, const PacketHeader& header);

}  // namespace aethereal::link

#endif  // AETHEREAL_LINK_HEADER_H
