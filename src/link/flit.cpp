#include "link/flit.h"

#include "link/header.h"

namespace aethereal::link {

std::ostream& operator<<(std::ostream& os, const Flit& flit) {
  switch (flit.kind) {
    case FlitKind::kIdle:
      return os << "flit{idle}";
    case FlitKind::kHeader:
      os << "flit{hdr " << PacketHeader::Decode(flit.words[0]);
      break;
    case FlitKind::kPayload:
      os << "flit{pay";
      break;
  }
  os << ", words=" << flit.valid_words;
  if (flit.eop) os << ", eop";
  return os << "}";
}

}  // namespace aethereal::link
