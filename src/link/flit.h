// Flit (flow-control unit) carried on NoC links.
//
// The Æthereal prototype uses 3-word flits on a 32-bit link: one flit is
// transported per TDM slot (3 word-clock cycles at 500 MHz). A packet is a
// header word followed by payload words, padded to a flit boundary (this
// padding is the 1..3-cycle alignment latency reported in paper §5).
// Sideband bits mark the header flit and the end of packet, as in the
// Æthereal link protocol.
#ifndef AETHEREAL_LINK_FLIT_H
#define AETHEREAL_LINK_FLIT_H

#include <array>
#include <ostream>

#include "util/types.h"

namespace aethereal::link {

enum class FlitKind {
  kIdle = 0,   // nothing on the link this slot
  kHeader,     // first flit of a packet; words[0] is the packet header
  kPayload,    // continuation flit
};

struct Flit {
  FlitKind kind = FlitKind::kIdle;
  bool gt = false;      // guaranteed-throughput traffic class (sideband)
  bool eop = false;     // last flit of its packet (sideband)
  int valid_words = 0;  // 0..kFlitWords
  std::array<Word, kFlitWords> words{};

  bool IsIdle() const { return kind == FlitKind::kIdle; }

  static Flit Idle() { return Flit{}; }

  friend bool operator==(const Flit& a, const Flit& b) {
    if (a.kind != b.kind || a.gt != b.gt || a.eop != b.eop ||
        a.valid_words != b.valid_words)
      return false;
    for (int i = 0; i < a.valid_words; ++i) {
      if (a.words[static_cast<std::size_t>(i)] !=
          b.words[static_cast<std::size_t>(i)])
        return false;
    }
    return true;
  }
};

std::ostream& operator<<(std::ostream& os, const Flit& flit);

}  // namespace aethereal::link

#endif  // AETHEREAL_LINK_FLIT_H
