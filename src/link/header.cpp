#include "link/header.h"

#include "util/bits.h"
#include "util/check.h"

namespace aethereal::link {

namespace {
constexpr int kPathBits = 21;
constexpr int kBitsPerHop = 3;
constexpr int kQidLsb = 21;
constexpr int kQidBits = 5;
constexpr int kCreditsLsb = 26;
constexpr int kCreditsBits = 5;
constexpr int kGtBit = 31;
}  // namespace

SourcePath SourcePath::FromHops(const std::vector<int>& hops) {
  AETHEREAL_CHECK_MSG(static_cast<int>(hops.size()) <= kMaxPathHops,
                      "path of " << hops.size() << " hops exceeds "
                                 << kMaxPathHops);
  SourcePath path;
  // First hop in the least significant bits; 0 terminates.
  for (std::size_t i = hops.size(); i > 0; --i) {
    const int port = hops[i - 1];
    AETHEREAL_CHECK_MSG(port >= 0 && port <= kMaxPathPort,
                        "router port " << port << " not encodable in a path");
    path.packed_ = (path.packed_ << kBitsPerHop) |
                   static_cast<std::uint32_t>(port + 1);
  }
  return path;
}

SourcePath SourcePath::FromHops(std::initializer_list<int> hops) {
  return FromHops(std::vector<int>(hops));
}

SourcePath SourcePath::FromPacked(std::uint32_t packed) {
  AETHEREAL_CHECK((packed & ~BitMask(kPathBits)) == 0);
  SourcePath path;
  path.packed_ = packed;
  return path;
}

int SourcePath::NextHop() const {
  AETHEREAL_CHECK_MSG(!Exhausted(), "source path exhausted");
  return static_cast<int>(packed_ & BitMask(kBitsPerHop)) - 1;
}

SourcePath SourcePath::Consume() const {
  AETHEREAL_CHECK(!Exhausted());
  SourcePath rest;
  rest.packed_ = packed_ >> kBitsPerHop;
  return rest;
}

int SourcePath::HopCount() const {
  int count = 0;
  std::uint32_t p = packed_;
  while (p != 0) {
    ++count;
    p >>= kBitsPerHop;
  }
  return count;
}

std::ostream& operator<<(std::ostream& os, const SourcePath& path) {
  os << "path[";
  SourcePath p = path;
  bool first = true;
  while (!p.Exhausted()) {
    if (!first) os << ",";
    os << p.NextHop();
    p = p.Consume();
    first = false;
  }
  return os << "]";
}

Word PacketHeader::Encode() const {
  AETHEREAL_CHECK_MSG(credits >= 0 && credits <= kMaxHeaderCredits,
                      "credits " << credits << " out of header range");
  AETHEREAL_CHECK_MSG(remote_qid >= 0 && remote_qid <= kMaxQueueId,
                      "remote qid " << remote_qid << " out of header range");
  Word word = 0;
  word = DepositBits(word, 0, kPathBits, path.packed());
  word = DepositBits(word, kQidLsb, kQidBits,
                     static_cast<std::uint32_t>(remote_qid));
  word = DepositBits(word, kCreditsLsb, kCreditsBits,
                     static_cast<std::uint32_t>(credits));
  word = DepositBits(word, kGtBit, 1, gt ? 1u : 0u);
  return word;
}

PacketHeader PacketHeader::Decode(Word word) {
  PacketHeader header;
  header.path = SourcePath::FromPacked(ExtractBits(word, 0, kPathBits));
  header.remote_qid = static_cast<int>(ExtractBits(word, kQidLsb, kQidBits));
  header.credits = static_cast<int>(ExtractBits(word, kCreditsLsb, kCreditsBits));
  header.gt = ExtractBits(word, kGtBit, 1) != 0;
  return header;
}

std::ostream& operator<<(std::ostream& os, const PacketHeader& header) {
  return os << (header.gt ? "GT" : "BE") << " hdr{credits=" << header.credits
            << ", qid=" << header.remote_qid << ", " << header.path << "}";
}

}  // namespace aethereal::link
