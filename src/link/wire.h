// Registered slot-granular wires: the physical signals between NoC
// components.
//
// The Æthereal link transports one 32-bit word per cycle; a 3-word flit
// therefore occupies one TDM slot (3 word-clock cycles at 500 MHz). This
// model transfers values atomically at slot granularity: a producer drives
// at most one value per slot (during the slot-boundary cycle's Evaluate
// phase); the value becomes visible to the consumer at the next slot
// boundary and is held for that whole slot. Per-hop latency is thus exactly
// one slot, as in the pipelined TDM circuits of the paper.
//
// Two instantiations are used:
//  * FlitWire  — the forward data signal (idle flit when undriven);
//  * CreditWire — the backward link-level credit-return pulse used by the
//    best-effort input buffers (0 when undriven).
//
// Gating integration (DESIGN.md §7): a wire arms itself on Drive() and
// stays armed until one slot boundary after it has gone idle, so an
// undriven wire costs nothing per edge. Drive() also wakes the consumer
// module registered with SetConsumer(), guaranteeing a parked consumer is
// running again by the slot boundary at which the value becomes visible.
#ifndef AETHEREAL_LINK_WIRE_H
#define AETHEREAL_LINK_WIRE_H

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>

#include "link/flit.h"
#include "sim/kernel.h"
#include "sim/soa_state.h"
#include "util/check.h"

namespace aethereal::link {

/// Fault-injection tap consulted by FlitWire::Drive (DESIGN.md §12). The
/// tap may corrupt the flit in place; returning false swallows it (the wire
/// stays idle that slot — a drop on the physical link). Implemented by
/// fault::FaultInjector; null (the default) costs one pointer compare.
class FlitTap {
 public:
  virtual ~FlitTap() = default;
  virtual bool OnDrive(int site, Cycle now, Flit* flit) = 0;
};

template <typename T>
class SlotWire : public sim::TwoPhase {
 public:
  SlotWire() = default;
  explicit SlotWire(T idle) : idle_(idle), current_(idle), next_(idle) {}

  /// Declares the module that samples this wire; every Drive() wakes it so
  /// a parked consumer never misses a slot transfer.
  void SetConsumer(sim::Module* consumer) { consumer_ = consumer; }

  /// Optional pending mask: when the wire latches a driven (non-idle) value
  /// at a slot boundary, `*mask |= 1 << bit`. Lets a consumer with many
  /// input wires poll one word instead of sampling every port; the consumer
  /// owns the mask and clears bits as it drains them.
  void SetConsumerBit(std::uint32_t* mask, int bit) {
    consumer_mask_ = mask;
    consumer_mask_bit_ = std::uint32_t{1} << bit;
  }

  /// Installs a fault tap (FlitWire only); `site` is the injector's stable
  /// id for this wire. Pass nullptr to remove.
  void SetFaultTap(FlitTap* tap, int site) {
    static_assert(std::is_same_v<T, Flit>,
                  "fault taps apply to flit wires only");
    tap_ = tap;
    tap_site_ = site;
  }

  /// Producer: drive the wire for the current slot (call during Evaluate of
  /// a slot-boundary cycle, at most once per slot).
  void Drive(const T& value) {
    AETHEREAL_CHECK_MSG(!driven_, "wire driven twice in one slot");
    if constexpr (std::is_same_v<T, Flit>) {
      if (tap_ != nullptr) {
        T tapped = value;
        const sim::Module* m = owner();
        const Cycle now =
            (m != nullptr && m->clock() != nullptr) ? m->CycleCount() : phase_;
        if (!tap_->OnDrive(tap_site_, now, &tapped)) return;  // dropped
        next_ = tapped;
        driven_ = true;
        MarkDirty();
        if (consumer_ != nullptr) consumer_->Wake(kFlitWords);
        return;
      }
    }
    next_ = value;
    driven_ = true;
    MarkDirty();
    if (consumer_ != nullptr) consumer_->Wake(kFlitWords);
  }

  /// Consumer: the value latched at the last slot boundary.
  const T& Sample() const { return current_; }

  /// Commits once per word-clock edge while armed; the latch transfers at
  /// slot boundaries (every kFlitWords edges).
  void Commit() override {
    const bool boundary = AtSlotEnd();
    ++phase_;
    if (boundary) {
      current_ = driven_ ? next_ : idle_;
      holding_ = driven_;
      if (driven_ && consumer_mask_ != nullptr) {
        *consumer_mask_ |= consumer_mask_bit_;
      }
      driven_ = false;
    }
    // Stay armed until the boundary at which the wire reverts to idle: a
    // pending drive needs its transfer, a held value needs its revert.
    if (driven_ || holding_ || !boundary) MarkDirty();
  }

 private:
  bool AtSlotEnd() const {
    // The slot grid is defined by the owning module's clock so that skipped
    // commits (while the wire is idle and disarmed) cannot drift the phase.
    // A standalone wire (unit tests) falls back to counting its own
    // commits, which in that setting happen every edge.
    const sim::Module* m = owner();
    const Cycle edge = (m != nullptr && m->clock() != nullptr)
                           ? m->CycleCount()
                           : phase_;
    return edge % kFlitWords == kFlitWords - 1;
  }

  T idle_{};
  T current_{};
  T next_{};
  bool driven_ = false;
  bool holding_ = false;  // current_ carries a driven value to revert
  sim::Module* consumer_ = nullptr;
  std::uint32_t* consumer_mask_ = nullptr;  // see SetConsumerBit
  std::uint32_t consumer_mask_bit_ = 0;
  FlitTap* tap_ = nullptr;
  int tap_site_ = -1;
  Cycle phase_ = 0;
};

using FlitWire = SlotWire<Flit>;
using CreditWire = SlotWire<int>;

/// The wire bundle of one directed link: forward flits, backward link-level
/// credits (used only by best-effort buffering; guaranteed-throughput flits
/// are contention-free by construction and never buffered in routers).
struct LinkWires {
  FlitWire data;
  CreditWire credit_return;
};

/// A directed link as a simulation module: owns and commits its wires on
/// the network clock. Producers call data.Drive(); consumers call
/// credit_return.Drive(). A link is pure commit machinery: it is never
/// evaluated on the optimized path, and once both wires have disarmed its
/// per-edge cost is two flag checks.
class DirectedLink : public sim::Module {
 public:
  explicit DirectedLink(std::string name) : sim::Module(std::move(name)) {
    RegisterState(&wires_.data);
    RegisterState(&wires_.credit_return);
    SetEvaluateIsNoop();
    SetDefaultCommitOnly();
    // Wires latch only at the end-of-slot edge; commits on the two other
    // word-clock edges of a slot are no-ops and are skipped.
    SetCommitStride(kFlitWords, kFlitWords - 1);
  }

  void Evaluate() override {}

  LinkWires& wires() { return wires_; }

 private:
  LinkWires wires_;
};

/// Flattened link storage (DESIGN.md §7): ONE module owning the wire
/// bundles of every link of a NoC in a contiguous slab, replacing the
/// per-link DirectedLink modules. Behaviour per wire is identical — the
/// wires are the same SlotWire objects, committed by the same dirty-list
/// protocol — but the commit sweep now walks consecutive memory, the
/// kernel dispatches ONE virtual Commit() per slot for all driven links
/// instead of one per link, and the per-clock module count (which every
/// evaluate/commit scan is proportional to) drops by the link count.
///
/// The slab has a fixed capacity so LinkWires addresses stay stable: the
/// wires register themselves as TwoPhase state and producers/consumers keep
/// raw pointers to them.
class WirePool : public sim::Module {
 public:
  WirePool(std::string name, int capacity)
      : sim::Module(std::move(name)),
        links_(static_cast<std::size_t>(capacity)) {
    SetEvaluateIsNoop();      // pure commit machinery, like DirectedLink
    SetDefaultCommitOnly();
    // Wires latch only at the end-of-slot edge; commits on the two other
    // word-clock edges of a slot are no-ops and are skipped.
    SetCommitStride(kFlitWords, kFlitWords - 1);
  }

  /// Constructs the next link's wire bundle in the slab and registers its
  /// wires for commit. The returned address is stable for the pool's
  /// lifetime.
  LinkWires* AddLink() {
    LinkWires* wires = links_.Emplace();
    RegisterState(&wires->data);
    RegisterState(&wires->credit_return);
    return wires;
  }

  int NumLinks() const { return static_cast<int>(links_.size()); }

  void Evaluate() override {}

 private:
  sim::Slab<LinkWires> links_;
};

}  // namespace aethereal::link

#endif  // AETHEREAL_LINK_WIRE_H
