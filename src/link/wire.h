// Registered slot-granular wires: the physical signals between NoC
// components.
//
// The Æthereal link transports one 32-bit word per cycle; a 3-word flit
// therefore occupies one TDM slot (3 word-clock cycles at 500 MHz). This
// model transfers values atomically at slot granularity: a producer drives
// at most one value per slot (during the slot-boundary cycle's Evaluate
// phase); the value becomes visible to the consumer at the next slot
// boundary and is held for that whole slot. Per-hop latency is thus exactly
// one slot, as in the pipelined TDM circuits of the paper.
//
// Two instantiations are used:
//  * FlitWire  — the forward data signal (idle flit when undriven);
//  * CreditWire — the backward link-level credit-return pulse used by the
//    best-effort input buffers (0 when undriven).
#ifndef AETHEREAL_LINK_WIRE_H
#define AETHEREAL_LINK_WIRE_H

#include "link/flit.h"
#include "sim/kernel.h"
#include "util/check.h"

namespace aethereal::link {

template <typename T>
class SlotWire : public sim::TwoPhase {
 public:
  SlotWire() = default;
  explicit SlotWire(T idle) : idle_(idle), current_(idle), next_(idle) {}

  /// Producer: drive the wire for the current slot (call during Evaluate of
  /// a slot-boundary cycle, at most once per slot).
  void Drive(const T& value) {
    AETHEREAL_CHECK_MSG(!driven_, "wire driven twice in one slot");
    next_ = value;
    driven_ = true;
  }

  /// Consumer: the value latched at the last slot boundary.
  const T& Sample() const { return current_; }

  /// Commits once per word-clock edge; the latch transfers at slot
  /// boundaries (every kFlitWords edges).
  void Commit() override {
    ++phase_;
    if (phase_ % kFlitWords == 0) {
      current_ = driven_ ? next_ : idle_;
      driven_ = false;
    }
  }

 private:
  T idle_{};
  T current_{};
  T next_{};
  bool driven_ = false;
  std::int64_t phase_ = 0;
};

using FlitWire = SlotWire<Flit>;
using CreditWire = SlotWire<int>;

/// The wire bundle of one directed link: forward flits, backward link-level
/// credits (used only by best-effort buffering; guaranteed-throughput flits
/// are contention-free by construction and never buffered in routers).
struct LinkWires {
  FlitWire data;
  CreditWire credit_return;
};

/// A directed link as a simulation module: owns and commits its wires on
/// the network clock. Producers call data.Drive(); consumers call
/// credit_return.Drive().
class DirectedLink : public sim::Module {
 public:
  explicit DirectedLink(std::string name) : sim::Module(std::move(name)) {
    RegisterState(&wires_.data);
    RegisterState(&wires_.credit_return);
  }

  void Evaluate() override {}

  LinkWires& wires() { return wires_; }

 private:
  LinkWires wires_;
};

}  // namespace aethereal::link

#endif  // AETHEREAL_LINK_WIRE_H
