// Small SoC-wiring helpers shared by the scenario runner, the benches and
// the examples — the one place that knows how to turn "N channels of Q
// words on every NI" into NiKernelParams and an assembled Soc, so no
// harness keeps a private copy of that boilerplate.
#ifndef AETHEREAL_SCENARIO_WIRING_H
#define AETHEREAL_SCENARIO_WIRING_H

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "soc/soc.h"
#include "topology/builders.h"

namespace aethereal::scenario {

/// A single-port NI with `channels` channels of `queue_words`-word queues.
inline core::NiKernelParams NiWithChannels(int channels, int queue_words = 8,
                                           int stu_slots = 8,
                                           std::string port_name = {}) {
  core::NiKernelParams params;
  params.stu_slots = stu_slots;
  core::PortParams port;
  port.name = std::move(port_name);
  port.channels.assign(static_cast<std::size_t>(channels),
                       core::ChannelParams{queue_words, queue_words, 1});
  params.ports.push_back(std::move(port));
  return params;
}

/// One router, one NI per entry of `channels_per_ni` — the scale of most
/// NI-level experiments in the paper.
inline std::unique_ptr<soc::Soc> MakeStarSoc(
    const std::vector<int>& channels_per_ni, int queue_words = 8,
    soc::SocOptions options = {}) {
  auto star = topology::BuildStar(static_cast<int>(channels_per_ni.size()));
  std::vector<core::NiKernelParams> params;
  for (int channels : channels_per_ni) {
    params.push_back(
        NiWithChannels(channels, queue_words, options.stu_slots));
  }
  return std::make_unique<soc::Soc>(std::move(star.topology),
                                    std::move(params), options);
}

/// A rows x cols mesh with identical NIs everywhere.
inline std::unique_ptr<soc::Soc> MakeMeshSoc(
    int rows, int cols, int nis_per_router, int channels_per_ni,
    int queue_words = 8, soc::SocOptions options = {}) {
  auto mesh = topology::BuildMesh(rows, cols, nis_per_router);
  std::vector<core::NiKernelParams> params(
      static_cast<std::size_t>(rows * cols * nis_per_router),
      NiWithChannels(channels_per_ni, queue_words, options.stu_slots));
  return std::make_unique<soc::Soc>(std::move(mesh.topology),
                                    std::move(params), options);
}

/// Runs until `done` or `max_cycles`; returns true if `done` was reached.
inline bool RunUntil(soc::Soc& soc, const std::function<bool()>& done,
                     Cycle max_cycles, Cycle step = 30) {
  Cycle spent = 0;
  while (!done() && spent < max_cycles) {
    soc.RunCycles(step);
    spent += step;
  }
  return done();
}

}  // namespace aethereal::scenario

#endif  // AETHEREAL_SCENARIO_WIRING_H
