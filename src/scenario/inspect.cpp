#include "scenario/inspect.h"

#include <algorithm>
#include <sstream>

#include "scenario/runner.h"
#include "util/rng.h"

namespace aethereal::scenario {

Result<Inspection> InspectScenario(const ScenarioSpec& spec, bool wire) {
  Inspection inspection;
  inspection.spec = spec;
  inspection.num_nis = spec.NumNis();

  // Mirror of ScenarioRunner::Build: one seeded master RNG, patterns
  // expanded in directive order, connids assigned per NI in flow order.
  // Phased scenarios provision the configuration plumbing first: one
  // channel per remote NI at the Cfg NI, a CNIP channel everywhere else.
  Rng rng(spec.seed);
  std::vector<int> next_connid(static_cast<std::size_t>(spec.NumNis()), 0);
  for (std::size_t n = 0; n < next_connid.size(); ++n) {
    next_connid[n] = spec.ConfigChannelsOf(static_cast<NiId>(n));
  }
  for (std::size_t g = 0; g < spec.traffic.size(); ++g) {
    auto flows = ExpandPattern(spec, spec.traffic[g], rng);
    if (!flows.ok()) {
      return Status(flows.status().code(),
                    "traffic directive " + std::to_string(g) + " (" +
                        PatternKindName(spec.traffic[g].pattern) +
                        "): " + flows.status().message());
    }
    for (const Flow& flow : *flows) {
      InspectedFlow inspected;
      inspected.group = static_cast<int>(g);
      inspected.flow = flow;
      inspected.src_connid = next_connid[static_cast<std::size_t>(flow.src)]++;
      inspected.dst_connid = next_connid[static_cast<std::size_t>(flow.dst)]++;
      inspection.flows.push_back(inspected);
    }
  }
  inspection.channels_per_ni.reserve(next_connid.size());
  for (int count : next_connid) {
    inspection.channels_per_ni.push_back(std::max(count, 1));
  }

  if (wire) {
    // The full Build catches what structure alone cannot: GT slot-table
    // exhaustion, channel/queue provisioning limits, path constraints.
    ScenarioRunner runner(spec);
    if (Status s = runner.Build(); !s.ok()) return s;
  }
  return inspection;
}

std::string Inspection::Describe() const {
  std::ostringstream os;
  os << "scenario " << spec.name << ": " << TopologyKindName(spec.topology)
     << "(" << spec.dim_a;
  if (spec.topology == TopologyKind::kMesh) os << "x" << spec.dim_b;
  if (spec.topology != TopologyKind::kStar) os << "x" << spec.nis_per_router;
  os << ") — " << num_nis << " NIs, stu " << spec.stu_slots << ", queues "
     << spec.queue_words << ", seed " << spec.seed << ", warmup "
     << spec.warmup << ", duration " << spec.TotalDuration() << ", engine "
     << sim::EngineConfigName(spec.engine) << "\n";
  if (spec.Phased()) {
    os << "  phased: " << spec.phases.size() << " phases, cfg ni "
       << spec.cfg_ni << " (config channels occupy the lowest connids), "
       << "drain bound " << spec.drain_cycles << "\n";
    for (std::size_t k = 0; k < spec.phases.size(); ++k) {
      const PhaseSpec& phase = spec.phases[k];
      os << "  phase " << k << " '" << phase.name << "' duration "
         << phase.duration;
      if (phase.warmup > 0) os << " warmup " << phase.warmup;
      os << " — groups:";
      for (std::size_t g = 0; g < spec.traffic.size(); ++g) {
        if (spec.traffic[g].phase == static_cast<int>(k)) {
          os << " g" << g
             << (spec.traffic[g].persist ? " (persist)" : "");
        }
      }
      os << "\n";
    }
  }
  for (int ni = 0; ni < num_nis; ++ni) {
    os << "  ni " << ni << ": "
       << channels_per_ni[static_cast<std::size_t>(ni)] << " channel"
       << (channels_per_ni[static_cast<std::size_t>(ni)] == 1 ? "" : "s")
       << "\n";
  }
  for (std::size_t g = 0; g < spec.traffic.size(); ++g) {
    const TrafficSpec& traffic = spec.traffic[g];
    os << "  g" << g << " " << PatternKindName(traffic.pattern) << " inject "
       << InjectKindName(traffic.inject);
    switch (traffic.inject) {
      case InjectKind::kPeriodic: os << " " << traffic.period; break;
      case InjectKind::kBernoulli: os << " " << traffic.rate; break;
      case InjectKind::kBursty:
        os << " " << traffic.burst_words << " " << traffic.gap_cycles;
        break;
      case InjectKind::kClosedLoop: break;
    }
    os << " qos " << (traffic.gt ? "gt " + std::to_string(traffic.gt_slots)
                                 : std::string("be"));
    std::size_t count = 0;
    for (const InspectedFlow& f : flows) {
      if (f.group == static_cast<int>(g)) ++count;
    }
    os << " — " << count << " flow" << (count == 1 ? "" : "s") << ":\n";
    for (const InspectedFlow& f : flows) {
      if (f.group != static_cast<int>(g)) continue;
      os << "    " << f.flow.src << " -> " << f.flow.dst << " (connids "
         << f.src_connid << " -> " << f.dst_connid << ")\n";
    }
  }
  return os.str();
}

}  // namespace aethereal::scenario
