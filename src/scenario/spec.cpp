#include "scenario/spec.h"

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/registers.h"

namespace aethereal::scenario {

const char* PatternKindName(PatternKind kind) {
  switch (kind) {
    case PatternKind::kUniform: return "uniform";
    case PatternKind::kTranspose: return "transpose";
    case PatternKind::kBitComplement: return "bitcomp";
    case PatternKind::kBitReversal: return "bitrev";
    case PatternKind::kNeighbor: return "neighbor";
    case PatternKind::kHotspot: return "hotspot";
    case PatternKind::kPairs: return "pairs";
    case PatternKind::kVideo: return "video";
    case PatternKind::kMemory: return "memory";
  }
  return "?";
}

const char* InjectKindName(InjectKind kind) {
  switch (kind) {
    case InjectKind::kPeriodic: return "periodic";
    case InjectKind::kBernoulli: return "bernoulli";
    case InjectKind::kBursty: return "bursty";
    case InjectKind::kClosedLoop: return "closed";
  }
  return "?";
}

const char* TopologyKindName(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kStar: return "star";
    case TopologyKind::kMesh: return "mesh";
    case TopologyKind::kRing: return "ring";
  }
  return "?";
}

int ScenarioSpec::NumNis() const {
  switch (topology) {
    case TopologyKind::kStar: return dim_a;
    case TopologyKind::kMesh: return dim_a * dim_b * nis_per_router;
    case TopologyKind::kRing: return dim_a * nis_per_router;
  }
  return 0;
}

int ScenarioSpec::ConfigChannelsOf(NiId ni) const {
  if (!Phased()) return 0;
  return ni == cfg_ni ? NumNis() - 1 : 1;
}

Cycle ScenarioSpec::TotalDuration() const {
  if (!Phased()) return duration;
  Cycle total = 0;
  for (const PhaseSpec& phase : phases) total += phase.duration;
  return total;
}

namespace {

struct Line {
  int number;
  std::vector<std::string> tokens;
};

std::vector<Line> Tokenize(const std::string& text) {
  std::vector<Line> lines;
  std::istringstream stream(text);
  std::string raw;
  int number = 0;
  while (std::getline(stream, raw)) {
    ++number;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream ls(raw);
    Line line{number, {}};
    std::string token;
    while (ls >> token) line.tokens.push_back(token);
    if (!line.tokens.empty()) lines.push_back(std::move(line));
  }
  return lines;
}

Status ParseError(int line, const std::string& message) {
  return InvalidArgumentError("line " + std::to_string(line) + ": " + message);
}

/// Largest NI population a scenario may instantiate. Keeps design-time
/// arithmetic far from integer overflow and rejects obviously
/// un-simulatable specs at parse time instead of hanging in allocation.
constexpr std::int64_t kMaxScenarioNis = 4096;

Result<std::int64_t> ParseInt(const Line& line, const std::string& token) {
  try {
    std::size_t pos = 0;
    const std::int64_t value = std::stoll(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    return ParseError(line.number, "expected a number, got '" + token + "'");
  }
}

/// ParseInt with an inclusive range check — every value that is later
/// narrowed below int64 goes through this, so a typo'd huge literal fails
/// loudly instead of silently wrapping.
Result<std::int64_t> ParseIntIn(const Line& line, const std::string& token,
                                std::int64_t lo, std::int64_t hi) {
  auto value = ParseInt(line, token);
  if (!value.ok()) return value;
  if (*value < lo || *value > hi) {
    return ParseError(line.number, "'" + token + "' out of range [" +
                                       std::to_string(lo) + ", " +
                                       std::to_string(hi) + "]");
  }
  return value;
}

Result<double> ParseDouble(const Line& line, const std::string& token) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    return ParseError(line.number, "expected a number, got '" + token + "'");
  }
}

/// Parses the clause tail of a traffic directive, starting at token `at`.
Status ParseTrafficClauses(const Line& line, std::size_t at,
                           TrafficSpec* traffic) {
  const auto& t = line.tokens;
  while (at < t.size()) {
    const std::string& clause = t[at];
    auto need = [&](std::size_t extra) -> Status {
      if (at + extra >= t.size()) {
        return ParseError(line.number,
                          "clause '" + clause + "' is missing arguments");
      }
      return OkStatus();
    };
    if (clause == "inject") {
      if (Status s = need(1); !s.ok()) return s;
      const std::string& kind = t[at + 1];
      if (kind == "periodic") {
        if (Status s = need(2); !s.ok()) return s;
        auto v = ParseInt(line, t[at + 2]);
        if (!v.ok()) return v.status();
        if (*v < 1) return ParseError(line.number, "period must be >= 1");
        traffic->inject = InjectKind::kPeriodic;
        traffic->period = *v;
        at += 3;
      } else if (kind == "bernoulli") {
        if (Status s = need(2); !s.ok()) return s;
        auto v = ParseDouble(line, t[at + 2]);
        if (!v.ok()) return v.status();
        if (*v <= 0.0 || *v > 1.0) {
          return ParseError(line.number, "rate must be in (0, 1]");
        }
        traffic->inject = InjectKind::kBernoulli;
        traffic->rate = *v;
        at += 3;
      } else if (kind == "bursty") {
        if (Status s = need(3); !s.ok()) return s;
        auto words = ParseInt(line, t[at + 2]);
        auto gap = ParseInt(line, t[at + 3]);
        if (!words.ok()) return words.status();
        if (!gap.ok()) return gap.status();
        if (*words < 1 || *gap < 0) {
          return ParseError(line.number, "bursty needs WORDS >= 1, GAP >= 0");
        }
        traffic->inject = InjectKind::kBursty;
        traffic->burst_words = *words;
        traffic->gap_cycles = *gap;
        at += 4;
      } else if (kind == "closed") {
        if (traffic->pattern != PatternKind::kMemory) {
          return ParseError(line.number,
                            "'inject closed' is memory-pattern only");
        }
        traffic->inject = InjectKind::kClosedLoop;
        at += 2;
      } else {
        return ParseError(line.number, "unknown inject kind '" + kind + "'");
      }
    } else if (clause == "qos") {
      if (Status s = need(1); !s.ok()) return s;
      if (t[at + 1] == "be") {
        traffic->gt = false;
        traffic->gt_slots = 0;
        at += 2;
      } else if (t[at + 1] == "gt") {
        if (Status s = need(2); !s.ok()) return s;
        auto v = ParseIntIn(line, t[at + 2], 1, 1024);
        if (!v.ok()) return v.status();
        traffic->gt = true;
        traffic->gt_slots = static_cast<int>(*v);
        at += 3;
      } else {
        return ParseError(line.number, "qos must be 'be' or 'gt SLOTS'");
      }
    } else if (clause == "data_threshold" || clause == "credit_threshold") {
      if (Status s = need(1); !s.ok()) return s;
      auto v = ParseIntIn(line, t[at + 1], 1, 1 << 20);
      if (!v.ok()) return v.status();
      (clause[0] == 'd' ? traffic->data_threshold
                        : traffic->credit_threshold) = static_cast<int>(*v);
      at += 2;
    } else if (clause == "persist") {
      traffic->persist = true;
      at += 1;
    } else if (clause == "read_fraction") {
      if (traffic->pattern != PatternKind::kMemory) {
        return ParseError(line.number, "'read_fraction' is memory-only");
      }
      if (Status s = need(1); !s.ok()) return s;
      auto v = ParseDouble(line, t[at + 1]);
      if (!v.ok()) return v.status();
      if (*v < 0.0 || *v > 1.0) {
        return ParseError(line.number, "read_fraction must be in [0, 1]");
      }
      traffic->read_fraction = *v;
      at += 2;
    } else if (clause == "burst") {
      if (traffic->pattern != PatternKind::kMemory) {
        return ParseError(line.number, "'burst' is memory-only");
      }
      if (Status s = need(1); !s.ok()) return s;
      // Transport ceiling: a write request is 2 header words + payload and
      // must fit the master shell's 64-word sequentializer staging, so
      // bursts above 62 words could never be issued (silent zero traffic).
      auto v = ParseIntIn(line, t[at + 1], 1, 62);
      if (!v.ok()) return v.status();
      traffic->mem_burst_words = static_cast<int>(*v);
      at += 2;
    } else {
      return ParseError(line.number, "unknown clause '" + clause + "'");
    }
  }
  return OkStatus();
}

/// Consumes leading NI-id tokens (for hotspot/pairs/video/memory) until a
/// clause keyword appears.
Result<std::size_t> ParseNiList(const Line& line, std::size_t at,
                                std::vector<NiId>* out) {
  const auto& t = line.tokens;
  while (at < t.size() &&
         (std::isdigit(static_cast<unsigned char>(t[at][0])) != 0 ||
          t[at][0] == '-')) {
    auto v = ParseIntIn(line, t[at], 0, kMaxScenarioNis);
    if (!v.ok()) return v.status();
    out->push_back(static_cast<NiId>(*v));
    ++at;
  }
  return at;
}

Status ParseTraffic(const Line& line, ScenarioSpec* spec, int current_phase) {
  if (line.tokens.size() < 2) {
    return ParseError(line.number, "traffic <pattern> [args] [clauses]");
  }
  TrafficSpec traffic;
  traffic.phase = current_phase;
  traffic.line = line.number;
  const std::string& pattern = line.tokens[1];
  std::size_t at = 2;
  if (pattern == "uniform") {
    traffic.pattern = PatternKind::kUniform;
  } else if (pattern == "transpose") {
    traffic.pattern = PatternKind::kTranspose;
  } else if (pattern == "bitcomp") {
    traffic.pattern = PatternKind::kBitComplement;
  } else if (pattern == "bitrev") {
    traffic.pattern = PatternKind::kBitReversal;
  } else if (pattern == "neighbor") {
    traffic.pattern = PatternKind::kNeighbor;
  } else if (pattern == "hotspot") {
    traffic.pattern = PatternKind::kHotspot;
    std::vector<NiId> ids;
    auto next = ParseNiList(line, at, &ids);
    if (!next.ok()) return next.status();
    if (ids.size() != 1) {
      return ParseError(line.number, "hotspot needs exactly one target NI");
    }
    traffic.hotspot = ids[0];
    at = *next;
  } else if (pattern == "pairs") {
    traffic.pattern = PatternKind::kPairs;
    auto next = ParseNiList(line, at, &traffic.nis);
    if (!next.ok()) return next.status();
    if (traffic.nis.empty() || traffic.nis.size() % 2 != 0) {
      return ParseError(line.number, "pairs needs an even NI-id list");
    }
    at = *next;
  } else if (pattern == "video") {
    traffic.pattern = PatternKind::kVideo;
    auto next = ParseNiList(line, at, &traffic.nis);
    if (!next.ok()) return next.status();
    if (traffic.nis.size() < 2) {
      return ParseError(line.number, "video needs a chain of >= 2 NIs");
    }
    at = *next;
  } else if (pattern == "memory") {
    traffic.pattern = PatternKind::kMemory;
    auto next = ParseNiList(line, at, &traffic.nis);
    if (!next.ok()) return next.status();
    if (traffic.nis.size() != 2) {
      return ParseError(line.number, "memory needs <master_ni> <slave_ni>");
    }
    at = *next;
  } else {
    return ParseError(line.number, "unknown pattern '" + pattern + "'");
  }
  // ('inject closed' outside memory is already rejected clause-side, where
  // the pattern is known.)
  if (Status s = ParseTrafficClauses(line, at, &traffic); !s.ok()) return s;
  if (traffic.pattern == PatternKind::kMemory &&
      traffic.inject == InjectKind::kBursty) {
    return ParseError(line.number,
                      "memory traffic supports periodic/bernoulli/closed");
  }
  if (traffic.persist && current_phase < 0) {
    return ParseError(line.number, "'persist' needs a phase block");
  }
  if (current_phase >= 0 &&
      (traffic.data_threshold != 1 || traffic.credit_threshold != 1)) {
    return ParseError(line.number,
                      "phased directives require data_threshold 1 and "
                      "credit_threshold 1 (a closing channel must be able "
                      "to drain completely)");
  }
  spec->traffic.push_back(std::move(traffic));
  return OkStatus();
}

}  // namespace

Result<ScenarioSpec> ParseScenario(const std::string& text) {
  ScenarioSpec spec;
  bool have_noc = false;
  bool have_duration = false;
  bool have_cfgni = false;
  bool have_drain = false;
  int cfgni_line = 0;
  int current_phase = -1;
  bool in_fault = false;
  int fault_line = 0;
  // Every scalar directive may appear at most once: a duplicate almost
  // always means a copy-paste error, and silently keeping the later value
  // would make the earlier line a lie.
  std::set<std::string> seen;
  for (const Line& line : Tokenize(text)) {
    const std::string& kind = line.tokens[0];
    // Inside a `fault` block every line belongs to the fault grammar, so
    // its directive names (seed, link, ...) never collide with the
    // scenario-level ones.
    if (in_fault) {
      if (kind == "end") {
        if (line.tokens.size() != 1) {
          return ParseError(line.number, "'end' takes no arguments");
        }
        in_fault = false;
        continue;
      }
      if (Status s = fault::ApplyFaultDirective(line.tokens, &*spec.fault);
          !s.ok()) {
        return ParseError(line.number, s.message());
      }
      continue;
    }
    if (kind != "traffic" && kind != "noc" && kind != "phase" &&
        !seen.insert(kind).second) {
      return ParseError(line.number, "duplicate '" + kind + "' directive");
    }
    auto int_arg = [&]() -> Result<std::int64_t> {
      if (line.tokens.size() != 2) {
        return ParseError(line.number, "'" + kind + "' takes one argument");
      }
      return ParseInt(line, line.tokens[1]);
    };
    if (kind == "scenario") {
      if (line.tokens.size() != 2) {
        return ParseError(line.number, "scenario <name>");
      }
      spec.name = line.tokens[1];
    } else if (kind == "noc") {
      if (have_noc) return ParseError(line.number, "duplicate 'noc'");
      if (line.tokens.size() < 3) {
        return ParseError(line.number, "noc <star|mesh|ring> <dims...>");
      }
      if (line.tokens[1] == "star") {
        if (line.tokens.size() != 3) {
          return ParseError(line.number, "noc star NIS");
        }
        auto n = ParseInt(line, line.tokens[2]);
        if (!n.ok()) return n.status();
        if (*n < 1 || *n > kMaxScenarioNis) {
          return ParseError(line.number,
                            "star needs 1.." +
                                std::to_string(kMaxScenarioNis) + " NIs");
        }
        spec.topology = TopologyKind::kStar;
        spec.dim_a = static_cast<int>(*n);
      } else if (line.tokens[1] == "mesh") {
        if (line.tokens.size() != 5) {
          return ParseError(line.number, "noc mesh ROWS COLS NIS_PER_ROUTER");
        }
        // Per-dimension bounds first, so the product below cannot overflow.
        auto rows = ParseIntIn(line, line.tokens[2], 1, kMaxScenarioNis);
        auto cols = ParseIntIn(line, line.tokens[3], 1, kMaxScenarioNis);
        auto nis = ParseIntIn(line, line.tokens[4], 1, kMaxScenarioNis);
        if (!rows.ok()) return rows.status();
        if (!cols.ok()) return cols.status();
        if (!nis.ok()) return nis.status();
        if (*rows * *cols * *nis > kMaxScenarioNis) {
          return ParseError(line.number,
                            "mesh gives at most " +
                                std::to_string(kMaxScenarioNis) + " NIs");
        }
        spec.topology = TopologyKind::kMesh;
        spec.dim_a = static_cast<int>(*rows);
        spec.dim_b = static_cast<int>(*cols);
        spec.nis_per_router = static_cast<int>(*nis);
      } else if (line.tokens[1] == "ring") {
        if (line.tokens.size() != 4) {
          return ParseError(line.number, "noc ring ROUTERS NIS_PER_ROUTER");
        }
        // Per-dimension bounds first, so the product below cannot overflow.
        auto routers = ParseIntIn(line, line.tokens[2], 3, kMaxScenarioNis);
        auto nis = ParseIntIn(line, line.tokens[3], 1, kMaxScenarioNis);
        if (!routers.ok()) return routers.status();
        if (!nis.ok()) return nis.status();
        if (*routers * *nis > kMaxScenarioNis) {
          return ParseError(line.number,
                            "ring gives at most " +
                                std::to_string(kMaxScenarioNis) + " NIs");
        }
        spec.topology = TopologyKind::kRing;
        spec.dim_a = static_cast<int>(*routers);
        spec.nis_per_router = static_cast<int>(*nis);
      } else {
        return ParseError(line.number,
                          "unknown topology '" + line.tokens[1] + "'");
      }
      have_noc = true;
    } else if (kind == "stu") {
      auto v = int_arg();
      if (!v.ok()) return v.status();
      // The NI's SLOTS register is a 32-bit mask, so kMaxStuSlots is a
      // hard hardware limit; values beyond it previously aborted deep in
      // the NI kernel instead of failing here.
      if (*v < 1 || *v > core::regs::kMaxStuSlots) {
        return ParseError(line.number,
                          "stu must be in [1, " +
                              std::to_string(core::regs::kMaxStuSlots) + "]");
      }
      spec.stu_slots = static_cast<int>(*v);
    } else if (kind == "netmhz") {
      auto v = int_arg();
      if (!v.ok()) return v.status();
      if (*v < 1 || *v > 1000000) {
        return ParseError(line.number, "netmhz must be in [1, 1000000]");
      }
      spec.net_mhz = static_cast<double>(*v);
    } else if (kind == "queues") {
      auto v = int_arg();
      if (!v.ok()) return v.status();
      if (*v < 1 || *v > (1 << 20)) {
        return ParseError(line.number, "queues must be in [1, 1048576]");
      }
      spec.queue_words = static_cast<int>(*v);
    } else if (kind == "seed") {
      auto v = int_arg();
      if (!v.ok()) return v.status();
      // Reproducibility-critical: a negative seed must fail loudly, not
      // silently wrap (mirrors the noc_sim --seed check).
      if (*v < 0) return ParseError(line.number, "seed must be >= 0");
      spec.seed = static_cast<std::uint64_t>(*v);
    } else if (kind == "warmup") {
      auto v = int_arg();
      if (!v.ok()) return v.status();
      // ~12 days of 1 GHz simulation — anything beyond this is a typo,
      // and the bound keeps warmup + duration far from Cycle overflow.
      if (*v < 0 || *v > (std::int64_t{1} << 40)) {
        return ParseError(line.number, "warmup must be in [0, 2^40]");
      }
      spec.warmup = *v;
    } else if (kind == "duration") {
      if (!spec.phases.empty()) {
        return ParseError(line.number,
                          "phased scenarios take per-phase durations; drop "
                          "the scenario-level 'duration'");
      }
      auto v = int_arg();
      if (!v.ok()) return v.status();
      if (*v < 1 || *v > (std::int64_t{1} << 40)) {
        return ParseError(line.number, "duration must be in [1, 2^40]");
      }
      spec.duration = *v;
      have_duration = true;
    } else if (kind == "phase") {
      if (line.tokens.size() != 4 && line.tokens.size() != 6) {
        return ParseError(line.number,
                          "phase <name> duration <cycles> [warmup <cycles>]");
      }
      if (have_duration) {
        return ParseError(line.number,
                          "phased scenarios take per-phase durations; drop "
                          "the scenario-level 'duration'");
      }
      if (spec.phases.size() >= 64) {
        return ParseError(line.number, "at most 64 phases");
      }
      PhaseSpec phase;
      phase.name = line.tokens[1];
      phase.line = line.number;
      for (const PhaseSpec& earlier : spec.phases) {
        if (earlier.name == phase.name) {
          return ParseError(line.number,
                            "duplicate phase name '" + phase.name + "'");
        }
      }
      if (line.tokens[2] != "duration") {
        return ParseError(line.number,
                          "phase <name> duration <cycles> [warmup <cycles>]");
      }
      auto d = ParseIntIn(line, line.tokens[3], 1, std::int64_t{1} << 40);
      if (!d.ok()) return d.status();
      phase.duration = *d;
      if (line.tokens.size() == 6) {
        if (line.tokens[4] != "warmup") {
          return ParseError(line.number, "expected 'warmup <cycles>'");
        }
        auto w = ParseIntIn(line, line.tokens[5], 0, std::int64_t{1} << 40);
        if (!w.ok()) return w.status();
        phase.warmup = *w;
      }
      current_phase = static_cast<int>(spec.phases.size());
      spec.phases.push_back(std::move(phase));
    } else if (kind == "cfgni") {
      auto v = int_arg();
      if (!v.ok()) return v.status();
      if (*v < 0 || *v > kMaxScenarioNis) {
        return ParseError(line.number, "cfgni must be a valid NI id");
      }
      spec.cfg_ni = static_cast<NiId>(*v);
      have_cfgni = true;
      cfgni_line = line.number;
    } else if (kind == "drain") {
      auto v = int_arg();
      if (!v.ok()) return v.status();
      if (*v < 1 || *v > (std::int64_t{1} << 40)) {
        return ParseError(line.number, "drain must be in [1, 2^40]");
      }
      spec.drain_cycles = *v;
      have_drain = true;
    } else if (kind == "engine") {
      // engine <naive|optimized|soa> [threads N] — the bare form (`engine
      // optimized`) is the pre-EngineConfig grammar and still parses.
      const std::optional<sim::EngineKind> parsed =
          (line.tokens.size() == 2 || line.tokens.size() == 4)
              ? sim::ParseEngineKind(line.tokens[1])
              : std::nullopt;
      if (!parsed.has_value() ||
          (line.tokens.size() == 4 && line.tokens[2] != "threads")) {
        return ParseError(line.number,
                          std::string("engine <") + sim::kEngineKindChoices +
                              "> [threads N]");
      }
      sim::EngineConfig config(*parsed);
      if (line.tokens.size() == 4) {
        auto t = ParseIntIn(line, line.tokens[3], 1, sim::kMaxEngineThreads);
        if (!t.ok()) return t.status();
        config.threads = static_cast<unsigned>(*t);
      }
      if (const std::string error = sim::ValidateEngineConfig(config);
          !error.empty()) {
        return ParseError(line.number, error);
      }
      spec.engine = config;
    } else if (kind == "verify") {
      if (line.tokens.size() != 2 ||
          (line.tokens[1] != "on" && line.tokens[1] != "off")) {
        return ParseError(line.number, "verify <on|off>");
      }
      spec.verify = line.tokens[1] == "on";
    } else if (kind == "converge") {
      // converge rel_err E [conf C] [max_duration D] [interval I]
      //          [batches B] — key-value clauses in any order; rel_err is
      // mandatory (a stopping rule without a target is meaningless).
      if (line.tokens.size() < 3 || line.tokens.size() % 2 == 0) {
        return ParseError(line.number,
                          "converge rel_err <frac> [conf <frac>] "
                          "[max_duration <cycles>] [interval <cycles>] "
                          "[batches <n>]");
      }
      bool have_rel_err = false;
      for (std::size_t at = 1; at + 1 < line.tokens.size(); at += 2) {
        const std::string& key = line.tokens[at];
        const std::string& val = line.tokens[at + 1];
        if (key == "rel_err") {
          auto v = ParseDouble(line, val);
          if (!v.ok()) return v.status();
          if (*v <= 0.0 || *v >= 1.0) {
            return ParseError(line.number, "rel_err must be in (0, 1)");
          }
          spec.converge.rel_err = *v;
          have_rel_err = true;
        } else if (key == "conf") {
          auto v = ParseDouble(line, val);
          if (!v.ok()) return v.status();
          if (*v <= 0.5 || *v >= 1.0) {
            return ParseError(line.number, "conf must be in (0.5, 1)");
          }
          spec.converge.conf = *v;
        } else if (key == "max_duration") {
          auto v = ParseIntIn(line, val, 1, std::int64_t{1} << 40);
          if (!v.ok()) return v.status();
          spec.converge.max_duration = *v;
        } else if (key == "interval") {
          // A check interval shorter than one slot could never close a
          // new sample window.
          auto v = ParseIntIn(line, val, kFlitWords, std::int64_t{1} << 40);
          if (!v.ok()) return v.status();
          spec.converge.interval = *v;
        } else if (key == "batches") {
          auto v = ParseIntIn(line, val, 2, 4096);
          if (!v.ok()) return v.status();
          spec.converge.batches = static_cast<int>(*v);
        } else {
          return ParseError(line.number,
                            "unknown converge clause '" + key + "'");
        }
      }
      if (!have_rel_err) {
        return ParseError(line.number, "converge requires 'rel_err <frac>'");
      }
      spec.converge.enabled = true;
    } else if (kind == "stats") {
      if (line.tokens.size() != 3 || line.tokens[1] != "sample_every") {
        return ParseError(line.number, "stats sample_every <cycles>");
      }
      // Windows close at slot boundaries (the wire-transfer granularity),
      // so a window shorter than one slot could never hold a sample.
      auto v = ParseIntIn(line, line.tokens[2], kFlitWords,
                          std::int64_t{1} << 40);
      if (!v.ok()) return v.status();
      spec.obs.sample_every = *v;
    } else if (kind == "trace") {
      if (line.tokens.size() != 2 && line.tokens.size() != 4) {
        return ParseError(line.number, "trace <file> [cap <events>]");
      }
      spec.obs.trace_path = line.tokens[1];
      if (line.tokens.size() == 4) {
        if (line.tokens[2] != "cap") {
          return ParseError(line.number, "expected 'cap <events>'");
        }
        auto v = ParseIntIn(line, line.tokens[3], 1, std::int64_t{1} << 30);
        if (!v.ok()) return v.status();
        spec.obs.trace_cap = *v;
      }
    } else if (kind == "fault") {
      if (line.tokens.size() != 1) {
        return ParseError(line.number,
                          "'fault' opens a block; directives go on the "
                          "following lines, closed with 'end'");
      }
      if (spec.fault.has_value()) {
        return ParseError(line.number, "duplicate 'fault' block");
      }
      spec.fault.emplace();
      in_fault = true;
      fault_line = line.number;
    } else if (kind == "traffic") {
      if (!have_noc) {
        return ParseError(line.number, "'noc' must come before 'traffic'");
      }
      if (Status s = ParseTraffic(line, &spec, current_phase); !s.ok()) {
        return s;
      }
    } else {
      return ParseError(line.number, "unknown directive '" + kind + "'");
    }
  }
  if (in_fault) {
    return ParseError(fault_line, "'fault' block is never closed with 'end'");
  }
  if (!have_noc) return InvalidArgumentError("scenario has no 'noc' line");
  if (spec.traffic.empty()) {
    return InvalidArgumentError("scenario has no 'traffic' directives");
  }
  if (spec.Phased()) {
    for (const TrafficSpec& traffic : spec.traffic) {
      if (traffic.phase < 0) {
        return ParseError(traffic.line,
                          "phased scenario has a traffic directive before "
                          "the first 'phase' block");
      }
    }
    if (spec.cfg_ni >= spec.NumNis()) {
      return ParseError(cfgni_line,
                        "cfgni " + std::to_string(spec.cfg_ni) +
                            " is off the topology (" +
                            std::to_string(spec.NumNis()) + " NIs)");
    }
    // Every phase window must observe at least one flow — its own
    // directives or a persistent one from an earlier phase.
    for (std::size_t k = 0; k < spec.phases.size(); ++k) {
      bool active = false;
      for (const TrafficSpec& traffic : spec.traffic) {
        if (traffic.ActiveIn(static_cast<int>(k))) {
          active = true;
          break;
        }
      }
      if (!active) {
        return ParseError(spec.phases[k].line,
                          "phase '" + spec.phases[k].name +
                              "' has no active traffic directive");
      }
    }
  } else {
    if (have_cfgni || have_drain) {
      return InvalidArgumentError(
          "'cfgni'/'drain' apply to phased scenarios only");
    }
    if (spec.fault.has_value() &&
        (spec.fault->AnyConfigFaults() || spec.fault->retry.enabled)) {
      return ParseError(fault_line,
                        "config faults and the retry policy act on the "
                        "runtime configuration protocol, which only phased "
                        "scenarios exercise");
    }
  }
  return spec;
}

Result<ScenarioSpec> LoadScenarioFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return NotFoundError("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  auto spec = ParseScenario(text.str());
  if (!spec.ok()) {
    return Status(spec.status().code(), path + ": " + spec.status().message());
  }
  return spec;
}

}  // namespace aethereal::scenario
