#include "scenario/patterns.h"

#include <string>

namespace aethereal::scenario {

namespace {

bool IsPowerOfTwo(int n) { return n > 0 && (n & (n - 1)) == 0; }

int Log2(int n) {
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

Status CheckNi(const ScenarioSpec& spec, NiId ni, const char* what) {
  if (ni < 0 || ni >= spec.NumNis()) {
    return InvalidArgumentError(std::string(what) + " NI " +
                                std::to_string(ni) + " out of range [0, " +
                                std::to_string(spec.NumNis()) + ")");
  }
  return OkStatus();
}

}  // namespace

std::vector<NiId> UniformPartners(int num_nis, Rng& rng) {
  std::vector<NiId> partners(static_cast<std::size_t>(num_nis));
  for (int i = 0; i < num_nis; ++i) partners[static_cast<std::size_t>(i)] = i;
  // Fisher-Yates with the deterministic xoshiro stream.
  for (int i = num_nis - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(
        rng.NextBelow(static_cast<std::uint64_t>(i) + 1));
    std::swap(partners[static_cast<std::size_t>(i)], partners[j]);
  }
  // Displace fixed points so every NI has a remote partner. Swapping a
  // fixed point with its cyclic successor never creates a new one (a
  // permutation cannot map two positions to the same id).
  if (num_nis > 1) {
    for (int i = 0; i < num_nis; ++i) {
      const auto si = static_cast<std::size_t>(i);
      if (partners[si] == i) {
        std::swap(partners[si],
                  partners[static_cast<std::size_t>((i + 1) % num_nis)]);
      }
    }
  }
  return partners;
}

Result<std::vector<Flow>> ExpandPattern(const ScenarioSpec& spec,
                                        const TrafficSpec& traffic, Rng& rng) {
  const int n = spec.NumNis();
  std::vector<Flow> flows;
  switch (traffic.pattern) {
    case PatternKind::kUniform: {
      if (n < 2) return InvalidArgumentError("uniform needs >= 2 NIs");
      const std::vector<NiId> partners = UniformPartners(n, rng);
      for (int i = 0; i < n; ++i) {
        flows.push_back(Flow{i, partners[static_cast<std::size_t>(i)]});
      }
      break;
    }
    case PatternKind::kTranspose: {
      if (spec.topology != TopologyKind::kMesh || spec.dim_a != spec.dim_b) {
        return InvalidArgumentError("transpose needs a square mesh");
      }
      const int side = spec.dim_a;
      const int per = spec.nis_per_router;
      for (int r = 0; r < side; ++r) {
        for (int c = 0; c < side; ++c) {
          if (r == c) continue;  // diagonal maps to itself
          for (int local = 0; local < per; ++local) {
            const NiId src = (r * side + c) * per + local;
            const NiId dst = (c * side + r) * per + local;
            flows.push_back(Flow{src, dst});
          }
        }
      }
      break;
    }
    case PatternKind::kBitComplement: {
      if (!IsPowerOfTwo(n) || n < 2) {
        return InvalidArgumentError(
            "bitcomp needs a power-of-two NI count >= 2");
      }
      for (int i = 0; i < n; ++i) flows.push_back(Flow{i, (n - 1) & ~i});
      break;
    }
    case PatternKind::kBitReversal: {
      if (!IsPowerOfTwo(n) || n < 2) {
        return InvalidArgumentError(
            "bitrev needs a power-of-two NI count >= 2");
      }
      const int bits = Log2(n);
      for (int i = 0; i < n; ++i) {
        int rev = 0;
        for (int b = 0; b < bits; ++b) {
          if ((i >> b) & 1) rev |= 1 << (bits - 1 - b);
        }
        if (rev == i) continue;  // palindromic index
        flows.push_back(Flow{i, rev});
      }
      break;
    }
    case PatternKind::kNeighbor: {
      if (n < 2) return InvalidArgumentError("neighbor needs >= 2 NIs");
      for (int i = 0; i < n; ++i) flows.push_back(Flow{i, (i + 1) % n});
      break;
    }
    case PatternKind::kHotspot: {
      if (Status s = CheckNi(spec, traffic.hotspot, "hotspot"); !s.ok()) {
        return s;
      }
      if (n < 2) return InvalidArgumentError("hotspot needs >= 2 NIs");
      for (int i = 0; i < n; ++i) {
        if (i == traffic.hotspot) continue;
        flows.push_back(Flow{i, traffic.hotspot});
      }
      break;
    }
    case PatternKind::kPairs: {
      for (std::size_t i = 0; i + 1 < traffic.nis.size(); i += 2) {
        const Flow flow{traffic.nis[i], traffic.nis[i + 1]};
        if (Status s = CheckNi(spec, flow.src, "pairs"); !s.ok()) return s;
        if (Status s = CheckNi(spec, flow.dst, "pairs"); !s.ok()) return s;
        if (flow.src == flow.dst) {
          return InvalidArgumentError("pairs flow " + std::to_string(flow.src) +
                                      "->" + std::to_string(flow.dst) +
                                      " is a self-loop");
        }
        flows.push_back(flow);
      }
      break;
    }
    case PatternKind::kVideo: {
      if (traffic.nis.size() < 2) {
        return InvalidArgumentError("video needs a chain of >= 2 NIs");
      }
      for (std::size_t i = 0; i + 1 < traffic.nis.size(); ++i) {
        const Flow hop{traffic.nis[i], traffic.nis[i + 1]};
        if (Status s = CheckNi(spec, hop.src, "video"); !s.ok()) return s;
        if (Status s = CheckNi(spec, hop.dst, "video"); !s.ok()) return s;
        if (hop.src == hop.dst) {
          return InvalidArgumentError("video chain repeats NI " +
                                      std::to_string(hop.src));
        }
        flows.push_back(hop);
      }
      break;
    }
    case PatternKind::kMemory: {
      if (traffic.nis.size() != 2) {
        return InvalidArgumentError("memory needs exactly {master, slave}");
      }
      const Flow flow{traffic.nis[0], traffic.nis[1]};
      if (Status s = CheckNi(spec, flow.src, "memory master"); !s.ok()) {
        return s;
      }
      if (Status s = CheckNi(spec, flow.dst, "memory slave"); !s.ok()) {
        return s;
      }
      if (flow.src == flow.dst) {
        return InvalidArgumentError("memory master and slave must differ");
      }
      flows.push_back(flow);
      break;
    }
  }
  return flows;
}

}  // namespace aethereal::scenario
