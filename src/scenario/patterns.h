// Traffic-pattern generators: expand a TrafficSpec into the concrete
// point-to-point flows it implies on a given NI population.
//
// These are the classic synthetic suites NoC papers validate against
// (uniform random, transpose, bit-complement, bit-reversal, hotspot) plus
// the paper's own application shapes (video chains, shared-memory
// master/slave traffic). Expansion is deterministic: the only randomness
// is the seeded permutation of the uniform pattern.
#ifndef AETHEREAL_SCENARIO_PATTERNS_H
#define AETHEREAL_SCENARIO_PATTERNS_H

#include <vector>

#include "scenario/spec.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/types.h"

namespace aethereal::scenario {

/// One directed flow implied by a traffic directive.
struct Flow {
  NiId src = kInvalidId;
  NiId dst = kInvalidId;

  friend bool operator==(const Flow&, const Flow&) = default;
};

/// Expands `traffic` on the NI population of `spec`. For kVideo the flows
/// are the consecutive hops of the chain, in chain order; for kMemory the
/// single master->slave flow. `rng` is consumed only by kUniform (the
/// seeded permutation), so directive order determines the draw sequence.
/// Fails when the pattern's structural requirements are not met (square
/// mesh for transpose, power-of-two NI count for the bit patterns, ids in
/// range, non-self-loop pairs).
Result<std::vector<Flow>> ExpandPattern(const ScenarioSpec& spec,
                                        const TrafficSpec& traffic, Rng& rng);

/// A seeded random permutation with no fixed points (every NI sends, no NI
/// sends to itself). Exposed for direct testing.
std::vector<NiId> UniformPartners(int num_nis, Rng& rng);

}  // namespace aethereal::scenario

#endif  // AETHEREAL_SCENARIO_PATTERNS_H
