#include "scenario/runner.h"

#include <algorithm>
#include <sstream>

#include "link/header.h"
#include "scenario/wiring.h"
#include "topology/builders.h"
#include "util/check.h"
#include "util/json.h"
#include "verify/monitor.h"

namespace aethereal::scenario {

namespace {

LatencySummary Summarize(const Stats& stats) {
  LatencySummary s;
  s.count = stats.count();
  if (!stats.empty()) {
    s.min = stats.Min();
    s.mean = stats.Mean();
    s.p99 = stats.Percentile(99);
    s.max = stats.Max();
  }
  return s;
}

void WriteLatency(JsonWriter& w, const LatencySummary& latency) {
  w.BeginObject();
  w.Key("count").Int(latency.count);
  if (latency.count > 0) {
    w.Key("min").Double(latency.min);
    w.Key("mean").Double(latency.mean);
    w.Key("p99").Double(latency.p99);
    w.Key("max").Double(latency.max);
  }
  w.EndObject();
}

/// Memory traffic uses the general transaction generator; translate the
/// scenario injection clauses into its pattern.
ip::TrafficPattern MemoryPattern(const TrafficSpec& traffic) {
  ip::TrafficPattern pattern;
  switch (traffic.inject) {
    case InjectKind::kPeriodic:
      pattern.kind = ip::TrafficPattern::Kind::kFixedPeriod;
      pattern.period = traffic.period;
      break;
    case InjectKind::kBernoulli:
      pattern.kind = ip::TrafficPattern::Kind::kBernoulli;
      pattern.rate = traffic.rate;
      break;
    case InjectKind::kClosedLoop:
      pattern.kind = ip::TrafficPattern::Kind::kClosedLoop;
      break;
    case InjectKind::kBursty:
      AETHEREAL_CHECK_MSG(false, "bursty memory traffic rejected at parse");
  }
  pattern.read_fraction = traffic.read_fraction;
  pattern.burst_words = traffic.mem_burst_words;
  return pattern;
}

}  // namespace

ScenarioRunner::ScenarioRunner(ScenarioSpec spec) : spec_(std::move(spec)) {}
ScenarioRunner::~ScenarioRunner() = default;

Status ScenarioRunner::BuildTopologyAndSoc(
    const std::vector<std::vector<Flow>>& flows_by_group) {
  // Channels per NI: one per flow endpoint, assigned in directive order
  // (this ordering is part of the scenario's deterministic identity).
  std::vector<int> channels(static_cast<std::size_t>(spec_.NumNis()), 0);
  for (const auto& flows : flows_by_group) {
    for (const Flow& flow : flows) {
      ++channels[static_cast<std::size_t>(flow.src)];
      ++channels[static_cast<std::size_t>(flow.dst)];
    }
  }
  // The packet header's qid field addresses at most kMaxQueueId + 1
  // channels per NI; over-subscribed NIs previously aborted inside the
  // NI-kernel constructor instead of failing the build.
  for (std::size_t n = 0; n < channels.size(); ++n) {
    if (channels[n] > link::kMaxQueueId + 1) {
      return InvalidArgumentError(
          "ni" + std::to_string(n) + " needs " +
          std::to_string(channels[n]) + " channels, but the header qid "
          "field addresses at most " +
          std::to_string(link::kMaxQueueId + 1) + " per NI");
    }
  }

  topology::Topology topo;
  switch (spec_.topology) {
    case TopologyKind::kStar:
      topo = topology::BuildStar(spec_.dim_a).topology;
      break;
    case TopologyKind::kMesh:
      topo = topology::BuildMesh(spec_.dim_a, spec_.dim_b,
                                 spec_.nis_per_router)
                 .topology;
      break;
    case TopologyKind::kRing:
      topo = topology::BuildRing(spec_.dim_a, spec_.nis_per_router).topology;
      break;
  }
  AETHEREAL_CHECK(topo.NumNis() == spec_.NumNis());

  std::vector<core::NiKernelParams> ni_params;
  for (int count : channels) {
    // NIs no flow touches still get one (idle) channel: the NI kernel is
    // instantiated per NI regardless.
    ni_params.push_back(NiWithChannels(std::max(count, 1), spec_.queue_words,
                                       spec_.stu_slots, "ip"));
  }

  soc::SocOptions options;
  options.net_mhz = spec_.net_mhz;
  options.stu_slots = spec_.stu_slots;
  options.optimize_engine = spec_.optimize_engine;
  options.verify = spec_.verify;
  soc_ = std::make_unique<soc::Soc>(std::move(topo), std::move(ni_params),
                                    options);
  return OkStatus();
}

Status ScenarioRunner::OpenFlowConnection(const TrafficSpec& traffic,
                                          const Flow& flow, int src_connid,
                                          int dst_connid) {
  config::ChannelQos forward;
  forward.gt = traffic.gt;
  forward.gt_slots = traffic.gt_slots;
  forward.data_threshold = traffic.data_threshold;
  forward.credit_threshold = traffic.credit_threshold;
  // Stream flows send data one way; the reverse channel only returns
  // credits and stays best-effort. Memory flows carry responses back, so
  // a GT request direction gets a GT response direction too.
  config::ChannelQos reverse;
  if (traffic.pattern == PatternKind::kMemory) reverse = forward;
  auto handle =
      soc_->OpenConnection(tdm::GlobalChannel{flow.src, src_connid},
                           tdm::GlobalChannel{flow.dst, dst_connid}, forward,
                           reverse);
  if (!handle.ok()) {
    return Status(handle.status().code(),
                  std::string(PatternKindName(traffic.pattern)) + " flow " +
                      std::to_string(flow.src) + "->" +
                      std::to_string(flow.dst) + ": " +
                      handle.status().message());
  }
  return OkStatus();
}

Status ScenarioRunner::Build() {
  if (built_) return OkStatus();

  Rng rng(spec_.seed);
  std::vector<std::vector<Flow>> flows_by_group;
  for (const TrafficSpec& traffic : spec_.traffic) {
    auto flows = ExpandPattern(spec_, traffic, rng);
    if (!flows.ok()) return flows.status();
    flows_by_group.push_back(std::move(*flows));
  }

  if (Status s = BuildTopologyAndSoc(flows_by_group); !s.ok()) return s;

  // Assign connids in directive order (mirrors the channel counting).
  std::vector<int> next_connid(static_cast<std::size_t>(spec_.NumNis()), 0);
  struct Wired {
    Flow flow;
    int src_connid;
    int dst_connid;
  };
  std::vector<std::vector<Wired>> wired_by_group;
  for (std::size_t g = 0; g < flows_by_group.size(); ++g) {
    std::vector<Wired> wired;
    for (const Flow& flow : flows_by_group[g]) {
      Wired w{flow, next_connid[static_cast<std::size_t>(flow.src)]++,
              next_connid[static_cast<std::size_t>(flow.dst)]++};
      if (Status s = OpenFlowConnection(spec_.traffic[g], flow, w.src_connid,
                                        w.dst_connid);
          !s.ok()) {
        return s;
      }
      wired.push_back(w);
    }
    wired_by_group.push_back(std::move(wired));
  }

  // Instantiate the workload IPs. Per-flow RNG seeds are drawn from the
  // master stream in directive order, after all pattern expansions.
  for (std::size_t g = 0; g < wired_by_group.size(); ++g) {
    const TrafficSpec& traffic = spec_.traffic[g];
    const std::vector<Wired>& wired = wired_by_group[g];
    const std::string tag = "g" + std::to_string(g);
    if (traffic.pattern == PatternKind::kVideo) {
      VideoChain chain;
      chain.group = g;
      chain.chain = traffic.nis;
      for (const Wired& w : wired) {
        chain.hop_flows.push_back(w.flow);
        chain.hop_src_connids.push_back(w.src_connid);
      }
      const Wired& first = wired.front();
      const Wired& last = wired.back();
      chain.source = std::make_unique<PatternSource>(
          tag + "_video_src", soc_->port(first.flow.src, 0), first.src_connid,
          traffic, rng.Next());
      soc_->RegisterOnPort(chain.source.get(), first.flow.src, 0);
      for (std::size_t hop = 0; hop + 1 < wired.size(); ++hop) {
        const NiId at = wired[hop].flow.dst;
        auto relay = std::make_unique<Relay>(
            tag + "_relay" + std::to_string(hop), soc_->port(at, 0),
            wired[hop].dst_connid, wired[hop + 1].src_connid);
        soc_->RegisterOnPort(relay.get(), at, 0);
        chain.relays.push_back(std::move(relay));
      }
      chain.consumer = std::make_unique<ip::StreamConsumer>(
          tag + "_video_sink", soc_->port(last.flow.dst, 0), last.dst_connid,
          /*drain_per_cycle=*/1, /*timestamp_mode=*/true);
      soc_->RegisterOnPort(chain.consumer.get(), last.flow.dst, 0);
      video_chains_.push_back(std::move(chain));
    } else if (traffic.pattern == PatternKind::kMemory) {
      const Wired& w = wired.front();
      MemoryFlow mem;
      mem.group = g;
      mem.flow = w.flow;
      mem.src_connid = w.src_connid;
      mem.master_shell = std::make_unique<shells::MasterShell>(
          tag + "_master_shell", soc_->port(w.flow.src, 0), w.src_connid);
      mem.master = std::make_unique<ip::TrafficGenMaster>(
          tag + "_master", mem.master_shell.get(), MemoryPattern(traffic),
          rng.Next());
      mem.slave_shell = std::make_unique<shells::SlaveShell>(
          tag + "_slave_shell", soc_->port(w.flow.dst, 0), w.dst_connid);
      mem.memory = std::make_unique<ip::MemorySlave>(
          tag + "_memory", mem.slave_shell.get(), /*base=*/0,
          /*size_words=*/1024);
      soc_->RegisterOnPort(mem.master_shell.get(), w.flow.src, 0);
      soc_->RegisterOnPort(mem.master.get(), w.flow.src, 0);
      soc_->RegisterOnPort(mem.slave_shell.get(), w.flow.dst, 0);
      soc_->RegisterOnPort(mem.memory.get(), w.flow.dst, 0);
      memory_flows_.push_back(std::move(mem));
    } else {
      for (std::size_t f = 0; f < wired.size(); ++f) {
        const Wired& w = wired[f];
        StreamFlow stream;
        stream.group = g;
        stream.flow = w.flow;
        stream.src_connid = w.src_connid;
        const std::string label = tag + "f" + std::to_string(f);
        stream.source = std::make_unique<PatternSource>(
            label + "_src", soc_->port(w.flow.src, 0), w.src_connid, traffic,
            rng.Next());
        stream.consumer = std::make_unique<ip::StreamConsumer>(
            label + "_sink", soc_->port(w.flow.dst, 0), w.dst_connid,
            /*drain_per_cycle=*/kFlitWords, /*timestamp_mode=*/true);
        soc_->RegisterOnPort(stream.source.get(), w.flow.src, 0);
        soc_->RegisterOnPort(stream.consumer.get(), w.flow.dst, 0);
        stream_flows_.push_back(std::move(stream));
      }
    }
  }

  built_ = true;
  return OkStatus();
}

Result<ScenarioResult> ScenarioRunner::Run() {
  AETHEREAL_CHECK_MSG(!ran_, "ScenarioRunner::Run is single-shot");
  if (Status s = Build(); !s.ok()) return s;
  ran_ = true;

  soc_->RunCycles(spec_.warmup);

  // Measurement-window baselines (latency stats stay cumulative — they
  // are summaries of exact integer samples either way). The admitted-word
  // baselines feed the verify-mode guarantee checks.
  std::vector<std::int64_t> stream0, video0, mem0, stream_adm0, video_adm0;
  for (const StreamFlow& f : stream_flows_) {
    stream0.push_back(f.consumer->words_read());
    stream_adm0.push_back(f.source->words_written());
  }
  for (const VideoChain& c : video_chains_) {
    video0.push_back(c.consumer->words_read());
    video_adm0.push_back(c.source->words_written());
  }
  for (const MemoryFlow& m : memory_flows_) {
    mem0.push_back(m.master->completed());
  }

  soc_->RunCycles(spec_.duration);

  ScenarioResult result;
  result.spec = spec_;
  result.cycles_run = soc_->net_clock()->cycles();

  // Flow results, grouped back into directive order.
  std::size_t si = 0, vi = 0, mi = 0;
  for (std::size_t g = 0; g < spec_.traffic.size(); ++g) {
    const TrafficSpec& traffic = spec_.traffic[g];
    auto base = [&](const TrafficSpec& t) {
      FlowResult r;
      r.pattern = PatternKindName(t.pattern);
      r.group = static_cast<int>(g);
      r.gt = t.gt;
      r.gt_slots = t.gt_slots;
      return r;
    };
    if (traffic.pattern == PatternKind::kVideo) {
      const VideoChain& c = video_chains_[vi];
      FlowResult r = base(traffic);
      r.src = c.chain.front();
      r.dst = c.chain.back();
      r.words_total = c.consumer->words_read();
      r.words_in_window = r.words_total - video0[vi];
      r.latency = Summarize(c.consumer->latency());
      result.flows.push_back(std::move(r));
      ++vi;
    } else if (traffic.pattern == PatternKind::kMemory) {
      const MemoryFlow& m = memory_flows_[mi];
      FlowResult r = base(traffic);
      r.src = m.flow.src;
      r.dst = m.flow.dst;
      r.transactions_issued = m.master->issued();
      r.transactions_completed = m.master->completed();
      r.words_total = r.transactions_completed * traffic.mem_burst_words;
      r.words_in_window =
          (r.transactions_completed - mem0[mi]) * traffic.mem_burst_words;
      r.latency = Summarize(m.master->latency());
      result.flows.push_back(std::move(r));
      ++mi;
    } else {
      while (si < stream_flows_.size() && stream_flows_[si].group == g) {
        const StreamFlow& f = stream_flows_[si];
        FlowResult r = base(traffic);
        r.src = f.flow.src;
        r.dst = f.flow.dst;
        r.words_total = f.consumer->words_read();
        r.words_in_window = r.words_total - stream0[si];
        r.latency = Summarize(f.consumer->latency());
        result.flows.push_back(std::move(r));
        ++si;
      }
    }
  }
  for (FlowResult& r : result.flows) {
    r.throughput_wpc =
        static_cast<double>(r.words_in_window) / spec_.duration;
    result.words_in_window += r.words_in_window;
  }
  result.throughput_wpc =
      static_cast<double>(result.words_in_window) / spec_.duration;

  const auto num_nis = static_cast<NiId>(spec_.NumNis());
  for (NiId ni = 0; ni < num_nis; ++ni) {
    const core::NiKernelStats& stats = soc_->ni(ni)->stats();
    result.gt_flits += stats.gt_flits;
    result.be_flits += stats.be_flits;
    result.payload_words_sent += stats.payload_words_sent;
    result.credit_only_packets += stats.credit_only_packets;
    result.credits_piggybacked += stats.credits_piggybacked;
    result.idle_slots += stats.idle_slots;
    result.gt_slots_unused += stats.gt_slots_unused;
  }
  // The NI kernel accounts a slot at every cycle divisible by kFlitWords
  // starting at cycle 0, hence the ceiling division.
  const std::int64_t slot_opportunities =
      static_cast<std::int64_t>(num_nis) *
      ((result.cycles_run + kFlitWords - 1) / kFlitWords);
  result.slot_utilization =
      slot_opportunities > 0
          ? 1.0 - static_cast<double>(result.idle_slots) / slot_opportunities
          : 0.0;

  if (spec_.verify) {
    std::vector<std::string> problems;
    CheckGuarantees(stream_adm0, video_adm0, stream0, video0, &problems);
    if (!problems.empty()) {
      std::ostringstream oss;
      oss << "verification failed for scenario '" << spec_.name << "' ("
          << problems.size() << " problem(s)):";
      const std::size_t shown = std::min<std::size_t>(problems.size(), 8);
      for (std::size_t i = 0; i < shown; ++i) {
        oss << "\n  " << problems[i];
      }
      if (problems.size() > shown) {
        oss << "\n  ... and " << problems.size() - shown << " more";
      }
      return VerificationFailedError(oss.str());
    }
  }
  return result;
}

GtFlowBound ScenarioRunner::BoundOfHop(std::size_t group, const Flow& flow,
                                       int src_connid) {
  GtFlowBound report;
  report.group = static_cast<int>(group);
  report.src = flow.src;
  report.dst = flow.dst;
  const ChannelId flat =
      soc_->port(flow.src, 0)->GlobalChannelOf(src_connid);
  const tdm::GlobalChannel channel{flow.src, flat};
  auto route = soc_->topology().Route(flow.src, flow.dst);
  AETHEREAL_CHECK(route.ok());  // the connection was opened over it
  const tdm::SlotTable& table = soc_->allocator().TableOf(route->links[0]);
  report.bound = verify::ComputeGtBound(
      table.SlotsOf(channel), spec_.stu_slots,
      static_cast<int>(route->hops.size()),
      soc_->ni(flow.src)->params().max_packet_flits);
  return report;
}

Result<std::vector<GtFlowBound>> ScenarioRunner::ComputeGtBounds() {
  if (Status s = Build(); !s.ok()) return s;
  std::vector<GtFlowBound> bounds;
  for (const StreamFlow& f : stream_flows_) {
    if (!spec_.traffic[f.group].gt) continue;
    bounds.push_back(BoundOfHop(f.group, f.flow, f.src_connid));
  }
  for (const VideoChain& c : video_chains_) {
    if (!spec_.traffic[c.group].gt) continue;
    for (std::size_t h = 0; h < c.hop_flows.size(); ++h) {
      bounds.push_back(
          BoundOfHop(c.group, c.hop_flows[h], c.hop_src_connids[h]));
    }
  }
  for (const MemoryFlow& m : memory_flows_) {
    if (!spec_.traffic[m.group].gt) continue;
    bounds.push_back(BoundOfHop(m.group, m.flow, m.src_connid));
  }
  return bounds;
}

namespace {

/// In-flight allowance for the throughput floor of one GT hop: words
/// legitimately parked in the source and destination queues, the network
/// pipeline, and the current (partial) table rotation at either window
/// boundary.
std::int64_t HopSlackWords(const verify::GtBound& bound, int queue_words) {
  return 2 * static_cast<std::int64_t>(queue_words) +
         static_cast<std::int64_t>(bound.hops + 2) * kFlitWords +
         2 * bound.words_per_rotation + 2 * kFlitWords;
}

}  // namespace

void ScenarioRunner::CheckGuarantees(
    const std::vector<std::int64_t>& stream_admitted0,
    const std::vector<std::int64_t>& video_admitted0,
    const std::vector<std::int64_t>& stream_delivered0,
    const std::vector<std::int64_t>& video_delivered0,
    std::vector<std::string>* problems) {
  verify::Monitor* monitor = soc_->monitor();
  AETHEREAL_CHECK(monitor != nullptr);
  monitor->Finalize();
  for (const verify::Violation& v : monitor->violations()) {
    std::ostringstream oss;
    oss << "[cycle " << v.cycle << "] " << v.check << ": " << v.message;
    problems->push_back(oss.str());
  }
  if (monitor->total_violations() >
      static_cast<std::int64_t>(monitor->violations().size())) {
    std::ostringstream oss;
    oss << "monitor recorded "
        << monitor->total_violations() -
               static_cast<std::int64_t>(monitor->violations().size())
        << " further violation(s) beyond the cap";
    problems->push_back(oss.str());
  }

  // Analytical GT guarantees. The throughput floor holds per measurement
  // window: the flow must deliver whatever it admitted, or at least the
  // slot tables' guaranteed rate, minus a bounded in-flight allowance.
  const Cycle duration = spec_.duration;
  auto check_throughput = [&](const char* what, std::size_t group, NiId src,
                              NiId dst, std::int64_t admitted,
                              std::int64_t delivered, double guaranteed_wpc,
                              std::int64_t slack) {
    const auto guaranteed_words = static_cast<std::int64_t>(
        guaranteed_wpc * static_cast<double>(duration));
    const std::int64_t floor = std::min(admitted, guaranteed_words) - slack;
    if (delivered < floor) {
      std::ostringstream oss;
      oss << "gt-throughput: " << what << " g" << group << " " << src << "->"
          << dst << " delivered " << delivered << " words in the window; "
          << "floor is min(admitted " << admitted << ", guaranteed "
          << guaranteed_words << ") - slack " << slack;
      problems->push_back(oss.str());
    }
  };

  // The end-to-end (Write-to-Read) latency bound is table-derivable only
  // when the credit loop provably cannot bind: stream credits return as
  // best-effort packets, so any BE directive in the scenario can delay
  // them arbitrarily and stretch end-to-end latency without violating any
  // GT guarantee (the per-flit network timing is checked unconditionally
  // by the monitor). With only GT directives, every reverse path carries
  // at most a trickle of credit-only flits, bounded by one table rotation
  // of jitter.
  const bool all_gt =
      std::all_of(spec_.traffic.begin(), spec_.traffic.end(),
                  [](const TrafficSpec& t) { return t.gt; });

  for (std::size_t i = 0; i < stream_flows_.size(); ++i) {
    const StreamFlow& f = stream_flows_[i];
    const TrafficSpec& traffic = spec_.traffic[f.group];
    if (!traffic.gt) continue;
    const GtFlowBound hop = BoundOfHop(f.group, f.flow, f.src_connid);
    const std::int64_t admitted =
        f.source->words_written() - stream_admitted0[i];
    const std::int64_t delivered =
        f.consumer->words_read() - stream_delivered0[i];
    check_throughput("stream", f.group, f.flow.src, f.flow.dst, admitted,
                     delivered, hop.bound.min_throughput_wpc,
                     HopSlackWords(hop.bound, spec_.queue_words));
    // The per-word latency bound applies when each word provably finds an
    // empty source queue and full credit: periodic injection at most once
    // per table rotation, unmodified thresholds, a queue deep enough to
    // ride out the credit round trip, and no BE directive that could
    // starve the credit return (see above).
    if (all_gt && traffic.inject == InjectKind::kPeriodic &&
        traffic.period >=
            static_cast<std::int64_t>(spec_.stu_slots) * kFlitWords &&
        traffic.data_threshold == 1 && traffic.credit_threshold == 1 &&
        spec_.queue_words >= 4 && f.consumer->latency().count() > 0) {
      // One rotation of margin absorbs credit-return and BE-arbitration
      // jitter among the (all-GT) companion flows.
      const Cycle bound =
          hop.bound.worst_case_latency +
          static_cast<Cycle>(spec_.stu_slots) * kFlitWords;
      const double measured = f.consumer->latency().Max();
      if (measured > static_cast<double>(bound)) {
        std::ostringstream oss;
        oss << "gt-latency: stream g" << f.group << " " << f.flow.src << "->"
            << f.flow.dst << " saw a word latency of " << measured
            << " cycles; the slot tables bound it by " << bound
            << " (max gap " << hop.bound.max_gap_slots << " slots, "
            << hop.bound.hops << " hops, one rotation of credit jitter)";
        problems->push_back(oss.str());
      }
    }
  }

  for (std::size_t i = 0; i < video_chains_.size(); ++i) {
    const VideoChain& c = video_chains_[i];
    const TrafficSpec& traffic = spec_.traffic[c.group];
    if (!traffic.gt) continue;
    double guaranteed_wpc = -1;
    std::int64_t slack = 0;
    for (std::size_t h = 0; h < c.hop_flows.size(); ++h) {
      const GtFlowBound hop =
          BoundOfHop(c.group, c.hop_flows[h], c.hop_src_connids[h]);
      if (guaranteed_wpc < 0 ||
          hop.bound.min_throughput_wpc < guaranteed_wpc) {
        guaranteed_wpc = hop.bound.min_throughput_wpc;
      }
      slack += HopSlackWords(hop.bound, spec_.queue_words);
    }
    const std::int64_t admitted =
        c.source->words_written() - video_admitted0[i];
    const std::int64_t delivered =
        c.consumer->words_read() - video_delivered0[i];
    check_throughput("video", c.group, c.chain.front(), c.chain.back(),
                     admitted, delivered, guaranteed_wpc, slack);
  }

  for (const MemoryFlow& m : memory_flows_) {
    if (m.master->completed() > m.master->issued()) {
      std::ostringstream oss;
      oss << "transaction-ordering: memory g" << m.group << " completed "
          << m.master->completed() << " transactions but only issued "
          << m.master->issued();
      problems->push_back(oss.str());
    }
  }

  // Best-effort sanity: a consumer can never read more than its producer
  // wrote (whole-run totals; flit integrity is the monitor's job).
  for (const StreamFlow& f : stream_flows_) {
    if (f.consumer->words_read() > f.source->words_written()) {
      std::ostringstream oss;
      oss << "flit-integrity: stream g" << f.group << " " << f.flow.src
          << "->" << f.flow.dst << " read " << f.consumer->words_read()
          << " words but the source only wrote " << f.source->words_written();
      problems->push_back(oss.str());
    }
  }
}

std::string ScenarioResult::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("scenario").String(spec.name);
  w.Key("topology").BeginObject();
  w.Key("kind").String(TopologyKindName(spec.topology));
  w.Key("dims").BeginArray();
  w.Int(spec.dim_a);
  if (spec.topology == TopologyKind::kMesh) w.Int(spec.dim_b);
  if (spec.topology != TopologyKind::kStar) w.Int(spec.nis_per_router);
  w.EndArray();
  w.Key("nis").Int(spec.NumNis());
  w.EndObject();
  w.Key("stu_slots").Int(spec.stu_slots);
  w.Key("net_mhz").Double(spec.net_mhz);
  w.Key("queue_words").Int(spec.queue_words);
  w.Key("seed").Int(static_cast<std::int64_t>(spec.seed));
  w.Key("warmup").Int(spec.warmup);
  w.Key("duration").Int(spec.duration);
  w.Key("cycles_run").Int(cycles_run);
  w.Key("flows").BeginArray();
  for (const FlowResult& flow : flows) {
    w.BeginObject();
    w.Key("pattern").String(flow.pattern);
    w.Key("group").Int(flow.group);
    w.Key("src").Int(flow.src);
    w.Key("dst").Int(flow.dst);
    w.Key("qos").String(flow.gt ? "gt" : "be");
    if (flow.gt) w.Key("gt_slots").Int(flow.gt_slots);
    w.Key("words_total").Int(flow.words_total);
    w.Key("words_in_window").Int(flow.words_in_window);
    w.Key("throughput_wpc").Double(flow.throughput_wpc);
    if (flow.pattern == PatternKindName(PatternKind::kMemory)) {
      w.Key("transactions").BeginObject();
      w.Key("issued").Int(flow.transactions_issued);
      w.Key("completed").Int(flow.transactions_completed);
      w.EndObject();
    }
    w.Key("latency");
    WriteLatency(w, flow.latency);
    w.EndObject();
  }
  w.EndArray();
  w.Key("aggregate").BeginObject();
  w.Key("words_in_window").Int(words_in_window);
  w.Key("throughput_wpc").Double(throughput_wpc);
  w.Key("gt_flits").Int(gt_flits);
  w.Key("be_flits").Int(be_flits);
  w.Key("payload_words_sent").Int(payload_words_sent);
  w.Key("credit_only_packets").Int(credit_only_packets);
  w.Key("credits_piggybacked").Int(credits_piggybacked);
  w.Key("idle_slots").Int(idle_slots);
  w.Key("gt_slots_unused").Int(gt_slots_unused);
  w.Key("slot_utilization").Double(slot_utilization);
  w.EndObject();
  w.EndObject();
  return w.Take();
}

}  // namespace aethereal::scenario
