#include "scenario/runner.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <tuple>

#include "fault/injector.h"
#include "link/header.h"
#include "scenario/wiring.h"
#include "topology/builders.h"
#include "util/check.h"
#include "util/json.h"
#include "util/stats.h"
#include "verify/monitor.h"

namespace aethereal::scenario {

namespace {

LatencySummary Summarize(const Stats& stats) {
  LatencySummary s;
  s.count = stats.count();
  if (!stats.empty()) {
    s.min = stats.Min();
    s.mean = stats.Mean();
    s.p50 = stats.Percentile(50);
    s.p95 = stats.Percentile(95);
    s.p99 = stats.Percentile(99);
    s.max = stats.Max();
  }
  return s;
}

void WriteLatency(JsonWriter& w, const LatencySummary& latency) {
  w.BeginObject();
  w.Key("count").Int(latency.count);
  if (latency.count > 0) {
    w.Key("min").Double(latency.min);
    w.Key("mean").Double(latency.mean);
    w.Key("p50").Double(latency.p50);
    w.Key("p95").Double(latency.p95);
    w.Key("p99").Double(latency.p99);
    w.Key("max").Double(latency.max);
  }
  w.EndObject();
}

/// One histogram summary of the `histograms` result section: exact
/// nearest-rank percentiles over the merged sample population plus
/// power-of-two latency buckets ([2^k, 2^(k+1)) cycles; samples below one
/// cycle land in a [0, 1) bucket). Only non-empty buckets are emitted.
void WriteHistogram(JsonWriter& w, std::vector<double> samples) {
  w.BeginObject();
  w.Key("count").Int(static_cast<std::int64_t>(samples.size()));
  if (!samples.empty()) {
    std::sort(samples.begin(), samples.end());
    double sum = 0;
    for (double v : samples) sum += v;
    w.Key("min").Double(samples.front());
    w.Key("mean").Double(sum / static_cast<double>(samples.size()));
    w.Key("p50").Double(SortedPercentile(samples, 50));
    w.Key("p95").Double(SortedPercentile(samples, 95));
    w.Key("p99").Double(SortedPercentile(samples, 99));
    w.Key("max").Double(samples.back());
    // The samples are sorted, so one pass groups them into buckets in
    // increasing-k order (k = -1 is the sub-cycle bucket).
    w.Key("buckets").BeginArray();
    std::size_t i = 0;
    while (i < samples.size()) {
      const double v = samples[i];
      const int k =
          v < 1.0 ? -1
                  : std::bit_width(static_cast<std::uint64_t>(v)) - 1;
      const double lo = k < 0 ? 0.0 : static_cast<double>(std::int64_t{1} << k);
      const double hi = static_cast<double>(std::int64_t{1} << (k + 1));
      std::int64_t count = 0;
      while (i < samples.size() && samples[i] < hi) {
        ++count;
        ++i;
      }
      w.BeginObject();
      w.Key("lo").Double(lo);
      w.Key("hi").Double(hi);
      w.Key("count").Int(count);
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
}

/// Memory traffic uses the general transaction generator; translate the
/// scenario injection clauses into its pattern.
ip::TrafficPattern MemoryPattern(const TrafficSpec& traffic) {
  ip::TrafficPattern pattern;
  switch (traffic.inject) {
    case InjectKind::kPeriodic:
      pattern.kind = ip::TrafficPattern::Kind::kFixedPeriod;
      pattern.period = traffic.period;
      break;
    case InjectKind::kBernoulli:
      pattern.kind = ip::TrafficPattern::Kind::kBernoulli;
      pattern.rate = traffic.rate;
      break;
    case InjectKind::kClosedLoop:
      pattern.kind = ip::TrafficPattern::Kind::kClosedLoop;
      break;
    case InjectKind::kBursty:
      AETHEREAL_CHECK_MSG(false, "bursty memory traffic rejected at parse");
  }
  pattern.read_fraction = traffic.read_fraction;
  pattern.burst_words = traffic.mem_burst_words;
  return pattern;
}

/// Collects the monitor's recorded violations, plus the beyond-cap notes
/// (shared by the static and the phased verify epilogues). Violations the
/// monitor classified as fault-induced land in `degradations` when it is
/// non-null (network faults armed), in `problems` otherwise.
void AppendMonitorProblems(verify::Monitor* monitor,
                           std::vector<std::string>* problems,
                           std::vector<std::string>* degradations) {
  monitor->Finalize();
  std::int64_t recorded_unexplained = 0;
  std::int64_t recorded_fault = 0;
  for (const verify::Violation& v : monitor->violations()) {
    std::ostringstream oss;
    oss << "[cycle " << v.cycle << "] " << v.check << ": " << v.message;
    if (v.fault_induced && degradations != nullptr) {
      ++recorded_fault;
      degradations->push_back(oss.str());
    } else {
      if (!v.fault_induced) ++recorded_unexplained;
      problems->push_back(oss.str());
    }
  }
  // The recorded list is capped; the per-class counters are not. Surface
  // any overflow on the side it belongs to.
  if (monitor->unexplained_violations() > recorded_unexplained) {
    std::ostringstream oss;
    oss << "monitor recorded "
        << monitor->unexplained_violations() - recorded_unexplained
        << " further unexplained violation(s) beyond the cap";
    problems->push_back(oss.str());
  }
  if (degradations != nullptr &&
      monitor->fault_violations() > recorded_fault) {
    std::ostringstream oss;
    oss << "monitor recorded "
        << monitor->fault_violations() - recorded_fault
        << " further fault-induced violation(s) beyond the cap";
    degradations->push_back(oss.str());
  }
}

/// The GT throughput floor of one flow over one measurement window: the
/// flow must deliver whatever it admitted, or at least the slot tables'
/// guaranteed rate, minus a bounded in-flight allowance. `where` names
/// the window ("in the window" / "in phase '...'"). One formula for the
/// static and the phased paths.
void CheckGtThroughputFloor(const char* what, std::size_t group,
                            const std::string& where, NiId src, NiId dst,
                            std::int64_t admitted, std::int64_t delivered,
                            double guaranteed_wpc, std::int64_t slack,
                            Cycle duration,
                            std::vector<std::string>* problems) {
  const auto guaranteed_words = static_cast<std::int64_t>(
      guaranteed_wpc * static_cast<double>(duration));
  const std::int64_t floor = std::min(admitted, guaranteed_words) - slack;
  if (delivered >= floor) return;
  std::ostringstream oss;
  oss << "gt-throughput: " << what << " g" << group << " " << src << "->"
      << dst << " delivered " << delivered << " words " << where
      << "; floor is min(admitted " << admitted << ", guaranteed "
      << guaranteed_words << ") - slack " << slack;
  problems->push_back(oss.str());
}

/// Whole-run NI-level aggregates and slot utilization, identical for the
/// static and the phased paths. The NI kernel accounts a slot at every
/// cycle divisible by kFlitWords starting at cycle 0, hence the ceiling
/// division.
void AggregateNiStats(soc::Soc* soc, int num_nis, ScenarioResult* result) {
  for (NiId ni = 0; ni < static_cast<NiId>(num_nis); ++ni) {
    const core::NiKernelStats& stats = soc->ni(ni)->stats();
    result->gt_flits += stats.gt_flits;
    result->be_flits += stats.be_flits;
    result->payload_words_sent += stats.payload_words_sent;
    result->credit_only_packets += stats.credit_only_packets;
    result->credits_piggybacked += stats.credits_piggybacked;
    result->idle_slots += stats.idle_slots;
    result->gt_slots_unused += stats.gt_slots_unused;
  }
  const std::int64_t slot_opportunities =
      static_cast<std::int64_t>(num_nis) *
      ((result->cycles_run + kFlitWords - 1) / kFlitWords);
  result->slot_utilization =
      slot_opportunities > 0
          ? 1.0 -
                static_cast<double>(result->idle_slots) / slot_opportunities
          : 0.0;
}

/// Formats the verify-mode problem list into the run error (shared by the
/// static and the phased paths).
Status VerificationError(const std::string& name,
                         const std::vector<std::string>& problems) {
  std::ostringstream oss;
  oss << "verification failed for scenario '" << name << "' ("
      << problems.size() << " problem(s)):";
  const std::size_t shown = std::min<std::size_t>(problems.size(), 8);
  for (std::size_t i = 0; i < shown; ++i) {
    oss << "\n  " << problems[i];
  }
  if (problems.size() > shown) {
    oss << "\n  ... and " << problems.size() - shown << " more";
  }
  return VerificationFailedError(oss.str());
}

}  // namespace

ScenarioRunner::ScenarioRunner(ScenarioSpec spec) : spec_(std::move(spec)) {}
ScenarioRunner::~ScenarioRunner() = default;

Status ScenarioRunner::BuildTopologyAndSoc(
    const std::vector<std::vector<Flow>>& flows_by_group) {
  // Channels per NI: one per flow endpoint, assigned in directive order
  // (this ordering is part of the scenario's deterministic identity).
  // Phased scenarios additionally provision the configuration plumbing
  // FIRST (lowest connids): one channel per remote NI at the Cfg NI, and
  // one CNIP channel (connid 0) at every other NI.
  std::vector<int> channels(static_cast<std::size_t>(spec_.NumNis()), 0);
  for (std::size_t n = 0; n < channels.size(); ++n) {
    channels[n] = spec_.ConfigChannelsOf(static_cast<NiId>(n));
  }
  for (const auto& flows : flows_by_group) {
    for (const Flow& flow : flows) {
      ++channels[static_cast<std::size_t>(flow.src)];
      ++channels[static_cast<std::size_t>(flow.dst)];
    }
  }
  // The packet header's qid field addresses at most kMaxQueueId + 1
  // channels per NI; over-subscribed NIs previously aborted inside the
  // NI-kernel constructor instead of failing the build.
  for (std::size_t n = 0; n < channels.size(); ++n) {
    if (channels[n] > link::kMaxQueueId + 1) {
      return InvalidArgumentError(
          "ni" + std::to_string(n) + " needs " +
          std::to_string(channels[n]) + " channels, but the header qid "
          "field addresses at most " +
          std::to_string(link::kMaxQueueId + 1) + " per NI");
    }
  }

  topology::Topology topo;
  switch (spec_.topology) {
    case TopologyKind::kStar:
      topo = topology::BuildStar(spec_.dim_a).topology;
      break;
    case TopologyKind::kMesh:
      topo = topology::BuildMesh(spec_.dim_a, spec_.dim_b,
                                 spec_.nis_per_router)
                 .topology;
      break;
    case TopologyKind::kRing:
      topo = topology::BuildRing(spec_.dim_a, spec_.nis_per_router).topology;
      break;
  }
  AETHEREAL_CHECK(topo.NumNis() == spec_.NumNis());

  std::vector<core::NiKernelParams> ni_params;
  for (int count : channels) {
    // NIs no flow touches still get one (idle) channel: the NI kernel is
    // instantiated per NI regardless.
    ni_params.push_back(NiWithChannels(std::max(count, 1), spec_.queue_words,
                                       spec_.stu_slots, "ip"));
  }

  soc::SocOptions options;
  options.net_mhz = spec_.net_mhz;
  options.stu_slots = spec_.stu_slots;
  options.engine = spec_.engine;
  options.verify = spec_.verify;
  options.fault = spec_.fault.has_value() ? &*spec_.fault : nullptr;
  // The obs kill switch: a spec without `stats`/`trace` directives passes
  // null and the Soc builds no hub and registers no tap (DESIGN.md §13).
  options.obs = spec_.obs.Enabled() ? &spec_.obs : nullptr;
  soc_ = std::make_unique<soc::Soc>(std::move(topo), std::move(ni_params),
                                    options);
  return OkStatus();
}

config::ConnectionSpec ScenarioRunner::ConnSpecOfFlow(
    const TrafficSpec& traffic, const Flow& flow, int src_connid,
    int dst_connid) const {
  config::ConnectionSpec conn;
  conn.master = tdm::GlobalChannel{flow.src, src_connid};
  conn.slave = tdm::GlobalChannel{flow.dst, dst_connid};
  conn.request.gt = traffic.gt;
  conn.request.gt_slots = traffic.gt_slots;
  conn.request.data_threshold = traffic.data_threshold;
  conn.request.credit_threshold = traffic.credit_threshold;
  // Stream flows send data one way; the reverse channel only returns
  // credits and stays best-effort. Memory flows carry responses back, so
  // a GT request direction gets a GT response direction too.
  if (traffic.pattern == PatternKind::kMemory) {
    conn.response = conn.request;
  }
  return conn;
}

Status ScenarioRunner::OpenFlowConnection(const TrafficSpec& traffic,
                                          const Flow& flow, int src_connid,
                                          int dst_connid) {
  const config::ConnectionSpec conn =
      ConnSpecOfFlow(traffic, flow, src_connid, dst_connid);
  auto handle = soc_->OpenConnection(conn.master, conn.slave, conn.request,
                                     conn.response);
  if (!handle.ok()) {
    return Status(handle.status().code(),
                  std::string(PatternKindName(traffic.pattern)) + " flow " +
                      std::to_string(flow.src) + "->" +
                      std::to_string(flow.dst) + ": " +
                      handle.status().message());
  }
  return OkStatus();
}

Status ScenarioRunner::Build() {
  if (built_) return OkStatus();

  Rng rng(spec_.seed);
  std::vector<std::vector<Flow>> flows_by_group;
  for (const TrafficSpec& traffic : spec_.traffic) {
    auto flows = ExpandPattern(spec_, traffic, rng);
    if (!flows.ok()) return flows.status();
    flows_by_group.push_back(std::move(*flows));
  }

  if (Status s = BuildTopologyAndSoc(flows_by_group); !s.ok()) return s;

  const bool phased = spec_.Phased();
  if (phased) {
    // The configuration infrastructure of the Fig. 8/9 flow: config shell
    // + connection manager at the Cfg NI, CNIP slave at every other NI,
    // and the scripted driver that will sequence each transition's ops.
    soc::ConfigSetup setup;
    setup.cfg_ni = spec_.cfg_ni;
    setup.cfg_port = 0;
    int cfg_connid = 0;
    for (NiId n = 0; n < static_cast<NiId>(spec_.NumNis()); ++n) {
      if (n == spec_.cfg_ni) continue;
      setup.cfg_connid_of_ni[n] = cfg_connid++;
      setup.cnip_of_ni[n] = {0, 0};  // port 0, connid 0
    }
    config::ConnectionManager* manager = soc_->EnableConfig(setup);
    driver_ = std::make_unique<config::ScriptedConfigDriver>("config_driver",
                                                             manager);
    soc_->RegisterOnPort(driver_.get(), spec_.cfg_ni, 0);
  }

  // Assign connids in directive order (mirrors the channel counting; in a
  // phased scenario the config channels occupy the lowest connids, so
  // flow connids start above them).
  std::vector<int> next_connid(static_cast<std::size_t>(spec_.NumNis()), 0);
  for (std::size_t n = 0; n < next_connid.size(); ++n) {
    next_connid[n] = spec_.ConfigChannelsOf(static_cast<NiId>(n));
  }
  struct Wired {
    Flow flow;
    int src_connid;
    int dst_connid;
  };
  std::vector<std::vector<Wired>> wired_by_group;
  for (std::size_t g = 0; g < flows_by_group.size(); ++g) {
    std::vector<Wired> wired;
    std::vector<config::ConnectionSpec> conns;
    for (const Flow& flow : flows_by_group[g]) {
      Wired w{flow, next_connid[static_cast<std::size_t>(flow.src)]++,
              next_connid[static_cast<std::size_t>(flow.dst)]++};
      if (phased) {
        // Connections of a phased run are opened at runtime, over the NoC,
        // when their phase begins.
        conns.push_back(ConnSpecOfFlow(spec_.traffic[g], flow, w.src_connid,
                                       w.dst_connid));
      } else if (Status s = OpenFlowConnection(spec_.traffic[g], flow,
                                               w.src_connid, w.dst_connid);
                 !s.ok()) {
        return s;
      }
      wired.push_back(w);
    }
    wired_by_group.push_back(std::move(wired));
    conns_by_group_.push_back(std::move(conns));
  }
  open_refs_by_group_.resize(conns_by_group_.size());

  // Instantiate the workload IPs. Per-flow RNG seeds are drawn from the
  // master stream in directive order, after all pattern expansions.
  for (std::size_t g = 0; g < wired_by_group.size(); ++g) {
    const TrafficSpec& traffic = spec_.traffic[g];
    const std::vector<Wired>& wired = wired_by_group[g];
    const std::string tag = "g" + std::to_string(g);
    if (traffic.pattern == PatternKind::kVideo) {
      VideoChain chain;
      chain.group = g;
      chain.chain = traffic.nis;
      for (const Wired& w : wired) {
        chain.hop_flows.push_back(w.flow);
        chain.hop_src_connids.push_back(w.src_connid);
      }
      const Wired& first = wired.front();
      const Wired& last = wired.back();
      chain.source = std::make_unique<PatternSource>(
          tag + "_video_src", soc_->port(first.flow.src, 0), first.src_connid,
          traffic, rng.Next(), /*start_active=*/!phased);
      soc_->RegisterOnPort(chain.source.get(), first.flow.src, 0);
      for (std::size_t hop = 0; hop + 1 < wired.size(); ++hop) {
        const NiId at = wired[hop].flow.dst;
        auto relay = std::make_unique<Relay>(
            tag + "_relay" + std::to_string(hop), soc_->port(at, 0),
            wired[hop].dst_connid, wired[hop + 1].src_connid);
        soc_->RegisterOnPort(relay.get(), at, 0);
        chain.relays.push_back(std::move(relay));
      }
      chain.consumer = std::make_unique<ip::StreamConsumer>(
          tag + "_video_sink", soc_->port(last.flow.dst, 0), last.dst_connid,
          /*drain_per_cycle=*/1, /*timestamp_mode=*/true);
      soc_->RegisterOnPort(chain.consumer.get(), last.flow.dst, 0);
      video_chains_.push_back(std::move(chain));
    } else if (traffic.pattern == PatternKind::kMemory) {
      const Wired& w = wired.front();
      MemoryFlow mem;
      mem.group = g;
      mem.flow = w.flow;
      mem.src_connid = w.src_connid;
      mem.master_shell = std::make_unique<shells::MasterShell>(
          tag + "_master_shell", soc_->port(w.flow.src, 0), w.src_connid);
      mem.master = std::make_unique<ip::TrafficGenMaster>(
          tag + "_master", mem.master_shell.get(), MemoryPattern(traffic),
          rng.Next());
      if (phased) mem.master->Deactivate();
      mem.slave_shell = std::make_unique<shells::SlaveShell>(
          tag + "_slave_shell", soc_->port(w.flow.dst, 0), w.dst_connid);
      mem.memory = std::make_unique<ip::MemorySlave>(
          tag + "_memory", mem.slave_shell.get(), /*base=*/0,
          /*size_words=*/1024);
      soc_->RegisterOnPort(mem.master_shell.get(), w.flow.src, 0);
      soc_->RegisterOnPort(mem.master.get(), w.flow.src, 0);
      soc_->RegisterOnPort(mem.slave_shell.get(), w.flow.dst, 0);
      soc_->RegisterOnPort(mem.memory.get(), w.flow.dst, 0);
      memory_flows_.push_back(std::move(mem));
    } else {
      for (std::size_t f = 0; f < wired.size(); ++f) {
        const Wired& w = wired[f];
        StreamFlow stream;
        stream.group = g;
        stream.flow = w.flow;
        stream.src_connid = w.src_connid;
        const std::string label = tag + "f" + std::to_string(f);
        stream.source = std::make_unique<PatternSource>(
            label + "_src", soc_->port(w.flow.src, 0), w.src_connid, traffic,
            rng.Next(), /*start_active=*/!phased);
        stream.consumer = std::make_unique<ip::StreamConsumer>(
            label + "_sink", soc_->port(w.flow.dst, 0), w.dst_connid,
            /*drain_per_cycle=*/kFlitWords, /*timestamp_mode=*/true);
        soc_->RegisterOnPort(stream.source.get(), w.flow.src, 0);
        soc_->RegisterOnPort(stream.consumer.get(), w.flow.dst, 0);
        stream_flows_.push_back(std::move(stream));
      }
    }
  }

  built_ = true;
  return OkStatus();
}

Result<ScenarioResult> ScenarioRunner::Run() {
  AETHEREAL_CHECK_MSG(!ran_, "ScenarioRunner::Run is single-shot");
  if (Status s = Build(); !s.ok()) return s;
  ran_ = true;
  if (spec_.Phased()) return RunPhased();

  soc_->RunCycles(spec_.warmup);

  // Every latency stream the run owns, in directive order (streams, then
  // chains, then memory masters) — the single iteration order shared by
  // the convergence sampling below so the CI population is deterministic.
  auto each_latency = [&](auto&& fn) {
    for (const StreamFlow& f : stream_flows_) fn(f.consumer->latency());
    for (const VideoChain& c : video_chains_) fn(c.consumer->latency());
    for (const MemoryFlow& m : memory_flows_) fn(m.master->latency());
  };

  const stats_ctl::ConvergeSpec& cv = spec_.converge;
  stats_ctl::ConvergenceOutcome conv;
  conv.warmup_cycles = spec_.warmup;
  if (cv.enabled && cv.auto_warmup) {
    // Welch-style warmup extension: keep settling in short steps until
    // the trailing per-step latency means AND delivered-word counts stop
    // drifting (WarmupDetector's half-vs-half test), or the extension
    // budget (the measured-cycle cap) is spent. The settle step is a
    // quarter of the measurement interval: the detector needs
    // 2 * warmup_windows observations before it can fire at all, and at
    // full-interval steps that alone would exceed the declared duration.
    // All inputs are committed simulation state, so the extension stops
    // at the same cycle on every engine.
    const Cycle interval =
        std::max<Cycle>(cv.IntervalFor(spec_.duration) / 4, 1);
    const Cycle extend_cap = cv.MaxDurationFor(spec_.duration);
    stats_ctl::WarmupDetector det(cv.warmup_windows, cv.warmup_tol);
    auto totals = [&]() {
      std::int64_t count = 0;
      double sum = 0;
      each_latency([&](const Stats& s) {
        count += s.count();
        sum += s.Sum();
      });
      std::int64_t words = 0;
      for (const StreamFlow& f : stream_flows_) {
        words += f.consumer->words_read();
      }
      for (const VideoChain& c : video_chains_) {
        words += c.consumer->words_read();
      }
      for (const MemoryFlow& m : memory_flows_) {
        words += m.master->completed() *
                 spec_.traffic[m.group].mem_burst_words;
      }
      return std::tuple<std::int64_t, double, std::int64_t>(count, sum,
                                                            words);
    };
    auto [pc, ps, pw] = totals();
    Cycle extended = 0;
    while (!det.warm() && extended < extend_cap) {
      soc_->RunCycles(interval);
      extended += interval;
      auto [cc, cs, w] = totals();
      const std::int64_t dn = cc - pc;
      det.Observe(dn > 0 ? (cs - ps) / static_cast<double>(dn) : 0.0,
                  static_cast<double>(w - pw));
      pc = cc;
      ps = cs;
      pw = w;
    }
    conv.warmup_detected = det.warm();
    conv.warmup_cycles += extended;
  }

  // Measurement-window baselines (latency stats stay cumulative — they
  // are summaries of exact integer samples either way). The admitted-word
  // baselines feed the verify-mode guarantee checks.
  std::vector<std::int64_t> stream0, video0, mem0, stream_adm0, video_adm0;
  for (const StreamFlow& f : stream_flows_) {
    stream0.push_back(f.consumer->words_read());
    stream_adm0.push_back(f.source->words_written());
  }
  for (const VideoChain& c : video_chains_) {
    video0.push_back(c.consumer->words_read());
    video_adm0.push_back(c.source->words_written());
  }
  for (const MemoryFlow& m : memory_flows_) {
    mem0.push_back(m.master->completed());
  }
  std::vector<std::size_t> lat0;
  each_latency(
      [&](const Stats& s) { lat0.push_back(static_cast<std::size_t>(s.count())); });

  if (obs::ObsHub* hub = soc_->obs_hub()) {
    hub->NotePhase(obs::kPhaseBegin, soc_->net_clock()->cycles(), 0);
  }
  Cycle measured = spec_.duration;
  if (!cv.enabled) {
    soc_->RunCycles(spec_.duration);
  } else {
    // Stop-on-convergence window: run in check-interval steps; after each,
    // form the batch-means CI over every latency sample recorded since the
    // measurement baseline (flows concatenated in directive order). Stop
    // once the interval is trustworthy (valid batches, batch means not
    // strongly lag-1 correlated) AND tight enough, or at the cycle cap.
    const Cycle interval = cv.IntervalFor(spec_.duration);
    const Cycle cap = cv.MaxDurationFor(spec_.duration);
    Cycle run = 0;
    std::vector<double> window;
    while (true) {
      const Cycle step = std::min(interval, cap - run);
      soc_->RunCycles(step);
      run += step;
      window.clear();
      std::size_t at = 0;
      each_latency([&](const Stats& s) {
        window.insert(window.end(),
                      s.samples().begin() +
                          static_cast<std::ptrdiff_t>(lat0[at]),
                      s.samples().end());
        ++at;
      });
      conv.ci = stats_ctl::BatchMeansCi(window, 0, window.size(),
                                        cv.batches, cv.conf);
      if (conv.ci.valid && conv.ci.rel_err <= cv.rel_err &&
          std::fabs(conv.ci.lag1) <= cv.lag1_limit) {
        conv.converged = true;
        break;
      }
      if (run >= cap) break;
    }
    measured = run;
    conv.measured_cycles = run;
  }
  if (obs::ObsHub* hub = soc_->obs_hub()) {
    hub->NotePhase(obs::kPhaseEnd, soc_->net_clock()->cycles(), 0);
  }

  ScenarioResult result;
  result.spec = spec_;
  result.cycles_run = soc_->net_clock()->cycles();

  // Flow results, grouped back into directive order.
  std::size_t si = 0, vi = 0, mi = 0;
  for (std::size_t g = 0; g < spec_.traffic.size(); ++g) {
    const TrafficSpec& traffic = spec_.traffic[g];
    auto base = [&](const TrafficSpec& t) {
      FlowResult r;
      r.pattern = PatternKindName(t.pattern);
      r.group = static_cast<int>(g);
      r.gt = t.gt;
      r.gt_slots = t.gt_slots;
      return r;
    };
    if (traffic.pattern == PatternKind::kVideo) {
      const VideoChain& c = video_chains_[vi];
      FlowResult r = base(traffic);
      r.src = c.chain.front();
      r.dst = c.chain.back();
      r.words_total = c.consumer->words_read();
      r.words_in_window = r.words_total - video0[vi];
      r.latency = Summarize(c.consumer->latency());
      r.latency_samples = c.consumer->latency().samples();
      result.flows.push_back(std::move(r));
      ++vi;
    } else if (traffic.pattern == PatternKind::kMemory) {
      const MemoryFlow& m = memory_flows_[mi];
      FlowResult r = base(traffic);
      r.src = m.flow.src;
      r.dst = m.flow.dst;
      r.transactions_issued = m.master->issued();
      r.transactions_completed = m.master->completed();
      r.words_total = r.transactions_completed * traffic.mem_burst_words;
      r.words_in_window =
          (r.transactions_completed - mem0[mi]) * traffic.mem_burst_words;
      r.latency = Summarize(m.master->latency());
      r.latency_samples = m.master->latency().samples();
      result.flows.push_back(std::move(r));
      ++mi;
    } else {
      while (si < stream_flows_.size() && stream_flows_[si].group == g) {
        const StreamFlow& f = stream_flows_[si];
        FlowResult r = base(traffic);
        r.src = f.flow.src;
        r.dst = f.flow.dst;
        r.words_total = f.consumer->words_read();
        r.words_in_window = r.words_total - stream0[si];
        r.latency = Summarize(f.consumer->latency());
        r.latency_samples = f.consumer->latency().samples();
        result.flows.push_back(std::move(r));
        ++si;
      }
    }
  }
  for (FlowResult& r : result.flows) {
    r.throughput_wpc =
        static_cast<double>(r.words_in_window) / static_cast<double>(measured);
    result.words_in_window += r.words_in_window;
  }
  result.throughput_wpc = static_cast<double>(result.words_in_window) /
                          static_cast<double>(measured);
  if (cv.enabled) result.convergence = conv;

  AggregateNiStats(soc_.get(), spec_.NumNis(), &result);

  std::vector<std::string> degradations;
  if (spec_.verify) {
    const bool fault_aware =
        spec_.fault.has_value() && spec_.fault->AnyNetworkFaults();
    std::vector<std::string> problems;
    CheckGuarantees(stream_adm0, video_adm0, stream0, video0, measured,
                    &problems, fault_aware ? &degradations : nullptr);
    if (!problems.empty()) return VerificationError(spec_.name, problems);
  }
  FillFaultResult(std::move(degradations), &result);
  if (Status s = FinalizeObsIntoResult(&result); !s.ok()) return s;
  return result;
}

GtFlowBound ScenarioRunner::BoundOfHop(std::size_t group, const Flow& flow,
                                       int src_connid) {
  GtFlowBound report;
  report.group = static_cast<int>(group);
  report.src = flow.src;
  report.dst = flow.dst;
  const ChannelId flat =
      soc_->port(flow.src, 0)->GlobalChannelOf(src_connid);
  const tdm::GlobalChannel channel{flow.src, flat};
  auto route = soc_->topology().Route(flow.src, flow.dst);
  AETHEREAL_CHECK(route.ok());  // the connection was opened over it
  const tdm::SlotTable& table = soc_->allocator().TableOf(route->links[0]);
  report.bound = verify::ComputeGtBound(
      table.SlotsOf(channel), spec_.stu_slots,
      static_cast<int>(route->hops.size()),
      soc_->ni(flow.src)->params().max_packet_flits);
  return report;
}

Result<std::vector<GtFlowBound>> ScenarioRunner::ComputeGtBounds() {
  if (spec_.Phased()) {
    return FailedPreconditionError(
        "GT bounds of a phased scenario are phase-dependent (connections "
        "open and close at runtime); run it with verify on instead — the "
        "verified run checks each phase window against the tables then in "
        "force");
  }
  if (Status s = Build(); !s.ok()) return s;
  std::vector<GtFlowBound> bounds;
  for (const StreamFlow& f : stream_flows_) {
    if (!spec_.traffic[f.group].gt) continue;
    bounds.push_back(BoundOfHop(f.group, f.flow, f.src_connid));
  }
  for (const VideoChain& c : video_chains_) {
    if (!spec_.traffic[c.group].gt) continue;
    for (std::size_t h = 0; h < c.hop_flows.size(); ++h) {
      bounds.push_back(
          BoundOfHop(c.group, c.hop_flows[h], c.hop_src_connids[h]));
    }
  }
  for (const MemoryFlow& m : memory_flows_) {
    if (!spec_.traffic[m.group].gt) continue;
    bounds.push_back(BoundOfHop(m.group, m.flow, m.src_connid));
  }
  return bounds;
}

namespace {

/// In-flight allowance for the throughput floor of one GT hop: words
/// legitimately parked in the source and destination queues, the network
/// pipeline, and the current (partial) table rotation at either window
/// boundary.
std::int64_t HopSlackWords(const verify::GtBound& bound, int queue_words) {
  return 2 * static_cast<std::int64_t>(queue_words) +
         static_cast<std::int64_t>(bound.hops + 2) * kFlitWords +
         2 * bound.words_per_rotation + 2 * kFlitWords;
}

}  // namespace

std::vector<std::size_t> ScenarioRunner::ClosingGroupsOf(int phase) const {
  std::vector<std::size_t> groups;
  for (std::size_t g = 0; g < spec_.traffic.size(); ++g) {
    if (spec_.traffic[g].phase == phase && !spec_.traffic[g].persist) {
      groups.push_back(g);
    }
  }
  return groups;
}

void ScenarioRunner::SetGroupActive(std::size_t group, bool active,
                                    Cycle now) {
  for (StreamFlow& f : stream_flows_) {
    if (f.group != group) continue;
    if (active) {
      f.source->Activate(now);
    } else {
      f.source->Deactivate();
    }
  }
  for (VideoChain& c : video_chains_) {
    if (c.group != group) continue;
    if (active) {
      c.source->Activate(now);
    } else {
      c.source->Deactivate();
    }
  }
  for (MemoryFlow& m : memory_flows_) {
    if (m.group != group) continue;
    if (active) {
      m.master->Activate(now);
    } else {
      m.master->Deactivate();
    }
  }
}

bool ScenarioRunner::GroupDrained(std::size_t group) const {
  // Every word the (now silent) sources ever wrote must have reached its
  // consumer...
  for (const StreamFlow& f : stream_flows_) {
    if (f.group != group) continue;
    if (f.consumer->words_read() != f.source->words_written()) return false;
  }
  for (const VideoChain& c : video_chains_) {
    if (c.group != group) continue;
    if (c.consumer->words_read() != c.source->words_written()) return false;
  }
  for (const MemoryFlow& m : memory_flows_) {
    if (m.group != group) continue;
    if (m.master->outstanding() != 0) return false;
  }
  // ... and every credit must have returned: each channel's Space counter
  // reads full again (phased directives pin credit_threshold to 1, so no
  // credit can linger below a reporting threshold). Only then can the
  // close disable the channels with nothing of this connection in flight.
  for (const config::ConnectionSpec& conn :
       conns_by_group_[group]) {
    if (soc_->ni(conn.master.ni)->SpaceOf(conn.master.channel) !=
        soc_->DestQueueWordsOf(conn.slave)) {
      return false;
    }
    if (soc_->ni(conn.slave.ni)->SpaceOf(conn.slave.channel) !=
        soc_->DestQueueWordsOf(conn.master)) {
      return false;
    }
  }
  return true;
}

Result<ScenarioResult> ScenarioRunner::RunPhased() {
  verify::Monitor* monitor = soc_->monitor();
  obs::ObsHub* obs_hub = soc_->obs_hub();
  shells::ConfigShell* shell = soc_->config_shell();
  AETHEREAL_CHECK(shell != nullptr && driver_ != nullptr);
  auto now = [&] { return soc_->net_clock()->cycles(); };

  ScenarioResult result;
  result.spec = spec_;

  // Whole-run accumulators: delivered words inside measured windows.
  std::vector<std::int64_t> stream_window(stream_flows_.size(), 0);
  std::vector<std::int64_t> video_window(video_chains_.size(), 0);
  std::vector<std::int64_t> mem_window(memory_flows_.size(), 0);
  std::vector<std::vector<PhaseFlowStats>> stream_ps(stream_flows_.size());
  std::vector<std::vector<PhaseFlowStats>> video_ps(video_chains_.size());
  std::vector<std::vector<PhaseFlowStats>> mem_ps(memory_flows_.size());

  // Verify mode: per-window GT throughput-floor checks, evaluated at the
  // end (the bound is computed at window start, from the slot tables in
  // force during that phase).
  struct WindowCheck {
    const char* what;
    std::size_t group;
    std::size_t phase;
    NiId src, dst;
    std::int64_t admitted = 0, delivered = 0;
    double guaranteed_wpc = 0;
    std::int64_t slack = 0;
    Cycle duration = 0;
  };
  std::vector<WindowCheck> window_checks;

  auto active_in = [&](std::size_t g, std::size_t k) {
    return spec_.traffic[g].ActiveIn(static_cast<int>(k));
  };

  for (std::size_t k = 0; k < spec_.phases.size(); ++k) {
    const PhaseSpec& phase = spec_.phases[k];
    TransitionResult tr;
    tr.phase = static_cast<int>(k);
    tr.phase_name = phase.name;
    tr.start_cycle = now();

    // 1. Silence the outgoing phase's non-persistent sources and wait for
    // their traffic (words AND credits) to drain off the NoC.
    const std::vector<std::size_t> closing =
        k > 0 ? ClosingGroupsOf(static_cast<int>(k) - 1)
              : std::vector<std::size_t>{};
    if (!closing.empty()) {
      for (std::size_t g : closing) SetGroupActive(g, false, now());
      const Cycle drain_start = now();
      if (obs_hub != nullptr) {
        obs_hub->NoteConfig(obs::kConfigDrainBegin, drain_start,
                            static_cast<std::int64_t>(k));
      }
      const Cycle deadline = drain_start + spec_.drain_cycles;
      auto drained = [&] {
        for (std::size_t g : closing) {
          if (!GroupDrained(g)) return false;
        }
        return true;
      };
      while (!drained() && now() < deadline) soc_->RunCycles(1);
      if (!drained()) {
        return TimeoutError(
            "phase transition into '" + phase.name +
            "': outgoing traffic failed to drain within " +
            std::to_string(spec_.drain_cycles) +
            " cycles (raise 'drain' or lower the offered load)");
      }
      tr.drain_cycles = now() - drain_start;
      if (obs_hub != nullptr) {
        obs_hub->NoteConfig(obs::kConfigDrainEnd, now(),
                            static_cast<std::int64_t>(k));
      }
    }

    // 2. Reconfigure over the NoC itself: the outgoing phase's closes
    // first, then the incoming phase's opens — the manager serializes the
    // Fig. 9 sequences, so slots freed by the closes are reusable by the
    // opens of the same transition.
    if (monitor != nullptr) monitor->NotePhaseBoundary();
    const Cycle config_start = now();
    const std::int64_t writes0 =
        shell->local_writes() + shell->remote_writes();
    std::vector<std::size_t> batch;
    for (std::size_t g : closing) {
      for (int ref : open_refs_by_group_[g]) {
        batch.push_back(static_cast<std::size_t>(driver_->PushClose(ref)));
        ++tr.closes;
        if (obs_hub != nullptr) {
          obs_hub->NoteConfig(obs::kConfigClose, now(),
                              static_cast<std::int64_t>(g));
        }
      }
    }
    for (std::size_t g = 0; g < spec_.traffic.size(); ++g) {
      if (spec_.traffic[g].phase != static_cast<int>(k)) continue;
      for (const config::ConnectionSpec& conn : conns_by_group_[g]) {
        const int ref = driver_->PushOpen(conn);
        open_refs_by_group_[g].push_back(ref);
        batch.push_back(static_cast<std::size_t>(ref));
        ++tr.opens;
        if (obs_hub != nullptr) {
          obs_hub->NoteConfig(obs::kConfigOpen, now(),
                              static_cast<std::int64_t>(g));
        }
      }
    }
    const Cycle config_deadline = now() + spec_.drain_cycles;
    while (!driver_->Done() && now() < config_deadline) soc_->RunCycles(1);
    if (!driver_->Done()) {
      return TimeoutError(
          "phase '" + phase.name +
          "': runtime configuration did not complete within " +
          std::to_string(spec_.drain_cycles) +
          " cycles (the 'drain' directive bounds each transition stage; "
          "raise it" +
          (spec_.fault.has_value() && spec_.fault->AnyConfigFaults() &&
                   !spec_.fault->retry.enabled
               ? ", or enable the fault block's retry policy — config "
                 "faults are armed without recovery"
               : "") +
          ")");
    }
    for (std::size_t i : batch) {
      const config::ScriptedOp& op = driver_->op(i);
      if (!op.error.ok()) {
        return Status(
            op.error.code(),
            "phase '" + phase.name + "': " +
                (op.kind == config::ScriptedOp::Kind::kOpen ? "open"
                                                            : "close") +
                " failed: " + op.error.message());
      }
      if (op.kind == config::ScriptedOp::Kind::kOpen) {
        tr.setup_latency_max = std::max(tr.setup_latency_max, op.Latency());
        tr.slots_allocated += op.slots_delta;
      } else {
        tr.teardown_latency_max =
            std::max(tr.teardown_latency_max, op.Latency());
        tr.slots_reclaimed += op.slots_delta;
      }
    }
    tr.config_cycles = now() - config_start;
    tr.config_messages =
        shell->local_writes() + shell->remote_writes() - writes0;
    result.transitions.push_back(std::move(tr));

    // 3. Switch the incoming phase's sources on and let the new use case
    // settle before measuring.
    for (std::size_t g = 0; g < spec_.traffic.size(); ++g) {
      if (spec_.traffic[g].phase == static_cast<int>(k)) {
        SetGroupActive(g, true, now());
      }
    }
    soc_->RunCycles(k == 0 ? spec_.warmup + phase.warmup : phase.warmup);

    // 4. The measured window.
    PhaseResult pr;
    pr.name = phase.name;
    pr.duration = phase.duration;
    pr.window_start = now();

    struct Snap {
      std::int64_t delivered = 0, admitted = 0, lat_count = 0;
      double lat_sum = 0;
    };
    std::vector<Snap> s0(stream_flows_.size());
    std::vector<Snap> v0(video_chains_.size());
    std::vector<Snap> m0(memory_flows_.size());
    for (std::size_t i = 0; i < stream_flows_.size(); ++i) {
      const StreamFlow& f = stream_flows_[i];
      s0[i] = Snap{f.consumer->words_read(), f.source->words_written(),
                   f.consumer->latency().count(),
                   f.consumer->latency().Sum()};
    }
    for (std::size_t i = 0; i < video_chains_.size(); ++i) {
      const VideoChain& c = video_chains_[i];
      v0[i] = Snap{c.consumer->words_read(), c.source->words_written(),
                   c.consumer->latency().count(),
                   c.consumer->latency().Sum()};
    }
    for (std::size_t i = 0; i < memory_flows_.size(); ++i) {
      const MemoryFlow& m = memory_flows_[i];
      m0[i] = Snap{m.master->completed(), m.master->issued(),
                   m.master->latency().count(), m.master->latency().Sum()};
    }

    // Verify mode: the guaranteed rate of each active GT flow under the
    // slot tables in force during THIS phase.
    struct WindowBound {
      double guaranteed_wpc = 0;
      std::int64_t slack = 0;
    };
    std::vector<WindowBound> s_bound(stream_flows_.size());
    std::vector<WindowBound> v_bound(video_chains_.size());
    if (spec_.verify) {
      for (std::size_t i = 0; i < stream_flows_.size(); ++i) {
        const StreamFlow& f = stream_flows_[i];
        if (!spec_.traffic[f.group].gt || !active_in(f.group, k)) continue;
        const GtFlowBound hop = BoundOfHop(f.group, f.flow, f.src_connid);
        s_bound[i] = WindowBound{
            hop.bound.min_throughput_wpc,
            HopSlackWords(hop.bound, spec_.queue_words)};
      }
      for (std::size_t i = 0; i < video_chains_.size(); ++i) {
        const VideoChain& c = video_chains_[i];
        if (!spec_.traffic[c.group].gt || !active_in(c.group, k)) continue;
        WindowBound bound;
        bound.guaranteed_wpc = -1;
        for (std::size_t h = 0; h < c.hop_flows.size(); ++h) {
          const GtFlowBound hop =
              BoundOfHop(c.group, c.hop_flows[h], c.hop_src_connids[h]);
          if (bound.guaranteed_wpc < 0 ||
              hop.bound.min_throughput_wpc < bound.guaranteed_wpc) {
            bound.guaranteed_wpc = hop.bound.min_throughput_wpc;
          }
          bound.slack += HopSlackWords(hop.bound, spec_.queue_words);
        }
        v_bound[i] = bound;
      }
    }

    if (obs_hub != nullptr) {
      obs_hub->NotePhase(obs::kPhaseBegin, now(), static_cast<int>(k));
    }
    if (!spec_.converge.enabled) {
      soc_->RunCycles(phase.duration);
    } else {
      // Stop-on-convergence window, per phase: extend in check-interval
      // steps until the batch-means CI over the window's merged samples
      // (every active flow, since its snapshot) is trustworthy and tight,
      // or the per-window cycle cap is reached. Phases keep their declared
      // warmups — reconfiguration transients are what the declared warmup
      // is for — and converge independently: their traffic mixes differ,
      // so pooling samples across windows would be meaningless.
      const stats_ctl::ConvergeSpec& cv = spec_.converge;
      const Cycle interval = cv.IntervalFor(phase.duration);
      const Cycle cap = cv.MaxDurationFor(phase.duration);
      stats_ctl::ConvergenceOutcome conv;
      conv.warmup_cycles =
          (k == 0 ? spec_.warmup : Cycle{0}) + phase.warmup;
      Cycle run = 0;
      std::vector<double> window;
      while (true) {
        const Cycle step = std::min(interval, cap - run);
        soc_->RunCycles(step);
        run += step;
        window.clear();
        auto append_since = [&](const Stats& s, std::int64_t count0) {
          window.insert(window.end(),
                        s.samples().begin() +
                            static_cast<std::ptrdiff_t>(count0),
                        s.samples().end());
        };
        for (std::size_t i = 0; i < stream_flows_.size(); ++i) {
          if (!active_in(stream_flows_[i].group, k)) continue;
          append_since(stream_flows_[i].consumer->latency(),
                       s0[i].lat_count);
        }
        for (std::size_t i = 0; i < video_chains_.size(); ++i) {
          if (!active_in(video_chains_[i].group, k)) continue;
          append_since(video_chains_[i].consumer->latency(),
                       v0[i].lat_count);
        }
        for (std::size_t i = 0; i < memory_flows_.size(); ++i) {
          if (!active_in(memory_flows_[i].group, k)) continue;
          append_since(memory_flows_[i].master->latency(),
                       m0[i].lat_count);
        }
        conv.ci = stats_ctl::BatchMeansCi(window, 0, window.size(),
                                          cv.batches, cv.conf);
        if (conv.ci.valid && conv.ci.rel_err <= cv.rel_err &&
            std::fabs(conv.ci.lag1) <= cv.lag1_limit) {
          conv.converged = true;
          break;
        }
        if (run >= cap) break;
      }
      conv.measured_cycles = run;
      pr.duration = run;
      pr.convergence = conv;
    }
    if (obs_hub != nullptr) {
      obs_hub->NotePhase(obs::kPhaseEnd, now(), static_cast<int>(k));
    }

    // Samples of every flow active in this window, merged, for the
    // phase-level latency summary (exact: the Stats objects keep their
    // samples in insertion order, so [snap.lat_count, count) is exactly
    // this window's population).
    std::vector<double> phase_samples;
    double phase_lat_sum = 0;
    auto push_stats = [&](std::vector<PhaseFlowStats>* stats,
                          std::int64_t words, const Snap& snap,
                          const Stats& lat) {
      PhaseFlowStats ps;
      ps.phase = static_cast<int>(k);
      ps.words = words;
      // pr.duration = cycles actually measured (the declared duration, or
      // the convergence-mode window).
      ps.throughput_wpc =
          static_cast<double>(words) / static_cast<double>(pr.duration);
      ps.latency_count = lat.count() - snap.lat_count;
      if (ps.latency_count > 0) {
        const auto first = static_cast<std::size_t>(snap.lat_count);
        const auto last = static_cast<std::size_t>(lat.count());
        ps.latency_mean = (lat.Sum() - snap.lat_sum) /
                          static_cast<double>(ps.latency_count);
        // One sort serves all three percentiles of this window (many
        // flows x phases each used to pay a fresh O(n log n) per query).
        const std::vector<double> sorted = lat.SortedRange(first, last);
        ps.latency_p50 = SortedPercentile(sorted, 50);
        ps.latency_p95 = SortedPercentile(sorted, 95);
        ps.latency_p99 = SortedPercentile(sorted, 99);
        phase_samples.insert(phase_samples.end(),
                             lat.samples().begin() + first,
                             lat.samples().begin() + last);
        phase_lat_sum += lat.Sum() - snap.lat_sum;
      }
      stats->push_back(ps);
      pr.words_in_window += words;
    };
    for (std::size_t i = 0; i < stream_flows_.size(); ++i) {
      const StreamFlow& f = stream_flows_[i];
      if (!active_in(f.group, k)) continue;
      const std::int64_t words = f.consumer->words_read() - s0[i].delivered;
      push_stats(&stream_ps[i], words, s0[i], f.consumer->latency());
      stream_window[i] += words;
      if (spec_.verify && spec_.traffic[f.group].gt) {
        window_checks.push_back(WindowCheck{
            "stream", f.group, k, f.flow.src, f.flow.dst,
            f.source->words_written() - s0[i].admitted, words,
            s_bound[i].guaranteed_wpc, s_bound[i].slack, pr.duration});
      }
    }
    for (std::size_t i = 0; i < video_chains_.size(); ++i) {
      const VideoChain& c = video_chains_[i];
      if (!active_in(c.group, k)) continue;
      const std::int64_t words = c.consumer->words_read() - v0[i].delivered;
      push_stats(&video_ps[i], words, v0[i], c.consumer->latency());
      video_window[i] += words;
      if (spec_.verify && spec_.traffic[c.group].gt) {
        window_checks.push_back(WindowCheck{
            "video", c.group, k, c.chain.front(), c.chain.back(),
            c.source->words_written() - v0[i].admitted, words,
            v_bound[i].guaranteed_wpc, v_bound[i].slack, pr.duration});
      }
    }
    for (std::size_t i = 0; i < memory_flows_.size(); ++i) {
      const MemoryFlow& m = memory_flows_[i];
      if (!active_in(m.group, k)) continue;
      const std::int64_t transactions = m.master->completed() - m0[i].delivered;
      const std::int64_t words =
          transactions * spec_.traffic[m.group].mem_burst_words;
      push_stats(&mem_ps[i], words, m0[i], m.master->latency());
      mem_window[i] += words;
    }
    pr.throughput_wpc = static_cast<double>(pr.words_in_window) /
                        static_cast<double>(pr.duration);
    pr.latency_count = static_cast<std::int64_t>(phase_samples.size());
    if (!phase_samples.empty()) {
      std::sort(phase_samples.begin(), phase_samples.end());
      pr.latency_mean =
          phase_lat_sum / static_cast<double>(phase_samples.size());
      pr.latency_p50 = SortedPercentile(phase_samples, 50);
      pr.latency_p95 = SortedPercentile(phase_samples, 95);
      pr.latency_p99 = SortedPercentile(phase_samples, 99);
    }
    result.phases.push_back(std::move(pr));
  }

  // --- whole-run assembly (mirrors the static path) -------------------------
  result.cycles_run = soc_->net_clock()->cycles();
  // Cycles actually measured: the sum of the windows run, which is the
  // spec's TotalDuration() exactly in fixed-duration mode.
  Cycle measured = 0;
  for (const PhaseResult& p : result.phases) measured += p.duration;
  if (spec_.converge.enabled) {
    // Roll-up: the run converged iff every window did; the per-window CIs
    // stay on their PhaseResults (phase 0's warmup_cycles already carries
    // the scenario-level warmup, so the sum is the total settle time).
    stats_ctl::ConvergenceOutcome conv;
    conv.converged = true;
    conv.measured_cycles = measured;
    for (const PhaseResult& p : result.phases) {
      conv.converged = conv.converged && p.convergence->converged;
      conv.warmup_cycles += p.convergence->warmup_cycles;
    }
    result.convergence = conv;
  }
  std::size_t si = 0, vi = 0, mi = 0;
  for (std::size_t g = 0; g < spec_.traffic.size(); ++g) {
    const TrafficSpec& traffic = spec_.traffic[g];
    auto base = [&](const TrafficSpec& t) {
      FlowResult r;
      r.pattern = PatternKindName(t.pattern);
      r.group = static_cast<int>(g);
      r.gt = t.gt;
      r.gt_slots = t.gt_slots;
      r.phase = t.phase;
      r.persist = t.persist;
      return r;
    };
    if (traffic.pattern == PatternKind::kVideo) {
      const VideoChain& c = video_chains_[vi];
      FlowResult r = base(traffic);
      r.src = c.chain.front();
      r.dst = c.chain.back();
      r.words_total = c.consumer->words_read();
      r.words_in_window = video_window[vi];
      r.latency = Summarize(c.consumer->latency());
      r.latency_samples = c.consumer->latency().samples();
      r.phase_stats = std::move(video_ps[vi]);
      result.flows.push_back(std::move(r));
      ++vi;
    } else if (traffic.pattern == PatternKind::kMemory) {
      const MemoryFlow& m = memory_flows_[mi];
      FlowResult r = base(traffic);
      r.src = m.flow.src;
      r.dst = m.flow.dst;
      r.transactions_issued = m.master->issued();
      r.transactions_completed = m.master->completed();
      r.words_total = r.transactions_completed * traffic.mem_burst_words;
      r.words_in_window = mem_window[mi];
      r.latency = Summarize(m.master->latency());
      r.latency_samples = m.master->latency().samples();
      r.phase_stats = std::move(mem_ps[mi]);
      result.flows.push_back(std::move(r));
      ++mi;
    } else {
      while (si < stream_flows_.size() && stream_flows_[si].group == g) {
        const StreamFlow& f = stream_flows_[si];
        FlowResult r = base(traffic);
        r.src = f.flow.src;
        r.dst = f.flow.dst;
        r.words_total = f.consumer->words_read();
        r.words_in_window = stream_window[si];
        r.latency = Summarize(f.consumer->latency());
        r.latency_samples = f.consumer->latency().samples();
        r.phase_stats = std::move(stream_ps[si]);
        result.flows.push_back(std::move(r));
        ++si;
      }
    }
  }
  for (FlowResult& r : result.flows) {
    r.throughput_wpc = static_cast<double>(r.words_in_window) /
                       static_cast<double>(measured);
    result.words_in_window += r.words_in_window;
  }
  result.throughput_wpc = static_cast<double>(result.words_in_window) /
                          static_cast<double>(measured);

  AggregateNiStats(soc_.get(), spec_.NumNis(), &result);

  std::vector<std::string> degradations;
  if (spec_.verify) {
    const bool fault_aware =
        spec_.fault.has_value() && spec_.fault->AnyNetworkFaults();
    std::vector<std::string> problems;
    AETHEREAL_CHECK(monitor != nullptr);
    AppendMonitorProblems(monitor, &problems,
                          fault_aware ? &degradations : nullptr);
    // Per-window GT throughput floors, against the slot tables that were
    // in force during each phase window. Network faults legitimately eat
    // into the floor, so shortfalls degrade instead of fail there.
    std::vector<std::string>* gt_sink =
        fault_aware ? &degradations : &problems;
    for (const WindowCheck& check : window_checks) {
      CheckGtThroughputFloor(
          check.what, check.group,
          "in phase '" + spec_.phases[check.phase].name + "'", check.src,
          check.dst, check.admitted, check.delivered, check.guaranteed_wpc,
          check.slack, check.duration, gt_sink);
    }
    for (const MemoryFlow& m : memory_flows_) {
      if (m.master->completed() > m.master->issued()) {
        std::ostringstream oss;
        oss << "transaction-ordering: memory g" << m.group << " completed "
            << m.master->completed() << " transactions but only issued "
            << m.master->issued();
        problems.push_back(oss.str());
      }
    }
    for (const StreamFlow& f : stream_flows_) {
      if (f.consumer->words_read() > f.source->words_written()) {
        std::ostringstream oss;
        oss << "flit-integrity: stream g" << f.group << " " << f.flow.src
            << "->" << f.flow.dst << " read " << f.consumer->words_read()
            << " words but the source only wrote "
            << f.source->words_written();
        problems.push_back(oss.str());
      }
    }
    if (!problems.empty()) return VerificationError(spec_.name, problems);
  }
  FillFaultResult(std::move(degradations), &result);
  if (Status s = FinalizeObsIntoResult(&result); !s.ok()) return s;
  return result;
}

void ScenarioRunner::CheckGuarantees(
    const std::vector<std::int64_t>& stream_admitted0,
    const std::vector<std::int64_t>& video_admitted0,
    const std::vector<std::int64_t>& stream_delivered0,
    const std::vector<std::int64_t>& video_delivered0, Cycle duration,
    std::vector<std::string>* problems,
    std::vector<std::string>* degradations) {
  verify::Monitor* monitor = soc_->monitor();
  AETHEREAL_CHECK(monitor != nullptr);
  AppendMonitorProblems(monitor, problems, degradations);

  // Analytical GT guarantees: the throughput floor, per measurement
  // window (`duration` = measured cycles actually run — the fixed spec
  // duration, or the stop-on-convergence window). Armed network faults
  // legitimately eat into the floor (and NI stalls stretch word latency),
  // so with `degradations` set those shortfalls degrade instead of fail.
  std::vector<std::string>* gt_sink =
      degradations != nullptr ? degradations : problems;
  auto check_throughput = [&](const char* what, std::size_t group, NiId src,
                              NiId dst, std::int64_t admitted,
                              std::int64_t delivered, double guaranteed_wpc,
                              std::int64_t slack) {
    CheckGtThroughputFloor(what, group, "in the window", src, dst, admitted,
                           delivered, guaranteed_wpc, slack, duration,
                           gt_sink);
  };

  // The end-to-end (Write-to-Read) latency bound is table-derivable only
  // when the credit loop provably cannot bind: stream credits return as
  // best-effort packets, so any BE directive in the scenario can delay
  // them arbitrarily and stretch end-to-end latency without violating any
  // GT guarantee (the per-flit network timing is checked unconditionally
  // by the monitor). With only GT directives, every reverse path carries
  // at most a trickle of credit-only flits, bounded by one table rotation
  // of jitter.
  const bool all_gt =
      std::all_of(spec_.traffic.begin(), spec_.traffic.end(),
                  [](const TrafficSpec& t) { return t.gt; });

  for (std::size_t i = 0; i < stream_flows_.size(); ++i) {
    const StreamFlow& f = stream_flows_[i];
    const TrafficSpec& traffic = spec_.traffic[f.group];
    if (!traffic.gt) continue;
    const GtFlowBound hop = BoundOfHop(f.group, f.flow, f.src_connid);
    const std::int64_t admitted =
        f.source->words_written() - stream_admitted0[i];
    const std::int64_t delivered =
        f.consumer->words_read() - stream_delivered0[i];
    check_throughput("stream", f.group, f.flow.src, f.flow.dst, admitted,
                     delivered, hop.bound.min_throughput_wpc,
                     HopSlackWords(hop.bound, spec_.queue_words));
    // The per-word latency bound applies when each word provably finds an
    // empty source queue and full credit: periodic injection at most once
    // per table rotation, unmodified thresholds, a queue deep enough to
    // ride out the credit round trip, and no BE directive that could
    // starve the credit return (see above).
    if (all_gt && traffic.inject == InjectKind::kPeriodic &&
        traffic.period >=
            static_cast<std::int64_t>(spec_.stu_slots) * kFlitWords &&
        traffic.data_threshold == 1 && traffic.credit_threshold == 1 &&
        spec_.queue_words >= 4 && f.consumer->latency().count() > 0) {
      // One rotation of margin absorbs credit-return and BE-arbitration
      // jitter among the (all-GT) companion flows.
      const Cycle bound =
          hop.bound.worst_case_latency +
          static_cast<Cycle>(spec_.stu_slots) * kFlitWords;
      const double measured = f.consumer->latency().Max();
      if (measured > static_cast<double>(bound)) {
        std::ostringstream oss;
        oss << "gt-latency: stream g" << f.group << " " << f.flow.src << "->"
            << f.flow.dst << " saw a word latency of " << measured
            << " cycles; the slot tables bound it by " << bound
            << " (max gap " << hop.bound.max_gap_slots << " slots, "
            << hop.bound.hops << " hops, one rotation of credit jitter)";
        gt_sink->push_back(oss.str());
      }
    }
  }

  for (std::size_t i = 0; i < video_chains_.size(); ++i) {
    const VideoChain& c = video_chains_[i];
    const TrafficSpec& traffic = spec_.traffic[c.group];
    if (!traffic.gt) continue;
    double guaranteed_wpc = -1;
    std::int64_t slack = 0;
    for (std::size_t h = 0; h < c.hop_flows.size(); ++h) {
      const GtFlowBound hop =
          BoundOfHop(c.group, c.hop_flows[h], c.hop_src_connids[h]);
      if (guaranteed_wpc < 0 ||
          hop.bound.min_throughput_wpc < guaranteed_wpc) {
        guaranteed_wpc = hop.bound.min_throughput_wpc;
      }
      slack += HopSlackWords(hop.bound, spec_.queue_words);
    }
    const std::int64_t admitted =
        c.source->words_written() - video_admitted0[i];
    const std::int64_t delivered =
        c.consumer->words_read() - video_delivered0[i];
    check_throughput("video", c.group, c.chain.front(), c.chain.back(),
                     admitted, delivered, guaranteed_wpc, slack);
  }

  for (const MemoryFlow& m : memory_flows_) {
    if (m.master->completed() > m.master->issued()) {
      std::ostringstream oss;
      oss << "transaction-ordering: memory g" << m.group << " completed "
          << m.master->completed() << " transactions but only issued "
          << m.master->issued();
      problems->push_back(oss.str());
    }
  }

  // Best-effort sanity: a consumer can never read more than its producer
  // wrote (whole-run totals; flit integrity is the monitor's job).
  for (const StreamFlow& f : stream_flows_) {
    if (f.consumer->words_read() > f.source->words_written()) {
      std::ostringstream oss;
      oss << "flit-integrity: stream g" << f.group << " " << f.flow.src
          << "->" << f.flow.dst << " read " << f.consumer->words_read()
          << " words but the source only wrote " << f.source->words_written();
      problems->push_back(oss.str());
    }
  }
}

void ScenarioRunner::FillFaultResult(std::vector<std::string> degradations,
                                     ScenarioResult* result) {
  if (!spec_.fault.has_value() || !spec_.fault->Enabled()) return;
  const fault::FaultInjector* injector = soc_->fault_injector();
  AETHEREAL_CHECK(injector != nullptr);

  FaultResult fr;
  fr.seed = spec_.fault->seed;
  fr.flits_corrupted = injector->flits_corrupted();
  fr.link_packets_dropped = injector->link_packets_dropped();
  fr.link_words_dropped = injector->link_words_dropped();
  fr.router_stall_packets_dropped = injector->router_stall_packets_dropped();
  fr.router_stall_words_dropped = injector->router_stall_words_dropped();
  fr.config_requests_dropped = injector->config_requests_dropped();
  fr.config_requests_delayed = injector->config_requests_delayed();
  if (config::ConnectionManager* manager = soc_->manager()) {
    fr.config_ack_timeouts = manager->ack_timeouts();
    fr.config_write_retries = manager->writes_retried();
  }
  if (verify::Monitor* monitor = soc_->monitor()) {
    fr.monitor_fault_violations = monitor->fault_violations();
    fr.monitor_unexplained_violations = monitor->unexplained_violations();
    fr.monitor_corrupted_flits = monitor->fault_corrupted_flits();
    fr.monitor_lost_flits = monitor->fault_lost_flits();
    fr.monitor_lost_words = monitor->fault_lost_words();
    fr.gt_words_offered = monitor->gt_words_sent();
    fr.gt_words_delivered = monitor->gt_words_delivered();
    fr.gt_recovery_ratio =
        fr.gt_words_offered > 0
            ? static_cast<double>(fr.gt_words_delivered) /
                  static_cast<double>(fr.gt_words_offered)
            : 1.0;
  }
  fr.degradations = std::move(degradations);
  for (const fault::FaultInjector::Event& event : injector->events()) {
    fr.events.push_back(FaultEventRecord{event.cycle, event.kind, event.site});
  }
  fr.events_total = injector->events_total();
  result->fault = std::move(fr);
}

namespace {

/// Maps the fault injector's event-kind strings onto trace event codes.
std::uint16_t FaultTraceCode(const std::string& kind) {
  if (kind == "link-corrupt") return obs::kFaultCorrupt;
  if (kind == "link-drop") return obs::kFaultDrop;
  if (kind == "router-stall-drop") return obs::kFaultRouterFreeze;
  if (kind == "config-drop") return obs::kFaultConfigDrop;
  if (kind == "config-delay") return obs::kFaultConfigDelay;
  return obs::kFaultNiStall;
}

}  // namespace

Status ScenarioRunner::FinalizeObsIntoResult(ScenarioResult* result) {
  obs::ObsHub* hub = soc_->obs_hub();
  if (hub == nullptr) return OkStatus();
  // Mirror the recorded fault events into the trace (their site strings
  // stay in the result's fault.events; the trace carries cycle + kind).
  if (result->fault.has_value()) {
    for (std::size_t i = 0; i < result->fault->events.size(); ++i) {
      const FaultEventRecord& event = result->fault->events[i];
      hub->NoteFault(FaultTraceCode(event.kind), event.cycle,
                     static_cast<std::int64_t>(i), 0);
    }
  }
  soc_->FinalizeObs();
  if (spec_.obs.SamplingEnabled()) {
    result->obs_stats = hub->StatsSnapshot();
  }
  if (!hub->WriteTraceFile()) {
    return FailedPreconditionError("cannot write trace file '" +
                                   spec_.obs.trace_path + "'");
  }
  return OkStatus();
}

std::string ScenarioResult::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  // Fixed-duration documents keep schema_version 2 byte-for-byte; the
  // version moves to 3 exactly when the optional `convergence` sections
  // are present (opt-in `converge` runs).
  w.Key("schema_version").Int(convergence.has_value() ? 3 : 2);
  w.Key("scenario").String(spec.name);
  w.Key("topology").BeginObject();
  w.Key("kind").String(TopologyKindName(spec.topology));
  w.Key("dims").BeginArray();
  w.Int(spec.dim_a);
  if (spec.topology == TopologyKind::kMesh) w.Int(spec.dim_b);
  if (spec.topology != TopologyKind::kStar) w.Int(spec.nis_per_router);
  w.EndArray();
  w.Key("nis").Int(spec.NumNis());
  w.EndObject();
  w.Key("stu_slots").Int(spec.stu_slots);
  w.Key("net_mhz").Double(spec.net_mhz);
  w.Key("queue_words").Int(spec.queue_words);
  w.Key("seed").Int(static_cast<std::int64_t>(spec.seed));
  w.Key("warmup").Int(spec.warmup);
  w.Key("duration").Int(spec.TotalDuration());
  w.Key("cycles_run").Int(cycles_run);
  if (spec.Phased()) {
    w.Key("cfg_ni").Int(spec.cfg_ni);
    w.Key("phases").BeginArray();
    for (std::size_t k = 0; k < phases.size(); ++k) {
      const PhaseResult& phase = phases[k];
      w.BeginObject();
      w.Key("phase").Int(static_cast<std::int64_t>(k));
      w.Key("name").String(phase.name);
      w.Key("window_start").Int(phase.window_start);
      w.Key("duration").Int(phase.duration);
      w.Key("words_in_window").Int(phase.words_in_window);
      w.Key("throughput_wpc").Double(phase.throughput_wpc);
      w.Key("latency_count").Int(phase.latency_count);
      if (phase.latency_count > 0) {
        w.Key("latency_mean").Double(phase.latency_mean);
        w.Key("latency_p50").Double(phase.latency_p50);
        w.Key("latency_p95").Double(phase.latency_p95);
        w.Key("latency_p99").Double(phase.latency_p99);
      }
      if (phase.convergence.has_value()) {
        w.Key("convergence");
        stats_ctl::WriteConvergenceJson(w, *phase.convergence);
      }
      w.EndObject();
    }
    w.EndArray();
    w.Key("transitions").BeginArray();
    for (const TransitionResult& tr : transitions) {
      w.BeginObject();
      w.Key("into_phase").Int(tr.phase);
      w.Key("name").String(tr.phase_name);
      w.Key("start_cycle").Int(tr.start_cycle);
      w.Key("drain_cycles").Int(tr.drain_cycles);
      w.Key("config_cycles").Int(tr.config_cycles);
      w.Key("closes").Int(tr.closes);
      w.Key("opens").Int(tr.opens);
      w.Key("teardown_latency_max").Int(tr.teardown_latency_max);
      w.Key("setup_latency_max").Int(tr.setup_latency_max);
      w.Key("config_messages").Int(tr.config_messages);
      w.Key("slots_reclaimed").Int(tr.slots_reclaimed);
      w.Key("slots_allocated").Int(tr.slots_allocated);
      w.EndObject();
    }
    w.EndArray();
  }
  w.Key("flows").BeginArray();
  for (const FlowResult& flow : flows) {
    w.BeginObject();
    w.Key("pattern").String(flow.pattern);
    w.Key("group").Int(flow.group);
    w.Key("src").Int(flow.src);
    w.Key("dst").Int(flow.dst);
    w.Key("qos").String(flow.gt ? "gt" : "be");
    if (flow.gt) w.Key("gt_slots").Int(flow.gt_slots);
    w.Key("words_total").Int(flow.words_total);
    w.Key("words_in_window").Int(flow.words_in_window);
    w.Key("throughput_wpc").Double(flow.throughput_wpc);
    if (flow.pattern == PatternKindName(PatternKind::kMemory)) {
      w.Key("transactions").BeginObject();
      w.Key("issued").Int(flow.transactions_issued);
      w.Key("completed").Int(flow.transactions_completed);
      w.EndObject();
    }
    if (spec.Phased()) {
      w.Key("phase").Int(flow.phase);
      if (flow.persist) w.Key("persist").Bool(true);
      w.Key("phase_stats").BeginArray();
      for (const PhaseFlowStats& ps : flow.phase_stats) {
        w.BeginObject();
        w.Key("phase").Int(ps.phase);
        w.Key("words").Int(ps.words);
        w.Key("throughput_wpc").Double(ps.throughput_wpc);
        w.Key("latency_count").Int(ps.latency_count);
        if (ps.latency_count > 0) {
          w.Key("latency_mean").Double(ps.latency_mean);
          w.Key("latency_p50").Double(ps.latency_p50);
          w.Key("latency_p95").Double(ps.latency_p95);
          w.Key("latency_p99").Double(ps.latency_p99);
        }
        w.EndObject();
      }
      w.EndArray();
    }
    w.Key("latency");
    WriteLatency(w, flow.latency);
    w.EndObject();
  }
  w.EndArray();
  w.Key("aggregate").BeginObject();
  w.Key("words_in_window").Int(words_in_window);
  w.Key("throughput_wpc").Double(throughput_wpc);
  w.Key("gt_flits").Int(gt_flits);
  w.Key("be_flits").Int(be_flits);
  w.Key("payload_words_sent").Int(payload_words_sent);
  w.Key("credit_only_packets").Int(credit_only_packets);
  w.Key("credits_piggybacked").Int(credits_piggybacked);
  w.Key("idle_slots").Int(idle_slots);
  w.Key("gt_slots_unused").Int(gt_slots_unused);
  w.Key("slot_utilization").Double(slot_utilization);
  w.EndObject();
  // Latency histograms (DESIGN.md §13): flit latency per traffic class
  // (stream + video flows) and transaction round-trip latency (memory
  // flows), merged over the whole run from the flows' exact samples.
  {
    std::vector<double> all, gt, be, txn;
    for (const FlowResult& flow : flows) {
      if (flow.pattern == PatternKindName(PatternKind::kMemory)) {
        txn.insert(txn.end(), flow.latency_samples.begin(),
                   flow.latency_samples.end());
        continue;
      }
      all.insert(all.end(), flow.latency_samples.begin(),
                 flow.latency_samples.end());
      std::vector<double>& cls = flow.gt ? gt : be;
      cls.insert(cls.end(), flow.latency_samples.begin(),
                 flow.latency_samples.end());
    }
    w.Key("histograms").BeginObject();
    w.Key("flit_latency").BeginObject();
    w.Key("all");
    WriteHistogram(w, std::move(all));
    w.Key("gt");
    WriteHistogram(w, std::move(gt));
    w.Key("be");
    WriteHistogram(w, std::move(be));
    w.EndObject();
    w.Key("transaction_latency");
    WriteHistogram(w, std::move(txn));
    w.EndObject();
  }
  if (obs_stats.has_value()) {
    w.Key("stats");
    obs::WriteStatsJson(w, *obs_stats);
  }
  if (convergence.has_value()) {
    w.Key("convergence");
    stats_ctl::WriteConvergenceJson(w, *convergence);
  }
  if (fault.has_value()) {
    const FaultResult& f = *fault;
    w.Key("fault").BeginObject();
    w.Key("seed").Int(static_cast<std::int64_t>(f.seed));
    w.Key("flits_corrupted").Int(f.flits_corrupted);
    w.Key("link_packets_dropped").Int(f.link_packets_dropped);
    w.Key("link_words_dropped").Int(f.link_words_dropped);
    w.Key("router_stall_packets_dropped").Int(f.router_stall_packets_dropped);
    w.Key("router_stall_words_dropped").Int(f.router_stall_words_dropped);
    w.Key("config_requests_dropped").Int(f.config_requests_dropped);
    w.Key("config_requests_delayed").Int(f.config_requests_delayed);
    w.Key("config_ack_timeouts").Int(f.config_ack_timeouts);
    w.Key("config_write_retries").Int(f.config_write_retries);
    if (spec.verify) {
      w.Key("monitor").BeginObject();
      w.Key("fault_violations").Int(f.monitor_fault_violations);
      w.Key("unexplained_violations").Int(f.monitor_unexplained_violations);
      w.Key("corrupted_flits").Int(f.monitor_corrupted_flits);
      w.Key("lost_flits").Int(f.monitor_lost_flits);
      w.Key("lost_words").Int(f.monitor_lost_words);
      w.EndObject();
      w.Key("gt_words_offered").Int(f.gt_words_offered);
      w.Key("gt_words_delivered").Int(f.gt_words_delivered);
      w.Key("gt_recovery_ratio").Double(f.gt_recovery_ratio);
    }
    w.Key("degradations").BeginArray();
    for (const std::string& d : f.degradations) w.String(d);
    w.EndArray();
    w.Key("events").BeginArray();
    for (const FaultEventRecord& event : f.events) {
      w.BeginObject();
      w.Key("cycle").Int(event.cycle);
      w.Key("kind").String(event.kind);
      w.Key("site").String(event.site);
      w.EndObject();
    }
    w.EndArray();
    w.Key("events_total").Int(f.events_total);
    w.EndObject();
  }
  w.EndObject();
  return w.Take();
}

}  // namespace aethereal::scenario
