#include "scenario/runner.h"

#include <algorithm>

#include "scenario/wiring.h"
#include "topology/builders.h"
#include "util/check.h"
#include "util/json.h"

namespace aethereal::scenario {

namespace {

LatencySummary Summarize(const Stats& stats) {
  LatencySummary s;
  s.count = stats.count();
  if (!stats.empty()) {
    s.min = stats.Min();
    s.mean = stats.Mean();
    s.p99 = stats.Percentile(99);
    s.max = stats.Max();
  }
  return s;
}

void WriteLatency(JsonWriter& w, const LatencySummary& latency) {
  w.BeginObject();
  w.Key("count").Int(latency.count);
  if (latency.count > 0) {
    w.Key("min").Double(latency.min);
    w.Key("mean").Double(latency.mean);
    w.Key("p99").Double(latency.p99);
    w.Key("max").Double(latency.max);
  }
  w.EndObject();
}

/// Memory traffic uses the general transaction generator; translate the
/// scenario injection clauses into its pattern.
ip::TrafficPattern MemoryPattern(const TrafficSpec& traffic) {
  ip::TrafficPattern pattern;
  switch (traffic.inject) {
    case InjectKind::kPeriodic:
      pattern.kind = ip::TrafficPattern::Kind::kFixedPeriod;
      pattern.period = traffic.period;
      break;
    case InjectKind::kBernoulli:
      pattern.kind = ip::TrafficPattern::Kind::kBernoulli;
      pattern.rate = traffic.rate;
      break;
    case InjectKind::kClosedLoop:
      pattern.kind = ip::TrafficPattern::Kind::kClosedLoop;
      break;
    case InjectKind::kBursty:
      AETHEREAL_CHECK_MSG(false, "bursty memory traffic rejected at parse");
  }
  pattern.read_fraction = traffic.read_fraction;
  pattern.burst_words = traffic.mem_burst_words;
  return pattern;
}

}  // namespace

ScenarioRunner::ScenarioRunner(ScenarioSpec spec) : spec_(std::move(spec)) {}
ScenarioRunner::~ScenarioRunner() = default;

Status ScenarioRunner::BuildTopologyAndSoc(
    const std::vector<std::vector<Flow>>& flows_by_group) {
  // Channels per NI: one per flow endpoint, assigned in directive order
  // (this ordering is part of the scenario's deterministic identity).
  std::vector<int> channels(static_cast<std::size_t>(spec_.NumNis()), 0);
  for (const auto& flows : flows_by_group) {
    for (const Flow& flow : flows) {
      ++channels[static_cast<std::size_t>(flow.src)];
      ++channels[static_cast<std::size_t>(flow.dst)];
    }
  }

  topology::Topology topo;
  switch (spec_.topology) {
    case TopologyKind::kStar:
      topo = topology::BuildStar(spec_.dim_a).topology;
      break;
    case TopologyKind::kMesh:
      topo = topology::BuildMesh(spec_.dim_a, spec_.dim_b,
                                 spec_.nis_per_router)
                 .topology;
      break;
    case TopologyKind::kRing:
      topo = topology::BuildRing(spec_.dim_a, spec_.nis_per_router).topology;
      break;
  }
  AETHEREAL_CHECK(topo.NumNis() == spec_.NumNis());

  std::vector<core::NiKernelParams> ni_params;
  for (int count : channels) {
    // NIs no flow touches still get one (idle) channel: the NI kernel is
    // instantiated per NI regardless.
    ni_params.push_back(NiWithChannels(std::max(count, 1), spec_.queue_words,
                                       spec_.stu_slots, "ip"));
  }

  soc::SocOptions options;
  options.net_mhz = spec_.net_mhz;
  options.stu_slots = spec_.stu_slots;
  options.optimize_engine = spec_.optimize_engine;
  soc_ = std::make_unique<soc::Soc>(std::move(topo), std::move(ni_params),
                                    options);
  return OkStatus();
}

Status ScenarioRunner::OpenFlowConnection(const TrafficSpec& traffic,
                                          const Flow& flow, int src_connid,
                                          int dst_connid) {
  config::ChannelQos forward;
  forward.gt = traffic.gt;
  forward.gt_slots = traffic.gt_slots;
  forward.data_threshold = traffic.data_threshold;
  forward.credit_threshold = traffic.credit_threshold;
  // Stream flows send data one way; the reverse channel only returns
  // credits and stays best-effort. Memory flows carry responses back, so
  // a GT request direction gets a GT response direction too.
  config::ChannelQos reverse;
  if (traffic.pattern == PatternKind::kMemory) reverse = forward;
  auto handle =
      soc_->OpenConnection(tdm::GlobalChannel{flow.src, src_connid},
                           tdm::GlobalChannel{flow.dst, dst_connid}, forward,
                           reverse);
  if (!handle.ok()) {
    return Status(handle.status().code(),
                  std::string(PatternKindName(traffic.pattern)) + " flow " +
                      std::to_string(flow.src) + "->" +
                      std::to_string(flow.dst) + ": " +
                      handle.status().message());
  }
  return OkStatus();
}

Status ScenarioRunner::Build() {
  if (built_) return OkStatus();

  Rng rng(spec_.seed);
  std::vector<std::vector<Flow>> flows_by_group;
  for (const TrafficSpec& traffic : spec_.traffic) {
    auto flows = ExpandPattern(spec_, traffic, rng);
    if (!flows.ok()) return flows.status();
    flows_by_group.push_back(std::move(*flows));
  }

  if (Status s = BuildTopologyAndSoc(flows_by_group); !s.ok()) return s;

  // Assign connids in directive order (mirrors the channel counting).
  std::vector<int> next_connid(static_cast<std::size_t>(spec_.NumNis()), 0);
  struct Wired {
    Flow flow;
    int src_connid;
    int dst_connid;
  };
  std::vector<std::vector<Wired>> wired_by_group;
  for (std::size_t g = 0; g < flows_by_group.size(); ++g) {
    std::vector<Wired> wired;
    for (const Flow& flow : flows_by_group[g]) {
      Wired w{flow, next_connid[static_cast<std::size_t>(flow.src)]++,
              next_connid[static_cast<std::size_t>(flow.dst)]++};
      if (Status s = OpenFlowConnection(spec_.traffic[g], flow, w.src_connid,
                                        w.dst_connid);
          !s.ok()) {
        return s;
      }
      wired.push_back(w);
    }
    wired_by_group.push_back(std::move(wired));
  }

  // Instantiate the workload IPs. Per-flow RNG seeds are drawn from the
  // master stream in directive order, after all pattern expansions.
  for (std::size_t g = 0; g < wired_by_group.size(); ++g) {
    const TrafficSpec& traffic = spec_.traffic[g];
    const std::vector<Wired>& wired = wired_by_group[g];
    const std::string tag = "g" + std::to_string(g);
    if (traffic.pattern == PatternKind::kVideo) {
      VideoChain chain;
      chain.group = g;
      chain.chain = traffic.nis;
      const Wired& first = wired.front();
      const Wired& last = wired.back();
      chain.source = std::make_unique<PatternSource>(
          tag + "_video_src", soc_->port(first.flow.src, 0), first.src_connid,
          traffic, rng.Next());
      soc_->RegisterOnPort(chain.source.get(), first.flow.src, 0);
      for (std::size_t hop = 0; hop + 1 < wired.size(); ++hop) {
        const NiId at = wired[hop].flow.dst;
        auto relay = std::make_unique<Relay>(
            tag + "_relay" + std::to_string(hop), soc_->port(at, 0),
            wired[hop].dst_connid, wired[hop + 1].src_connid);
        soc_->RegisterOnPort(relay.get(), at, 0);
        chain.relays.push_back(std::move(relay));
      }
      chain.consumer = std::make_unique<ip::StreamConsumer>(
          tag + "_video_sink", soc_->port(last.flow.dst, 0), last.dst_connid,
          /*drain_per_cycle=*/1, /*timestamp_mode=*/true);
      soc_->RegisterOnPort(chain.consumer.get(), last.flow.dst, 0);
      video_chains_.push_back(std::move(chain));
    } else if (traffic.pattern == PatternKind::kMemory) {
      const Wired& w = wired.front();
      MemoryFlow mem;
      mem.group = g;
      mem.flow = w.flow;
      mem.master_shell = std::make_unique<shells::MasterShell>(
          tag + "_master_shell", soc_->port(w.flow.src, 0), w.src_connid);
      mem.master = std::make_unique<ip::TrafficGenMaster>(
          tag + "_master", mem.master_shell.get(), MemoryPattern(traffic),
          rng.Next());
      mem.slave_shell = std::make_unique<shells::SlaveShell>(
          tag + "_slave_shell", soc_->port(w.flow.dst, 0), w.dst_connid);
      mem.memory = std::make_unique<ip::MemorySlave>(
          tag + "_memory", mem.slave_shell.get(), /*base=*/0,
          /*size_words=*/1024);
      soc_->RegisterOnPort(mem.master_shell.get(), w.flow.src, 0);
      soc_->RegisterOnPort(mem.master.get(), w.flow.src, 0);
      soc_->RegisterOnPort(mem.slave_shell.get(), w.flow.dst, 0);
      soc_->RegisterOnPort(mem.memory.get(), w.flow.dst, 0);
      memory_flows_.push_back(std::move(mem));
    } else {
      for (std::size_t f = 0; f < wired.size(); ++f) {
        const Wired& w = wired[f];
        StreamFlow stream;
        stream.group = g;
        stream.flow = w.flow;
        const std::string label = tag + "f" + std::to_string(f);
        stream.source = std::make_unique<PatternSource>(
            label + "_src", soc_->port(w.flow.src, 0), w.src_connid, traffic,
            rng.Next());
        stream.consumer = std::make_unique<ip::StreamConsumer>(
            label + "_sink", soc_->port(w.flow.dst, 0), w.dst_connid,
            /*drain_per_cycle=*/kFlitWords, /*timestamp_mode=*/true);
        soc_->RegisterOnPort(stream.source.get(), w.flow.src, 0);
        soc_->RegisterOnPort(stream.consumer.get(), w.flow.dst, 0);
        stream_flows_.push_back(std::move(stream));
      }
    }
  }

  built_ = true;
  return OkStatus();
}

Result<ScenarioResult> ScenarioRunner::Run() {
  AETHEREAL_CHECK_MSG(!ran_, "ScenarioRunner::Run is single-shot");
  if (Status s = Build(); !s.ok()) return s;
  ran_ = true;

  soc_->RunCycles(spec_.warmup);

  // Measurement-window baselines (latency stats stay cumulative — they
  // are summaries of exact integer samples either way).
  std::vector<std::int64_t> stream0, video0, mem0;
  for (const StreamFlow& f : stream_flows_) {
    stream0.push_back(f.consumer->words_read());
  }
  for (const VideoChain& c : video_chains_) {
    video0.push_back(c.consumer->words_read());
  }
  for (const MemoryFlow& m : memory_flows_) {
    mem0.push_back(m.master->completed());
  }

  soc_->RunCycles(spec_.duration);

  ScenarioResult result;
  result.spec = spec_;
  result.cycles_run = soc_->net_clock()->cycles();

  // Flow results, grouped back into directive order.
  std::size_t si = 0, vi = 0, mi = 0;
  for (std::size_t g = 0; g < spec_.traffic.size(); ++g) {
    const TrafficSpec& traffic = spec_.traffic[g];
    auto base = [&](const TrafficSpec& t) {
      FlowResult r;
      r.pattern = PatternKindName(t.pattern);
      r.group = static_cast<int>(g);
      r.gt = t.gt;
      r.gt_slots = t.gt_slots;
      return r;
    };
    if (traffic.pattern == PatternKind::kVideo) {
      const VideoChain& c = video_chains_[vi];
      FlowResult r = base(traffic);
      r.src = c.chain.front();
      r.dst = c.chain.back();
      r.words_total = c.consumer->words_read();
      r.words_in_window = r.words_total - video0[vi];
      r.latency = Summarize(c.consumer->latency());
      result.flows.push_back(std::move(r));
      ++vi;
    } else if (traffic.pattern == PatternKind::kMemory) {
      const MemoryFlow& m = memory_flows_[mi];
      FlowResult r = base(traffic);
      r.src = m.flow.src;
      r.dst = m.flow.dst;
      r.transactions_issued = m.master->issued();
      r.transactions_completed = m.master->completed();
      r.words_total = r.transactions_completed * traffic.mem_burst_words;
      r.words_in_window =
          (r.transactions_completed - mem0[mi]) * traffic.mem_burst_words;
      r.latency = Summarize(m.master->latency());
      result.flows.push_back(std::move(r));
      ++mi;
    } else {
      while (si < stream_flows_.size() && stream_flows_[si].group == g) {
        const StreamFlow& f = stream_flows_[si];
        FlowResult r = base(traffic);
        r.src = f.flow.src;
        r.dst = f.flow.dst;
        r.words_total = f.consumer->words_read();
        r.words_in_window = r.words_total - stream0[si];
        r.latency = Summarize(f.consumer->latency());
        result.flows.push_back(std::move(r));
        ++si;
      }
    }
  }
  for (FlowResult& r : result.flows) {
    r.throughput_wpc =
        static_cast<double>(r.words_in_window) / spec_.duration;
    result.words_in_window += r.words_in_window;
  }
  result.throughput_wpc =
      static_cast<double>(result.words_in_window) / spec_.duration;

  const auto num_nis = static_cast<NiId>(spec_.NumNis());
  for (NiId ni = 0; ni < num_nis; ++ni) {
    const core::NiKernelStats& stats = soc_->ni(ni)->stats();
    result.gt_flits += stats.gt_flits;
    result.be_flits += stats.be_flits;
    result.payload_words_sent += stats.payload_words_sent;
    result.credit_only_packets += stats.credit_only_packets;
    result.credits_piggybacked += stats.credits_piggybacked;
    result.idle_slots += stats.idle_slots;
    result.gt_slots_unused += stats.gt_slots_unused;
  }
  // The NI kernel accounts a slot at every cycle divisible by kFlitWords
  // starting at cycle 0, hence the ceiling division.
  const std::int64_t slot_opportunities =
      static_cast<std::int64_t>(num_nis) *
      ((result.cycles_run + kFlitWords - 1) / kFlitWords);
  result.slot_utilization =
      slot_opportunities > 0
          ? 1.0 - static_cast<double>(result.idle_slots) / slot_opportunities
          : 0.0;
  return result;
}

std::string ScenarioResult::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("scenario").String(spec.name);
  w.Key("topology").BeginObject();
  w.Key("kind").String(TopologyKindName(spec.topology));
  w.Key("dims").BeginArray();
  w.Int(spec.dim_a);
  if (spec.topology == TopologyKind::kMesh) w.Int(spec.dim_b);
  if (spec.topology != TopologyKind::kStar) w.Int(spec.nis_per_router);
  w.EndArray();
  w.Key("nis").Int(spec.NumNis());
  w.EndObject();
  w.Key("stu_slots").Int(spec.stu_slots);
  w.Key("net_mhz").Double(spec.net_mhz);
  w.Key("queue_words").Int(spec.queue_words);
  w.Key("seed").Int(static_cast<std::int64_t>(spec.seed));
  w.Key("warmup").Int(spec.warmup);
  w.Key("duration").Int(spec.duration);
  w.Key("cycles_run").Int(cycles_run);
  w.Key("flows").BeginArray();
  for (const FlowResult& flow : flows) {
    w.BeginObject();
    w.Key("pattern").String(flow.pattern);
    w.Key("group").Int(flow.group);
    w.Key("src").Int(flow.src);
    w.Key("dst").Int(flow.dst);
    w.Key("qos").String(flow.gt ? "gt" : "be");
    if (flow.gt) w.Key("gt_slots").Int(flow.gt_slots);
    w.Key("words_total").Int(flow.words_total);
    w.Key("words_in_window").Int(flow.words_in_window);
    w.Key("throughput_wpc").Double(flow.throughput_wpc);
    if (flow.pattern == PatternKindName(PatternKind::kMemory)) {
      w.Key("transactions").BeginObject();
      w.Key("issued").Int(flow.transactions_issued);
      w.Key("completed").Int(flow.transactions_completed);
      w.EndObject();
    }
    w.Key("latency");
    WriteLatency(w, flow.latency);
    w.EndObject();
  }
  w.EndArray();
  w.Key("aggregate").BeginObject();
  w.Key("words_in_window").Int(words_in_window);
  w.Key("throughput_wpc").Double(throughput_wpc);
  w.Key("gt_flits").Int(gt_flits);
  w.Key("be_flits").Int(be_flits);
  w.Key("payload_words_sent").Int(payload_words_sent);
  w.Key("credit_only_packets").Int(credit_only_packets);
  w.Key("credits_piggybacked").Int(credits_piggybacked);
  w.Key("idle_slots").Int(idle_slots);
  w.Key("gt_slots_unused").Int(gt_slots_unused);
  w.Key("slot_utilization").Double(slot_utilization);
  w.EndObject();
  w.EndObject();
  return w.Take();
}

}  // namespace aethereal::scenario
