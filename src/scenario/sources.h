// Workload IP modules of the scenario layer.
//
// PatternSource drives one point-to-point channel with a configurable
// injection process (periodic, Bernoulli, bursty on/off), stamping every
// word with its emission cycle so the consumer end measures end-to-end
// latency. Relay is the intermediate stage of a video-style chain: it
// forwards words between two channels of the same NI port, preserving the
// timestamps so the chain's latency is measured end to end.
//
// Both modules follow the park/wake discipline of ip/stream.h, so runs are
// bit-identical on the optimized and naive engines.
#ifndef AETHEREAL_SCENARIO_SOURCES_H
#define AETHEREAL_SCENARIO_SOURCES_H

#include <string>

#include "core/ni_kernel.h"
#include "scenario/spec.h"
#include "sim/kernel.h"
#include "util/rng.h"
#include "util/types.h"

namespace aethereal::scenario {

class PatternSource : public sim::Module {
 public:
  /// Emits timestamped words on `connid` following the injection process
  /// of `traffic` (kPeriodic / kBernoulli / kBursty). The seeded RNG
  /// provides the Bernoulli gaps and a per-flow phase offset so flows of
  /// one pattern do not inject in lockstep. With `start_active` false the
  /// source sits silent until Activate() — phased scenarios create every
  /// phase's sources up front and switch them on as their phase begins.
  PatternSource(std::string name, core::NiPort* port, int connid,
                const TrafficSpec& traffic, std::uint64_t seed,
                bool start_active = true);

  /// Starts injecting: the first emission happens at `now` plus the
  /// constructor-drawn phase offset. Callable between cycles only.
  void Activate(Cycle now);

  /// Stops injecting immediately; pending backlog is discarded so
  /// words_written() is final as soon as this returns.
  void Deactivate();

  bool active() const { return active_; }

  std::int64_t words_written() const { return words_written_; }
  std::int64_t stall_cycles() const { return stall_cycles_; }

  void Evaluate() override;

 private:
  void ScheduleNext(Cycle now);

  core::NiPort* port_;
  int connid_;
  InjectKind inject_;
  std::int64_t period_;
  double rate_;
  std::int64_t burst_words_;
  std::int64_t gap_cycles_;
  Rng rng_;
  bool active_ = true;
  Cycle initial_offset_ = 0;  // constructor-drawn first-emission offset
  std::int64_t backlog_ = 0;
  Cycle next_emit_ = 0;
  std::int64_t words_written_ = 0;
  std::int64_t stall_cycles_ = 0;
};

/// Forwards words from one channel to another on the same NI port, one
/// word per cycle (a pixel-processing stage whose transform keeps the
/// latency-measurement payload intact).
class Relay : public sim::Module {
 public:
  Relay(std::string name, core::NiPort* port, int in_connid, int out_connid);

  std::int64_t words_relayed() const { return words_relayed_; }

  void Evaluate() override;

 private:
  core::NiPort* port_;
  int in_connid_;
  int out_connid_;
  std::int64_t words_relayed_ = 0;
};

}  // namespace aethereal::scenario

#endif  // AETHEREAL_SCENARIO_SOURCES_H
