#include "scenario/sources.h"

#include <algorithm>

#include "util/check.h"

namespace aethereal::scenario {

PatternSource::PatternSource(std::string name, core::NiPort* port, int connid,
                             const TrafficSpec& traffic, std::uint64_t seed,
                             bool start_active)
    : sim::Module(std::move(name)),
      port_(port),
      connid_(connid),
      inject_(traffic.inject),
      period_(traffic.period),
      rate_(traffic.rate),
      burst_words_(traffic.burst_words),
      gap_cycles_(traffic.gap_cycles),
      rng_(seed),
      active_(start_active) {
  AETHEREAL_CHECK(port != nullptr);
  AETHEREAL_CHECK(inject_ != InjectKind::kClosedLoop);
  SetDefaultCommitOnly();  // no registered state, no Commit override
  // Seeded phase offset: flows of one pattern must not inject in lockstep,
  // or the arbiter would see an artificial synchronized burst every period.
  switch (inject_) {
    case InjectKind::kPeriodic:
      initial_offset_ = static_cast<Cycle>(
          rng_.NextBelow(static_cast<std::uint64_t>(period_)));
      break;
    case InjectKind::kBernoulli:
      initial_offset_ = rng_.NextGeometric(rate_);
      break;
    case InjectKind::kBursty:
      initial_offset_ = static_cast<Cycle>(rng_.NextBelow(
          static_cast<std::uint64_t>(burst_words_ + gap_cycles_)));
      break;
    case InjectKind::kClosedLoop:
      break;
  }
  next_emit_ = initial_offset_;
}

void PatternSource::Activate(Cycle now) {
  active_ = true;
  backlog_ = 0;
  // Same seeded offset, rebased to the activation instant, so a phase's
  // flows fan out over the period exactly like a run that started here.
  next_emit_ = now + initial_offset_;
  Wake();
}

void PatternSource::Deactivate() {
  active_ = false;
  backlog_ = 0;
}

void PatternSource::ScheduleNext(Cycle now) {
  switch (inject_) {
    case InjectKind::kPeriodic:
      next_emit_ = now + period_;
      break;
    case InjectKind::kBernoulli:
      next_emit_ = now + 1 + rng_.NextGeometric(rate_);
      break;
    case InjectKind::kBursty:
      // The burst occupies burst_words_ cycles on the port, then the line
      // goes idle for gap_cycles_.
      next_emit_ = now + burst_words_ + gap_cycles_;
      break;
    case InjectKind::kClosedLoop:
      break;
  }
}

void PatternSource::Evaluate() {
  if (!active_) {
    Park();  // silent until Activate() wakes us
    return;
  }
  const Cycle now = CycleCount();
  if (now >= next_emit_) {
    backlog_ += inject_ == InjectKind::kBursty ? burst_words_ : 1;
    ScheduleNext(now);
  }
  // The port is a 32-bit interface: at most one word per cycle.
  if (backlog_ > 0) {
    if (port_->CanWrite(connid_)) {
      port_->Write(connid_, static_cast<Word>(now));
      --backlog_;
      ++words_written_;
    } else {
      ++stall_cycles_;
    }
  } else if (next_emit_ > now) {
    // Nothing due until the next injection event: sleep through the gap.
    // (A full source queue keeps us awake — space frees asynchronously.)
    ParkUntil(next_emit_);
  }
}

Relay::Relay(std::string name, core::NiPort* port, int in_connid,
             int out_connid)
    : sim::Module(std::move(name)),
      port_(port),
      in_connid_(in_connid),
      out_connid_(out_connid) {
  AETHEREAL_CHECK(port != nullptr);
  AETHEREAL_CHECK(in_connid != out_connid);
  SetDefaultCommitOnly();  // no registered state, no Commit override
  // Park on an empty input queue; deliveries wake us in time.
  port->WakeOnDelivery(in_connid, this);
}

void Relay::Evaluate() {
  if (port_->ReadAvailable(in_connid_) == 0) {
    Park();  // empty input: sleep until the next delivery
    return;
  }
  if (!port_->CanWrite(out_connid_)) return;  // output full: retry next cycle
  port_->Write(out_connid_, port_->Read(in_connid_));
  ++words_relayed_;
}

}  // namespace aethereal::scenario
