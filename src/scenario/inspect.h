// Scenario inspection: expand a parsed spec into the SoC it implies —
// topology, per-NI channel provisioning, every concrete flow with its
// connids — without running a single cycle. Shared by `noc_sim
// --validate/--print` and `noc_sweep --validate` so grid validation stays
// fast and both CLIs report identical diagnostics.
//
// The expansion mirrors ScenarioRunner::Build exactly (same RNG draw
// order, same connid assignment); with `wire` it additionally performs
// the full Build so resource errors (slot-table exhaustion, queue
// budget) surface too.
#ifndef AETHEREAL_SCENARIO_INSPECT_H
#define AETHEREAL_SCENARIO_INSPECT_H

#include <string>
#include <vector>

#include "scenario/patterns.h"
#include "scenario/spec.h"
#include "util/status.h"

namespace aethereal::scenario {

/// One concrete flow of the expanded scenario.
struct InspectedFlow {
  int group = 0;  // owning traffic-directive index
  Flow flow;
  int src_connid = 0;
  int dst_connid = 0;
};

struct Inspection {
  ScenarioSpec spec;
  int num_nis = 0;
  std::vector<int> channels_per_ni;  // flow endpoints per NI (min 1 wired)
  std::vector<InspectedFlow> flows;  // directive order, then pattern order

  /// Human-readable dump of the expanded SoC (the `noc_sim --print`
  /// output).
  std::string Describe() const;
};

/// Expands every traffic directive of `spec`. With `wire`, also builds
/// the full SoC (ScenarioRunner::Build) so wiring-time errors are caught;
/// without it, only pattern/structure errors are (cheap enough for large
/// grids).
Result<Inspection> InspectScenario(const ScenarioSpec& spec, bool wire);

}  // namespace aethereal::scenario

#endif  // AETHEREAL_SCENARIO_INSPECT_H
