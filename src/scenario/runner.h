// ScenarioRunner: turns a parsed ScenarioSpec into a fully wired SoC —
// topology, NI channel provisioning, per-connection QoS, workload IPs —
// runs it, and collects per-flow latency/throughput plus NI-level
// slot-utilization statistics into a deterministic result.
//
// The result JSON contains only simulation-semantic quantities (no wall
// clock, no engine identifier), so the same spec and seed produce the
// byte-identical document on the optimized and the naive engine, on every
// compiler and build type — the property the golden-results regression
// test (tests/scenario_golden_test.cpp) locks down.
#ifndef AETHEREAL_SCENARIO_RUNNER_H
#define AETHEREAL_SCENARIO_RUNNER_H

#include <memory>
#include <string>
#include <vector>

#include "ip/memory_slave.h"
#include "ip/stream.h"
#include "ip/traffic_gen.h"
#include "scenario/patterns.h"
#include "scenario/sources.h"
#include "scenario/spec.h"
#include "shells/master_shell.h"
#include "shells/slave_shell.h"
#include "soc/soc.h"
#include "util/status.h"
#include "verify/bounds.h"

namespace aethereal::scenario {

/// Latency summary of one flow. All fields derive from exact integer
/// cycle samples through single IEEE operations, so they are reproducible
/// bit-for-bit across compilers (see util/json.h).
struct LatencySummary {
  std::int64_t count = 0;
  double min = 0;
  double mean = 0;
  double p99 = 0;
  double max = 0;
};

/// Result of one flow (a stream, a whole video chain, or a memory
/// master/slave relationship).
struct FlowResult {
  std::string pattern;        // PatternKindName of the owning directive
  int group = 0;              // index of the owning traffic directive
  NiId src = kInvalidId;      // chain front for video
  NiId dst = kInvalidId;      // chain back for video
  bool gt = false;
  int gt_slots = 0;

  std::int64_t words_total = 0;      // delivered over the whole run
  std::int64_t words_in_window = 0;  // delivered during `duration`
  double throughput_wpc = 0;         // words_in_window / duration

  /// Stream flows: per-word source->sink latency. Memory flows: per-
  /// transaction round-trip latency. Cumulative over the whole run.
  LatencySummary latency;

  // Memory flows only.
  std::int64_t transactions_issued = 0;
  std::int64_t transactions_completed = 0;
};

struct ScenarioResult {
  ScenarioSpec spec;
  Cycle cycles_run = 0;
  std::vector<FlowResult> flows;

  // Aggregates over all flows / NIs, whole run.
  std::int64_t words_in_window = 0;
  double throughput_wpc = 0;
  std::int64_t gt_flits = 0;
  std::int64_t be_flits = 0;
  std::int64_t payload_words_sent = 0;
  std::int64_t credit_only_packets = 0;
  std::int64_t credits_piggybacked = 0;
  std::int64_t idle_slots = 0;
  std::int64_t gt_slots_unused = 0;
  /// Fraction of (NI, slot) opportunities that carried traffic.
  double slot_utilization = 0;

  /// Deterministic JSON encoding (the golden-test format).
  std::string ToJson() const;
};

/// Analytical guarantees of one GT flow hop, as wired by the runner
/// (streams and memory request directions are single hops; a video chain
/// contributes one entry per chain hop).
struct GtFlowBound {
  int group = 0;
  NiId src = kInvalidId;
  NiId dst = kInvalidId;
  verify::GtBound bound;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioSpec spec);
  ~ScenarioRunner();

  /// Instantiates the SoC, opens every connection, and creates the
  /// workload IPs. Idempotent; returns the first wiring error (pattern
  /// constraint violation, slot exhaustion, ...).
  Status Build();

  /// Build() + warmup + measured window; collects the result. Callable
  /// once per runner. With spec().verify set, a run that violates any
  /// runtime invariant or analytical GT bound fails with
  /// kVerificationFailed.
  Result<ScenarioResult> Run();

  /// Build() + the analytical bounds of every GT flow hop, derived from
  /// the allocator's slot tables (verify/bounds.h). Also the noc_verify
  /// --bounds table.
  Result<std::vector<GtFlowBound>> ComputeGtBounds();

  soc::Soc* soc() { return soc_.get(); }
  const ScenarioSpec& spec() const { return spec_; }

 private:
  struct StreamFlow {
    std::size_t group;
    Flow flow;
    int src_connid = 0;
    std::unique_ptr<PatternSource> source;
    std::unique_ptr<ip::StreamConsumer> consumer;
  };
  struct VideoChain {
    std::size_t group;
    std::vector<NiId> chain;
    std::vector<Flow> hop_flows;      // consecutive chain hops
    std::vector<int> hop_src_connids;  // source connid of each hop
    std::unique_ptr<PatternSource> source;
    std::vector<std::unique_ptr<Relay>> relays;
    std::unique_ptr<ip::StreamConsumer> consumer;
  };
  struct MemoryFlow {
    std::size_t group;
    Flow flow;
    int src_connid = 0;
    std::unique_ptr<shells::MasterShell> master_shell;
    std::unique_ptr<ip::TrafficGenMaster> master;
    std::unique_ptr<shells::SlaveShell> slave_shell;
    std::unique_ptr<ip::MemorySlave> memory;
  };

  Status BuildTopologyAndSoc(
      const std::vector<std::vector<Flow>>& flows_by_group);
  Status OpenFlowConnection(const TrafficSpec& traffic, const Flow& flow,
                            int src_connid, int dst_connid);
  GtFlowBound BoundOfHop(std::size_t group, const Flow& flow,
                         int src_connid);
  /// The verify-mode epilogue: monitor violations plus the analytical
  /// throughput/latency checks, formatted into `problems`.
  void CheckGuarantees(const std::vector<std::int64_t>& stream_admitted0,
                       const std::vector<std::int64_t>& video_admitted0,
                       const std::vector<std::int64_t>& stream_delivered0,
                       const std::vector<std::int64_t>& video_delivered0,
                       std::vector<std::string>* problems);

  ScenarioSpec spec_;
  bool built_ = false;
  bool ran_ = false;
  std::unique_ptr<soc::Soc> soc_;
  std::vector<StreamFlow> stream_flows_;
  std::vector<VideoChain> video_chains_;
  std::vector<MemoryFlow> memory_flows_;
};

}  // namespace aethereal::scenario

#endif  // AETHEREAL_SCENARIO_RUNNER_H
