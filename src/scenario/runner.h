// ScenarioRunner: turns a parsed ScenarioSpec into a fully wired SoC —
// topology, NI channel provisioning, per-connection QoS, workload IPs —
// runs it, and collects per-flow latency/throughput plus NI-level
// slot-utilization statistics into a deterministic result.
//
// The result JSON contains only simulation-semantic quantities (no wall
// clock, no engine identifier), so the same spec and seed produce the
// byte-identical document on the optimized and the naive engine, on every
// compiler and build type — the property the golden-results regression
// test (tests/scenario_golden_test.cpp) locks down.
#ifndef AETHEREAL_SCENARIO_RUNNER_H
#define AETHEREAL_SCENARIO_RUNNER_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "config/script.h"
#include "ip/memory_slave.h"
#include "obs/hub.h"
#include "ip/stream.h"
#include "ip/traffic_gen.h"
#include "scenario/patterns.h"
#include "scenario/sources.h"
#include "scenario/spec.h"
#include "shells/master_shell.h"
#include "shells/slave_shell.h"
#include "soc/soc.h"
#include "stats_ctl/convergence.h"
#include "util/status.h"
#include "verify/bounds.h"

namespace aethereal::scenario {

/// Latency summary of one flow. All fields derive from exact integer
/// cycle samples through single IEEE operations, so they are reproducible
/// bit-for-bit across compilers (see util/json.h).
struct LatencySummary {
  std::int64_t count = 0;
  double min = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

/// One phase window's slice of a flow's statistics (phased scenarios).
/// The Stats objects keep their samples in insertion order, so per-phase
/// percentiles are exact — computed over the [window-start, window-end)
/// sample range (Stats::RangePercentile); the whole-run summary stays on
/// the owning FlowResult.
struct PhaseFlowStats {
  int phase = 0;
  std::int64_t words = 0;         // delivered inside the phase window
  double throughput_wpc = 0;      // words / phase duration
  std::int64_t latency_count = 0;
  double latency_mean = 0;
  double latency_p50 = 0;
  double latency_p95 = 0;
  double latency_p99 = 0;
};

/// Result of one flow (a stream, a whole video chain, or a memory
/// master/slave relationship).
struct FlowResult {
  std::string pattern;        // PatternKindName of the owning directive
  int group = 0;              // index of the owning traffic directive
  NiId src = kInvalidId;      // chain front for video
  NiId dst = kInvalidId;      // chain back for video
  bool gt = false;
  int gt_slots = 0;

  std::int64_t words_total = 0;      // delivered over the whole run
  std::int64_t words_in_window = 0;  // delivered during measured windows
  double throughput_wpc = 0;         // words_in_window / measured cycles

  /// Stream flows: per-word source->sink latency. Memory flows: per-
  /// transaction round-trip latency. Cumulative over the whole run.
  LatencySummary latency;

  /// The raw samples behind `latency`, in insertion order — the exact
  /// population the result's histograms and the sweep's merged class
  /// percentiles derive from (integer cycle counts stored as doubles).
  std::vector<double> latency_samples;

  // Memory flows only.
  std::int64_t transactions_issued = 0;
  std::int64_t transactions_completed = 0;

  // Phased scenarios only.
  int phase = -1;       // owning phase index
  bool persist = false;
  std::vector<PhaseFlowStats> phase_stats;  // one entry per active window
};

/// Reconfiguration cost of entering one phase — the runtime-configuration
/// costs the paper reports (§3, Fig. 9), measured on the NoC itself.
struct TransitionResult {
  int phase = 0;                 // the phase being entered
  std::string phase_name;
  Cycle start_cycle = 0;         // cycle the transition began
  Cycle drain_cycles = 0;        // outgoing traffic drain (0 for phase 0)
  Cycle config_cycles = 0;       // Fig. 9 open/close sequencing
  int closes = 0;
  int opens = 0;
  Cycle teardown_latency_max = 0;  // worst single close, request->done
  Cycle setup_latency_max = 0;     // worst single open, request->done
  std::int64_t config_messages = 0;  // register writes (local + via NoC)
  int slots_reclaimed = 0;       // TDM slots freed by the closes
  int slots_allocated = 0;       // TDM slots reserved by the opens
};

/// One phase window of a phased run. The latency fields summarize the
/// samples of every flow active in the window, merged — exact, from the
/// flows' insertion-order sample ranges.
struct PhaseResult {
  std::string name;
  Cycle window_start = 0;        // first measured cycle of the window
  Cycle duration = 0;            // cycles actually measured (may exceed the
                                 // declared duration in convergence mode)
  std::int64_t words_in_window = 0;  // all flows, this window
  double throughput_wpc = 0;
  std::int64_t latency_count = 0;
  double latency_mean = 0;
  double latency_p50 = 0;
  double latency_p95 = 0;
  double latency_p99 = 0;

  /// Per-window stop-on-convergence outcome; present exactly when the spec
  /// enables convergence mode (phases converge independently — their
  /// traffic mixes differ, so their sample streams are never pooled).
  std::optional<stats_ctl::ConvergenceOutcome> convergence;
};

/// One recorded fault event (the injector caps the list; events_total
/// keeps counting).
struct FaultEventRecord {
  Cycle cycle = 0;
  std::string kind;
  std::string site;
};

/// Graceful-degradation accounting of a fault-injected run (DESIGN.md
/// §12): what was injected, what the resilience machinery recovered, and
/// which guarantee shortfalls are explained by the armed fault model.
/// Present in the result exactly when the spec carries an Enabled() fault
/// block.
struct FaultResult {
  std::uint64_t seed = 0;

  // Injection ledger (from the FaultInjector).
  std::int64_t flits_corrupted = 0;
  std::int64_t link_packets_dropped = 0;
  std::int64_t link_words_dropped = 0;
  std::int64_t router_stall_packets_dropped = 0;
  std::int64_t router_stall_words_dropped = 0;
  std::int64_t config_requests_dropped = 0;
  std::int64_t config_requests_delayed = 0;

  // Recovery ledger (connection manager retry machinery).
  std::int64_t config_ack_timeouts = 0;
  std::int64_t config_write_retries = 0;

  // Verification classification (zeros when verify is off).
  std::int64_t monitor_fault_violations = 0;
  std::int64_t monitor_unexplained_violations = 0;
  std::int64_t monitor_corrupted_flits = 0;
  std::int64_t monitor_lost_flits = 0;
  std::int64_t monitor_lost_words = 0;

  // Delivered-vs-offered GT words over the whole run (monitor-observed;
  // zeros when verify is off). recovery_ratio is 1 when nothing offered.
  std::int64_t gt_words_offered = 0;
  std::int64_t gt_words_delivered = 0;
  double gt_recovery_ratio = 1.0;

  /// Guarantee shortfalls demoted from hard failures because the armed
  /// fault model explains them (fault-induced monitor violations, GT
  /// floors missed under drop/stall faults).
  std::vector<std::string> degradations;

  std::vector<FaultEventRecord> events;
  std::int64_t events_total = 0;
};

struct ScenarioResult {
  ScenarioSpec spec;
  Cycle cycles_run = 0;
  std::vector<FlowResult> flows;

  // Phased scenarios only (empty otherwise).
  std::vector<PhaseResult> phases;
  std::vector<TransitionResult> transitions;

  // Aggregates over all flows / NIs, whole run.
  std::int64_t words_in_window = 0;
  double throughput_wpc = 0;
  std::int64_t gt_flits = 0;
  std::int64_t be_flits = 0;
  std::int64_t payload_words_sent = 0;
  std::int64_t credit_only_packets = 0;
  std::int64_t credits_piggybacked = 0;
  std::int64_t idle_slots = 0;
  std::int64_t gt_slots_unused = 0;
  /// Fraction of (NI, slot) opportunities that carried traffic.
  double slot_utilization = 0;

  /// Fault-injection accounting; present exactly when the spec has an
  /// Enabled() fault block (a zero-rate block stays invisible here so the
  /// byte-identity property of the kill switch holds).
  std::optional<FaultResult> fault;

  /// Time-series counters (DESIGN.md §13); present exactly when the spec
  /// enables sampling (`stats sample_every N`). Deterministic: derived
  /// entirely from committed simulation state, byte-identical across
  /// engines.
  std::optional<obs::ObsStatsSnapshot> obs_stats;

  /// Stop-on-convergence outcome (DESIGN.md §14); present exactly when the
  /// spec enables convergence mode. Static runs carry the run's CI here;
  /// phased runs carry the roll-up (converged = every window converged)
  /// with the per-window CIs on their PhaseResults.
  std::optional<stats_ctl::ConvergenceOutcome> convergence;

  /// Deterministic JSON encoding (the golden-test format). The document
  /// leads with `schema_version` (2 for fixed-duration runs: per-flow
  /// p50/p95, the always-present `histograms` section, per-phase
  /// percentiles, and the optional `stats` section; 3 when the optional
  /// `convergence` sections are present — fixed-duration documents never
  /// change shape, so every committed golden stays byte-identical).
  std::string ToJson() const;
};

/// Analytical guarantees of one GT flow hop, as wired by the runner
/// (streams and memory request directions are single hops; a video chain
/// contributes one entry per chain hop).
struct GtFlowBound {
  int group = 0;
  NiId src = kInvalidId;
  NiId dst = kInvalidId;
  verify::GtBound bound;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioSpec spec);
  ~ScenarioRunner();

  /// Instantiates the SoC, opens every connection, and creates the
  /// workload IPs. Idempotent; returns the first wiring error (pattern
  /// constraint violation, slot exhaustion, ...).
  Status Build();

  /// Build() + warmup + measured window; collects the result. Callable
  /// once per runner. With spec().verify set, a run that violates any
  /// runtime invariant or analytical GT bound fails with
  /// kVerificationFailed.
  Result<ScenarioResult> Run();

  /// Build() + the analytical bounds of every GT flow hop, derived from
  /// the allocator's slot tables (verify/bounds.h). Also the noc_verify
  /// --bounds table. Phased scenarios fail here: their slot tables are
  /// phase-dependent (bounds are checked per window by the verified run).
  Result<std::vector<GtFlowBound>> ComputeGtBounds();

  soc::Soc* soc() { return soc_.get(); }
  const ScenarioSpec& spec() const { return spec_; }

 private:
  struct StreamFlow {
    std::size_t group;
    Flow flow;
    int src_connid = 0;
    std::unique_ptr<PatternSource> source;
    std::unique_ptr<ip::StreamConsumer> consumer;
  };
  struct VideoChain {
    std::size_t group;
    std::vector<NiId> chain;
    std::vector<Flow> hop_flows;      // consecutive chain hops
    std::vector<int> hop_src_connids;  // source connid of each hop
    std::unique_ptr<PatternSource> source;
    std::vector<std::unique_ptr<Relay>> relays;
    std::unique_ptr<ip::StreamConsumer> consumer;
  };
  struct MemoryFlow {
    std::size_t group;
    Flow flow;
    int src_connid = 0;
    std::unique_ptr<shells::MasterShell> master_shell;
    std::unique_ptr<ip::TrafficGenMaster> master;
    std::unique_ptr<shells::SlaveShell> slave_shell;
    std::unique_ptr<ip::MemorySlave> memory;
  };

  Status BuildTopologyAndSoc(
      const std::vector<std::vector<Flow>>& flows_by_group);
  Status OpenFlowConnection(const TrafficSpec& traffic, const Flow& flow,
                            int src_connid, int dst_connid);
  config::ConnectionSpec ConnSpecOfFlow(const TrafficSpec& traffic,
                                        const Flow& flow, int src_connid,
                                        int dst_connid) const;
  GtFlowBound BoundOfHop(std::size_t group, const Flow& flow,
                         int src_connid);

  // --- phased execution (spec().Phased()) ----------------------------------
  Result<ScenarioResult> RunPhased();
  void SetGroupActive(std::size_t group, bool active, Cycle now);
  bool GroupDrained(std::size_t group) const;
  /// Groups whose connections are torn down when leaving `phase` (its own
  /// non-persistent directives).
  std::vector<std::size_t> ClosingGroupsOf(int phase) const;
  /// The verify-mode epilogue: monitor violations plus the analytical
  /// throughput/latency checks, formatted into `problems`. With
  /// `degradations` non-null (network faults armed), fault-induced
  /// violations and GT-floor shortfalls land there instead — degraded, not
  /// failed.
  void CheckGuarantees(const std::vector<std::int64_t>& stream_admitted0,
                       const std::vector<std::int64_t>& video_admitted0,
                       const std::vector<std::int64_t>& stream_delivered0,
                       const std::vector<std::int64_t>& video_delivered0,
                       Cycle duration, std::vector<std::string>* problems,
                       std::vector<std::string>* degradations);
  /// Fills result->fault from the injector / manager / monitor ledgers
  /// (no-op unless the spec's fault block is Enabled()).
  void FillFaultResult(std::vector<std::string> degradations,
                       ScenarioResult* result);
  /// Observability epilogue (no-op without a hub): mirrors the recorded
  /// fault events into the trace, finalizes the tap, snapshots the stats
  /// section into the result, and writes the trace file. Call after
  /// FillFaultResult.
  Status FinalizeObsIntoResult(ScenarioResult* result);

  ScenarioSpec spec_;
  bool built_ = false;
  bool ran_ = false;
  std::unique_ptr<soc::Soc> soc_;
  std::vector<StreamFlow> stream_flows_;
  std::vector<VideoChain> video_chains_;
  std::vector<MemoryFlow> memory_flows_;

  // Phased scenarios: the runtime-configuration machinery. Connections are
  // NOT opened at build time; each phase's are opened (and the outgoing
  // phase's closed) through the scripted driver as the run reaches them.
  std::unique_ptr<config::ScriptedConfigDriver> driver_;
  /// One ConnectionSpec per flow, grouped by traffic directive.
  std::vector<std::vector<config::ConnectionSpec>> conns_by_group_;
  /// Driver op index of each group's opens (targets for the later closes).
  std::vector<std::vector<int>> open_refs_by_group_;
};

}  // namespace aethereal::scenario

#endif  // AETHEREAL_SCENARIO_RUNNER_H
