// Declarative scenario specification — one small text file describes a
// complete workload: topology, clocking, per-connection QoS, traffic
// pattern, and duration. The scenario layer turns it into a fully wired
// SoC on the optimized engine (scenario/runner.h) so the same NI design
// can be exercised under the paper's wildly different use cases (GT video
// chains, BE shared-memory traffic, synthetic permutation suites) without
// writing wiring code.
//
// Line-based format ('#' starts a comment):
//
//   scenario NAME                 # result label (default "scenario")
//   noc star N                    # or: noc mesh ROWS COLS NIS_PER_ROUTER
//                                 # or: noc ring ROUTERS NIS_PER_ROUTER
//   stu 8                         # slot-table size        (default 8)
//   netmhz 500                    # network clock, MHz     (default 500)
//   queues 32                     # channel queue words    (default 32)
//   seed 1                        # RNG seed               (default 1)
//   warmup 500                    # settle cycles          (default 500)
//   duration 20000                # measured cycles        (default 20000)
//   engine optimized              # optimized | naive      (default optimized)
//   verify on                     # on | off               (default off)
//                                 # arm the guarantee-verification layer:
//                                 # runtime invariant checkers plus
//                                 # analytical GT bound checks; any
//                                 # violation fails the run
//
// followed by one or more traffic directives. Each directive names a
// pattern (which NIs talk to which), then optional clauses:
//
//   traffic uniform               # seeded random permutation (no self-loops)
//   traffic transpose             # mesh (r,c) -> (c,r); square mesh only
//   traffic bitcomp               # ni -> ~ni;      power-of-two NI count
//   traffic bitrev                # ni -> reverse(ni); power-of-two NI count
//   traffic neighbor              # ni -> ni+1 (mod N)
//   traffic hotspot T             # every NI except T sends to NI T
//   traffic pairs A B [C D ...]   # explicit src dst pairs
//   traffic video A B C ...       # chain of point-to-point streams with
//                                 # relay IPs at the intermediate NIs
//   traffic memory M S            # transaction master at NI M, memory
//                                 # slave at NI S (shared-memory traffic)
//
// Clauses (append after the pattern, any order):
//
//   inject periodic N             # one word / transaction every N cycles
//   inject bernoulli R            # issue with probability R per cycle
//   inject bursty W G             # W back-to-back words, then G idle cycles
//   inject closed                 # memory only: issue on response return
//   qos be                        # best-effort (default)
//   qos gt S                      # guaranteed throughput, S reserved slots
//   data_threshold N              # NI send threshold (words)
//   credit_threshold N            # NI credit-report threshold (words)
//   read_fraction P               # memory only: reads vs writes (default .5)
//   burst N                       # memory only: words per transaction
//
// Directive order defines connid assignment and is part of the scenario's
// deterministic identity: the same file and seed always produce the same
// result JSON, on either engine (tests/scenario_test.cpp).
#ifndef AETHEREAL_SCENARIO_SPEC_H
#define AETHEREAL_SCENARIO_SPEC_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace aethereal::scenario {

enum class PatternKind {
  kUniform,
  kTranspose,
  kBitComplement,
  kBitReversal,
  kNeighbor,
  kHotspot,
  kPairs,
  kVideo,
  kMemory,
};

const char* PatternKindName(PatternKind kind);

enum class InjectKind {
  kPeriodic,
  kBernoulli,
  kBursty,
  kClosedLoop,  // memory flows only
};

const char* InjectKindName(InjectKind kind);

/// One traffic directive: a pattern plus injection process and QoS.
struct TrafficSpec {
  PatternKind pattern = PatternKind::kUniform;

  InjectKind inject = InjectKind::kPeriodic;
  std::int64_t period = 8;       // kPeriodic: cycles between emissions
  double rate = 0.05;            // kBernoulli: emission probability / cycle
  std::int64_t burst_words = 4;  // kBursty: words per burst
  std::int64_t gap_cycles = 64;  // kBursty: idle cycles between bursts

  bool gt = false;
  int gt_slots = 0;
  int data_threshold = 1;
  int credit_threshold = 1;

  NiId hotspot = 0;             // kHotspot target
  std::vector<NiId> nis;        // kPairs (flattened), kVideo chain,
                                // kMemory {master, slave}

  double read_fraction = 0.5;   // kMemory
  int mem_burst_words = 4;      // kMemory: words per transaction
};

enum class TopologyKind { kStar, kMesh, kRing };

const char* TopologyKindName(TopologyKind kind);

struct ScenarioSpec {
  std::string name = "scenario";
  TopologyKind topology = TopologyKind::kStar;
  int dim_a = 4;            // star: NIs; mesh: rows; ring: routers
  int dim_b = 1;            // mesh: cols
  int nis_per_router = 1;   // mesh / ring

  int stu_slots = 8;
  double net_mhz = 500.0;
  int queue_words = 32;
  std::uint64_t seed = 1;
  Cycle warmup = 500;
  Cycle duration = 20000;
  bool optimize_engine = true;
  /// Arm the verification layer (verify/). Never affects the result JSON:
  /// a clean run is byte-identical, a violating run fails with an error.
  bool verify = false;

  std::vector<TrafficSpec> traffic;

  int NumNis() const;
};

/// Parses the text form above. Errors carry the offending line number.
Result<ScenarioSpec> ParseScenario(const std::string& text);

/// Reads and parses a spec file.
Result<ScenarioSpec> LoadScenarioFile(const std::string& path);

}  // namespace aethereal::scenario

#endif  // AETHEREAL_SCENARIO_SPEC_H
