// Declarative scenario specification — one small text file describes a
// complete workload: topology, clocking, per-connection QoS, traffic
// pattern, and duration. The scenario layer turns it into a fully wired
// SoC on the optimized engine (scenario/runner.h) so the same NI design
// can be exercised under the paper's wildly different use cases (GT video
// chains, BE shared-memory traffic, synthetic permutation suites) without
// writing wiring code.
//
// Line-based format ('#' starts a comment):
//
//   scenario NAME                 # result label (default "scenario")
//   noc star N                    # or: noc mesh ROWS COLS NIS_PER_ROUTER
//                                 # or: noc ring ROUTERS NIS_PER_ROUTER
//   stu 8                         # slot-table size        (default 8)
//   netmhz 500                    # network clock, MHz     (default 500)
//   queues 32                     # channel queue words    (default 32)
//   seed 1                        # RNG seed               (default 1)
//   warmup 500                    # settle cycles          (default 500)
//   duration 20000                # measured cycles        (default 20000)
//   engine optimized              # naive | optimized | soa (default optimized)
//   verify on                     # on | off               (default off)
//                                 # arm the guarantee-verification layer:
//                                 # runtime invariant checkers plus
//                                 # analytical GT bound checks; any
//                                 # violation fails the run
//   stats sample_every N          # windowed time-series sampling
//                                 # (DESIGN.md §13): close an observation
//                                 # window every N cycles (N >= the slot
//                                 # length) and emit per-window link
//                                 # utilisation / injected / delivered /
//                                 # queue-depth series into the result
//                                 # JSON. Off by default; enabling it
//                                 # never changes simulation results.
//   trace FILE [cap N]            # structured event trace (Chrome
//                                 # trace_event JSON) written to FILE
//                                 # after the run; per-category ring
//                                 # capacity N events (drops accounted).
//                                 # Off by default; observation only.
//
// followed by one or more traffic directives. Each directive names a
// pattern (which NIs talk to which), then optional clauses:
//
//   traffic uniform               # seeded random permutation (no self-loops)
//   traffic transpose             # mesh (r,c) -> (c,r); square mesh only
//   traffic bitcomp               # ni -> ~ni;      power-of-two NI count
//   traffic bitrev                # ni -> reverse(ni); power-of-two NI count
//   traffic neighbor              # ni -> ni+1 (mod N)
//   traffic hotspot T             # every NI except T sends to NI T
//   traffic pairs A B [C D ...]   # explicit src dst pairs
//   traffic video A B C ...       # chain of point-to-point streams with
//                                 # relay IPs at the intermediate NIs
//   traffic memory M S            # transaction master at NI M, memory
//                                 # slave at NI S (shared-memory traffic)
//
// Phased scenarios (runtime reconfiguration, paper §3/§4.3/Fig. 9): with
// `phase` blocks the run becomes a sequence of use cases. Each phase owns
// the traffic directives that follow it; at every phase transition the
// outgoing phase's connections are closed and the incoming phase's opened
// AT RUNTIME, through ConnectionManager transactions carried over the NoC
// itself (never a side channel), with per-transition setup/teardown
// metrics in the result. A directive marked `persist` stays open through
// every later phase (its in-flight GT traffic must be undisturbed by the
// transitions around it).
//
//   phase NAME duration D [warmup W]
//                                 # starts a phase block; following
//                                 # traffic directives belong to it. D =
//                                 # measured cycles of the phase window,
//                                 # W = settle cycles after the phase's
//                                 # reconfiguration completes (default 0;
//                                 # the scenario-level `warmup` applies
//                                 # before the first phase's window)
//   cfgni N                       # NI hosting the configuration master
//                                 # (default 0); every other NI gets a
//                                 # CNIP channel. Phased scenarios only.
//   drain N                       # per-transition cycle bound, applied
//                                 # separately to the outgoing-traffic
//                                 # drain and to the Fig. 9 configuration
//                                 # sequencing (default 20000). Phased
//                                 # only.
//
// Fault injection (DESIGN.md §12): an optional `fault` block arms the
// seeded fault models. Directives inside the block use the fault/spec.h
// grammar; the block must be closed with `end`:
//
//   fault
//     seed 7                      # fault-stream seed  (default 1)
//     link corrupt 0.001          # per-flit payload bit-flip probability
//     link drop 0.0005            # per-GT-packet whole-packet drop prob.
//     router 0 stall 1000 64      # router 0 freezes for cycles [1000,1064)
//     ni 2 stall 500 32           # NI 2 scheduler stalls for [500, 532)
//     config drop 0.01            # per-CNIP-request loss probability
//     config delay 0.02 40        # per-request 40-cycle hold probability
//     retry timeout 512 max 4 backoff 2
//                                 # arm ack timeout / bounded retry /
//                                 # exponential backoff on config writes
//   end
//
// Phased constraints: the scenario-level `duration` directive is replaced
// by the per-phase durations; every traffic directive must live inside a
// phase; and phased directives require data_threshold/credit_threshold 1
// (a closing channel must drain completely — words or credits parked
// below a threshold would never move again).
//
// Clauses (append after the pattern, any order):
//
//   inject periodic N             # one word / transaction every N cycles
//   inject bernoulli R            # issue with probability R per cycle
//   inject bursty W G             # W back-to-back words, then G idle cycles
//   inject closed                 # memory only: issue on response return
//   qos be                        # best-effort (default)
//   qos gt S                      # guaranteed throughput, S reserved slots
//   persist                       # phased only: keep the connection open
//                                 # through every later phase
//   data_threshold N              # NI send threshold (words)
//   credit_threshold N            # NI credit-report threshold (words)
//   read_fraction P               # memory only: reads vs writes (default .5)
//   burst N                       # memory only: words per transaction
//
// Directive order defines connid assignment and is part of the scenario's
// deterministic identity: the same file and seed always produce the same
// result JSON, on either engine (tests/scenario_test.cpp).
#ifndef AETHEREAL_SCENARIO_SPEC_H
#define AETHEREAL_SCENARIO_SPEC_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/spec.h"
#include "obs/spec.h"
#include "sim/engine.h"
#include "stats_ctl/convergence.h"
#include "util/status.h"
#include "util/types.h"

namespace aethereal::scenario {

enum class PatternKind {
  kUniform,
  kTranspose,
  kBitComplement,
  kBitReversal,
  kNeighbor,
  kHotspot,
  kPairs,
  kVideo,
  kMemory,
};

const char* PatternKindName(PatternKind kind);

enum class InjectKind {
  kPeriodic,
  kBernoulli,
  kBursty,
  kClosedLoop,  // memory flows only
};

const char* InjectKindName(InjectKind kind);

/// One traffic directive: a pattern plus injection process and QoS.
struct TrafficSpec {
  PatternKind pattern = PatternKind::kUniform;

  InjectKind inject = InjectKind::kPeriodic;
  std::int64_t period = 8;       // kPeriodic: cycles between emissions
  double rate = 0.05;            // kBernoulli: emission probability / cycle
  std::int64_t burst_words = 4;  // kBursty: words per burst
  std::int64_t gap_cycles = 64;  // kBursty: idle cycles between bursts

  bool gt = false;
  int gt_slots = 0;
  int data_threshold = 1;
  int credit_threshold = 1;

  NiId hotspot = 0;             // kHotspot target
  std::vector<NiId> nis;        // kPairs (flattened), kVideo chain,
                                // kMemory {master, slave}

  double read_fraction = 0.5;   // kMemory
  int mem_burst_words = 4;      // kMemory: words per transaction

  /// Phased scenarios: index of the owning phase (-1 = no phase blocks),
  /// and whether the directive survives every later phase transition.
  int phase = -1;
  bool persist = false;

  /// Source line of the directive (diagnostics only; 0 when synthesized).
  int line = 0;

  /// True when the directive's flows inject during phase `k`: its own
  /// phase, or any later one if persistent. The single source of the
  /// activity predicate shared by parse-time validation, the phased
  /// runner's windows, and the sweep's offered-load weighting.
  bool ActiveIn(int k) const {
    return phase == k || (persist && phase >= 0 && phase < k);
  }
};

/// One use case of a phased scenario: a named measurement window whose
/// connections are opened (and, unless persisted, later closed) at runtime
/// over the NoC.
struct PhaseSpec {
  std::string name;
  Cycle duration = 0;  // measured cycles of the phase window
  Cycle warmup = 0;    // settle cycles between reconfiguration and window
  int line = 0;        // source line (diagnostics only)
};

enum class TopologyKind { kStar, kMesh, kRing };

const char* TopologyKindName(TopologyKind kind);

struct ScenarioSpec {
  std::string name = "scenario";
  TopologyKind topology = TopologyKind::kStar;
  int dim_a = 4;            // star: NIs; mesh: rows; ring: routers
  int dim_b = 1;            // mesh: cols
  int nis_per_router = 1;   // mesh / ring

  int stu_slots = 8;
  double net_mhz = 500.0;
  int queue_words = 32;
  std::uint64_t seed = 1;
  Cycle warmup = 500;
  Cycle duration = 20000;
  /// Engine selection (sim/engine.h): kind and thread count; grammar
  /// `engine naive|optimized|soa [threads N]` (threads > 1 requires soa).
  /// Every engine and every thread count produces byte-identical result
  /// JSON, so the directive is a speed knob that never forks goldens.
  sim::EngineConfig engine;
  /// Arm the verification layer (verify/). Never affects the result JSON:
  /// a clean run is byte-identical, a violating run fails with an error.
  bool verify = false;

  std::vector<TrafficSpec> traffic;

  /// Phased scenarios only (empty otherwise). Directive order and phase
  /// order are both part of the scenario's deterministic identity.
  std::vector<PhaseSpec> phases;
  /// NI hosting the configuration master of a phased scenario.
  NiId cfg_ni = 0;
  /// Per-transition cycle bound, applied separately to the outgoing-
  /// traffic drain and to the Fig. 9 configuration sequencing.
  Cycle drain_cycles = 20000;

  /// Armed fault models (absent = fault subsystem not even instantiated;
  /// see SocOptions::fault for the kill-switch semantics).
  std::optional<fault::FaultSpec> fault;

  /// Observability configuration (`stats` / `trace` directives; the
  /// noc_sim --trace / --sample-every flags override it). Disabled by
  /// default — the runner passes SocOptions::obs = nullptr and not a
  /// single tap module exists (DESIGN.md §13).
  obs::ObsSpec obs;

  /// Stop-on-convergence policy (`converge` directive / --converge CLI
  /// flags; DESIGN.md §14). Disabled by default: fixed-duration runs are
  /// the determinism-golden contract, convergence mode is opt-in.
  stats_ctl::ConvergeSpec converge;

  bool Phased() const { return !phases.empty(); }

  int NumNis() const;

  /// Configuration channels provisioned at NI `ni` BEFORE any flow
  /// channel (config connections at the Cfg NI, the CNIP channel at
  /// connid 0 everywhere else); zero for non-phased specs. The single
  /// source of the connid-offset rule shared by the runner's channel
  /// counting, its connid assignment, and the inspector — the three must
  /// agree bit-for-bit or connids lose their deterministic identity.
  int ConfigChannelsOf(NiId ni) const;

  /// Total measured cycles: the sum of phase durations, or `duration`.
  Cycle TotalDuration() const;
};

/// Parses the text form above. Errors carry the offending line number.
Result<ScenarioSpec> ParseScenario(const std::string& text);

/// Reads and parses a spec file.
Result<ScenarioSpec> LoadScenarioFile(const std::string& path);

}  // namespace aethereal::scenario

#endif  // AETHEREAL_SCENARIO_SPEC_H
