#include "soc/soc.h"

#include <cmath>

#include "core/registers.h"
#include "fault/injector.h"
#include "obs/hub.h"
#include "obs/spec.h"
#include "obs/tap.h"
#include "util/check.h"
#include "verify/monitor.h"

namespace aethereal::soc {

namespace regs = core::regs;
using topology::EndpointKind;

Status SocOptions::Validate() const {
  if (!(net_mhz > 0.0)) {
    return InvalidArgumentError("net_mhz must be positive");
  }
  if (router_be_buffer_flits <= 0) {
    return InvalidArgumentError("router_be_buffer_flits must be positive");
  }
  if (stu_slots <= 0 || stu_slots > regs::kMaxStuSlots) {
    return InvalidArgumentError(
        "stu_slots must be in [1, " + std::to_string(regs::kMaxStuSlots) +
        "] (the SLOTS register is a 32-bit mask)");
  }
  if (const std::string error = sim::ValidateEngineConfig(engine);
      !error.empty()) {
    return InvalidArgumentError(error);
  }
  for (const auto& [port, mhz] : port_mhz) {
    if (!(mhz > 0.0)) {
      return InvalidArgumentError(
          "port clock for NI " + std::to_string(port.first) + " port " +
          std::to_string(port.second) + " must be a positive frequency");
    }
  }
  return OkStatus();
}

Soc::Soc(topology::Topology topology,
         std::vector<core::NiKernelParams> ni_params, SocOptions options)
    : topology_(std::move(topology)),
      ni_params_(std::move(ni_params)),
      options_(options) {
  AETHEREAL_CHECK_MSG(
      static_cast<int>(ni_params_.size()) == topology_.NumNis(),
      "one NiKernelParams per NI required");
  const Status options_status = options_.Validate();
  AETHEREAL_CHECK_MSG(options_status.ok(),
                      "invalid SocOptions: " << options_status.message());
  sim_.set_engine(options_.engine);
  net_clock_ = sim_.AddClockMhz("net", options_.net_mhz);
  clock_by_period_[net_clock_->period_ps()] = net_clock_;

  // Mesh partition for threaded stepping (sim/parallel.h): contiguous
  // router blocks, each router bundled with its NIs, their ports, and
  // (via RegisterOnPort) every shell or IP stacked on those ports. The
  // labels are a pure work assignment — results are identical at any
  // thread count — so the slicing only needs to be balanced, not clever.
  const int num_routers = topology_.NumRouters();
  const int num_regions =
      (options_.engine.threads > 1 && num_routers > 0)
          ? std::min(static_cast<int>(options_.engine.threads), num_routers)
          : 1;
  auto region_of_router = [num_regions, num_routers](RouterId r) {
    return num_regions > 1 ? static_cast<int>(static_cast<std::int64_t>(r) *
                                              num_regions / num_routers)
                           : -1;
  };
  if (num_regions > 1) {
    ni_region_.reserve(static_cast<std::size_t>(topology_.NumNis()));
    for (NiId n = 0; n < topology_.NumNis(); ++n) {
      ni_region_.push_back(region_of_router(topology_.NiRouter(n)));
    }
  }

  // Fault injection (DESIGN.md §12): built before the network so the taps
  // and stall gates can be installed during construction. The spec is
  // copied into the injector; options_.fault is not kept.
  if (options_.fault != nullptr) {
    fault_injector_ = std::make_unique<fault::FaultInjector>(*options_.fault);
    fault_injector_->SetConfigNiCount(topology_.NumNis());
  }

  // The verification monitor must be the FIRST module on the network
  // clock: modules evaluate in registration order, so running before every
  // NI and router lets it observe a consistent end-of-previous-slot
  // snapshot (see verify/monitor.h). It is attached after the network is
  // built, below.
  if (options_.verify) {
    monitor_ = std::make_unique<verify::Monitor>("verify_monitor");
    net_clock_->Register(monitor_.get());
  }

  // The observability tap follows the monitor's contract (read-only,
  // registered before the NoC hardware, observation at slot boundaries).
  // When options_.obs is null or disabled NOTHING is built — that absent
  // module is the subsystem's entire cost when off (DESIGN.md §13).
  if (options_.obs != nullptr && options_.obs->Enabled()) {
    obs_hub_ = std::make_unique<obs::ObsHub>(*options_.obs);
    obs_tap_ = std::make_unique<obs::ObsTap>(obs_hub_.get());
    net_clock_->Register(obs_tap_.get());
  }
  std::vector<const link::LinkWires*> obs_links;

  // All link wires live in one contiguous pool (one module instead of one
  // per link); size it exactly: two NI links per NI plus every directed
  // router-to-router link.
  int num_links = 2 * topology_.NumNis();
  for (RouterId r = 0; r < topology_.NumRouters(); ++r) {
    for (int p = 0; p < topology_.RouterPorts(r); ++p) {
      if (topology_.PortPeer(r, p).kind == EndpointKind::kRouter) ++num_links;
    }
  }
  links_ = std::make_unique<link::WirePool>("links", num_links);
  net_clock_->Register(links_.get());

  // Routers.
  routers_.Reset(static_cast<std::size_t>(topology_.NumRouters()));
  for (RouterId r = 0; r < topology_.NumRouters(); ++r) {
    router::RouterConfig config;
    config.num_ports = topology_.RouterPorts(r);
    config.be_buffer_flits = options_.router_be_buffer_flits;
    router::Router* router =
        routers_.Emplace("router" + std::to_string(r), r, config);
    if (fault_injector_ != nullptr) {
      router->SetFaultInjector(fault_injector_.get());
    }
    router->set_region(region_of_router(r));
    net_clock_->Register(router);
  }

  // NIs and their links to the routers.
  nis_.Reset(ni_params_.size());
  for (NiId n = 0; n < topology_.NumNis(); ++n) {
    AETHEREAL_CHECK_MSG(ni_params_[static_cast<std::size_t>(n)].stu_slots ==
                            options_.stu_slots,
                        "NI stu_slots must match SocOptions.stu_slots");
    core::NiKernel* kernel =
        nis_.Emplace("ni" + std::to_string(n), n,
                     ni_params_[static_cast<std::size_t>(n)]);
    if (fault_injector_ != nullptr) {
      kernel->SetFaultInjector(fault_injector_.get());
    }
    const int ni_region = ni_region_.empty()
                              ? -1
                              : ni_region_[static_cast<std::size_t>(n)];
    kernel->set_region(ni_region);
    net_clock_->Register(kernel);

    link::LinkWires* inj = links_->AddLink();
    link::LinkWires* del = links_->AddLink();
    // Fault taps go on delivery and router-to-router links only: injection
    // links (ni -> router) are where the verification monitor observes the
    // traffic it checks, so a fault there would be invisible by
    // construction (DESIGN.md §12).
    if (fault_injector_ != nullptr) {
      del->data.SetFaultTap(
          fault_injector_.get(),
          fault_injector_->RegisterLinkSite("router->ni" +
                                            std::to_string(n)));
    }

    injection_wires_.push_back(inj);
    delivery_wires_.push_back(del);

    const RouterId r = topology_.NiRouter(n);
    const int rp = topology_.NiRouterPort(n);
    if (obs_hub_ != nullptr) {
      obs_hub_->RegisterLink(obs::LinkKind::kInjection,
                             "ni" + std::to_string(n) + "->router" +
                                 std::to_string(r));
      obs_links.push_back(inj);
      obs_hub_->RegisterLink(obs::LinkKind::kDelivery,
                             "router" + std::to_string(r) + "->ni" +
                                 std::to_string(n));
      obs_links.push_back(del);
    }
    kernel->ConnectToRouter(inj, del, options_.router_be_buffer_flits);
    routers_[static_cast<std::size_t>(r)].ConnectInput(rp, inj);
    // The NI always sinks arriving BE flits (end-to-end flow control has
    // already guaranteed destination-queue space), so a small credit pool
    // only models the delivery pipelining.
    routers_[static_cast<std::size_t>(r)].ConnectOutput(
        rp, del, options_.router_be_buffer_flits);

    // Port clocks. Ports inherit the NI's region: the NI↔port channel
    // queues are the clock-domain crossing, and keeping both sides in one
    // region keeps their staging single-writer under threaded stepping.
    for (int p = 0; p < kernel->NumPorts(); ++p) {
      auto it = options_.port_mhz.find({n, p});
      sim::Clock* clock =
          (it == options_.port_mhz.end()) ? net_clock_ : ClockForMhz(it->second);
      kernel->port(p)->set_region(ni_region);
      clock->Register(kernel->port(p));
    }
  }

  // Router-to-router links (each directed link once, from its source side).
  for (RouterId r = 0; r < topology_.NumRouters(); ++r) {
    for (int p = 0; p < topology_.RouterPorts(r); ++p) {
      const topology::Endpoint& peer = topology_.PortPeer(r, p);
      if (peer.kind != EndpointKind::kRouter) continue;
      link::LinkWires* l = links_->AddLink();
      if (fault_injector_ != nullptr) {
        l->data.SetFaultTap(
            fault_injector_.get(),
            fault_injector_->RegisterLinkSite(
                "router" + std::to_string(r) + ".p" + std::to_string(p) +
                "->router" + std::to_string(peer.id)));
      }
      routers_[static_cast<std::size_t>(r)].ConnectOutput(
          p, l, options_.router_be_buffer_flits);
      routers_[static_cast<std::size_t>(peer.id)].ConnectInput(peer.port, l);
      if (obs_hub_ != nullptr) {
        obs_hub_->RegisterLink(obs::LinkKind::kRouterRouter,
                               "router" + std::to_string(r) + ".p" +
                                   std::to_string(p) + "->router" +
                                   std::to_string(peer.id));
        obs_links.push_back(l);
      }
    }
  }

  allocator_ = std::make_unique<tdm::CentralizedAllocator>(
      &topology_, options_.stu_slots);

  if (obs_tap_ != nullptr) {
    obs::ObsHookup hookup;
    hookup.links = std::move(obs_links);
    for (core::NiKernel& ni : nis_) hookup.nis.push_back(&ni);
    for (router::Router& router : routers_) hookup.routers.push_back(&router);
    obs_tap_->Attach(std::move(hookup));
  }

  if (monitor_ != nullptr) {
    verify::MonitorHookup hookup;
    hookup.topology = &topology_;
    hookup.allocator = allocator_.get();
    for (core::NiKernel& ni : nis_) hookup.nis.push_back(&ni);
    hookup.injection = injection_wires_;
    hookup.delivery = delivery_wires_;
    hookup.dest_queue_words = [this](const tdm::GlobalChannel& channel) {
      return DestQueueWordsOf(channel);
    };
    hookup.channel_pairs = [this] { return OpenChannelPairs(); };
    hookup.pairs_version = [this] { return connections_version(); };
    monitor_->Attach(std::move(hookup));
    if (fault_injector_ != nullptr) {
      const fault::FaultSpec& spec = fault_injector_->spec();
      verify::FaultContext context;
      // Wire drops and router stalls lose whole packets; corruption flips
      // payload bits. NI stalls only delay traffic, so they widen neither
      // tolerance.
      context.drops_possible =
          spec.link_drop_rate > 0.0 || !spec.router_stalls.empty();
      context.corruption_possible = spec.link_corrupt_rate > 0.0;
      monitor_->SetFaultContext(context);
    }
  }
}

Soc::~Soc() = default;

void Soc::FinalizeObs() {
  if (obs_tap_ != nullptr) obs_tap_->Finalize();
}

std::vector<std::pair<tdm::GlobalChannel, tdm::GlobalChannel>>
Soc::OpenChannelPairs() const {
  std::vector<std::pair<tdm::GlobalChannel, tdm::GlobalChannel>> pairs;
  for (const DirectConnection& conn : direct_connections_) {
    if (conn.open) pairs.emplace_back(conn.a, conn.b);
  }
  // Connections opened at runtime over the NoC (the Fig. 9 path) count
  // too: the monitor's credit pairing must follow reconfiguration.
  if (manager_ != nullptr) {
    for (const auto& pair : manager_->OpenPairs()) pairs.push_back(pair);
  }
  return pairs;
}

sim::Clock* Soc::ClockForMhz(double mhz) {
  const auto period = static_cast<Picoseconds>(std::llround(1e6 / mhz));
  auto it = clock_by_period_.find(period);
  if (it != clock_by_period_.end()) return it->second;
  sim::Clock* clock =
      sim_.AddClock("port_clk_" + std::to_string(period) + "ps", period);
  clock_by_period_[period] = clock;
  return clock;
}

core::NiKernel* Soc::ni(NiId id) {
  AETHEREAL_CHECK(id >= 0 && id < static_cast<NiId>(nis_.size()));
  return &nis_[static_cast<std::size_t>(id)];
}

router::Router* Soc::router(RouterId id) {
  AETHEREAL_CHECK(id >= 0 && id < static_cast<RouterId>(routers_.size()));
  return &routers_[static_cast<std::size_t>(id)];
}

core::NiPort* Soc::port(NiId id, int port_index) {
  return ni(id)->port(port_index);
}

sim::Clock* Soc::port_clock(NiId id, int port_index) {
  sim::Clock* clock = port(id, port_index)->clock();
  AETHEREAL_CHECK(clock != nullptr);
  return clock;
}

void Soc::RegisterOnPort(sim::Module* module, NiId id, int port_index) {
  // Application modules ride in their NI's region (no-op when the engine
  // is not threaded — ni_region_ stays empty).
  if (!ni_region_.empty()) {
    module->set_region(ni_region_[static_cast<std::size_t>(id)]);
  }
  port_clock(id, port_index)->Register(module);
}

void Soc::RegisterOnNet(sim::Module* module) { net_clock_->Register(module); }

int Soc::DestQueueWordsOf(const tdm::GlobalChannel& channel) const {
  AETHEREAL_CHECK(channel.ni >= 0 &&
                  channel.ni < static_cast<NiId>(ni_params_.size()));
  const auto& params = ni_params_[static_cast<std::size_t>(channel.ni)];
  ChannelId flat = 0;
  for (const auto& port : params.ports) {
    for (const auto& ch : port.channels) {
      if (flat == channel.channel) return ch.dest_queue_words;
      ++flat;
    }
  }
  AETHEREAL_CHECK_MSG(false, "channel " << channel.channel
                                        << " not found in NI " << channel.ni);
  return 0;
}

Status Soc::ConfigureChannelDirect(const tdm::GlobalChannel& at,
                                   const topology::ChannelRoute& route,
                                   int remote_qid, int remote_space,
                                   const config::ChannelQos& qos,
                                   const std::vector<SlotIndex>& slots) {
  core::NiKernel* kernel = ni(at.ni);
  const link::SourcePath path = link::SourcePath::FromHops(route.hops);
  Word mask = 0;
  for (SlotIndex s : slots) mask |= (1u << s);

  Status status = kernel->WriteRegister(
      regs::ChannelRegAddr(at.channel, regs::ChannelReg::kSpace),
      static_cast<Word>(remote_space));
  if (!status.ok()) return status;
  status = kernel->WriteRegister(
      regs::ChannelRegAddr(at.channel, regs::ChannelReg::kPathRqid),
      regs::PackPathRqid(path, remote_qid));
  if (!status.ok()) return status;
  status = kernel->WriteRegister(
      regs::ChannelRegAddr(at.channel, regs::ChannelReg::kThresholds),
      regs::PackThresholds(qos.data_threshold, qos.credit_threshold));
  if (!status.ok()) return status;
  status = kernel->WriteRegister(
      regs::ChannelRegAddr(at.channel, regs::ChannelReg::kSlots), mask);
  if (!status.ok()) return status;
  return kernel->WriteRegister(
      regs::ChannelRegAddr(at.channel, regs::ChannelReg::kCtrl),
      regs::kCtrlEnable | (qos.gt ? regs::kCtrlGt : 0));
}

Result<int> Soc::OpenConnection(const tdm::GlobalChannel& a,
                                const tdm::GlobalChannel& b,
                                const config::ChannelQos& qos_ab,
                                const config::ChannelQos& qos_ba) {
  auto route_ab = topology_.Route(a.ni, b.ni);
  if (!route_ab.ok()) return route_ab.status();
  auto route_ba = topology_.Route(b.ni, a.ni);
  if (!route_ba.ok()) return route_ba.status();

  DirectConnection conn;
  conn.a = a;
  conn.b = b;
  conn.route_ab = *route_ab;
  conn.route_ba = *route_ba;

  if (qos_ab.gt) {
    auto slots = allocator_->Allocate(conn.route_ab, a, qos_ab.gt_slots,
                                      qos_ab.policy);
    if (!slots.ok()) return slots.status();
    conn.slots_ab = *slots;
  }
  if (qos_ba.gt) {
    auto slots = allocator_->Allocate(conn.route_ba, b, qos_ba.gt_slots,
                                      qos_ba.policy);
    if (!slots.ok()) {
      if (qos_ab.gt) {
        AETHEREAL_CHECK(allocator_->Free(conn.route_ab, a, conn.slots_ab).ok());
      }
      return slots.status();
    }
    conn.slots_ba = *slots;
  }

  Status status = ConfigureChannelDirect(a, conn.route_ab, b.channel,
                                         DestQueueWordsOf(b), qos_ab,
                                         conn.slots_ab);
  if (status.ok()) {
    status = ConfigureChannelDirect(b, conn.route_ba, a.channel,
                                    DestQueueWordsOf(a), qos_ba,
                                    conn.slots_ba);
  }
  if (!status.ok()) return status;
  conn.open = true;
  direct_connections_.push_back(std::move(conn));
  ++connections_version_;
  return static_cast<int>(direct_connections_.size() - 1);
}

Status Soc::CloseConnection(int handle) {
  if (handle < 0 ||
      handle >= static_cast<int>(direct_connections_.size())) {
    return InvalidArgumentError("unknown connection handle");
  }
  DirectConnection& conn =
      direct_connections_[static_cast<std::size_t>(handle)];
  if (!conn.open) return FailedPreconditionError("connection not open");
  Status status = ni(conn.a.ni)->WriteRegister(
      regs::ChannelRegAddr(conn.a.channel, regs::ChannelReg::kCtrl), 0);
  if (!status.ok()) return status;
  status = ni(conn.b.ni)->WriteRegister(
      regs::ChannelRegAddr(conn.b.channel, regs::ChannelReg::kCtrl), 0);
  if (!status.ok()) return status;
  // Release the STU slot ownership too, or a later open could never
  // re-program the freed slots for a different channel of the same NI.
  if (!conn.slots_ab.empty()) {
    status = ni(conn.a.ni)->WriteRegister(
        regs::ChannelRegAddr(conn.a.channel, regs::ChannelReg::kSlots), 0);
    if (!status.ok()) return status;
  }
  if (!conn.slots_ba.empty()) {
    status = ni(conn.b.ni)->WriteRegister(
        regs::ChannelRegAddr(conn.b.channel, regs::ChannelReg::kSlots), 0);
    if (!status.ok()) return status;
  }
  if (!conn.slots_ab.empty()) {
    AETHEREAL_CHECK(
        allocator_->Free(conn.route_ab, conn.a, conn.slots_ab).ok());
    conn.slots_ab.clear();
  }
  if (!conn.slots_ba.empty()) {
    AETHEREAL_CHECK(
        allocator_->Free(conn.route_ba, conn.b, conn.slots_ba).ok());
    conn.slots_ba.clear();
  }
  conn.open = false;
  ++connections_version_;
  return OkStatus();
}

config::ConnectionManager* Soc::EnableConfig(const ConfigSetup& setup) {
  AETHEREAL_CHECK_MSG(manager_ == nullptr, "config already enabled");
  std::map<NiId, int> remote_connids = setup.cfg_connid_of_ni;

  config_shell_ = std::make_unique<shells::ConfigShell>(
      "config_shell", ni(setup.cfg_ni), port(setup.cfg_ni, setup.cfg_port),
      remote_connids);
  RegisterOnPort(config_shell_.get(), setup.cfg_ni, setup.cfg_port);

  std::map<NiId, config::ConnectionManager::CnipInfo> cnip_info;
  for (const auto& [target, port_connid] : setup.cnip_of_ni) {
    const auto [cnip_port, cnip_connid] = port_connid;
    core::NiPort* p = port(target, cnip_port);
    cnip_shells_.push_back(std::make_unique<shells::SlaveShell>(
        "cnip_shell_ni" + std::to_string(target), p, cnip_connid));
    RegisterOnPort(cnip_shells_.back().get(), target, cnip_port);
    cnip_agents_.push_back(std::make_unique<config::CnipAgent>(
        "cnip_agent_ni" + std::to_string(target), ni(target),
        cnip_shells_.back().get()));
    const ChannelId flat = p->GlobalChannelOf(cnip_connid);
    if (fault_injector_ != nullptr) {
      cnip_agents_.back()->SetFaultInjector(fault_injector_.get(), flat);
    }
    RegisterOnPort(cnip_agents_.back().get(), target, cnip_port);

    cnip_info[target] = config::ConnectionManager::CnipInfo{
        flat, DestQueueWordsOf(tdm::GlobalChannel{target, flat})};
    // The CNIP channel is enabled at hardware reset so the NoC can
    // bootstrap its own configuration (Fig. 9 step 2 arrives through it).
    AETHEREAL_CHECK(ni(target)
                        ->WriteRegister(regs::ChannelRegAddr(
                                            flat, regs::ChannelReg::kCtrl),
                                        regs::kCtrlEnable)
                        .ok());
  }

  auto lookup = [this](const tdm::GlobalChannel& channel) {
    return DestQueueWordsOf(channel);
  };
  manager_ = std::make_unique<config::ConnectionManager>(
      "connection_manager", &topology_, allocator_.get(), config_shell_.get(),
      port(setup.cfg_ni, setup.cfg_port), setup.cfg_ni,
      setup.cfg_connid_of_ni, std::move(cnip_info), lookup);
  // Every runtime open/close changes the open-pair set the verification
  // monitor pairs credits over; bump the version so it re-queries.
  manager_->SetOnConnectionsChanged([this] { ++connections_version_; });
  if (fault_injector_ != nullptr &&
      fault_injector_->spec().retry.enabled) {
    manager_->SetRetryPolicy(fault_injector_->spec().retry);
  }
  RegisterOnPort(manager_.get(), setup.cfg_ni, setup.cfg_port);
  return manager_.get();
}

}  // namespace aethereal::soc
