#include "soc/description.h"

#include <sstream>
#include <vector>

#include "topology/builders.h"

namespace aethereal::soc {

namespace {

struct Line {
  int number;
  std::vector<std::string> tokens;
};

std::vector<Line> Tokenize(const std::string& text) {
  std::vector<Line> lines;
  std::istringstream stream(text);
  std::string raw;
  int number = 0;
  while (std::getline(stream, raw)) {
    ++number;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream ls(raw);
    Line line{number, {}};
    std::string token;
    while (ls >> token) line.tokens.push_back(token);
    if (!line.tokens.empty()) lines.push_back(std::move(line));
  }
  return lines;
}

Status ParseError(int line, const std::string& message) {
  return InvalidArgumentError("line " + std::to_string(line) + ": " + message);
}

Result<std::int64_t> ParseInt(const Line& line, const std::string& token) {
  try {
    std::size_t pos = 0;
    const std::int64_t value = std::stoll(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    return ParseError(line.number, "expected a number, got '" + token + "'");
  }
}

}  // namespace

Result<int> ParsedSoc::PortIndex(NiId ni, const std::string& name) const {
  auto it = port_index.find({ni, name});
  if (it == port_index.end()) {
    return NotFoundError("no port '" + name + "' on NI " + std::to_string(ni));
  }
  return it->second;
}

Result<ParsedSoc> BuildFromDescription(const std::string& text) {
  const std::vector<Line> lines = Tokenize(text);

  topology::Topology topo;
  bool have_noc = false;
  SocOptions options;
  int max_packet_flits = 4;
  std::vector<core::NiKernelParams> ni_params;
  std::map<std::pair<NiId, std::string>, int> port_index;
  // Port clock overrides recorded by name, resolved at the end.
  std::vector<std::tuple<NiId, std::string, double>> port_clocks;

  auto check_ni = [&](const Line& line, std::int64_t ni) -> Status {
    if (!have_noc) return ParseError(line.number, "'noc' must come first");
    if (ni < 0 || ni >= static_cast<std::int64_t>(ni_params.size())) {
      return ParseError(line.number, "NI id out of range");
    }
    return OkStatus();
  };

  for (const Line& line : lines) {
    const std::string& kind = line.tokens[0];
    if (kind == "noc") {
      if (have_noc) return ParseError(line.number, "duplicate 'noc'");
      if (line.tokens.size() < 3) {
        return ParseError(line.number, "noc <star|mesh|ring> <dims...>");
      }
      if (line.tokens[1] == "star") {
        auto n = ParseInt(line, line.tokens[2]);
        if (!n.ok()) return n.status();
        if (*n < 1) return ParseError(line.number, "star needs >= 1 NI");
        topo = topology::BuildStar(static_cast<int>(*n)).topology;
      } else if (line.tokens[1] == "mesh") {
        if (line.tokens.size() != 5) {
          return ParseError(line.number, "noc mesh ROWS COLS NIS_PER_ROUTER");
        }
        auto rows = ParseInt(line, line.tokens[2]);
        auto cols = ParseInt(line, line.tokens[3]);
        auto nis = ParseInt(line, line.tokens[4]);
        if (!rows.ok()) return rows.status();
        if (!cols.ok()) return cols.status();
        if (!nis.ok()) return nis.status();
        topo = topology::BuildMesh(static_cast<int>(*rows),
                                   static_cast<int>(*cols),
                                   static_cast<int>(*nis))
                   .topology;
      } else if (line.tokens[1] == "ring") {
        if (line.tokens.size() != 4) {
          return ParseError(line.number, "noc ring ROUTERS NIS_PER_ROUTER");
        }
        auto routers = ParseInt(line, line.tokens[2]);
        auto nis = ParseInt(line, line.tokens[3]);
        if (!routers.ok()) return routers.status();
        if (!nis.ok()) return nis.status();
        topo = topology::BuildRing(static_cast<int>(*routers),
                                   static_cast<int>(*nis))
                   .topology;
      } else {
        return ParseError(line.number,
                          "unknown topology '" + line.tokens[1] + "'");
      }
      have_noc = true;
      ni_params.assign(static_cast<std::size_t>(topo.NumNis()),
                       core::NiKernelParams{});
    } else if (kind == "stu") {
      auto v = ParseInt(line, line.tokens.at(1));
      if (!v.ok()) return v.status();
      options.stu_slots = static_cast<int>(*v);
    } else if (kind == "netmhz") {
      auto v = ParseInt(line, line.tokens.at(1));
      if (!v.ok()) return v.status();
      options.net_mhz = static_cast<double>(*v);
    } else if (kind == "max_packet_flits") {
      auto v = ParseInt(line, line.tokens.at(1));
      if (!v.ok()) return v.status();
      max_packet_flits = static_cast<int>(*v);
    } else if (kind == "router_be_buffer") {
      auto v = ParseInt(line, line.tokens.at(1));
      if (!v.ok()) return v.status();
      options.router_be_buffer_flits = static_cast<int>(*v);
    } else if (kind == "ni") {
      if (line.tokens.size() != 4 || line.tokens[2] != "arbitration") {
        return ParseError(line.number, "ni <id> arbitration <policy>");
      }
      auto ni = ParseInt(line, line.tokens[1]);
      if (!ni.ok()) return ni.status();
      if (Status s = check_ni(line, *ni); !s.ok()) return s;
      const std::string& policy = line.tokens[3];
      auto& params = ni_params[static_cast<std::size_t>(*ni)];
      if (policy == "round-robin") {
        params.be_arbitration = core::BeArbitration::kRoundRobin;
      } else if (policy == "weighted-round-robin") {
        params.be_arbitration = core::BeArbitration::kWeightedRoundRobin;
      } else if (policy == "queue-fill") {
        params.be_arbitration = core::BeArbitration::kQueueFill;
      } else {
        return ParseError(line.number, "unknown policy '" + policy + "'");
      }
    } else if (kind == "port") {
      if (line.tokens.size() != 3) {
        return ParseError(line.number, "port <ni> <name>");
      }
      auto ni = ParseInt(line, line.tokens[1]);
      if (!ni.ok()) return ni.status();
      if (Status s = check_ni(line, *ni); !s.ok()) return s;
      const std::string& name = line.tokens[2];
      if (port_index.count({static_cast<NiId>(*ni), name}) != 0) {
        return ParseError(line.number, "duplicate port '" + name + "'");
      }
      auto& params = ni_params[static_cast<std::size_t>(*ni)];
      port_index[{static_cast<NiId>(*ni), name}] =
          static_cast<int>(params.ports.size());
      core::PortParams port;
      port.name = name;
      params.ports.push_back(std::move(port));
    } else if (kind == "portclock") {
      if (line.tokens.size() != 4) {
        return ParseError(line.number, "portclock <ni> <port> <mhz>");
      }
      auto ni = ParseInt(line, line.tokens[1]);
      if (!ni.ok()) return ni.status();
      auto mhz = ParseInt(line, line.tokens[3]);
      if (!mhz.ok()) return mhz.status();
      port_clocks.emplace_back(static_cast<NiId>(*ni), line.tokens[2],
                               static_cast<double>(*mhz));
    } else if (kind == "channel") {
      if (line.tokens.size() < 5) {
        return ParseError(line.number,
                          "channel <ni> <port> <src_words> <dst_words> "
                          "[weight]");
      }
      auto ni = ParseInt(line, line.tokens[1]);
      if (!ni.ok()) return ni.status();
      if (Status s = check_ni(line, *ni); !s.ok()) return s;
      auto it = port_index.find({static_cast<NiId>(*ni), line.tokens[2]});
      if (it == port_index.end()) {
        return ParseError(line.number,
                          "unknown port '" + line.tokens[2] + "'");
      }
      auto src = ParseInt(line, line.tokens[3]);
      auto dst = ParseInt(line, line.tokens[4]);
      if (!src.ok()) return src.status();
      if (!dst.ok()) return dst.status();
      core::ChannelParams channel;
      channel.source_queue_words = static_cast<int>(*src);
      channel.dest_queue_words = static_cast<int>(*dst);
      if (line.tokens.size() > 5) {
        auto weight = ParseInt(line, line.tokens[5]);
        if (!weight.ok()) return weight.status();
        channel.weight = static_cast<int>(*weight);
      }
      ni_params[static_cast<std::size_t>(*ni)]
          .ports[static_cast<std::size_t>(it->second)]
          .channels.push_back(channel);
    } else {
      return ParseError(line.number, "unknown directive '" + kind + "'");
    }
  }

  if (!have_noc) return InvalidArgumentError("description has no 'noc' line");
  for (std::size_t n = 0; n < ni_params.size(); ++n) {
    ni_params[n].stu_slots = options.stu_slots;
    ni_params[n].max_packet_flits = max_packet_flits;
    if (ni_params[n].ports.empty()) {
      return InvalidArgumentError("NI " + std::to_string(n) +
                                  " has no ports");
    }
    for (const auto& port : ni_params[n].ports) {
      if (port.channels.empty()) {
        return InvalidArgumentError("port '" + port.name + "' of NI " +
                                    std::to_string(n) + " has no channels");
      }
    }
  }
  for (const auto& [ni, name, mhz] : port_clocks) {
    auto it = port_index.find({ni, name});
    if (it == port_index.end()) {
      return InvalidArgumentError("portclock for unknown port '" + name +
                                  "'");
    }
    options.port_mhz[{ni, it->second}] = mhz;
  }

  ParsedSoc parsed;
  parsed.port_index = std::move(port_index);
  parsed.soc = std::make_unique<Soc>(std::move(topo), std::move(ni_params),
                                     options);
  return parsed;
}

}  // namespace aethereal::soc
