// SoC assembly: instantiate a NoC (routers, NIs, links) from a topology and
// per-NI parameters, exactly like the paper's XML-driven design-time flow
// (but targeting the simulator instead of VHDL).
//
// The Soc owns the simulation kernel, the clocks, the network hardware and
// the configuration infrastructure. IP modules and shells are created by
// the application (examples/tests) and registered on port clocks via
// RegisterOnPort().
#ifndef AETHEREAL_SOC_SOC_H
#define AETHEREAL_SOC_SOC_H

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "config/cnip.h"
#include "config/connection_manager.h"
#include "core/ni_kernel.h"
#include "fault/spec.h"
#include "link/wire.h"
#include "router/router.h"
#include "shells/config_shell.h"
#include "shells/slave_shell.h"
#include "sim/engine.h"
#include "sim/kernel.h"
#include "sim/soa_state.h"
#include "tdm/allocator.h"
#include "topology/topology.h"
#include "util/status.h"

namespace aethereal::verify {
class Monitor;
}

namespace aethereal::fault {
class FaultInjector;
}

namespace aethereal::obs {
struct ObsSpec;
class ObsHub;
class ObsTap;
}

namespace aethereal::soc {

/// EngineKind / EngineConfig are the soc-level currency too; see
/// sim/engine.h.
using sim::EngineConfig;
using sim::EngineKind;

struct SocOptions {
  double net_mhz = 500.0;  // network clock (paper prototype: 500 MHz)
  int router_be_buffer_flits = 8;
  int stu_slots = 8;
  /// Selects the simulation engine (sim/engine.h): kind AND thread count.
  /// EngineKind converts implicitly, so `options.engine = EngineKind::kSoa`
  /// still reads naturally. threads > 1 (kSoa only) partitions the mesh
  /// into contiguous router regions swept by a worker pool
  /// (sim/parallel.h). The simulation results are bit-identical for every
  /// engine and every thread count (tests/engine_determinism_test.cpp).
  EngineConfig engine;
  /// Per-(NI, port) clock override in MHz; unlisted ports run on the
  /// network clock. The channel queues implement the crossing.
  std::map<std::pair<NiId, int>, double> port_mhz;
  /// Arms the guarantee-verification monitor (verify/monitor.h): a
  /// read-only network tap registered before every other module that
  /// checks slot-table conformance, GT timing, flit integrity/ordering and
  /// credit conservation each slot. Observation only — simulation results
  /// are bit-identical with or without it.
  bool verify = false;
  /// Kill switch for fault injection (DESIGN.md §12): null (the default)
  /// builds the network without a single tap, pointer set builds the
  /// FaultInjector and installs wire taps, router/NI stall gates, CNIP
  /// judges and (when the spec's retry policy is enabled) the connection
  /// manager's ack-timeout machinery. A spec whose every rate is zero and
  /// window list empty is behaviorally inert: results are byte-identical
  /// to a run with fault == nullptr. The spec is copied; the pointer only
  /// needs to outlive the constructor.
  const fault::FaultSpec* fault = nullptr;
  /// Kill switch for the observability subsystem (DESIGN.md §13): null
  /// (the default) builds the network without an ObsHub or tap — zero
  /// per-cycle cost, results byte-identical to a build without the
  /// subsystem. Pointer set (and spec enabled) constructs the hub and
  /// registers the read-only ObsTap on the network clock: per-link /
  /// per-NI / per-router counters, time-series windows and event tracing,
  /// all observation-only like the verify monitor. The spec is copied;
  /// the pointer only needs to outlive the constructor.
  const obs::ObsSpec* obs = nullptr;

  /// Rejects incompatible or out-of-range combinations with a descriptive
  /// InvalidArgument status instead of a deep assert inside construction.
  /// The Soc constructor enforces this; callers that assemble options from
  /// user input (CLIs, scenario specs) should call it first and surface
  /// the message.
  Status Validate() const;
};

/// Description of the configuration infrastructure (paper Fig. 8).
struct ConfigSetup {
  NiId cfg_ni = 0;   // NI hosting the configuration master
  int cfg_port = 0;  // its port carrying the config connections
  /// connid on cfg_port per remote NI.
  std::map<NiId, int> cfg_connid_of_ni;
  /// (port, connid) of the CNIP channel at each remote NI.
  std::map<NiId, std::pair<int, int>> cnip_of_ni;
};

class Soc {
 public:
  Soc(topology::Topology topology,
      std::vector<core::NiKernelParams> ni_params, SocOptions options = {});
  ~Soc();

  sim::Kernel& sim() { return sim_; }
  sim::Clock* net_clock() { return net_clock_; }
  const topology::Topology& topology() const { return topology_; }
  tdm::CentralizedAllocator& allocator() { return *allocator_; }

  core::NiKernel* ni(NiId id);
  router::Router* router(RouterId id);
  core::NiPort* port(NiId id, int port_index);
  sim::Clock* port_clock(NiId id, int port_index);

  /// The verification monitor (null unless SocOptions::verify).
  verify::Monitor* monitor() { return monitor_.get(); }

  /// The fault injector (null unless SocOptions::fault was set).
  fault::FaultInjector* fault_injector() { return fault_injector_.get(); }

  /// The observability hub (null unless SocOptions::obs was set and
  /// enabled) — THE pointer check the zero-cost-when-off contract hangs
  /// on (DESIGN.md §13).
  obs::ObsHub* obs_hub() { return obs_hub_.get(); }

  /// Closes the trailing sampling window and snapshots end-of-run
  /// counters into the hub. Idempotent; no-op without a hub.
  void FinalizeObs();

  /// Endpoints of every open direct connection, for the monitor's credit
  /// pairing; `connections_version()` bumps on every open/close so the
  /// monitor re-queries only when the set changed.
  std::vector<std::pair<tdm::GlobalChannel, tdm::GlobalChannel>>
  OpenChannelPairs() const;
  std::int64_t connections_version() const { return connections_version_; }

  /// Registers an application module (shell or IP) on the clock of the
  /// given NI port.
  void RegisterOnPort(sim::Module* module, NiId id, int port_index);
  /// Registers a module on the network clock.
  void RegisterOnNet(sim::Module* module);

  void RunCycles(Cycle cycles) { sim_.RunCycles(net_clock_, cycles); }

  /// Destination-queue capacity (words) of a channel — the value a peer's
  /// SPACE register must be initialized with.
  int DestQueueWordsOf(const tdm::GlobalChannel& channel) const;

  // --- direct configuration (bypasses the Fig. 9 protocol; for tests and
  // benches that do not study configuration itself) ------------------------

  /// Opens a bidirectional connection between channel `a` and channel `b`
  /// (writing both NIs' registers directly). Takes effect after the next
  /// cycle. Returns a handle for CloseConnection.
  Result<int> OpenConnection(const tdm::GlobalChannel& a,
                             const tdm::GlobalChannel& b,
                             const config::ChannelQos& qos_ab = {},
                             const config::ChannelQos& qos_ba = {});
  Status CloseConnection(int handle);

  // --- runtime configuration through the NoC itself ------------------------

  /// Builds the configuration infrastructure: config shell at the Cfg NI,
  /// CNIP slave + agent at every listed remote NI (their CNIP channels are
  /// enabled at reset), and the connection manager. Must be called before
  /// the simulation starts.
  config::ConnectionManager* EnableConfig(const ConfigSetup& setup);

  config::ConnectionManager* manager() { return manager_.get(); }
  shells::ConfigShell* config_shell() { return config_shell_.get(); }

 private:
  struct DirectConnection {
    tdm::GlobalChannel a, b;
    topology::ChannelRoute route_ab, route_ba;
    std::vector<SlotIndex> slots_ab, slots_ba;
    bool open = false;
  };

  Status ConfigureChannelDirect(const tdm::GlobalChannel& at,
                                const topology::ChannelRoute& route,
                                int remote_qid, int remote_space,
                                const config::ChannelQos& qos,
                                const std::vector<SlotIndex>& slots);
  sim::Clock* ClockForMhz(double mhz);

  topology::Topology topology_;
  std::vector<core::NiKernelParams> ni_params_;
  SocOptions options_;

  sim::Kernel sim_;
  sim::Clock* net_clock_ = nullptr;
  std::map<std::int64_t, sim::Clock*> clock_by_period_;

  // Hot hardware state lives in contiguous slabs (sim/soa_state.h): the
  // kernel's evaluate/commit sweeps then walk consecutive memory instead of
  // one heap allocation per router/NI/link.
  sim::Slab<router::Router> routers_;
  sim::Slab<core::NiKernel> nis_;
  // Mesh region per NI for threaded stepping (empty when threads == 1):
  // each NI inherits its router's region, and RegisterOnPort labels
  // application modules with their NI's region so a port's whole stack is
  // swept by one worker.
  std::vector<int> ni_region_;
  std::unique_ptr<link::WirePool> links_;
  std::vector<const link::LinkWires*> injection_wires_;  // per NI
  std::vector<const link::LinkWires*> delivery_wires_;   // per NI
  std::unique_ptr<tdm::CentralizedAllocator> allocator_;
  std::vector<DirectConnection> direct_connections_;
  std::int64_t connections_version_ = 0;
  std::unique_ptr<verify::Monitor> monitor_;
  std::unique_ptr<fault::FaultInjector> fault_injector_;
  std::unique_ptr<obs::ObsHub> obs_hub_;
  std::unique_ptr<obs::ObsTap> obs_tap_;

  // Configuration infrastructure (EnableConfig).
  std::unique_ptr<shells::ConfigShell> config_shell_;
  std::vector<std::unique_ptr<shells::SlaveShell>> cnip_shells_;
  std::vector<std::unique_ptr<config::CnipAgent>> cnip_agents_;
  std::unique_ptr<config::ConnectionManager> manager_;
};

}  // namespace aethereal::soc

#endif  // AETHEREAL_SOC_SOC_H
