// Declarative NoC description — the programmatic stand-in for the paper's
// XML instantiation flow ("the number of ports and their type, the number
// of connections at each port, memory allocated for the queues, the level
// of services per port, and the interface to the IP modules are all
// configurable at design (instantiation) time using an XML description").
//
// Line-based text format ('#' starts a comment):
//
//   noc star 4              # or: noc mesh ROWS COLS NIS_PER_ROUTER
//                           # or: noc ring ROUTERS NIS_PER_ROUTER
//   stu 8                   # slot-table size (default 8)
//   netmhz 500              # network clock (default 500)
//   max_packet_flits 4      # maximum packet length (default 4)
//   router_be_buffer 8      # router BE input buffer, flits (default 8)
//
//   ni 0 arbitration queue-fill        # round-robin | weighted-round-robin
//   port 0 dtl                         # add port named "dtl" to NI 0
//   portclock 0 dtl 125                # that port runs at 125 MHz
//   channel 0 dtl 8 8 1                # channel on (ni 0, port dtl):
//                                      #   src words, dst words, wrr weight
//
// Ports and channels are created in file order, which defines their
// indices (connids).
#ifndef AETHEREAL_SOC_DESCRIPTION_H
#define AETHEREAL_SOC_DESCRIPTION_H

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "soc/soc.h"
#include "util/status.h"

namespace aethereal::soc {

struct ParsedSoc {
  std::unique_ptr<Soc> soc;
  /// Port index by (NI id, port name), for symbolic lookup.
  std::map<std::pair<NiId, std::string>, int> port_index;

  /// Convenience: resolved port index (checks existence).
  Result<int> PortIndex(NiId ni, const std::string& name) const;
};

/// Parses a description and instantiates the SoC. Returns a descriptive
/// error (with line number) on malformed input.
Result<ParsedSoc> BuildFromDescription(const std::string& text);

}  // namespace aethereal::soc

#endif  // AETHEREAL_SOC_DESCRIPTION_H
