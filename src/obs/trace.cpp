#include "obs/trace.h"

#include <algorithm>

#include "util/check.h"
#include "util/json.h"

namespace aethereal::obs {

const char* TraceCatName(TraceCat cat) {
  switch (cat) {
    case TraceCat::kFlit: return "flit";
    case TraceCat::kSlot: return "slot";
    case TraceCat::kConfig: return "config";
    case TraceCat::kPhase: return "phase";
    case TraceCat::kFault: return "fault";
  }
  return "?";
}

const char* TraceEventName(TraceCat cat, std::uint16_t code) {
  switch (cat) {
    case TraceCat::kFlit:
      switch (code) {
        case kFlitInject: return "inject";
        case kFlitRoute: return "route";
        case kFlitEject: return "eject";
      }
      break;
    case TraceCat::kSlot:
      if (code == kSlotGtFire) return "gt_fire";
      break;
    case TraceCat::kConfig:
      switch (code) {
        case kConfigDrainBegin: return "drain_begin";
        case kConfigDrainEnd: return "drain_end";
        case kConfigClose: return "close";
        case kConfigOpen: return "open";
      }
      break;
    case TraceCat::kPhase:
      switch (code) {
        case kPhaseBegin: return "begin";
        case kPhaseEnd: return "end";
      }
      break;
    case TraceCat::kFault:
      switch (code) {
        case kFaultCorrupt: return "corrupt";
        case kFaultDrop: return "drop";
        case kFaultRouterFreeze: return "router_freeze";
        case kFaultNiStall: return "ni_stall";
        case kFaultConfigDrop: return "config_drop";
        case kFaultConfigDelay: return "config_delay";
      }
      break;
  }
  return "?";
}

Tracer::Tracer(std::int64_t cap_per_category) : cap_(cap_per_category) {
  AETHEREAL_CHECK(cap_ > 0);
}

void Tracer::Record(TraceCat cat, std::uint16_t code, Cycle ts,
                    std::int32_t site, std::int64_t arg0, std::int64_t arg1) {
  Ring& ring = rings_[static_cast<std::size_t>(cat)];
  TraceEvent event;
  event.ts = ts;
  event.cat = cat;
  event.code = code;
  event.site = site;
  event.arg0 = arg0;
  event.arg1 = arg1;
  ++ring.recorded;
  if (ring.events.size() < static_cast<std::size_t>(cap_)) {
    ring.events.push_back(event);
    return;
  }
  // Ring full: overwrite the oldest event and account the loss.
  ring.events[ring.next] = event;
  ring.next = (ring.next + 1) % ring.events.size();
  ++ring.dropped;
}

std::int64_t Tracer::held(TraceCat cat) const {
  return static_cast<std::int64_t>(
      rings_[static_cast<std::size_t>(cat)].events.size());
}

std::int64_t Tracer::recorded(TraceCat cat) const {
  return rings_[static_cast<std::size_t>(cat)].recorded;
}

std::int64_t Tracer::dropped(TraceCat cat) const {
  return rings_[static_cast<std::size_t>(cat)].dropped;
}

std::int64_t Tracer::TotalDropped() const {
  std::int64_t total = 0;
  for (const Ring& ring : rings_) total += ring.dropped;
  return total;
}

void Tracer::WriteChromeTrace(
    std::ostream& os, const std::vector<std::string>& site_names) const {
  // Flatten every ring in chronological order (a wrapped ring's oldest
  // event sits at `next`), then merge across categories by (ts, cat,
  // within-category order) — fully deterministic.
  std::vector<TraceEvent> merged;
  std::size_t total = 0;
  for (const Ring& ring : rings_) total += ring.events.size();
  merged.reserve(total);
  for (const Ring& ring : rings_) {
    const std::size_t n = ring.events.size();
    for (std::size_t i = 0; i < n; ++i) {
      merged.push_back(ring.events[(ring.next + i) % n]);
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.cat < b.cat;
                   });

  // Chrome trace_event JSON, one event per line: chrome://tracing and
  // Perfetto open it directly, and noc_trace scans it line by line. `ts`
  // is the net-clock cycle (the viewer's microsecond unit reads as
  // cycles); flit/slot events use their link index as the thread id so
  // each link renders as its own lane.
  os << "{\"traceEvents\":[\n";
  Cycle last_ts = 0;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const TraceEvent& e = merged[i];
    last_ts = e.ts;
    const int tid =
        (e.cat == TraceCat::kFlit || e.cat == TraceCat::kSlot) && e.site >= 0
            ? e.site
            : 0;
    os << "{\"name\":\"" << TraceEventName(e.cat, e.code) << "\",\"cat\":\""
       << TraceCatName(e.cat) << "\",\"ph\":\"i\",\"ts\":" << e.ts
       << ",\"pid\":0,\"tid\":" << tid << ",\"s\":\"t\",\"args\":{";
    bool first = true;
    auto arg = [&](const char* key, std::int64_t value) {
      if (!first) os << ",";
      os << "\"" << key << "\":" << value;
      first = false;
    };
    if (e.site >= 0 &&
        static_cast<std::size_t>(e.site) < site_names.size()) {
      os << "\"site\":\""
         << JsonWriter::Escape(site_names[static_cast<std::size_t>(e.site)])
         << "\"";
      first = false;
    }
    switch (e.cat) {
      case TraceCat::kFlit:
        arg("gt", e.arg0);
        arg("eop", e.arg1);
        break;
      case TraceCat::kSlot:
        break;
      case TraceCat::kConfig:
        if (e.code == kConfigDrainBegin || e.code == kConfigDrainEnd) {
          arg("into_phase", e.arg0);
        } else {
          arg("group", e.arg0);
        }
        break;
      case TraceCat::kPhase:
        arg("phase", e.arg0);
        break;
      case TraceCat::kFault:
        arg("a", e.arg0);
        arg("b", e.arg1);
        break;
    }
    os << "}},\n";
  }
  // Trailing accounting event: recorded/dropped per category, so a trace
  // consumer can prove completeness without trusting the producer.
  os << "{\"name\":\"drop_accounting\",\"cat\":\"meta\",\"ph\":\"i\",\"ts\":"
     << last_ts << ",\"pid\":0,\"tid\":0,\"s\":\"t\",\"args\":{";
  for (int c = 0; c < kNumTraceCats; ++c) {
    const auto cat = static_cast<TraceCat>(c);
    if (c > 0) os << ",";
    os << "\"" << TraceCatName(cat) << "_recorded\":" << recorded(cat)
       << ",\"" << TraceCatName(cat) << "_dropped\":" << dropped(cat);
  }
  os << "}}\n]}\n";
}

}  // namespace aethereal::obs
