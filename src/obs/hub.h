// ObsHub — the collection point of the observability subsystem
// (DESIGN.md §13).
//
// The hub owns everything a run observes: per-link hardware counters,
// windowed time-series samples, the event tracer, and the end-of-run
// per-NI / per-router counter snapshots. It is plain storage plus
// emitters — the hub is NOT a simulation module and never touches
// simulated state. Counters are fed by the ObsTap (obs/tap.h), a
// read-only module on the network clock; run-level events (phase
// boundaries, config transactions, fault records) are fed by the
// scenario runner through the Note* hooks.
//
// A Soc constructs a hub only when SocOptions::obs is set and enabled;
// everything else in the simulator reaches observability through one
// `hub == nullptr` check, which is the whole cost of the subsystem when
// it is off.
#ifndef AETHEREAL_OBS_HUB_H
#define AETHEREAL_OBS_HUB_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/spec.h"
#include "obs/trace.h"
#include "util/types.h"

namespace aethereal {
class JsonWriter;
}

namespace aethereal::obs {

/// Where a directed link sits in the topology; decides how the tap
/// attributes its flits (injected / routed / ejected).
enum class LinkKind : std::uint8_t {
  kInjection,     // NI -> router
  kRouterRouter,  // router -> router
  kDelivery,      // router -> NI
};
const char* LinkKindName(LinkKind kind);

/// Per-link hardware counters, accumulated once per slot by the tap. A
/// slot carries exactly one of: a GT flit, a BE flit, or nothing (idle).
/// Flits observed on a router's *output* links are that port's
/// arbitration wins, so per-router GT/BE win counts fall out of these
/// counters without touching router internals.
struct LinkCounters {
  std::int64_t gt_flits = 0;
  std::int64_t be_flits = 0;
  std::int64_t header_flits = 0;   // packet starts (either class)
  std::int64_t idle_slots = 0;
  std::int64_t credit_slots = 0;   // slots carrying a credit return
  std::int64_t credits_returned = 0;
};

/// Per-NI observation: committed queue-fill high-water marks (sampled
/// every slot) plus the end-of-run slot-table utilization snapshot.
struct NiObservation {
  int source_queue_hwm = 0;  // max committed source-queue words seen
  int dest_queue_hwm = 0;    // max committed dest-queue words seen
  std::int64_t idle_slots = 0;        // from NiKernelStats at run end
  std::int64_t gt_slots_unused = 0;   // from NiKernelStats at run end
  double slot_utilization = 0.0;      // 1 - (idle + unused) / opportunities
};

/// Per-router end-of-run snapshot (engine-invariant: RouterStats match
/// the naive engine on every path).
struct RouterObservation {
  std::int64_t gt_flits = 0;       // GT arbitration-free forwards
  std::int64_t be_flits = 0;       // BE arbitration wins (flit granularity)
  std::int64_t be_packets = 0;
  std::int64_t be_blocked_credit = 0;
  std::int64_t be_blocked_gt = 0;
  std::int64_t be_max_occupancy = 0;
};

/// One closed sampling window of the time series.
struct SampleWindow {
  Cycle start = 0;   // nominal window start (k * sample_every)
  Cycle length = 0;  // nominal window length (sample_every)
  std::int64_t gt_injected = 0;   // flits entering the NoC, per class
  std::int64_t be_injected = 0;
  std::int64_t gt_delivered = 0;  // flits leaving the NoC, per class
  std::int64_t be_delivered = 0;
  std::int64_t busy_link_slots = 0;  // non-idle slots over all links
  std::int64_t link_slots = 0;       // slot opportunities over all links
  int max_queue_words = 0;           // deepest committed queue fill seen
  std::vector<std::int32_t> link_busy;  // per-link non-idle slots (heatmap)
};

/// Copyable snapshot of everything the `stats` result-JSON section needs.
/// The hub dies with its Soc; a ScenarioResult carries one of these so it
/// can serialize long after the simulation is torn down.
struct ObsStatsSnapshot {
  Cycle sample_every = 0;
  std::vector<std::string> link_sites;
  std::vector<LinkKind> link_kinds;
  std::vector<LinkCounters> links;
  std::vector<NiObservation> nis;
  std::vector<RouterObservation> routers;
  std::vector<SampleWindow> windows;
};

/// Writes the `stats` section of the result JSON (the caller owns the
/// surrounding key): sampling parameters, the window series, and the
/// per-link / per-NI / per-router counters. Deterministic: every field
/// derives from committed simulation state.
void WriteStatsJson(JsonWriter& w, const ObsStatsSnapshot& stats);

/// Per-window per-link utilization CSV for heatmap post-processing
/// (columns: window_start,site,kind,busy_slots,window_slots,utilization).
std::string SeriesCsv(const ObsStatsSnapshot& stats);

class ObsHub {
 public:
  explicit ObsHub(const ObsSpec& spec);

  const ObsSpec& spec() const { return spec_; }

  /// Non-null when the spec enables tracing.
  Tracer* tracer() { return tracer_ ? tracer_.get() : nullptr; }
  const Tracer* tracer() const { return tracer_ ? tracer_.get() : nullptr; }

  // --- topology registration (called by the Soc while wiring the tap) ---

  /// Declares link `index` with its kind and human-readable site name;
  /// links must be registered densely in index order.
  void RegisterLink(LinkKind kind, std::string site);
  void SetCounts(int num_nis, int num_routers);

  int NumLinks() const { return static_cast<int>(link_kinds_.size()); }
  const std::vector<std::string>& link_sites() const { return link_sites_; }
  LinkKind link_kind(int index) const {
    return link_kinds_[static_cast<std::size_t>(index)];
  }

  // --- tap-facing mutable storage -------------------------------------

  std::vector<LinkCounters>& link_counters() { return link_counters_; }
  const std::vector<LinkCounters>& link_counters() const {
    return link_counters_;
  }
  std::vector<NiObservation>& ni_obs() { return ni_obs_; }
  const std::vector<NiObservation>& ni_obs() const { return ni_obs_; }
  std::vector<RouterObservation>& router_obs() { return router_obs_; }
  const std::vector<RouterObservation>& router_obs() const {
    return router_obs_;
  }

  /// Closes sampling window `k` (the tap calls this at the first slot
  /// boundary past each window end; a trailing partial window is closed
  /// by the tap's finalizer).
  void PushWindow(SampleWindow window) {
    windows_.push_back(std::move(window));
  }
  const std::vector<SampleWindow>& windows() const { return windows_; }

  // --- runner-facing event hooks (no-ops without a tracer) ------------

  void NotePhase(std::uint16_t code, Cycle ts, int phase_index) {
    if (tracer_) tracer_->Record(TraceCat::kPhase, code, ts, -1, phase_index);
  }
  void NoteConfig(std::uint16_t code, Cycle ts, std::int64_t arg) {
    if (tracer_) tracer_->Record(TraceCat::kConfig, code, ts, -1, arg);
  }
  void NoteFault(std::uint16_t code, Cycle ts, std::int64_t a,
                 std::int64_t b) {
    if (tracer_) tracer_->Record(TraceCat::kFault, code, ts, -1, a, b);
  }

  // --- emitters --------------------------------------------------------

  /// Copies the counters, windows and link identities for WriteStatsJson.
  /// Call after the tap's Finalize() has closed the trailing window and
  /// filled the end-of-run NI/router snapshots.
  ObsStatsSnapshot StatsSnapshot() const;

  /// Writes the Chrome trace to spec().trace_path. False (with a message
  /// on stderr) on I/O failure; no-op (true) when tracing is off.
  bool WriteTraceFile() const;

 private:
  ObsSpec spec_;
  std::unique_ptr<Tracer> tracer_;
  std::vector<LinkKind> link_kinds_;
  std::vector<std::string> link_sites_;
  std::vector<LinkCounters> link_counters_;
  std::vector<NiObservation> ni_obs_;
  std::vector<RouterObservation> router_obs_;
  std::vector<SampleWindow> windows_;
};

}  // namespace aethereal::obs

#endif  // AETHEREAL_OBS_HUB_H
