// ObsTap — the read-only network tap feeding the ObsHub (DESIGN.md §13).
//
// The tap follows the verify monitor's observation contract exactly: it
// is registered on the network clock BEFORE any NoC hardware, samples
// only committed state (link wires via Sample(), CDC queue fills via
// their committed reader sizes), registers no TwoPhase state, and never
// stages anything — so arming it cannot perturb the simulation, and the
// counts it accumulates are identical on the naive, optimized, and soa
// engines (the committed-state trajectory is the engines' byte-identity
// invariant).
//
// Per slot the tap classifies every link (GT flit / BE flit / idle /
// credit return) into the hub's LinkCounters, records flit trace events
// when tracing is armed, tracks per-NI committed queue-fill high-water
// marks, and closes time-series windows. Finalize() (after the run)
// closes the trailing window and snapshots the per-NI / per-router
// aggregate counters.
#ifndef AETHEREAL_OBS_TAP_H
#define AETHEREAL_OBS_TAP_H

#include <vector>

#include "link/wire.h"
#include "obs/hub.h"
#include "sim/kernel.h"
#include "util/types.h"

namespace aethereal::core {
class NiKernel;
}
namespace aethereal::router {
class Router;
}

namespace aethereal::obs {

/// What the tap observes. `links` is index-aligned with the hub's link
/// registry (same order as ObsHub::RegisterLink calls).
struct ObsHookup {
  std::vector<const link::LinkWires*> links;
  std::vector<core::NiKernel*> nis;         // stats() is non-const (settle)
  std::vector<const router::Router*> routers;
};

class ObsTap : public sim::Module {
 public:
  explicit ObsTap(ObsHub* hub);

  /// Hands the tap its observation points. Call after the Soc is wired,
  /// before the first cycle.
  void Attach(ObsHookup hookup);

  void Evaluate() override;

  /// Closes the trailing partial sampling window and snapshots the
  /// end-of-run per-NI / per-router counters into the hub. Idempotent;
  /// call after the last cycle.
  void Finalize();

 private:
  bool IsSlotBoundary() const { return CycleCount() % kFlitWords == 0; }
  void CloseWindow(Cycle nominal_start);

  ObsHub* hub_;
  ObsHookup hookup_;
  bool attached_ = false;
  bool finalized_ = false;

  // Accumulating sampling window (valid while spec().SamplingEnabled()).
  SampleWindow window_;
  std::int64_t window_index_ = 0;
};

}  // namespace aethereal::obs

#endif  // AETHEREAL_OBS_TAP_H
