// Observability configuration (DESIGN.md §13).
//
// An ObsSpec describes what a run should observe: time-series sampling
// (the `stats sample_every N` scenario directive), event tracing (the
// `trace FILE [cap N]` directive or the noc_sim --trace override), or
// both. The spec is plain data with no behaviour; SocOptions carries a
// pointer to one (null = observability off, the default), and the Soc
// constructs an obs::ObsHub + obs::ObsTap only when the pointer is set
// and enabled — the zero-cost-when-off contract is "no tap module is ever
// registered", not "a disabled tap returns early".
#ifndef AETHEREAL_OBS_SPEC_H
#define AETHEREAL_OBS_SPEC_H

#include <cstdint>
#include <string>

#include "util/types.h"

namespace aethereal::obs {

/// Default per-category trace ring capacity: large enough that every
/// canonical scenario traces with zero drops (the per-PR CI smoke asserts
/// this), small enough that a runaway trace is bounded (~32 MB of events
/// per category at 32 B each).
inline constexpr std::int64_t kDefaultTraceCap = std::int64_t{1} << 20;

struct ObsSpec {
  /// Time-series window length in cycles; 0 disables sampling. Windows
  /// close at slot boundaries (the wire-transfer granularity), so values
  /// below kFlitWords are rejected by the scenario parser.
  Cycle sample_every = 0;

  /// Event-trace destination ("" disables tracing). The runner writes a
  /// Chrome trace_event JSON here after the run.
  std::string trace_path;

  /// Per-category trace ring capacity (events); oldest events are
  /// overwritten and accounted as drops once a ring is full.
  std::int64_t trace_cap = kDefaultTraceCap;

  bool SamplingEnabled() const { return sample_every > 0; }
  bool TracingEnabled() const { return !trace_path.empty(); }
  bool Enabled() const { return SamplingEnabled() || TracingEnabled(); }
};

}  // namespace aethereal::obs

#endif  // AETHEREAL_OBS_SPEC_H
