#include "obs/hub.h"

#include <algorithm>
#include <fstream>
#include <iostream>

#include "util/csv.h"
#include "util/json.h"

namespace aethereal::obs {

const char* LinkKindName(LinkKind kind) {
  switch (kind) {
    case LinkKind::kInjection: return "injection";
    case LinkKind::kRouterRouter: return "router";
    case LinkKind::kDelivery: return "delivery";
  }
  return "?";
}

ObsHub::ObsHub(const ObsSpec& spec) : spec_(spec) {
  if (spec_.TracingEnabled()) {
    tracer_ = std::make_unique<Tracer>(spec_.trace_cap);
  }
}

void ObsHub::RegisterLink(LinkKind kind, std::string site) {
  link_kinds_.push_back(kind);
  link_sites_.push_back(std::move(site));
  link_counters_.emplace_back();
}

void ObsHub::SetCounts(int num_nis, int num_routers) {
  ni_obs_.assign(static_cast<std::size_t>(num_nis), NiObservation{});
  router_obs_.assign(static_cast<std::size_t>(num_routers),
                     RouterObservation{});
}

ObsStatsSnapshot ObsHub::StatsSnapshot() const {
  ObsStatsSnapshot s;
  s.sample_every = spec_.sample_every;
  s.link_sites = link_sites_;
  s.link_kinds = link_kinds_;
  s.links = link_counters_;
  s.nis = ni_obs_;
  s.routers = router_obs_;
  s.windows = windows_;
  return s;
}

void WriteStatsJson(JsonWriter& w, const ObsStatsSnapshot& stats) {
  w.BeginObject();
  w.Key("sample_every").Int(stats.sample_every);
  w.Key("windows").BeginArray();
  for (const SampleWindow& win : stats.windows) {
    w.BeginObject();
    w.Key("start").Int(win.start);
    w.Key("length").Int(win.length);
    w.Key("gt_injected").Int(win.gt_injected);
    w.Key("be_injected").Int(win.be_injected);
    w.Key("gt_delivered").Int(win.gt_delivered);
    w.Key("be_delivered").Int(win.be_delivered);
    w.Key("link_utilization")
        .Double(win.link_slots > 0 ? static_cast<double>(win.busy_link_slots) /
                                         static_cast<double>(win.link_slots)
                                   : 0.0);
    std::int32_t busiest = 0;
    for (std::int32_t busy : win.link_busy) busiest = std::max(busiest, busy);
    const std::int64_t slots_per_link =
        win.link_busy.empty() ? 0
                              : win.link_slots /
                                    static_cast<std::int64_t>(
                                        win.link_busy.size());
    w.Key("busiest_link_utilization")
        .Double(slots_per_link > 0 ? static_cast<double>(busiest) /
                                         static_cast<double>(slots_per_link)
                                   : 0.0);
    w.Key("max_queue_words").Int(win.max_queue_words);
    w.EndObject();
  }
  w.EndArray();
  w.Key("links").BeginArray();
  for (std::size_t i = 0; i < stats.links.size(); ++i) {
    const LinkCounters& c = stats.links[i];
    w.BeginObject();
    w.Key("site").String(stats.link_sites[i]);
    w.Key("kind").String(LinkKindName(stats.link_kinds[i]));
    w.Key("gt_flits").Int(c.gt_flits);
    w.Key("be_flits").Int(c.be_flits);
    w.Key("header_flits").Int(c.header_flits);
    w.Key("idle_slots").Int(c.idle_slots);
    w.Key("credit_slots").Int(c.credit_slots);
    w.Key("credits_returned").Int(c.credits_returned);
    const std::int64_t slots = c.gt_flits + c.be_flits + c.idle_slots;
    w.Key("utilization")
        .Double(slots > 0 ? static_cast<double>(c.gt_flits + c.be_flits) /
                                static_cast<double>(slots)
                          : 0.0);
    w.EndObject();
  }
  w.EndArray();
  w.Key("nis").BeginArray();
  for (std::size_t n = 0; n < stats.nis.size(); ++n) {
    const NiObservation& o = stats.nis[n];
    w.BeginObject();
    w.Key("ni").Int(static_cast<std::int64_t>(n));
    w.Key("source_queue_hwm").Int(o.source_queue_hwm);
    w.Key("dest_queue_hwm").Int(o.dest_queue_hwm);
    w.Key("idle_slots").Int(o.idle_slots);
    w.Key("gt_slots_unused").Int(o.gt_slots_unused);
    w.Key("slot_utilization").Double(o.slot_utilization);
    w.EndObject();
  }
  w.EndArray();
  w.Key("routers").BeginArray();
  for (std::size_t r = 0; r < stats.routers.size(); ++r) {
    const RouterObservation& o = stats.routers[r];
    w.BeginObject();
    w.Key("router").Int(static_cast<std::int64_t>(r));
    w.Key("gt_flits").Int(o.gt_flits);
    w.Key("be_flits").Int(o.be_flits);
    w.Key("be_packets").Int(o.be_packets);
    w.Key("be_blocked_credit").Int(o.be_blocked_credit);
    w.Key("be_blocked_gt").Int(o.be_blocked_gt);
    w.Key("be_max_occupancy").Int(o.be_max_occupancy);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

std::string SeriesCsv(const ObsStatsSnapshot& stats) {
  CsvWriter csv({"window_start", "site", "kind", "busy_slots", "window_slots",
                 "utilization"});
  for (const SampleWindow& win : stats.windows) {
    const std::int64_t slots_per_link =
        win.link_busy.empty() ? 0
                              : win.link_slots /
                                    static_cast<std::int64_t>(
                                        win.link_busy.size());
    for (std::size_t i = 0; i < win.link_busy.size(); ++i) {
      csv.Cell(win.start)
          .Cell(stats.link_sites[i])
          .Cell(LinkKindName(stats.link_kinds[i]))
          .Cell(static_cast<std::int64_t>(win.link_busy[i]))
          .Cell(slots_per_link)
          .Double(slots_per_link > 0
                      ? static_cast<double>(win.link_busy[i]) /
                            static_cast<double>(slots_per_link)
                      : 0.0)
          .EndRow();
    }
  }
  return csv.Take();
}

bool ObsHub::WriteTraceFile() const {
  if (!spec_.TracingEnabled()) return true;
  std::ofstream out(spec_.trace_path);
  if (!out.good()) {
    std::cerr << "obs: cannot open trace file '" << spec_.trace_path << "'\n";
    return false;
  }
  tracer_->WriteChromeTrace(out, link_sites_);
  out.flush();
  if (!out.good()) {
    std::cerr << "obs: failed writing trace file '" << spec_.trace_path
              << "'\n";
    return false;
  }
  return true;
}

}  // namespace aethereal::obs
