// Ring-buffered structured event trace (DESIGN.md §13).
//
// Recording is a fixed-size struct append into a per-category ring: no
// strings, no allocation past the ring's growth to its cap, no I/O. Once a
// ring is full the oldest event is overwritten and counted as a drop, so a
// runaway trace is bounded and the loss is visible (noc_trace and the CI
// smoke both check the drop counters). Everything stringy — category and
// event names, link site names — is resolved at write-out time, when the
// rings are merged into one chronological Chrome trace_event JSON document
// that chrome://tracing and Perfetto open directly.
#ifndef AETHEREAL_OBS_TRACE_H
#define AETHEREAL_OBS_TRACE_H

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/types.h"

namespace aethereal::obs {

enum class TraceCat : std::uint8_t {
  kFlit = 0,  // flit observed on a link (inject / route / eject)
  kSlot,      // GT slot fire (a reserved slot actually used)
  kConfig,    // runtime reconfiguration (drain / open / close)
  kPhase,     // scenario phase boundaries
  kFault,     // injected fault events
};
inline constexpr int kNumTraceCats = 5;
const char* TraceCatName(TraceCat cat);

// Event codes, per category. The code picks the Chrome event name.
inline constexpr std::uint16_t kFlitInject = 0;  // NI -> router link
inline constexpr std::uint16_t kFlitRoute = 1;   // router -> router link
inline constexpr std::uint16_t kFlitEject = 2;   // router -> NI link
inline constexpr std::uint16_t kSlotGtFire = 0;
inline constexpr std::uint16_t kConfigDrainBegin = 0;
inline constexpr std::uint16_t kConfigDrainEnd = 1;
inline constexpr std::uint16_t kConfigClose = 2;
inline constexpr std::uint16_t kConfigOpen = 3;
inline constexpr std::uint16_t kPhaseBegin = 0;
inline constexpr std::uint16_t kPhaseEnd = 1;
inline constexpr std::uint16_t kFaultCorrupt = 0;
inline constexpr std::uint16_t kFaultDrop = 1;
inline constexpr std::uint16_t kFaultRouterFreeze = 2;
inline constexpr std::uint16_t kFaultNiStall = 3;
inline constexpr std::uint16_t kFaultConfigDrop = 4;
inline constexpr std::uint16_t kFaultConfigDelay = 5;

const char* TraceEventName(TraceCat cat, std::uint16_t code);

/// One recorded event. `site` indexes the site-name table handed to
/// WriteChromeTrace (link index for flit/slot events, -1 when the event
/// has no site); arg0/arg1 are event-specific small integers (flit class /
/// connection group / phase index ...).
struct TraceEvent {
  Cycle ts = 0;
  TraceCat cat = TraceCat::kFlit;
  std::uint16_t code = 0;
  std::int32_t site = -1;
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;
};

class Tracer {
 public:
  explicit Tracer(std::int64_t cap_per_category);

  /// Appends one event to its category ring (overwriting the oldest and
  /// counting a drop when the ring is full).
  void Record(TraceCat cat, std::uint16_t code, Cycle ts,
              std::int32_t site = -1, std::int64_t arg0 = 0,
              std::int64_t arg1 = 0);

  std::int64_t cap() const { return cap_; }
  /// Events currently held in the ring of `cat`.
  std::int64_t held(TraceCat cat) const;
  /// Events recorded into `cat` over the run (held + dropped).
  std::int64_t recorded(TraceCat cat) const;
  /// Events of `cat` overwritten because the ring was full.
  std::int64_t dropped(TraceCat cat) const;
  std::int64_t TotalDropped() const;

  /// Serializes every ring, merged chronologically, as a Chrome
  /// trace_event JSON document (one event per line). `site_names` resolves
  /// TraceEvent::site; a trailing metadata event carries the per-category
  /// recorded/dropped accounting so consumers need not trust the producer.
  void WriteChromeTrace(std::ostream& os,
                        const std::vector<std::string>& site_names) const;

 private:
  struct Ring {
    std::vector<TraceEvent> events;  // grows to cap_, then wraps
    std::size_t next = 0;            // overwrite cursor once full
    std::int64_t recorded = 0;
    std::int64_t dropped = 0;
  };

  std::int64_t cap_;
  std::array<Ring, kNumTraceCats> rings_;
};

}  // namespace aethereal::obs

#endif  // AETHEREAL_OBS_TRACE_H
