#include "obs/tap.h"

#include <algorithm>

#include "core/ni_kernel.h"
#include "router/router.h"
#include "util/check.h"

namespace aethereal::obs {

ObsTap::ObsTap(ObsHub* hub) : sim::Module("obs_tap"), hub_(hub) {
  AETHEREAL_CHECK(hub_ != nullptr);
  // Pure observer, like the verify monitor: no registered state, nothing
  // to commit, all work at slot boundaries.
  SetEvaluateStride(kFlitWords);
  SetDefaultCommitOnly();
}

void ObsTap::Attach(ObsHookup hookup) {
  AETHEREAL_CHECK(!attached_);
  AETHEREAL_CHECK(static_cast<int>(hookup.links.size()) == hub_->NumLinks());
  hookup_ = std::move(hookup);
  hub_->SetCounts(static_cast<int>(hookup_.nis.size()),
                  static_cast<int>(hookup_.routers.size()));
  if (hub_->spec().SamplingEnabled()) {
    window_.start = 0;
    window_.length = hub_->spec().sample_every;
    window_.link_busy.assign(hookup_.links.size(), 0);
  }
  attached_ = true;
}

void ObsTap::CloseWindow(Cycle nominal_start) {
  SampleWindow closed = std::move(window_);
  closed.start = nominal_start;
  window_ = SampleWindow{};
  window_.length = closed.length;
  window_.link_busy.assign(hookup_.links.size(), 0);
  hub_->PushWindow(std::move(closed));
  ++window_index_;
}

void ObsTap::Evaluate() {
  // The naive engine calls every module every cycle; the stride applies
  // only on the gated engines. The explicit boundary check keeps the
  // observation schedule identical on all three.
  if (!attached_ || !IsSlotBoundary()) return;
  const Cycle now = CycleCount();
  const bool sampling = hub_->spec().SamplingEnabled();
  Tracer* tracer = hub_->tracer();

  // Close the current sampling window when its end has passed. Windows
  // close at the first slot boundary past k * sample_every; the nominal
  // start/length keep the series grid regular.
  if (sampling) {
    const Cycle window_end =
        static_cast<Cycle>(window_index_ + 1) * hub_->spec().sample_every;
    if (now >= window_end) {
      CloseWindow(static_cast<Cycle>(window_index_) *
                  hub_->spec().sample_every);
    }
  }

  // --- links: one committed flit (or idle) + one credit pulse per slot.
  std::vector<LinkCounters>& counters = hub_->link_counters();
  for (std::size_t i = 0; i < hookup_.links.size(); ++i) {
    const link::LinkWires* wires = hookup_.links[i];
    const link::Flit& flit = wires->data.Sample();
    LinkCounters& c = counters[i];
    const LinkKind kind = hub_->link_kind(static_cast<int>(i));
    if (flit.IsIdle()) {
      ++c.idle_slots;
    } else {
      if (flit.gt) {
        ++c.gt_flits;
      } else {
        ++c.be_flits;
      }
      if (flit.kind == link::FlitKind::kHeader) ++c.header_flits;
      if (sampling) {
        ++window_.busy_link_slots;
        ++window_.link_busy[i];
        if (kind == LinkKind::kInjection) {
          ++(flit.gt ? window_.gt_injected : window_.be_injected);
        } else if (kind == LinkKind::kDelivery) {
          ++(flit.gt ? window_.gt_delivered : window_.be_delivered);
        }
      }
      if (tracer != nullptr) {
        std::uint16_t code = kFlitRoute;
        if (kind == LinkKind::kInjection) code = kFlitInject;
        if (kind == LinkKind::kDelivery) code = kFlitEject;
        tracer->Record(TraceCat::kFlit, code, now, static_cast<std::int32_t>(i),
                       flit.gt ? 1 : 0, flit.eop ? 1 : 0);
        if (flit.gt && kind == LinkKind::kInjection) {
          tracer->Record(TraceCat::kSlot, kSlotGtFire, now,
                         static_cast<std::int32_t>(i));
        }
      }
    }
    const int credits = wires->credit_return.Sample();
    if (credits > 0) {
      ++c.credit_slots;
      c.credits_returned += credits;
    }
    if (sampling) window_.link_slots += 1;
  }

  // --- per-NI committed queue fills (source + dest CDC reader sizes).
  std::vector<NiObservation>& nis = hub_->ni_obs();
  for (std::size_t n = 0; n < hookup_.nis.size(); ++n) {
    const core::NiKernel* ni = hookup_.nis[n];
    int source = 0;
    int dest = 0;
    const int channels = ni->NumChannels();
    for (ChannelId ch = 0; ch < channels; ++ch) {
      source += ni->SourceQueueWords(ch);
      dest += ni->DestQueueWords(ch);
    }
    NiObservation& o = nis[n];
    o.source_queue_hwm = std::max(o.source_queue_hwm, source);
    o.dest_queue_hwm = std::max(o.dest_queue_hwm, dest);
    if (sampling) {
      window_.max_queue_words =
          std::max(window_.max_queue_words, std::max(source, dest));
    }
  }
}

void ObsTap::Finalize() {
  if (!attached_ || finalized_) return;
  finalized_ = true;
  const Cycle cycles = clock() != nullptr ? CycleCount() : 0;

  // Trailing partial window (only if it saw at least one slot).
  if (hub_->spec().SamplingEnabled() && window_.link_slots > 0) {
    CloseWindow(static_cast<Cycle>(window_index_) * hub_->spec().sample_every);
  }

  // End-of-run per-NI snapshot: idle accounting settled by stats() (which
  // matches the naive engine on every path), utilization over the slot
  // opportunities of the whole run.
  const std::int64_t opportunities = (cycles + kFlitWords - 1) / kFlitWords;
  std::vector<NiObservation>& nis = hub_->ni_obs();
  for (std::size_t n = 0; n < hookup_.nis.size(); ++n) {
    const core::NiKernelStats& stats = hookup_.nis[n]->stats();
    NiObservation& o = nis[n];
    o.idle_slots = stats.idle_slots;
    o.gt_slots_unused = stats.gt_slots_unused;
    o.slot_utilization =
        opportunities > 0
            ? 1.0 - static_cast<double>(stats.idle_slots +
                                        stats.gt_slots_unused) /
                        static_cast<double>(opportunities)
            : 0.0;
  }
  std::vector<RouterObservation>& routers = hub_->router_obs();
  for (std::size_t r = 0; r < hookup_.routers.size(); ++r) {
    const router::RouterStats& stats = hookup_.routers[r]->stats();
    RouterObservation& o = routers[r];
    o.gt_flits = stats.gt_flits;
    o.be_flits = stats.be_flits;
    o.be_packets = stats.be_packets;
    o.be_blocked_credit = stats.be_blocked_credit;
    o.be_blocked_gt = stats.be_blocked_gt;
    o.be_max_occupancy = stats.be_max_occupancy;
  }
}

}  // namespace aethereal::obs
