#include "transaction/message.h"

#include "util/bits.h"
#include "util/check.h"

namespace aethereal::transaction {

namespace {
// Request header word fields.
constexpr int kReqSeqLsb = 0, kReqSeqBits = 9;
constexpr int kReqTidLsb = 9, kReqTidBits = 8;
constexpr int kReqFlagsLsb = 17, kReqFlagsBits = 4;
constexpr int kReqLenLsb = 21, kReqLenBits = 8;
constexpr int kReqCmdLsb = 29, kReqCmdBits = 3;
// Response header word fields.
constexpr int kRspAckBit = 2;
constexpr int kRspSeqLsb = 3, kRspSeqBits = 9;
constexpr int kRspLenLsb = 12, kRspLenBits = 8;
constexpr int kRspErrLsb = 20, kRspErrBits = 4;
constexpr int kRspTidLsb = 24, kRspTidBits = 8;
}  // namespace

const char* CommandName(Command cmd) {
  switch (cmd) {
    case Command::kRead: return "read";
    case Command::kWrite: return "write";
    case Command::kReadLinked: return "read-linked";
    case Command::kWriteConditional: return "write-conditional";
  }
  return "?";
}

const char* ResponseErrorName(ResponseError error) {
  switch (error) {
    case ResponseError::kOk: return "ok";
    case ResponseError::kUnmappedAddress: return "unmapped-address";
    case ResponseError::kBadCommand: return "bad-command";
    case ResponseError::kConditionalFail: return "conditional-fail";
  }
  return "?";
}

std::vector<Word> RequestMessage::Encode() const {
  AETHEREAL_CHECK_MSG(LengthField() >= 0 && LengthField() <= kMaxMessageDataWords,
                      "message length " << LengthField() << " out of range");
  AETHEREAL_CHECK(transaction_id >= 0 && transaction_id <= kMaxTransactionId);
  AETHEREAL_CHECK(sequence_number >= 0 && sequence_number <= kMaxSequenceNumber);
  Word header = 0;
  header = DepositBits(header, kReqSeqLsb, kReqSeqBits,
                       static_cast<std::uint32_t>(sequence_number));
  header = DepositBits(header, kReqTidLsb, kReqTidBits,
                       static_cast<std::uint32_t>(transaction_id));
  header = DepositBits(header, kReqFlagsLsb, kReqFlagsBits,
                       static_cast<std::uint32_t>(flags));
  header = DepositBits(header, kReqLenLsb, kReqLenBits,
                       static_cast<std::uint32_t>(LengthField()));
  header = DepositBits(header, kReqCmdLsb, kReqCmdBits,
                       static_cast<std::uint32_t>(cmd));
  std::vector<Word> words;
  words.reserve(static_cast<std::size_t>(WireWords()));
  words.push_back(header);
  words.push_back(address);
  words.insert(words.end(), data.begin(), data.end());
  return words;
}

Result<RequestMessage> RequestMessage::Decode(const std::vector<Word>& words) {
  if (words.size() < 2) return InvalidArgumentError("request shorter than header");
  const Word header = words[0];
  RequestMessage msg;
  msg.sequence_number = static_cast<int>(ExtractBits(header, kReqSeqLsb, kReqSeqBits));
  msg.transaction_id = static_cast<int>(ExtractBits(header, kReqTidLsb, kReqTidBits));
  msg.flags = static_cast<int>(ExtractBits(header, kReqFlagsLsb, kReqFlagsBits));
  const int length = static_cast<int>(ExtractBits(header, kReqLenLsb, kReqLenBits));
  const auto raw_cmd = ExtractBits(header, kReqCmdLsb, kReqCmdBits);
  if (raw_cmd > static_cast<std::uint32_t>(Command::kWriteConditional)) {
    return InvalidArgumentError("unknown command code");
  }
  msg.cmd = static_cast<Command>(raw_cmd);
  msg.address = words[1];
  if (msg.IsWrite()) {
    if (static_cast<int>(words.size()) != 2 + length) {
      return InvalidArgumentError("write request length mismatch");
    }
    msg.data.assign(words.begin() + 2, words.end());
  } else {
    if (words.size() != 2) {
      return InvalidArgumentError("read request carries data");
    }
    msg.read_length = length;
  }
  return msg;
}

std::vector<Word> ResponseMessage::Encode() const {
  AETHEREAL_CHECK(static_cast<int>(data.size()) <= kMaxMessageDataWords);
  AETHEREAL_CHECK(transaction_id >= 0 && transaction_id <= kMaxTransactionId);
  AETHEREAL_CHECK(sequence_number >= 0 && sequence_number <= kMaxSequenceNumber);
  AETHEREAL_CHECK_MSG(!is_write_ack || data.empty(),
                      "write acks carry no data");
  Word header = 0;
  header = DepositBits(header, kRspAckBit, 1, is_write_ack ? 1u : 0u);
  header = DepositBits(header, kRspSeqLsb, kRspSeqBits,
                       static_cast<std::uint32_t>(sequence_number));
  header = DepositBits(header, kRspLenLsb, kRspLenBits,
                       static_cast<std::uint32_t>(data.size()));
  header = DepositBits(header, kRspErrLsb, kRspErrBits,
                       static_cast<std::uint32_t>(error));
  header = DepositBits(header, kRspTidLsb, kRspTidBits,
                       static_cast<std::uint32_t>(transaction_id));
  std::vector<Word> words;
  words.reserve(static_cast<std::size_t>(WireWords()));
  words.push_back(header);
  words.insert(words.end(), data.begin(), data.end());
  return words;
}

Result<ResponseMessage> ResponseMessage::Decode(const std::vector<Word>& words) {
  if (words.empty()) return InvalidArgumentError("empty response");
  const Word header = words[0];
  ResponseMessage msg;
  msg.is_write_ack = ExtractBits(header, kRspAckBit, 1) != 0;
  msg.sequence_number = static_cast<int>(ExtractBits(header, kRspSeqLsb, kRspSeqBits));
  const int length = static_cast<int>(ExtractBits(header, kRspLenLsb, kRspLenBits));
  const auto raw_error = ExtractBits(header, kRspErrLsb, kRspErrBits);
  if (raw_error > static_cast<std::uint32_t>(ResponseError::kConditionalFail)) {
    return InvalidArgumentError("unknown error code");
  }
  msg.error = static_cast<ResponseError>(raw_error);
  msg.transaction_id = static_cast<int>(ExtractBits(header, kRspTidLsb, kRspTidBits));
  if (static_cast<int>(words.size()) != 1 + length) {
    return InvalidArgumentError("response length mismatch");
  }
  msg.data.assign(words.begin() + 1, words.end());
  return msg;
}

std::ostream& operator<<(std::ostream& os, const RequestMessage& msg) {
  os << "req{" << CommandName(msg.cmd) << " @0x" << std::hex << msg.address
     << std::dec << ", len=" << msg.LengthField() << ", tid=" << msg.transaction_id
     << ", seq=" << msg.sequence_number << ", flags=" << msg.flags << "}";
  return os;
}

std::ostream& operator<<(std::ostream& os, const ResponseMessage& msg) {
  os << "rsp{" << (msg.is_write_ack ? "ack" : "data")
     << ", err=" << ResponseErrorName(msg.error) << ", len=" << msg.data.size()
     << ", tid=" << msg.transaction_id << ", seq=" << msg.sequence_number << "}";
  return os;
}

template <>
int Framer<RequestMessage>::ExpectedWords(Word header) {
  const auto raw_cmd = ExtractBits(header, kReqCmdLsb, kReqCmdBits);
  const int length = static_cast<int>(ExtractBits(header, kReqLenLsb, kReqLenBits));
  const auto cmd = static_cast<Command>(raw_cmd);
  const bool is_write =
      cmd == Command::kWrite || cmd == Command::kWriteConditional;
  return is_write ? 2 + length : 2;
}

template <>
int Framer<ResponseMessage>::ExpectedWords(Word header) {
  const int length = static_cast<int>(ExtractBits(header, kRspLenLsb, kRspLenBits));
  return 1 + length;
}

}  // namespace aethereal::transaction
