// Transaction-layer message formats (paper Fig. 7).
//
// Masters issue *request messages* (command, flags, address, optional write
// data) and slaves answer with *response messages* (error status, optional
// read data). The shells sequentialize the IP-protocol signal groups
// (cmd+flags / addr / wr_data and rd_data / wr_resp in Figs. 5-6) into these
// word streams; the NI kernel transports them without interpreting them.
//
// Request message layout (32-bit words):
//   word 0: [31:29] cmd  [28:21] length  [20:17] flags
//           [16:9] transaction id  [8:0] sequence number
//   word 1: address
//   word 2..: write data (length words; only for write-type commands)
//
// Response message layout:
//   word 0: [31:24] transaction id  [23:20] error  [19:12] length
//           [11:3] sequence number  [2] is_write_ack
//   word 1..: read data (length words; absent for write acknowledgments)
#ifndef AETHEREAL_TRANSACTION_MESSAGE_H
#define AETHEREAL_TRANSACTION_MESSAGE_H

#include <ostream>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace aethereal::transaction {

/// Transaction commands. Read and write are implemented end-to-end;
/// read-linked / write-conditional are defined by the protocol (the paper
/// lists them as full-fledged-shell extensions) and are exercised by the
/// slave shell's locked-access support.
enum class Command : int {
  kRead = 0,
  kWrite = 1,
  kReadLinked = 2,
  kWriteConditional = 3,
};

const char* CommandName(Command cmd);

/// Request flag bits.
enum RequestFlags : int {
  kFlagNeedsAck = 1 << 0,  // acknowledged write: slave returns a write resp.
  kFlagFlush = 1 << 1,     // override the NI send threshold for this message
  kFlagPosted = 1 << 2,    // explicitly posted (no response expected)
};

/// Response error codes.
enum class ResponseError : int {
  kOk = 0,
  kUnmappedAddress = 1,   // no slave owns the address (narrowcast decode)
  kBadCommand = 2,        // slave cannot execute the command
  kConditionalFail = 3,   // write-conditional lost its reservation
};

const char* ResponseErrorName(ResponseError error);

/// Field widths / limits.
inline constexpr int kMaxMessageDataWords = 255;  // 8-bit length field
inline constexpr int kMaxTransactionId = 255;     // 8-bit transid
inline constexpr int kMaxSequenceNumber = 511;    // 9-bit seqno (wraps)

struct RequestMessage {
  Command cmd = Command::kRead;
  int flags = 0;
  int transaction_id = 0;
  int sequence_number = 0;
  Word address = 0;
  std::vector<Word> data;  // write payload; for reads, `length` words wanted

  /// For reads, the requested burst length is carried in the length field;
  /// stored here explicitly since `data` is empty.
  int read_length = 0;

  bool IsWrite() const {
    return cmd == Command::kWrite || cmd == Command::kWriteConditional;
  }
  bool ExpectsResponse() const {
    return !IsWrite() || (flags & kFlagNeedsAck) != 0;
  }
  int LengthField() const {
    return IsWrite() ? static_cast<int>(data.size()) : read_length;
  }

  /// Total words on the wire.
  int WireWords() const { return 2 + static_cast<int>(data.size()); }

  /// Serializes to words (checks field ranges).
  std::vector<Word> Encode() const;

  /// Parses a complete request message.
  static Result<RequestMessage> Decode(const std::vector<Word>& words);

  friend bool operator==(const RequestMessage&, const RequestMessage&) = default;
};

struct ResponseMessage {
  int transaction_id = 0;
  ResponseError error = ResponseError::kOk;
  int sequence_number = 0;
  bool is_write_ack = false;
  std::vector<Word> data;  // read data (empty for write acks)

  int WireWords() const { return 1 + static_cast<int>(data.size()); }

  std::vector<Word> Encode() const;
  static Result<ResponseMessage> Decode(const std::vector<Word>& words);

  friend bool operator==(const ResponseMessage&, const ResponseMessage&) = default;
};

std::ostream& operator<<(std::ostream& os, const RequestMessage& msg);
std::ostream& operator<<(std::ostream& os, const ResponseMessage& msg);

/// Incremental framer: feeds words one at a time (as they pop out of NI
/// destination queues) and yields complete messages. The expected word count
/// is derived from the first (header) word, exactly as a hardware
/// desequentializer would.
template <typename MessageT>
class Framer {
 public:
  /// Feeds one word; returns true if a message just completed (collect it
  /// with Take()).
  bool Feed(Word word) {
    buffer_.push_back(word);
    if (buffer_.size() == 1) {
      expected_ = ExpectedWords(word);
    }
    return static_cast<int>(buffer_.size()) >= expected_;
  }

  /// Words still needed to complete the current message (0 if idle or done).
  int Pending() const {
    if (buffer_.empty()) return 0;
    return expected_ - static_cast<int>(buffer_.size());
  }

  bool InMessage() const { return !buffer_.empty(); }

  /// Decodes and clears the completed message.
  Result<MessageT> Take() {
    auto result = MessageT::Decode(buffer_);
    buffer_.clear();
    expected_ = 0;
    return result;
  }

 private:
  static int ExpectedWords(Word header);
  std::vector<Word> buffer_;
  int expected_ = 0;
};

using RequestFramer = Framer<RequestMessage>;
using ResponseFramer = Framer<ResponseMessage>;

}  // namespace aethereal::transaction

#endif  // AETHEREAL_TRANSACTION_MESSAGE_H
