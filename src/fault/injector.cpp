#include "fault/injector.h"

#include <algorithm>

namespace aethereal::fault {

namespace {

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

int FaultInjector::RegisterLinkSite(std::string name) {
  SiteState site;
  site.name = std::move(name);
  sites_.push_back(std::move(site));
  return static_cast<int>(sites_.size()) - 1;
}

std::uint64_t FaultInjector::Draw(Stream stream, std::uint64_t site,
                                  std::uint64_t ordinal) const {
  return Mix64(spec_.seed ^ (Mix64(stream * 0x632be59bd9b4e019ULL +
                                   (site + 1) * 0xd6e8feb86659fd93ULL) +
                             ordinal));
}

bool FaultInjector::Decide(Stream stream, std::uint64_t site,
                           std::uint64_t ordinal, double rate) const {
  if (rate <= 0.0) return false;
  const std::uint64_t h = Draw(stream, site, ordinal);
  return static_cast<double>(h >> 11) * 0x1.0p-53 < rate;
}

void FaultInjector::FlushStagedLocked() const {
  // Canonical order within a cycle: (kind, site). Worker arrival order is
  // thread-schedule noise; what happened in a cycle is not. Identical
  // (kind, site) duplicates are interchangeable, so stable vs unstable
  // makes no observable difference — stable_sort keeps the intent obvious.
  std::stable_sort(staged_.begin(), staged_.end(),
                   [](const Event& a, const Event& b) {
                     if (a.kind != b.kind) return a.kind < b.kind;
                     return a.site < b.site;
                   });
  for (Event& event : staged_) {
    if (static_cast<int>(events_.size()) >= kMaxRecordedEvents) break;
    events_.push_back(std::move(event));
  }
  staged_.clear();
}

void FaultInjector::Record(Cycle cycle, const char* kind,
                           std::string site) const {
  events_total_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(ledger_mu_);
  if (cycle != staged_cycle_) {
    FlushStagedLocked();
    staged_cycle_ = cycle;
  }
  if (static_cast<int>(events_.size() + staged_.size()) < kMaxRecordedEvents) {
    staged_.push_back(Event{cycle, kind, std::move(site)});
  }
}

const std::vector<FaultInjector::Event>& FaultInjector::events() const {
  std::lock_guard<std::mutex> lock(ledger_mu_);
  FlushStagedLocked();
  return events_;
}

bool FaultInjector::OnDrive(int site_id, Cycle now, link::Flit* flit) {
  SiteState& site = sites_[static_cast<std::size_t>(site_id)];
  if (flit->IsIdle()) return true;

  // Whole-packet GT drop: the header flit decides; continuation flits of a
  // dropped packet are swallowed until (and including) its EOP. BE flits
  // are never dropped on the wire — a lost BE flit would leak link-level
  // credits and wedge the upstream buffer (BE loss is modeled by router
  // stall windows, which return the credits they discard).
  if (flit->gt) {
    if (flit->kind == link::FlitKind::kHeader) {
      const std::uint64_t ordinal = site.packet_ordinal++;
      if (Decide(kStreamDrop, static_cast<std::uint64_t>(site_id), ordinal,
                 spec_.link_drop_rate)) {
        site.dropping_gt = !flit->eop;
        link_packets_dropped_.fetch_add(1, std::memory_order_relaxed);
        // words[0] of a header flit is the packet header, not payload.
        link_words_dropped_.fetch_add(flit->valid_words - 1,
                                      std::memory_order_relaxed);
        Record(now, "link-drop", site.name);
        return false;
      }
    } else if (site.dropping_gt) {
      link_words_dropped_.fetch_add(flit->valid_words,
                                    std::memory_order_relaxed);
      if (flit->eop) site.dropping_gt = false;
      return false;
    }
  }

  // Payload corruption: flip one low bit of one payload word. The header
  // word (words[0] of a header flit) is never touched — a corrupted route
  // or credit field would violate router/NI contracts rather than data
  // integrity, which is a different fault class than a bit flip surviving
  // link CRC.
  const int first_payload = flit->kind == link::FlitKind::kHeader ? 1 : 0;
  const int payload_words = flit->valid_words - first_payload;
  if (payload_words > 0) {
    const std::uint64_t ordinal = site.flit_ordinal++;
    if (Decide(kStreamCorrupt, static_cast<std::uint64_t>(site_id), ordinal,
               spec_.link_corrupt_rate)) {
      const std::uint64_t h =
          Draw(kStreamCorrupt, static_cast<std::uint64_t>(site_id),
               ordinal ^ 0x5555555555555555ULL);
      const int index =
          first_payload + static_cast<int>(h % static_cast<std::uint64_t>(
                                                   payload_words));
      flit->words[static_cast<std::size_t>(index)] ^=
          Word{1} << ((h >> 8) % 8);
      flits_corrupted_.fetch_add(1, std::memory_order_relaxed);
      Record(now, "link-corrupt", site.name);
    }
  }
  return true;
}

void FaultInjector::NoteRouterStallDrop(RouterId router, Cycle now, bool gt,
                                        bool is_header, int payload_words) {
  router_stall_words_dropped_.fetch_add(payload_words,
                                        std::memory_order_relaxed);
  if (is_header) {
    router_stall_packets_dropped_.fetch_add(1, std::memory_order_relaxed);
    Record(now, "router-stall-drop",
           "router" + std::to_string(router) + (gt ? " (gt)" : " (be)"));
  }
}

void FaultInjector::SetConfigNiCount(int num_nis) {
  if (num_nis > static_cast<int>(config_ordinals_.size())) {
    config_ordinals_.resize(static_cast<std::size_t>(num_nis), 0);
  }
}

FaultInjector::ConfigVerdict FaultInjector::JudgeConfigRequest(
    NiId ni, Cycle now, Cycle* delay_cycles) {
  // Lazy growth only happens in sequential hand-built testbenches; the Soc
  // presizes via SetConfigNiCount so threaded judges never touch the
  // table's shape.
  if (static_cast<std::size_t>(ni) >= config_ordinals_.size()) {
    config_ordinals_.resize(static_cast<std::size_t>(ni) + 1, 0);
  }
  const std::uint64_t ordinal = config_ordinals_[static_cast<std::size_t>(ni)]++;
  if (Decide(kStreamConfig, static_cast<std::uint64_t>(ni), ordinal,
             spec_.config_drop_rate)) {
    config_requests_dropped_.fetch_add(1, std::memory_order_relaxed);
    Record(now, "config-drop", "ni" + std::to_string(ni));
    return ConfigVerdict::kDrop;
  }
  if (Decide(kStreamDelay, static_cast<std::uint64_t>(ni), ordinal,
             spec_.config_delay_rate)) {
    config_requests_delayed_.fetch_add(1, std::memory_order_relaxed);
    Record(now, "config-delay", "ni" + std::to_string(ni));
    *delay_cycles = spec_.config_delay_cycles;
    return ConfigVerdict::kDelay;
  }
  return ConfigVerdict::kPass;
}

}  // namespace aethereal::fault
