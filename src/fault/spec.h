// Fault model description: what to break, where, and how hard.
//
// A FaultSpec is a declarative, seeded description of the faults injected
// into one run. It deliberately contains no state: the same spec plus the
// same seed produces the same fault pattern on both engines (decisions are
// taken by a stateless hash at engine-invariant points; see injector.h).
//
// Fault models (DESIGN.md §12):
//  * link corrupt RATE          — per delivered flit, flip a payload bit
//  * link drop RATE             — per GT packet on a tapped link, drop whole
//  * router R stall START LEN   — router R accepts no new packets in window
//  * ni N stall START LEN       — NI N grants no scheduler slots in window
//  * config drop RATE           — per CNIP request, discard it
//  * config delay RATE CYCLES   — per CNIP request, hold it CYCLES cycles
//  * retry timeout T max R backoff B — ack timeout/bounded-retry policy for
//    runtime configuration writes (connection_manager)
//
// Scoping notes: wire-level drops are restricted to GT packets because a
// BE flit lost on a link would leak link-level credits and wedge the
// upstream buffer forever (BE loss is modeled by router stall windows,
// which return credits for the flits they discard). Injection links
// (NI -> router) are not tapped: the monitor observes injected traffic on
// those wires, so a fault there would be invisible by construction.
#ifndef AETHEREAL_FAULT_SPEC_H
#define AETHEREAL_FAULT_SPEC_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace aethereal::fault {

/// A half-open cycle window [start, start + length) in which component `id`
/// (a router or NI) is stalled. Cycles are network-clock cycles.
struct StallWindow {
  std::int32_t id = 0;
  Cycle start = 0;
  Cycle length = 0;

  bool Contains(Cycle now) const {
    return now >= start && now < start + length;
  }
};

/// Ack timeout / bounded retry / exponential backoff policy for runtime
/// configuration writes. When enabled, the connection manager issues every
/// register write acknowledged and re-issues any write whose ack has not
/// arrived within timeout * backoff^attempt cycles, up to max_retries
/// re-issues per write.
struct RetryPolicy {
  bool enabled = false;
  Cycle timeout = 512;   // cycles before the first re-issue
  int max_retries = 4;   // re-issues per write after the initial attempt
  int backoff = 2;       // timeout multiplier per attempt (exponential)
};

struct FaultSpec {
  std::uint64_t seed = 1;

  // Link fault models (applied on tapped wires; see scoping notes above).
  double link_corrupt_rate = 0.0;  // per driven data flit with payload
  double link_drop_rate = 0.0;     // per GT packet (header decides)

  // Deterministic stall/freeze windows.
  std::vector<StallWindow> router_stalls;
  std::vector<StallWindow> ni_stalls;

  // CNIP config-message faults (applied per request at the agent).
  double config_drop_rate = 0.0;
  double config_delay_rate = 0.0;
  Cycle config_delay_cycles = 0;

  RetryPolicy retry;

  bool AnyLinkFaults() const {
    return link_corrupt_rate > 0.0 || link_drop_rate > 0.0;
  }
  bool AnyStalls() const {
    return !router_stalls.empty() || !ni_stalls.empty();
  }
  bool AnyNetworkFaults() const { return AnyLinkFaults() || AnyStalls(); }
  bool AnyConfigFaults() const {
    return config_drop_rate > 0.0 || config_delay_rate > 0.0;
  }
  /// True when the spec actually injects or recovers from anything. A spec
  /// that is present but !Enabled() still installs the taps (useful for
  /// byte-identity checks) but records nothing and emits no result section.
  bool Enabled() const {
    return AnyNetworkFaults() || AnyConfigFaults() || retry.enabled;
  }
};

/// Applies one fault directive (a tokenized line from a `fault` block or a
/// fault file) to `spec`. Returns InvalidArgument with a message (no line
/// prefix; the caller owns line numbering) on unknown directives, malformed
/// clauses, or out-of-range values.
Status ApplyFaultDirective(const std::vector<std::string>& tokens,
                           FaultSpec* spec);

/// Parses a standalone fault file: one directive per line, '#' comments,
/// same grammar as the `.scn` fault block (without `fault` / `end`).
/// Errors carry "line N:" prefixes.
Result<FaultSpec> ParseFaultText(const std::string& text);
Result<FaultSpec> LoadFaultFile(const std::string& path);

/// One-line human-readable summary ("corrupt 0.001, drop 0.0005, ...").
std::string Describe(const FaultSpec& spec);

/// Deterministic random fault config for the nightly soak: network faults
/// only (no config faults — those need a phased workload), rates low enough
/// that a small stream scenario stays live. `index` selects the variant.
FaultSpec RandomFaultSpec(std::uint64_t seed, int index, int num_routers,
                          int num_nis, Cycle duration);

}  // namespace aethereal::fault

#endif  // AETHEREAL_FAULT_SPEC_H
