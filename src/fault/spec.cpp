#include "fault/spec.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace aethereal::fault {

namespace {

bool ParseDoubleToken(const std::string& token, double* out) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(token, &pos);
    if (pos != token.size()) return false;
    *out = value;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool ParseI64Token(const std::string& token, std::int64_t* out) {
  try {
    std::size_t pos = 0;
    if (token.empty()) return false;
    const std::int64_t value = std::stoll(token, &pos);
    if (pos != token.size()) return false;
    *out = value;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

Status ParseRate(const std::string& token, const char* what, double* out) {
  double rate = 0.0;
  if (!ParseDoubleToken(token, &rate) || rate < 0.0 || rate > 1.0) {
    return InvalidArgumentError(std::string(what) +
                                " rate must be a number in [0, 1], got '" +
                                token + "'");
  }
  *out = rate;
  return OkStatus();
}

Status ParseStall(const std::vector<std::string>& tokens, const char* what,
                  std::vector<StallWindow>* out) {
  // <what> ID stall START LENGTH
  if (tokens.size() != 5 || tokens[2] != "stall") {
    return InvalidArgumentError(std::string("expected '") + what +
                                " ID stall START LENGTH'");
  }
  std::int64_t id = 0;
  std::int64_t start = 0;
  std::int64_t length = 0;
  if (!ParseI64Token(tokens[1], &id) || id < 0) {
    return InvalidArgumentError(std::string(what) +
                                " id must be a non-negative integer, got '" +
                                tokens[1] + "'");
  }
  if (!ParseI64Token(tokens[3], &start) || start < 0) {
    return InvalidArgumentError("stall start must be a non-negative cycle, "
                                "got '" + tokens[3] + "'");
  }
  if (!ParseI64Token(tokens[4], &length) || length < 1) {
    return InvalidArgumentError("stall length must be a positive cycle "
                                "count, got '" + tokens[4] + "'");
  }
  out->push_back(StallWindow{static_cast<std::int32_t>(id), start, length});
  return OkStatus();
}

}  // namespace

Status ApplyFaultDirective(const std::vector<std::string>& tokens,
                           FaultSpec* spec) {
  if (tokens.empty()) return OkStatus();
  const std::string& kind = tokens[0];
  if (kind == "seed") {
    std::int64_t seed = 0;
    if (tokens.size() != 2 || !ParseI64Token(tokens[1], &seed) || seed < 0) {
      return InvalidArgumentError(
          "expected 'seed N' with a non-negative integer");
    }
    spec->seed = static_cast<std::uint64_t>(seed);
    return OkStatus();
  }
  if (kind == "link") {
    // link corrupt RATE | link drop RATE
    if (tokens.size() != 3 ||
        (tokens[1] != "corrupt" && tokens[1] != "drop")) {
      return InvalidArgumentError(
          "expected 'link corrupt RATE' or 'link drop RATE'");
    }
    double* target = tokens[1] == "corrupt" ? &spec->link_corrupt_rate
                                            : &spec->link_drop_rate;
    return ParseRate(tokens[2], tokens[1] == "corrupt" ? "link corrupt"
                                                       : "link drop",
                     target);
  }
  if (kind == "router") return ParseStall(tokens, "router",
                                          &spec->router_stalls);
  if (kind == "ni") return ParseStall(tokens, "ni", &spec->ni_stalls);
  if (kind == "config") {
    // config drop RATE | config delay RATE CYCLES
    if (tokens.size() == 3 && tokens[1] == "drop") {
      return ParseRate(tokens[2], "config drop", &spec->config_drop_rate);
    }
    if (tokens.size() == 4 && tokens[1] == "delay") {
      Status status =
          ParseRate(tokens[2], "config delay", &spec->config_delay_rate);
      if (!status.ok()) return status;
      std::int64_t cycles = 0;
      if (!ParseI64Token(tokens[3], &cycles) || cycles < 1) {
        return InvalidArgumentError("config delay cycles must be a positive "
                                    "integer, got '" + tokens[3] + "'");
      }
      spec->config_delay_cycles = cycles;
      return OkStatus();
    }
    return InvalidArgumentError(
        "expected 'config drop RATE' or 'config delay RATE CYCLES'");
  }
  if (kind == "retry") {
    // retry timeout T max R backoff B
    if (tokens.size() != 7 || tokens[1] != "timeout" || tokens[3] != "max" ||
        tokens[5] != "backoff") {
      return InvalidArgumentError(
          "expected 'retry timeout T max R backoff B'");
    }
    std::int64_t timeout = 0;
    std::int64_t max_retries = 0;
    std::int64_t backoff = 0;
    if (!ParseI64Token(tokens[2], &timeout) || timeout < 1) {
      return InvalidArgumentError("retry timeout must be a positive cycle "
                                  "count, got '" + tokens[2] + "'");
    }
    if (!ParseI64Token(tokens[4], &max_retries) || max_retries < 0 ||
        max_retries > 64) {
      return InvalidArgumentError("retry max must be in [0, 64], got '" +
                                  tokens[4] + "'");
    }
    if (!ParseI64Token(tokens[6], &backoff) || backoff < 1 || backoff > 8) {
      return InvalidArgumentError("retry backoff must be in [1, 8], got '" +
                                  tokens[6] + "'");
    }
    spec->retry.enabled = true;
    spec->retry.timeout = timeout;
    spec->retry.max_retries = static_cast<int>(max_retries);
    spec->retry.backoff = static_cast<int>(backoff);
    return OkStatus();
  }
  return InvalidArgumentError("unknown fault directive '" + kind + "'");
}

Result<FaultSpec> ParseFaultText(const std::string& text) {
  FaultSpec spec;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::vector<std::string> tokens;
    std::string token;
    while (ls >> token) tokens.push_back(token);
    if (tokens.empty()) continue;
    Status status = ApplyFaultDirective(tokens, &spec);
    if (!status.ok()) {
      return InvalidArgumentError("line " + std::to_string(line_no) + ": " +
                                  status.message());
    }
  }
  return spec;
}

Result<FaultSpec> LoadFaultFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open fault file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto spec = ParseFaultText(buffer.str());
  if (!spec.ok()) {
    return InvalidArgumentError(path + ": " + spec.status().message());
  }
  return spec;
}

std::string Describe(const FaultSpec& spec) {
  std::ostringstream os;
  os << "seed " << spec.seed;
  if (spec.link_corrupt_rate > 0.0) os << ", corrupt " << spec.link_corrupt_rate;
  if (spec.link_drop_rate > 0.0) os << ", drop " << spec.link_drop_rate;
  if (!spec.router_stalls.empty())
    os << ", " << spec.router_stalls.size() << " router stall(s)";
  if (!spec.ni_stalls.empty())
    os << ", " << spec.ni_stalls.size() << " ni stall(s)";
  if (spec.config_drop_rate > 0.0) os << ", cfg drop " << spec.config_drop_rate;
  if (spec.config_delay_rate > 0.0)
    os << ", cfg delay " << spec.config_delay_rate << "x"
       << spec.config_delay_cycles;
  if (spec.retry.enabled)
    os << ", retry t=" << spec.retry.timeout << " max=" << spec.retry.max_retries
       << " b=" << spec.retry.backoff;
  return os.str();
}

namespace {

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultSpec RandomFaultSpec(std::uint64_t seed, int index, int num_routers,
                          int num_nis, Cycle duration) {
  FaultSpec spec;
  const std::uint64_t base =
      Mix64(seed ^ (static_cast<std::uint64_t>(index) * 0x9e3779b9ULL));
  spec.seed = Mix64(base);
  // Low rates: a soak workload must stay live (drops leak end-to-end
  // credits, so the expected loss per flow has to stay well under one
  // source queue of words over the run).
  spec.link_corrupt_rate =
      (Mix64(base ^ 1) % 3 != 0) ? 0.002 * ((Mix64(base ^ 2) % 4) + 1) : 0.0;
  spec.link_drop_rate =
      (Mix64(base ^ 3) % 3 != 0) ? 0.001 * ((Mix64(base ^ 4) % 3) + 1) : 0.0;
  if (num_routers > 0 && Mix64(base ^ 5) % 2 == 0) {
    const Cycle start = 200 + static_cast<Cycle>(Mix64(base ^ 6) %
                                                 static_cast<std::uint64_t>(
                                                     duration / 2 + 1));
    const Cycle length = 30 + static_cast<Cycle>(Mix64(base ^ 7) % 120);
    spec.router_stalls.push_back(StallWindow{
        static_cast<std::int32_t>(Mix64(base ^ 8) %
                                  static_cast<std::uint64_t>(num_routers)),
        start, length});
  }
  if (num_nis > 0 && Mix64(base ^ 9) % 2 == 0) {
    const Cycle start = 200 + static_cast<Cycle>(Mix64(base ^ 10) %
                                                 static_cast<std::uint64_t>(
                                                     duration / 2 + 1));
    const Cycle length = 30 + static_cast<Cycle>(Mix64(base ^ 11) % 120);
    spec.ni_stalls.push_back(StallWindow{
        static_cast<std::int32_t>(Mix64(base ^ 12) %
                                  static_cast<std::uint64_t>(num_nis)),
        start, length});
  }
  // Ensure at least one model is armed so every soak iteration injects.
  if (!spec.Enabled()) spec.link_corrupt_rate = 0.002;
  return spec;
}

}  // namespace aethereal::fault
