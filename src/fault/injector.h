// Deterministic seeded fault injector.
//
// One FaultInjector instance is owned by the Soc when a FaultSpec is
// supplied in SocOptions. Every fault decision is a stateless hash of
// (spec seed, fault stream, site id, per-site event ordinal), and ordinals
// advance only at engine-invariant points:
//
//  * wire taps    — once per Drive() on a tapped link (Drive happens at
//    identical cycles in identical order on both engines; the optimized
//    engine never skips a producer that drives);
//  * CNIP judge   — once per popped configuration request (pop timing is
//    fully determined by simulation state, which is engine-identical).
//
// Router/NI stall windows are fixed in the spec, so they need no ordinals
// at all. The injector is NOT registered simulation state: it mutates
// freely during Evaluate, which is safe because every mutation is keyed to
// one of the invariant points above.
//
// The injector doubles as the run's fault ledger: per-kind counters plus a
// capped per-event record list that the scenario runner surfaces in the
// result JSON.
//
// Thread safety (the threaded SoA engine evaluates mesh regions
// concurrently, sim/parallel.h): per-site ordinal state is single-writer —
// each tapped wire has one driver, each NI one CNIP agent, so decisions
// stay deterministic without locks. The shared ledger is the only
// cross-region state: counters are relaxed atomics (sums, order-free), and
// recorded events are staged per cycle under a mutex, then flushed in
// canonical (kind, site) order — a pure function of WHAT happened in the
// cycle, not of which worker reported it first. The sequential engines go
// through the same staging, so every engine and thread count emits the
// same event list.
#ifndef AETHEREAL_FAULT_INJECTOR_H
#define AETHEREAL_FAULT_INJECTOR_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "fault/spec.h"
#include "link/wire.h"

namespace aethereal::fault {

class FaultInjector : public link::FlitTap {
 public:
  explicit FaultInjector(const FaultSpec& spec) : spec_(spec) {}

  /// Registers a tapped link under a stable name; returns its site id.
  /// Sites must be registered in a deterministic order (Soc construction
  /// order) so that site ids are engine-invariant.
  int RegisterLinkSite(std::string name);

  /// link::FlitTap — consulted once per driven data flit on tapped wires.
  /// Returns false to swallow the flit (dropped on the wire); may corrupt
  /// payload words in place. GT packets are dropped whole (header decides,
  /// continuation flits of a dropped packet are swallowed until EOP).
  bool OnDrive(int site, Cycle now, link::Flit* flit) override;

  bool RouterStalled(RouterId router, Cycle now) const {
    return InWindow(spec_.router_stalls, router, now);
  }
  bool NiStalled(NiId ni, Cycle now) const {
    return InWindow(spec_.ni_stalls, ni, now);
  }

  /// Called by a stalled router for each flit it discards at an input.
  void NoteRouterStallDrop(RouterId router, Cycle now, bool gt,
                           bool is_header, int payload_words);

  /// CNIP fault verdict for one configuration request. Must be called
  /// exactly once per request (the agent memoizes the verdict until the
  /// request is consumed). On kDelay, *delay_cycles is the hold time.
  /// Ordinals advance per NI (one agent per NI → single-writer), so the
  /// verdict stream of one NI is independent of every other NI's request
  /// timing — and of the engine's thread count.
  enum class ConfigVerdict { kPass, kDrop, kDelay };
  ConfigVerdict JudgeConfigRequest(NiId ni, Cycle now, Cycle* delay_cycles);

  /// Presizes the per-NI config ordinal table. The Soc calls this at
  /// construction; under threaded stepping concurrent judges must never
  /// grow the table (JudgeConfigRequest still grows it lazily for
  /// hand-built sequential testbenches).
  void SetConfigNiCount(int num_nis);

  const FaultSpec& spec() const { return spec_; }

  struct Event {
    Cycle cycle = 0;
    std::string kind;  // "link-corrupt" | "link-drop" | "router-stall-drop"
                       // | "config-drop" | "config-delay"
    std::string site;
  };
  static constexpr int kMaxRecordedEvents = 32;
  /// The recorded events in canonical order. Flushes the staged cycle
  /// first, so call it only between steps (end of run), never from inside
  /// an evaluate phase.
  const std::vector<Event>& events() const;
  std::int64_t events_total() const {
    return events_total_.load(std::memory_order_relaxed);
  }

  std::int64_t flits_corrupted() const {
    return flits_corrupted_.load(std::memory_order_relaxed);
  }
  std::int64_t link_packets_dropped() const {
    return link_packets_dropped_.load(std::memory_order_relaxed);
  }
  std::int64_t link_words_dropped() const {
    return link_words_dropped_.load(std::memory_order_relaxed);
  }
  std::int64_t router_stall_packets_dropped() const {
    return router_stall_packets_dropped_.load(std::memory_order_relaxed);
  }
  std::int64_t router_stall_words_dropped() const {
    return router_stall_words_dropped_.load(std::memory_order_relaxed);
  }
  std::int64_t config_requests_dropped() const {
    return config_requests_dropped_.load(std::memory_order_relaxed);
  }
  std::int64_t config_requests_delayed() const {
    return config_requests_delayed_.load(std::memory_order_relaxed);
  }

 private:
  // Independent decision streams; keyed into the hash so e.g. the corrupt
  // and drop decisions at one site never correlate.
  enum Stream : std::uint64_t {
    kStreamCorrupt = 1,
    kStreamDrop = 2,
    kStreamConfig = 3,
    kStreamDelay = 4,
  };

  static bool InWindow(const std::vector<StallWindow>& windows,
                       std::int32_t id, Cycle now) {
    for (const StallWindow& w : windows) {
      if (w.id == id && w.Contains(now)) return true;
    }
    return false;
  }

  bool Decide(Stream stream, std::uint64_t site, std::uint64_t ordinal,
              double rate) const;
  std::uint64_t Draw(Stream stream, std::uint64_t site,
                     std::uint64_t ordinal) const;
  void Record(Cycle cycle, const char* kind, std::string site) const;
  /// Appends the staged cycle's events in (kind, site) order. Caller holds
  /// ledger_mu_.
  void FlushStagedLocked() const;

  struct SiteState {
    std::string name;
    std::uint64_t flit_ordinal = 0;    // corrupt stream
    std::uint64_t packet_ordinal = 0;  // drop stream (GT headers)
    bool dropping_gt = false;          // mid-drop of a GT packet
  };

  FaultSpec spec_;
  std::vector<SiteState> sites_;
  std::vector<std::uint64_t> config_ordinals_;  // per NI

  // The shared ledger (see the thread-safety note above). mutable: the
  // canonical-order flush happens from the const events() accessor too.
  mutable std::mutex ledger_mu_;
  mutable Cycle staged_cycle_ = -1;
  mutable std::vector<Event> staged_;
  mutable std::vector<Event> events_;
  mutable std::atomic<std::int64_t> events_total_{0};
  std::atomic<std::int64_t> flits_corrupted_{0};
  std::atomic<std::int64_t> link_packets_dropped_{0};
  std::atomic<std::int64_t> link_words_dropped_{0};
  std::atomic<std::int64_t> router_stall_packets_dropped_{0};
  std::atomic<std::int64_t> router_stall_words_dropped_{0};
  std::atomic<std::int64_t> config_requests_dropped_{0};
  std::atomic<std::int64_t> config_requests_delayed_{0};
};

}  // namespace aethereal::fault

#endif  // AETHEREAL_FAULT_INJECTOR_H
