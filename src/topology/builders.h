// Canonical topology builders: meshes, rings, and the single-router "star"
// used by most NI-level experiments.
#ifndef AETHEREAL_TOPOLOGY_BUILDERS_H
#define AETHEREAL_TOPOLOGY_BUILDERS_H

#include <vector>

#include "topology/topology.h"

namespace aethereal::topology {

/// Mesh router port convention (ports 0..3 = compass, 4+ = local NIs).
inline constexpr int kMeshNorth = 0;
inline constexpr int kMeshEast = 1;
inline constexpr int kMeshSouth = 2;
inline constexpr int kMeshWest = 3;
inline constexpr int kMeshLocalBase = 4;

/// A built mesh: the topology plus id lookup helpers.
struct Mesh {
  Topology topology;
  int rows = 0;
  int cols = 0;
  int nis_per_router = 0;
  std::vector<RouterId> routers;  // row-major
  std::vector<NiId> nis;          // router-major, then local index

  RouterId RouterAt(int row, int col) const;
  NiId NiAt(int row, int col, int local = 0) const;
};

/// Builds a rows x cols mesh with `nis_per_router` NIs on every router.
/// Routers get 4 + nis_per_router ports following the port convention above.
Mesh BuildMesh(int rows, int cols, int nis_per_router);

/// Builds a single router with `num_nis` NIs attached (ports 0..num_nis-1).
/// This matches the scale of most NI-level experiments in the paper.
struct Star {
  Topology topology;
  RouterId router = kInvalidId;
  std::vector<NiId> nis;
};
Star BuildStar(int num_nis);

/// Builds a ring of `num_routers` routers (port 0 = clockwise next, port 1 =
/// counterclockwise prev, port 2+k = local NI k), with `nis_per_router` NIs.
struct Ring {
  Topology topology;
  std::vector<RouterId> routers;
  std::vector<NiId> nis;  // router-major
  int nis_per_router = 0;

  NiId NiAt(int router_index, int local = 0) const;
};
Ring BuildRing(int num_routers, int nis_per_router);

}  // namespace aethereal::topology

#endif  // AETHEREAL_TOPOLOGY_BUILDERS_H
