#include "topology/topology.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "link/header.h"
#include "util/check.h"

namespace aethereal::topology {

RouterId Topology::AddRouter(int num_ports) {
  AETHEREAL_CHECK(num_ports > 0);
  routers_.push_back(RouterNode{std::vector<Endpoint>(
      static_cast<std::size_t>(num_ports))});
  return static_cast<RouterId>(routers_.size() - 1);
}

NiId Topology::AddNi() {
  nis_.push_back(NiNode{});
  return static_cast<NiId>(nis_.size() - 1);
}

Status Topology::ConnectRouters(RouterId a, int pa, RouterId b, int pb) {
  if (a < 0 || a >= NumRouters() || b < 0 || b >= NumRouters()) {
    return InvalidArgumentError("router id out of range");
  }
  if (pa < 0 || pa >= RouterPorts(a) || pb < 0 || pb >= RouterPorts(b)) {
    return InvalidArgumentError("router port out of range");
  }
  auto& ea = routers_[static_cast<std::size_t>(a)].ports[static_cast<std::size_t>(pa)];
  auto& eb = routers_[static_cast<std::size_t>(b)].ports[static_cast<std::size_t>(pb)];
  if (ea.kind != EndpointKind::kUnconnected ||
      eb.kind != EndpointKind::kUnconnected) {
    return AlreadyExistsError("router port already wired");
  }
  ea = Endpoint{EndpointKind::kRouter, b, pb};
  eb = Endpoint{EndpointKind::kRouter, a, pa};
  return OkStatus();
}

Status Topology::AttachNi(NiId ni, RouterId r, int p) {
  if (ni < 0 || ni >= NumNis() || r < 0 || r >= NumRouters()) {
    return InvalidArgumentError("id out of range");
  }
  if (p < 0 || p >= RouterPorts(r)) {
    return InvalidArgumentError("router port out of range");
  }
  auto& node = nis_[static_cast<std::size_t>(ni)];
  if (node.attached) return AlreadyExistsError("NI already attached");
  auto& ep = routers_[static_cast<std::size_t>(r)].ports[static_cast<std::size_t>(p)];
  if (ep.kind != EndpointKind::kUnconnected) {
    return AlreadyExistsError("router port already wired");
  }
  ep = Endpoint{EndpointKind::kNi, ni, 0};
  node = NiNode{r, p, true};
  return OkStatus();
}

int Topology::RouterPorts(RouterId r) const {
  AETHEREAL_CHECK(r >= 0 && r < NumRouters());
  return static_cast<int>(routers_[static_cast<std::size_t>(r)].ports.size());
}

const Endpoint& Topology::PortPeer(RouterId r, int p) const {
  AETHEREAL_CHECK(r >= 0 && r < NumRouters());
  AETHEREAL_CHECK(p >= 0 && p < RouterPorts(r));
  return routers_[static_cast<std::size_t>(r)].ports[static_cast<std::size_t>(p)];
}

RouterId Topology::NiRouter(NiId ni) const {
  AETHEREAL_CHECK(ni >= 0 && ni < NumNis());
  AETHEREAL_CHECK_MSG(nis_[static_cast<std::size_t>(ni)].attached,
                      "NI " << ni << " not attached");
  return nis_[static_cast<std::size_t>(ni)].router;
}

int Topology::NiRouterPort(NiId ni) const {
  AETHEREAL_CHECK(ni >= 0 && ni < NumNis());
  AETHEREAL_CHECK(nis_[static_cast<std::size_t>(ni)].attached);
  return nis_[static_cast<std::size_t>(ni)].router_port;
}

Result<std::vector<int>> Topology::RouteHops(NiId from, NiId to) const {
  if (from < 0 || from >= NumNis() || to < 0 || to >= NumNis()) {
    return InvalidArgumentError("NI id out of range");
  }
  if (from == to) return InvalidArgumentError("route from an NI to itself");
  if (!nis_[static_cast<std::size_t>(from)].attached ||
      !nis_[static_cast<std::size_t>(to)].attached) {
    return FailedPreconditionError("NI not attached to a router");
  }
  const RouterId start = NiRouter(from);
  const RouterId goal = NiRouter(to);

  // BFS over routers; predecessor records (router, inbound port of pred).
  struct Pred {
    RouterId router = kInvalidId;
    int out_port = -1;  // port taken at the predecessor
  };
  std::vector<Pred> pred(static_cast<std::size_t>(NumRouters()));
  std::vector<bool> seen(static_cast<std::size_t>(NumRouters()), false);
  std::deque<RouterId> frontier;
  seen[static_cast<std::size_t>(start)] = true;
  frontier.push_back(start);
  while (!frontier.empty() && !seen[static_cast<std::size_t>(goal)]) {
    const RouterId r = frontier.front();
    frontier.pop_front();
    for (int p = 0; p < RouterPorts(r); ++p) {
      const Endpoint& ep = PortPeer(r, p);
      if (ep.kind != EndpointKind::kRouter) continue;
      if (seen[static_cast<std::size_t>(ep.id)]) continue;
      seen[static_cast<std::size_t>(ep.id)] = true;
      pred[static_cast<std::size_t>(ep.id)] = Pred{r, p};
      frontier.push_back(ep.id);
    }
  }
  if (!seen[static_cast<std::size_t>(goal)]) {
    return NotFoundError("no route between NIs");
  }

  std::vector<int> hops;
  // Walk back from the goal router, then append the NI exit port.
  RouterId r = goal;
  while (r != start) {
    const Pred& pr = pred[static_cast<std::size_t>(r)];
    hops.push_back(pr.out_port);
    r = pr.router;
  }
  std::reverse(hops.begin(), hops.end());
  hops.push_back(NiRouterPort(to));
  if (static_cast<int>(hops.size()) > link::kMaxPathHops) {
    return ResourceExhaustedError("route exceeds max source-path hops");
  }
  for (int h : hops) {
    if (h > link::kMaxPathPort) {
      return ResourceExhaustedError("router port not encodable in path");
    }
  }
  return hops;
}

Result<ChannelRoute> Topology::Route(NiId from, NiId to) const {
  auto hops = RouteHops(from, to);
  if (!hops.ok()) return hops.status();
  ChannelRoute route;
  route.source_ni = from;
  route.dest_ni = to;
  route.hops = *hops;
  route.links.push_back(LinkId{true, from, 0});
  RouterId r = NiRouter(from);
  for (std::size_t i = 0; i < route.hops.size(); ++i) {
    const int port = route.hops[i];
    route.links.push_back(LinkId{false, r, port});
    const Endpoint& ep = PortPeer(r, port);
    if (i + 1 < route.hops.size()) {
      AETHEREAL_CHECK_MSG(ep.kind == EndpointKind::kRouter,
                          "route walks off the router graph");
      r = ep.id;
    } else {
      AETHEREAL_CHECK_MSG(ep.kind == EndpointKind::kNi && ep.id == to,
                          "route does not terminate at destination NI");
    }
  }
  return route;
}

int Topology::NumLinks() const {
  int total = NumNis();
  for (const auto& r : routers_) total += static_cast<int>(r.ports.size());
  return total;
}

int Topology::LinkIndex(const LinkId& link) const {
  if (link.from_ni) {
    AETHEREAL_CHECK(link.node >= 0 && link.node < NumNis());
    return link.node;
  }
  AETHEREAL_CHECK(link.node >= 0 && link.node < NumRouters());
  AETHEREAL_CHECK(link.port >= 0 && link.port < RouterPorts(link.node));
  int base = NumNis();
  for (RouterId r = 0; r < link.node; ++r) base += RouterPorts(r);
  return base + link.port;
}

std::string Topology::LinkName(const LinkId& link) const {
  std::ostringstream oss;
  if (link.from_ni) {
    oss << "ni" << link.node << "->router";
  } else {
    oss << "router" << link.node << ".port" << link.port;
  }
  return oss.str();
}

}  // namespace aethereal::topology
