// NoC topology graph: routers, network interfaces, and directed links.
//
// The topology is a design-time artifact (the paper instantiates it from an
// XML description). It provides:
//  * connectivity (router<->router and NI<->router attachments),
//  * source-route computation (the `path` written into NI registers when a
//    channel is configured, Fig. 9),
//  * stable directed-link identifiers, used by the TDM slot allocator to
//    reserve slots along a path.
#ifndef AETHEREAL_TOPOLOGY_TOPOLOGY_H
#define AETHEREAL_TOPOLOGY_TOPOLOGY_H

#include <string>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace aethereal::topology {

/// What a router port is wired to.
enum class EndpointKind { kUnconnected, kRouter, kNi };

struct Endpoint {
  EndpointKind kind = EndpointKind::kUnconnected;
  std::int32_t id = kInvalidId;  // RouterId or NiId
  int port = 0;                  // peer router port (kRouter only)
};

/// A directed link carrying flits. Every NI has one injection link (NI ->
/// router); every connected router port has one output link (router ->
/// peer). Slot reservations are per directed link.
struct LinkId {
  bool from_ni = false;
  std::int32_t node = kInvalidId;  // NiId if from_ni, else RouterId
  int port = 0;                    // router output port (routers only)

  friend bool operator==(const LinkId&, const LinkId&) = default;
};

/// The full path of one channel through the network, as needed by the slot
/// allocator: the injection link plus each router output link, in order.
struct ChannelRoute {
  NiId source_ni = kInvalidId;
  NiId dest_ni = kInvalidId;
  std::vector<int> hops;         // output port at each traversed router
  std::vector<LinkId> links;     // injection link + one link per hop
};

class Topology {
 public:
  /// Adds a router with `num_ports` ports; returns its id.
  RouterId AddRouter(int num_ports);

  /// Adds a network interface (not yet attached); returns its id.
  NiId AddNi();

  /// Wires router `a` port `pa` to router `b` port `pb` (both directions).
  Status ConnectRouters(RouterId a, int pa, RouterId b, int pb);

  /// Attaches NI `ni` to router `r` port `p` (both directions).
  Status AttachNi(NiId ni, RouterId r, int p);

  int NumRouters() const { return static_cast<int>(routers_.size()); }
  int NumNis() const { return static_cast<int>(nis_.size()); }
  int RouterPorts(RouterId r) const;

  /// The endpoint wired to router `r` port `p`.
  const Endpoint& PortPeer(RouterId r, int p) const;

  /// Router an NI is attached to and the attaching port.
  RouterId NiRouter(NiId ni) const;
  int NiRouterPort(NiId ni) const;

  /// Shortest route (BFS, deterministic tie-break by port number) from one
  /// NI to another: the output port at each traversed router, ending with
  /// the port where `to` is attached. Fails if disconnected or if the hop
  /// count exceeds what a packet header can carry.
  Result<std::vector<int>> RouteHops(NiId from, NiId to) const;

  /// Full channel route including directed link ids (for slot allocation).
  Result<ChannelRoute> Route(NiId from, NiId to) const;

  /// Total number of directed links (for allocator table sizing).
  int NumLinks() const;

  /// Dense index of a directed link in [0, NumLinks()).
  int LinkIndex(const LinkId& link) const;

  /// Human-readable link name for diagnostics.
  std::string LinkName(const LinkId& link) const;

 private:
  struct RouterNode {
    std::vector<Endpoint> ports;
  };
  struct NiNode {
    RouterId router = kInvalidId;
    int router_port = 0;
    bool attached = false;
  };

  std::vector<RouterNode> routers_;
  std::vector<NiNode> nis_;
};

}  // namespace aethereal::topology

#endif  // AETHEREAL_TOPOLOGY_TOPOLOGY_H
