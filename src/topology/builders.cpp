#include "topology/builders.h"

#include "util/check.h"

namespace aethereal::topology {

RouterId Mesh::RouterAt(int row, int col) const {
  AETHEREAL_CHECK(row >= 0 && row < rows && col >= 0 && col < cols);
  return routers[static_cast<std::size_t>(row * cols + col)];
}

NiId Mesh::NiAt(int row, int col, int local) const {
  AETHEREAL_CHECK(local >= 0 && local < nis_per_router);
  const int router_index = row * cols + col;
  return nis[static_cast<std::size_t>(router_index * nis_per_router + local)];
}

Mesh BuildMesh(int rows, int cols, int nis_per_router) {
  AETHEREAL_CHECK(rows > 0 && cols > 0 && nis_per_router >= 0);
  Mesh mesh;
  mesh.rows = rows;
  mesh.cols = cols;
  mesh.nis_per_router = nis_per_router;
  const int ports = kMeshLocalBase + nis_per_router;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      mesh.routers.push_back(mesh.topology.AddRouter(ports));
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const RouterId here = mesh.RouterAt(r, c);
      if (c + 1 < cols) {
        AETHEREAL_CHECK(mesh.topology
                            .ConnectRouters(here, kMeshEast,
                                            mesh.RouterAt(r, c + 1), kMeshWest)
                            .ok());
      }
      if (r + 1 < rows) {
        AETHEREAL_CHECK(mesh.topology
                            .ConnectRouters(here, kMeshSouth,
                                            mesh.RouterAt(r + 1, c), kMeshNorth)
                            .ok());
      }
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      for (int k = 0; k < nis_per_router; ++k) {
        const NiId ni = mesh.topology.AddNi();
        mesh.nis.push_back(ni);
        AETHEREAL_CHECK(mesh.topology
                            .AttachNi(ni, mesh.RouterAt(r, c),
                                      kMeshLocalBase + k)
                            .ok());
      }
    }
  }
  return mesh;
}

Star BuildStar(int num_nis) {
  AETHEREAL_CHECK(num_nis > 0);
  Star star;
  star.router = star.topology.AddRouter(num_nis);
  for (int i = 0; i < num_nis; ++i) {
    const NiId ni = star.topology.AddNi();
    star.nis.push_back(ni);
    AETHEREAL_CHECK(star.topology.AttachNi(ni, star.router, i).ok());
  }
  return star;
}

NiId Ring::NiAt(int router_index, int local) const {
  AETHEREAL_CHECK(local >= 0 && local < nis_per_router);
  return nis[static_cast<std::size_t>(router_index * nis_per_router + local)];
}

Ring BuildRing(int num_routers, int nis_per_router) {
  AETHEREAL_CHECK(num_routers >= 2 && nis_per_router >= 0);
  Ring ring;
  ring.nis_per_router = nis_per_router;
  const int ports = 2 + nis_per_router;
  for (int i = 0; i < num_routers; ++i) {
    ring.routers.push_back(ring.topology.AddRouter(ports));
  }
  for (int i = 0; i < num_routers; ++i) {
    const int next = (i + 1) % num_routers;
    AETHEREAL_CHECK(ring.topology
                        .ConnectRouters(ring.routers[static_cast<std::size_t>(i)], 0,
                                        ring.routers[static_cast<std::size_t>(next)], 1)
                        .ok());
  }
  for (int i = 0; i < num_routers; ++i) {
    for (int k = 0; k < nis_per_router; ++k) {
      const NiId ni = ring.topology.AddNi();
      ring.nis.push_back(ni);
      AETHEREAL_CHECK(
          ring.topology.AttachNi(ni, ring.routers[static_cast<std::size_t>(i)], 2 + k)
              .ok());
    }
  }
  return ring;
}

}  // namespace aethereal::topology
