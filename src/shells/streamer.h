// Building blocks shared by all NI shells: sequentialization of messages
// into NI-port word streams (with a configurable pipeline latency, e.g. the
// 2-cycle DTL master sequentializer of paper §5) and desequentialization of
// word streams back into messages.
#ifndef AETHEREAL_SHELLS_STREAMER_H
#define AETHEREAL_SHELLS_STREAMER_H

#include <deque>

#include "core/ni_kernel.h"
#include "transaction/message.h"
#include "util/check.h"
#include "util/types.h"

namespace aethereal::shells {

/// Sequentializer (Seq in Figs. 5-6): accepts encoded message words and
/// streams them into an NI-port source queue at one word per cycle, after a
/// fixed pipeline delay. Owned by a shell; Tick() is called from the shell's
/// Evaluate.
class MessageStreamer {
 public:
  MessageStreamer(core::NiPort* port, int connid, int pipeline_cycles,
                  int staging_capacity = 64)
      : port_(port),
        connid_(connid),
        pipeline_cycles_(pipeline_cycles),
        staging_capacity_(staging_capacity) {
    AETHEREAL_CHECK(port != nullptr);
    AETHEREAL_CHECK(pipeline_cycles >= 0);
    AETHEREAL_CHECK(staging_capacity > 0);
  }

  /// True if `words` more words fit in the staging buffer.
  bool CanAccept(int words) const {
    return static_cast<int>(staging_.size()) + words <= staging_capacity_;
  }

  /// Stages an encoded message. If `flush_after` is set, the NI data-flush
  /// signal is raised once the last word has entered the port (used for
  /// messages the IP blocks on, e.g. acknowledged writes — paper §4.1).
  void Accept(const std::vector<Word>& words, Cycle now, bool flush_after) {
    AETHEREAL_CHECK_MSG(CanAccept(static_cast<int>(words.size())),
                        "streamer staging overflow");
    for (std::size_t i = 0; i < words.size(); ++i) {
      staging_.push_back(Staged{words[i], now + pipeline_cycles_,
                                flush_after && i + 1 == words.size()});
    }
  }

  /// Moves at most one ready word into the port per cycle.
  void Tick(Cycle now) {
    if (staging_.empty()) return;
    const Staged& head = staging_.front();
    if (head.ready > now) return;
    if (!port_->CanWrite(connid_)) return;
    port_->Write(connid_, head.word);
    if (head.flush_after) port_->FlushData(connid_);
    staging_.pop_front();
  }

  int Backlog() const { return static_cast<int>(staging_.size()); }
  int connid() const { return connid_; }

 private:
  struct Staged {
    Word word;
    Cycle ready;
    bool flush_after;
  };
  core::NiPort* port_;
  int connid_;
  Cycle pipeline_cycles_;
  int staging_capacity_;
  std::deque<Staged> staging_;
};

/// Desequentializer (Deseq): drains an NI-port destination queue one word
/// per cycle through a framer, yielding complete messages.
template <typename MessageT>
class MessageCollector {
 public:
  MessageCollector(core::NiPort* port, int connid)
      : port_(port), connid_(connid) {
    AETHEREAL_CHECK(port != nullptr);
  }

  void Tick() {
    if (port_->ReadAvailable(connid_) == 0) return;
    const Word word = port_->Read(connid_);
    if (framer_.Feed(word)) {
      auto decoded = framer_.Take();
      AETHEREAL_CHECK_MSG(decoded.ok(),
                          "malformed message on connid "
                              << connid_ << ": " << decoded.status());
      completed_.push_back(std::move(*decoded));
    }
  }

  bool HasMessage() const { return !completed_.empty(); }
  int MessageCount() const { return static_cast<int>(completed_.size()); }

  const MessageT& Front() const {
    AETHEREAL_CHECK(HasMessage());
    return completed_.front();
  }

  MessageT Pop() {
    AETHEREAL_CHECK(HasMessage());
    MessageT msg = std::move(completed_.front());
    completed_.pop_front();
    return msg;
  }

  int connid() const { return connid_; }

 private:
  core::NiPort* port_;
  int connid_;
  transaction::Framer<MessageT> framer_;
  std::deque<MessageT> completed_;
};

using RequestCollector = MessageCollector<transaction::RequestMessage>;
using ResponseCollector = MessageCollector<transaction::ResponseMessage>;

}  // namespace aethereal::shells

#endif  // AETHEREAL_SHELLS_STREAMER_H
