// Slave shell (paper Fig. 6): desequentializes request messages for a slave
// IP module and sequentializes its responses back into the NoC.
#ifndef AETHEREAL_SHELLS_SLAVE_SHELL_H
#define AETHEREAL_SHELLS_SLAVE_SHELL_H

#include <string>

#include "shells/endpoints.h"
#include "shells/streamer.h"
#include "sim/kernel.h"
#include "transaction/message.h"

namespace aethereal::shells {

/// Default sequentialization latency of the DTL-style slave shell (the
/// paper's slave shell is smaller and shallower than the master's).
inline constexpr int kSlaveShellPipelineCycles = 1;

class SlaveShell : public sim::Module, public SlaveEndpoint {
 public:
  SlaveShell(std::string name, core::NiPort* port, int connid,
             int pipeline_cycles = kSlaveShellPipelineCycles);

  bool HasRequest() const override { return collector_.HasMessage(); }
  const transaction::RequestMessage& PeekRequest() const {
    return collector_.Front();
  }
  transaction::RequestMessage PopRequest() override { return collector_.Pop(); }

  /// True if a response with `payload_words` data words can be queued.
  bool CanRespond(int payload_words = 0) const override;

  /// Queues a response message toward the master. Responses flush the NI
  /// channel: a master is typically blocked on them.
  void Respond(const transaction::ResponseMessage& msg) override;

  void Evaluate() override;

 private:
  MessageStreamer streamer_;
  RequestCollector collector_;
};

}  // namespace aethereal::shells

#endif  // AETHEREAL_SHELLS_SLAVE_SHELL_H
