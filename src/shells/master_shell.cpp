#include "shells/master_shell.h"

namespace aethereal::shells {

using transaction::Command;
using transaction::RequestMessage;

MasterShell::MasterShell(std::string name, core::NiPort* port, int connid,
                         int pipeline_cycles)
    : sim::Module(std::move(name)),
      streamer_(port, connid, pipeline_cycles),
      collector_(port, connid) {}

bool MasterShell::CanIssue(int payload_words) const {
  return streamer_.CanAccept(2 + payload_words);
}

int MasterShell::NextSeqno() {
  const int assigned = seqno_;
  seqno_ = (seqno_ + 1) % (transaction::kMaxSequenceNumber + 1);
  return assigned;
}

int MasterShell::Issue(RequestMessage msg, bool flush) {
  msg.sequence_number = NextSeqno();
  if (msg.ExpectsResponse()) ++outstanding_;
  streamer_.Accept(msg.Encode(), CycleCount(), flush);
  return msg.sequence_number;
}

int MasterShell::IssueRead(Word address, int length, int transaction_id) {
  RequestMessage msg;
  msg.cmd = Command::kRead;
  msg.address = address;
  msg.read_length = length;
  msg.transaction_id = transaction_id;
  // Reads block the IP on the response: flush so the request is never
  // parked under the send threshold.
  return Issue(std::move(msg), /*flush=*/true);
}

int MasterShell::IssueWrite(Word address, const std::vector<Word>& data,
                            bool needs_ack, int transaction_id) {
  RequestMessage msg;
  msg.cmd = Command::kWrite;
  msg.address = address;
  msg.data = data;
  msg.flags = needs_ack ? transaction::kFlagNeedsAck : transaction::kFlagPosted;
  msg.transaction_id = transaction_id;
  return Issue(std::move(msg), /*flush=*/needs_ack);
}

int MasterShell::IssueReadLinked(Word address, int length, int transaction_id) {
  RequestMessage msg;
  msg.cmd = Command::kReadLinked;
  msg.address = address;
  msg.read_length = length;
  msg.transaction_id = transaction_id;
  return Issue(std::move(msg), /*flush=*/true);
}

int MasterShell::IssueWriteConditional(Word address,
                                       const std::vector<Word>& data,
                                       int transaction_id) {
  RequestMessage msg;
  msg.cmd = Command::kWriteConditional;
  msg.address = address;
  msg.data = data;
  // Write-conditional always returns a status response.
  msg.flags = transaction::kFlagNeedsAck;
  msg.transaction_id = transaction_id;
  return Issue(std::move(msg), /*flush=*/true);
}

void MasterShell::Evaluate() {
  streamer_.Tick(CycleCount());
  const int before = collector_.MessageCount();
  collector_.Tick();
  if (collector_.MessageCount() > before) --outstanding_;
}

}  // namespace aethereal::shells
