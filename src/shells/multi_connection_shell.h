// Multi-connection shell (paper Fig. 4): lets a slave IP speaking a
// connectionless protocol (e.g. DTL) serve several connections through one
// port. A scheduler selects which connection's request message is consumed
// next (based on queue filling, as the paper suggests, with round-robin
// tie-break), and a connection-id history routes the IP's in-order
// responses back to the right connection.
#ifndef AETHEREAL_SHELLS_MULTI_CONNECTION_SHELL_H
#define AETHEREAL_SHELLS_MULTI_CONNECTION_SHELL_H

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "shells/endpoints.h"
#include "shells/streamer.h"
#include "sim/kernel.h"
#include "transaction/message.h"

namespace aethereal::shells {

class MultiConnectionShell : public sim::Module, public SlaveEndpoint {
 public:
  enum class SelectPolicy { kQueueFill, kRoundRobin };

  MultiConnectionShell(std::string name, core::NiPort* port,
                       std::vector<int> connids,
                       SelectPolicy policy = SelectPolicy::kQueueFill,
                       int pipeline_cycles = 1);

  int NumConnections() const { return static_cast<int>(collectors_.size()); }

  /// True if some connection has a complete request.
  bool HasRequest() const override;

  /// Pops the scheduled request. If it expects a response, the connection
  /// is recorded so the next Respond() is routed back correctly.
  transaction::RequestMessage PopRequest() override;

  /// Connection index the *last popped* request arrived on (for IPs that
  /// care, e.g. for differentiated service).
  int LastRequestConnection() const { return last_connection_; }

  bool CanRespond(int payload_words = 0) const override;

  /// Responds to the oldest popped-but-unanswered request.
  void Respond(const transaction::ResponseMessage& msg) override;

  void Evaluate() override;

 private:
  int SelectConnection() const;

  std::vector<std::unique_ptr<MessageStreamer>> streamers_;
  std::vector<std::unique_ptr<RequestCollector>> collectors_;
  SelectPolicy policy_;
  std::deque<int> response_history_;  // connection index per expected resp.
  mutable int rr_pointer_ = 0;
  int last_connection_ = -1;
};

}  // namespace aethereal::shells

#endif  // AETHEREAL_SHELLS_MULTI_CONNECTION_SHELL_H
