#include "shells/narrowcast_shell.h"

namespace aethereal::shells {

using transaction::Command;
using transaction::RequestMessage;
using transaction::ResponseError;
using transaction::ResponseMessage;

NarrowcastShell::NarrowcastShell(std::string name, core::NiPort* port,
                                 std::vector<int> connids, int pipeline_cycles)
    : sim::Module(std::move(name)) {
  AETHEREAL_CHECK_MSG(!connids.empty(), "narrowcast needs at least one slave");
  for (int connid : connids) {
    streamers_.push_back(
        std::make_unique<MessageStreamer>(port, connid, pipeline_cycles));
    collectors_.push_back(std::make_unique<ResponseCollector>(port, connid));
  }
}

Status NarrowcastShell::MapRange(Word base, Word size, int slave_index) {
  if (slave_index < 0 || slave_index >= NumSlaves()) {
    return InvalidArgumentError("slave index out of range");
  }
  if (size == 0) return InvalidArgumentError("empty range");
  for (const Range& r : ranges_) {
    const bool disjoint = base + size <= r.base || r.base + r.size <= base;
    if (!disjoint) return AlreadyExistsError("address ranges overlap");
  }
  ranges_.push_back(Range{base, size, slave_index});
  return OkStatus();
}

Result<int> NarrowcastShell::DecodeAddress(Word address) const {
  for (const Range& r : ranges_) {
    if (address >= r.base && address - r.base < r.size) return r.slave_index;
  }
  return NotFoundError("address not mapped to any slave");
}

bool NarrowcastShell::CanIssue(int payload_words) const {
  // Conservative: the target is known only at issue time, so require room
  // in every per-slave streamer.
  for (const auto& s : streamers_) {
    if (!s->CanAccept(2 + payload_words)) return false;
  }
  return true;
}

int NarrowcastShell::Issue(RequestMessage msg, bool flush) {
  msg.sequence_number = seqno_;
  seqno_ = (seqno_ + 1) % (transaction::kMaxSequenceNumber + 1);
  auto target = DecodeAddress(msg.address);
  if (!target.ok()) {
    // Synthesize an in-order error response if one is expected.
    if (msg.ExpectsResponse()) {
      ResponseMessage err;
      err.transaction_id = msg.transaction_id;
      err.sequence_number = msg.sequence_number;
      err.error = ResponseError::kUnmappedAddress;
      err.is_write_ack = msg.IsWrite();
      history_.push_back(HistoryEntry{-1, true, std::move(err)});
    }
    return msg.sequence_number;
  }
  history_.push_back(HistoryEntry{*target, msg.ExpectsResponse(), {}});
  streamers_[static_cast<std::size_t>(*target)]->Accept(msg.Encode(),
                                                        CycleCount(), flush);
  return msg.sequence_number;
}

int NarrowcastShell::IssueRead(Word address, int length, int transaction_id) {
  RequestMessage msg;
  msg.cmd = Command::kRead;
  msg.address = address;
  msg.read_length = length;
  msg.transaction_id = transaction_id;
  return Issue(std::move(msg), /*flush=*/true);
}

int NarrowcastShell::IssueWrite(Word address, const std::vector<Word>& data,
                                bool needs_ack, int transaction_id) {
  RequestMessage msg;
  msg.cmd = Command::kWrite;
  msg.address = address;
  msg.data = data;
  msg.flags = needs_ack ? transaction::kFlagNeedsAck : transaction::kFlagPosted;
  msg.transaction_id = transaction_id;
  return Issue(std::move(msg), /*flush=*/needs_ack);
}

bool NarrowcastShell::HasResponse() const {
  // Walk past history entries that expect no response; the next response
  // is visible only if it belongs to the oldest outstanding transaction.
  for (const HistoryEntry& entry : history_) {
    if (!entry.expects_response) continue;
    if (entry.slave_index < 0) return true;  // synthesized error
    return collectors_[static_cast<std::size_t>(entry.slave_index)]
        ->HasMessage();
  }
  return false;
}

ResponseMessage NarrowcastShell::PopResponse() {
  AETHEREAL_CHECK_MSG(HasResponse(), name() << ": no in-order response ready");
  while (!history_.front().expects_response) history_.pop_front();
  HistoryEntry entry = std::move(history_.front());
  history_.pop_front();
  if (entry.slave_index < 0) return entry.synthesized;
  return collectors_[static_cast<std::size_t>(entry.slave_index)]->Pop();
}

void NarrowcastShell::Evaluate() {
  const Cycle now = CycleCount();
  for (auto& s : streamers_) s->Tick(now);
  for (auto& c : collectors_) c->Tick();
}

}  // namespace aethereal::shells
