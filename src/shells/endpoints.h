// Abstract transaction endpoints offered by shells to IP modules.
//
// IP models (traffic generators, memories) bind to these interfaces so the
// same IP works behind a plain master/slave shell, a narrowcast shell, or a
// multi-connection shell — the decoupling of computation from communication
// the paper's transport-level services provide.
#ifndef AETHEREAL_SHELLS_ENDPOINTS_H
#define AETHEREAL_SHELLS_ENDPOINTS_H

#include <vector>

#include "transaction/message.h"
#include "util/types.h"

namespace aethereal::shells {

/// What a master IP module sees: issue transactions, collect responses.
class MasterEndpoint {
 public:
  virtual ~MasterEndpoint() = default;
  virtual bool CanIssue(int payload_words) const = 0;
  virtual int IssueRead(Word address, int length, int transaction_id) = 0;
  virtual int IssueWrite(Word address, const std::vector<Word>& data,
                         bool needs_ack, int transaction_id) = 0;
  virtual bool HasResponse() const = 0;
  virtual transaction::ResponseMessage PopResponse() = 0;
};

/// What a slave IP module sees: receive requests, send responses.
class SlaveEndpoint {
 public:
  virtual ~SlaveEndpoint() = default;
  virtual bool HasRequest() const = 0;
  virtual transaction::RequestMessage PopRequest() = 0;
  virtual bool CanRespond(int payload_words) const = 0;
  virtual void Respond(const transaction::ResponseMessage& msg) = 0;
};

}  // namespace aethereal::shells

#endif  // AETHEREAL_SHELLS_ENDPOINTS_H
