#include "shells/slave_shell.h"

namespace aethereal::shells {

SlaveShell::SlaveShell(std::string name, core::NiPort* port, int connid,
                       int pipeline_cycles)
    : sim::Module(std::move(name)),
      streamer_(port, connid, pipeline_cycles),
      collector_(port, connid) {}

bool SlaveShell::CanRespond(int payload_words) const {
  return streamer_.CanAccept(1 + payload_words);
}

void SlaveShell::Respond(const transaction::ResponseMessage& msg) {
  streamer_.Accept(msg.Encode(), CycleCount(), /*flush_after=*/true);
}

void SlaveShell::Evaluate() {
  collector_.Tick();
  streamer_.Tick(CycleCount());
}

}  // namespace aethereal::shells
