#include "shells/multicast_shell.h"

namespace aethereal::shells {

using transaction::Command;
using transaction::RequestMessage;
using transaction::ResponseError;
using transaction::ResponseMessage;

MulticastShell::MulticastShell(std::string name, core::NiPort* port,
                               std::vector<int> connids, int pipeline_cycles)
    : sim::Module(std::move(name)) {
  AETHEREAL_CHECK_MSG(!connids.empty(), "multicast needs at least one slave");
  for (int connid : connids) {
    streamers_.push_back(
        std::make_unique<MessageStreamer>(port, connid, pipeline_cycles));
    collectors_.push_back(std::make_unique<ResponseCollector>(port, connid));
  }
}

bool MulticastShell::CanIssue(int payload_words) const {
  for (const auto& s : streamers_) {
    if (!s->CanAccept(2 + payload_words)) return false;
  }
  return true;
}

int MulticastShell::IssueWrite(Word address, const std::vector<Word>& data,
                               bool needs_ack, int transaction_id) {
  AETHEREAL_CHECK_MSG(CanIssue(static_cast<int>(data.size())),
                      name() << ": issue while streamers full");
  RequestMessage msg;
  msg.cmd = Command::kWrite;
  msg.address = address;
  msg.data = data;
  msg.flags = needs_ack ? transaction::kFlagNeedsAck : transaction::kFlagPosted;
  msg.transaction_id = transaction_id;
  msg.sequence_number = seqno_;
  seqno_ = (seqno_ + 1) % (transaction::kMaxSequenceNumber + 1);
  const auto words = msg.Encode();
  for (auto& s : streamers_) {
    s->Accept(words, CycleCount(), /*flush_after=*/needs_ack);
  }
  if (needs_ack) {
    pending_.push_back(PendingAck{transaction_id, msg.sequence_number,
                                  NumSlaves(), ResponseError::kOk});
  }
  return msg.sequence_number;
}

Status MulticastShell::IssueRead(Word /*address*/, int /*length*/,
                                 int /*transaction_id*/) {
  return InvalidArgumentError(
      "reads are not defined on multicast connections");
}

bool MulticastShell::HasResponse() const {
  return !pending_.empty() && pending_.front().remaining == 0;
}

ResponseMessage MulticastShell::PopResponse() {
  AETHEREAL_CHECK(HasResponse());
  const PendingAck ack = pending_.front();
  pending_.pop_front();
  ResponseMessage msg;
  msg.transaction_id = ack.transaction_id;
  msg.sequence_number = ack.sequence_number;
  msg.is_write_ack = true;
  msg.error = ack.merged_error;
  return msg;
}

void MulticastShell::Evaluate() {
  const Cycle now = CycleCount();
  for (auto& s : streamers_) s->Tick(now);
  for (auto& c : collectors_) {
    c->Tick();
    // Merge arriving acknowledgments into the oldest incomplete entry for
    // the matching sequence number (per-slave channels are in order, so the
    // oldest unmatched entry is always the right one).
    while (c->HasMessage()) {
      const ResponseMessage ack = c->Pop();
      AETHEREAL_CHECK_MSG(ack.is_write_ack,
                          name() << ": data response on multicast connection");
      bool matched = false;
      for (auto& pending : pending_) {
        if (pending.sequence_number == ack.sequence_number &&
            pending.remaining > 0) {
          --pending.remaining;
          if (pending.merged_error == ResponseError::kOk &&
              ack.error != ResponseError::kOk) {
            pending.merged_error = ack.error;
          }
          matched = true;
          break;
        }
      }
      AETHEREAL_CHECK_MSG(matched, name() << ": unmatched acknowledgment");
    }
  }
}

}  // namespace aethereal::shells
