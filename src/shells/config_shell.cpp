#include "shells/config_shell.h"

#include "core/registers.h"

namespace aethereal::shells {

using transaction::Command;
using transaction::RequestMessage;
using transaction::ResponseError;
using transaction::ResponseMessage;

ConfigShell::ConfigShell(std::string name, core::NiKernel* local_kernel,
                         core::NiPort* port,
                         std::map<NiId, int> remote_connids,
                         int pipeline_cycles)
    : sim::Module(std::move(name)),
      local_kernel_(local_kernel),
      remote_connids_(std::move(remote_connids)) {
  AETHEREAL_CHECK(local_kernel != nullptr);
  for (const auto& [ni, connid] : remote_connids_) {
    AETHEREAL_CHECK_MSG(ni != local_kernel->id(),
                        "local NI must not have a remote config connection");
    streamer_index_[ni] = streamers_.size();
    streamers_.push_back(
        std::make_unique<MessageStreamer>(port, connid, pipeline_cycles));
    collectors_.push_back(std::make_unique<ResponseCollector>(port, connid));
  }
}

bool ConfigShell::CanReach(NiId ni) const {
  return ni == local_kernel_->id() || remote_connids_.count(ni) > 0;
}

bool ConfigShell::CanIssue() const {
  for (const auto& s : streamers_) {
    if (!s->CanAccept(3)) return false;
  }
  return local_ops_.size() < 64;
}

int ConfigShell::NextTid() {
  const int tid = tid_;
  tid_ = (tid_ + 1) % (transaction::kMaxTransactionId + 1);
  return tid;
}

MessageStreamer* ConfigShell::StreamerFor(NiId ni) {
  auto it = streamer_index_.find(ni);
  AETHEREAL_CHECK_MSG(it != streamer_index_.end(),
                      name() << ": no config connection to NI " << ni);
  return streamers_[it->second].get();
}

int ConfigShell::WriteRegister(NiId ni, Word reg, Word value, bool acked) {
  const int tid = NextTid();
  if (ni == local_kernel_->id()) {
    local_ops_.push_back(
        LocalOp{false, reg, value, acked, tid, CycleCount() + 1});
    ++local_writes_;
    return tid;
  }
  RequestMessage msg;
  msg.cmd = Command::kWrite;
  msg.address = reg;
  msg.data = {value};
  msg.flags = acked ? transaction::kFlagNeedsAck : transaction::kFlagPosted;
  msg.transaction_id = tid;
  // Configuration messages are sparse and latency-critical: always flush.
  StreamerFor(ni)->Accept(msg.Encode(), CycleCount(), /*flush_after=*/true);
  ++remote_writes_;
  return tid;
}

int ConfigShell::ReadRegister(NiId ni, Word reg) {
  const int tid = NextTid();
  if (ni == local_kernel_->id()) {
    local_ops_.push_back(LocalOp{true, reg, 0, true, tid, CycleCount() + 1});
    return tid;
  }
  RequestMessage msg;
  msg.cmd = Command::kRead;
  msg.address = reg;
  msg.read_length = 1;
  msg.transaction_id = tid;
  StreamerFor(ni)->Accept(msg.Encode(), CycleCount(), /*flush_after=*/true);
  return tid;
}

bool ConfigShell::HasResponse() const { return !responses_.empty(); }

bool ConfigShell::TakeResponseFor(const std::vector<int>& tids,
                                  transaction::ResponseMessage* out) {
  for (auto it = responses_.begin(); it != responses_.end(); ++it) {
    for (int tid : tids) {
      if (it->transaction_id == tid) {
        *out = std::move(*it);
        responses_.erase(it);
        return true;
      }
    }
  }
  return false;
}

ResponseMessage ConfigShell::PopResponse() {
  AETHEREAL_CHECK(!responses_.empty());
  ResponseMessage msg = std::move(responses_.front());
  responses_.pop_front();
  return msg;
}

void ConfigShell::Evaluate() {
  const Cycle now = CycleCount();
  for (auto& s : streamers_) s->Tick(now);
  for (auto& c : collectors_) {
    c->Tick();
    while (c->HasMessage()) responses_.push_back(c->Pop());
  }
  // Execute at most one local register access per cycle.
  if (!local_ops_.empty() && local_ops_.front().ready <= now) {
    const LocalOp op = local_ops_.front();
    local_ops_.pop_front();
    if (op.is_read) {
      ResponseMessage rsp;
      rsp.transaction_id = op.transaction_id;
      auto value = local_kernel_->ReadRegister(op.reg);
      if (value.ok()) {
        rsp.data = {*value};
      } else {
        rsp.error = ResponseError::kUnmappedAddress;
      }
      responses_.push_back(std::move(rsp));
    } else {
      const Status status = local_kernel_->WriteRegister(op.reg, op.value);
      if (op.acked) {
        ResponseMessage rsp;
        rsp.transaction_id = op.transaction_id;
        rsp.is_write_ack = true;
        rsp.error = status.ok() ? ResponseError::kOk
                                : ResponseError::kUnmappedAddress;
        responses_.push_back(std::move(rsp));
      }
    }
  }
}

}  // namespace aethereal::shells
