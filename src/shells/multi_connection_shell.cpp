#include "shells/multi_connection_shell.h"

namespace aethereal::shells {

using transaction::RequestMessage;
using transaction::ResponseMessage;

MultiConnectionShell::MultiConnectionShell(std::string name,
                                           core::NiPort* port,
                                           std::vector<int> connids,
                                           SelectPolicy policy,
                                           int pipeline_cycles)
    : sim::Module(std::move(name)), policy_(policy) {
  AETHEREAL_CHECK_MSG(!connids.empty(),
                      "multi-connection shell needs a connection");
  for (int connid : connids) {
    streamers_.push_back(
        std::make_unique<MessageStreamer>(port, connid, pipeline_cycles));
    collectors_.push_back(std::make_unique<RequestCollector>(port, connid));
  }
}

int MultiConnectionShell::SelectConnection() const {
  const int n = NumConnections();
  switch (policy_) {
    case SelectPolicy::kQueueFill: {
      int best = -1;
      int best_fill = 0;
      for (int k = 0; k < n; ++k) {
        // Scan from the round-robin pointer so equal fills rotate fairly.
        const int i = (rr_pointer_ + k) % n;
        const int fill = collectors_[static_cast<std::size_t>(i)]->MessageCount();
        if (fill > best_fill) {
          best_fill = fill;
          best = i;
        }
      }
      return best;
    }
    case SelectPolicy::kRoundRobin: {
      for (int k = 0; k < n; ++k) {
        const int i = (rr_pointer_ + k) % n;
        if (collectors_[static_cast<std::size_t>(i)]->HasMessage()) return i;
      }
      return -1;
    }
  }
  return -1;
}

bool MultiConnectionShell::HasRequest() const {
  return SelectConnection() >= 0;
}

RequestMessage MultiConnectionShell::PopRequest() {
  const int selected = SelectConnection();
  AETHEREAL_CHECK_MSG(selected >= 0, name() << ": no request available");
  rr_pointer_ = (selected + 1) % NumConnections();
  last_connection_ = selected;
  RequestMessage msg = collectors_[static_cast<std::size_t>(selected)]->Pop();
  if (msg.ExpectsResponse()) response_history_.push_back(selected);
  return msg;
}

bool MultiConnectionShell::CanRespond(int payload_words) const {
  if (response_history_.empty()) return false;
  return streamers_[static_cast<std::size_t>(response_history_.front())]
      ->CanAccept(1 + payload_words);
}

void MultiConnectionShell::Respond(const ResponseMessage& msg) {
  AETHEREAL_CHECK_MSG(!response_history_.empty(),
                      name() << ": response with no outstanding request");
  const int connection = response_history_.front();
  response_history_.pop_front();
  streamers_[static_cast<std::size_t>(connection)]->Accept(
      msg.Encode(), CycleCount(), /*flush_after=*/true);
}

void MultiConnectionShell::Evaluate() {
  const Cycle now = CycleCount();
  for (auto& s : streamers_) s->Tick(now);
  for (auto& c : collectors_) c->Tick();
}

}  // namespace aethereal::shells
