// Narrowcast shell (paper Fig. 3): one master, several slaves, each
// transaction executed by exactly one slave selected by its address.
//
// "Narrowcast connections provide a simple, low-cost solution for a single
// shared address space mapped on multiple memories." The shell is a
// collection of point-to-point connections, one per master-slave pair; the
// Conn block decodes the address against configurable ranges, and a history
// of connection ids (with expected-response flags) provides in-order
// response delivery to the master even when slaves answer out of order
// relative to each other.
#ifndef AETHEREAL_SHELLS_NARROWCAST_SHELL_H
#define AETHEREAL_SHELLS_NARROWCAST_SHELL_H

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "shells/endpoints.h"
#include "shells/streamer.h"
#include "sim/kernel.h"
#include "transaction/message.h"
#include "util/status.h"

namespace aethereal::shells {

class NarrowcastShell : public sim::Module, public MasterEndpoint {
 public:
  /// `connids`: the port channels of the per-slave point-to-point
  /// connections, in slave order.
  NarrowcastShell(std::string name, core::NiPort* port,
                  std::vector<int> connids, int pipeline_cycles = 2);

  /// Maps [base, base+size) to slave `slave_index` (an index into the
  /// connid list). Ranges must not overlap.
  Status MapRange(Word base, Word size, int slave_index);

  int NumSlaves() const { return static_cast<int>(streamers_.size()); }

  /// Address decode: slave index owning `address`, or error if unmapped.
  Result<int> DecodeAddress(Word address) const;

  bool CanIssue(int payload_words = 0) const override;

  /// Issue transactions; unmapped addresses synthesize an immediate error
  /// response (kUnmappedAddress) that is delivered in order.
  int IssueRead(Word address, int length, int transaction_id) override;
  int IssueWrite(Word address, const std::vector<Word>& data, bool needs_ack,
                 int transaction_id) override;

  /// In-order response delivery (a response is only visible once all older
  /// transactions' responses have been delivered).
  bool HasResponse() const override;
  transaction::ResponseMessage PopResponse() override;

  void Evaluate() override;

 private:
  struct Range {
    Word base;
    Word size;
    int slave_index;
  };
  struct HistoryEntry {
    int slave_index;       // -1: locally synthesized error response
    bool expects_response;
    transaction::ResponseMessage synthesized;
  };

  int Issue(transaction::RequestMessage msg, bool flush);

  std::vector<std::unique_ptr<MessageStreamer>> streamers_;
  std::vector<std::unique_ptr<ResponseCollector>> collectors_;
  std::vector<Range> ranges_;
  std::deque<HistoryEntry> history_;
  int seqno_ = 0;
};

}  // namespace aethereal::shells

#endif  // AETHEREAL_SHELLS_NARROWCAST_SHELL_H
