// Multicast shell: one master, several slaves, every slave executes each
// transaction (paper §2). Implemented, like narrowcast, as a collection of
// point-to-point connections; write data is duplicated toward every slave.
//
// Reads are not meaningful on a multicast connection (several slaves would
// return colliding data) and are rejected; acknowledged writes gather one
// acknowledgment per slave and deliver a single merged acknowledgment to
// the master (the first non-OK error wins).
#ifndef AETHEREAL_SHELLS_MULTICAST_SHELL_H
#define AETHEREAL_SHELLS_MULTICAST_SHELL_H

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "shells/streamer.h"
#include "sim/kernel.h"
#include "transaction/message.h"
#include "util/status.h"

namespace aethereal::shells {

class MulticastShell : public sim::Module {
 public:
  MulticastShell(std::string name, core::NiPort* port,
                 std::vector<int> connids, int pipeline_cycles = 2);

  int NumSlaves() const { return static_cast<int>(streamers_.size()); }

  bool CanIssue(int payload_words = 0) const;

  /// Issues a write executed by all slaves. With `needs_ack`, one merged
  /// acknowledgment is delivered once every slave has acknowledged.
  int IssueWrite(Word address, const std::vector<Word>& data, bool needs_ack,
                 int transaction_id);

  /// Reads are rejected on multicast connections.
  Status IssueRead(Word address, int length, int transaction_id);

  bool HasResponse() const;
  transaction::ResponseMessage PopResponse();

  void Evaluate() override;

 private:
  struct PendingAck {
    int transaction_id;
    int sequence_number;
    int remaining;  // acknowledgments still missing
    transaction::ResponseError merged_error;
  };

  std::vector<std::unique_ptr<MessageStreamer>> streamers_;
  std::vector<std::unique_ptr<ResponseCollector>> collectors_;
  std::deque<PendingAck> pending_;  // in issue order
  int seqno_ = 0;
};

}  // namespace aethereal::shells

#endif  // AETHEREAL_SHELLS_MULTICAST_SHELL_H
