// Configuration shell (paper Figs. 8-9): sits at the configuration master's
// NI and gives it a DTL-MMIO view of every NI register in the NoC.
//
// "At the configuration module Cfg's NI, we introduce a configuration
// shell, which, based on the address, configures the local NI (NI1), or
// sends configuration messages via the NoC to other NIs. The configuration
// shell optimizes away the need for an extra data port at NI1 to be
// connected to NI1's CNIP."
//
// Addresses follow core/registers.h GlobalConfigAddress(ni, reg). Local
// accesses execute directly on the local NI kernel's register file (one
// cycle); remote accesses are sequentialized into request messages on the
// configuration connection toward the target NI's CNIP.
#ifndef AETHEREAL_SHELLS_CONFIG_SHELL_H
#define AETHEREAL_SHELLS_CONFIG_SHELL_H

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "shells/streamer.h"
#include "sim/kernel.h"
#include "transaction/message.h"
#include "util/status.h"

namespace aethereal::shells {

class ConfigShell : public sim::Module {
 public:
  /// `local_kernel`: the NI this shell sits on. `port`: the kernel port
  /// whose channels carry configuration connections. `remote_connids`:
  /// connid on that port per reachable remote NI.
  ConfigShell(std::string name, core::NiKernel* local_kernel,
              core::NiPort* port, std::map<NiId, int> remote_connids,
              int pipeline_cycles = 1);

  /// True if the configuration connection toward `ni` exists (the local NI
  /// needs none).
  bool CanReach(NiId ni) const;

  bool CanIssue() const;

  /// Writes `value` to `reg` of NI `ni`. With `acked`, an acknowledgment
  /// response is delivered through PopResponse(). Returns the transaction's
  /// assigned transaction id.
  int WriteRegister(NiId ni, Word reg, Word value, bool acked);

  /// Reads `reg` of NI `ni`; the value arrives as a response message.
  int ReadRegister(NiId ni, Word reg);

  bool HasResponse() const;
  transaction::ResponseMessage PopResponse();

  /// Removes and returns the first queued response whose transaction id is
  /// in `tids` (several agents can share the shell; each takes only its
  /// own responses).
  bool TakeResponseFor(const std::vector<int>& tids,
                       transaction::ResponseMessage* out);

  /// Register writes issued so far, split by destination (used by the
  /// configuration benches to reproduce the paper's register counts).
  std::int64_t local_writes() const { return local_writes_; }
  std::int64_t remote_writes() const { return remote_writes_; }

  void Evaluate() override;

 private:
  struct LocalOp {
    bool is_read;
    Word reg;
    Word value;
    bool acked;
    int transaction_id;
    Cycle ready;  // completes one cycle after issue
  };

  int NextTid();
  MessageStreamer* StreamerFor(NiId ni);

  core::NiKernel* local_kernel_;
  std::map<NiId, int> remote_connids_;
  std::vector<std::unique_ptr<MessageStreamer>> streamers_;
  std::vector<std::unique_ptr<ResponseCollector>> collectors_;
  std::map<NiId, std::size_t> streamer_index_;
  std::deque<LocalOp> local_ops_;
  std::deque<transaction::ResponseMessage> responses_;
  int tid_ = 0;
  std::int64_t local_writes_ = 0;
  std::int64_t remote_writes_ = 0;
};

}  // namespace aethereal::shells

#endif  // AETHEREAL_SHELLS_CONFIG_SHELL_H
