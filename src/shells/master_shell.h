// Master shell (paper Fig. 5): the point-to-point protocol adapter a master
// IP module uses. Sequentializes commands+flags, addresses and write data
// into request messages (2-cycle pipeline, as the simplified DTL master
// shell of paper §5) and desequentializes response messages into read data
// and write responses.
#ifndef AETHEREAL_SHELLS_MASTER_SHELL_H
#define AETHEREAL_SHELLS_MASTER_SHELL_H

#include <string>
#include <vector>

#include "shells/endpoints.h"
#include "shells/streamer.h"
#include "sim/kernel.h"
#include "transaction/message.h"

namespace aethereal::shells {

/// Default sequentialization latency of the DTL-style master shell.
inline constexpr int kMasterShellPipelineCycles = 2;

class MasterShell : public sim::Module, public MasterEndpoint {
 public:
  MasterShell(std::string name, core::NiPort* port, int connid,
              int pipeline_cycles = kMasterShellPipelineCycles);

  /// True if a transaction of `payload_words` data words can be issued now.
  bool CanIssue(int payload_words = 0) const override;

  /// Issues a read of `length` words at `address`. Returns the sequence
  /// number assigned to the transaction.
  int IssueRead(Word address, int length, int transaction_id) override;

  /// Issues a write. With `needs_ack`, the slave returns a write response
  /// and the shell flushes the NI channel so the IP is never starved
  /// waiting for the acknowledgment (paper §4.1).
  int IssueWrite(Word address, const std::vector<Word>& data, bool needs_ack,
                 int transaction_id) override;

  /// Issues a read-linked / write-conditional pair element (locked access).
  int IssueReadLinked(Word address, int length, int transaction_id);
  int IssueWriteConditional(Word address, const std::vector<Word>& data,
                            int transaction_id);

  bool HasResponse() const override { return collector_.HasMessage(); }
  transaction::ResponseMessage PopResponse() override { return collector_.Pop(); }

  /// Responses issued but not yet delivered.
  int OutstandingResponses() const { return outstanding_; }

  void Evaluate() override;

 private:
  int NextSeqno();
  int Issue(transaction::RequestMessage msg, bool flush);

  MessageStreamer streamer_;
  ResponseCollector collector_;
  int seqno_ = 0;
  int outstanding_ = 0;
};

}  // namespace aethereal::shells

#endif  // AETHEREAL_SHELLS_MASTER_SHELL_H
