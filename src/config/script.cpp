#include "config/script.h"

#include "util/check.h"

namespace aethereal::config {

ScriptedConfigDriver::ScriptedConfigDriver(std::string name,
                                           ConnectionManager* manager)
    : sim::Module(std::move(name)), manager_(manager) {
  AETHEREAL_CHECK(manager != nullptr);
  SetDefaultCommitOnly();  // no registered state, no Commit override
}

int ScriptedConfigDriver::Push(ScriptedOp op) {
  if (op.kind == ScriptedOp::Kind::kClose) {
    AETHEREAL_CHECK_MSG(op.open_ref >= 0 &&
                            op.open_ref < static_cast<int>(ops_.size()) &&
                            ops_[static_cast<std::size_t>(op.open_ref)].kind ==
                                ScriptedOp::Kind::kOpen,
                        name() << ": close must reference an earlier open");
  }
  ops_.push_back(std::move(op));
  Wake();
  return static_cast<int>(ops_.size() - 1);
}

int ScriptedConfigDriver::PushOpen(const ConnectionSpec& spec,
                                   Cycle not_before) {
  ScriptedOp op;
  op.kind = ScriptedOp::Kind::kOpen;
  op.spec = spec;
  op.not_before = not_before;
  return Push(std::move(op));
}

int ScriptedConfigDriver::PushClose(int open_ref, Cycle not_before) {
  ScriptedOp op;
  op.kind = ScriptedOp::Kind::kClose;
  op.open_ref = open_ref;
  op.not_before = not_before;
  return Push(std::move(op));
}

const ScriptedOp& ScriptedConfigDriver::op(std::size_t index) const {
  AETHEREAL_CHECK(index < ops_.size());
  return ops_[index];
}

void ScriptedConfigDriver::FinishOp(ScriptedOp& op, ConnectionState state,
                                    Status error) {
  op.done = true;
  op.final_state = state;
  op.error = std::move(error);
  if (op.error.ok()) {
    ++ops_succeeded_;
  } else {
    ++ops_failed_;
  }
}

void ScriptedConfigDriver::Evaluate() {
  const Cycle now = CycleCount();

  // Issue in script order. An op whose not_before lies in the future blocks
  // later ops too — the script is a sequence, not a bag.
  while (next_to_issue_ < ops_.size()) {
    ScriptedOp& op = ops_[next_to_issue_];
    if (now < op.not_before) break;
    if (op.kind == ScriptedOp::Kind::kOpen) {
      op.handle = manager_->RequestOpen(op.spec);
      op.issued = true;
      op.issued_at = now;
    } else {
      const ScriptedOp& open_op =
          ops_[static_cast<std::size_t>(op.open_ref)];
      op.handle = open_op.handle;
      op.issued = true;
      op.issued_at = now;
      if (open_op.done && !open_op.error.ok()) {
        FinishOp(op, ConnectionState::kFailed,
                 FailedPreconditionError(
                     "scripted close references an open that failed"));
      } else if (Status s = manager_->RequestClose(op.handle); !s.ok()) {
        // A close queued behind a still-pending open is accepted by the
        // manager (it serializes); only terminal rejections land here.
        FinishOp(op, manager_->StateOf(op.handle), std::move(s));
      }
    }
    ++next_to_issue_;
  }

  // Retire in script order (manager execution is serialized, so the oldest
  // unfinished op is always the next to complete).
  while (next_to_finish_ < ops_.size()) {
    ScriptedOp& op = ops_[next_to_finish_];
    if (!op.issued) break;
    if (!op.done) {
      const ConnectionState state = manager_->StateOf(op.handle);
      const bool open_done = op.kind == ScriptedOp::Kind::kOpen &&
                             (state == ConnectionState::kOpen ||
                              state == ConnectionState::kFailed);
      const bool close_done = op.kind == ScriptedOp::Kind::kClose &&
                              (state == ConnectionState::kClosed ||
                               state == ConnectionState::kFailed);
      if (!open_done && !close_done) break;
      op.completed_at = manager_->CompletionCycleOf(op.handle);
      if (op.kind == ScriptedOp::Kind::kOpen) {
        op.config_writes = manager_->ConfigWritesOf(op.handle);
        op.slots_delta = manager_->SlotsHeldOf(op.handle);
      } else {
        // The manager's counter is cumulative per handle; this op's share
        // is what came after the open's recorded count. Slots reclaimed =
        // exactly what the (successful) open had allocated.
        const ScriptedOp& open_op =
            ops_[static_cast<std::size_t>(op.open_ref)];
        op.config_writes =
            manager_->ConfigWritesOf(op.handle) - open_op.config_writes;
        if (state == ConnectionState::kClosed) {
          op.slots_delta = open_op.slots_delta;
        }
      }
      FinishOp(op, state,
               state == ConnectionState::kFailed ? manager_->ErrorOf(op.handle)
                                                 : OkStatus());
    }
    ++next_to_finish_;
  }

  // Nothing in flight and nothing scheduled: sleep until the next
  // scheduled issue (or a Push wakes us).
  if (Done()) {
    Park();
  } else if (next_to_issue_ < ops_.size() &&
             now < ops_[next_to_issue_].not_before &&
             next_to_finish_ == next_to_issue_) {
    ParkUntil(ops_[next_to_issue_].not_before);
  }
}

}  // namespace aethereal::config
