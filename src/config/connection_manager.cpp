#include "config/connection_manager.h"

#include <algorithm>

#include "core/registers.h"
#include "util/check.h"

namespace aethereal::config {

namespace regs = core::regs;
using transaction::ResponseError;

const char* ConnectionStateName(ConnectionState state) {
  switch (state) {
    case ConnectionState::kPending: return "pending";
    case ConnectionState::kOpen: return "open";
    case ConnectionState::kFailed: return "failed";
    case ConnectionState::kClosed: return "closed";
  }
  return "?";
}

ConnectionManager::ConnectionManager(
    std::string name, const topology::Topology* topology,
    tdm::CentralizedAllocator* allocator, shells::ConfigShell* shell,
    core::NiPort* cfg_port, NiId cfg_ni, std::map<NiId, int> cfg_connid_of_ni,
    std::map<NiId, CnipInfo> cnip_of_ni, QueueLookup lookup)
    : sim::Module(std::move(name)),
      topology_(topology),
      allocator_(allocator),
      shell_(shell),
      cfg_port_(cfg_port),
      cfg_ni_(cfg_ni),
      cfg_connid_of_ni_(std::move(cfg_connid_of_ni)),
      cnip_of_ni_(std::move(cnip_of_ni)),
      lookup_(std::move(lookup)) {
  AETHEREAL_CHECK(topology != nullptr && allocator != nullptr &&
                  shell != nullptr && cfg_port != nullptr);
}

int ConnectionManager::RequestOpen(const ConnectionSpec& spec) {
  const int handle = static_cast<int>(records_.size());
  records_.push_back(Record{spec, ConnectionState::kPending, OkStatus(),
                            {}, {}, {}, {}, -1, 0, false});
  if (spec.master.ni != cfg_ni_ && !config_live_[spec.master.ni]) {
    ops_.push_back(Op{Op::Kind::kEnsureConfig, spec.master.ni, -1});
  }
  if (spec.slave.ni != cfg_ni_ && spec.slave.ni != spec.master.ni &&
      !config_live_[spec.slave.ni]) {
    ops_.push_back(Op{Op::Kind::kEnsureConfig, spec.slave.ni, -1});
  }
  ops_.push_back(Op{Op::Kind::kOpenData, kInvalidId, handle});
  Wake();
  return handle;
}

Status ConnectionManager::RequestClose(int handle) {
  if (handle < 0 || handle >= static_cast<int>(records_.size())) {
    return InvalidArgumentError("unknown connection handle");
  }
  // Terminal and duplicate requests are rejected up front with a clean
  // status: a double close (completed OR still queued) or a close of a
  // connection whose open already failed must never clobber the record,
  // double-count teardown metrics, or abort deep in the close actions. An
  // open that is still merely queued is fine — the close op runs after it.
  Record& record = records_[static_cast<std::size_t>(handle)];
  if (record.close_requested) {
    return FailedPreconditionError("connection close already requested");
  }
  switch (record.state) {
    case ConnectionState::kClosed:
      return FailedPreconditionError("connection already closed");
    case ConnectionState::kFailed:
      return FailedPreconditionError(
          "cannot close a connection whose open failed: " +
          record.error.message());
    case ConnectionState::kPending:
    case ConnectionState::kOpen:
      break;
  }
  record.close_requested = true;
  ops_.push_back(Op{Op::Kind::kCloseData, kInvalidId, handle});
  Wake();
  return OkStatus();
}

ConnectionState ConnectionManager::StateOf(int handle) const {
  AETHEREAL_CHECK(handle >= 0 && handle < static_cast<int>(records_.size()));
  return records_[static_cast<std::size_t>(handle)].state;
}

const Status& ConnectionManager::ErrorOf(int handle) const {
  AETHEREAL_CHECK(handle >= 0 && handle < static_cast<int>(records_.size()));
  return records_[static_cast<std::size_t>(handle)].error;
}

Cycle ConnectionManager::CompletionCycleOf(int handle) const {
  AETHEREAL_CHECK(handle >= 0 && handle < static_cast<int>(records_.size()));
  return records_[static_cast<std::size_t>(handle)].completed_at;
}

int ConnectionManager::ConfigWritesOf(int handle) const {
  AETHEREAL_CHECK(handle >= 0 && handle < static_cast<int>(records_.size()));
  return records_[static_cast<std::size_t>(handle)].config_writes;
}

int ConnectionManager::SlotsHeldOf(int handle) const {
  AETHEREAL_CHECK(handle >= 0 && handle < static_cast<int>(records_.size()));
  const Record& record = records_[static_cast<std::size_t>(handle)];
  return static_cast<int>(record.request_slots.size() +
                          record.response_slots.size());
}

bool ConnectionManager::ConfigConnectionLive(NiId ni) const {
  auto it = config_live_.find(ni);
  return it != config_live_.end() && it->second;
}

std::vector<std::pair<tdm::GlobalChannel, tdm::GlobalChannel>>
ConnectionManager::OpenPairs() const {
  std::vector<std::pair<tdm::GlobalChannel, tdm::GlobalChannel>> pairs;
  for (const Record& record : records_) {
    if (record.state == ConnectionState::kOpen) {
      pairs.emplace_back(record.spec.master, record.spec.slave);
    }
  }
  return pairs;
}

Word ConnectionManager::SlotMask(const std::vector<SlotIndex>& slots) const {
  Word mask = 0;
  for (SlotIndex s : slots) mask |= (1u << s);
  return mask;
}

void ConnectionManager::FailCurrentOp(Status status) {
  if (current_op_.handle >= 0) {
    Record& record = records_[static_cast<std::size_t>(current_op_.handle)];
    record.state = ConnectionState::kFailed;
    record.error = std::move(status);
    record.completed_at = CycleCount();
  }
  current_actions_.clear();
  // Acks of the abandoned writes may still arrive; remember their tids so
  // the stale responses get drained instead of pooling in the shell.
  for (int tid : outstanding_tids_) abandoned_tids_.push_back(tid);
  outstanding_tids_.clear();
  outstanding_writes_.clear();
  op_active_ = false;
}

bool ConnectionManager::BuildEnsureConfigActions(NiId target) {
  if (config_live_[target]) return true;  // raced with an earlier op: done
  auto cfg_it = cfg_connid_of_ni_.find(target);
  auto cnip_it = cnip_of_ni_.find(target);
  if (cfg_it == cfg_connid_of_ni_.end() || cnip_it == cnip_of_ni_.end()) {
    FailCurrentOp(NotFoundError("no config channel provisioned for NI"));
    return false;
  }
  auto route_to = topology_->Route(cfg_ni_, target);
  auto route_back = topology_->Route(target, cfg_ni_);
  if (!route_to.ok() || !route_back.ok()) {
    FailCurrentOp(NotFoundError("no route between Cfg and target NI"));
    return false;
  }
  const CnipInfo& cnip = cnip_it->second;
  const ChannelId cfg_channel = cfg_port_->GlobalChannelOf(cfg_it->second);
  const int cfg_dest_words =
      lookup_(tdm::GlobalChannel{cfg_ni_, cfg_channel});

  // Phase 1 (Fig. 9 step 1): request channel Cfg -> target, written in the
  // local NI directly through the config shell.
  const link::SourcePath path_to =
      link::SourcePath::FromHops(route_to->hops);
  current_actions_.push_back(Action{
      cfg_ni_, regs::ChannelRegAddr(cfg_channel, regs::ChannelReg::kSpace),
      static_cast<Word>(cnip.dest_queue_words), false});
  current_actions_.push_back(Action{
      cfg_ni_, regs::ChannelRegAddr(cfg_channel, regs::ChannelReg::kPathRqid),
      regs::PackPathRqid(path_to, cnip.channel), false});
  current_actions_.push_back(Action{
      cfg_ni_,
      regs::ChannelRegAddr(cfg_channel, regs::ChannelReg::kThresholds),
      regs::PackThresholds(1, 1), false});
  current_actions_.push_back(Action{
      cfg_ni_, regs::ChannelRegAddr(cfg_channel, regs::ChannelReg::kCtrl),
      regs::kCtrlEnable, true});
  current_actions_.push_back(Action{kInvalidId, 0, 0, false});  // barrier

  // Phase 2 (Fig. 9 step 2): response channel target -> Cfg, via the NoC.
  const link::SourcePath path_back =
      link::SourcePath::FromHops(route_back->hops);
  current_actions_.push_back(Action{
      target, regs::ChannelRegAddr(cnip.channel, regs::ChannelReg::kSpace),
      static_cast<Word>(cfg_dest_words), false});
  current_actions_.push_back(Action{
      target, regs::ChannelRegAddr(cnip.channel, regs::ChannelReg::kPathRqid),
      regs::PackPathRqid(path_back, cfg_channel), false});
  current_actions_.push_back(Action{
      target, regs::ChannelRegAddr(cnip.channel, regs::ChannelReg::kCtrl),
      regs::kCtrlEnable, true});
  current_actions_.push_back(Action{kInvalidId, 0, 0, false});  // barrier
  return true;
}

void ConnectionManager::PushChannelSetup(
    const tdm::GlobalChannel& at, NiId /*peer_unused*/,
    const topology::ChannelRoute& route, int remote_qid, int remote_space,
    const ChannelQos& qos, const std::vector<SlotIndex>& slots,
    bool full_set) {
  const link::SourcePath path = link::SourcePath::FromHops(route.hops);
  current_actions_.push_back(Action{
      at.ni, regs::ChannelRegAddr(at.channel, regs::ChannelReg::kSpace),
      static_cast<Word>(remote_space), false});
  current_actions_.push_back(Action{
      at.ni, regs::ChannelRegAddr(at.channel, regs::ChannelReg::kPathRqid),
      regs::PackPathRqid(path, remote_qid), false});
  if (full_set) {
    current_actions_.push_back(Action{
        at.ni, regs::ChannelRegAddr(at.channel, regs::ChannelReg::kThresholds),
        regs::PackThresholds(qos.data_threshold, qos.credit_threshold),
        false});
    current_actions_.push_back(Action{
        at.ni, regs::ChannelRegAddr(at.channel, regs::ChannelReg::kSlots),
        SlotMask(slots), false});
  } else if (qos.gt) {
    current_actions_.push_back(Action{
        at.ni, regs::ChannelRegAddr(at.channel, regs::ChannelReg::kSlots),
        SlotMask(slots), false});
  }
  current_actions_.push_back(Action{
      at.ni, regs::ChannelRegAddr(at.channel, regs::ChannelReg::kCtrl),
      regs::kCtrlEnable | (qos.gt ? regs::kCtrlGt : 0), true});
  current_actions_.push_back(Action{kInvalidId, 0, 0, false});  // barrier
}

bool ConnectionManager::BuildOpenActions(Record& record) {
  const ConnectionSpec& spec = record.spec;
  auto request_route = topology_->Route(spec.master.ni, spec.slave.ni);
  auto response_route = topology_->Route(spec.slave.ni, spec.master.ni);
  if (!request_route.ok() || !response_route.ok()) {
    FailCurrentOp(NotFoundError("no route between master and slave"));
    return false;
  }
  record.request_route = *request_route;
  record.response_route = *response_route;

  // Centralized slot allocation (the Cfg module owns the tables).
  if (spec.request.gt) {
    auto slots = allocator_->Allocate(record.request_route, spec.master,
                                      spec.request.gt_slots,
                                      spec.request.policy);
    if (!slots.ok()) {
      FailCurrentOp(slots.status());
      return false;
    }
    record.request_slots = *slots;
  }
  if (spec.response.gt) {
    auto slots = allocator_->Allocate(record.response_route, spec.slave,
                                      spec.response.gt_slots,
                                      spec.response.policy);
    if (!slots.ok()) {
      if (spec.request.gt) {
        AETHEREAL_CHECK(allocator_
                            ->Free(record.request_route, spec.master,
                                   record.request_slots)
                            .ok());
        record.request_slots.clear();
      }
      FailCurrentOp(slots.status());
      return false;
    }
    record.response_slots = *slots;
  }

  // Fig. 9 step 3: the slave's response channel first (3 writes + slots if
  // GT), so the slave can accept and answer as soon as the master is live.
  PushChannelSetup(spec.slave, spec.master.ni, record.response_route,
                   spec.master.channel, lookup_(spec.master), spec.response,
                   record.response_slots, /*full_set=*/false);
  // Fig. 9 step 4: the master's request channel (the full 5 writes).
  PushChannelSetup(spec.master, spec.slave.ni, record.request_route,
                   spec.slave.channel, lookup_(spec.slave), spec.request,
                   record.request_slots, /*full_set=*/true);
  return true;
}

bool ConnectionManager::BuildCloseActions(Record& record) {
  if (record.state != ConnectionState::kOpen) {
    // RequestClose rejects terminal states up front, so the only way here
    // is a close queued behind an open that failed afterwards. Complete as
    // a no-op without touching the record: the kFailed state (and its
    // error) must survive for the caller to inspect.
    current_actions_.clear();
    op_active_ = false;
    return false;
  }
  // Disable the master first so no new requests enter the NoC, then the
  // slave; both acknowledged. A GT endpoint additionally clears its SLOTS
  // register (CNIP executes the writes in arrival order, so the disable
  // lands first): the STU releases the slot ownership, without which a
  // later open could never re-program those slots for another channel of
  // the same NI.
  current_actions_.push_back(Action{
      record.spec.master.ni,
      regs::ChannelRegAddr(record.spec.master.channel, regs::ChannelReg::kCtrl),
      0, true});
  if (!record.request_slots.empty()) {
    current_actions_.push_back(Action{
        record.spec.master.ni,
        regs::ChannelRegAddr(record.spec.master.channel,
                             regs::ChannelReg::kSlots),
        0, true});
  }
  current_actions_.push_back(Action{kInvalidId, 0, 0, false});
  current_actions_.push_back(Action{
      record.spec.slave.ni,
      regs::ChannelRegAddr(record.spec.slave.channel, regs::ChannelReg::kCtrl),
      0, true});
  if (!record.response_slots.empty()) {
    current_actions_.push_back(Action{
        record.spec.slave.ni,
        regs::ChannelRegAddr(record.spec.slave.channel,
                             regs::ChannelReg::kSlots),
        0, true});
  }
  current_actions_.push_back(Action{kInvalidId, 0, 0, false});
  return true;
}

void ConnectionManager::StartNextOp() {
  while (!op_active_ && !ops_.empty()) {
    current_op_ = ops_.front();
    ops_.pop_front();
    op_active_ = true;
    bool built = false;
    switch (current_op_.kind) {
      case Op::Kind::kEnsureConfig:
        built = BuildEnsureConfigActions(current_op_.target);
        if (built && current_actions_.empty()) {
          // Already live: nothing to do.
          op_active_ = false;
          continue;
        }
        break;
      case Op::Kind::kOpenData:
        built = BuildOpenActions(
            records_[static_cast<std::size_t>(current_op_.handle)]);
        break;
      case Op::Kind::kCloseData:
        built = BuildCloseActions(
            records_[static_cast<std::size_t>(current_op_.handle)]);
        break;
    }
    if (!built) continue;  // op failed during build; try the next one
  }
}

Cycle ConnectionManager::RetryDeadline(const OutstandingWrite& write) const {
  Cycle window = retry_.timeout;
  for (int a = 0; a < write.attempt && a < 16; ++a) {
    window *= retry_.backoff;  // exponential backoff per attempt
  }
  return write.issued_at + window;
}

ConnectionManager::TimeoutScan ConnectionManager::ScanForTimeouts() {
  for (OutstandingWrite& write : outstanding_writes_) {
    if (CycleCount() < RetryDeadline(write)) continue;
    if (write.attempt >= retry_.max_retries) {
      ++ack_timeouts_;
      FailCurrentOp(RetriesExhaustedError(
          "configuration write to NI " + std::to_string(write.action.ni) +
          " lost " + std::to_string(write.attempt + 1) +
          " time(s); retry budget exhausted"));
      return TimeoutScan::kOpFailed;
    }
    // Counted only when the re-issue actually happens, so a shell backlog
    // does not tally the same expiry once per waiting cycle.
    if (!shell_->CanIssue()) return TimeoutScan::kReissued;  // next cycle
    ++ack_timeouts_;
    // Abandon the timed-out tid (its ack may still arrive late and will be
    // drained) and re-issue the same write under a fresh transaction.
    abandoned_tids_.push_back(write.tid);
    auto it = std::find(outstanding_tids_.begin(), outstanding_tids_.end(),
                        write.tid);
    AETHEREAL_CHECK(it != outstanding_tids_.end());
    outstanding_tids_.erase(it);
    write.attempt += 1;
    write.issued_at = CycleCount();
    write.tid = shell_->WriteRegister(write.action.ni, write.action.reg,
                                      write.action.value, /*acked=*/true);
    outstanding_tids_.push_back(write.tid);
    ++writes_retried_;
    return TimeoutScan::kReissued;  // one register write per cycle
  }
  return TimeoutScan::kNothing;
}

void ConnectionManager::Evaluate() {
  // Drain stale acks of abandoned (timed-out and re-issued) writes.
  transaction::ResponseMessage rsp;
  while (!abandoned_tids_.empty() &&
         shell_->TakeResponseFor(abandoned_tids_, &rsp)) {
    auto it = std::find(abandoned_tids_.begin(), abandoned_tids_.end(),
                        rsp.transaction_id);
    AETHEREAL_CHECK(it != abandoned_tids_.end());
    abandoned_tids_.erase(it);
  }

  // Collect acknowledgments addressed to this manager (the config shell may
  // be shared with other agents; take only our transaction ids).
  while (shell_->TakeResponseFor(outstanding_tids_, &rsp)) {
    auto it = std::find(outstanding_tids_.begin(), outstanding_tids_.end(),
                        rsp.transaction_id);
    AETHEREAL_CHECK(it != outstanding_tids_.end());
    outstanding_tids_.erase(it);
    if (retry_.enabled) {
      auto wit = std::find_if(outstanding_writes_.begin(),
                              outstanding_writes_.end(),
                              [&](const OutstandingWrite& w) {
                                return w.tid == rsp.transaction_id;
                              });
      if (wit != outstanding_writes_.end()) outstanding_writes_.erase(wit);
    }
    if (rsp.error != ResponseError::kOk && op_active_) {
      FailCurrentOp(FailedPreconditionError("configuration write rejected"));
      return;
    }
  }

  // Ack-timeout scan: a pending re-issue takes priority over new actions
  // (the phase barrier cannot pass without the lost write anyway).
  if (retry_.enabled && op_active_ && !outstanding_writes_.empty()) {
    if (ScanForTimeouts() != TimeoutScan::kNothing) return;
  }

  StartNextOp();
  if (!op_active_) return;

  // Barrier handling and action issue (one register write per cycle).
  if (!current_actions_.empty()) {
    const Action& action = current_actions_.front();
    if (action.ni == kInvalidId) {
      // Barrier: wait for every outstanding acknowledgment.
      if (!outstanding_tids_.empty()) return;
      current_actions_.pop_front();
      return;
    }
    if (!shell_->CanIssue()) return;
    // Under a retry policy every write is acknowledged: an unacked write
    // that the fault model drops could never be detected.
    const bool acked = action.acked || retry_.enabled;
    const int tid =
        shell_->WriteRegister(action.ni, action.reg, action.value, acked);
    if (acked) {
      outstanding_tids_.push_back(tid);
      if (retry_.enabled) {
        outstanding_writes_.push_back(
            OutstandingWrite{tid, action, CycleCount(), 0});
      }
    }
    if (current_op_.handle >= 0) {
      ++records_[static_cast<std::size_t>(current_op_.handle)].config_writes;
    }
    current_actions_.pop_front();
    return;
  }

  // All actions issued and all barriers passed: the op completes.
  if (!outstanding_tids_.empty()) return;
  switch (current_op_.kind) {
    case Op::Kind::kEnsureConfig:
      config_live_[current_op_.target] = true;
      break;
    case Op::Kind::kOpenData: {
      Record& record = records_[static_cast<std::size_t>(current_op_.handle)];
      record.state = ConnectionState::kOpen;
      record.completed_at = CycleCount();
      if (on_connections_changed_) on_connections_changed_();
      break;
    }
    case Op::Kind::kCloseData: {
      Record& record = records_[static_cast<std::size_t>(current_op_.handle)];
      if (!record.request_slots.empty()) {
        AETHEREAL_CHECK(allocator_
                            ->Free(record.request_route, record.spec.master,
                                   record.request_slots)
                            .ok());
        record.request_slots.clear();
      }
      if (!record.response_slots.empty()) {
        AETHEREAL_CHECK(allocator_
                            ->Free(record.response_route, record.spec.slave,
                                   record.response_slots)
                            .ok());
        record.response_slots.clear();
      }
      record.state = ConnectionState::kClosed;
      record.completed_at = CycleCount();
      if (on_connections_changed_) on_connections_changed_();
      break;
    }
  }
  ++operations_completed_;
  op_active_ = false;
}

}  // namespace aethereal::config
