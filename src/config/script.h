// Scripted configuration driver: sequences Fig. 9 open/close operations at
// scheduled cycles through a ConnectionManager and surfaces per-operation
// reconfiguration metrics — the costs the paper reports for runtime
// (re)configuration: setup/teardown latency in cycles, the number of
// configuration messages each operation put on the NoC, and the TDM slots
// it allocated or reclaimed.
//
// The driver is a sim::Module on the same clock as the manager. Operations
// are pushed (at build time or mid-run, between RunCycles calls) and issued
// strictly in push order: an op is handed to the manager once its
// `not_before` cycle is reached AND every earlier op has been issued. The
// manager itself serializes execution (one Fig. 9 op at a time, each phase
// closed by an acknowledged write), so issue order is completion order.
//
// The phased scenario runner (scenario/runner.cpp) drives every use-case
// transition through this module; config_test exercises it standalone.
#ifndef AETHEREAL_CONFIG_SCRIPT_H
#define AETHEREAL_CONFIG_SCRIPT_H

#include <cstddef>
#include <string>
#include <vector>

#include "config/connection_manager.h"
#include "sim/kernel.h"
#include "util/status.h"

namespace aethereal::config {

/// One scripted open or close, with its observed outcome.
struct ScriptedOp {
  enum class Kind { kOpen, kClose };

  // --- request --------------------------------------------------------------
  Kind kind = Kind::kOpen;
  Cycle not_before = 0;     // earliest cycle the request may be issued
  ConnectionSpec spec;      // kOpen: the connection to establish
  int open_ref = -1;        // kClose: index of the scripted open to close

  // --- outcome (valid once `done`) ------------------------------------------
  bool issued = false;
  bool done = false;
  int handle = -1;              // manager handle (kOpen and resolved kClose)
  Cycle issued_at = -1;         // cycle the request entered the manager
  Cycle completed_at = -1;      // cycle the Fig. 9 sequence finished
  ConnectionState final_state = ConnectionState::kPending;
  Status error;                 // non-OK when the op failed or was rejected
  int config_writes = 0;        // register writes of this op alone
  int slots_delta = 0;          // slots allocated (open) / reclaimed (close)

  /// Setup or teardown latency in cycles (-1 until done).
  Cycle Latency() const {
    return done && completed_at >= 0 && issued_at >= 0
               ? completed_at - issued_at
               : -1;
  }
};

class ScriptedConfigDriver : public sim::Module {
 public:
  ScriptedConfigDriver(std::string name, ConnectionManager* manager);

  /// Appends an operation to the script; returns its index. Callable
  /// before the first cycle or between cycles (the phased runner pushes
  /// each transition's batch when the transition begins).
  int Push(ScriptedOp op);

  /// Convenience: schedule an open / a close of a previously pushed open.
  int PushOpen(const ConnectionSpec& spec, Cycle not_before = 0);
  int PushClose(int open_ref, Cycle not_before = 0);

  /// True once every pushed op has completed (successfully or not).
  bool Done() const { return next_to_finish_ == ops_.size(); }

  std::size_t num_ops() const { return ops_.size(); }
  const ScriptedOp& op(std::size_t index) const;

  std::int64_t ops_succeeded() const { return ops_succeeded_; }
  std::int64_t ops_failed() const { return ops_failed_; }

  void Evaluate() override;

 private:
  void FinishOp(ScriptedOp& op, ConnectionState state, Status error);

  ConnectionManager* manager_;
  std::vector<ScriptedOp> ops_;
  std::size_t next_to_issue_ = 0;
  std::size_t next_to_finish_ = 0;
  std::int64_t ops_succeeded_ = 0;
  std::int64_t ops_failed_ = 0;
};

}  // namespace aethereal::config

#endif  // AETHEREAL_CONFIG_SCRIPT_H
