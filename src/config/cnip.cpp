#include "config/cnip.h"

#include "core/registers.h"
#include "fault/injector.h"
#include "transaction/message.h"
#include "util/check.h"

namespace aethereal::config {

using transaction::Command;
using transaction::RequestMessage;
using transaction::ResponseError;
using transaction::ResponseMessage;

CnipAgent::CnipAgent(std::string name, core::NiKernel* kernel,
                     shells::SlaveShell* shell)
    : sim::Module(std::move(name)), kernel_(kernel), shell_(shell) {
  AETHEREAL_CHECK(kernel != nullptr && shell != nullptr);
}

bool CnipAgent::IsBootstrapAddress(Word address) const {
  if (cnip_channel_ == kInvalidId) return false;
  const Word base =
      core::regs::ChannelRegAddr(cnip_channel_, core::regs::ChannelReg::kCtrl);
  return address >= base && address < base + core::regs::kRegsPerChannel;
}

void CnipAgent::Evaluate() {
  // One configuration transaction per cycle.
  if (!shell_->HasRequest()) return;

  // Config-path faults: judge the request once when it reaches the head.
  // Requests addressing the CNIP channel's own register block are exempt
  // (bootstrap is reliable by construction; see SetFaultInjector).
  if (fault_ != nullptr && !verdict_valid_ &&
      !IsBootstrapAddress(shell_->PeekRequest().address)) {
    Cycle delay = 0;
    const auto verdict =
        fault_->JudgeConfigRequest(kernel_->id(), CycleCount(), &delay);
    verdict_valid_ = true;
    verdict_drop_ = verdict == fault::FaultInjector::ConfigVerdict::kDrop;
    release_at_ = verdict == fault::FaultInjector::ConfigVerdict::kDelay
                      ? CycleCount() + delay
                      : CycleCount();
  }
  if (verdict_valid_) {
    if (verdict_drop_) {
      (void)shell_->PopRequest();  // lost: unexecuted, its ack never sent
      verdict_valid_ = false;
      return;
    }
    if (CycleCount() < release_at_) return;  // delayed in flight
  }

  if (!shell_->CanRespond(1)) return;  // leave the request queued
  const RequestMessage req = shell_->PopRequest();
  verdict_valid_ = false;

  ResponseMessage rsp;
  rsp.transaction_id = req.transaction_id;
  rsp.sequence_number = req.sequence_number;

  switch (req.cmd) {
    case Command::kWrite: {
      // One register per message: address is the register offset.
      Status status = OkStatus();
      Word address = req.address;
      for (Word value : req.data) {
        status = kernel_->WriteRegister(address, value);
        if (!status.ok()) break;
        ++writes_executed_;
        ++address;  // bursts hit consecutive registers
      }
      if (!req.ExpectsResponse()) return;
      rsp.is_write_ack = true;
      rsp.error =
          status.ok() ? ResponseError::kOk : ResponseError::kUnmappedAddress;
      break;
    }
    case Command::kRead: {
      Word address = req.address;
      rsp.error = ResponseError::kOk;
      for (int i = 0; i < req.read_length; ++i) {
        auto value = kernel_->ReadRegister(address);
        if (!value.ok()) {
          rsp.error = ResponseError::kUnmappedAddress;
          rsp.data.clear();
          break;
        }
        rsp.data.push_back(*value);
        ++reads_executed_;
        ++address;
      }
      break;
    }
    default:
      if (!req.ExpectsResponse()) return;
      rsp.is_write_ack = req.IsWrite();
      rsp.error = ResponseError::kBadCommand;
      break;
  }
  shell_->Respond(rsp);
}

}  // namespace aethereal::config
