#include "config/cnip.h"

#include "transaction/message.h"
#include "util/check.h"

namespace aethereal::config {

using transaction::Command;
using transaction::RequestMessage;
using transaction::ResponseError;
using transaction::ResponseMessage;

CnipAgent::CnipAgent(std::string name, core::NiKernel* kernel,
                     shells::SlaveShell* shell)
    : sim::Module(std::move(name)), kernel_(kernel), shell_(shell) {
  AETHEREAL_CHECK(kernel != nullptr && shell != nullptr);
}

void CnipAgent::Evaluate() {
  // One configuration transaction per cycle.
  if (!shell_->HasRequest()) return;
  if (!shell_->CanRespond(1)) return;  // leave the request queued
  const RequestMessage req = shell_->PopRequest();

  ResponseMessage rsp;
  rsp.transaction_id = req.transaction_id;
  rsp.sequence_number = req.sequence_number;

  switch (req.cmd) {
    case Command::kWrite: {
      // One register per message: address is the register offset.
      Status status = OkStatus();
      Word address = req.address;
      for (Word value : req.data) {
        status = kernel_->WriteRegister(address, value);
        if (!status.ok()) break;
        ++writes_executed_;
        ++address;  // bursts hit consecutive registers
      }
      if (!req.ExpectsResponse()) return;
      rsp.is_write_ack = true;
      rsp.error =
          status.ok() ? ResponseError::kOk : ResponseError::kUnmappedAddress;
      break;
    }
    case Command::kRead: {
      Word address = req.address;
      rsp.error = ResponseError::kOk;
      for (int i = 0; i < req.read_length; ++i) {
        auto value = kernel_->ReadRegister(address);
        if (!value.ok()) {
          rsp.error = ResponseError::kUnmappedAddress;
          rsp.data.clear();
          break;
        }
        rsp.data.push_back(*value);
        ++reads_executed_;
        ++address;
      }
      break;
    }
    default:
      if (!req.ExpectsResponse()) return;
      rsp.is_write_ack = req.IsWrite();
      rsp.error = ResponseError::kBadCommand;
      break;
  }
  shell_->Respond(rsp);
}

}  // namespace aethereal::config
