// Run-time connection management (paper §3, §4.3, Fig. 9).
//
// The ConnectionManager is the configuration module ("Cfg") of the
// centralized configuration model: it owns the slot occupancy information
// (a CentralizedAllocator), opens and closes connections by writing NI
// registers through the configuration shell — using the NoC itself, never a
// separate control interconnect — and follows the Fig. 9 protocol:
//
//   1. set up the request channel Cfg -> target NI by writing the local
//      NI's registers (via the config shell, directly);
//   2. set up the response channel target -> Cfg via the NoC (3 writes,
//      the last one acknowledged);
//   3. set up the slave-to-master (response) channel of the new connection;
//   4. set up the master-to-slave (request) channel of the new connection.
//
// Each phase ends with an acknowledged write so that a later phase never
// races an earlier one on a different channel.
#ifndef AETHEREAL_CONFIG_CONNECTION_MANAGER_H
#define AETHEREAL_CONFIG_CONNECTION_MANAGER_H

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/ni_kernel.h"
#include "fault/spec.h"
#include "shells/config_shell.h"
#include "tdm/allocator.h"
#include "topology/topology.h"
#include "util/status.h"

namespace aethereal::config {

/// Quality of service of one channel direction.
struct ChannelQos {
  bool gt = false;
  int gt_slots = 0;  // reserved TDM slots (gt only)
  tdm::AllocPolicy policy = tdm::AllocPolicy::kSpread;
  int data_threshold = 1;
  int credit_threshold = 1;
};

/// A connection between one master channel and one slave channel.
struct ConnectionSpec {
  tdm::GlobalChannel master;
  tdm::GlobalChannel slave;
  ChannelQos request;   // master -> slave direction
  ChannelQos response;  // slave -> master direction
};

enum class ConnectionState { kPending, kOpen, kFailed, kClosed };

const char* ConnectionStateName(ConnectionState state);

class ConnectionManager : public sim::Module {
 public:
  /// Queue-capacity lookup: destination-queue words of a channel, used to
  /// initialize the remote Space counters.
  using QueueLookup = std::function<int(const tdm::GlobalChannel&)>;

  struct CnipInfo {
    ChannelId channel = kInvalidId;  // flat CNIP channel id at that NI
    int dest_queue_words = 0;        // its destination-queue capacity
  };

  ConnectionManager(std::string name, const topology::Topology* topology,
                    tdm::CentralizedAllocator* allocator,
                    shells::ConfigShell* shell, core::NiPort* cfg_port,
                    NiId cfg_ni, std::map<NiId, int> cfg_connid_of_ni,
                    std::map<NiId, CnipInfo> cnip_of_ni, QueueLookup lookup);

  /// Queues a connection-open; returns a handle. Progress happens as the
  /// simulation runs; poll StateOf()/Idle().
  int RequestOpen(const ConnectionSpec& spec);

  /// Queues a connection-close. Closing a handle that is already closed, or
  /// whose open has already failed, is rejected here with a clean status
  /// (never an abort). A close queued behind a still-pending open is
  /// accepted; if that open later fails, the close completes as a no-op.
  Status RequestClose(int handle);

  bool Idle() const { return ops_.empty() && !op_active_; }
  ConnectionState StateOf(int handle) const;
  const Status& ErrorOf(int handle) const;

  /// Cycle at which the handle's last operation completed (-1 if pending).
  Cycle CompletionCycleOf(int handle) const;

  /// Configuration register writes issued for the handle's connection so
  /// far (open + close actions; EnsureConfig traffic is not attributed).
  int ConfigWritesOf(int handle) const;

  /// TDM slots currently held by the handle (request + response channels).
  int SlotsHeldOf(int handle) const;

  /// True once the configuration connection to `ni` is established.
  bool ConfigConnectionLive(NiId ni) const;

  /// Endpoints (master, slave) of every connection currently kOpen — the
  /// runtime-configured complement of Soc::OpenChannelPairs, consumed by
  /// the verification monitor's credit pairing.
  std::vector<std::pair<tdm::GlobalChannel, tdm::GlobalChannel>> OpenPairs()
      const;

  /// Invoked after every completed open/close (the Soc bumps its
  /// connections version so the monitor re-queries channel pairs).
  void SetOnConnectionsChanged(std::function<void()> callback) {
    on_connections_changed_ = std::move(callback);
  }

  std::int64_t operations_completed() const { return operations_completed_; }

  /// Arms the acknowledgment-timeout / bounded-retry / exponential-backoff
  /// policy (DESIGN.md §12). With a policy enabled, EVERY register write is
  /// issued acknowledged and tracked individually — a lost unacked write
  /// could never be detected, let alone recovered — and a write whose ack
  /// has not arrived within timeout * backoff^attempt cycles is re-issued,
  /// up to max_retries re-issues, after which the owning operation fails
  /// with kRetriesExhausted. Register writes are idempotent, so a duplicate
  /// caused by a delayed-but-not-lost ack is harmless.
  void SetRetryPolicy(const fault::RetryPolicy& policy) { retry_ = policy; }

  std::int64_t ack_timeouts() const { return ack_timeouts_; }
  std::int64_t writes_retried() const { return writes_retried_; }

  void Evaluate() override;

 private:
  struct Action {
    NiId ni;
    Word reg;
    Word value;
    bool acked;
  };
  struct Op {
    enum class Kind { kEnsureConfig, kOpenData, kCloseData } kind;
    NiId target = kInvalidId;  // kEnsureConfig
    int handle = -1;           // kOpenData / kCloseData
  };
  struct Record {
    ConnectionSpec spec;
    ConnectionState state = ConnectionState::kPending;
    Status error;
    std::vector<SlotIndex> request_slots;
    std::vector<SlotIndex> response_slots;
    topology::ChannelRoute request_route;
    topology::ChannelRoute response_route;
    Cycle completed_at = -1;
    int config_writes = 0;     // register writes attributed to this handle
    bool close_requested = false;  // a close is queued or done
  };

  /// An acknowledged write awaiting its ack under the retry policy.
  struct OutstandingWrite {
    int tid = -1;
    Action action{};
    Cycle issued_at = 0;
    int attempt = 0;  // 0 = initial issue
  };

  void StartNextOp();
  Cycle RetryDeadline(const OutstandingWrite& write) const;
  enum class TimeoutScan { kNothing, kReissued, kOpFailed };
  TimeoutScan ScanForTimeouts();
  bool BuildEnsureConfigActions(NiId target);
  bool BuildOpenActions(Record& record);
  bool BuildCloseActions(Record& record);
  void PushChannelSetup(const tdm::GlobalChannel& at, NiId peer_unused,
                        const topology::ChannelRoute& route, int remote_qid,
                        int remote_space, const ChannelQos& qos,
                        const std::vector<SlotIndex>& slots, bool full_set);
  void FailCurrentOp(Status status);
  Word SlotMask(const std::vector<SlotIndex>& slots) const;

  const topology::Topology* topology_;
  tdm::CentralizedAllocator* allocator_;
  shells::ConfigShell* shell_;
  core::NiPort* cfg_port_;
  NiId cfg_ni_;
  std::map<NiId, int> cfg_connid_of_ni_;
  std::map<NiId, CnipInfo> cnip_of_ni_;
  QueueLookup lookup_;

  std::map<NiId, bool> config_live_;
  std::deque<Op> ops_;
  Op current_op_{};
  bool op_active_ = false;
  // Actions of the active op, grouped in phases separated by ack barriers:
  // a kBarrier sentinel action (ni == kInvalidId) means "wait for all
  // outstanding acks before continuing".
  std::deque<Action> current_actions_;
  std::vector<int> outstanding_tids_;
  std::vector<Record> records_;
  std::int64_t operations_completed_ = 0;
  std::function<void()> on_connections_changed_;

  fault::RetryPolicy retry_;
  std::vector<OutstandingWrite> outstanding_writes_;
  // Tids of timed-out writes that were re-issued (or whose op failed): a
  // delayed-but-not-lost ack may still arrive and must be drained, or it
  // would sit in the config shell's response queue forever.
  std::vector<int> abandoned_tids_;
  std::int64_t ack_timeouts_ = 0;
  std::int64_t writes_retried_ = 0;
};

}  // namespace aethereal::config

#endif  // AETHEREAL_CONFIG_CONNECTION_MANAGER_H
