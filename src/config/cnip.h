// CNIP agent: executes configuration transactions on an NI's register file.
//
// "NIs are configured via a configuration port (CNIP), which offers a
// memory-mapped view on all control registers in the NIs" (paper §4.3).
// The CNIP is an ordinary slave on the NoC: request messages arrive on a
// dedicated channel (enabled at reset so the NoC can bootstrap its own
// configuration), are executed one per cycle on the kernel's register file,
// and acknowledged / answered in order.
#ifndef AETHEREAL_CONFIG_CNIP_H
#define AETHEREAL_CONFIG_CNIP_H

#include <string>

#include "core/ni_kernel.h"
#include "shells/slave_shell.h"
#include "sim/kernel.h"

namespace aethereal::config {

class CnipAgent : public sim::Module {
 public:
  /// `kernel`: the NI whose registers this agent serves. `shell`: a slave
  /// shell bound to the CNIP channel of that NI.
  CnipAgent(std::string name, core::NiKernel* kernel,
            shells::SlaveShell* shell);

  void Evaluate() override;

  std::int64_t writes_executed() const { return writes_executed_; }
  std::int64_t reads_executed() const { return reads_executed_; }

 private:
  core::NiKernel* kernel_;
  shells::SlaveShell* shell_;
  std::int64_t writes_executed_ = 0;
  std::int64_t reads_executed_ = 0;
};

}  // namespace aethereal::config

#endif  // AETHEREAL_CONFIG_CNIP_H
