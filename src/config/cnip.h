// CNIP agent: executes configuration transactions on an NI's register file.
//
// "NIs are configured via a configuration port (CNIP), which offers a
// memory-mapped view on all control registers in the NIs" (paper §4.3).
// The CNIP is an ordinary slave on the NoC: request messages arrive on a
// dedicated channel (enabled at reset so the NoC can bootstrap its own
// configuration), are executed one per cycle on the kernel's register file,
// and acknowledged / answered in order.
#ifndef AETHEREAL_CONFIG_CNIP_H
#define AETHEREAL_CONFIG_CNIP_H

#include <string>

#include "core/ni_kernel.h"
#include "shells/slave_shell.h"
#include "sim/kernel.h"

namespace aethereal::fault {
class FaultInjector;
}

namespace aethereal::config {

class CnipAgent : public sim::Module {
 public:
  /// `kernel`: the NI whose registers this agent serves. `shell`: a slave
  /// shell bound to the CNIP channel of that NI.
  CnipAgent(std::string name, core::NiKernel* kernel,
            shells::SlaveShell* shell);

  void Evaluate() override;

  std::int64_t writes_executed() const { return writes_executed_; }
  std::int64_t reads_executed() const { return reads_executed_; }

  /// Arms fault injection (DESIGN.md §12): each arriving configuration
  /// request is judged once — pass, drop (discarded unexecuted, its ack
  /// never sent), or delay (held at the agent for a fixed number of
  /// cycles before executing). Requests addressing `cnip_channel`'s own
  /// register block (the Fig. 9 bootstrap writes that configure the CNIP
  /// response channel) are exempt: losing one wedges the config transport
  /// itself — request-channel credits return over the response channel —
  /// which no transaction-layer retry can recover, so the bootstrap is
  /// reliable by construction, as in the real design.
  void SetFaultInjector(fault::FaultInjector* injector,
                        ChannelId cnip_channel) {
    fault_ = injector;
    cnip_channel_ = cnip_channel;
  }

 private:
  /// True for register addresses inside the CNIP channel's own block.
  bool IsBootstrapAddress(Word address) const;

  core::NiKernel* kernel_;
  shells::SlaveShell* shell_;
  std::int64_t writes_executed_ = 0;
  std::int64_t reads_executed_ = 0;
  fault::FaultInjector* fault_ = nullptr;
  ChannelId cnip_channel_ = kInvalidId;
  // Fault verdict for the request at the head of the queue; decided exactly
  // once per request (when it first reaches the head) and consumed when the
  // request is popped or discarded.
  bool verdict_valid_ = false;
  bool verdict_drop_ = false;
  Cycle release_at_ = 0;
};

}  // namespace aethereal::config

#endif  // AETHEREAL_CONFIG_CNIP_H
