// Fixed-width text tables for bench output (the "rows the paper reports").
#ifndef AETHEREAL_UTIL_TABLE_H
#define AETHEREAL_UTIL_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace aethereal {

/// Builds and prints an aligned text table; used by every bench binary to
/// print the paper-style result rows.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> cells);

  /// Number formatting helpers.
  static std::string Fmt(double value, int decimals = 2);
  static std::string Fmt(std::int64_t value);

  /// Prints the table with a separator line under the header.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aethereal

#endif  // AETHEREAL_UTIL_TABLE_H
