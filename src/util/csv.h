// Minimal deterministic CSV writer — the tabular sibling of util/json.h.
//
// Sweep results are compared byte-for-byte by the sweep golden tests, so
// the encoder shares the JSON writer's number formatting (FormatDouble)
// and emits rows exactly as cells are appended. Cells containing commas,
// quotes, or newlines are quoted per RFC 4180. Only writing is supported.
#ifndef AETHEREAL_UTIL_CSV_H
#define AETHEREAL_UTIL_CSV_H

#include <cstdint>
#include <string>
#include <vector>

namespace aethereal {

/// Streaming CSV writer with a fixed header. Usage:
///
///   CsvWriter w({"point", "rate", "latency"});
///   w.Cell(0).Cell("0.01").Double(12.5);
///   w.EndRow();
///   std::string text = w.Take();
///
/// Every row must carry exactly as many cells as the header has columns
/// (checked), so a schema drift breaks loudly instead of producing a
/// misaligned table.
class CsvWriter {
 public:
  explicit CsvWriter(const std::vector<std::string>& header);

  CsvWriter& Cell(const std::string& value);
  CsvWriter& Cell(const char* value);
  CsvWriter& Cell(std::int64_t value);
  CsvWriter& Cell(int value) { return Cell(static_cast<std::int64_t>(value)); }
  /// Formats through FormatDouble (util/json.h) for byte stability.
  CsvWriter& Double(double value);

  /// Terminates the current row; checks the column count.
  CsvWriter& EndRow();

  /// Returns the finished document (header + rows, trailing newline).
  std::string Take();

  /// RFC 4180 quoting: wraps in quotes (doubling inner quotes) when the
  /// value contains a comma, quote, or newline.
  static std::string Escape(const std::string& raw);

 private:
  void Append(const std::string& escaped);

  std::string out_;
  std::size_t columns_;
  std::size_t row_cells_ = 0;
};

}  // namespace aethereal

#endif  // AETHEREAL_UTIL_CSV_H
