#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace aethereal {
namespace {

constexpr std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64, used only to expand the seed into the xoshiro state.
std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  AETHEREAL_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ull) - (~0ull) % bound;
  std::uint64_t v = Next();
  while (v >= limit) v = Next();
  return v % bound;
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  AETHEREAL_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::int64_t Rng::NextGeometric(double p) {
  AETHEREAL_CHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  const double u = NextDouble();
  return static_cast<std::int64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
}

}  // namespace aethereal
