// Minimal deterministic JSON writer.
//
// Scenario results and bench outputs are compared byte-for-byte by the
// golden-results tests, across compilers and build types, so the encoder
// must be fully deterministic: keys are emitted in call order, doubles are
// printed through a fixed snprintf format, and integral doubles print
// without a fractional part. Only writing is supported — the repo consumes
// JSON with Python in CI, never in C++.
#ifndef AETHEREAL_UTIL_JSON_H
#define AETHEREAL_UTIL_JSON_H

#include <cstdint>
#include <string>
#include <vector>

namespace aethereal {

/// Deterministic number formatting shared by the JSON and CSV writers:
/// integral values (|v| < 2^53) print without a fractional part,
/// everything else through a fixed "%.6g", non-finite values as "null".
/// Byte-stable across compilers and build types.
std::string FormatDouble(double value);

/// Streaming JSON writer with explicit object/array scopes and two-space
/// indentation. Usage:
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("name").String("uniform");
///   w.Key("flows").BeginArray();
///   ... w.EndArray();
///   w.EndObject();
///   std::string text = w.Take();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; must be followed by exactly one value.
  JsonWriter& Key(const std::string& name);

  JsonWriter& String(const std::string& value);
  JsonWriter& Int(std::int64_t value);
  JsonWriter& Bool(bool value);
  /// Doubles print as integers when integral (|v| < 2^53), otherwise via
  /// "%.6g". Non-finite values print as null.
  JsonWriter& Double(double value);

  /// Returns the finished document (with trailing newline).
  std::string Take();

  /// Escapes a string for embedding in JSON (without the quotes).
  static std::string Escape(const std::string& raw);

 private:
  void BeforeValue();
  void Indent();

  struct Scope {
    bool is_object = false;
    bool has_items = false;
  };
  std::string out_;
  std::vector<Scope> scopes_;
  bool pending_key_ = false;
};

}  // namespace aethereal

#endif  // AETHEREAL_UTIL_JSON_H
