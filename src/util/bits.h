// Bit-field packing helpers used by the packet-header and message codecs.
//
// Header fields (path, remote queue id, piggybacked credits, flags) are
// packed into 32-bit words exactly as a hardware implementation would;
// these helpers keep the field maps explicit and checked.
#ifndef AETHEREAL_UTIL_BITS_H
#define AETHEREAL_UTIL_BITS_H

#include <cstdint>

#include "util/check.h"

namespace aethereal {

/// Mask with the low `width` bits set. width must be in [0, 32].
constexpr std::uint32_t BitMask(int width) {
  return width >= 32 ? 0xFFFFFFFFu : ((1u << width) - 1u);
}

/// Extract `width` bits of `word` starting at bit `lsb`.
constexpr std::uint32_t ExtractBits(std::uint32_t word, int lsb, int width) {
  return (word >> lsb) & BitMask(width);
}

/// Return `word` with `width` bits at `lsb` replaced by `value`.
/// Checks that `value` fits in `width` bits.
inline std::uint32_t DepositBits(std::uint32_t word, int lsb, int width,
                                 std::uint32_t value) {
  AETHEREAL_CHECK_MSG((value & ~BitMask(width)) == 0,
                      "value " << value << " does not fit in " << width
                               << " bits");
  const std::uint32_t mask = BitMask(width) << lsb;
  return (word & ~mask) | ((value << lsb) & mask);
}

/// Number of bits needed to represent values 0..n-1 (ceil(log2(n))), >= 1.
constexpr int BitsFor(std::uint32_t n) {
  int bits = 1;
  while ((1u << bits) < n && bits < 32) ++bits;
  return bits;
}

/// Round `value` up to the next multiple of `unit` (unit > 0).
constexpr std::int64_t RoundUp(std::int64_t value, std::int64_t unit) {
  return ((value + unit - 1) / unit) * unit;
}

}  // namespace aethereal

#endif  // AETHEREAL_UTIL_BITS_H
