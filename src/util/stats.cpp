#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace aethereal {

void Stats::Add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sorted_valid_ = false;
}

double Stats::Min() const {
  AETHEREAL_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::Max() const {
  AETHEREAL_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Stats::Mean() const {
  AETHEREAL_CHECK(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

double Stats::StdDev() const {
  AETHEREAL_CHECK(!samples_.empty());
  if (samples_.size() < 2) return 0.0;
  const double mean = Mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - mean) * (s - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SortedPercentile(const std::vector<double>& sorted, double p) {
  AETHEREAL_CHECK(!sorted.empty());
  AETHEREAL_CHECK(p >= 0.0 && p <= 100.0);
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (rank > 0) --rank;
  return sorted[std::min(rank, sorted.size() - 1)];
}

double Stats::Percentile(double p) const {
  AETHEREAL_CHECK(!samples_.empty());
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return SortedPercentile(sorted_, p);
}

std::vector<double> Stats::SortedRange(std::size_t first,
                                       std::size_t last) const {
  AETHEREAL_CHECK(first < last && last <= samples_.size());
  std::vector<double> window(
      samples_.begin() + static_cast<std::ptrdiff_t>(first),
      samples_.begin() + static_cast<std::ptrdiff_t>(last));
  std::sort(window.begin(), window.end());
  return window;
}

double Stats::RangePercentile(std::size_t first, std::size_t last,
                              double p) const {
  return SortedPercentile(SortedRange(first, last), p);
}

}  // namespace aethereal
