#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace aethereal {

void Stats::Add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sorted_ = false;
}

double Stats::Min() const {
  AETHEREAL_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::Max() const {
  AETHEREAL_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Stats::Mean() const {
  AETHEREAL_CHECK(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

double Stats::StdDev() const {
  AETHEREAL_CHECK(!samples_.empty());
  const double mean = Mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - mean) * (s - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double Stats::Percentile(double p) const {
  AETHEREAL_CHECK(!samples_.empty());
  AETHEREAL_CHECK(p >= 0.0 && p <= 100.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const auto n = static_cast<double>(samples_.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (rank > 0) --rank;
  return samples_[std::min(rank, samples_.size() - 1)];
}

}  // namespace aethereal
