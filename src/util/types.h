// Common scalar types used across the Æthereal model.
#ifndef AETHEREAL_UTIL_TYPES_H
#define AETHEREAL_UTIL_TYPES_H

#include <cstdint>

namespace aethereal {

/// A 32-bit data word; the Æthereal prototype datapath is 32 bits wide.
using Word = std::uint32_t;

/// Simulation time in integer picoseconds (1 ns = 1000 ps).
using Picoseconds = std::int64_t;

/// A count of clock edges observed in one clock domain.
using Cycle = std::int64_t;

/// Identifies a network interface instance within a NoC.
using NiId = std::int32_t;

/// Identifies a router instance within a NoC.
using RouterId = std::int32_t;

/// Identifies a channel (unidirectional point-to-point queue pair) in an NI.
using ChannelId = std::int32_t;

/// Identifies a port on an NI (the IP-facing side).
using PortId = std::int32_t;

/// Identifies a connection (a set of channels between a master and slaves).
using ConnectionId = std::int32_t;

/// A TDM slot index in the slot table.
using SlotIndex = std::int32_t;

/// Sentinel for "no id".
inline constexpr std::int32_t kInvalidId = -1;

/// Number of 32-bit words in one flit (the Æthereal prototype uses 3-word
/// flits; the NI kernel aligns packets to this boundary, costing 1..3 cycles
/// of latency per the paper's Section 5).
inline constexpr int kFlitWords = 3;

}  // namespace aethereal

#endif  // AETHEREAL_UTIL_TYPES_H
