// Deterministic pseudo-random number generation for traffic generators.
//
// Simulation runs must be exactly reproducible across platforms, so we use
// our own xoshiro256** implementation instead of std::mt19937 + unspecified
// distribution algorithms.
#ifndef AETHEREAL_UTIL_RNG_H
#define AETHEREAL_UTIL_RNG_H

#include <cstdint>

namespace aethereal {

/// xoshiro256** deterministic generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t Next();

  /// Uniform integer in [0, bound) (bound > 0).
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability p in [0, 1].
  bool NextBool(double p);

  /// Geometric inter-arrival gap for a Bernoulli(p)-per-cycle process,
  /// i.e. number of failures before the first success. p in (0, 1].
  std::int64_t NextGeometric(double p);

 private:
  std::uint64_t state_[4];
};

}  // namespace aethereal

#endif  // AETHEREAL_UTIL_RNG_H
