#include "util/json.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace aethereal {

std::string JsonWriter::Escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Indent() {
  out_.append(2 * scopes_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // "key": prefix already emitted
  }
  if (!scopes_.empty()) {
    AETHEREAL_CHECK_MSG(!scopes_.back().is_object,
                        "object values need a Key()");
    if (scopes_.back().has_items) out_ += ",";
    out_ += "\n";
    scopes_.back().has_items = true;
    Indent();
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += "{";
  scopes_.push_back(Scope{/*is_object=*/true, false});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  AETHEREAL_CHECK(!scopes_.empty() && scopes_.back().is_object);
  const bool had_items = scopes_.back().has_items;
  scopes_.pop_back();
  if (had_items) {
    out_ += "\n";
    Indent();
  }
  out_ += "}";
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += "[";
  scopes_.push_back(Scope{/*is_object=*/false, false});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  AETHEREAL_CHECK(!scopes_.empty() && !scopes_.back().is_object);
  const bool had_items = scopes_.back().has_items;
  scopes_.pop_back();
  if (had_items) {
    out_ += "\n";
    Indent();
  }
  out_ += "]";
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  AETHEREAL_CHECK_MSG(!scopes_.empty() && scopes_.back().is_object,
                      "Key() outside an object");
  AETHEREAL_CHECK_MSG(!pending_key_, "two Key() calls in a row");
  if (scopes_.back().has_items) out_ += ",";
  out_ += "\n";
  scopes_.back().has_items = true;
  Indent();
  out_ += "\"" + Escape(name) + "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += "\"" + Escape(value) + "\"";
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

std::string FormatDouble(double value) {
  if (!std::isfinite(value)) return "null";
  constexpr double kExactIntLimit = 9007199254740992.0;  // 2^53
  if (value == std::floor(value) && std::fabs(value) < kExactIntLimit) {
    return std::to_string(static_cast<std::int64_t>(value));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  out_ += FormatDouble(value);
  return *this;
}

std::string JsonWriter::Take() {
  AETHEREAL_CHECK_MSG(scopes_.empty(), "unbalanced JSON scopes");
  out_ += "\n";
  return std::move(out_);
}

}  // namespace aethereal
