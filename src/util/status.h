// Lightweight Status / Result error handling for recoverable failures.
//
// Configuration of a NoC can fail at run time (e.g. a tentative slot
// reservation is rejected in distributed configuration, Section 3 of the
// paper), so those paths return Status/Result instead of throwing.
// Programming errors (contract violations) use AETHEREAL_CHECK and abort.
#ifndef AETHEREAL_UTIL_STATUS_H
#define AETHEREAL_UTIL_STATUS_H

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace aethereal {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something out of contract
  kNotFound,          // id / resource lookup failed
  kAlreadyExists,     // duplicate open, double reservation
  kResourceExhausted, // no free slots / queues / channels
  kFailedPrecondition,// operation in wrong state (e.g. channel not enabled)
  kRejected,          // tentative distributed reservation rejected
  kOutOfRange,        // index outside table
  kUnimplemented,
  kVerificationFailed,// a runtime invariant or analytical GT bound broke
  kTimeout,           // a bounded wait (drain, config ack) expired
  kRetriesExhausted,  // retried up to the policy bound, every attempt lost
};

/// Human-readable name of a status code (stable, for logs and tests).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail without a value.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

inline Status OkStatus() { return Status::Ok(); }
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status ResourceExhaustedError(std::string message);
Status FailedPreconditionError(std::string message);
Status RejectedError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status VerificationFailedError(std::string message);
Status TimeoutError(std::string message);
Status RetriesExhaustedError(std::string message);

/// Result<T>: either a value or an error status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace aethereal

#endif  // AETHEREAL_UTIL_STATUS_H
