// Strict CLI number parsing shared by the tools.
#ifndef AETHEREAL_UTIL_PARSE_H
#define AETHEREAL_UTIL_PARSE_H

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace aethereal {

/// Strict non-negative integer parse: the whole token must be consumed
/// (seeds / durations / fuzz counts are reproducibility-critical — a typo
/// must fail loudly, never silently prefix-parse).
inline std::optional<std::uint64_t> ParseU64(const std::string& token) {
  try {
    std::size_t pos = 0;
    if (token.empty() || token[0] == '-') return std::nullopt;
    const std::uint64_t value = std::stoull(token, &pos);
    if (pos != token.size()) return std::nullopt;
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Strict double parse under the same whole-token discipline.
inline std::optional<double> ParseF64(const std::string& token) {
  try {
    std::size_t pos = 0;
    if (token.empty()) return std::nullopt;
    const double value = std::stod(token, &pos);
    if (pos != token.size()) return std::nullopt;
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace aethereal

#endif  // AETHEREAL_UTIL_PARSE_H
