// Streaming statistics accumulator (min/max/mean/stddev/percentile support).
#ifndef AETHEREAL_UTIL_STATS_H
#define AETHEREAL_UTIL_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aethereal {

/// Accumulates samples and answers summary queries. Keeps all samples so
/// exact percentiles are available (bench runs are bounded in size).
///
/// Samples stay in insertion order forever: phased scenarios snapshot the
/// sample count at window boundaries and later ask for exact percentiles
/// over the insertion-order range [first, last) of one phase's window, so
/// Percentile() works on a sorted *copy* (cached until the next Add).
class Stats {
 public:
  void Add(double sample);

  std::int64_t count() const { return static_cast<std::int64_t>(samples_.size()); }
  bool empty() const { return samples_.empty(); }

  double Min() const;
  double Max() const;
  double Mean() const;
  /// Unbiased sample standard deviation (n-1 denominator; 0 for a single
  /// sample). The batch-means confidence intervals are built on this, so
  /// the population (n) estimator would bias every half-width low.
  double StdDev() const;
  /// Exact percentile by nearest-rank, p in [0, 100].
  double Percentile(double p) const;
  double Sum() const { return sum_; }

  /// Exact nearest-rank percentile over the insertion-order sample range
  /// [first, last) — the samples recorded between two count() snapshots.
  /// Sorts a fresh copy of the window on every call: when several
  /// percentiles of ONE window are needed, take SortedRange() once and
  /// query SortedPercentile on it instead.
  double RangePercentile(std::size_t first, std::size_t last, double p) const;

  /// Sorted copy of the insertion-order sample range [first, last) — one
  /// O(n log n) sort serving any number of SortedPercentile queries.
  std::vector<double> SortedRange(std::size_t first, std::size_t last) const;

  /// Samples in insertion order (for histogram bucketing / merging).
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;  // insertion order; never reordered
  double sum_ = 0.0;
  mutable std::vector<double> sorted_;  // cached sorted copy for Percentile
  mutable bool sorted_valid_ = false;
};

/// Nearest-rank percentile of an externally sorted sample vector
/// (p in [0, 100]); the shared formula of Stats and the class-level
/// histogram merges, so every percentile in the result JSON is computed
/// identically.
double SortedPercentile(const std::vector<double>& sorted, double p);

}  // namespace aethereal

#endif  // AETHEREAL_UTIL_STATS_H
