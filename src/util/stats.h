// Streaming statistics accumulator (min/max/mean/stddev/percentile support).
#ifndef AETHEREAL_UTIL_STATS_H
#define AETHEREAL_UTIL_STATS_H

#include <cstdint>
#include <vector>

namespace aethereal {

/// Accumulates samples and answers summary queries. Keeps all samples so
/// exact percentiles are available (bench runs are bounded in size).
class Stats {
 public:
  void Add(double sample);

  std::int64_t count() const { return static_cast<std::int64_t>(samples_.size()); }
  bool empty() const { return samples_.empty(); }

  double Min() const;
  double Max() const;
  double Mean() const;
  double StdDev() const;
  /// Exact percentile by nearest-rank, p in [0, 100].
  double Percentile(double p) const;
  double Sum() const { return sum_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  double sum_ = 0.0;
};

}  // namespace aethereal

#endif  // AETHEREAL_UTIL_STATS_H
