#include "util/table.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "util/check.h"

namespace aethereal {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  AETHEREAL_CHECK_MSG(cells.size() == header_.size(),
                      "row has " << cells.size() << " cells, header has "
                                 << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string Table::Fmt(std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, value);
  return buf;
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace aethereal
