#include "util/status.h"

namespace aethereal {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kRejected: return "REJECTED";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kVerificationFailed: return "VERIFICATION_FAILED";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kRetriesExhausted: return "RETRIES_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status RejectedError(std::string message) {
  return Status(StatusCode::kRejected, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status VerificationFailedError(std::string message) {
  return Status(StatusCode::kVerificationFailed, std::move(message));
}
Status TimeoutError(std::string message) {
  return Status(StatusCode::kTimeout, std::move(message));
}
Status RetriesExhaustedError(std::string message) {
  return Status(StatusCode::kRetriesExhausted, std::move(message));
}

}  // namespace aethereal
