// Contract-checking macros for programming errors (not recoverable errors).
#ifndef AETHEREAL_UTIL_CHECK_H
#define AETHEREAL_UTIL_CHECK_H

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace aethereal::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::cerr << "CHECK failed at " << file << ":" << line << ": " << expr;
  if (!message.empty()) std::cerr << " — " << message;
  std::cerr << std::endl;
  std::abort();
}

}  // namespace aethereal::internal

/// Abort with a diagnostic if `expr` is false. Always on (models hardware
/// assertions that would be synthesis-time or simulation-time fatal).
#define AETHEREAL_CHECK(expr)                                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::aethereal::internal::CheckFailed(__FILE__, __LINE__, #expr, "");   \
    }                                                                      \
  } while (false)

#define AETHEREAL_CHECK_MSG(expr, msg)                                     \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream oss_;                                             \
      oss_ << msg; /* NOLINT */                                            \
      ::aethereal::internal::CheckFailed(__FILE__, __LINE__, #expr,        \
                                         oss_.str());                      \
    }                                                                      \
  } while (false)

#endif  // AETHEREAL_UTIL_CHECK_H
