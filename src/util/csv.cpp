#include "util/csv.h"

#include "util/check.h"
#include "util/json.h"

namespace aethereal {

std::string CsvWriter::Escape(const std::string& raw) {
  if (raw.find_first_of(",\"\n\r") == std::string::npos) return raw;
  std::string out = "\"";
  for (char c : raw) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::vector<std::string>& header)
    : columns_(header.size()) {
  AETHEREAL_CHECK_MSG(columns_ > 0, "CSV needs at least one column");
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i > 0) out_ += ',';
    out_ += Escape(header[i]);
  }
  out_ += '\n';
}

void CsvWriter::Append(const std::string& escaped) {
  AETHEREAL_CHECK_MSG(row_cells_ < columns_, "row has too many cells");
  if (row_cells_ > 0) out_ += ',';
  out_ += escaped;
  ++row_cells_;
}

CsvWriter& CsvWriter::Cell(const std::string& value) {
  Append(Escape(value));
  return *this;
}

CsvWriter& CsvWriter::Cell(const char* value) {
  return Cell(std::string(value));
}

CsvWriter& CsvWriter::Cell(std::int64_t value) {
  Append(std::to_string(value));
  return *this;
}

CsvWriter& CsvWriter::Double(double value) {
  Append(FormatDouble(value));
  return *this;
}

CsvWriter& CsvWriter::EndRow() {
  AETHEREAL_CHECK_MSG(row_cells_ == columns_, "row has too few cells");
  out_ += '\n';
  row_cells_ = 0;
  return *this;
}

std::string CsvWriter::Take() {
  AETHEREAL_CHECK_MSG(row_cells_ == 0, "unterminated CSV row");
  return std::move(out_);
}

}  // namespace aethereal
