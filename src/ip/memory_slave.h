// Memory slave IP: a word-addressed memory behind a slave endpoint.
//
// Serves the shared-memory abstraction the NI offers: read/write bursts at
// a configurable service latency, plus read-linked / write-conditional
// (locked accesses, which the paper lists among full-fledged slave-shell
// features) implemented with a single reservation register.
#ifndef AETHEREAL_IP_MEMORY_SLAVE_H
#define AETHEREAL_IP_MEMORY_SLAVE_H

#include <optional>
#include <string>
#include <vector>

#include "shells/endpoints.h"
#include "sim/kernel.h"
#include "transaction/message.h"
#include "util/types.h"

namespace aethereal::ip {

class MemorySlave : public sim::Module {
 public:
  /// Serves word addresses [base, base + size_words).
  MemorySlave(std::string name, shells::SlaveEndpoint* endpoint, Word base,
              Word size_words, int service_latency_cycles = 1);

  /// Backdoor access for tests and examples.
  Word Load(Word address) const;
  void Store(Word address, Word value);

  std::int64_t reads_served() const { return reads_served_; }
  std::int64_t writes_served() const { return writes_served_; }

  void Evaluate() override;

 private:
  bool InRange(Word address, int words) const;
  transaction::ResponseMessage Execute(const transaction::RequestMessage& req);

  shells::SlaveEndpoint* endpoint_;
  Word base_;
  std::vector<Word> storage_;
  int service_latency_;

  // One request in service at a time (simple SRAM-like slave).
  std::optional<transaction::RequestMessage> in_service_;
  Cycle done_at_ = 0;

  // Reservation register for read-linked / write-conditional.
  std::optional<Word> reservation_;

  std::int64_t reads_served_ = 0;
  std::int64_t writes_served_ = 0;
};

}  // namespace aethereal::ip

#endif  // AETHEREAL_IP_MEMORY_SLAVE_H
