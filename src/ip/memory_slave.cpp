#include "ip/memory_slave.h"

#include "util/check.h"

namespace aethereal::ip {

using transaction::Command;
using transaction::RequestMessage;
using transaction::ResponseError;
using transaction::ResponseMessage;

MemorySlave::MemorySlave(std::string name, shells::SlaveEndpoint* endpoint,
                         Word base, Word size_words,
                         int service_latency_cycles)
    : sim::Module(std::move(name)),
      endpoint_(endpoint),
      base_(base),
      storage_(size_words, 0),
      service_latency_(service_latency_cycles) {
  AETHEREAL_CHECK(endpoint != nullptr);
  AETHEREAL_CHECK(size_words > 0);
  AETHEREAL_CHECK(service_latency_cycles >= 0);
}

bool MemorySlave::InRange(Word address, int words) const {
  if (address < base_) return false;
  const Word offset = address - base_;
  return offset < storage_.size() &&
         static_cast<Word>(words) <= storage_.size() - offset;
}

Word MemorySlave::Load(Word address) const {
  AETHEREAL_CHECK(InRange(address, 1));
  return storage_[address - base_];
}

void MemorySlave::Store(Word address, Word value) {
  AETHEREAL_CHECK(InRange(address, 1));
  storage_[address - base_] = value;
}

ResponseMessage MemorySlave::Execute(const RequestMessage& req) {
  ResponseMessage rsp;
  rsp.transaction_id = req.transaction_id;
  rsp.sequence_number = req.sequence_number;
  switch (req.cmd) {
    case Command::kRead:
    case Command::kReadLinked: {
      if (!InRange(req.address, req.read_length)) {
        rsp.error = ResponseError::kUnmappedAddress;
        break;
      }
      const Word offset = req.address - base_;
      for (int i = 0; i < req.read_length; ++i) {
        rsp.data.push_back(storage_[offset + static_cast<Word>(i)]);
      }
      if (req.cmd == Command::kReadLinked) reservation_ = req.address;
      ++reads_served_;
      break;
    }
    case Command::kWrite:
    case Command::kWriteConditional: {
      rsp.is_write_ack = true;
      if (!InRange(req.address, static_cast<int>(req.data.size()))) {
        rsp.error = ResponseError::kUnmappedAddress;
        break;
      }
      if (req.cmd == Command::kWriteConditional) {
        if (!reservation_.has_value() || *reservation_ != req.address) {
          rsp.error = ResponseError::kConditionalFail;
          break;
        }
        reservation_.reset();
      } else if (reservation_.has_value()) {
        // An ordinary write to the reserved address breaks the reservation.
        const Word lo = req.address;
        const Word hi = req.address + static_cast<Word>(req.data.size());
        if (*reservation_ >= lo && *reservation_ < hi) reservation_.reset();
      }
      const Word offset = req.address - base_;
      for (std::size_t i = 0; i < req.data.size(); ++i) {
        storage_[offset + i] = req.data[i];
      }
      ++writes_served_;
      break;
    }
  }
  return rsp;
}

void MemorySlave::Evaluate() {
  if (in_service_.has_value()) {
    if (CycleCount() < done_at_) return;
    const int payload =
        in_service_->IsWrite() ? 0 : in_service_->read_length;
    if (in_service_->ExpectsResponse() && !endpoint_->CanRespond(payload)) {
      return;  // hold until the response path drains
    }
    const ResponseMessage rsp = Execute(*in_service_);
    if (in_service_->ExpectsResponse()) endpoint_->Respond(rsp);
    in_service_.reset();
  }
  if (!in_service_.has_value() && endpoint_->HasRequest()) {
    in_service_ = endpoint_->PopRequest();
    done_at_ = CycleCount() + service_latency_;
  }
}

}  // namespace aethereal::ip
