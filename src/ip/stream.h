// Streaming IP models using raw point-to-point channels (no shells).
//
// Paper §4.2: point-to-point connections "are useful in systems involving
// chains of modules communicating point to point with one another (e.g.,
// video pixel processing)". The producer stamps each word with its emission
// cycle so the consumer can measure end-to-end latency and jitter — the
// quantities the GT service bounds.
#ifndef AETHEREAL_IP_STREAM_H
#define AETHEREAL_IP_STREAM_H

#include <string>

#include "core/ni_kernel.h"
#include "sim/kernel.h"
#include "util/stats.h"
#include "util/types.h"

namespace aethereal::ip {

class StreamProducer : public sim::Module {
 public:
  /// Emits `words_per_period` words every `period` cycles (period >= 1).
  /// In timestamp mode each word carries the emission cycle; otherwise a
  /// running sequence number.
  StreamProducer(std::string name, core::NiPort* port, int connid,
                 std::int64_t period, int words_per_period,
                 bool timestamp_mode = true,
                 std::int64_t total_words = -1);

  std::int64_t words_written() const { return words_written_; }
  std::int64_t stall_cycles() const { return stall_cycles_; }
  bool Done() const {
    return total_words_ >= 0 && words_written_ >= total_words_;
  }

  /// Producers can be held idle and started under application control
  /// (e.g. after a run-time reconfiguration).
  void Start() {
    active_ = true;
    Wake();  // a stopped producer parks itself
  }
  void Stop() { active_ = false; }
  bool active() const { return active_; }

  void Evaluate() override;

 private:
  core::NiPort* port_;
  int connid_;
  std::int64_t period_;
  int words_per_period_;
  bool timestamp_mode_;
  std::int64_t total_words_;
  bool active_ = true;
  std::int64_t words_written_ = 0;
  std::int64_t stall_cycles_ = 0;
  std::int64_t backlog_ = 0;  // words due but not yet accepted
  std::int64_t next_emit_ = 0;
  Word seq_ = 0;
};

class StreamConsumer : public sim::Module {
 public:
  /// Drains up to `drain_per_cycle` words per cycle. In timestamp mode,
  /// per-word latency (arrival - emission) is recorded; inter-arrival gaps
  /// are recorded always (jitter).
  StreamConsumer(std::string name, core::NiPort* port, int connid,
                 int drain_per_cycle = 1, bool timestamp_mode = true);

  std::int64_t words_read() const { return words_read_; }
  const Stats& latency() const { return latency_; }
  const Stats& inter_arrival() const { return inter_arrival_; }
  std::int64_t sequence_errors() const { return sequence_errors_; }

  void Evaluate() override;

 private:
  core::NiPort* port_;
  int connid_;
  int drain_per_cycle_;
  bool timestamp_mode_;
  std::int64_t words_read_ = 0;
  Word expected_seq_ = 0;
  std::int64_t sequence_errors_ = 0;
  Cycle last_arrival_ = -1;
  Stats latency_;
  Stats inter_arrival_;
};

}  // namespace aethereal::ip

#endif  // AETHEREAL_IP_STREAM_H
