// Programmable traffic-generating master IP.
//
// Drives a master endpoint with synthetic read/write transactions and
// records per-transaction latency — the workload generator behind the
// benches (GT/BE mixes, threshold sweeps, guarantee validation).
#ifndef AETHEREAL_IP_TRAFFIC_GEN_H
#define AETHEREAL_IP_TRAFFIC_GEN_H

#include <map>
#include <string>

#include "shells/endpoints.h"
#include "sim/kernel.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/types.h"

namespace aethereal::ip {

struct TrafficPattern {
  enum class Kind {
    kFixedPeriod,  // one transaction every `period` cycles
    kBernoulli,    // issue with probability `rate` each cycle
    kClosedLoop,   // issue the next as soon as the response returns
  };
  Kind kind = Kind::kFixedPeriod;
  std::int64_t period = 10;  // kFixedPeriod
  double rate = 0.1;         // kBernoulli

  double read_fraction = 0.5;  // reads vs writes
  int burst_words = 4;         // words per transaction
  bool acked_writes = true;    // writes expect acknowledgments
  Word address_base = 0;
  Word address_range = 1024;   // addresses drawn in [base, base+range)
  int max_outstanding = 16;
  std::int64_t max_transactions = -1;  // -1: unbounded
};

class TrafficGenMaster : public sim::Module {
 public:
  TrafficGenMaster(std::string name, shells::MasterEndpoint* endpoint,
                   const TrafficPattern& pattern, std::uint64_t seed);

  std::int64_t issued() const { return issued_; }
  std::int64_t completed() const { return completed_; }
  std::int64_t outstanding() const { return issued_responses_ - completed_; }

  /// Gate for phased scenarios: while inactive the master issues nothing
  /// (responses to already-issued transactions are still collected, so a
  /// deactivated master drains to outstanding() == 0). Activate() rebases
  /// the next-issue time to `now`. Callable between cycles only.
  void Activate(Cycle now);
  void Deactivate() { active_ = false; }
  bool active() const { return active_; }

  /// Latency from issue to response delivery, in cycles (response-carrying
  /// transactions only).
  const Stats& latency() const { return latency_; }

  /// True once max_transactions were issued and all responses returned.
  bool Done() const;

  void Evaluate() override;

 private:
  void MaybeIssue();

  shells::MasterEndpoint* endpoint_;
  TrafficPattern pattern_;
  Rng rng_;
  bool active_ = true;
  std::int64_t issued_ = 0;
  std::int64_t issued_responses_ = 0;  // transactions expecting a response
  std::int64_t completed_ = 0;
  std::int64_t next_issue_cycle_ = 0;
  int next_tid_ = 0;
  std::map<int, Cycle> issue_cycle_by_tid_;
  Stats latency_;
};

}  // namespace aethereal::ip

#endif  // AETHEREAL_IP_TRAFFIC_GEN_H
