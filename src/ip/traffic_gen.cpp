#include "ip/traffic_gen.h"

#include "util/check.h"

namespace aethereal::ip {

TrafficGenMaster::TrafficGenMaster(std::string name,
                                   shells::MasterEndpoint* endpoint,
                                   const TrafficPattern& pattern,
                                   std::uint64_t seed)
    : sim::Module(std::move(name)),
      endpoint_(endpoint),
      pattern_(pattern),
      rng_(seed) {
  AETHEREAL_CHECK(endpoint != nullptr);
  AETHEREAL_CHECK(pattern.burst_words >= 1);
  AETHEREAL_CHECK(pattern.max_outstanding >= 1);
}

void TrafficGenMaster::Activate(Cycle now) {
  active_ = true;
  next_issue_cycle_ =
      pattern_.kind == TrafficPattern::Kind::kClosedLoop ? -1 : now;
}

bool TrafficGenMaster::Done() const {
  return pattern_.max_transactions >= 0 &&
         issued_ >= pattern_.max_transactions && outstanding() == 0;
}

void TrafficGenMaster::MaybeIssue() {
  if (pattern_.max_transactions >= 0 && issued_ >= pattern_.max_transactions) {
    return;
  }
  if (outstanding() >= pattern_.max_outstanding) return;
  if (!endpoint_->CanIssue(pattern_.burst_words)) return;

  const bool is_read = rng_.NextBool(pattern_.read_fraction);
  const Word address =
      pattern_.address_base +
      static_cast<Word>(rng_.NextBelow(
          std::max<std::uint64_t>(1, pattern_.address_range)));
  const int tid = next_tid_;
  next_tid_ = (next_tid_ + 1) % (transaction::kMaxTransactionId + 1);

  bool expects_response = false;
  if (is_read) {
    endpoint_->IssueRead(address, pattern_.burst_words, tid);
    expects_response = true;
  } else {
    std::vector<Word> data(static_cast<std::size_t>(pattern_.burst_words));
    for (auto& w : data) w = static_cast<Word>(rng_.Next());
    endpoint_->IssueWrite(address, data, pattern_.acked_writes, tid);
    expects_response = pattern_.acked_writes;
  }
  ++issued_;
  if (expects_response) {
    ++issued_responses_;
    issue_cycle_by_tid_[tid] = CycleCount();
  }

  switch (pattern_.kind) {
    case TrafficPattern::Kind::kFixedPeriod:
      next_issue_cycle_ = CycleCount() + pattern_.period;
      break;
    case TrafficPattern::Kind::kBernoulli:
      next_issue_cycle_ = CycleCount() + 1 + rng_.NextGeometric(pattern_.rate);
      break;
    case TrafficPattern::Kind::kClosedLoop:
      next_issue_cycle_ = -1;  // wait for the response
      break;
  }
}

void TrafficGenMaster::Evaluate() {
  while (endpoint_->HasResponse()) {
    const auto rsp = endpoint_->PopResponse();
    auto it = issue_cycle_by_tid_.find(rsp.transaction_id);
    AETHEREAL_CHECK_MSG(it != issue_cycle_by_tid_.end(),
                        name() << ": response for unknown transaction "
                               << rsp.transaction_id);
    latency_.Add(static_cast<double>(CycleCount() - it->second));
    issue_cycle_by_tid_.erase(it);
    ++completed_;
    if (pattern_.kind == TrafficPattern::Kind::kClosedLoop) {
      next_issue_cycle_ = CycleCount();
    }
  }

  if (!active_) return;  // deactivated: drain responses, issue nothing
  const bool time_ok =
      pattern_.kind == TrafficPattern::Kind::kClosedLoop
          ? (outstanding() == 0 || issued_ == 0)
          : CycleCount() >= next_issue_cycle_;
  if (time_ok) MaybeIssue();
}

}  // namespace aethereal::ip
