#include "ip/stream.h"

#include <algorithm>

#include "util/check.h"

namespace aethereal::ip {

StreamProducer::StreamProducer(std::string name, core::NiPort* port,
                               int connid, std::int64_t period,
                               int words_per_period, bool timestamp_mode,
                               std::int64_t total_words)
    : sim::Module(std::move(name)),
      port_(port),
      connid_(connid),
      period_(period),
      words_per_period_(words_per_period),
      timestamp_mode_(timestamp_mode),
      total_words_(total_words) {
  AETHEREAL_CHECK(port != nullptr);
  AETHEREAL_CHECK(period >= 1);
  AETHEREAL_CHECK(words_per_period >= 1);
  SetDefaultCommitOnly();  // no registered state, no Commit override
}

void StreamProducer::Evaluate() {
  if (!active_) {
    Park();  // Start() wakes us
    return;
  }
  if (Done() && backlog_ == 0) {
    Park();  // finished for good
    return;
  }
  if (CycleCount() >= next_emit_) {
    std::int64_t due = words_per_period_;
    if (total_words_ >= 0) {
      due = std::min<std::int64_t>(due,
                                   total_words_ - words_written_ - backlog_);
    }
    if (due > 0) {
      backlog_ += due;
      next_emit_ = CycleCount() + period_;
    }
  }
  // Push at most one word per cycle (the port is a 32-bit interface).
  if (backlog_ > 0) {
    if (port_->CanWrite(connid_)) {
      const Word value = timestamp_mode_ ? static_cast<Word>(CycleCount())
                                         : seq_++;
      port_->Write(connid_, value);
      --backlog_;
      ++words_written_;
    } else {
      ++stall_cycles_;
    }
  } else if (next_emit_ > CycleCount()) {
    // Nothing due until the next emission tick: sleep through the gap.
    // (A full source queue keeps us awake — space frees asynchronously.)
    ParkUntil(next_emit_);
  }
}

StreamConsumer::StreamConsumer(std::string name, core::NiPort* port,
                               int connid, int drain_per_cycle,
                               bool timestamp_mode)
    : sim::Module(std::move(name)),
      port_(port),
      connid_(connid),
      drain_per_cycle_(drain_per_cycle),
      timestamp_mode_(timestamp_mode) {
  AETHEREAL_CHECK(port != nullptr);
  AETHEREAL_CHECK(drain_per_cycle >= 1);
  SetDefaultCommitOnly();  // no registered state, no Commit override
  // Park on an empty destination queue; deliveries wake us in time for the
  // first readable cycle.
  port->WakeOnDelivery(connid, this);
}

void StreamConsumer::Evaluate() {
  for (int i = 0; i < drain_per_cycle_; ++i) {
    if (port_->ReadAvailable(connid_) == 0) {
      if (i == 0) Park();  // empty queue: sleep until the next delivery
      return;
    }
    const Word value = port_->Read(connid_);
    if (timestamp_mode_) {
      latency_.Add(static_cast<double>(CycleCount()) -
                   static_cast<double>(value));
    } else {
      if (value != expected_seq_) ++sequence_errors_;
      expected_seq_ = value + 1;
    }
    if (last_arrival_ >= 0) {
      inter_arrival_.Add(static_cast<double>(CycleCount() - last_arrival_));
    }
    last_arrival_ = CycleCount();
    ++words_read_;
  }
}

}  // namespace aethereal::ip
