// Memory-mapped register file layout of the network interface (CNIP view).
//
// "NIs are configured via a configuration port (CNIP), which offers a
// memory-mapped view on all control registers in the NIs. This means that
// the registers in the NI are readable and writable by any master using
// normal read and write transactions." (paper §4.3)
//
// Word-address map (each NI has its own space, selected by the route):
//   0x0      STU_SIZE      (RO) slot table size
//   0x1      NUM_CHANNELS  (RO)
//   0x2      NUM_PORTS     (RO)
//   0x10 + ch*8 + reg      per-channel registers:
//     +0 CTRL       bit0 = enable, bit1 = GT (0 = best effort)
//     +1 SPACE      remote destination-queue capacity in words (writing
//                   initializes the Space credit counter; reads return the
//                   current counter, which is useful for diagnosis)
//     +2 PATH_RQID  [20:0] source path, [25:21] remote queue id (this is
//                   the same packing as the packet-header routing fields)
//     +3 THRESHOLDS [7:0] data (send) threshold in words,
//                   [15:8] credit threshold in words
//     +4 SLOTS      bitmask of STU slots reserved for this channel
//                   (requires stu_slots <= 32)
//
// The "5 registers written at the master and 3 at the slave network
// interfaces" of paper §3 correspond to {CTRL, SPACE, PATH_RQID,
// THRESHOLDS, SLOTS} on the side that initiates GT traffic and {CTRL,
// SPACE, PATH_RQID} on a best-effort response side.
#ifndef AETHEREAL_CORE_REGISTERS_H
#define AETHEREAL_CORE_REGISTERS_H

#include "link/header.h"
#include "util/bits.h"
#include "util/types.h"

namespace aethereal::core::regs {

// NI-level read-only registers.
inline constexpr Word kStuSize = 0x0;
inline constexpr Word kNumChannels = 0x1;
inline constexpr Word kNumPorts = 0x2;

// Per-channel register block.
inline constexpr Word kChannelBase = 0x10;
inline constexpr Word kRegsPerChannel = 8;

/// Largest slot-table size the SLOTS register can express (one bit per
/// slot in a 32-bit mask). The NI kernel, the scenario parser, and the
/// sweep parser all enforce this same limit.
inline constexpr int kMaxStuSlots = 32;

enum class ChannelReg : Word {
  kCtrl = 0,
  kSpace = 1,
  kPathRqid = 2,
  kThresholds = 3,
  kSlots = 4,
};

inline constexpr Word kCtrlEnable = 1u << 0;
inline constexpr Word kCtrlGt = 1u << 1;

/// Word address of channel `ch` register `reg`.
constexpr Word ChannelRegAddr(ChannelId ch, ChannelReg reg) {
  return kChannelBase + static_cast<Word>(ch) * kRegsPerChannel +
         static_cast<Word>(reg);
}

/// PATH_RQID packing (shared layout with the packet header fields).
inline Word PackPathRqid(const link::SourcePath& path, int remote_qid) {
  Word word = 0;
  word = DepositBits(word, 0, 21, path.packed());
  word = DepositBits(word, 21, 5, static_cast<std::uint32_t>(remote_qid));
  return word;
}
inline link::SourcePath UnpackPath(Word word) {
  return link::SourcePath::FromPacked(ExtractBits(word, 0, 21));
}
inline int UnpackRqid(Word word) {
  return static_cast<int>(ExtractBits(word, 21, 5));
}

// --- NoC-wide configuration address space ---------------------------------
// The configuration shell (paper Fig. 8) decodes a global address into
// (target NI, register offset): the NI id lives in the upper bits, the
// register offset in the lower 12 bits. Accesses to the local NI are served
// directly; others travel over the NoC to the target's CNIP.

inline constexpr int kNiAddressShift = 12;

/// Global config-space address of register `reg` in NI `ni`.
constexpr Word GlobalConfigAddress(NiId ni, Word reg) {
  return (static_cast<Word>(ni) << kNiAddressShift) | reg;
}
constexpr NiId ConfigAddressNi(Word address) {
  return static_cast<NiId>(address >> kNiAddressShift);
}
constexpr Word ConfigAddressReg(Word address) {
  return address & ((1u << kNiAddressShift) - 1u);
}

/// THRESHOLDS packing.
inline Word PackThresholds(int data_threshold, int credit_threshold) {
  Word word = 0;
  word = DepositBits(word, 0, 8, static_cast<std::uint32_t>(data_threshold));
  word = DepositBits(word, 8, 8, static_cast<std::uint32_t>(credit_threshold));
  return word;
}
inline int UnpackDataThreshold(Word word) {
  return static_cast<int>(ExtractBits(word, 0, 8));
}
inline int UnpackCreditThreshold(Word word) {
  return static_cast<int>(ExtractBits(word, 8, 8));
}

}  // namespace aethereal::core::regs

#endif  // AETHEREAL_CORE_REGISTERS_H
