// Design-time (instantiation-time) parameters of a network interface.
//
// The paper emphasizes that "the number of ports and their type, the number
// of connections at each port, memory allocated for the queues, the level
// of services per port, and the interface to the IP modules are all
// configurable at design (instantiation) time using an XML description".
// These structs are the programmatic equivalent of that XML description;
// soc/NocDescription produces them from a declarative text form.
#ifndef AETHEREAL_CORE_PARAMS_H
#define AETHEREAL_CORE_PARAMS_H

#include <string>
#include <vector>

#include "util/types.h"

namespace aethereal::core {

/// Best-effort arbitration policy of the NI kernel scheduler (paper §4.1:
/// "round-robin, weighted round-robin, or based on the queue filling").
enum class BeArbitration {
  kRoundRobin,
  kWeightedRoundRobin,
  kQueueFill,
};

const char* BeArbitrationName(BeArbitration policy);

/// One channel (point-to-point connection endpoint): a source queue toward
/// the NoC and a destination queue from the NoC (paper Fig. 2).
struct ChannelParams {
  int source_queue_words = 8;  // words; paper instance uses 8-word queues
  int dest_queue_words = 8;
  int weight = 1;              // weighted-round-robin weight
};

/// One NI port. Ports can run at their own clock frequency; the queues of
/// their channels implement the clock-domain crossing.
struct PortParams {
  std::string name;
  std::vector<ChannelParams> channels;
};

/// The NI kernel instance.
struct NiKernelParams {
  int stu_slots = 8;          // slot-table-unit size (paper instance: 8)
  int max_packet_flits = 4;   // maximum packet length, in flits
  BeArbitration be_arbitration = BeArbitration::kRoundRobin;
  /// Piggyback credits in data-packet headers (paper §4.1). Disabling this
  /// (ablation) forces all credits into credit-only packets.
  bool piggyback_credits = true;
  std::vector<PortParams> ports;

  /// The paper's reference instance (§5): STU of 8 slots, 4 ports with
  /// 1, 1, 2, and 4 channels, all queues 32-bit wide and 8 words deep.
  static NiKernelParams PaperReferenceInstance();

  int TotalChannels() const;
};

}  // namespace aethereal::core

#endif  // AETHEREAL_CORE_PARAMS_H
