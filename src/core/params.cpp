#include "core/params.h"

namespace aethereal::core {

const char* BeArbitrationName(BeArbitration policy) {
  switch (policy) {
    case BeArbitration::kRoundRobin: return "round-robin";
    case BeArbitration::kWeightedRoundRobin: return "weighted-round-robin";
    case BeArbitration::kQueueFill: return "queue-fill";
  }
  return "?";
}

NiKernelParams NiKernelParams::PaperReferenceInstance() {
  NiKernelParams params;
  params.stu_slots = 8;
  const int channels_per_port[] = {1, 1, 2, 4};
  int index = 0;
  for (int count : channels_per_port) {
    PortParams port;
    port.name = "port" + std::to_string(index++);
    port.channels.assign(static_cast<std::size_t>(count), ChannelParams{});
    params.ports.push_back(std::move(port));
  }
  return params;
}

int NiKernelParams::TotalChannels() const {
  int total = 0;
  for (const auto& port : ports) {
    total += static_cast<int>(port.channels.size());
  }
  return total;
}

}  // namespace aethereal::core
