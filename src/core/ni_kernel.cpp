#include "core/ni_kernel.h"

#include <algorithm>

#include "fault/injector.h"
#include "link/flit.h"
#include "util/check.h"

namespace aethereal::core {

using link::Flit;
using link::FlitKind;
using link::PacketHeader;

// ---------------------------------------------------------------------------
// NiPort
// ---------------------------------------------------------------------------

NiPort::NiPort(std::string name, NiKernel* kernel)
    : sim::Module(std::move(name)), kernel_(kernel) {
  SetEvaluateIsNoop();      // ports are pure commit machinery
  SetDefaultCommitOnly();
}

bool NiPort::CanWrite(int connid, int words) const {
  AETHEREAL_CHECK(connid >= 0 && connid < NumChannels());
  AETHEREAL_CHECK(words >= 0);
  const auto& ch = kernel_->ChannelAt(channels_[static_cast<std::size_t>(connid)]);
  return ch.source.WriterSpace() >= words;
}

void NiPort::Write(int connid, Word word) {
  AETHEREAL_CHECK(connid >= 0 && connid < NumChannels());
  auto& ch = kernel_->ChannelAt(channels_[static_cast<std::size_t>(connid)]);
  AETHEREAL_CHECK_MSG(ch.source.CanPush(),
                      name() << ": source queue overflow on connid " << connid);
  ch.source.Push(word);
}

int NiPort::ReadAvailable(int connid) const {
  AETHEREAL_CHECK(connid >= 0 && connid < NumChannels());
  const auto& ch = kernel_->ChannelAt(channels_[static_cast<std::size_t>(connid)]);
  return ch.dest.ReaderAvailable();
}

Word NiPort::PeekRead(int connid, int offset) const {
  AETHEREAL_CHECK(connid >= 0 && connid < NumChannels());
  const auto& ch = kernel_->ChannelAt(channels_[static_cast<std::size_t>(connid)]);
  return ch.dest.Peek(offset);
}

Word NiPort::Read(int connid) {
  AETHEREAL_CHECK(connid >= 0 && connid < NumChannels());
  auto& ch = kernel_->ChannelAt(channels_[static_cast<std::size_t>(connid)]);
  AETHEREAL_CHECK_MSG(ch.dest.CanPop(),
                      name() << ": destination queue underflow on connid "
                             << connid);
  return ch.dest.Pop();
}

void NiPort::FlushData(int connid) {
  AETHEREAL_CHECK(connid >= 0 && connid < NumChannels());
  auto& ch = kernel_->ChannelAt(channels_[static_cast<std::size_t>(connid)]);
  ch.data_flush_reqs.Set(ch.data_flush_reqs.Get() + 1);
  // The request register wakes the kernel when it commits on the port
  // clock (see FlushRequestRegister) — exactly when the value becomes
  // harvestable, regardless of how slow the port clock is.
}

void NiPort::FlushCredits(int connid) {
  AETHEREAL_CHECK(connid >= 0 && connid < NumChannels());
  auto& ch = kernel_->ChannelAt(channels_[static_cast<std::size_t>(connid)]);
  ch.credit_flush_reqs.Set(ch.credit_flush_reqs.Get() + 1);
}

ChannelId NiPort::GlobalChannelOf(int connid) const {
  AETHEREAL_CHECK(connid >= 0 && connid < NumChannels());
  return channels_[static_cast<std::size_t>(connid)];
}

void NiPort::WakeOnDelivery(int connid, sim::Module* listener) {
  AETHEREAL_CHECK(connid >= 0 && connid < NumChannels());
  auto& ch = kernel_->ChannelAt(channels_[static_cast<std::size_t>(connid)]);
  ch.dest.SetReadListener(listener);
}

// ---------------------------------------------------------------------------
// NiKernel construction
// ---------------------------------------------------------------------------

NiKernel::NiKernel(std::string name, NiId id, const NiKernelParams& params)
    : sim::Module(std::move(name)), id_(id), params_(params) {
  AETHEREAL_CHECK(params.stu_slots > 0);
  AETHEREAL_CHECK_MSG(params.stu_slots <= regs::kMaxStuSlots,
                      "SLOTS register is a 32-bit mask; stu_slots must be <= "
                          << regs::kMaxStuSlots);
  AETHEREAL_CHECK(params.max_packet_flits > 0);
  AETHEREAL_CHECK_MSG(params.TotalChannels() > 0, "NI with no channels");
  AETHEREAL_CHECK_MSG(params.TotalChannels() <= link::kMaxQueueId + 1,
                      "more channels than the header qid field can address");

  stu_.assign(static_cast<std::size_t>(params.stu_slots), kInvalidId);
  // Configuration bursts are small; keep the staging vector allocation-free
  // in steady state (it is empty outside configuration).
  pending_register_writes_.reserve(regs::kRegsPerChannel * 4);

  channels_.Reset(static_cast<std::size_t>(params.TotalChannels()));
  for (std::size_t p = 0; p < params.ports.size(); ++p) {
    const auto& port_params = params.ports[p];
    auto port = std::unique_ptr<NiPort>(new NiPort(
        this->name() + "." +
            (port_params.name.empty() ? "port" + std::to_string(p)
                                      : port_params.name),
        this));
    for (const auto& cp : port_params.channels) {
      AETHEREAL_CHECK(cp.source_queue_words > 0 && cp.dest_queue_words > 0);
      const auto flat = static_cast<ChannelId>(channels_.size());
      Channel* ch = channels_.Emplace(cp.source_queue_words,
                                      cp.dest_queue_words);
      ch->port = static_cast<int>(p);
      ch->connid = static_cast<int>(port->channels_.size());
      ch->params = cp;
      ch->data_flush_reqs.kernel = this;
      ch->credit_flush_reqs.kernel = this;
      // Network-domain state commits with the kernel; port-domain state
      // (including the flush-request signals) with the port.
      RegisterState(&ch->source_net_side);
      RegisterState(&ch->dest_net_side);
      port->RegisterState(&ch->source_port_side);
      port->RegisterState(&ch->dest_port_side);
      port->RegisterState(&ch->data_flush_reqs);
      port->RegisterState(&ch->credit_flush_reqs);
      port->channels_.push_back(flat);
    }
    ports_.push_back(std::move(port));
  }
  // Registered last so the naïve full-walk commit applies register writes
  // after all state elements, exactly like the pre-optimization engine.
  RegisterState(&reg_apply_);
  SetEvaluateStride(kFlitWords);  // all work happens at slot boundaries
  SetDefaultCommitOnly();
}

NiKernel::~NiKernel() = default;

void NiKernel::ConnectToRouter(link::LinkWires* to_router,
                               link::LinkWires* from_router,
                               int router_be_capacity) {
  AETHEREAL_CHECK(to_router != nullptr && from_router != nullptr);
  AETHEREAL_CHECK(router_be_capacity > 0);
  to_router_ = to_router;
  from_router_ = from_router;
  be_link_credits_ = router_be_capacity;
  // Delivered flits and returned link credits must find us running.
  from_router->data.SetConsumer(this);
  to_router->credit_return.SetConsumer(this);
}

NiPort* NiKernel::port(int index) {
  AETHEREAL_CHECK(index >= 0 && index < NumPorts());
  return ports_[static_cast<std::size_t>(index)].get();
}

NiKernel::Channel& NiKernel::ChannelAt(ChannelId ch) {
  AETHEREAL_CHECK_MSG(ch >= 0 && ch < static_cast<ChannelId>(channels_.size()),
                      name() << ": channel " << ch << " out of range");
  return channels_[static_cast<std::size_t>(ch)];
}

const NiKernel::Channel& NiKernel::ChannelAt(ChannelId ch) const {
  AETHEREAL_CHECK(ch >= 0 && ch < static_cast<ChannelId>(channels_.size()));
  return channels_[static_cast<std::size_t>(ch)];
}

// ---------------------------------------------------------------------------
// Memory-mapped configuration
// ---------------------------------------------------------------------------

Status NiKernel::WriteRegister(Word address, Word value) {
  if (address < regs::kChannelBase) {
    return FailedPreconditionError("NI info registers are read-only");
  }
  const Word rel = address - regs::kChannelBase;
  const auto ch = static_cast<ChannelId>(rel / regs::kRegsPerChannel);
  const Word reg = rel % regs::kRegsPerChannel;
  if (ch >= static_cast<ChannelId>(channels_.size())) {
    return NotFoundError("channel register address out of range");
  }
  if (reg > static_cast<Word>(regs::ChannelReg::kSlots)) {
    return NotFoundError("unknown channel register");
  }
  pending_register_writes_.emplace_back(address, value);
  // The write applies at the next commit phase even while parked (the
  // RegApply element is armed); wake so the *scheduling* consequences
  // (enable, slots, thresholds) are acted on from the next slot boundary.
  reg_apply_.Arm();
  Wake(kFlitWords + 1);
  return OkStatus();
}

Result<Word> NiKernel::ReadRegister(Word address) const {
  switch (address) {
    case regs::kStuSize:
      return static_cast<Word>(params_.stu_slots);
    case regs::kNumChannels:
      return static_cast<Word>(channels_.size());
    case regs::kNumPorts:
      return static_cast<Word>(ports_.size());
    default:
      break;
  }
  if (address < regs::kChannelBase) return NotFoundError("unknown register");
  const Word rel = address - regs::kChannelBase;
  const auto chid = static_cast<ChannelId>(rel / regs::kRegsPerChannel);
  const Word reg = rel % regs::kRegsPerChannel;
  if (chid >= static_cast<ChannelId>(channels_.size())) {
    return NotFoundError("channel register address out of range");
  }
  const Channel& ch = ChannelAt(chid);
  switch (static_cast<regs::ChannelReg>(reg)) {
    case regs::ChannelReg::kCtrl:
      return static_cast<Word>((ch.enabled ? regs::kCtrlEnable : 0) |
                               (ch.gt ? regs::kCtrlGt : 0));
    case regs::ChannelReg::kSpace:
      return static_cast<Word>(ch.space);
    case regs::ChannelReg::kPathRqid:
      return regs::PackPathRqid(ch.path, ch.remote_qid);
    case regs::ChannelReg::kThresholds:
      return regs::PackThresholds(ch.data_threshold, ch.credit_threshold);
    case regs::ChannelReg::kSlots: {
      Word mask = 0;
      for (SlotIndex s = 0; s < params_.stu_slots; ++s) {
        if (stu_[static_cast<std::size_t>(s)] == chid) mask |= (1u << s);
      }
      return mask;
    }
    default:
      return NotFoundError("unknown channel register");
  }
}

void NiKernel::ApplyRegisterWrite(Word address, Word value) {
  const Word rel = address - regs::kChannelBase;
  const auto chid = static_cast<ChannelId>(rel / regs::kRegsPerChannel);
  const Word reg = rel % regs::kRegsPerChannel;
  Channel& ch = ChannelAt(chid);
  switch (static_cast<regs::ChannelReg>(reg)) {
    case regs::ChannelReg::kCtrl: {
      const bool enable = (value & regs::kCtrlEnable) != 0;
      const bool gt = (value & regs::kCtrlGt) != 0;
      AETHEREAL_CHECK_MSG(!(ch.enabled && !enable && ch.open_words_left > 0),
                          name() << ": channel " << chid
                                 << " disabled mid-packet");
      if (enable && !ch.enabled) {
        // (Re)opening: reset run-time state.
        ch.credits_owed = 0;
        ch.open_words_left = 0;
        ch.flush_words_left = 0;
        ch.credit_flush = false;
      }
      ch.enabled = enable;
      ch.gt = gt;
      if (enable && !gt) {
        // A best-effort channel must not own TDM slots. Checked here (not
        // only in Schedule()) so the misconfiguration is fatal even while
        // the kernel is idle-gated.
        for (SlotIndex s = 0; s < params_.stu_slots; ++s) {
          AETHEREAL_CHECK_MSG(stu_[static_cast<std::size_t>(s)] != chid,
                              name() << ": STU slot " << s
                                     << " owned by best-effort channel "
                                     << chid);
        }
      }
      break;
    }
    case regs::ChannelReg::kSpace:
      ch.space = static_cast<int>(value);
      ch.space_init = static_cast<int>(value);
      break;
    case regs::ChannelReg::kPathRqid:
      ch.path = regs::UnpackPath(value);
      ch.remote_qid = regs::UnpackRqid(value);
      break;
    case regs::ChannelReg::kThresholds:
      ch.data_threshold = regs::UnpackDataThreshold(value);
      ch.credit_threshold = regs::UnpackCreditThreshold(value);
      break;
    case regs::ChannelReg::kSlots: {
      for (SlotIndex s = 0; s < params_.stu_slots; ++s) {
        const bool want = (value & (1u << s)) != 0;
        ChannelId& owner = stu_[static_cast<std::size_t>(s)];
        if (want) {
          AETHEREAL_CHECK_MSG(owner == kInvalidId || owner == chid,
                              name() << ": STU slot " << s
                                     << " already owned by channel " << owner);
          AETHEREAL_CHECK_MSG(!(ch.enabled && !ch.gt),
                              name() << ": STU slot " << s
                                     << " owned by best-effort channel "
                                     << chid);
          owner = chid;
        } else if (owner == chid) {
          owner = kInvalidId;
        }
      }
      break;
    }
    default:
      AETHEREAL_CHECK_MSG(false, "unreachable: validated in WriteRegister");
  }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

const ChannelStats& NiKernel::channel_stats(ChannelId ch) const {
  return ChannelAt(ch).stats;
}
int NiKernel::SpaceOf(ChannelId ch) const { return ChannelAt(ch).space; }
int NiKernel::CreditsOwedOf(ChannelId ch) const {
  return ChannelAt(ch).credits_owed;
}
ChannelId NiKernel::SlotOwner(SlotIndex slot) const {
  AETHEREAL_CHECK(slot >= 0 && slot < params_.stu_slots);
  return stu_[static_cast<std::size_t>(slot)];
}
SlotIndex NiKernel::CurrentSlot() const {
  return static_cast<SlotIndex>((CycleCount() / kFlitWords) %
                                params_.stu_slots);
}
bool NiKernel::ChannelEnabled(ChannelId ch) const {
  return ChannelAt(ch).enabled;
}

// ---------------------------------------------------------------------------
// Cycle behaviour
// ---------------------------------------------------------------------------

void NiKernel::Evaluate() {
  if (!IsSlotBoundary()) return;
  const Cycle slot_number = CycleCount() / kFlitWords;
  AccountIdleThrough(slot_number - 1);  // slots skipped while parked
  last_accounted_slot_ = slot_number;   // this slot is processed below
  bool active = false;
  if (to_router_ != nullptr) {
    const int returned = to_router_->credit_return.Sample();
    if (returned != 0) {
      be_link_credits_ += returned;
      active = true;
    }
  }
  if (from_router_ != nullptr) active |= ReceiveFlit();
  active |= HarvestCreditsAndFlushes();
  if (to_router_ != nullptr) active |= Schedule();

  // A slot with no arrivals, no harvested credits, no flushes, and nothing
  // emitted can only be followed by more of the same until an external
  // event (wire drive, queue push, flush, register write) wakes us.
  if (!active) {
    if (CanSleep()) {
      Park();
    } else {
      MaybeParkUntilGtSlot(slot_number);
    }
  }
}

void NiKernel::MaybeParkUntilGtSlot(Cycle slot_number) {
  // Sleep through the wait for a reserved TDM slot: if the only pending
  // work is eligible GT channels waiting for their slot to come around,
  // schedule a wake at the earliest slot owned by any of them. The skipped
  // slots are exactly the slots the naïve engine spends scanning an
  // unchanged schedule (it grants nothing until that same slot), so the
  // idle accounting replay stays exact. Any external event still wakes us
  // earlier.
  if (rx_qid_gt_ != kInvalidId || rx_qid_be_ != kInvalidId) return;
  if (be_open_channel_ != kInvalidId) return;
  if (!pending_register_writes_.empty()) return;
  for (const Channel& ch : channels_) {
    if (ch.open_words_left > 0) return;
    if (!ch.gt && Eligible(ch)) return;  // BE work is granted next free slot
  }
  for (Cycle d = 1; d <= params_.stu_slots; ++d) {
    const ChannelId owner =
        stu_[static_cast<std::size_t>((slot_number + d) % params_.stu_slots)];
    if (owner == kInvalidId) continue;
    const Channel& oc = ChannelAt(owner);
    if (oc.gt && Eligible(oc)) {
      ParkUntil((slot_number + d) * kFlitWords);
      return;
    }
  }
}

bool NiKernel::CanSleep() const {
  if (rx_qid_gt_ != kInvalidId || rx_qid_be_ != kInvalidId) return false;
  if (be_open_channel_ != kInvalidId) return false;
  if (!pending_register_writes_.empty()) return false;
  for (const Channel& ch : channels_) {
    if (ch.open_words_left > 0) return false;
    if (Eligible(ch)) return false;
  }
  return true;
}

void NiKernel::AccountIdleThrough(Cycle last_slot) {
  if (last_slot <= last_accounted_slot_) return;
  const Cycle first = last_accounted_slot_ + 1;
  last_accounted_slot_ = last_slot;
  if (to_router_ == nullptr) return;  // the naïve path never schedules either
  // While we were parked, the naïve engine would have walked Schedule() each
  // slot and found nothing to send: every skipped slot is an idle slot, and
  // every skipped slot whose STU owner is enabled is additionally an unused
  // GT slot (the owner cannot have been eligible, or we would not have
  // parked, and eligibility cannot change without an event that wakes us).
  const Cycle skipped = last_slot - first + 1;
  stats_.idle_slots += skipped;
  Cycle owned_enabled = 0;  // enabled-owner slots per full table rotation
  for (SlotIndex s = 0; s < params_.stu_slots; ++s) {
    const ChannelId owner = stu_[static_cast<std::size_t>(s)];
    if (owner != kInvalidId && ChannelAt(owner).enabled) ++owned_enabled;
  }
  if (owned_enabled == 0) return;
  const Cycle rotations = skipped / params_.stu_slots;
  stats_.gt_slots_unused += rotations * owned_enabled;
  for (Cycle s = first + rotations * params_.stu_slots; s <= last_slot; ++s) {
    const ChannelId owner =
        stu_[static_cast<std::size_t>(s % params_.stu_slots)];
    if (owner != kInvalidId && ChannelAt(owner).enabled) {
      ++stats_.gt_slots_unused;
    }
  }
}

const NiKernelStats& NiKernel::stats() {
  // Settle the idle accounting for any trailing parked window so counters
  // read mid- or post-run match the naïve engine exactly.
  if (clock() != nullptr && CycleCount() > 0) {
    AccountIdleThrough((CycleCount() - 1) / kFlitWords);
  }
  return stats_;
}

void NiKernel::RegApply::Commit() {
  if (kernel_->pending_register_writes_.empty()) return;
  // Settle the idle-accounting replay for any parked window *before* the
  // writes change enable/slot-table state: the naïve engine walked those
  // slots with the pre-write configuration.
  if (kernel_->clock() != nullptr) {
    kernel_->AccountIdleThrough(kernel_->CycleCount() / kFlitWords);
  }
  for (const auto& [address, value] : kernel_->pending_register_writes_) {
    kernel_->ApplyRegisterWrite(address, value);
  }
  kernel_->pending_register_writes_.clear();
}

bool NiKernel::ReceiveFlit() {
  const Flit& flit = from_router_->data.Sample();
  if (flit.IsIdle()) return false;

  // One packet per traffic class may be in flight on the delivery link (GT
  // preempts BE at slot boundaries upstream).
  int& rx_qid = flit.gt ? rx_qid_gt_ : rx_qid_be_;

  int word_index = 0;
  if (flit.kind == FlitKind::kHeader) {
    const PacketHeader header = PacketHeader::Decode(flit.words[0]);
    AETHEREAL_CHECK_MSG(header.path.Exhausted(),
                        name() << ": packet arrived with unconsumed path");
    AETHEREAL_CHECK_MSG(
        header.remote_qid < static_cast<int>(channels_.size()),
        name() << ": packet addresses queue " << header.remote_qid
               << " of " << channels_.size());
    AETHEREAL_CHECK_MSG(rx_qid == kInvalidId,
                        name() << ": header while a packet of the same "
                               << "class is open");
    rx_qid = header.remote_qid;
    Channel& ch = ChannelAt(rx_qid);
    // Note: reception is not gated by the enable bit — the queues exist
    // physically, and in-flight packets (e.g. final credit returns during a
    // connection close) may legitimately arrive after the channel has been
    // disabled. Enable only gates the scheduler.
    //
    // Piggybacked credits replenish the Space counter of the paired
    // (reverse-direction) source queue, which is the same channel index.
    ch.space += header.credits;
    AETHEREAL_CHECK_MSG(ch.space <= ch.space_init,
                        name() << ": credit overflow on channel " << rx_qid
                               << " (space " << ch.space << " > init "
                               << ch.space_init << ")");
    word_index = 1;
    ++stats_.packets_received;
  } else {
    AETHEREAL_CHECK_MSG(rx_qid != kInvalidId,
                        name() << ": payload flit with no packet open");
  }

  Channel& ch = ChannelAt(rx_qid);
  for (; word_index < flit.valid_words; ++word_index) {
    AETHEREAL_CHECK_MSG(ch.dest.CanPush(),
                        name() << ": destination queue overflow on channel "
                               << rx_qid << " — end-to-end flow control "
                               << "violated");
    ch.dest.Push(flit.words[static_cast<std::size_t>(word_index)]);
    ++ch.stats.words_received;
    ++stats_.payload_words_received;
  }
  if (flit.eop) rx_qid = kInvalidId;

  // Return one link-level credit per BE flit consumed (the NI always sinks
  // flits: end-to-end flow control already guaranteed destination space).
  if (!flit.gt) from_router_->credit_return.Drive(1);
  return true;
}

bool NiKernel::HarvestCreditsAndFlushes() {
  bool any = false;
  for (Channel& ch : channels_) {
    const int freed = ch.dest.TakeFreedForWriter();
    if (freed > 0) {
      ch.credits_owed += freed;
      AETHEREAL_CHECK_MSG(ch.credits_owed <= ch.params.dest_queue_words,
                          name() << ": credits owed exceed queue capacity");
      any = true;
    }
    if (ch.data_flush_reqs.Get() > ch.data_flush_seen) {
      ch.data_flush_seen = ch.data_flush_reqs.Get();
      // Snapshot of the source-queue filling at flush time (paper §4.1).
      ch.flush_words_left = ch.source.ReaderSize();
      any = true;
    }
    if (ch.credit_flush_reqs.Get() > ch.credit_flush_seen) {
      ch.credit_flush_seen = ch.credit_flush_reqs.Get();
      ch.credit_flush = true;
      any = true;
    }
    if (ch.credit_flush && ch.credits_owed == 0) ch.credit_flush = false;
  }
  return any;
}

int NiKernel::SendableWords(const Channel& ch) const {
  return std::min(ch.source.ReaderSize(), ch.space);
}

bool NiKernel::Eligible(const Channel& ch) const {
  if (!ch.enabled) return false;
  // A channel whose path register was never configured has nowhere to send
  // (e.g. a CNIP channel enabled at reset that has already consumed
  // configuration messages but whose response direction is not yet set up,
  // Fig. 9 step 2).
  if (ch.path.Exhausted()) return false;
  const int sendable = SendableWords(ch);
  const bool data_ok =
      sendable >= std::max(1, ch.data_threshold) ||
      (ch.flush_words_left > 0 && sendable > 0);
  const bool credit_ok =
      ch.credits_owed >= std::max(1, ch.credit_threshold) ||
      (ch.credit_flush && ch.credits_owed > 0);
  return data_ok || credit_ok;
}

int NiKernel::GtRunWords(ChannelId ch, SlotIndex slot) const {
  int run = 0;
  while (run < params_.stu_slots &&
         stu_[static_cast<std::size_t>((slot + run) % params_.stu_slots)] == ch) {
    ++run;
  }
  return run * kFlitWords - 1;  // the header consumes one word
}

bool NiKernel::Schedule() {
  const SlotIndex slot = CurrentSlot();
  ChannelId granted = kInvalidId;

  // Fault stall window: the scheduler grants nothing this slot (transient
  // scheduling fault, DESIGN.md §12). The accounting mirrors a slot in
  // which nothing was sendable — idle, plus an unused GT slot when the
  // owner is enabled — so it matches both the naïve walk and the parked
  // replay of AccountIdleThrough exactly.
  if (fault_ != nullptr && fault_->NiStalled(id_, CycleCount())) {
    const ChannelId stalled_owner = stu_[static_cast<std::size_t>(slot)];
    if (stalled_owner != kInvalidId && ChannelAt(stalled_owner).enabled) {
      ++stats_.gt_slots_unused;
    }
    ++stats_.idle_slots;
    return false;
  }

  const ChannelId owner = stu_[static_cast<std::size_t>(slot)];
  if (owner != kInvalidId) {
    Channel& oc = ChannelAt(owner);
    if (oc.enabled) {
      AETHEREAL_CHECK_MSG(oc.gt,
                          name() << ": STU slot " << slot
                                 << " owned by best-effort channel " << owner);
      if (oc.open_words_left > 0 || Eligible(oc)) {
        granted = owner;
      } else {
        ++stats_.gt_slots_unused;
      }
    }
  }

  if (granted == kInvalidId) {
    if (be_open_channel_ != kInvalidId) {
      // Wormhole: the open BE packet continues before anything else.
      if (be_link_credits_ <= 0) {
        ++stats_.be_link_stalls;
        return false;
      }
      granted = be_open_channel_;
    } else {
      granted = ArbitrateBe();
      if (granted != kInvalidId && be_link_credits_ <= 0) {
        ++stats_.be_link_stalls;
        return false;
      }
    }
  }

  if (granted == kInvalidId) {
    ++stats_.idle_slots;
    return false;
  }
  EmitFlit(granted);
  return true;
}

ChannelId NiKernel::ArbitrateBe() {
  const auto num = static_cast<int>(channels_.size());
  auto eligible_be = [this](ChannelId id) {
    const Channel& ch = ChannelAt(id);
    return !ch.gt && Eligible(ch);
  };

  switch (params_.be_arbitration) {
    case BeArbitration::kRoundRobin: {
      for (int k = 0; k < num; ++k) {
        const ChannelId id = static_cast<ChannelId>((rr_pointer_ + k) % num);
        if (eligible_be(id)) {
          rr_pointer_ = (id + 1) % num;
          return id;
        }
      }
      return kInvalidId;
    }
    case BeArbitration::kWeightedRoundRobin: {
      // The current channel keeps the grant for `weight` packets.
      if (wrr_grants_left_ > 0 &&
          eligible_be(static_cast<ChannelId>(rr_pointer_))) {
        --wrr_grants_left_;
        return static_cast<ChannelId>(rr_pointer_);
      }
      for (int k = 1; k <= num; ++k) {
        const ChannelId id = static_cast<ChannelId>((rr_pointer_ + k) % num);
        if (eligible_be(id)) {
          rr_pointer_ = id;
          wrr_grants_left_ = ChannelAt(id).params.weight - 1;
          return id;
        }
      }
      return kInvalidId;
    }
    case BeArbitration::kQueueFill: {
      ChannelId best = kInvalidId;
      int best_fill = -1;
      for (ChannelId id = 0; id < num; ++id) {
        if (!eligible_be(id)) continue;
        const int fill = SendableWords(ChannelAt(id));
        if (fill > best_fill) {
          best_fill = fill;
          best = id;
        }
      }
      return best;
    }
  }
  return kInvalidId;
}

void NiKernel::EmitFlit(ChannelId chid) {
  Channel& ch = ChannelAt(chid);
  Flit flit;
  flit.gt = ch.gt;

  if (ch.open_words_left == 0) {
    // Start a new packet: header flit. Decide the payload budget now
    // ("once a queue is selected, a packet containing the largest possible
    // amount of credits and data will be produced").
    int data = std::min(SendableWords(ch),
                        params_.max_packet_flits * kFlitWords - 1);
    int credits = std::min(ch.credits_owed, link::kMaxHeaderCredits);
    if (!params_.piggyback_credits) {
      // Ablation: credits travel only in dedicated credit packets, which
      // preempt data once the credit threshold triggers ("the credits are
      // sent as empty packets, thus consuming extra bandwidth", §4.1).
      const bool send_credits_now =
          ch.credits_owed >= std::max(1, ch.credit_threshold) ||
          (ch.credit_flush && ch.credits_owed > 0);
      if (send_credits_now) {
        data = 0;
      } else {
        credits = 0;
      }
    }
    if (ch.gt) {
      // A GT packet must fit in the contiguous run of its reserved slots so
      // that its flits occupy consecutive slots along the whole path.
      data = std::min(data, GtRunWords(chid, CurrentSlot()));
    }
    AETHEREAL_CHECK_MSG(data > 0 || credits > 0,
                        name() << ": scheduled channel " << chid
                               << " with nothing to send");
    PacketHeader header;
    header.gt = ch.gt;
    header.credits = credits;
    header.remote_qid = ch.remote_qid;
    header.path = ch.path;
    flit.kind = FlitKind::kHeader;
    flit.words[0] = header.Encode();
    flit.valid_words = 1;
    ch.credits_owed -= credits;
    ch.space -= data;
    ch.open_words_left = data;
    ++stats_.header_words_sent;
    ++ch.stats.packets_sent;
    if (ch.gt) {
      ++stats_.gt_packets;
    } else {
      ++stats_.be_packets;
    }
    if (data == 0) {
      ++stats_.credit_only_packets;
      ++ch.stats.credit_only_packets;
      stats_.credits_in_credit_only += credits;
    } else {
      stats_.credits_piggybacked += credits;
    }
  } else {
    flit.kind = FlitKind::kPayload;
  }

  // Fill the flit with payload words from the source queue.
  while (flit.valid_words < kFlitWords && ch.open_words_left > 0) {
    AETHEREAL_CHECK_MSG(ch.source.CanPop(),
                        name() << ": source queue underran an open packet");
    flit.words[static_cast<std::size_t>(flit.valid_words)] = ch.source.Pop();
    ++flit.valid_words;
    --ch.open_words_left;
    ++ch.stats.words_sent;
    ++stats_.payload_words_sent;
    if (ch.flush_words_left > 0) --ch.flush_words_left;
  }
  flit.eop = (ch.open_words_left == 0);

  if (ch.gt) {
    ++stats_.gt_flits;
  } else {
    ++stats_.be_flits;
    --be_link_credits_;
    be_open_channel_ = flit.eop ? kInvalidId : chid;
  }
  to_router_->data.Drive(flit);
}

}  // namespace aethereal::core
