// The Æthereal network-interface kernel — the paper's primary contribution.
//
// The NI kernel (paper Fig. 2) implements, per point-to-point channel:
//  * a source queue (messages toward the NoC) and a destination queue
//    (messages from the NoC), both clock-domain-crossing hardware FIFOs so
//    every NI port can run at its own frequency;
//  * credit-based end-to-end flow control: a Space counter tracks the empty
//    space of the remote destination queue (initialized with its size,
//    decremented when data is sent); consumption at the local destination
//    queue produces credits that are piggybacked in the headers of packets
//    travelling in the opposite direction;
//  * packetization (Pck) / depacketization (Depck);
//  * the slot-table-unit (STU) scheduler: GT channels transmit in their
//    reserved TDM slots; otherwise an eligible best-effort channel is
//    selected (round-robin / weighted round-robin / queue-fill);
//  * configurable send thresholds with per-channel flush, a credit
//    threshold with flush, and a maximum packet length;
//  * the memory-mapped configuration register file (see core/registers.h).
#ifndef AETHEREAL_CORE_NI_KERNEL_H
#define AETHEREAL_CORE_NI_KERNEL_H

#include <memory>
#include <string>
#include <vector>

#include "core/params.h"
#include "core/registers.h"
#include "link/header.h"
#include "link/wire.h"
#include "sim/cdc_fifo.h"
#include "sim/fifo.h"
#include "sim/kernel.h"
#include "sim/soa_state.h"
#include "util/status.h"
#include "util/types.h"

namespace aethereal::fault {
class FaultInjector;
}

namespace aethereal::core {

class NiKernel;

/// The IP-facing side of a group of channels (paper: "The NI kernel
/// communicates with the NI shells via ports"). Runs in its own clock
/// domain; the channel queues implement the crossing. Shells use this API
/// from the port clock's Evaluate phase, selecting the channel with the
/// connid parameter.
class NiPort : public sim::Module {
 public:
  int NumChannels() const { return static_cast<int>(channels_.size()); }

  /// True if `words` more words fit in the source queue of `connid`.
  bool CanWrite(int connid, int words = 1) const;

  /// Pushes one word of an outgoing message.
  void Write(int connid, Word word);

  /// Words of incoming messages available to read.
  int ReadAvailable(int connid) const;

  /// Peeks / pops incoming message words.
  Word PeekRead(int connid, int offset = 0) const;
  Word Read(int connid);

  /// Raises the data-flush signal: a snapshot of the source-queue filling
  /// is taken and the send threshold is bypassed until all words present at
  /// flush time have been sent (paper §4.1).
  void FlushData(int connid);

  /// Raises the credit-flush signal: owed credits are sent even below the
  /// credit threshold.
  void FlushCredits(int connid);

  /// Declares a module to Wake() whenever newly delivered words become
  /// readable on `connid` — lets a consumer IP park on an empty queue
  /// without ever reading a word late.
  void WakeOnDelivery(int connid, sim::Module* listener);

  /// The NI-global channel id (= remote_qid a peer must address).
  ChannelId GlobalChannelOf(int connid) const;

  void Evaluate() override {}

 private:
  friend class NiKernel;
  NiPort(std::string name, NiKernel* kernel);
  NiKernel* kernel_;
  std::vector<ChannelId> channels_;  // flat channel ids, by connid
};

/// Aggregate traffic statistics of one NI kernel.
struct NiKernelStats {
  std::int64_t gt_packets = 0;
  std::int64_t be_packets = 0;
  std::int64_t credit_only_packets = 0;  // header-only packets (no payload)
  std::int64_t gt_flits = 0;
  std::int64_t be_flits = 0;
  std::int64_t payload_words_sent = 0;
  std::int64_t header_words_sent = 0;
  std::int64_t payload_words_received = 0;
  std::int64_t packets_received = 0;
  std::int64_t credits_piggybacked = 0;   // credits carried by data packets
  std::int64_t credits_in_credit_only = 0;
  std::int64_t idle_slots = 0;            // slots with nothing to send
  std::int64_t be_link_stalls = 0;        // BE blocked on link-level credits
  std::int64_t gt_slots_unused = 0;       // reserved slots the owner skipped
};

/// Per-channel counters.
struct ChannelStats {
  std::int64_t words_sent = 0;
  std::int64_t words_received = 0;
  std::int64_t packets_sent = 0;
  std::int64_t credit_only_packets = 0;
};

class NiKernel : public sim::Module {
 public:
  /// Constructs the kernel and its ports. Register the kernel on the
  /// network clock and each port on its (possibly distinct) port clock.
  NiKernel(std::string name, NiId id, const NiKernelParams& params);
  ~NiKernel() override;

  /// Wires the kernel to its router: `to_router` is the injection link
  /// (kernel drives data, samples BE credit returns); `from_router` is the
  /// delivery link. `router_be_capacity` is the router's BE input-buffer
  /// depth in flits on the injection link.
  void ConnectToRouter(link::LinkWires* to_router, link::LinkWires* from_router,
                       int router_be_capacity);

  NiId id() const { return id_; }
  const NiKernelParams& params() const { return params_; }
  int NumPorts() const { return static_cast<int>(ports_.size()); }
  NiPort* port(int index);

  // --- memory-mapped configuration (CNIP) ---------------------------------

  /// Stages a register write; it takes effect at the next network-clock
  /// edge (reads in later cycles observe it). Address validity is checked
  /// now; value validity is checked at apply time.
  Status WriteRegister(Word address, Word value);

  /// Reads a committed register value.
  Result<Word> ReadRegister(Word address) const;

  // --- introspection for tests / benches ----------------------------------

  /// Aggregate counters. Non-const: settles idle accounting for any
  /// trailing parked window so the values match the naïve engine exactly.
  const NiKernelStats& stats();
  const ChannelStats& channel_stats(ChannelId ch) const;
  int NumChannels() const { return static_cast<int>(channels_.size()); }
  /// Committed queue fills (the CDC reader-side sizes) — what a read-only
  /// observer may sample without perturbing anything (obs/tap.h).
  int SourceQueueWords(ChannelId ch) const {
    return ChannelAt(ch).source.ReaderSize();
  }
  int DestQueueWords(ChannelId ch) const {
    return ChannelAt(ch).dest.ReaderSize();
  }
  int SpaceOf(ChannelId ch) const;
  int CreditsOwedOf(ChannelId ch) const;
  ChannelId SlotOwner(SlotIndex slot) const;
  SlotIndex CurrentSlot() const;
  bool ChannelEnabled(ChannelId ch) const;

  /// Arms fault injection (DESIGN.md §12). During a stall window the STU
  /// scheduler grants nothing — a transient scheduling fault. Receive,
  /// credit harvesting, and register writes are unaffected; the stalled
  /// slots account as idle/unused exactly like naturally idle ones.
  void SetFaultInjector(fault::FaultInjector* injector) {
    fault_ = injector;
  }

  void Evaluate() override;

 private:
  friend class NiPort;

  /// Applies pending configuration-register writes at the clock edge. A
  /// TwoPhase element (instead of a Commit() override) so the kernel's
  /// commit call can be elided on edges with nothing staged.
  class RegApply : public sim::TwoPhase {
   public:
    explicit RegApply(NiKernel* kernel) : kernel_(kernel) {}
    void Commit() override;
    void Arm() { MarkDirty(); }

   private:
    NiKernel* kernel_;
  };

  struct Channel {
    Channel(int source_queue_words, int dest_queue_words)
        : source(source_queue_words),
          dest(dest_queue_words),
          source_net_side(&source),
          dest_net_side(&dest),
          source_port_side(&source),
          dest_port_side(&dest) {}

    // Design-time.
    int port = 0;
    int connid = 0;
    ChannelParams params;
    // Queues (the CDC boundary), stored inline so the per-slot channel walk
    // (harvest, schedule, eligibility) stays within the channel slab
    // instead of chasing one heap allocation per queue and adapter.
    sim::CdcFifo<Word> source;
    sim::CdcFifo<Word> dest;
    sim::CdcReadSide<Word> source_net_side;
    sim::CdcWriteSide<Word> dest_net_side;
    sim::CdcWriteSide<Word> source_port_side;
    sim::CdcReadSide<Word> dest_port_side;
    // Run-time configuration registers.
    bool enabled = false;
    bool gt = false;
    link::SourcePath path;
    int remote_qid = 0;
    int space = 0;        // credit counter: free words at the remote dest
    int space_init = 0;   // value written to SPACE (remote queue capacity)
    int data_threshold = 1;
    int credit_threshold = 1;
    // Run-time state.
    int credits_owed = 0;        // local consumption not yet reported
    int open_words_left = 0;     // payload words left in the open packet
    int flush_words_left = 0;    // flush snapshot still to send
    bool credit_flush = false;
    // Flush request signals crossing from the port domain: monotonic
    // counters committed on the port clock (registered as port state); the
    // kernel compares them against its "seen" counters. This keeps the
    // two-phase order-independence guarantee across domains. The register
    // wakes the kernel when it commits — the staging-time wake alone is
    // not enough, because on a slow port clock the commit can land after
    // the wake hold has expired and the kernel has re-parked.
    struct FlushRequestRegister : sim::Register<std::int64_t> {
      FlushRequestRegister() : sim::Register<std::int64_t>(0) {}
      NiKernel* kernel = nullptr;
      void Commit() override {
        sim::Register<std::int64_t>::Commit();
        if (kernel != nullptr) kernel->Wake(kFlitWords + 1);
      }
    };
    FlushRequestRegister data_flush_reqs;
    FlushRequestRegister credit_flush_reqs;
    std::int64_t data_flush_seen = 0;
    std::int64_t credit_flush_seen = 0;
    ChannelStats stats;
  };

  bool IsSlotBoundary() const { return CycleCount() % kFlitWords == 0; }
  Channel& ChannelAt(ChannelId ch);
  const Channel& ChannelAt(ChannelId ch) const;

  /// Returns true if a non-idle flit arrived.
  bool ReceiveFlit();
  /// Returns true if any credit was harvested or flush request seen.
  bool HarvestCreditsAndFlushes();
  /// Returns true if a flit was emitted.
  bool Schedule();
  void EmitFlit(ChannelId ch);
  bool Eligible(const Channel& ch) const;
  int SendableWords(const Channel& ch) const;
  ChannelId ArbitrateBe();
  int GtRunWords(ChannelId ch, SlotIndex slot) const;
  void ApplyRegisterWrite(Word address, Word value);
  /// True when no channel has pending or schedulable work, so Evaluate()
  /// would remain a no-op until an external event (which always Wake()s us).
  bool CanSleep() const;
  /// If the only pending work is eligible GT channels waiting for their
  /// reserved slot, schedules a wake at the earliest such slot and parks.
  void MaybeParkUntilGtSlot(Cycle slot_number);
  /// Replays the idle accounting (idle_slots / gt_slots_unused) for slots
  /// skipped while parked, through slot `last_slot` inclusive, keeping the
  /// stats identical to the naïve path.
  void AccountIdleThrough(Cycle last_slot);

  NiId id_;
  NiKernelParams params_;
  // Channels live in a contiguous fixed-capacity slab: their queues and
  // flush registers are registered as state by address, so they must never
  // move (sim/soa_state.h).
  sim::Slab<Channel> channels_;
  std::vector<std::unique_ptr<NiPort>> ports_;
  std::vector<ChannelId> stu_;  // slot -> owning channel (or kInvalidId)

  link::LinkWires* to_router_ = nullptr;
  link::LinkWires* from_router_ = nullptr;
  int be_link_credits_ = 0;

  // Receive state: one in-progress packet per traffic class, because GT
  // flits may preempt a BE packet mid-stream at the upstream router output
  // (GT preempts BE at slot boundaries; the sideband class bit
  // disambiguates payload flits, as in the routers).
  int rx_qid_gt_ = kInvalidId;
  int rx_qid_be_ = kInvalidId;

  // Send state.
  ChannelId be_open_channel_ = kInvalidId;  // BE packet in progress
  int rr_pointer_ = 0;
  int wrr_grants_left_ = 0;

  // Idle accounting across parked windows (slot sequence number of the last
  // slot whose idle stats were accounted).
  Cycle last_accounted_slot_ = -1;

  std::vector<std::pair<Word, Word>> pending_register_writes_;
  RegApply reg_apply_{this};
  NiKernelStats stats_;
  fault::FaultInjector* fault_ = nullptr;
};

}  // namespace aethereal::core

#endif  // AETHEREAL_CORE_NI_KERNEL_H
