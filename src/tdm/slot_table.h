// TDM slot table.
//
// Guaranteed-throughput (GT) service in Æthereal is implemented by
// configuring connections as pipelined time-division-multiplexed circuits
// over the network (paper §2): reserving slot s on a link implies using slot
// s+1 on the next link of the path, and so on. Reserving N of S slots buys
// bandwidth N*B_slot; the latency bound is the wait until the next reserved
// slot plus one slot per hop; jitter is bounded by the maximum gap between
// consecutive reserved slots.
#ifndef AETHEREAL_TDM_SLOT_TABLE_H
#define AETHEREAL_TDM_SLOT_TABLE_H

#include <ostream>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace aethereal::tdm {

/// Globally unique channel identity (an NI-local channel id qualified by the
/// NI), used to tag slot ownership in allocator tables.
struct GlobalChannel {
  NiId ni = kInvalidId;
  ChannelId channel = kInvalidId;

  bool valid() const { return ni != kInvalidId && channel != kInvalidId; }

  friend bool operator==(const GlobalChannel&, const GlobalChannel&) = default;
};

std::ostream& operator<<(std::ostream& os, const GlobalChannel& channel);

/// Largest circular distance (in slots) between consecutive entries of
/// `slots` in a table of `num_slots` — the paper's jitter bound, shared by
/// SlotTable::MaxGap and the analytical bound model (verify/bounds.h).
/// Returns num_slots for an empty set (worst case); never 0 otherwise.
int MaxCircularGap(std::vector<SlotIndex> slots, int num_slots);

/// Slot ownership table for one link (or for the NI's slot-table unit, STU).
class SlotTable {
 public:
  explicit SlotTable(int num_slots);

  int num_slots() const { return static_cast<int>(slots_.size()); }

  bool IsFree(SlotIndex s) const { return !At(s).valid(); }

  /// Owner of slot `s` (invalid GlobalChannel if free).
  const GlobalChannel& Owner(SlotIndex s) const { return At(s); }

  /// Reserves slot `s` for `owner`; fails if occupied.
  Status Reserve(SlotIndex s, const GlobalChannel& owner);

  /// Releases slot `s`; fails if free.
  Status Release(SlotIndex s);

  /// Releases every slot owned by `owner`; returns how many were freed.
  int ReleaseAll(const GlobalChannel& owner);

  /// Slots currently owned by `owner`, ascending.
  std::vector<SlotIndex> SlotsOf(const GlobalChannel& owner) const;

  /// Number of reserved slots.
  int Reserved() const;

  /// Fraction of slots reserved, in [0,1].
  double Utilization() const;

  /// Largest gap (in slots) between consecutive reservations of `owner`,
  /// wrapping around the table; this is the paper's jitter bound. Returns
  /// num_slots() if the owner holds no slot (worst case) and 0 is never
  /// returned for a non-empty owner (a gap is at least 1).
  int MaxGap(const GlobalChannel& owner) const;

 private:
  const GlobalChannel& At(SlotIndex s) const;
  GlobalChannel& At(SlotIndex s);
  std::vector<GlobalChannel> slots_;
};

}  // namespace aethereal::tdm

#endif  // AETHEREAL_TDM_SLOT_TABLE_H
