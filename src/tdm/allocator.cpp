#include "tdm/allocator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace aethereal::tdm {

CentralizedAllocator::CentralizedAllocator(const topology::Topology* topology,
                                           int num_slots)
    : topology_(topology), num_slots_(num_slots) {
  AETHEREAL_CHECK(topology != nullptr);
  AETHEREAL_CHECK(num_slots > 0);
  tables_.reserve(static_cast<std::size_t>(topology->NumLinks()));
  for (int i = 0; i < topology->NumLinks(); ++i) {
    tables_.emplace_back(num_slots);
  }
}

bool CentralizedAllocator::SlotFeasible(const topology::ChannelRoute& route,
                                        SlotIndex s) const {
  for (std::size_t j = 0; j < route.links.size(); ++j) {
    const SlotIndex slot_here =
        static_cast<SlotIndex>((s + static_cast<SlotIndex>(j)) % num_slots_);
    if (!TableOf(route.links[j]).IsFree(slot_here)) return false;
  }
  return true;
}

std::vector<SlotIndex> CentralizedAllocator::FeasibleSlots(
    const topology::ChannelRoute& route) const {
  std::vector<SlotIndex> feasible;
  for (SlotIndex s = 0; s < num_slots_; ++s) {
    if (SlotFeasible(route, s)) feasible.push_back(s);
  }
  return feasible;
}

std::vector<SlotIndex> PickSlots(const std::vector<SlotIndex>& feasible,
                                 int count, int num_slots,
                                 AllocPolicy policy) {
  if (count <= 0 || static_cast<int>(feasible.size()) < count) return {};
  switch (policy) {
    case AllocPolicy::kFirstFit: {
      return std::vector<SlotIndex>(feasible.begin(),
                                    feasible.begin() + count);
    }
    case AllocPolicy::kSpread: {
      // Greedily pick the feasible slot nearest to each ideal equally
      // spaced position, skipping already chosen ones.
      std::vector<SlotIndex> chosen;
      std::vector<bool> used(feasible.size(), false);
      for (int k = 0; k < count; ++k) {
        const double target =
            static_cast<double>(k) * num_slots / static_cast<double>(count);
        int best = -1;
        double best_dist = 1e18;
        for (std::size_t i = 0; i < feasible.size(); ++i) {
          if (used[i]) continue;
          // Circular distance to the target position.
          double d = std::fabs(static_cast<double>(feasible[i]) - target);
          d = std::min(d, num_slots - d);
          if (d < best_dist) {
            best_dist = d;
            best = static_cast<int>(i);
          }
        }
        used[static_cast<std::size_t>(best)] = true;
        chosen.push_back(feasible[static_cast<std::size_t>(best)]);
      }
      std::sort(chosen.begin(), chosen.end());
      return chosen;
    }
    case AllocPolicy::kContiguous: {
      // Find a run of `count` consecutive slot indices within the feasible
      // set, allowing wrap-around; fall back to first-fit if none exists.
      std::vector<bool> is_feasible(static_cast<std::size_t>(num_slots), false);
      for (SlotIndex s : feasible) is_feasible[static_cast<std::size_t>(s)] = true;
      for (SlotIndex start = 0; start < num_slots; ++start) {
        bool ok = true;
        for (int k = 0; k < count; ++k) {
          if (!is_feasible[static_cast<std::size_t>((start + k) % num_slots)]) {
            ok = false;
            break;
          }
        }
        if (ok) {
          std::vector<SlotIndex> chosen;
          for (int k = 0; k < count; ++k) {
            chosen.push_back(static_cast<SlotIndex>((start + k) % num_slots));
          }
          std::sort(chosen.begin(), chosen.end());
          return chosen;
        }
      }
      return std::vector<SlotIndex>(feasible.begin(),
                                    feasible.begin() + count);
    }
  }
  return {};
}

Result<std::vector<SlotIndex>> CentralizedAllocator::Allocate(
    const topology::ChannelRoute& route, const GlobalChannel& channel,
    int count, AllocPolicy policy) {
  if (count <= 0) return InvalidArgumentError("slot count must be positive");
  if (!channel.valid()) return InvalidArgumentError("invalid channel");
  const std::vector<SlotIndex> feasible = FeasibleSlots(route);
  const std::vector<SlotIndex> chosen =
      PickSlots(feasible, count, num_slots_, policy);
  if (chosen.empty()) {
    return ResourceExhaustedError("not enough feasible slots on route");
  }
  for (SlotIndex s : chosen) {
    for (std::size_t j = 0; j < route.links.size(); ++j) {
      const SlotIndex slot_here =
          static_cast<SlotIndex>((s + static_cast<SlotIndex>(j)) % num_slots_);
      AETHEREAL_CHECK(
          MutableTableOf(route.links[j]).Reserve(slot_here, channel).ok());
    }
  }
  return chosen;
}

Status CentralizedAllocator::Free(const topology::ChannelRoute& route,
                                  const GlobalChannel& channel,
                                  const std::vector<SlotIndex>& slots) {
  for (SlotIndex s : slots) {
    for (std::size_t j = 0; j < route.links.size(); ++j) {
      const SlotIndex slot_here =
          static_cast<SlotIndex>((s + static_cast<SlotIndex>(j)) % num_slots_);
      SlotTable& table = MutableTableOf(route.links[j]);
      if (!(table.Owner(slot_here) == channel)) {
        return FailedPreconditionError("slot not owned by channel");
      }
      AETHEREAL_CHECK(table.Release(slot_here).ok());
    }
  }
  return OkStatus();
}

const SlotTable& CentralizedAllocator::TableOf(
    const topology::LinkId& link) const {
  return tables_[static_cast<std::size_t>(topology_->LinkIndex(link))];
}

SlotTable& CentralizedAllocator::MutableTableOf(const topology::LinkId& link) {
  return tables_[static_cast<std::size_t>(topology_->LinkIndex(link))];
}

double CentralizedAllocator::MeanUtilization() const {
  if (tables_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& table : tables_) sum += table.Utilization();
  return sum / static_cast<double>(tables_.size());
}

std::int64_t CentralizedAllocator::TotalReserved() const {
  std::int64_t total = 0;
  for (const auto& table : tables_) total += table.Reserved();
  return total;
}

}  // namespace aethereal::tdm
