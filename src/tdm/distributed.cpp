#include "tdm/distributed.h"

#include "util/check.h"

namespace aethereal::tdm {

DistributedAllocator::DistributedAllocator(
    const topology::Topology* topology, int num_slots, int max_attempts)
    : topology_(topology), num_slots_(num_slots), max_attempts_(max_attempts) {
  AETHEREAL_CHECK(topology != nullptr);
  AETHEREAL_CHECK(num_slots > 0);
  AETHEREAL_CHECK(max_attempts > 0);
  for (int i = 0; i < topology->NumLinks(); ++i) {
    committed_.emplace_back(num_slots);
    tentative_.emplace_back(num_slots);
  }
}

int DistributedAllocator::StartRequest(const topology::ChannelRoute& route,
                                       const GlobalChannel& channel, int count,
                                       AllocPolicy policy) {
  AETHEREAL_CHECK(count > 0);
  Request req;
  req.route = route;
  req.channel = channel;
  req.count = count;
  req.policy = policy;
  req.bad_slots.assign(static_cast<std::size_t>(num_slots_), false);
  requests_.push_back(std::move(req));
  return static_cast<int>(requests_.size() - 1);
}

bool DistributedAllocator::SlotTakenAt(const Request& req, int hop,
                                       SlotIndex s) const {
  const int index = topology_->LinkIndex(req.route.links[static_cast<std::size_t>(hop)]);
  const SlotIndex slot_here = static_cast<SlotIndex>((s + hop) % num_slots_);
  const auto& committed = committed_[static_cast<std::size_t>(index)];
  const auto& tentative = tentative_[static_cast<std::size_t>(index)];
  // A tentative hold by ourselves is not a conflict (re-walk after abort).
  if (!committed.IsFree(slot_here)) return true;
  if (!tentative.IsFree(slot_here) && !(tentative.Owner(slot_here) == req.channel)) {
    return true;
  }
  return false;
}

void DistributedAllocator::TentativeReserve(Request& req, int hop) {
  const int index = topology_->LinkIndex(req.route.links[static_cast<std::size_t>(hop)]);
  for (SlotIndex s : req.slots) {
    const SlotIndex slot_here = static_cast<SlotIndex>((s + hop) % num_slots_);
    AETHEREAL_CHECK(
        tentative_[static_cast<std::size_t>(index)].Reserve(slot_here, req.channel).ok());
  }
}

void DistributedAllocator::TentativeRelease(Request& req, int hop) {
  const int index = topology_->LinkIndex(req.route.links[static_cast<std::size_t>(hop)]);
  for (SlotIndex s : req.slots) {
    const SlotIndex slot_here = static_cast<SlotIndex>((s + hop) % num_slots_);
    AETHEREAL_CHECK(tentative_[static_cast<std::size_t>(index)].Release(slot_here).ok());
  }
}

void DistributedAllocator::Round() {
  ++stats_.rounds;
  for (auto& req : requests_) {
    switch (req.phase) {
      case RequestPhase::kPicking: {
        if (req.attempts >= max_attempts_) {
          req.phase = RequestPhase::kFailed;
          req.finished_round = stats_.rounds;
          break;
        }
        ++req.attempts;
        // The agent picks slots using only its local (injection link) view:
        // slots free on link 0 from the committed+tentative tables there,
        // avoiding slots that conflicted downstream on earlier attempts.
        auto collect = [this, &req](bool use_blacklist) {
          std::vector<SlotIndex> feasible;
          for (SlotIndex s = 0; s < num_slots_; ++s) {
            if (SlotTakenAt(req, 0, s)) continue;
            if (use_blacklist && req.bad_slots[static_cast<std::size_t>(s)])
              continue;
            feasible.push_back(s);
          }
          return feasible;
        };
        std::vector<SlotIndex> feasible = collect(true);
        if (static_cast<int>(feasible.size()) < req.count) {
          // The blacklist may be stale (the conflicting hold might have
          // aborted); forget it and try the full feasible set again.
          req.bad_slots.assign(static_cast<std::size_t>(num_slots_), false);
          feasible = collect(false);
        }
        req.slots = PickSlots(feasible, req.count, num_slots_, req.policy);
        if (req.slots.empty()) {
          req.phase = RequestPhase::kFailed;
          req.finished_round = stats_.rounds;
          break;
        }
        TentativeReserve(req, 0);
        req.hop = 1;
        req.phase = RequestPhase::kAdvancing;
        stats_.messages += 1;  // setup request enters the network
        break;
      }
      case RequestPhase::kAdvancing: {
        const int total_hops = static_cast<int>(req.route.links.size());
        if (req.hop >= total_hops) {
          // All links tentatively held: commit (ack travels back along the
          // path, one message per hop).
          for (int h = 0; h < total_hops; ++h) {
            const int index =
                topology_->LinkIndex(req.route.links[static_cast<std::size_t>(h)]);
            for (SlotIndex s : req.slots) {
              const SlotIndex slot_here =
                  static_cast<SlotIndex>((s + h) % num_slots_);
              AETHEREAL_CHECK(tentative_[static_cast<std::size_t>(index)]
                                  .Release(slot_here)
                                  .ok());
              AETHEREAL_CHECK(committed_[static_cast<std::size_t>(index)]
                                  .Reserve(slot_here, req.channel)
                                  .ok());
            }
          }
          stats_.messages += total_hops;  // ack path
          req.phase = RequestPhase::kDone;
          req.finished_round = stats_.rounds;
          break;
        }
        // Try to reserve at the next router.
        bool conflict = false;
        for (SlotIndex s : req.slots) {
          if (SlotTakenAt(req, req.hop, s)) {
            conflict = true;
            req.bad_slots[static_cast<std::size_t>(s)] = true;
          }
        }
        stats_.messages += 1;  // request advanced one hop
        if (conflict) {
          ++stats_.conflicts;
          req.phase = RequestPhase::kAborting;
        } else {
          TentativeReserve(req, req.hop);
          ++req.hop;
        }
        break;
      }
      case RequestPhase::kAborting: {
        // Walk back one hop per round, releasing tentative holds.
        if (req.hop > 0) {
          --req.hop;
          TentativeRelease(req, req.hop);
          stats_.messages += 1;  // abort message
        }
        if (req.hop == 0) {
          ++stats_.retries;
          req.slots.clear();
          req.phase = RequestPhase::kPicking;
        }
        break;
      }
      case RequestPhase::kDone:
      case RequestPhase::kFailed:
        break;
    }
  }
}

bool DistributedAllocator::Done() const {
  for (const auto& req : requests_) {
    if (req.phase != RequestPhase::kDone && req.phase != RequestPhase::kFailed) {
      return false;
    }
  }
  return true;
}

std::int64_t DistributedAllocator::RunToCompletion(std::int64_t max_rounds) {
  std::int64_t rounds = 0;
  while (!Done() && rounds < max_rounds) {
    Round();
    ++rounds;
  }
  return rounds;
}

const DistributedAllocator::Request& DistributedAllocator::request(int id) const {
  AETHEREAL_CHECK(id >= 0 && id < static_cast<int>(requests_.size()));
  return requests_[static_cast<std::size_t>(id)];
}

const SlotTable& DistributedAllocator::TableOf(
    const topology::LinkId& link) const {
  return committed_[static_cast<std::size_t>(topology_->LinkIndex(link))];
}

}  // namespace aethereal::tdm
