// Centralized TDM slot allocator.
//
// In the Æthereal prototype (paper §3), configuration is centralized: one
// configuration module owns the slot occupancy information for the whole
// NoC, so slot tables can be removed from the routers (§4.3). The allocator
// reserves, for a channel's route, slot s on the injection link, s+1 on the
// first router's output link, s+2 on the next, ... (pipelined TDM circuits),
// guaranteeing contention-free GT switching.
#ifndef AETHEREAL_TDM_ALLOCATOR_H
#define AETHEREAL_TDM_ALLOCATOR_H

#include <cstdint>
#include <vector>

#include "tdm/slot_table.h"
#include "topology/topology.h"
#include "util/status.h"
#include "util/types.h"

namespace aethereal::tdm {

/// How slots are chosen among the feasible ones.
enum class AllocPolicy {
  kFirstFit,    // lowest feasible slot indices
  kSpread,      // near-equally spaced (minimizes jitter bound)
  kContiguous,  // a consecutive run (maximizes packet length / minimizes
                // header overhead, at the cost of jitter)
};

class CentralizedAllocator {
 public:
  /// Creates tables for every directed link of `topology`, each with
  /// `num_slots` slots. The topology must outlive the allocator.
  CentralizedAllocator(const topology::Topology* topology, int num_slots);

  int num_slots() const { return num_slots_; }

  /// True if slot `s` (at the injection link; slot s+j on link j) is free on
  /// every link of `route`.
  bool SlotFeasible(const topology::ChannelRoute& route, SlotIndex s) const;

  /// All feasible injection-link slots for `route`, ascending.
  std::vector<SlotIndex> FeasibleSlots(const topology::ChannelRoute& route) const;

  /// Reserves `count` slots for `channel` along `route` using `policy`.
  /// Returns the injection-link slot indices, or kResourceExhausted if not
  /// enough feasible slots exist.
  Result<std::vector<SlotIndex>> Allocate(const topology::ChannelRoute& route,
                                          const GlobalChannel& channel,
                                          int count, AllocPolicy policy);

  /// Releases previously allocated slots of `channel` along `route`.
  Status Free(const topology::ChannelRoute& route,
              const GlobalChannel& channel,
              const std::vector<SlotIndex>& slots);

  /// Table of one link (by dense link index), e.g. to program an NI's STU.
  const SlotTable& TableOf(const topology::LinkId& link) const;

  /// Mean reserved fraction over all links.
  double MeanUtilization() const;

  /// Total reserved slots summed over every link table — the NoC-wide slot
  /// occupancy. Runtime reconfiguration metrics (slots reclaimed by a close,
  /// reallocated by an open) are deltas of this value.
  std::int64_t TotalReserved() const;

 private:
  SlotTable& MutableTableOf(const topology::LinkId& link);
  const topology::Topology* topology_;
  int num_slots_;
  std::vector<SlotTable> tables_;  // indexed by Topology::LinkIndex
};

/// Picks `count` slots from `feasible` according to `policy`; exposed for
/// unit testing and reuse by the distributed model. Returns empty if
/// impossible.
std::vector<SlotIndex> PickSlots(const std::vector<SlotIndex>& feasible,
                                 int count, int num_slots, AllocPolicy policy);

}  // namespace aethereal::tdm

#endif  // AETHEREAL_TDM_ALLOCATOR_H
