#include "tdm/slot_table.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace aethereal::tdm {

std::ostream& operator<<(std::ostream& os, const GlobalChannel& channel) {
  return os << "ni" << channel.ni << ".ch" << channel.channel;
}

SlotTable::SlotTable(int num_slots)
    : slots_(static_cast<std::size_t>(num_slots)) {
  AETHEREAL_CHECK(num_slots > 0);
}

const GlobalChannel& SlotTable::At(SlotIndex s) const {
  AETHEREAL_CHECK_MSG(s >= 0 && s < num_slots(),
                      "slot " << s << " out of table of " << num_slots());
  return slots_[static_cast<std::size_t>(s)];
}

GlobalChannel& SlotTable::At(SlotIndex s) {
  AETHEREAL_CHECK(s >= 0 && s < num_slots());
  return slots_[static_cast<std::size_t>(s)];
}

Status SlotTable::Reserve(SlotIndex s, const GlobalChannel& owner) {
  if (s < 0 || s >= num_slots()) return OutOfRangeError("slot out of range");
  if (!owner.valid()) return InvalidArgumentError("invalid channel");
  if (At(s).valid()) {
    std::ostringstream oss;
    oss << "slot " << s << " already owned by " << At(s);
    return AlreadyExistsError(oss.str());
  }
  At(s) = owner;
  return OkStatus();
}

Status SlotTable::Release(SlotIndex s) {
  if (s < 0 || s >= num_slots()) return OutOfRangeError("slot out of range");
  if (!At(s).valid()) return FailedPreconditionError("slot already free");
  At(s) = GlobalChannel{};
  return OkStatus();
}

int SlotTable::ReleaseAll(const GlobalChannel& owner) {
  int freed = 0;
  for (auto& slot : slots_) {
    if (slot == owner) {
      slot = GlobalChannel{};
      ++freed;
    }
  }
  return freed;
}

std::vector<SlotIndex> SlotTable::SlotsOf(const GlobalChannel& owner) const {
  std::vector<SlotIndex> result;
  for (SlotIndex s = 0; s < num_slots(); ++s) {
    if (slots_[static_cast<std::size_t>(s)] == owner) result.push_back(s);
  }
  return result;
}

int SlotTable::Reserved() const {
  int count = 0;
  for (const auto& slot : slots_) {
    if (slot.valid()) ++count;
  }
  return count;
}

double SlotTable::Utilization() const {
  return static_cast<double>(Reserved()) / static_cast<double>(num_slots());
}

int MaxCircularGap(std::vector<SlotIndex> slots, int num_slots) {
  AETHEREAL_CHECK(num_slots > 0);
  if (slots.empty()) return num_slots;
  std::sort(slots.begin(), slots.end());
  int max_gap = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const SlotIndex cur = slots[i];
    const SlotIndex next =
        (i + 1 < slots.size()) ? slots[i + 1] : slots[0] + num_slots;
    max_gap = std::max(max_gap, next - cur);
  }
  return max_gap;
}

int SlotTable::MaxGap(const GlobalChannel& owner) const {
  return MaxCircularGap(SlotsOf(owner), num_slots());
}

}  // namespace aethereal::tdm
