// Distributed slot-allocation model (paper §3).
//
// In the distributed configuration model, slot occupancy is kept in the
// routers, and connections may be opened concurrently from several
// configuration ports. A setup request travels hop-by-hop along the route,
// tentatively reserving its slots in each router; a router rejects the
// reservation if any requested slot is taken (committed or tentatively held
// by another in-flight request), in which case the request aborts back along
// the path, releasing what it held, and retries with different slots.
//
// This is a protocol-level model (hop rounds and message counts), used by
// bench_config to quantify the centralized-vs-distributed trade-off the
// paper discusses; the cycle-accurate configuration path implemented in
// `config/` is the centralized one, as in the Æthereal prototype.
#ifndef AETHEREAL_TDM_DISTRIBUTED_H
#define AETHEREAL_TDM_DISTRIBUTED_H

#include <cstdint>
#include <vector>

#include "tdm/allocator.h"
#include "tdm/slot_table.h"
#include "topology/topology.h"

namespace aethereal::tdm {

struct DistributedStats {
  std::int64_t messages = 0;   // setup/ack/abort messages exchanged
  std::int64_t rounds = 0;     // hop-time rounds elapsed
  std::int64_t conflicts = 0;  // tentative reservations rejected
  std::int64_t retries = 0;    // requests restarted after an abort
};

class DistributedAllocator {
 public:
  enum class RequestPhase { kPicking, kAdvancing, kAborting, kDone, kFailed };

  struct Request {
    topology::ChannelRoute route;
    GlobalChannel channel;
    int count = 0;
    AllocPolicy policy = AllocPolicy::kSpread;
    RequestPhase phase = RequestPhase::kPicking;
    std::vector<SlotIndex> slots;    // injection-link slots being reserved
    int hop = 0;                     // links[0..hop) tentatively reserved
    int attempts = 0;
    std::int64_t finished_round = -1;
    // Injection slots that conflicted downstream on a previous attempt; the
    // retry avoids them (cleared when too few alternatives remain, since
    // the conflicting tentative hold may itself have aborted meanwhile).
    std::vector<bool> bad_slots;
  };

  DistributedAllocator(const topology::Topology* topology, int num_slots,
                       int max_attempts = 16);

  /// Registers a setup request; returns its index. Requests progress when
  /// Round() is called.
  int StartRequest(const topology::ChannelRoute& route,
                   const GlobalChannel& channel, int count,
                   AllocPolicy policy);

  /// Advances every active request by one hop (requests are served in index
  /// order within a round, modelling independent parallel progress).
  void Round();

  /// True when no request is still in flight.
  bool Done() const;

  /// Runs rounds until done (or a safety cap); returns rounds executed.
  std::int64_t RunToCompletion(std::int64_t max_rounds = 1 << 20);

  const Request& request(int id) const;
  const DistributedStats& stats() const { return stats_; }

  /// Committed (not tentative) table of a link, for post-hoc validation.
  const SlotTable& TableOf(const topology::LinkId& link) const;

 private:
  bool SlotTakenAt(const Request& req, int hop, SlotIndex s) const;
  void TentativeReserve(Request& req, int hop);
  void TentativeRelease(Request& req, int hop);

  const topology::Topology* topology_;
  int num_slots_;
  int max_attempts_;
  std::vector<SlotTable> committed_;   // per link
  std::vector<SlotTable> tentative_;   // per link (in-flight holds)
  std::vector<Request> requests_;
  DistributedStats stats_;
};

}  // namespace aethereal::tdm

#endif  // AETHEREAL_TDM_DISTRIBUTED_H
