#include "sweep/pool.h"

#include <algorithm>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace aethereal::sweep {

namespace {

/// One worker's job queue. The owner pops from the front; thieves take
/// from the back, so a stolen job is the one the owner would reach last.
struct JobDeque {
  std::mutex mutex;
  std::deque<std::size_t> jobs;

  std::optional<std::size_t> PopFront() {
    std::lock_guard<std::mutex> lock(mutex);
    if (jobs.empty()) return std::nullopt;
    const std::size_t job = jobs.front();
    jobs.pop_front();
    return job;
  }

  std::optional<std::size_t> StealBack() {
    std::lock_guard<std::mutex> lock(mutex);
    if (jobs.empty()) return std::nullopt;
    const std::size_t job = jobs.back();
    jobs.pop_back();
    return job;
  }
};

}  // namespace

void RunJobs(std::size_t n, int workers,
             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const auto num_workers = static_cast<std::size_t>(std::clamp<std::int64_t>(
      workers, 1, static_cast<std::int64_t>(n)));
  if (num_workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Round-robin seeding spreads neighbouring grid points (which tend to
  // have similar cost) across workers.
  std::vector<JobDeque> deques(num_workers);
  for (std::size_t i = 0; i < n; ++i) {
    deques[i % num_workers].jobs.push_back(i);
  }

  auto work = [&](std::size_t me) {
    while (true) {
      std::optional<std::size_t> job = deques[me].PopFront();
      for (std::size_t k = 1; !job && k < num_workers; ++k) {
        job = deques[(me + k) % num_workers].StealBack();
      }
      if (!job) return;  // every deque drained: all jobs claimed
      fn(*job);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_workers - 1);
  for (std::size_t w = 1; w < num_workers; ++w) {
    threads.emplace_back(work, w);
  }
  work(0);
  for (std::thread& t : threads) t.join();
}

}  // namespace aethereal::sweep
