// Work-stealing job pool for sweep execution.
//
// A sweep is an embarrassingly parallel grid of independent scenario
// runs, but the runs are wildly uneven (a saturated point simulates far
// more traffic than an idle one), so static partitioning leaves workers
// idle. Each worker owns a deque seeded round-robin with job indices,
// pops from its own front, and steals from the back of a victim's deque
// when empty — the classic scheme, with a per-deque mutex instead of a
// lock-free deque because jobs here are milliseconds, not nanoseconds.
//
// Determinism: the pool only decides *when* a job runs, never *what* it
// computes — each job writes to its own result slot and shares nothing,
// so any worker count produces identical results (the property the
// jobs=1 vs jobs=N byte-identity test locks down).
#ifndef AETHEREAL_SWEEP_POOL_H
#define AETHEREAL_SWEEP_POOL_H

#include <cstddef>
#include <functional>

namespace aethereal::sweep {

/// Runs `fn(i)` for every i in [0, n), on `workers` threads (clamped to
/// [1, n]; workers <= 1 runs inline on the caller). Blocks until all jobs
/// finish. `fn` must not throw.
void RunJobs(std::size_t n, int workers,
             const std::function<void(std::size_t)>& fn);

}  // namespace aethereal::sweep

#endif  // AETHEREAL_SWEEP_POOL_H
