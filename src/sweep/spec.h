// Declarative sweep specification — one small text file turns a scenario
// spec into a parameter study: a base .scn workload, fixed overrides, and
// sweep axes whose cartesian product becomes a grid of independent
// scenario runs (sweep/runner.h executes them on a thread pool and folds
// the per-point results into latency–throughput curves).
//
// Line-based format ('#' starts a comment):
//
//   sweep NAME                    # result label (default "sweep")
//   base FILE.scn                 # base scenario, relative to the .swp file
//   set PARAM VALUE               # fixed override applied to every point
//   axis PARAM V1 V2 ...          # sweep axis (>= 1 value); the cartesian
//                                 # product of all axes is the job grid,
//                                 # last axis fastest (odometer order)
//   saturate PARAM LO HI METRIC BOUND [iters N]
//                                 # bisection search per grid point: the
//                                 # largest PARAM value in [LO, HI] whose
//                                 # METRIC (mean|p99|max flow latency, in
//                                 # cycles) stays <= BOUND. N bisection
//                                 # steps after the endpoints (default 8).
//
// PARAM is either a scenario-level knob or a traffic-directive knob,
// optionally scoped to one directive with a `gN.` prefix (N = directive
// index in the base file; unscoped traffic knobs apply to every directive
// of the matching injection/QoS kind and fail if none matches):
//
//   scenario level:  stu queues seed warmup duration netmhz noc engine
//                    threads
//       noc values name the topology inline: star7, mesh4x4x1, ring6x1
//       engine values are naive|optimized|soa; threads values are thread
//       counts >= 1 (> 1 requires the soa engine, checked per grid point)
//   traffic level:   rate     (bernoulli directives; value in (0, 1])
//                    period   (periodic directives; cycles >= 1)
//                    burst    (bursty directives; value WORDS/GAP)
//                    gtslots  (GT directives; reserved slots >= 1)
//                    qos      (any directive; value be or gtN)
//   fault level:     fault.seed     (fault-stream seed, >= 0)
//                    fault.corrupt  (link corrupt rate, [0, 1])
//                    fault.drop     (link drop rate, [0, 1])
//                    fault.cfgdrop  (CNIP drop rate, [0, 1]; needs a
//                                    phased base when > 0)
//       fault keys create the base's fault block on first use, so a
//       fault-free .scn can be swept straight into a resilience study
//   phase level:     pN.duration / pN.warmup (phased base scenarios; N =
//       phase index). Directive indices gN are global across phases, so
//       traffic knobs already scope to one phase's directives — e.g.
//       `axis g2.gtslots 1 2 4` sweeps the slot budget of phase 2's
//       directive when g2 lives in phase 2.
//
// Every `set` and axis value is validated against the base spec at parse
// time, so a bad grid fails with a line number before any job runs.
// Axis order and value order are part of the sweep's deterministic
// identity: the same .swp always expands to the same job grid, and the
// aggregated output is byte-identical for any worker count.
#ifndef AETHEREAL_SWEEP_SPEC_H
#define AETHEREAL_SWEEP_SPEC_H

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "scenario/spec.h"
#include "util/status.h"

namespace aethereal::sweep {

/// Identifies one swept parameter, optionally scoped to a single traffic
/// directive of the base scenario.
struct ParamRef {
  enum class Key {
    // Scenario level.
    kStu,
    kQueues,
    kSeed,
    kWarmup,
    kDuration,
    kNetMhz,
    kNoc,
    kEngine,
    kThreads,
    // Traffic level (scoped by `group`, or all matching directives).
    kRate,
    kPeriod,
    kBurst,
    kGtSlots,
    kQos,
    // Fault level (creates the base's fault block on demand).
    kFaultSeed,
    kFaultCorrupt,
    kFaultDrop,
    kFaultCfgDrop,
  };

  Key key = Key::kSeed;
  int group = -1;  // traffic directive index; -1 = all matching directives
  int phase = -1;  // phase index (kDuration/kWarmup of a phased base)

  bool IsTrafficKey() const;
  /// Canonical spelling, e.g. "rate", "g0.rate", or "p1.duration".
  std::string Name() const;

  friend bool operator==(const ParamRef&, const ParamRef&) = default;
};

/// Parses "rate", "g2.qos", "stu", ... Fails on unknown keys or a scope
/// prefix on a scenario-level key.
Result<ParamRef> ParseParamRef(const std::string& token);

/// Applies one parameter value to a scenario spec. The value grammar is
/// per key (see the header comment); range checks mirror the scenario
/// parser so a sweep cannot smuggle in an out-of-range value.
Status ApplyParam(const ParamRef& param, const std::string& value,
                  scenario::ScenarioSpec* spec);

/// Full single-value validation: applies `value` to a copy of `base` and
/// dry-runs every pattern expansion, so structurally impossible values
/// (transpose on a non-square mesh, ids off the topology) fail before
/// any job runs. This is what file axes get at parse time; the CLI's
/// --axis overrides go through the same gate.
Status ValidateAxisValue(const ParamRef& param, const std::string& value,
                         const scenario::ScenarioSpec& base);

struct Axis {
  ParamRef param;
  std::vector<std::string> values;  // raw tokens, applied via ApplyParam
  int line = 0;                     // source line (diagnostics only)
};

struct SaturationSpec {
  bool enabled = false;
  ParamRef param;        // must be continuous (rate)
  double lo = 0;
  double hi = 0;
  std::string metric;    // "mean" | "p99" | "max"
  double bound = 0;      // cycles
  int iters = 8;         // bisection steps after probing both endpoints
};

struct SweepSpec {
  std::string name = "sweep";
  std::string base_path;          // as written in the .swp file
  scenario::ScenarioSpec base;    // loaded base with `set` overrides applied
  std::vector<Axis> axes;
  SaturationSpec saturation;

  /// Number of grid points (product of axis sizes; 1 with no axes).
  std::size_t NumPoints() const;
};

/// One grid point: the value index chosen on each axis, odometer order
/// (last axis fastest).
struct GridPoint {
  std::size_t index = 0;
  std::vector<std::size_t> choice;  // one entry per axis

  /// The chosen raw value per axis, in axis order.
  std::vector<std::string> Values(const SweepSpec& spec) const;
};

/// Expands the full job grid in deterministic order.
std::vector<GridPoint> ExpandGrid(const SweepSpec& spec);

/// Base spec + this point's axis values -> a runnable scenario spec.
Result<scenario::ScenarioSpec> MaterializePoint(const SweepSpec& spec,
                                                const GridPoint& point);

/// Parses the text form. `load_base` resolves the `base` path to a parsed
/// scenario (the CLI resolves relative to the .swp file's directory).
Result<SweepSpec> ParseSweep(
    const std::string& text,
    const std::function<Result<scenario::ScenarioSpec>(const std::string&)>&
        load_base);

/// Reads and parses a .swp file; `base` paths resolve relative to it.
Result<SweepSpec> LoadSweepFile(const std::string& path);

}  // namespace aethereal::sweep

#endif  // AETHEREAL_SWEEP_SPEC_H
