// SweepRunner: executes the job grid of a SweepSpec on the work-stealing
// pool and folds per-point scenario results into sweep-level artifacts —
// per-flow-class (GT / BE) latency and throughput summaries, a bisection
// saturation search, and latency–throughput curve emitters.
//
// Determinism contract: every grid point (and every saturation probe) is
// an independent, single-threaded ScenarioRunner constructed from its own
// materialized spec; results land in per-point slots and are aggregated
// in index order after the pool drains. The JSON/CSV output is therefore
// byte-identical for any --jobs value (tests/sweep_test.cpp, CI).
#ifndef AETHEREAL_SWEEP_RUNNER_H
#define AETHEREAL_SWEEP_RUNNER_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "scenario/runner.h"
#include "stats_ctl/convergence.h"
#include "sweep/spec.h"
#include "util/status.h"

namespace aethereal::sweep {

/// Latency/throughput summary of one service class (all / GT / BE) at one
/// grid point. Latency merges the flows' raw sample populations
/// (FlowResult::latency_samples), so mean, min/max AND the percentiles
/// are all exact class-level values (nearest-rank, the same formula as
/// every other percentile in the result JSON).
struct ClassSummary {
  std::int64_t flows = 0;
  double offered_wpc = 0;  // sum of per-flow injected words/cycle
  std::int64_t words_in_window = 0;
  double throughput_wpc = 0;
  std::int64_t latency_count = 0;
  double latency_min = 0;
  double latency_mean = 0;
  double latency_p50 = 0;
  double latency_p95 = 0;
  double latency_p99 = 0;
  double latency_max = 0;
};

/// One saturation-search probe: a full scenario run at parameter value
/// `x` (printed exactly as applied — the value round-trips through
/// FormatDouble).
struct ProbeResult {
  std::string x_label;
  double x = 0;
  double latency = 0;       // the configured metric, cycles (0: no samples)
  double throughput_wpc = 0;
  bool meets = false;       // latency <= bound (vacuously true, no samples)
};

struct SaturationResult {
  bool feasible = false;  // even LO violates the bound when false
  std::string value_label;
  double value = 0;       // largest probed value meeting the bound
  std::vector<ProbeResult> probes;  // in evaluation order: HI, LO, bisections
};

struct PointResult {
  std::size_t index = 0;
  std::vector<std::string> values;  // chosen raw axis values, axis order

  // Plain grid points: one scenario run. `duration` is the cycles the
  // point actually measured — the spec's TotalDuration(), or the
  // stop-on-convergence window when the base spec enables `converge`.
  Cycle duration = 0;
  std::int64_t words_in_window = 0;
  double throughput_wpc = 0;
  double slot_utilization = 0;
  std::int64_t gt_flits = 0;
  std::int64_t be_flits = 0;
  ClassSummary all;
  ClassSummary gt;
  ClassSummary be;

  /// Stop-on-convergence outcome of the point's run (the merged-latency
  /// CI); present exactly when the base spec enables `converge`. The
  /// JSON/CSV emitters add ci_low/ci_high/rel_err/... columns from it.
  std::optional<stats_ctl::ConvergenceOutcome> convergence;

  // Saturation sweeps: the bisection result instead.
  SaturationResult saturation;
};

struct SweepResult {
  SweepSpec spec;
  std::vector<PointResult> points;

  /// Deterministic JSON encoding (the sweep golden-test format).
  std::string ToJson() const;

  /// Per-point CSV: one row per point and service class (saturation
  /// sweeps: one row per probe plus a result row).
  std::string ToCsv() const;

  /// Latency–throughput curve keyed on one axis: rows of
  /// (series, x, class, offered, delivered, latency). `axis_param` must
  /// name an axis of the sweep; the remaining axes form the series label.
  /// Unavailable for saturation sweeps (the probe list is the curve).
  Result<std::string> ToCurveCsv(const std::string& axis_param) const;
};

/// Computes the injected words/cycle one flow of `traffic` offers (the
/// x-axis of offered-vs-delivered curves). Closed-loop memory traffic is
/// self-regulating and offers 0.
double OfferedWpc(const scenario::TrafficSpec& traffic);

/// Summarizes one scenario result into per-class summaries (exposed for
/// testing).
void SummarizePoint(const scenario::ScenarioResult& result,
                    PointResult* point);

class SweepRunner {
 public:
  explicit SweepRunner(SweepSpec spec);

  /// Expands the grid and runs every point on `jobs` workers. Fails with
  /// the first failing point (in index order).
  Result<SweepResult> Run(int jobs);

 private:
  Status RunPoint(const GridPoint& grid_point, PointResult* out);
  Status RunSaturation(const scenario::ScenarioSpec& materialized,
                       PointResult* out);

  SweepSpec spec_;
};

}  // namespace aethereal::sweep

#endif  // AETHEREAL_SWEEP_RUNNER_H
