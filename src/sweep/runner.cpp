#include "sweep/runner.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sweep/pool.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/stats.h"

namespace aethereal::sweep {

using scenario::InjectKind;
using scenario::PatternKind;
using scenario::ScenarioResult;
using scenario::ScenarioSpec;
using scenario::TrafficSpec;

/// Fraction of the measured cycles a directive's flows are actually
/// injecting: 1 for static scenarios; for phased ones, the directive's
/// active windows (its own phase, plus every later phase if persistent)
/// over the total measured duration. Offered load must be weighted by
/// this, or a flow active in one of N phases looks like it lost
/// (N-1)/N of its traffic.
double ActiveFraction(const ScenarioSpec& spec, const TrafficSpec& traffic) {
  if (!spec.Phased()) return 1.0;
  Cycle active = 0;
  for (std::size_t k = 0; k < spec.phases.size(); ++k) {
    if (traffic.ActiveIn(static_cast<int>(k))) {
      active += spec.phases[k].duration;
    }
  }
  return static_cast<double>(active) /
         static_cast<double>(spec.TotalDuration());
}

double OfferedWpc(const TrafficSpec& traffic) {
  double words_per_event = 1.0;
  if (traffic.pattern == PatternKind::kMemory) {
    words_per_event = static_cast<double>(traffic.mem_burst_words);
  }
  switch (traffic.inject) {
    case InjectKind::kPeriodic:
      return words_per_event / static_cast<double>(traffic.period);
    case InjectKind::kBernoulli:
      return words_per_event * traffic.rate;
    case InjectKind::kBursty:
      return static_cast<double>(traffic.burst_words) /
             static_cast<double>(traffic.burst_words + traffic.gap_cycles);
    case InjectKind::kClosedLoop:
      return 0.0;
  }
  return 0.0;
}

namespace {

void AddFlow(ClassSummary* summary, std::vector<double>* samples,
             const scenario::FlowResult& flow, double offered) {
  ++summary->flows;
  summary->offered_wpc += offered;
  summary->words_in_window += flow.words_in_window;
  if (flow.latency.count > 0) {
    if (summary->latency_count == 0 || flow.latency.min < summary->latency_min) {
      summary->latency_min = flow.latency.min;
    }
    summary->latency_max = std::max(summary->latency_max, flow.latency.max);
    // Weighted-mean accumulation: stash the sample sum in `latency_mean`
    // until Finish() divides by the total count.
    summary->latency_mean +=
        static_cast<double>(flow.latency.count) * flow.latency.mean;
    summary->latency_count += flow.latency.count;
    samples->insert(samples->end(), flow.latency_samples.begin(),
                    flow.latency_samples.end());
  }
}

void FinishClass(ClassSummary* summary, std::vector<double>* samples,
                 Cycle duration) {
  summary->throughput_wpc =
      static_cast<double>(summary->words_in_window) /
      static_cast<double>(duration);
  if (summary->latency_count > 0) {
    summary->latency_mean /= static_cast<double>(summary->latency_count);
    std::sort(samples->begin(), samples->end());
    summary->latency_p50 = SortedPercentile(*samples, 50.0);
    summary->latency_p95 = SortedPercentile(*samples, 95.0);
    summary->latency_p99 = SortedPercentile(*samples, 99.0);
  }
}

double MetricOf(const ClassSummary& all, const std::string& metric) {
  if (metric == "mean") return all.latency_mean;
  if (metric == "p99") return all.latency_p99;
  return all.latency_max;
}

void WriteClass(JsonWriter& w, const ClassSummary& s) {
  w.BeginObject();
  w.Key("flows").Int(s.flows);
  w.Key("offered_wpc").Double(s.offered_wpc);
  w.Key("words_in_window").Int(s.words_in_window);
  w.Key("throughput_wpc").Double(s.throughput_wpc);
  w.Key("latency").BeginObject();
  w.Key("count").Int(s.latency_count);
  if (s.latency_count > 0) {
    w.Key("min").Double(s.latency_min);
    w.Key("mean").Double(s.latency_mean);
    w.Key("p50").Double(s.latency_p50);
    w.Key("p95").Double(s.latency_p95);
    w.Key("p99").Double(s.latency_p99);
    w.Key("max").Double(s.latency_max);
  }
  w.EndObject();
  w.EndObject();
}

}  // namespace

void SummarizePoint(const ScenarioResult& result, PointResult* point) {
  // Cycles actually measured: the stop-on-convergence window when the run
  // converged early (or hit its cap), otherwise the spec's TotalDuration()
  // (phased scenarios measure the sum of their phase windows; spec.duration
  // is not meaningful there).
  const Cycle measured = result.convergence.has_value()
                             ? result.convergence->measured_cycles
                             : result.spec.TotalDuration();
  point->duration = measured;
  point->convergence = result.convergence;
  point->words_in_window = result.words_in_window;
  point->throughput_wpc = result.throughput_wpc;
  point->slot_utilization = result.slot_utilization;
  point->gt_flits = result.gt_flits;
  point->be_flits = result.be_flits;
  std::vector<double> all_samples;
  std::vector<double> gt_samples;
  std::vector<double> be_samples;
  for (const scenario::FlowResult& flow : result.flows) {
    const auto group = static_cast<std::size_t>(flow.group);
    AETHEREAL_CHECK(group < result.spec.traffic.size());
    const double offered =
        OfferedWpc(result.spec.traffic[group]) *
        ActiveFraction(result.spec, result.spec.traffic[group]);
    AddFlow(&point->all, &all_samples, flow, offered);
    AddFlow(flow.gt ? &point->gt : &point->be,
            flow.gt ? &gt_samples : &be_samples, flow, offered);
  }
  FinishClass(&point->all, &all_samples, measured);
  FinishClass(&point->gt, &gt_samples, measured);
  FinishClass(&point->be, &be_samples, measured);
}

SweepRunner::SweepRunner(SweepSpec spec) : spec_(std::move(spec)) {}

Status SweepRunner::RunSaturation(const ScenarioSpec& materialized,
                                  PointResult* out) {
  const SaturationSpec& sat = spec_.saturation;
  SaturationResult result;

  // One probe = one full scenario run at parameter value x. The value is
  // round-tripped through FormatDouble so the recorded label is exactly
  // what was applied (and stays byte-stable in the output).
  auto probe = [&](double x) -> Result<ProbeResult> {
    ProbeResult p;
    p.x_label = FormatDouble(x);
    p.x = std::stod(p.x_label);
    ScenarioSpec probe_spec = materialized;
    if (Status s = ApplyParam(sat.param, p.x_label, &probe_spec); !s.ok()) {
      return s;
    }
    scenario::ScenarioRunner runner(std::move(probe_spec));
    auto run = runner.Run();
    if (!run.ok()) return run.status();
    PointResult summary;
    SummarizePoint(*run, &summary);
    p.latency = MetricOf(summary.all, sat.metric);
    p.throughput_wpc = summary.all.throughput_wpc;
    p.meets = summary.all.latency_count == 0 || p.latency <= sat.bound;
    result.probes.push_back(p);
    return p;
  };

  // Endpoints first: HI already meeting the bound, or LO already violating
  // it, ends the search without bisection.
  auto hi_probe = probe(sat.hi);
  if (!hi_probe.ok()) return hi_probe.status();
  if (hi_probe->meets) {
    result.feasible = true;
    result.value_label = hi_probe->x_label;
    result.value = hi_probe->x;
    out->saturation = std::move(result);
    return OkStatus();
  }
  auto lo_probe = probe(sat.lo);
  if (!lo_probe.ok()) return lo_probe.status();
  if (!lo_probe->meets) {
    result.feasible = false;
    result.value_label = lo_probe->x_label;
    result.value = lo_probe->x;
    out->saturation = std::move(result);
    return OkStatus();
  }

  // Invariant: lo meets the bound, hi does not.
  double lo = lo_probe->x;
  double hi = hi_probe->x;
  std::string lo_label = lo_probe->x_label;
  for (int i = 0; i < sat.iters; ++i) {
    auto mid = probe((lo + hi) / 2.0);
    if (!mid.ok()) return mid.status();
    if (mid->x <= lo || mid->x >= hi) break;  // interval below print precision
    if (mid->meets) {
      lo = mid->x;
      lo_label = mid->x_label;
    } else {
      hi = mid->x;
    }
  }
  result.feasible = true;
  result.value_label = lo_label;
  result.value = lo;
  out->saturation = std::move(result);
  return OkStatus();
}

Status SweepRunner::RunPoint(const GridPoint& grid_point, PointResult* out) {
  out->index = grid_point.index;
  out->values = grid_point.Values(spec_);
  auto materialized = MaterializePoint(spec_, grid_point);
  if (!materialized.ok()) return materialized.status();
  if (spec_.saturation.enabled) {
    out->duration = materialized->duration;
    return RunSaturation(*materialized, out);
  }
  scenario::ScenarioRunner runner(std::move(*materialized));
  auto run = runner.Run();
  if (!run.ok()) {
    return Status(run.status().code(), "point " +
                                           std::to_string(grid_point.index) +
                                           ": " + run.status().message());
  }
  SummarizePoint(*run, out);
  return OkStatus();
}

Result<SweepResult> SweepRunner::Run(int jobs) {
  const std::vector<GridPoint> grid = ExpandGrid(spec_);
  std::vector<PointResult> points(grid.size());
  std::vector<Status> statuses(grid.size());

  // Every point is an independent single-threaded simulation writing to
  // its own slot; the pool only schedules.
  RunJobs(grid.size(), jobs,
          [&](std::size_t i) { statuses[i] = RunPoint(grid[i], &points[i]); });

  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }

  SweepResult result;
  result.spec = spec_;
  result.points = std::move(points);
  return result;
}

std::string SweepResult::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  // Fixed-duration sweeps keep schema_version 2 byte-for-byte; the version
  // moves to 3 exactly when the per-point `convergence` sections are
  // present (base spec / --converge opt-in).
  w.Key("schema_version").Int(spec.base.converge.enabled ? 3 : 2);
  w.Key("sweep").String(spec.name);
  w.Key("base").BeginObject();
  w.Key("scenario").String(spec.base.name);
  w.Key("path").String(spec.base_path);
  w.EndObject();
  w.Key("axes").BeginArray();
  for (const Axis& axis : spec.axes) {
    w.BeginObject();
    w.Key("param").String(axis.param.Name());
    w.Key("values").BeginArray();
    for (const std::string& value : axis.values) w.String(value);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  if (spec.saturation.enabled) {
    w.Key("saturate").BeginObject();
    w.Key("param").String(spec.saturation.param.Name());
    w.Key("lo").Double(spec.saturation.lo);
    w.Key("hi").Double(spec.saturation.hi);
    w.Key("metric").String(spec.saturation.metric);
    w.Key("bound").Double(spec.saturation.bound);
    w.Key("iters").Int(spec.saturation.iters);
    w.EndObject();
  }
  w.Key("points").BeginArray();
  for (const PointResult& point : points) {
    w.BeginObject();
    w.Key("index").Int(static_cast<std::int64_t>(point.index));
    w.Key("params").BeginObject();
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      w.Key(spec.axes[a].param.Name()).String(point.values[a]);
    }
    w.EndObject();
    w.Key("duration").Int(point.duration);
    if (spec.saturation.enabled) {
      const SaturationResult& sat = point.saturation;
      w.Key("saturation").BeginObject();
      w.Key("feasible").Bool(sat.feasible);
      w.Key("value").Double(sat.value);
      w.Key("probes").BeginArray();
      for (const ProbeResult& probe : sat.probes) {
        w.BeginObject();
        w.Key("x").Double(probe.x);
        w.Key("latency").Double(probe.latency);
        w.Key("throughput_wpc").Double(probe.throughput_wpc);
        w.Key("meets").Bool(probe.meets);
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    } else {
      w.Key("aggregate").BeginObject();
      w.Key("words_in_window").Int(point.words_in_window);
      w.Key("throughput_wpc").Double(point.throughput_wpc);
      w.Key("gt_flits").Int(point.gt_flits);
      w.Key("be_flits").Int(point.be_flits);
      w.Key("slot_utilization").Double(point.slot_utilization);
      w.EndObject();
      w.Key("classes").BeginObject();
      w.Key("all");
      WriteClass(w, point.all);
      if (point.gt.flows > 0) {
        w.Key("gt");
        WriteClass(w, point.gt);
      }
      if (point.be.flows > 0) {
        w.Key("be");
        WriteClass(w, point.be);
      }
      w.EndObject();
      if (point.convergence.has_value()) {
        w.Key("convergence");
        stats_ctl::WriteConvergenceJson(w, *point.convergence);
      }
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

namespace {

std::vector<std::string> CsvHeader(const SweepSpec& spec) {
  std::vector<std::string> header{"point"};
  for (const Axis& axis : spec.axes) header.push_back(axis.param.Name());
  if (spec.saturation.enabled) {
    for (const char* col :
         {"kind", "x", "latency", "throughput_wpc", "meets"}) {
      header.push_back(col);
    }
  } else {
    for (const char* col :
         {"class", "flows", "offered_wpc", "words_in_window",
          "throughput_wpc", "lat_count", "lat_min", "lat_mean", "lat_p50",
          "lat_p95", "lat_p99", "lat_max", "slot_utilization"}) {
      header.push_back(col);
    }
    if (spec.base.converge.enabled) {
      // Point-level CI of the run's merged latency (identical on every
      // class row of the point). Only converged runs grow these columns,
      // so fixed-duration CSVs stay byte-identical.
      for (const char* col : {"converged", "warmup_detected",
                              "measured_cycles", "batches", "ci_low",
                              "ci_high", "rel_err"}) {
        header.push_back(col);
      }
    }
  }
  return header;
}

void ConvergenceCells(CsvWriter& w, const PointResult& point) {
  if (!point.convergence.has_value()) {
    for (int i = 0; i < 7; ++i) w.Cell("");
    return;
  }
  const stats_ctl::ConvergenceOutcome& c = *point.convergence;
  w.Cell(c.converged ? "true" : "false");
  w.Cell(c.warmup_detected ? "true" : "false");
  w.Cell(c.measured_cycles);
  if (c.ci.valid) {
    w.Cell(static_cast<std::int64_t>(c.ci.batches));
    w.Double(c.ci.ci_low);
    w.Double(c.ci.ci_high);
    if (std::isfinite(c.ci.rel_err)) {
      w.Double(c.ci.rel_err);
    } else {
      w.Cell("");
    }
  } else {
    for (int i = 0; i < 4; ++i) w.Cell("");
  }
}

void ClassRow(CsvWriter& w, const PointResult& point, const char* name,
              const ClassSummary& s) {
  w.Cell(static_cast<std::int64_t>(point.index));
  for (const std::string& value : point.values) w.Cell(value);
  w.Cell(name);
  w.Cell(s.flows);
  w.Double(s.offered_wpc);
  w.Cell(s.words_in_window);
  w.Double(s.throughput_wpc);
  w.Cell(s.latency_count);
  w.Double(s.latency_min);
  w.Double(s.latency_mean);
  w.Double(s.latency_p50);
  w.Double(s.latency_p95);
  w.Double(s.latency_p99);
  w.Double(s.latency_max);
  w.Double(point.slot_utilization);
  if (point.convergence.has_value()) ConvergenceCells(w, point);
  w.EndRow();
}

}  // namespace

std::string SweepResult::ToCsv() const {
  CsvWriter w(CsvHeader(spec));
  for (const PointResult& point : points) {
    if (spec.saturation.enabled) {
      for (const ProbeResult& probe : point.saturation.probes) {
        w.Cell(static_cast<std::int64_t>(point.index));
        for (const std::string& value : point.values) w.Cell(value);
        w.Cell("probe");
        w.Cell(probe.x_label);
        w.Double(probe.latency);
        w.Double(probe.throughput_wpc);
        w.Cell(probe.meets ? "true" : "false");
        w.EndRow();
      }
      w.Cell(static_cast<std::int64_t>(point.index));
      for (const std::string& value : point.values) w.Cell(value);
      w.Cell("saturation");
      w.Cell(point.saturation.value_label);
      w.Cell("");
      w.Cell("");
      w.Cell(point.saturation.feasible ? "true" : "false");
      w.EndRow();
    } else {
      ClassRow(w, point, "all", point.all);
      if (point.gt.flows > 0) ClassRow(w, point, "gt", point.gt);
      if (point.be.flows > 0) ClassRow(w, point, "be", point.be);
    }
  }
  return w.Take();
}

Result<std::string> SweepResult::ToCurveCsv(
    const std::string& axis_param) const {
  if (spec.saturation.enabled) {
    return FailedPreconditionError(
        "saturation sweeps have no curve axis (the probe list is the "
        "latency-throughput curve; see the CSV output)");
  }
  std::size_t curve_axis = spec.axes.size();
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    if (spec.axes[a].param.Name() == axis_param) curve_axis = a;
  }
  if (curve_axis == spec.axes.size()) {
    return InvalidArgumentError("'" + axis_param +
                                "' is not an axis of this sweep");
  }
  std::vector<std::string> header{"series",   axis_param, "class",
                                  "offered_wpc", "throughput_wpc", "lat_mean",
                                  "lat_p50",  "lat_p95",  "lat_p99",
                                  "lat_max"};
  if (spec.base.converge.enabled) {
    // Error bars for the curve: the point-level CI of the merged latency
    // (identical on every class row of the point).
    for (const char* col : {"converged", "warmup_detected", "measured_cycles",
                            "batches", "ci_low", "ci_high", "rel_err"}) {
      header.push_back(col);
    }
  }
  CsvWriter w(header);
  for (const PointResult& point : points) {
    // The non-curve axes label the series this point belongs to.
    std::string series;
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      if (a == curve_axis) continue;
      if (!series.empty()) series += ";";
      series += spec.axes[a].param.Name() + "=" + point.values[a];
    }
    if (series.empty()) series = "-";
    auto row = [&](const char* name, const ClassSummary& s) {
      w.Cell(series);
      w.Cell(point.values[curve_axis]);
      w.Cell(name);
      w.Double(s.offered_wpc);
      w.Double(s.throughput_wpc);
      w.Double(s.latency_mean);
      w.Double(s.latency_p50);
      w.Double(s.latency_p95);
      w.Double(s.latency_p99);
      w.Double(s.latency_max);
      if (point.convergence.has_value()) ConvergenceCells(w, point);
      w.EndRow();
    };
    if (point.gt.flows > 0) row("gt", point.gt);
    if (point.be.flows > 0) row("be", point.be);
    if (point.gt.flows > 0 && point.be.flows > 0) row("all", point.all);
  }
  return w.Take();
}

}  // namespace aethereal::sweep
