#include "sweep/spec.h"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/registers.h"
#include "scenario/patterns.h"
#include "util/json.h"
#include "util/rng.h"

namespace aethereal::sweep {

using scenario::InjectKind;
using scenario::ScenarioSpec;
using scenario::TrafficSpec;

bool ParamRef::IsTrafficKey() const {
  switch (key) {
    case Key::kRate:
    case Key::kPeriod:
    case Key::kBurst:
    case Key::kGtSlots:
    case Key::kQos:
      return true;
    default:
      return false;
  }
}

namespace {

const char* KeyName(ParamRef::Key key) {
  switch (key) {
    case ParamRef::Key::kStu: return "stu";
    case ParamRef::Key::kQueues: return "queues";
    case ParamRef::Key::kSeed: return "seed";
    case ParamRef::Key::kWarmup: return "warmup";
    case ParamRef::Key::kDuration: return "duration";
    case ParamRef::Key::kNetMhz: return "netmhz";
    case ParamRef::Key::kNoc: return "noc";
    case ParamRef::Key::kEngine: return "engine";
    case ParamRef::Key::kThreads: return "threads";
    case ParamRef::Key::kRate: return "rate";
    case ParamRef::Key::kPeriod: return "period";
    case ParamRef::Key::kBurst: return "burst";
    case ParamRef::Key::kGtSlots: return "gtslots";
    case ParamRef::Key::kQos: return "qos";
    case ParamRef::Key::kFaultSeed: return "fault.seed";
    case ParamRef::Key::kFaultCorrupt: return "fault.corrupt";
    case ParamRef::Key::kFaultDrop: return "fault.drop";
    case ParamRef::Key::kFaultCfgDrop: return "fault.cfgdrop";
  }
  return "?";
}

constexpr ParamRef::Key kAllKeys[] = {
    ParamRef::Key::kStu,     ParamRef::Key::kQueues,
    ParamRef::Key::kSeed,    ParamRef::Key::kWarmup,
    ParamRef::Key::kDuration, ParamRef::Key::kNetMhz,
    ParamRef::Key::kNoc,     ParamRef::Key::kEngine,
    ParamRef::Key::kThreads, ParamRef::Key::kRate,
    ParamRef::Key::kPeriod,  ParamRef::Key::kBurst,
    ParamRef::Key::kGtSlots, ParamRef::Key::kQos,
    ParamRef::Key::kFaultSeed, ParamRef::Key::kFaultCorrupt,
    ParamRef::Key::kFaultDrop, ParamRef::Key::kFaultCfgDrop,
};

/// Strict full-token integer parse (no silent prefix parse).
Result<std::int64_t> ParseInt(const std::string& token) {
  try {
    std::size_t pos = 0;
    const std::int64_t value = std::stoll(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    return InvalidArgumentError("expected a number, got '" + token + "'");
  }
}

Result<std::int64_t> ParseIntIn(const std::string& token, std::int64_t lo,
                                std::int64_t hi) {
  auto value = ParseInt(token);
  if (!value.ok()) return value;
  if (*value < lo || *value > hi) {
    return InvalidArgumentError("'" + token + "' out of range [" +
                                std::to_string(lo) + ", " +
                                std::to_string(hi) + "]");
  }
  return value;
}

Result<double> ParseDouble(const std::string& token) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    return InvalidArgumentError("expected a number, got '" + token + "'");
  }
}

/// Same population ceiling as the scenario parser.
constexpr std::int64_t kMaxSweepNis = 4096;

/// Applies a "noc" axis value: star7, mesh4x4x1, ring6x1.
Status ApplyNoc(const std::string& value, ScenarioSpec* spec) {
  std::size_t at = 0;
  while (at < value.size() &&
         std::isalpha(static_cast<unsigned char>(value[at])) != 0) {
    ++at;
  }
  const std::string kind = value.substr(0, at);
  std::vector<std::int64_t> dims;
  std::string token;
  for (std::size_t i = at; i <= value.size(); ++i) {
    if (i == value.size() || value[i] == 'x') {
      auto v = ParseIntIn(token, 1, kMaxSweepNis);
      if (!v.ok()) {
        return InvalidArgumentError("noc '" + value +
                                    "': " + v.status().message());
      }
      dims.push_back(*v);
      token.clear();
    } else {
      token += value[i];
    }
  }
  if (kind == "star" && dims.size() == 1) {
    spec->topology = scenario::TopologyKind::kStar;
    spec->dim_a = static_cast<int>(dims[0]);
    spec->dim_b = 1;
    spec->nis_per_router = 1;
  } else if (kind == "mesh" && dims.size() == 3) {
    if (dims[0] * dims[1] * dims[2] > kMaxSweepNis) {
      return InvalidArgumentError("noc '" + value + "': more than " +
                                  std::to_string(kMaxSweepNis) + " NIs");
    }
    spec->topology = scenario::TopologyKind::kMesh;
    spec->dim_a = static_cast<int>(dims[0]);
    spec->dim_b = static_cast<int>(dims[1]);
    spec->nis_per_router = static_cast<int>(dims[2]);
  } else if (kind == "ring" && dims.size() == 2) {
    if (dims[0] < 3) {
      return InvalidArgumentError("noc '" + value + "': ring needs >= 3 routers");
    }
    if (dims[0] * dims[1] > kMaxSweepNis) {
      return InvalidArgumentError("noc '" + value + "': more than " +
                                  std::to_string(kMaxSweepNis) + " NIs");
    }
    spec->topology = scenario::TopologyKind::kRing;
    spec->dim_a = static_cast<int>(dims[0]);
    spec->dim_b = 1;
    spec->nis_per_router = static_cast<int>(dims[1]);
  } else {
    return InvalidArgumentError(
        "noc value must be starN, meshRxCxN, or ringRxN, got '" + value +
        "'");
  }
  if (spec->Phased() && spec->cfg_ni >= spec->NumNis()) {
    return InvalidArgumentError("noc '" + value + "': cfgni " +
                                std::to_string(spec->cfg_ni) +
                                " is off the new topology");
  }
  return OkStatus();
}

/// Visits the traffic directives a traffic-level param targets: the
/// scoped one, or every directive `matches` accepts. Fails when nothing
/// matches, so a sweep never silently leaves the workload unchanged.
Status ForEachTarget(const ParamRef& param, ScenarioSpec* spec,
                     const std::function<bool(const TrafficSpec&)>& matches,
                     const std::function<void(TrafficSpec*)>& apply,
                     const std::string& wants) {
  if (param.group >= 0) {
    if (static_cast<std::size_t>(param.group) >= spec->traffic.size()) {
      return InvalidArgumentError(
          param.Name() + ": base scenario has " +
          std::to_string(spec->traffic.size()) + " traffic directives");
    }
    TrafficSpec* traffic = &spec->traffic[static_cast<std::size_t>(param.group)];
    if (!matches(*traffic)) {
      return InvalidArgumentError(param.Name() + ": directive g" +
                                  std::to_string(param.group) + " is not " +
                                  wants);
    }
    apply(traffic);
    return OkStatus();
  }
  bool any = false;
  for (TrafficSpec& traffic : spec->traffic) {
    if (matches(traffic)) {
      apply(&traffic);
      any = true;
    }
  }
  if (!any) {
    return InvalidArgumentError("'" + param.Name() +
                                "': no traffic directive is " + wants);
  }
  return OkStatus();
}

}  // namespace

std::string ParamRef::Name() const {
  std::string name;
  if (group >= 0) name = "g" + std::to_string(group) + ".";
  if (phase >= 0) name = "p" + std::to_string(phase) + ".";
  name += KeyName(key);
  return name;
}

Result<ParamRef> ParseParamRef(const std::string& token) {
  ParamRef param;
  std::string key = token;
  if (token.size() >= 2 && token[0] == 'g' &&
      std::isdigit(static_cast<unsigned char>(token[1])) != 0) {
    const auto dot = token.find('.');
    if (dot != std::string::npos) {
      auto group = ParseIntIn(token.substr(1, dot - 1), 0, 4096);
      if (!group.ok()) return group.status();
      param.group = static_cast<int>(*group);
      key = token.substr(dot + 1);
    }
  } else if (token.size() >= 2 && token[0] == 'p' &&
             std::isdigit(static_cast<unsigned char>(token[1])) != 0) {
    const auto dot = token.find('.');
    if (dot != std::string::npos) {
      auto phase = ParseIntIn(token.substr(1, dot - 1), 0, 64);
      if (!phase.ok()) return phase.status();
      param.phase = static_cast<int>(*phase);
      key = token.substr(dot + 1);
    }
  }
  for (ParamRef::Key candidate : kAllKeys) {
    if (key == KeyName(candidate)) {
      param.key = candidate;
      if (param.group >= 0 && !param.IsTrafficKey()) {
        return InvalidArgumentError("'" + key +
                                    "' is scenario-level; it cannot be "
                                    "scoped to a traffic directive");
      }
      if (param.phase >= 0 && candidate != ParamRef::Key::kDuration &&
          candidate != ParamRef::Key::kWarmup) {
        return InvalidArgumentError(
            "only duration/warmup can be scoped to a phase, not '" + key +
            "'");
      }
      return param;
    }
  }
  return InvalidArgumentError("unknown sweep parameter '" + token + "'");
}

Status ApplyParam(const ParamRef& param, const std::string& value,
                  ScenarioSpec* spec) {
  switch (param.key) {
    case ParamRef::Key::kStu: {
      // Mirrors the scenario parser: the SLOTS register is a 32-bit mask.
      auto v = ParseIntIn(value, 1, core::regs::kMaxStuSlots);
      if (!v.ok()) return v.status();
      spec->stu_slots = static_cast<int>(*v);
      return OkStatus();
    }
    case ParamRef::Key::kQueues: {
      auto v = ParseIntIn(value, 1, 1 << 20);
      if (!v.ok()) return v.status();
      spec->queue_words = static_cast<int>(*v);
      return OkStatus();
    }
    case ParamRef::Key::kSeed: {
      auto v = ParseIntIn(value, 0, std::numeric_limits<std::int64_t>::max());
      if (!v.ok()) return v.status();
      spec->seed = static_cast<std::uint64_t>(*v);
      return OkStatus();
    }
    case ParamRef::Key::kWarmup: {
      auto v = ParseIntIn(value, 0, std::int64_t{1} << 40);
      if (!v.ok()) return v.status();
      if (param.phase >= 0) {
        if (static_cast<std::size_t>(param.phase) >= spec->phases.size()) {
          return InvalidArgumentError(
              param.Name() + ": base scenario has " +
              std::to_string(spec->phases.size()) + " phases");
        }
        spec->phases[static_cast<std::size_t>(param.phase)].warmup = *v;
      } else {
        spec->warmup = *v;
      }
      return OkStatus();
    }
    case ParamRef::Key::kDuration: {
      auto v = ParseIntIn(value, 1, std::int64_t{1} << 40);
      if (!v.ok()) return v.status();
      if (param.phase >= 0) {
        if (static_cast<std::size_t>(param.phase) >= spec->phases.size()) {
          return InvalidArgumentError(
              param.Name() + ": base scenario has " +
              std::to_string(spec->phases.size()) + " phases");
        }
        spec->phases[static_cast<std::size_t>(param.phase)].duration = *v;
      } else if (spec->Phased()) {
        return InvalidArgumentError(
            "a phased base scenario takes per-phase durations; use "
            "pN.duration");
      } else {
        spec->duration = *v;
      }
      return OkStatus();
    }
    case ParamRef::Key::kNetMhz: {
      auto v = ParseIntIn(value, 1, 1000000);
      if (!v.ok()) return v.status();
      spec->net_mhz = static_cast<double>(*v);
      return OkStatus();
    }
    case ParamRef::Key::kNoc:
      return ApplyNoc(value, spec);
    case ParamRef::Key::kEngine: {
      const auto kind = sim::ParseEngineKind(value);
      if (!kind.has_value()) {
        return InvalidArgumentError(std::string("engine value must be ") +
                                    sim::kEngineKindChoices + ", got '" +
                                    value + "'");
      }
      spec->engine.kind = *kind;
      // threads > 1 only pairs with soa, but an engine axis and a threads
      // axis may apply in either order — the combined config is validated
      // once per grid point (MaterializePoint / ValidateAxisValue), not
      // per value.
      return OkStatus();
    }
    case ParamRef::Key::kThreads: {
      auto v = ParseIntIn(value, 1, sim::kMaxEngineThreads);
      if (!v.ok()) return v.status();
      spec->engine.threads = static_cast<unsigned>(*v);
      return OkStatus();
    }
    case ParamRef::Key::kRate: {
      auto v = ParseDouble(value);
      if (!v.ok()) return v.status();
      if (*v <= 0.0 || *v > 1.0) {
        return InvalidArgumentError("rate must be in (0, 1], got '" + value +
                                    "'");
      }
      return ForEachTarget(
          param, spec,
          [](const TrafficSpec& t) { return t.inject == InjectKind::kBernoulli; },
          [&](TrafficSpec* t) { t->rate = *v; }, "a bernoulli directive");
    }
    case ParamRef::Key::kPeriod: {
      auto v = ParseIntIn(value, 1, std::int64_t{1} << 30);
      if (!v.ok()) return v.status();
      return ForEachTarget(
          param, spec,
          [](const TrafficSpec& t) { return t.inject == InjectKind::kPeriodic; },
          [&](TrafficSpec* t) { t->period = *v; }, "a periodic directive");
    }
    case ParamRef::Key::kBurst: {
      const auto slash = value.find('/');
      if (slash == std::string::npos) {
        return InvalidArgumentError("burst value must be WORDS/GAP, got '" +
                                    value + "'");
      }
      auto words = ParseIntIn(value.substr(0, slash), 1, std::int64_t{1} << 20);
      auto gap = ParseIntIn(value.substr(slash + 1), 0, std::int64_t{1} << 30);
      if (!words.ok()) return words.status();
      if (!gap.ok()) return gap.status();
      return ForEachTarget(
          param, spec,
          [](const TrafficSpec& t) { return t.inject == InjectKind::kBursty; },
          [&](TrafficSpec* t) {
            t->burst_words = *words;
            t->gap_cycles = *gap;
          },
          "a bursty directive");
    }
    case ParamRef::Key::kGtSlots: {
      auto v = ParseIntIn(value, 1, 1024);
      if (!v.ok()) return v.status();
      return ForEachTarget(
          param, spec, [](const TrafficSpec& t) { return t.gt; },
          [&](TrafficSpec* t) { t->gt_slots = static_cast<int>(*v); },
          "a GT directive");
    }
    case ParamRef::Key::kQos: {
      bool gt = false;
      int slots = 0;
      if (value == "be") {
        gt = false;
      } else if (value.size() > 2 && value.compare(0, 2, "gt") == 0) {
        auto v = ParseIntIn(value.substr(2), 1, 1024);
        if (!v.ok()) return v.status();
        gt = true;
        slots = static_cast<int>(*v);
      } else {
        return InvalidArgumentError("qos value must be 'be' or 'gtN', got '" +
                                    value + "'");
      }
      return ForEachTarget(
          param, spec, [](const TrafficSpec&) { return true; },
          [&](TrafficSpec* t) {
            t->gt = gt;
            t->gt_slots = slots;
          },
          "a traffic directive");
    }
    case ParamRef::Key::kFaultSeed: {
      auto v = ParseIntIn(value, 0, std::numeric_limits<std::int64_t>::max());
      if (!v.ok()) return v.status();
      if (!spec->fault.has_value()) spec->fault.emplace();
      spec->fault->seed = static_cast<std::uint64_t>(*v);
      return OkStatus();
    }
    case ParamRef::Key::kFaultCorrupt:
    case ParamRef::Key::kFaultDrop:
    case ParamRef::Key::kFaultCfgDrop: {
      auto v = ParseDouble(value);
      if (!v.ok()) return v.status();
      if (*v < 0.0 || *v > 1.0) {
        return InvalidArgumentError(param.Name() + " must be in [0, 1], got '" +
                                    value + "'");
      }
      // Mirrors the scenario parser's rule: config faults act on the
      // runtime configuration protocol, which only phased workloads carry.
      if (param.key == ParamRef::Key::kFaultCfgDrop && *v > 0.0 &&
          !spec->Phased()) {
        return InvalidArgumentError(
            "fault.cfgdrop needs a phased base scenario (config faults act "
            "on the runtime configuration protocol)");
      }
      if (!spec->fault.has_value()) spec->fault.emplace();
      if (param.key == ParamRef::Key::kFaultCorrupt) {
        spec->fault->link_corrupt_rate = *v;
      } else if (param.key == ParamRef::Key::kFaultDrop) {
        spec->fault->link_drop_rate = *v;
      } else {
        spec->fault->config_drop_rate = *v;
      }
      return OkStatus();
    }
  }
  return InvalidArgumentError("unhandled sweep parameter");
}

std::size_t SweepSpec::NumPoints() const {
  std::size_t n = 1;
  for (const Axis& axis : axes) n *= axis.values.size();
  return n;
}

std::vector<std::string> GridPoint::Values(const SweepSpec& spec) const {
  std::vector<std::string> values;
  values.reserve(choice.size());
  for (std::size_t a = 0; a < choice.size(); ++a) {
    values.push_back(spec.axes[a].values[choice[a]]);
  }
  return values;
}

std::vector<GridPoint> ExpandGrid(const SweepSpec& spec) {
  std::vector<GridPoint> grid;
  grid.reserve(spec.NumPoints());
  GridPoint point;
  point.choice.assign(spec.axes.size(), 0);
  for (std::size_t i = 0; i < spec.NumPoints(); ++i) {
    point.index = i;
    grid.push_back(point);
    // Odometer increment, last axis fastest.
    for (std::size_t a = spec.axes.size(); a-- > 0;) {
      if (++point.choice[a] < spec.axes[a].values.size()) break;
      point.choice[a] = 0;
    }
  }
  return grid;
}

Result<scenario::ScenarioSpec> MaterializePoint(const SweepSpec& spec,
                                                const GridPoint& point) {
  ScenarioSpec materialized = spec.base;
  for (std::size_t a = 0; a < spec.axes.size(); ++a) {
    const Axis& axis = spec.axes[a];
    if (Status s = ApplyParam(axis.param, axis.values[point.choice[a]],
                              &materialized);
        !s.ok()) {
      return Status(s.code(), "point " + std::to_string(point.index) + ", " +
                                  axis.param.Name() + ": " + s.message());
    }
  }
  if (const std::string error = sim::ValidateEngineConfig(materialized.engine);
      !error.empty()) {
    return InvalidArgumentError("point " + std::to_string(point.index) + ": " +
                                error);
  }
  return materialized;
}

namespace {

struct Line {
  int number;
  std::vector<std::string> tokens;
};

std::vector<Line> Tokenize(const std::string& text) {
  std::vector<Line> lines;
  std::istringstream stream(text);
  std::string raw;
  int number = 0;
  while (std::getline(stream, raw)) {
    ++number;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream ls(raw);
    Line line{number, {}};
    std::string token;
    while (ls >> token) line.tokens.push_back(token);
    if (!line.tokens.empty()) lines.push_back(std::move(line));
  }
  return lines;
}

Status ParseError(int line, const std::string& message) {
  return InvalidArgumentError("line " + std::to_string(line) + ": " + message);
}

/// Dry-runs a materialized spec's pattern expansion so structurally
/// impossible grids (transpose on a non-square mesh, bit patterns on a
/// non-power-of-two population, NI ids off the new topology) fail at
/// parse time with a line number instead of mid-sweep.
Status CheckPatterns(const ScenarioSpec& spec) {
  Rng rng(spec.seed);
  for (const TrafficSpec& traffic : spec.traffic) {
    if (auto flows = scenario::ExpandPattern(spec, traffic, rng);
        !flows.ok()) {
      return flows.status();
    }
  }
  return OkStatus();
}

}  // namespace

Status ValidateAxisValue(const ParamRef& param, const std::string& value,
                         const scenario::ScenarioSpec& base) {
  scenario::ScenarioSpec probe = base;
  if (Status s = ApplyParam(param, value, &probe); !s.ok()) return s;
  if (const std::string error = sim::ValidateEngineConfig(probe.engine);
      !error.empty()) {
    return InvalidArgumentError(error);
  }
  return CheckPatterns(probe);
}

Result<SweepSpec> ParseSweep(
    const std::string& text,
    const std::function<Result<scenario::ScenarioSpec>(const std::string&)>&
        load_base) {
  SweepSpec spec;
  bool have_base = false;
  bool have_name = false;
  std::vector<ParamRef> set_params;
  for (const Line& line : Tokenize(text)) {
    const std::string& kind = line.tokens[0];
    if (kind == "sweep") {
      if (have_name) return ParseError(line.number, "duplicate 'sweep'");
      if (line.tokens.size() != 2) {
        return ParseError(line.number, "sweep <name>");
      }
      spec.name = line.tokens[1];
      have_name = true;
    } else if (kind == "base") {
      if (have_base) return ParseError(line.number, "duplicate 'base'");
      if (line.tokens.size() != 2) {
        return ParseError(line.number, "base <scenario-file>");
      }
      spec.base_path = line.tokens[1];
      auto base = load_base(spec.base_path);
      if (!base.ok()) {
        return ParseError(line.number, "base '" + spec.base_path +
                                           "': " + base.status().message());
      }
      spec.base = std::move(*base);
      have_base = true;
    } else if (kind == "set" || kind == "axis") {
      if (!have_base) {
        return ParseError(line.number,
                          "'base' must come before '" + kind + "'");
      }
      if (line.tokens.size() < 3) {
        return ParseError(line.number, kind + " <param> <value...>");
      }
      auto param = ParseParamRef(line.tokens[1]);
      if (!param.ok()) {
        return ParseError(line.number, param.status().message());
      }
      if (kind == "set") {
        if (line.tokens.size() != 3) {
          return ParseError(line.number, "set <param> <value>");
        }
        // Same rule as the scenario parser's duplicate check: silently
        // keeping the later value would make the earlier line a lie.
        for (const ParamRef& earlier : set_params) {
          if (earlier == *param) {
            return ParseError(line.number,
                              "duplicate 'set " + param->Name() + "'");
          }
        }
        set_params.push_back(*param);
        // Sets fold into the stored base, in file order.
        if (Status s = ApplyParam(*param, line.tokens[2], &spec.base);
            !s.ok()) {
          return ParseError(line.number, s.message());
        }
      } else {
        for (const Axis& axis : spec.axes) {
          if (axis.param == *param) {
            return ParseError(line.number, "duplicate axis on '" +
                                               param->Name() + "'");
          }
        }
        Axis axis;
        axis.param = *param;
        axis.values.assign(line.tokens.begin() + 2, line.tokens.end());
        axis.line = line.number;
        spec.axes.push_back(std::move(axis));
      }
    } else if (kind == "saturate") {
      if (!have_base) {
        return ParseError(line.number, "'base' must come before 'saturate'");
      }
      if (spec.saturation.enabled) {
        return ParseError(line.number, "duplicate 'saturate'");
      }
      if (line.tokens.size() != 6 && line.tokens.size() != 8) {
        return ParseError(
            line.number,
            "saturate <param> <lo> <hi> <mean|p99|max> <bound> [iters N]");
      }
      auto param = ParseParamRef(line.tokens[1]);
      if (!param.ok()) {
        return ParseError(line.number, param.status().message());
      }
      if (param->key != ParamRef::Key::kRate) {
        return ParseError(line.number,
                          "saturate needs a continuous parameter (rate)");
      }
      auto lo = ParseDouble(line.tokens[2]);
      auto hi = ParseDouble(line.tokens[3]);
      if (!lo.ok()) return ParseError(line.number, lo.status().message());
      if (!hi.ok()) return ParseError(line.number, hi.status().message());
      if (!(*lo < *hi)) {
        return ParseError(line.number, "saturate needs LO < HI");
      }
      const std::string& metric = line.tokens[4];
      if (metric != "mean" && metric != "p99" && metric != "max") {
        return ParseError(line.number,
                          "saturate metric must be mean, p99, or max");
      }
      auto bound = ParseDouble(line.tokens[5]);
      if (!bound.ok()) return ParseError(line.number, bound.status().message());
      if (*bound <= 0) {
        return ParseError(line.number, "saturate bound must be > 0");
      }
      spec.saturation.enabled = true;
      spec.saturation.param = *param;
      spec.saturation.lo = *lo;
      spec.saturation.hi = *hi;
      spec.saturation.metric = metric;
      spec.saturation.bound = *bound;
      if (line.tokens.size() == 8) {
        if (line.tokens[6] != "iters") {
          return ParseError(line.number, "expected 'iters N'");
        }
        auto iters = ParseIntIn(line.tokens[7], 1, 32);
        if (!iters.ok()) {
          return ParseError(line.number, iters.status().message());
        }
        spec.saturation.iters = static_cast<int>(*iters);
      }
    } else {
      return ParseError(line.number, "unknown directive '" + kind + "'");
    }
  }
  if (!have_base) return InvalidArgumentError("sweep has no 'base' line");

  // Validate every axis value against the base (independently; cross-axis
  // combinations are validated again when the point is materialized).
  for (const Axis& axis : spec.axes) {
    for (const std::string& value : axis.values) {
      if (Status s = ValidateAxisValue(axis.param, value, spec.base);
          !s.ok()) {
        return ParseError(axis.line, "axis " + axis.param.Name() +
                                         " value '" + value +
                                         "': " + s.message());
      }
    }
    if (spec.saturation.enabled && axis.param == spec.saturation.param) {
      return ParseError(axis.line, "'" + axis.param.Name() +
                                       "' is both an axis and the saturate "
                                       "parameter");
    }
  }
  if (spec.saturation.enabled) {
    ScenarioSpec probe = spec.base;
    for (double endpoint : {spec.saturation.lo, spec.saturation.hi}) {
      if (Status s = ApplyParam(spec.saturation.param,
                                FormatDouble(endpoint), &probe);
          !s.ok()) {
        return InvalidArgumentError("saturate endpoint: " + s.message());
      }
    }
  }
  if (Status s = CheckPatterns(spec.base); !s.ok()) {
    return InvalidArgumentError("base scenario: " + s.message());
  }
  return spec;
}

Result<SweepSpec> LoadSweepFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return NotFoundError("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  const auto dir = std::filesystem::path(path).parent_path();
  auto spec = ParseSweep(text.str(), [&](const std::string& base) {
    return scenario::LoadScenarioFile((dir / base).string());
  });
  if (!spec.ok()) {
    return Status(spec.status().code(), path + ": " + spec.status().message());
  }
  return spec;
}

}  // namespace aethereal::sweep
