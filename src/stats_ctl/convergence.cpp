#include "stats_ctl/convergence.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/json.h"

namespace aethereal::stats_ctl {

Cycle ConvergeSpec::IntervalFor(Cycle d) const {
  if (interval > 0) return interval;
  return std::max<Cycle>(d / 10, 300);
}

Cycle ConvergeSpec::MaxDurationFor(Cycle d) const {
  if (max_duration > 0) return max_duration;
  return 10 * d;
}

// Acklam's rational approximation to the inverse standard normal CDF.
// Coefficients from the canonical publication; relative error < 1.2e-9
// over the whole open interval.
double NormalQuantile(double p) {
  AETHEREAL_CHECK(p > 0.0 && p < 1.0);
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double p_low = 0.02425;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
            1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double StudentTQuantile(double conf, int dof) {
  AETHEREAL_CHECK(conf > 0.0 && conf < 1.0);
  AETHEREAL_CHECK(dof >= 1);
  // Two-sided: P(|T| <= t) = conf means the upper tail point at
  // p = (1 + conf) / 2.
  const double p = 0.5 * (1.0 + conf);
  if (dof == 1) {
    // Cauchy: F^-1(p) = tan(pi (p - 1/2)).
    constexpr double kPi = 3.14159265358979323846;
    return std::tan(kPi * (p - 0.5));
  }
  if (dof == 2) {
    // Closed form: t = (2p - 1) sqrt(2 / (4 p (1 - p))).
    const double u = 2.0 * p - 1.0;
    return u * std::sqrt(2.0 / (4.0 * p * (1.0 - p)));
  }
  // Cornish–Fisher (Hill) expansion around the normal quantile.
  const double z = NormalQuantile(p);
  const double v = static_cast<double>(dof);
  const double z2 = z * z;
  const double g1 = (z2 + 1.0) * z / 4.0;
  const double g2 = ((5.0 * z2 + 16.0) * z2 + 3.0) * z / 96.0;
  const double g3 = (((3.0 * z2 + 19.0) * z2 + 17.0) * z2 - 15.0) * z / 384.0;
  const double g4 =
      ((((79.0 * z2 + 776.0) * z2 + 1482.0) * z2 - 1920.0) * z2 - 945.0) * z /
      92160.0;
  return z + g1 / v + g2 / (v * v) + g3 / (v * v * v) + g4 / (v * v * v * v);
}

BatchMeansResult BatchMeansCi(const std::vector<double>& samples,
                              std::size_t first, std::size_t last,
                              int batches, double conf) {
  AETHEREAL_CHECK(batches >= 2);
  AETHEREAL_CHECK(first <= last && last <= samples.size());
  BatchMeansResult r;
  r.batches = batches;
  const std::size_t n = last - first;
  const std::size_t batch_size = n / static_cast<std::size_t>(batches);
  r.batch_size = static_cast<std::int64_t>(batch_size);
  if (batch_size < 2) return r;  // too little data for a trustworthy CI

  std::vector<double> means(static_cast<std::size_t>(batches), 0.0);
  double grand = 0.0;
  for (int b = 0; b < batches; ++b) {
    double acc = 0.0;
    const std::size_t base = first + static_cast<std::size_t>(b) * batch_size;
    for (std::size_t i = 0; i < batch_size; ++i) {
      acc += samples[base + i];
    }
    means[static_cast<std::size_t>(b)] = acc / static_cast<double>(batch_size);
    grand += acc;
  }
  r.samples = static_cast<std::int64_t>(batch_size) * batches;
  r.mean = grand / static_cast<double>(r.samples);

  // Unbiased (n-1) variance of the batch means.
  const double bm = static_cast<double>(batches);
  double mean_of_means = 0.0;
  for (double m : means) mean_of_means += m;
  mean_of_means /= bm;
  double var = 0.0;
  for (double m : means) var += (m - mean_of_means) * (m - mean_of_means);
  var /= bm - 1.0;

  const double t = StudentTQuantile(conf, batches - 1);
  r.half_width = t * std::sqrt(var / bm);
  r.ci_low = r.mean - r.half_width;
  r.ci_high = r.mean + r.half_width;
  r.rel_err = r.mean != 0.0 ? r.half_width / std::fabs(r.mean)
                            : std::numeric_limits<double>::infinity();

  // Lag-1 autocorrelation of the batch means (0 when the denominator
  // degenerates — constant batch means have nothing to correlate).
  double num = 0.0;
  for (int b = 0; b + 1 < batches; ++b) {
    num += (means[static_cast<std::size_t>(b)] - mean_of_means) *
           (means[static_cast<std::size_t>(b) + 1] - mean_of_means);
  }
  const double den = var * (bm - 1.0);
  r.lag1 = den != 0.0 ? num / den : 0.0;
  r.valid = true;
  return r;
}

std::size_t Mser5Truncation(const std::vector<double>& series) {
  const std::size_t n5 = series.size() / 5;
  if (n5 < 2) return 0;
  // Batch the series into means of 5 (the "5" of MSER-5 — it smooths the
  // raw noise before the truncation scan).
  std::vector<double> batch(n5, 0.0);
  for (std::size_t b = 0; b < n5; ++b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < 5; ++i) acc += series[b * 5 + i];
    batch[b] = acc / 5.0;
  }
  // Suffix sums so each candidate truncation is O(1).
  std::vector<double> suf_sum(n5 + 1, 0.0), suf_sq(n5 + 1, 0.0);
  for (std::size_t b = n5; b-- > 0;) {
    suf_sum[b] = suf_sum[b + 1] + batch[b];
    suf_sq[b] = suf_sq[b + 1] + batch[b] * batch[b];
  }
  const std::size_t d_max = n5 / 2;  // never truncate more than half
  std::size_t best_d = 0;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d <= d_max; ++d) {
    const double m = static_cast<double>(n5 - d);
    const double mean = suf_sum[d] / m;
    const double sse = suf_sq[d] - m * mean * mean;
    const double stat = sse / (m * m);
    if (stat < best) {
      best = stat;
      best_d = d;
    }
  }
  return best_d * 5;
}

WarmupDetector::WarmupDetector(int windows, double tol)
    : windows_(windows), tol_(tol) {
  AETHEREAL_CHECK(windows >= 2);
  AETHEREAL_CHECK(tol > 0.0);
}

bool WarmupDetector::Stable(const std::vector<double>& ring, double tol) {
  // Drift test: mean of the newer half vs mean of the older half. Each
  // half averages `windows` intervals, so stationary per-interval noise
  // shrinks by sqrt(windows) and cannot keep a settled series
  // "unstable"; a genuine warmup trend keeps the halves apart.
  const std::size_t half = ring.size() / 2;
  double older = 0.0;
  double newer = 0.0;
  for (std::size_t i = 0; i < half; ++i) older += ring[i];
  for (std::size_t i = half; i < ring.size(); ++i) newer += ring[i];
  older /= static_cast<double>(half);
  newer /= static_cast<double>(half);
  const double center = 0.5 * (older + newer);
  if (center == 0.0) return false;  // dead series: not "stable", just empty
  return std::fabs(newer - older) <= tol * std::fabs(center);
}

void WarmupDetector::Observe(double latency_mean, double throughput) {
  if (warm_) return;
  ++observed_;
  lat_ring_.push_back(latency_mean);
  thr_ring_.push_back(throughput);
  if (static_cast<int>(lat_ring_.size()) > 2 * windows_) {
    lat_ring_.erase(lat_ring_.begin());
    thr_ring_.erase(thr_ring_.begin());
  }
  if (static_cast<int>(lat_ring_.size()) < 2 * windows_) return;
  warm_ = Stable(lat_ring_, tol_) && Stable(thr_ring_, tol_);
}

void WriteConvergenceJson(JsonWriter& w, const ConvergenceOutcome& c) {
  w.BeginObject();
  w.Key("converged").Bool(c.converged);
  w.Key("warmup_detected").Bool(c.warmup_detected);
  w.Key("warmup_cycles").Int(c.warmup_cycles);
  w.Key("measured_cycles").Int(c.measured_cycles);
  if (c.ci.valid) {
    w.Key("batches").Int(c.ci.batches);
    w.Key("batch_size").Int(c.ci.batch_size);
    w.Key("samples").Int(c.ci.samples);
    w.Key("mean").Double(c.ci.mean);
    w.Key("ci_low").Double(c.ci.ci_low);
    w.Key("ci_high").Double(c.ci.ci_high);
    if (std::isfinite(c.ci.rel_err)) w.Key("rel_err").Double(c.ci.rel_err);
    w.Key("lag1").Double(c.ci.lag1);
  }
  w.EndObject();
}

}  // namespace aethereal::stats_ctl
