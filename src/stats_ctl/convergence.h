// Stop-on-convergence statistics (DESIGN.md §14): batch-means confidence
// intervals, automatic warmup detection, and the ConvergeSpec runtime
// policy shared by the scenario runner, the phased runner, and sweeps.
//
// The discipline is booksim2's trafficmanager sampling loop, adapted to
// this codebase's determinism contract: every decision below is computed
// from committed simulation state at deterministic cycle boundaries using
// integer cycle counts and closed-form approximations — no wall clock, no
// host randomness — so a converged run stops at the byte-identical cycle
// on all three engines.
//
// Estimators:
//  * BatchMeansCi — splits a sample stream into B equal batches, takes the
//    unbiased (n-1) variance of the batch means, and forms a Student-t
//    interval at confidence C. Batching absorbs the serial correlation of
//    queueing samples; the lag-1 autocorrelation of the batch means is
//    reported as the sanity check (high lag1 = batches still too small =
//    the CI is not yet trustworthy).
//  * StudentTQuantile — two-sided t critical value via the Acklam inverse
//    normal and the Cornish–Fisher (Hill) tail expansion; exact closed
//    forms for 1 and 2 degrees of freedom. Deterministic, no tables, no
//    external dependencies.
//  * Mser5Truncation — classic MSER-5 warmup truncation for offline
//    series (tests, post-hoc analysis).
//  * WarmupDetector — the online Welch-style rule the runner uses: the
//    run is warm once the last `windows` per-interval means (latency and
//    throughput both) each sit within `tol` of their own average.
#ifndef AETHEREAL_STATS_CTL_CONVERGENCE_H
#define AETHEREAL_STATS_CTL_CONVERGENCE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/types.h"

namespace aethereal {
class JsonWriter;
}

namespace aethereal::stats_ctl {

/// Runtime policy of a stop-on-convergence run. Parsed from the scenario
/// `converge` directive / --converge CLI flags; default-disabled so every
/// fixed-duration run (and every committed golden) is untouched.
struct ConvergeSpec {
  bool enabled = false;

  /// Stop once the CI half-width falls to rel_err * |mean| (required).
  double rel_err = 0.05;
  /// Two-sided confidence level of the interval.
  double conf = 0.95;
  /// Hard cap on measured cycles (per phase window for phased scenarios);
  /// 0 = 10x the spec's fixed duration.
  Cycle max_duration = 0;
  /// Cycles between convergence checks (also the warmup-detection window
  /// length); 0 = fixed duration / 10, floored at 300 cycles.
  Cycle interval = 0;
  /// Number of batches the measured samples are split into.
  int batches = 20;
  /// Batch means whose |lag-1 autocorrelation| exceeds this are not
  /// accepted as converged (the batches are still too correlated).
  double lag1_limit = 0.5;

  /// Automatic warmup extension past the spec's fixed `warmup` (static
  /// scenarios only; phases keep their declared warmups).
  bool auto_warmup = true;
  /// Consecutive per-interval windows that must agree for warmth.
  int warmup_windows = 5;
  /// Relative tolerance of the warmth rule.
  double warmup_tol = 0.05;

  /// Effective check interval for a run whose fixed duration is `d`.
  Cycle IntervalFor(Cycle d) const;
  /// Effective measured-cycle cap for a run whose fixed duration is `d`.
  Cycle MaxDurationFor(Cycle d) const;
};

/// One batch-means estimate over a sample stream.
struct BatchMeansResult {
  /// False until the stream holds at least 2 samples per batch (below
  /// that, the t interval over batch means is meaningless).
  bool valid = false;
  int batches = 0;            // full batches used
  std::int64_t batch_size = 0;
  std::int64_t samples = 0;   // samples covered (batches * batch_size)
  double mean = 0;            // grand mean of the covered samples
  double half_width = 0;      // t * s_batch / sqrt(batches)
  double ci_low = 0;
  double ci_high = 0;
  /// half_width / |mean|; infinity when the mean is 0.
  double rel_err = 0;
  /// Lag-1 autocorrelation of the batch means (0 when undefined).
  double lag1 = 0;
};

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.2e-9 over (0, 1)).
double NormalQuantile(double p);

/// Two-sided Student-t critical value: the t with `dof` degrees of
/// freedom such that P(|T| <= t) = conf. Exact for dof 1 and 2,
/// Cornish–Fisher (Hill) expansion above.
double StudentTQuantile(double conf, int dof);

/// Batch-means CI over samples[first, last) split into `batches` equal
/// batches (trailing remainder discarded). `conf` is the two-sided
/// confidence level.
BatchMeansResult BatchMeansCi(const std::vector<double>& samples,
                              std::size_t first, std::size_t last,
                              int batches, double conf);

/// MSER-5 truncation point of an offline series: the sample index (a
/// multiple of 5) whose removal minimizes the half-width statistic
/// sum((x - mean)^2) / n^2 over the retained suffix. Capped at half the
/// series, per the standard rule.
std::size_t Mser5Truncation(const std::vector<double>& series);

/// Online Welch-style warmup detector. Feed one (latency mean, delivered
/// words) observation per interval; warm() turns true once, for BOTH
/// series, the mean of the last `windows` observations is within `tol`
/// relative of the mean of the `windows` before them. Comparing two
/// window-averages (noise shrinks with sqrt(windows)) detects the
/// warmup *trend* without being fooled by per-interval sampling noise —
/// a per-interval bound would keep a perfectly stationary noisy series
/// "unstable" almost forever. A dead series (all-zero halves — no
/// samples, no delivery) never counts as stable.
class WarmupDetector {
 public:
  WarmupDetector(int windows, double tol);

  void Observe(double latency_mean, double throughput);
  bool warm() const { return warm_; }
  /// Intervals observed so far.
  int observed() const { return observed_; }

 private:
  static bool Stable(const std::vector<double>& ring, double tol);

  int windows_;
  double tol_;
  int observed_ = 0;
  bool warm_ = false;
  std::vector<double> lat_ring_;   // last 2 * `windows` latency means
  std::vector<double> thr_ring_;   // last 2 * `windows` throughputs
};

/// Outcome of a stop-on-convergence measurement (one run, or one phase
/// window). Serialized into the result JSON `convergence` section.
struct ConvergenceOutcome {
  bool converged = false;
  bool warmup_detected = false;   // auto-warmup rule fired (vs cap)
  Cycle warmup_cycles = 0;        // total settle cycles before measuring
  Cycle measured_cycles = 0;      // measured window actually run
  BatchMeansResult ci;            // the estimate at stop time
};

/// Deterministic JSON encoding of an outcome (the `convergence` sections
/// of schema_version 3 scenario and sweep documents). The CI fields
/// appear once the batch-means estimate is valid; rel_err is suppressed
/// for a zero mean, where it is undefined.
void WriteConvergenceJson(JsonWriter& w, const ConvergenceOutcome& c);

}  // namespace aethereal::stats_ctl

#endif  // AETHEREAL_STATS_CTL_CONVERGENCE_H
