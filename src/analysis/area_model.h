// Analytical area / frequency model, calibrated to the paper's 0.13 um
// synthesis results (§5).
//
// The paper's RTL cannot be synthesized here, so this model substitutes for
// the synthesis flow: per-component constants are calibrated such that the
// paper's reference NI instance (STU of 8 slots; 4 ports with 1, 1, 2 and 4
// channels; 32-bit x 8-word queues) reproduces the published numbers
// exactly, and the parameterization (queue words, channels, ports, slot
// table size) exposes the same scaling arguments the Æthereal project made
// in its companion cost-performance paper (ref. [11]).
//
// Published values being reproduced (mm^2 at 0.13 um, 500 MHz):
//   NI kernel                 0.110
//   narrowcast shell          0.004
//   multi-connection shell    0.007
//   DTL master shell          0.005
//   DTL slave shell           0.002
//   configuration shell       0.010
//   4-port example total      0.143
#ifndef AETHEREAL_ANALYSIS_AREA_MODEL_H
#define AETHEREAL_ANALYSIS_AREA_MODEL_H

#include "core/params.h"

namespace aethereal::analysis {

struct NiKernelAreaBreakdown {
  double queues_mm2 = 0;     // hardware FIFOs (dominant term)
  double per_channel_mm2 = 0;  // credit counters + channel registers
  double stu_mm2 = 0;          // slot table + scheduler state
  double base_mm2 = 0;         // packetization, depacketization, control
  double total_mm2 = 0;
};

class AreaModel {
 public:
  // Calibrated constants (mm^2, 0.13 um).
  static constexpr double kFifoPerBit = 18.0e-6;     // per storage bit
  static constexpr double kPerChannel = 2.0e-3;      // Space/Credit + regs
  static constexpr double kPerStuSlot = 1.0e-3;      // slot table + STU
  static constexpr double kKernelBase = 12.272e-3;   // Pck/Depck/control
  static constexpr double kDataWidthBits = 32.0;

  static constexpr double kNarrowcastBase = 2.0e-3;
  static constexpr double kNarrowcastPerSlave = 1.0e-3;
  static constexpr double kMultiConnBase = 3.0e-3;
  static constexpr double kMultiConnPerConn = 1.0e-3;
  static constexpr double kDtlMaster = 5.0e-3;
  static constexpr double kDtlSlave = 2.0e-3;
  static constexpr double kConfigShell = 10.0e-3;

  /// NI-kernel area with per-term breakdown.
  static NiKernelAreaBreakdown NiKernel(const core::NiKernelParams& params);

  /// Shell areas.
  static double Narrowcast(int num_slaves);
  static double Multicast(int num_slaves);
  static double MultiConnection(int num_connections);
  static double DtlMaster() { return kDtlMaster; }
  static double DtlSlave() { return kDtlSlave; }
  static double ConfigShell() { return kConfigShell; }

  /// The paper's complete 4-port example: kernel + config shell + two DTL
  /// masters + narrowcast (2 slaves) + DTL slave + multi-connection (4).
  static double PaperExampleTotal();

  /// First-order technology scaling of a 0.13 um area (classic area ~
  /// (node/130)^2 shrink), for what-if sweeps.
  static double ScaleToNode(double mm2_at_130nm, double node_nm);

  /// Operating frequency estimate: the prototype runs at 500 MHz at
  /// 0.13 um; first-order 1/node scaling of gate delay.
  static double FrequencyMhzAtNode(double node_nm);
};

}  // namespace aethereal::analysis

#endif  // AETHEREAL_ANALYSIS_AREA_MODEL_H
