#include "analysis/area_model.h"

namespace aethereal::analysis {

NiKernelAreaBreakdown AreaModel::NiKernel(const core::NiKernelParams& params) {
  NiKernelAreaBreakdown breakdown;
  double bits = 0;
  int channels = 0;
  for (const auto& port : params.ports) {
    for (const auto& ch : port.channels) {
      bits += kDataWidthBits *
              static_cast<double>(ch.source_queue_words + ch.dest_queue_words);
      ++channels;
    }
  }
  breakdown.queues_mm2 = bits * kFifoPerBit;
  breakdown.per_channel_mm2 = channels * kPerChannel;
  breakdown.stu_mm2 = params.stu_slots * kPerStuSlot;
  breakdown.base_mm2 = kKernelBase;
  breakdown.total_mm2 = breakdown.queues_mm2 + breakdown.per_channel_mm2 +
                        breakdown.stu_mm2 + breakdown.base_mm2;
  return breakdown;
}

double AreaModel::Narrowcast(int num_slaves) {
  return kNarrowcastBase + num_slaves * kNarrowcastPerSlave;
}

double AreaModel::Multicast(int num_slaves) {
  // Same structure as narrowcast minus the address decoder, plus the
  // response merger; net out to the same per-slave cost.
  return kNarrowcastBase + num_slaves * kNarrowcastPerSlave;
}

double AreaModel::MultiConnection(int num_connections) {
  return kMultiConnBase + num_connections * kMultiConnPerConn;
}

double AreaModel::PaperExampleTotal() {
  const auto kernel = NiKernel(core::NiKernelParams::PaperReferenceInstance());
  return kernel.total_mm2 + ConfigShell() + 2 * DtlMaster() + Narrowcast(2) +
         DtlSlave() + MultiConnection(4);
}

double AreaModel::ScaleToNode(double mm2_at_130nm, double node_nm) {
  const double s = node_nm / 130.0;
  return mm2_at_130nm * s * s;
}

double AreaModel::FrequencyMhzAtNode(double node_nm) {
  return 500.0 * (130.0 / node_nm);
}

}  // namespace aethereal::analysis
