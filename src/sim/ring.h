// Fixed-capacity ring buffer backing the simulation queue models.
//
// The hardware FIFOs have design-time capacities, so every simulation queue
// is bounded; backing them with a preallocated ring (instead of std::deque,
// whose chunk map allocates and frees on steady-state push/pop churn) keeps
// the simulation hot path free of per-slot heap allocations.
#ifndef AETHEREAL_SIM_RING_H
#define AETHEREAL_SIM_RING_H

#include <utility>
#include <vector>

#include "util/check.h"

namespace aethereal::sim {

template <typename T>
class Ring {
 public:
  explicit Ring(int capacity)
      : buffer_(static_cast<std::size_t>(capacity)), capacity_(capacity) {
    AETHEREAL_CHECK(capacity > 0);
  }

  int capacity() const { return capacity_; }
  int size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == capacity_; }

  /// Element `index` places behind the head (0 = oldest).
  const T& operator[](int index) const {
    AETHEREAL_CHECK(index >= 0 && index < count_);
    return buffer_[Slot(index)];
  }

  const T& front() const {
    AETHEREAL_CHECK(count_ > 0);
    return buffer_[Slot(0)];
  }

  void push_back(T value) {
    AETHEREAL_CHECK_MSG(count_ < capacity_, "Ring overflow");
    buffer_[Slot(count_)] = std::move(value);
    ++count_;
  }

  T pop_front() {
    AETHEREAL_CHECK_MSG(count_ > 0, "Ring underflow");
    T value = std::move(buffer_[Slot(0)]);
    ++head_;
    if (head_ == capacity_) head_ = 0;
    --count_;
    return value;
  }

  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  // head_ < capacity_ and offset <= count_ <= capacity_, so one
  // conditional subtraction replaces the integer division of `%` on the
  // hot queue paths.
  std::size_t Slot(int offset) const {
    int slot = head_ + offset;
    if (slot >= capacity_) slot -= capacity_;
    return static_cast<std::size_t>(slot);
  }

  std::vector<T> buffer_;
  int capacity_;
  int head_ = 0;
  int count_ = 0;
};

}  // namespace aethereal::sim

#endif  // AETHEREAL_SIM_RING_H
