// Engine selection for the simulation kernel.
//
// The kernel ships three engines that produce bit-identical results (proven
// by tests/engine_determinism_test.cpp) at different simulation speeds:
//
//  * kNaive     — the reference semantics: every module evaluates and every
//                 state element commits on every edge. Slow, obviously
//                 correct; the baseline the other engines are checked
//                 against.
//  * kOptimized — idle-module gating + dirty-list commits (DESIGN.md §7):
//                 parked modules are skipped via run lists rebuilt whenever
//                 a module parks or wakes.
//  * kSoa       — the optimized engine's gating expressed over flat
//                 structure-of-arrays scheduling state: per-clock activity
//                 bitmaps scanned eight modules at a time replace the run
//                 list rebuilds, so per-edge cost tracks *activity*, not
//                 instantiated hardware (DESIGN.md §7).
//
// This enum is the single engine-selection currency across the stack:
// SocOptions, scenario specs (`engine naive|optimized|soa`), sweep axes and
// the CLI tools (--engine) all speak EngineKind.
#ifndef AETHEREAL_SIM_ENGINE_H
#define AETHEREAL_SIM_ENGINE_H

#include <optional>
#include <string_view>

namespace aethereal::sim {

enum class EngineKind {
  kNaive,
  kOptimized,
  kSoa,
};

/// Stable lowercase name, matching the spec grammar and --engine values.
constexpr const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kNaive:
      return "naive";
    case EngineKind::kOptimized:
      return "optimized";
    case EngineKind::kSoa:
      return "soa";
  }
  return "unknown";
}

/// Inverse of EngineKindName; nullopt for anything else.
inline std::optional<EngineKind> ParseEngineKind(std::string_view text) {
  if (text == "naive") return EngineKind::kNaive;
  if (text == "optimized") return EngineKind::kOptimized;
  if (text == "soa") return EngineKind::kSoa;
  return std::nullopt;
}

/// The --engine / spec-grammar value set, for help text and error messages.
inline constexpr const char* kEngineKindChoices = "naive|optimized|soa";

}  // namespace aethereal::sim

#endif  // AETHEREAL_SIM_ENGINE_H
