// Engine selection for the simulation kernel.
//
// The kernel ships three engine kinds that produce bit-identical results
// (proven by tests/engine_determinism_test.cpp) at different simulation
// speeds:
//
//  * kNaive     — the reference semantics: every module evaluates and every
//                 state element commits on every edge. Slow, obviously
//                 correct; the baseline the other engines are checked
//                 against.
//  * kOptimized — idle-module gating + dirty-list commits (DESIGN.md §7):
//                 parked modules are skipped via run lists rebuilt whenever
//                 a module parks or wakes.
//  * kSoa       — the optimized engine's gating expressed over flat
//                 structure-of-arrays scheduling state: per-clock activity
//                 bitmaps scanned eight modules at a time replace the run
//                 list rebuilds, so per-edge cost tracks *activity*, not
//                 instantiated hardware (DESIGN.md §7). The only kind that
//                 also runs multi-threaded: with threads > 1 the evaluate
//                 phase is partitioned into mesh regions swept by a
//                 persistent worker pool (sim/parallel.h), still
//                 bit-identical at any thread count.
//
// EngineConfig {kind, threads} is the single engine-selection currency
// across the stack: SocOptions, scenario specs
// (`engine naive|optimized|soa [threads N]`), sweep axes (engine/threads)
// and the CLI tools (--engine / --threads) all speak EngineConfig.
#ifndef AETHEREAL_SIM_ENGINE_H
#define AETHEREAL_SIM_ENGINE_H

#include <optional>
#include <string>
#include <string_view>

namespace aethereal::sim {

enum class EngineKind {
  kNaive,
  kOptimized,
  kSoa,
};

/// Stable lowercase name, matching the spec grammar and --engine values.
constexpr const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kNaive:
      return "naive";
    case EngineKind::kOptimized:
      return "optimized";
    case EngineKind::kSoa:
      return "soa";
  }
  return "unknown";
}

/// Inverse of EngineKindName; nullopt for anything else.
inline std::optional<EngineKind> ParseEngineKind(std::string_view text) {
  if (text == "naive") return EngineKind::kNaive;
  if (text == "optimized") return EngineKind::kOptimized;
  if (text == "soa") return EngineKind::kSoa;
  return std::nullopt;
}

/// The --engine / spec-grammar value set, for help text and error messages.
inline constexpr const char* kEngineKindChoices = "naive|optimized|soa";

/// Upper bound on EngineConfig::threads — far above any sane host, it only
/// exists so a typo'd thread count fails validation instead of spawning a
/// thousand workers.
inline constexpr unsigned kMaxEngineThreads = 64;

/// The full engine selection: which kind, and how many threads step it.
///
/// threads == 1 (the default) is the sequential engine exactly as before.
/// threads > 1 is only meaningful for kSoa — the region-parallel evaluate
/// (sim/parallel.h) is built on the SoA activity bitmaps — and is validated
/// by ValidateEngineConfig(); results are bit-identical at any thread
/// count, so the thread count is a speed knob, never a semantics knob.
struct EngineConfig {
  EngineConfig() = default;
  // Implicit on purpose: EngineKind remains usable anywhere an EngineConfig
  // is expected (`set_engine(EngineKind::kSoa)`, `options.engine = kind`).
  EngineConfig(EngineKind k, unsigned t = 1) : kind(k), threads(t) {}

  EngineKind kind = EngineKind::kOptimized;
  unsigned threads = 1;

  friend bool operator==(const EngineConfig&, const EngineConfig&) = default;
};

/// Human-readable form for summaries and error messages: "soa" or
/// "soa threads 4".
inline std::string EngineConfigName(const EngineConfig& config) {
  std::string name = EngineKindName(config.kind);
  if (config.threads != 1) {
    name += " threads ";
    name += std::to_string(config.threads);
  }
  return name;
}

/// Empty string when valid; otherwise the reason the combination is
/// rejected. Shared by SocOptions::Validate, the spec parser and the CLIs
/// so every layer reports the same rule.
inline std::string ValidateEngineConfig(const EngineConfig& config) {
  switch (config.kind) {
    case EngineKind::kNaive:
    case EngineKind::kOptimized:
    case EngineKind::kSoa:
      break;
    default:
      return "unknown engine kind";
  }
  if (config.threads < 1) {
    return "engine threads must be >= 1";
  }
  if (config.threads > kMaxEngineThreads) {
    return "engine threads must be <= " + std::to_string(kMaxEngineThreads);
  }
  if (config.threads > 1 && config.kind != EngineKind::kSoa) {
    return std::string("engine '") + EngineKindName(config.kind) +
           "' is single-threaded; threads > 1 requires the soa engine "
           "(use `engine soa threads N`)";
  }
  return {};
}

}  // namespace aethereal::sim

#endif  // AETHEREAL_SIM_ENGINE_H
