// Multi-clock, cycle-accurate simulation kernel with two-phase update.
//
// The Æthereal NI explicitly supports a different clock frequency per NI
// port (the hardware FIFOs implement the clock-domain boundary), so the
// kernel models time in integer picoseconds and lets every module belong to
// its own clock domain.
//
// Semantics (see DESIGN.md §6):
//  * At every instant where one or more clocks have a rising edge, the
//    kernel first calls Evaluate() on ALL modules of ALL firing clocks,
//    then Commit() on all of them. Evaluate() may only read *committed*
//    state (registers, FIFO contents) and stage updates; Commit() applies
//    staged updates. Results are therefore independent of module iteration
//    order, exactly like synchronous RTL.
//  * Clocks firing at the same instant are processed together (one
//    evaluate phase, one commit phase) so cross-domain state elements see a
//    consistent picture.
//
// Performance machinery (see DESIGN.md §7): the steady-state hot path makes
// zero heap allocations per edge.
//  * Edge schedule: a single-clock SoC takes a branch-free fast path; a
//    multi-clock SoC keeps its clocks in a preallocated next-edge min-heap,
//    so Step() never scans all clocks and RunUntil() never rescans what
//    Step() is about to compute.
//  * Dirty-list commit: state elements report staging via MarkDirty(); the
//    default Commit() applies only the elements actually written this edge
//    instead of walking every registered TwoPhase.
//  * Idle-module gating: a module with no staged state and no pending work
//    may Park() itself; parked modules are skipped in the evaluate phase
//    until a wire drive, queue push, credit return, or register write
//    Wake()s them. Commit still runs for parked modules (constant time when
//    clean) so staged state always lands at the exact naïve-path edge.
//  * Kill switch: Kernel::set_optimize(false) disables gating and dirty
//    commits (every module runs every edge, every element commits every
//    edge) so optimized and naïve runs can be cross-checked for identical
//    results.
#ifndef AETHEREAL_SIM_KERNEL_H
#define AETHEREAL_SIM_KERNEL_H

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace aethereal::sim {

class Clock;
class Kernel;
class Module;

/// A state element with staged updates applied at the clock edge.
///
/// Elements participating in dirty-list commits must call MarkDirty() every
/// time state is staged. An element whose Commit() leaves work pending for
/// future edges (e.g. a synchronizer with words still in flight) must
/// re-arm by calling MarkDirty() from inside Commit().
class TwoPhase {
 public:
  virtual ~TwoPhase() = default;
  virtual void Commit() = 0;

 protected:
  /// Schedules this element for commit on its owner's next edges (and wakes
  /// the owner if it is parked). No-op when not registered to a module.
  void MarkDirty();

  /// The module this element is registered to (null before RegisterState).
  Module* owner() const { return owner_; }

 private:
  friend class Module;
  Module* owner_ = nullptr;
  bool dirty_ = false;
};

/// Base class for all clocked hardware models.
///
/// Subclasses implement Evaluate() (combinational + staging of next state)
/// and register their state elements with RegisterState() so the default
/// Commit() applies them. Commit() can be overridden for extra work but must
/// call Module::Commit().
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Phase 1: read committed state, stage updates. Called once per edge.
  virtual void Evaluate() = 0;

  /// Phase 2: apply staged updates. Default commits registered state (the
  /// dirty subset, or all of it when optimizations are off).
  virtual void Commit() { CommitState(); }

  const std::string& name() const { return name_; }

  /// The clock this module is registered on (null until registered).
  Clock* clock() const { return clock_; }

  /// Number of edges this module's clock has seen since simulation start.
  Cycle CycleCount() const;  // inline below (hot path)

  /// True while the module is gated off the kernel's run list.
  bool parked() const { return parked_; }

  /// Ensures the module runs from the next edge of its clock onward, and
  /// suppresses Park() for `hold_edges` further edges. Callable by anyone
  /// (producers wake consumers); idempotent and order-independent within an
  /// edge: a wake issued during edge t always defeats a Park() in edge t,
  /// regardless of module iteration order.
  void Wake(Cycle hold_edges = 1);  // inline below (hot path)

 protected:
  void RegisterState(TwoPhase* element);

  /// Commits staged state. With optimizations on, only elements marked
  /// dirty since their last commit are applied; otherwise every registered
  /// element is walked (the naïve reference behaviour).
  void CommitState();

  /// Requests gating off the run list. Granted only when optimizations are
  /// on, no state element is dirty, and no Wake() hold is active. A parked
  /// module skips Evaluate() until the next Wake(); its Commit() still runs
  /// every edge (constant time while nothing is staged).
  void Park();

  /// Park() plus a scheduled wake: if parking is granted, the clock's timer
  /// heap guarantees the module is evaluated again at edge `cycle` (it may
  /// be woken earlier by any other event). For modules that know their next
  /// work time, e.g. periodic traffic sources.
  void ParkUntil(Cycle cycle);

  /// Declares that Evaluate() is an unconditional no-op, so the optimized
  /// engine drops this module from the evaluate run list entirely (links
  /// and NI ports: pure commit machinery). The naïve path still calls it.
  void SetEvaluateIsNoop() { evaluate_noop_ = true; }

  /// Declares that Evaluate() does nothing except on cycles where
  /// CycleCount() % stride == 0 (slot-granular modules: routers, NI
  /// kernels). The optimized engine then calls it only on those cycles.
  void SetEvaluateStride(int stride) {
    AETHEREAL_CHECK(stride >= 1);
    evaluate_stride_ = stride;
  }

  /// Declares that Commit() is exactly the default (commit registered
  /// state, nothing else), allowing the optimized engine to skip the call
  /// entirely on edges where no state element is dirty. Modules that
  /// override Commit() with extra work must not set this.
  void SetDefaultCommitOnly() { always_commit_ = false; }

  /// Declares that every registered state element's Commit() is a no-op
  /// except on edges where CycleCount() % stride == phase, so the
  /// optimized engine only dispatches commits on those edges (links: wires
  /// transfer at the end-of-slot edge only). Expert flag — the claim is
  /// not checked.
  void SetCommitStride(int stride, int phase) {
    AETHEREAL_CHECK(stride >= 1 && phase >= 0 && phase < stride);
    commit_stride_ = stride;
    commit_phase_ = phase;
  }

 private:
  friend class Clock;
  friend class Kernel;
  friend class TwoPhase;
  void AddDirty(TwoPhase* element);  // inline below (hot path)

  std::string name_;
  std::vector<TwoPhase*> state_;
  std::vector<TwoPhase*> dirty_;
  std::vector<TwoPhase*> dirty_scratch_;
  Clock* clock_ = nullptr;
  int clock_index_ = -1;  // slot in the clock's module / pending arrays
  bool parked_ = false;
  bool evaluate_noop_ = false;
  bool always_commit_ = true;
  int evaluate_stride_ = 1;
  int commit_stride_ = 1;
  int commit_phase_ = 0;
  Cycle wake_until_ = -1;  // Park() suppressed while cycles() <= this
};

/// A clock domain: a period in picoseconds and the modules driven by it.
class Clock {
 public:
  Clock(int id, std::string name, Picoseconds period_ps)
      : id_(id), name_(std::move(name)), period_ps_(period_ps) {
    AETHEREAL_CHECK(period_ps > 0);
  }

  void Register(Module* module) {
    AETHEREAL_CHECK_MSG(module->clock_ == nullptr,
                        module->name() << " already registered to a clock");
    module->clock_ = this;
    module->clock_index_ = static_cast<int>(modules_.size());
    modules_.push_back(module);
    // Pending until first commit recomputes it (safe for pre-registration
    // staged state).
    commit_pending_.push_back(1);
    run_every_.reserve(modules_.size());
    run_strided_.reserve(modules_.size());
    run_list_dirty_ = true;
  }

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  Picoseconds period_ps() const { return period_ps_; }

  /// Edges seen so far.
  Cycle cycles() const { return cycles_; }

  /// Time of the next rising edge.
  Picoseconds next_edge_ps() const { return next_edge_ps_; }

  double frequency_ghz() const { return 1000.0 / static_cast<double>(period_ps_); }

 private:
  friend class Kernel;
  friend class Module;

  /// Rebuilds the evaluate run lists (unparked modules, registration order;
  /// stride-1 and strided modules separately) if any module parked or woke
  /// since the last edge. Modules whose Evaluate is a declared no-op are
  /// never listed.
  void RefreshRunList() {
    if (!run_list_dirty_) return;
    run_every_.clear();
    run_strided_.clear();
    uniform_stride_ = 0;
    for (Module* m : modules_) {
      if (m->parked_ || m->evaluate_noop_) continue;
      if (m->evaluate_stride_ == 1) {
        run_every_.push_back(m);
      } else {
        run_strided_.push_back(m);
        if (uniform_stride_ == 0) {
          uniform_stride_ = m->evaluate_stride_;
        } else if (uniform_stride_ != m->evaluate_stride_) {
          uniform_stride_ = -1;  // mixed strides: check per module
        }
      }
    }
    run_list_dirty_ = false;
  }

  void EvaluatePhase() {
    // Wake modules whose scheduled time has come, before the run-list
    // snapshot, so they are evaluated at exactly the edge they asked for.
    while (!timers_.empty() && timers_.front().due <= cycles_) {
      Module* m = timers_.front().module;
      std::pop_heap(timers_.begin(), timers_.end(), TimerAfter);
      timers_.pop_back();
      m->Wake();
    }
    RefreshRunList();
    for (Module* m : run_every_) m->Evaluate();
    if (!run_strided_.empty()) {
      if (uniform_stride_ > 0) {
        // All strided modules share one stride (the common case: the slot
        // length): one check covers the whole list.
        if (cycles_ % uniform_stride_ == 0) {
          for (Module* m : run_strided_) m->Evaluate();
        }
      } else {
        for (Module* m : run_strided_) {
          if (cycles_ % m->evaluate_stride_ == 0) m->Evaluate();
        }
      }
    }
  }

  /// Commit dispatch over the contiguous pending bitmap: the scan touches
  /// a few cache lines instead of every module's dirty list (zero bytes are
  /// skipped eight modules at a time), and the virtual Commit() call
  /// happens only for modules with staged state (or a declared Commit
  /// override), on their declared stride phase.
  void CommitPhase() {
    const std::size_t n = modules_.size();
    std::size_t i = 0;
    while (i < n) {
      if (i + 8 <= n) {
        std::uint64_t chunk;
        std::memcpy(&chunk, commit_pending_.data() + i, 8);
        if (chunk == 0) {
          i += 8;
          continue;
        }
      }
      const std::size_t end = std::min(i + 8, n);
      for (; i < end; ++i) {
        if (!commit_pending_[i]) continue;
        Module* m = modules_[i];
        if (m->commit_stride_ != 1 &&
            cycles_ % m->commit_stride_ != m->commit_phase_) {
          continue;  // still pending; commits on its phase edge
        }
        m->Commit();
        commit_pending_[i] =
            (m->always_commit_ || !m->dirty_.empty()) ? 1 : 0;
      }
    }
  }

  struct Timer {
    Cycle due;
    Module* module;
  };
  static bool TimerAfter(const Timer& a, const Timer& b) {
    return a.due > b.due;
  }
  void AddTimer(Cycle due, Module* module) {
    timers_.push_back(Timer{due, module});
    std::push_heap(timers_.begin(), timers_.end(), TimerAfter);
  }

  int id_;
  std::string name_;
  Picoseconds period_ps_;
  Picoseconds next_edge_ps_ = 0;  // first edge at t=0
  Cycle cycles_ = 0;
  Kernel* kernel_ = nullptr;
  std::vector<Module*> modules_;
  std::vector<Module*> run_every_;    // unparked stride-1 modules
  std::vector<Module*> run_strided_;  // unparked modules with stride > 1
  std::vector<Timer> timers_;         // scheduled wakes (min-heap by due)
  std::vector<unsigned char> commit_pending_;  // parallel to modules_
  int uniform_stride_ = 0;  // shared stride of run_strided_ (-1 if mixed)
  bool run_list_dirty_ = true;
};

/// Owns the clocks and advances simulated time.
class Kernel {
 public:
  Kernel() = default;

  /// Creates a clock with the given period; the kernel keeps ownership.
  Clock* AddClock(std::string name, Picoseconds period_ps);

  /// Convenience: clock from a frequency in MHz (500 MHz -> 2000 ps).
  Clock* AddClockMhz(std::string name, double mhz);

  /// Processes exactly one instant (all clock edges at the earliest pending
  /// time). Returns that time.
  Picoseconds Step();

  /// Runs until simulated time strictly exceeds `until_ps`.
  void RunUntil(Picoseconds until_ps);

  /// Runs `n` edges of the given clock.
  void RunCycles(Clock* clock, Cycle n);

  /// Time of the earliest pending edge across all clocks, without scanning:
  /// O(1) for a single clock, heap-top otherwise.
  Picoseconds NextEdgeTime() const;

  Picoseconds now_ps() const { return now_ps_; }

  /// Kill switch for idle-module gating and dirty-list commits. Must be set
  /// before the first Step(); the edge schedule itself is always on (it is
  /// exactly equivalent scheduling, not an approximation).
  void set_optimize(bool on);
  bool optimize() const { return optimize_; }

 private:
  friend class Module;
  void RebuildHeap() const;

  std::vector<std::unique_ptr<Clock>> clocks_;
  // Next-edge min-heap over (next_edge_ps, clock id) and the scratch list of
  // clocks firing at the current instant; both preallocated so the hot path
  // never allocates. Mutable: lazily rebuilt from const NextEdgeTime().
  mutable std::vector<Clock*> edge_heap_;
  mutable bool heap_dirty_ = false;
  std::vector<Clock*> firing_;
  bool optimize_ = true;
  bool stepped_ = false;
  Picoseconds now_ps_ = 0;
};

// --- hot-path inline definitions (need the complete Clock type) -----------

inline Cycle Module::CycleCount() const {
  AETHEREAL_CHECK(clock_ != nullptr);
  return clock_->cycles_;
}

inline void Module::Wake(Cycle hold_edges) {
  if (clock_ == nullptr) {
    parked_ = false;
    return;
  }
  const Cycle until = clock_->cycles_ + hold_edges;
  if (until > wake_until_) wake_until_ = until;
  if (parked_) {
    parked_ = false;
    clock_->run_list_dirty_ = true;
  }
}

inline void Module::AddDirty(TwoPhase* element) {
  dirty_.push_back(element);
  if (clock_ != nullptr) {
    clock_->commit_pending_[static_cast<std::size_t>(clock_index_)] = 1;
  }
  // Staged state must be committed even if this module was parked or is
  // about to park.
  Wake();
}

inline void TwoPhase::MarkDirty() {
  if (dirty_ || owner_ == nullptr) return;
  dirty_ = true;
  owner_->AddDirty(this);
}

}  // namespace aethereal::sim

#endif  // AETHEREAL_SIM_KERNEL_H
