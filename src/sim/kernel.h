// Multi-clock, cycle-accurate simulation kernel with two-phase update.
//
// The Æthereal NI explicitly supports a different clock frequency per NI
// port (the hardware FIFOs implement the clock-domain boundary), so the
// kernel models time in integer picoseconds and lets every module belong to
// its own clock domain.
//
// Semantics (see DESIGN.md §6):
//  * At every instant where one or more clocks have a rising edge, the
//    kernel first calls Evaluate() on ALL modules of ALL firing clocks,
//    then Commit() on all of them. Evaluate() may only read *committed*
//    state (registers, FIFO contents) and stage updates; Commit() applies
//    staged updates. Results are therefore independent of module iteration
//    order, exactly like synchronous RTL.
//  * Clocks firing at the same instant are processed together (one
//    evaluate phase, one commit phase) so cross-domain state elements see a
//    consistent picture.
//
// Performance machinery (see DESIGN.md §7): the steady-state hot path makes
// zero heap allocations per edge.
//  * Edge schedule: a single-clock SoC takes a branch-free fast path; a
//    multi-clock SoC keeps its clocks in a preallocated next-edge min-heap,
//    so Step() never scans all clocks and RunUntil() never rescans what
//    Step() is about to compute.
//  * Dirty-list commit: state elements report staging via MarkDirty(); the
//    default Commit() applies only the elements actually written this edge
//    instead of walking every registered TwoPhase.
//  * Idle-module gating: a module with no staged state and no pending work
//    may Park() itself; parked modules are skipped in the evaluate phase
//    until a wire drive, queue push, credit return, or register write
//    Wake()s them. Commit still runs for parked modules (constant time when
//    clean) so staged state always lands at the exact naïve-path edge.
//  * Engine selection (sim/engine.h): kNaive disables gating and dirty
//    commits (every module runs every edge, every element commits every
//    edge) so the fast engines can be cross-checked for identical results;
//    kOptimized gates with run lists rebuilt on park/wake; kSoa gates with
//    flat per-clock activity bitmaps scanned eight modules at a time, so
//    idle stretches of a large mesh cost a few cache lines per edge instead
//    of a rebuild-and-walk over every module.
//  * Threaded stepping (sim/parallel.h): EngineConfig{kSoa, threads > 1}
//    splits the SoA evaluate sweep across mesh regions on a persistent
//    worker pool. Evaluate() only reads committed state, so regions can
//    run concurrently; cross-region effects (wire dirty arming, consumer
//    wakes, timers) are buffered per worker and merged deterministically
//    before the — still sequential, still registration-order — commit
//    phase. Results stay bit-identical at any thread count.
#ifndef AETHEREAL_SIM_KERNEL_H
#define AETHEREAL_SIM_KERNEL_H

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "util/check.h"
#include "util/types.h"

namespace aethereal::sim {

class Clock;
class Kernel;
class Module;
class ParallelEngine;
class TwoPhase;

/// Per-worker sink for operations that would touch another region's (or a
/// clock's shared) scheduling state while the threaded SoA engine sweeps
/// regions concurrently (sim/parallel.h). The hot-path hooks below consult
/// `tls_parallel_sink`: null — the permanent state on the main thread
/// outside the parallel evaluate phase, and always for sequential engines —
/// means "apply directly"; non-null means the calling thread is sweeping
/// region `region`, and any effect crossing that region boundary is
/// buffered here instead. The main thread drains the sinks in worker order
/// after the join barrier, so the merged order is a pure function of the
/// partition, never of thread scheduling.
struct ParallelSink {
  int region = -1;

  struct DirtyAtOp {
    TwoPhase* element;
    Cycle due;
  };
  struct WakeOp {
    Module* module;
    Cycle hold_edges;
  };
  struct TimerOp {
    Module* module;
    Cycle due;
  };

  std::vector<TwoPhase*> dirty_now;  // deferred MarkDirty()
  std::vector<DirtyAtOp> dirty_at;   // deferred MarkDirtyAt()
  std::vector<WakeOp> wakes;         // deferred cross-region Wake()
  std::vector<TimerOp> timers;       // deferred ParkUntil() timer arming

  void Clear() {
    dirty_now.clear();
    dirty_at.clear();
    wakes.clear();
    timers.clear();
  }
};

/// See ParallelSink. constinit guarantees trivial TLS initialization, so
/// the hot-path load compiles to a plain thread-pointer-relative read.
extern thread_local constinit ParallelSink* tls_parallel_sink;

/// Host-side wall-time attribution per engine stage, filled while
/// Kernel::EnableProfiling() is armed (bench_speed --profile). Off by
/// default: the hot path pays one pointer check per phase; armed, it pays
/// a few steady_clock reads per edge, so profiled runs measure
/// attribution, not peak speed.
struct EngineProfile {
  std::int64_t steps = 0;      // kernel Step() calls
  double evaluate_sec = 0.0;   // module Evaluate() sweeps
  double commit_sec = 0.0;     // commit dispatch sweeps
  double park_wake_sec = 0.0;  // timer pops + run-list/bitmap upkeep
};

/// A state element with staged updates applied at the clock edge.
///
/// Elements participating in dirty-list commits must call MarkDirty() every
/// time state is staged. An element whose Commit() leaves work pending for
/// future edges (e.g. a synchronizer with words still in flight) must
/// re-arm from inside Commit(): with MarkDirty() if the pending work needs
/// the very next edge, or with MarkDirtyAt(due) if the edge at which the
/// work matures is known in advance (the commit sweep then skips the module
/// entirely until that edge).
class TwoPhase {
 public:
  virtual ~TwoPhase() = default;
  virtual void Commit() = 0;

 protected:
  /// Schedules this element for commit on its owner's next edge (and wakes
  /// the owner if it is parked). No-op when not registered to a module.
  void MarkDirty();

  /// Schedules this element for commit at edge `due` of the owner's clock.
  /// Unlike MarkDirty() this does NOT wake the owner: a future-due element
  /// is bookkeeping in flight, not work the owner could react to yet.
  /// Commit() runs at the first edge >= the earliest due over the owner's
  /// dirty elements, so an element re-armed this way must tolerate being
  /// committed earlier than `due` (and simply find nothing mature).
  void MarkDirtyAt(Cycle due);

  /// The module this element is registered to (null before RegisterState).
  Module* owner() const { return owner_; }

 private:
  friend class Module;
  friend class ParallelEngine;  // sink drains replay MarkDirty/MarkDirtyAt
  Module* owner_ = nullptr;
  bool dirty_ = false;
};

/// Base class for all clocked hardware models.
///
/// Subclasses implement Evaluate() (combinational + staging of next state)
/// and register their state elements with RegisterState() so the default
/// Commit() applies them. Commit() can be overridden for extra work but must
/// call Module::Commit().
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Phase 1: read committed state, stage updates. Called once per edge.
  virtual void Evaluate() = 0;

  /// Phase 2: apply staged updates. Default commits registered state (the
  /// dirty subset, or all of it when optimizations are off).
  virtual void Commit() { CommitState(); }

  const std::string& name() const { return name_; }

  /// The clock this module is registered on (null until registered).
  Clock* clock() const { return clock_; }

  /// This module's slot in its clock's registration order — which is also
  /// the order of the commit sweep. Cross-module latches that are sensitive
  /// to commit order (the CDC synchronizers) key their edge arithmetic off
  /// this. -1 until registered.
  int clock_index() const { return clock_index_; }

  /// Number of edges this module's clock has seen since simulation start.
  Cycle CycleCount() const;  // inline below (hot path)

  /// True while the module is gated off the kernel's run list.
  bool parked() const { return parked_; }

  /// Ensures the module runs from the next edge of its clock onward, and
  /// suppresses Park() for `hold_edges` further edges. Callable by anyone
  /// (producers wake consumers); idempotent and order-independent within an
  /// edge: a wake issued during edge t always defeats a Park() in edge t,
  /// regardless of module iteration order. Wakes max-merge (commutative),
  /// so the threaded engine may buffer and replay them in any order.
  void Wake(Cycle hold_edges = 1);  // inline below (hot path)

  /// The mesh region this module belongs to for threaded stepping
  /// (sim/parallel.h): modules of one region are swept by one worker per
  /// edge. -1 (the default) marks shared infrastructure — wire pools,
  /// observation taps — evaluated sequentially before the fan-out; every
  /// effect staged into a shared or foreign-region module from a worker is
  /// buffered and merged deterministically. A pure partition label: it
  /// never changes what is simulated, only which thread simulates it.
  int region() const { return region_; }
  void set_region(int region) { region_ = region; }

 protected:
  void RegisterState(TwoPhase* element);

  /// Commits staged state. With optimizations on, only elements marked
  /// dirty since their last commit are applied; otherwise every registered
  /// element is walked (the naïve reference behaviour).
  void CommitState();

  /// Requests gating off the run list. Granted only when optimizations are
  /// on, no state element is dirty, and no Wake() hold is active. A parked
  /// module skips Evaluate() until the next Wake(); its Commit() still runs
  /// every edge (constant time while nothing is staged).
  void Park();

  /// Park() plus a scheduled wake: if parking is granted, the clock's timer
  /// heap guarantees the module is evaluated again at edge `cycle` (it may
  /// be woken earlier by any other event). For modules that know their next
  /// work time, e.g. periodic traffic sources.
  void ParkUntil(Cycle cycle);

  /// Declares that Evaluate() is an unconditional no-op, so the optimized
  /// engine drops this module from the evaluate run list entirely (links
  /// and NI ports: pure commit machinery). The naïve path still calls it.
  void SetEvaluateIsNoop();  // inline below (needs the complete Clock type)

  /// Declares that Evaluate() does nothing except on cycles where
  /// CycleCount() % stride == 0 (slot-granular modules: routers, NI
  /// kernels). The optimized engine then calls it only on those cycles.
  void SetEvaluateStride(int stride);  // inline below

  /// Declares that Commit() is exactly the default (commit registered
  /// state, nothing else), allowing the optimized engine to skip the call
  /// entirely on edges where no state element is dirty. Modules that
  /// override Commit() with extra work must not set this.
  void SetDefaultCommitOnly() { always_commit_ = false; }

  /// Declares that every registered state element's Commit() is a no-op
  /// except on edges where CycleCount() % stride == phase, so the
  /// optimized engine only dispatches commits on those edges (links: wires
  /// transfer at the end-of-slot edge only). Expert flag — the claim is
  /// not checked.
  void SetCommitStride(int stride, int phase) {
    AETHEREAL_CHECK(stride >= 1 && phase >= 0 && phase < stride);
    commit_stride_ = stride;
    commit_phase_ = phase;
  }

 private:
  friend class Clock;
  friend class Kernel;
  friend class ParallelEngine;
  friend class TwoPhase;
  void AddDirty(TwoPhase* element, bool parallel);    // inline below
  void AddDirtyAt(TwoPhase* element, Cycle due, bool parallel);
  /// Wake() after the cross-region check: the target is known to be owned
  /// by the calling thread (`parallel` says whether shared clock bitmap
  /// words still need atomic updates because other workers are running).
  void WakeLocal(Cycle hold_edges, bool parallel);    // inline below

  /// commit_due_ value meaning "no dirty element has a known due edge".
  static constexpr Cycle kNeverDue = std::numeric_limits<Cycle>::max();

  /// The commit sweep's fast path for SetDefaultCommitOnly() modules: by
  /// declaration their Commit() is exactly CommitState(), and on the
  /// optimized engines CommitState() is exactly this dirty walk — so the
  /// sweep can call it directly, skipping two virtual hops per module per
  /// edge. Resets commit_due_ first: elements that still have future work
  /// re-arm with their next due during the walk.
  void CommitDirty() {
    commit_due_ = kNeverDue;
    if (dirty_.empty()) return;
    dirty_scratch_.swap(dirty_);
    for (TwoPhase* s : dirty_scratch_) {
      s->dirty_ = false;
      s->Commit();
    }
    dirty_scratch_.clear();
  }

  std::string name_;
  std::vector<TwoPhase*> state_;
  std::vector<TwoPhase*> dirty_;
  std::vector<TwoPhase*> dirty_scratch_;
  Clock* clock_ = nullptr;
  int clock_index_ = -1;  // slot in the clock's module / pending arrays
  bool parked_ = false;
  bool evaluate_noop_ = false;
  bool always_commit_ = true;
  int evaluate_stride_ = 1;
  int commit_stride_ = 1;
  int commit_phase_ = 0;
  // Earliest edge at which a dirty element needs its Commit(). 0 ("due
  // now") whenever anything was staged via MarkDirty(); a future edge when
  // every dirty element re-armed via MarkDirtyAt(); kNeverDue when clean.
  // The commit sweep skips default-commit modules until this edge.
  Cycle commit_due_ = 0;
  Cycle wake_until_ = -1;  // Park() suppressed while cycles() <= this
  int region_ = -1;        // see region(); -1 = shared infrastructure
};

/// A clock domain: a period in picoseconds and the modules driven by it.
class Clock {
 public:
  Clock(int id, std::string name, Picoseconds period_ps)
      : id_(id), name_(std::move(name)), period_ps_(period_ps) {
    AETHEREAL_CHECK(period_ps > 0);
  }

  void Register(Module* module) {
    AETHEREAL_CHECK_MSG(module->clock_ == nullptr,
                        module->name() << " already registered to a clock");
    module->clock_ = this;
    module->clock_index_ = static_cast<int>(modules_.size());
    modules_.push_back(module);
    const std::size_t i = modules_.size() - 1;
    if ((i >> 6) >= commit_bits_.size()) {
      commit_bits_.push_back(0);
      eval_every_bits_.push_back(0);
      eval_strided_bits_.push_back(0);
    }
    // Pending until first commit recomputes it (safe for pre-registration
    // staged state).
    SetBit(commit_bits_, i, true);
    run_every_.reserve(modules_.size());
    run_strided_.reserve(modules_.size());
    NoteEvalStatus(module);
  }

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  Picoseconds period_ps() const { return period_ps_; }

  /// Edges seen so far.
  Cycle cycles() const { return cycles_; }

  /// Time of the next rising edge.
  Picoseconds next_edge_ps() const { return next_edge_ps_; }

  double frequency_ghz() const { return 1000.0 / static_cast<double>(period_ps_); }

 private:
  friend class Kernel;
  friend class Module;
  friend class ParallelEngine;

  /// Rebuilds the evaluate run lists (unparked modules, registration order;
  /// stride-1 and strided modules separately) if any module parked or woke
  /// since the last edge. Modules whose Evaluate is a declared no-op are
  /// never listed. Used by the kOptimized engine; kSoa scans the activity
  /// bitmaps instead and never rebuilds anything.
  void RefreshRunList();

  /// Keeps the SoA activity bytes (and the run-list dirty flag) in sync
  /// with a module's parked / no-op / stride status. Called on every
  /// park-wake transition: the per-clock arrays ARE the schedule, so there
  /// is nothing to rebuild at the next edge. `parallel` = the caller is a
  /// worker inside the threaded evaluate phase: the bitmap words are shared
  /// across regions (64 modules per word), so the read-modify-write must be
  /// atomic. Bit updates are commutative, hence order-free; relaxed order
  /// suffices because the join barrier publishes them before anyone reads.
  void NoteEvalStatus(Module* m, bool parallel = false) {
    run_list_dirty_.store(true, std::memory_order_relaxed);
    const auto i = static_cast<std::size_t>(m->clock_index_);
    if (m->parked_ || m->evaluate_noop_) {
      SetBit(eval_every_bits_, i, false, parallel);
      SetBit(eval_strided_bits_, i, false, parallel);
      return;
    }
    if (m->evaluate_stride_ == 1) {
      SetBit(eval_every_bits_, i, true, parallel);
      SetBit(eval_strided_bits_, i, false, parallel);
    } else {
      SetBit(eval_every_bits_, i, false, parallel);
      SetBit(eval_strided_bits_, i, true, parallel);
      // No data race under threads > 1: every strided module ran through
      // here at registration time, so by the first edge strided_uniform_
      // has converged and a wake can only re-derive the stored value —
      // neither branch below writes.
      if (strided_uniform_ == 0) {
        strided_uniform_ = m->evaluate_stride_;
      } else if (strided_uniform_ != m->evaluate_stride_) {
        strided_uniform_ = -1;  // mixed strides: check per module
      }
    }
  }

  static void SetBit(std::vector<std::uint64_t>& bits, std::size_t i,
                     bool on, bool parallel = false) {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (parallel) {
      std::atomic_ref<std::uint64_t> word(bits[i >> 6]);
      if (on) {
        word.fetch_or(mask, std::memory_order_relaxed);
      } else {
        word.fetch_and(~mask, std::memory_order_relaxed);
      }
      return;
    }
    if (on) {
      bits[i >> 6] |= mask;
    } else {
      bits[i >> 6] &= ~mask;
    }
  }

  void EvaluatePhase();      // kOptimized: run lists
  void EvaluatePhaseSoa();   // kSoa: activity-bitmap sweep
  void RunEvalLists();       // the run-list module sweep of EvaluatePhase
  void RunFlagged(const std::vector<std::uint64_t>& bits,
                  bool per_module_stride);
  void PopDueTimers();
  void CommitPhase();
  void CommitSweep();        // the bitmap dispatch of CommitPhase

  struct Timer {
    Cycle due;
    Module* module;
  };
  static bool TimerAfter(const Timer& a, const Timer& b) {
    return a.due > b.due;
  }
  void AddTimer(Cycle due, Module* module) {
    timers_.push_back(Timer{due, module});
    std::push_heap(timers_.begin(), timers_.end(), TimerAfter);
  }

  int id_;
  std::string name_;
  Picoseconds period_ps_;
  Picoseconds next_edge_ps_ = 0;  // first edge at t=0
  Cycle cycles_ = 0;
  Kernel* kernel_ = nullptr;
  std::vector<Module*> modules_;
  std::vector<Module*> run_every_;    // unparked stride-1 modules
  std::vector<Module*> run_strided_;  // unparked modules with stride > 1
  std::vector<Timer> timers_;         // scheduled wakes (min-heap by due)
  // SoA schedule (kSoa engine) and commit dispatch: one bit per module (bit
  // i of word i/64 covers modules_[i]). The evaluate and commit sweeps walk
  // set bits with countr_zero, so a whole mesh costs a handful of word
  // loads per edge plus work proportional to the number of *active*
  // modules. Maintained incrementally by NoteEvalStatus / AddDirty; bit
  // order equals registration order, so sweep order is unchanged.
  std::vector<std::uint64_t> commit_bits_;
  std::vector<std::uint64_t> eval_every_bits_;   // unparked, stride 1
  std::vector<std::uint64_t> eval_strided_bits_; // unparked, stride > 1
  // Phase-start snapshots the SoA sweep iterates (EvaluatePhaseSoa):
  // mid-sweep wakes mutate the live words above, not the working set.
  std::vector<std::uint64_t> eval_scratch_;
  std::vector<std::uint64_t> eval_scratch_strided_;
  int uniform_stride_ = 0;   // shared stride of run_strided_ (-1 if mixed)
  int strided_uniform_ = 0;  // shared stride over ALL strided modules ever
  // atomic<bool>: workers of the threaded SoA engine set it concurrently on
  // park/wake; relaxed everywhere (it is a rebuild hint, and kOptimized —
  // the only reader — never runs threaded). Same codegen as a plain bool
  // on the sequential paths.
  std::atomic<bool> run_list_dirty_{true};

  /// Region partition of this clock's modules for threaded stepping,
  /// derived lazily from the modules' region labels (sim/parallel.cpp) and
  /// rebuilt whenever the module count changes. region_masks[r] selects the
  /// modules worker r sweeps (same word layout as the activity bitmaps);
  /// shared_mask selects region -1 modules, evaluated on the main thread
  /// before the fan-out, in registration order like every sweep.
  struct RegionSchedule {
    std::size_t built_modules = 0;
    int num_regions = 0;
    std::vector<std::vector<std::uint64_t>> region_masks;
    std::vector<std::uint64_t> shared_mask;
  };
  std::unique_ptr<RegionSchedule> region_sched_;

  EngineProfile* profile_ = nullptr;  // set while the kernel profiles
};

/// Owns the clocks and advances simulated time.
class Kernel {
 public:
  Kernel();   // out of line: ParallelEngine is incomplete here
  ~Kernel();  // ditto

  /// Creates a clock with the given period; the kernel keeps ownership.
  Clock* AddClock(std::string name, Picoseconds period_ps);

  /// Convenience: clock from a frequency in MHz (500 MHz -> 2000 ps).
  Clock* AddClockMhz(std::string name, double mhz);

  /// Processes exactly one instant (all clock edges at the earliest pending
  /// time). Returns that time.
  Picoseconds Step();

  /// Runs until simulated time strictly exceeds `until_ps`.
  void RunUntil(Picoseconds until_ps);

  /// Runs `n` edges of the given clock.
  void RunCycles(Clock* clock, Cycle n);

  /// Time of the earliest pending edge across all clocks, without scanning:
  /// O(1) for a single clock, heap-top otherwise.
  Picoseconds NextEdgeTime() const;

  Picoseconds now_ps() const { return now_ps_; }

  /// Selects the engine (sim/engine.h): kind AND thread count, the single
  /// selection currency. Must be set before the first Step(); the config
  /// must pass ValidateEngineConfig (checked). EngineKind converts
  /// implicitly, so `set_engine(EngineKind::kSoa)` selects a sequential
  /// SoA engine. The edge schedule itself is always on (it is exactly
  /// equivalent scheduling, not an approximation). Every engine and every
  /// thread count produces bit-identical results.
  void set_engine(EngineConfig config);
  const EngineConfig& engine() const { return engine_; }
  EngineKind kind() const { return engine_.kind; }
  unsigned threads() const { return engine_.threads; }

  /// Arms per-stage wall-time attribution (resets any prior counts).
  /// Callable at any point; existing and future clocks both report.
  void EnableProfiling();
  bool profiling() const { return profiling_; }
  const EngineProfile& profile() const { return profile_data_; }

 private:
  friend class Module;
  friend class ParallelEngine;
  void RebuildHeap() const;

  /// Gating engines (kOptimized / kSoa) arm the Park()/dirty-commit
  /// machinery; the naïve reference disables both.
  bool gating() const { return engine_.kind != EngineKind::kNaive; }

  std::vector<std::unique_ptr<Clock>> clocks_;
  // Next-edge min-heap over (next_edge_ps, clock id) and the scratch list of
  // clocks firing at the current instant; both preallocated so the hot path
  // never allocates. Mutable: lazily rebuilt from const NextEdgeTime().
  mutable std::vector<Clock*> edge_heap_;
  mutable bool heap_dirty_ = false;
  std::vector<Clock*> firing_;
  EngineConfig engine_;
  // The worker pool of the threaded SoA engine, spawned lazily at the
  // first Step() so configs that never run never start a thread.
  std::unique_ptr<ParallelEngine> parallel_;
  bool stepped_ = false;
  Picoseconds now_ps_ = 0;
  bool profiling_ = false;
  EngineProfile profile_data_;
};

// --- hot-path inline definitions (need the complete Clock type) -----------

inline Cycle Module::CycleCount() const {
  AETHEREAL_CHECK(clock_ != nullptr);
  return clock_->cycles_;
}

inline void Module::Wake(Cycle hold_edges) {
  ParallelSink* sink = tls_parallel_sink;
  if (sink != nullptr && region_ != sink->region) {
    // Crossing a region boundary mid-parallel-phase: the target module may
    // be evaluating on another thread right now. Wakes max-merge, so
    // buffering and replaying after the join barrier is equivalent.
    sink->wakes.push_back(ParallelSink::WakeOp{this, hold_edges});
    return;
  }
  WakeLocal(hold_edges, sink != nullptr);
}

inline void Module::WakeLocal(Cycle hold_edges, bool parallel) {
  if (clock_ == nullptr) {
    parked_ = false;
    return;
  }
  const Cycle until = clock_->cycles_ + hold_edges;
  if (until > wake_until_) wake_until_ = until;
  if (parked_) {
    parked_ = false;
    clock_->NoteEvalStatus(this, parallel);
  }
}

inline void Module::SetEvaluateIsNoop() {
  evaluate_noop_ = true;
  if (clock_ != nullptr) clock_->NoteEvalStatus(this);
}

inline void Module::SetEvaluateStride(int stride) {
  // The SoA schedule stores strides in one byte per module.
  AETHEREAL_CHECK(stride >= 1 && stride <= 255);
  evaluate_stride_ = stride;
  if (clock_ != nullptr) clock_->NoteEvalStatus(this);
}

inline void Module::AddDirty(TwoPhase* element, bool parallel) {
  dirty_.push_back(element);
  commit_due_ = 0;
  if (clock_ != nullptr) {
    // The commit-bitmap word is shared with up to 63 neighbouring modules
    // of other regions, hence the atomic OR while workers are running.
    Clock::SetBit(clock_->commit_bits_,
                  static_cast<std::size_t>(clock_index_), true, parallel);
  }
  // Staged state must be committed even if this module was parked or is
  // about to park. The caller already resolved the region check (AddDirty
  // only runs for same-region or sequential staging), so wake directly.
  WakeLocal(1, parallel);
}

inline void Module::AddDirtyAt(TwoPhase* element, Cycle due, bool parallel) {
  dirty_.push_back(element);
  if (due < commit_due_) commit_due_ = due;
  if (clock_ != nullptr) {
    Clock::SetBit(clock_->commit_bits_,
                  static_cast<std::size_t>(clock_index_), true, parallel);
  }
  // Deliberately no Wake(): a future-due element is synchronizer traffic in
  // flight, not state the module could evaluate against yet. Whoever makes
  // the traffic visible (the element's own Commit at the due edge) is
  // responsible for waking the parties that can then act on it.
}

inline void TwoPhase::MarkDirty() {
  if (owner_ == nullptr) return;
  ParallelSink* sink = tls_parallel_sink;
  if (sink != nullptr && owner_->region_ != sink->region) {
    // Arming a shared or foreign-region module (wire pools, mostly) during
    // the parallel sweep: its dirty list and flags belong to another
    // worker's — or no worker's — territory. Defer; the drain replays this
    // call on the main thread. Unconditionally: the dirty_ flag itself may
    // not be read here either, and replaying MarkDirty is idempotent.
    sink->dirty_now.push_back(this);
    return;
  }
  if (!dirty_) {
    dirty_ = true;
    owner_->AddDirty(this, sink != nullptr);
  } else if (owner_->commit_due_ != 0) {
    // Already listed, but possibly only for a future edge: pull the
    // owner's next commit forward to the coming edge.
    owner_->commit_due_ = 0;
  }
}

inline void TwoPhase::MarkDirtyAt(Cycle due) {
  if (owner_ == nullptr) return;
  ParallelSink* sink = tls_parallel_sink;
  if (sink != nullptr && owner_->region_ != sink->region) {
    sink->dirty_at.push_back(ParallelSink::DirtyAtOp{this, due});
    return;
  }
  if (!dirty_) {
    dirty_ = true;
    owner_->AddDirtyAt(this, due, sink != nullptr);
  } else if (due < owner_->commit_due_) {
    owner_->commit_due_ = due;
  }
}

}  // namespace aethereal::sim

#endif  // AETHEREAL_SIM_KERNEL_H
