// Multi-clock, cycle-accurate simulation kernel with two-phase update.
//
// The Æthereal NI explicitly supports a different clock frequency per NI
// port (the hardware FIFOs implement the clock-domain boundary), so the
// kernel models time in integer picoseconds and lets every module belong to
// its own clock domain.
//
// Semantics (see DESIGN.md §6):
//  * At every instant where one or more clocks have a rising edge, the
//    kernel first calls Evaluate() on ALL modules of ALL firing clocks,
//    then Commit() on all of them. Evaluate() may only read *committed*
//    state (registers, FIFO contents) and stage updates; Commit() applies
//    staged updates. Results are therefore independent of module iteration
//    order, exactly like synchronous RTL.
//  * Clocks firing at the same instant are processed together (one
//    evaluate phase, one commit phase) so cross-domain state elements see a
//    consistent picture.
#ifndef AETHEREAL_SIM_KERNEL_H
#define AETHEREAL_SIM_KERNEL_H

#include <memory>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/types.h"

namespace aethereal::sim {

class Clock;

/// A state element with staged updates applied at the clock edge.
class TwoPhase {
 public:
  virtual ~TwoPhase() = default;
  virtual void Commit() = 0;
};

/// Base class for all clocked hardware models.
///
/// Subclasses implement Evaluate() (combinational + staging of next state)
/// and register their state elements with RegisterState() so the default
/// Commit() applies them. Commit() can be overridden for extra work but must
/// call Module::Commit().
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Phase 1: read committed state, stage updates. Called once per edge.
  virtual void Evaluate() = 0;

  /// Phase 2: apply staged updates. Default commits registered state.
  virtual void Commit() {
    for (TwoPhase* s : state_) s->Commit();
  }

  const std::string& name() const { return name_; }

  /// The clock this module is registered on (null until registered).
  Clock* clock() const { return clock_; }

  /// Number of edges this module's clock has seen since simulation start.
  Cycle CycleCount() const;

 protected:
  void RegisterState(TwoPhase* element) { state_.push_back(element); }

 private:
  friend class Clock;
  std::string name_;
  std::vector<TwoPhase*> state_;
  Clock* clock_ = nullptr;
};

/// A clock domain: a period in picoseconds and the modules driven by it.
class Clock {
 public:
  Clock(int id, std::string name, Picoseconds period_ps)
      : id_(id), name_(std::move(name)), period_ps_(period_ps) {
    AETHEREAL_CHECK(period_ps > 0);
  }

  void Register(Module* module) {
    AETHEREAL_CHECK_MSG(module->clock_ == nullptr,
                        module->name() << " already registered to a clock");
    module->clock_ = this;
    modules_.push_back(module);
  }

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  Picoseconds period_ps() const { return period_ps_; }

  /// Edges seen so far.
  Cycle cycles() const { return cycles_; }

  /// Time of the next rising edge.
  Picoseconds next_edge_ps() const { return next_edge_ps_; }

  double frequency_ghz() const { return 1000.0 / static_cast<double>(period_ps_); }

 private:
  friend class Kernel;
  int id_;
  std::string name_;
  Picoseconds period_ps_;
  Picoseconds next_edge_ps_ = 0;  // first edge at t=0
  Cycle cycles_ = 0;
  std::vector<Module*> modules_;
};

/// Owns the clocks and advances simulated time.
class Kernel {
 public:
  Kernel() = default;

  /// Creates a clock with the given period; the kernel keeps ownership.
  Clock* AddClock(std::string name, Picoseconds period_ps);

  /// Convenience: clock from a frequency in MHz (500 MHz -> 2000 ps).
  Clock* AddClockMhz(std::string name, double mhz);

  /// Processes exactly one instant (all clock edges at the earliest pending
  /// time). Returns that time.
  Picoseconds Step();

  /// Runs until simulated time strictly exceeds `until_ps`.
  void RunUntil(Picoseconds until_ps);

  /// Runs `n` edges of the given clock.
  void RunCycles(Clock* clock, Cycle n);

  Picoseconds now_ps() const { return now_ps_; }

 private:
  std::vector<std::unique_ptr<Clock>> clocks_;
  Picoseconds now_ps_ = 0;
};

}  // namespace aethereal::sim

#endif  // AETHEREAL_SIM_KERNEL_H
