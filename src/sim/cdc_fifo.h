// Bi-synchronous (clock-domain-crossing) FIFO model.
//
// The Æthereal NI uses its hardware FIFOs to implement the clock-domain
// boundary so every NI port can run at its own frequency (paper §4.1, §5).
// The paper budgets 2 clock cycles for the crossing; this model implements
// that as a 2-reader-edge synchronizer on the write pointer (data becomes
// visible to the reader two of *its* edges after the writer committed it)
// and symmetrically a 2-writer-edge synchronizer on the read pointer (freed
// space becomes visible to the writer two of *its* edges after the pop).
//
// Dirty-list protocol (DESIGN.md §7): each side's adapter arms itself when
// the fifo is staged on that side, and arms the side a synchronizer entry
// is travelling toward *for the exact edge the entry matures* (MarkDirtyAt),
// so neither side commits — and neither owner is kept awake — on the edges
// in between.
//
// Maturity edges are computed in absolute clock cycles. The subtlety is
// that the reference (naïve) engine commits every module every edge in
// registration order, which makes the observed synchronizer delay depend
// on whether the destination side's module commits before or after the
// source side's module within one edge: an entry handed off at edge N is
// picked up the same edge by a destination that commits later in the sweep
// (delay kCdcSyncEdges - 1 strictly-future edges), but only next edge by
// one that commits earlier (delay kCdcSyncEdges). Across different clocks
// the per-clock cycle counters are incremented in firing order, which
// encodes the same information automatically. Both cases reduce to a
// per-fifo constant delta resolved once from the registration order, so
// the absolute stamps reproduce the reference behaviour bit-exactly.
#ifndef AETHEREAL_SIM_CDC_FIFO_H
#define AETHEREAL_SIM_CDC_FIFO_H

#include <utility>

#include "sim/kernel.h"
#include "sim/ring.h"
#include "util/check.h"

namespace aethereal::sim {

/// Synchronizer latency in destination-domain edges (gray-code pointer
/// crossing through a 2-flop synchronizer).
inline constexpr int kCdcSyncEdges = 2;

template <typename T>
class CdcFifo;

/// Adapters so a CdcFifo side can be registered as Module state.
template <typename T>
class CdcWriteSide : public TwoPhase {
 public:
  explicit CdcWriteSide(CdcFifo<T>* fifo);
  void Commit() override;

 private:
  friend class CdcFifo<T>;
  void Arm() { MarkDirty(); }
  void ArmAt(Cycle due) { MarkDirtyAt(due); }
  Module* Owner() const { return owner(); }
  CdcFifo<T>* fifo_;
};

template <typename T>
class CdcReadSide : public TwoPhase {
 public:
  explicit CdcReadSide(CdcFifo<T>* fifo);
  void Commit() override;

 private:
  friend class CdcFifo<T>;
  void Arm() { MarkDirty(); }
  void ArmAt(Cycle due) { MarkDirtyAt(due); }
  Module* Owner() const { return owner(); }
  CdcFifo<T>* fifo_;
};

template <typename T>
class CdcFifo {
 public:
  explicit CdcFifo(int capacity)
      : capacity_(capacity),
        staged_pushes_(capacity),
        pending_space_(capacity),
        in_flight_(capacity),
        visible_(capacity) {
    AETHEREAL_CHECK(capacity > 0);
  }

  int capacity() const { return capacity_; }

  // ---- writer-side interface (call only from the writer's clock domain) --

  /// Space as the writer currently sees it (pessimistic by up to the
  /// synchronizer delay, as in real gray-code FIFOs).
  int WriterSpace() const {
    return capacity_ - writer_occupancy_ - staged_pushes_.size();
  }

  bool CanPush() const { return WriterSpace() > 0; }

  void Push(T value) {
    AETHEREAL_CHECK_MSG(CanPush(), "CdcFifo overflow");
    staged_pushes_.push_back(std::move(value));
    if (write_side_ != nullptr) write_side_->Arm();
  }

  /// Words freed by the reader that the writer has now synchronized but not
  /// yet acknowledged via TakeFreedForWriter(). The NI kernel uses this to
  /// turn destination-queue consumption into end-to-end credits.
  int TakeFreedForWriter() {
    const int freed = freed_for_writer_;
    freed_for_writer_ = 0;
    return freed;
  }

  /// Writer-domain clock edge: commits staged pushes and advances the
  /// read-pointer synchronizer.
  void CommitWriteSide() {
    if (mode_ == Mode::kUnresolved) Resolve();
    if (mode_ == Mode::kAbsolute) {
      const Cycle wnow = wclock_->cycles();
      int freed = 0;
      while (!pending_space_.empty() &&
             pending_space_.front().visible_edge <= wnow) {
        writer_occupancy_ -= pending_space_.front().count;
        freed += pending_space_.front().count;
        pending_space_.pop_front();
      }
      if (freed > 0) {
        freed_for_writer_ += freed;
        // Freed space (and harvestable credits) just became visible on the
        // writer side: the owner may have parked through the synchronizer
        // wait and must evaluate against the new state next edge.
        write_side_->Owner()->Wake();
      }
      if (!staged_pushes_.empty()) {
        const Cycle stamp = rclock_->cycles() + in_flight_delta_;
        do {
          writer_occupancy_ += 1;
          in_flight_.push_back(Entry{staged_pushes_.pop_front(), stamp});
        } while (!staged_pushes_.empty());
        if (read_side_ != nullptr) {
          read_side_->ArmAt(in_flight_.front().visible_edge);
        }
      }
      if (!pending_space_.empty()) {
        write_side_->ArmAt(pending_space_.front().visible_edge);
      }
      return;
    }
    // Unclocked fallback (manually driven fifos, e.g. unit tests): per-side
    // edge counters that advance once per commit call. Pops become visible
    // to the writer kCdcSyncEdges writer edges after they were reported by
    // the reader commit.
    ++writer_edges_;
    while (!pending_space_.empty() &&
           pending_space_.front().visible_edge <= writer_edges_) {
      writer_occupancy_ -= pending_space_.front().count;
      freed_for_writer_ += pending_space_.front().count;
      pending_space_.pop_front();
    }
    const bool handed_off = !staged_pushes_.empty();
    while (!staged_pushes_.empty()) {
      writer_occupancy_ += 1;
      // The value becomes visible to the reader kCdcSyncEdges reader edges
      // from the *next* reader edge.
      in_flight_.push_back(
          Entry{staged_pushes_.pop_front(), reader_edges_ + kCdcSyncEdges});
    }
    // The reader synchronizer now has work; the writer synchronizer may
    // still have space returns in flight toward us.
    if (handed_off && read_side_ != nullptr) read_side_->Arm();
    if (!pending_space_.empty() && write_side_ != nullptr) write_side_->Arm();
  }

  // ---- reader-side interface (call only from the reader's clock domain) --

  /// Committed words visible to the reader this cycle.
  int ReaderSize() const { return visible_.size(); }

  /// Words still poppable this cycle (visible minus pops already staged).
  int ReaderAvailable() const { return ReaderSize() - staged_pops_; }

  bool CanPop() const { return staged_pops_ < ReaderSize(); }

  const T& Peek(int offset = 0) const {
    const int index = staged_pops_ + offset;
    AETHEREAL_CHECK(index < ReaderSize());
    return visible_[index];
  }

  T Pop() {
    AETHEREAL_CHECK_MSG(CanPop(), "CdcFifo underflow");
    T value = visible_[staged_pops_];
    ++staged_pops_;
    if (read_side_ != nullptr) read_side_->Arm();
    return value;
  }

  /// Declares a module to Wake() whenever newly synchronized words become
  /// visible to the reader — lets a consumer park on an empty queue and
  /// still start reading at exactly the first cycle data is readable.
  void SetReadListener(Module* listener) { read_listener_ = listener; }

  /// Reader-domain clock edge: applies pops and advances the write-pointer
  /// synchronizer (newly synchronized words become visible).
  void CommitReadSide() {
    if (mode_ == Mode::kUnresolved) Resolve();
    if (mode_ == Mode::kAbsolute) {
      const Cycle rnow = rclock_->cycles();
      if (staged_pops_ > 0) {
        for (int i = 0; i < staged_pops_; ++i) visible_.pop_front();
        pending_space_.push_back(
            SpaceReturn{staged_pops_, wclock_->cycles() + space_delta_});
        staged_pops_ = 0;
        // The writer synchronizer now has a space return to deliver.
        if (write_side_ != nullptr) {
          write_side_->ArmAt(pending_space_.front().visible_edge);
        }
      }
      bool delivered = false;
      while (!in_flight_.empty() &&
             in_flight_.front().visible_edge <= rnow) {
        visible_.push_back(std::move(in_flight_.front().value));
        in_flight_.pop_front();
        delivered = true;
      }
      if (!in_flight_.empty()) {
        read_side_->ArmAt(in_flight_.front().visible_edge);
      }
      if (delivered) {
        // Wake takes effect next edge — exactly the first edge at which the
        // words committed here are readable. The owner wake covers modules
        // that read their own fifo without a listener registration.
        if (read_listener_ != nullptr) read_listener_->Wake();
        read_side_->Owner()->Wake();
      }
      return;
    }
    ++reader_edges_;
    if (staged_pops_ > 0) {
      for (int i = 0; i < staged_pops_; ++i) visible_.pop_front();
      pending_space_.push_back(
          SpaceReturn{staged_pops_, writer_edges_ + kCdcSyncEdges});
      staged_pops_ = 0;
      // The writer synchronizer now has a space return to deliver.
      if (write_side_ != nullptr) write_side_->Arm();
    }
    bool delivered = false;
    while (!in_flight_.empty() &&
           in_flight_.front().visible_edge <= reader_edges_) {
      visible_.push_back(std::move(in_flight_.front().value));
      in_flight_.pop_front();
      delivered = true;
    }
    if (!in_flight_.empty() && read_side_ != nullptr) read_side_->Arm();
    // Wake takes effect next edge — exactly the first edge at which the
    // words committed here are readable.
    if (delivered && read_listener_ != nullptr) read_listener_->Wake();
  }

 private:
  template <typename U>
  friend class CdcWriteSide;
  template <typename U>
  friend class CdcReadSide;

  struct Entry {
    T value{};
    Cycle visible_edge = 0;  // reader edge count at which this becomes visible
  };
  struct SpaceReturn {
    int count = 0;
    Cycle visible_edge = 0;  // writer edge count at which space is returned
  };

  /// Resolves the stamping mode once both sides are (or are known never to
  /// be) registered to clocked modules. Absolute mode stamps maturity in
  /// clock cycles with the per-fifo delta encoding the commit-sweep order
  /// (see the file comment); the fallback keeps per-call edge counters for
  /// manually driven fifos.
  void Resolve() {
    Module* wm = write_side_ != nullptr ? write_side_->Owner() : nullptr;
    Module* rm = read_side_ != nullptr ? read_side_->Owner() : nullptr;
    if (wm != nullptr && rm != nullptr && wm->clock() != nullptr &&
        rm->clock() != nullptr) {
      wclock_ = wm->clock();
      rclock_ = rm->clock();
      const bool same = wclock_ == rclock_;
      in_flight_delta_ =
          kCdcSyncEdges - 1 +
          ((same && rm->clock_index() < wm->clock_index()) ? 1 : 0);
      space_delta_ =
          kCdcSyncEdges - 1 +
          ((same && wm->clock_index() < rm->clock_index()) ? 1 : 0);
      mode_ = Mode::kAbsolute;
    } else {
      mode_ = Mode::kRelative;
    }
  }

  enum class Mode : unsigned char { kUnresolved, kAbsolute, kRelative };

  int capacity_;
  Mode mode_ = Mode::kUnresolved;
  Clock* wclock_ = nullptr;
  Clock* rclock_ = nullptr;
  Cycle in_flight_delta_ = 0;
  Cycle space_delta_ = 0;
  // Writer side.
  int writer_occupancy_ = 0;  // occupancy as the writer believes it
  int freed_for_writer_ = 0;  // synchronized frees not yet harvested
  Ring<T> staged_pushes_;
  Cycle writer_edges_ = 0;
  Ring<SpaceReturn> pending_space_;
  // Crossing.
  Ring<Entry> in_flight_;
  // Reader side.
  Ring<T> visible_;
  int staged_pops_ = 0;
  Cycle reader_edges_ = 0;
  // Registered adapters (set by the adapter constructors).
  CdcWriteSide<T>* write_side_ = nullptr;
  CdcReadSide<T>* read_side_ = nullptr;
  Module* read_listener_ = nullptr;
};

template <typename T>
CdcWriteSide<T>::CdcWriteSide(CdcFifo<T>* fifo) : fifo_(fifo) {
  AETHEREAL_CHECK(fifo != nullptr);
  AETHEREAL_CHECK_MSG(fifo->write_side_ == nullptr,
                      "CdcFifo already has a write-side adapter");
  fifo->write_side_ = this;
}

template <typename T>
void CdcWriteSide<T>::Commit() {
  fifo_->CommitWriteSide();
}

template <typename T>
CdcReadSide<T>::CdcReadSide(CdcFifo<T>* fifo) : fifo_(fifo) {
  AETHEREAL_CHECK(fifo != nullptr);
  AETHEREAL_CHECK_MSG(fifo->read_side_ == nullptr,
                      "CdcFifo already has a read-side adapter");
  fifo->read_side_ = this;
}

template <typename T>
void CdcReadSide<T>::Commit() {
  fifo_->CommitReadSide();
}

}  // namespace aethereal::sim

#endif  // AETHEREAL_SIM_CDC_FIFO_H
