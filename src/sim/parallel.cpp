#include "sim/parallel.h"

#include <bit>
#include <chrono>

#include "util/check.h"

namespace aethereal::sim {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

std::size_t PopCountWords(const std::vector<std::uint64_t>& bits) {
  std::size_t n = 0;
  for (std::uint64_t w : bits) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

// Park ladder tuning. The fork spin window covers the typical gap between
// edges on a multi-core host (a few microseconds of commit phase); the
// yield window lets an oversubscribed host schedule the main thread; past
// both, the worker sleeps on the condition variable. The join side never
// sleeps: a worker's remaining sweep is short by construction.
constexpr int kForkSpins = 4096;
constexpr int kForkYields = 256;
constexpr int kJoinSpins = 4096;

// Fan-out pays a fork/join barrier (~1-2 us); below this many active
// modules per region an edge is cheaper swept sequentially. Purely a speed
// threshold — both paths produce identical results.
constexpr std::size_t kMinActivePerRegion = 8;

}  // namespace

ParallelEngine::ParallelEngine(unsigned threads) : threads_(threads) {
  AETHEREAL_CHECK(threads_ >= 2 && threads_ <= kMaxEngineThreads);
  sinks_.resize(threads_);
  for (unsigned i = 0; i < threads_; ++i) {
    sinks_[i].region = static_cast<int>(i);
  }
  done_ = std::make_unique<DoneSlot[]>(threads_);
  workers_.reserve(threads_ - 1);
  for (unsigned w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerMain(w); });
  }
}

ParallelEngine::~ParallelEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

Clock::RegionSchedule& ParallelEngine::EnsureSchedule(Clock* clock) {
  if (clock->region_sched_ == nullptr) {
    clock->region_sched_ = std::make_unique<Clock::RegionSchedule>();
  }
  Clock::RegionSchedule& sched = *clock->region_sched_;
  if (sched.built_modules == clock->modules_.size()) return sched;

  int num_regions = 0;
  for (const Module* m : clock->modules_) {
    num_regions = std::max(num_regions, m->region_ + 1);
  }
  // More regions than workers would leave regions unswept; the Soc clamps
  // its partition to the thread count, so this min only catches hand-built
  // testbenches that label regions themselves.
  num_regions = std::min(num_regions, static_cast<int>(threads_));

  const std::size_t words = clock->eval_every_bits_.size();
  sched.num_regions = num_regions;
  sched.region_masks.assign(static_cast<std::size_t>(std::max(num_regions, 1)),
                            {});
  for (auto& mask : sched.region_masks) mask.assign(words, 0);
  sched.shared_mask.assign(words, 0);
  for (std::size_t i = 0; i < clock->modules_.size(); ++i) {
    const int r = clock->modules_[i]->region_;
    std::vector<std::uint64_t>& mask =
        (r >= 0 && r < num_regions)
            ? sched.region_masks[static_cast<std::size_t>(r)]
            : sched.shared_mask;
    mask[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  sched.built_modules = clock->modules_.size();
  return sched;
}

void ParallelEngine::SweepMasked(Clock* clock,
                                 const std::vector<std::uint64_t>& mask,
                                 bool strided_fire) {
  // Same walk as Clock::RunFlagged, restricted to the mask — which has the
  // same word layout and, via EnsureSchedule's rebuild check, the same
  // length as the phase-start snapshots.
  const std::size_t words = clock->eval_scratch_.size();
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t chunk = clock->eval_scratch_[w] & mask[w];
    while (chunk != 0) {
      const int b = std::countr_zero(chunk);
      chunk &= chunk - 1;
      clock->modules_[(w << 6) + static_cast<std::size_t>(b)]->Evaluate();
    }
  }
  if (!strided_fire) return;
  const bool per_module_stride = clock->strided_uniform_ < 0;
  const std::size_t swords = clock->eval_scratch_strided_.size();
  for (std::size_t w = 0; w < swords; ++w) {
    std::uint64_t chunk = clock->eval_scratch_strided_[w] & mask[w];
    while (chunk != 0) {
      const int b = std::countr_zero(chunk);
      chunk &= chunk - 1;
      Module* m = clock->modules_[(w << 6) + static_cast<std::size_t>(b)];
      if (per_module_stride && clock->cycles_ % m->evaluate_stride_ != 0) {
        continue;
      }
      m->Evaluate();
    }
  }
}

void ParallelEngine::RunRegion(unsigned index) {
  if (static_cast<int>(index) >= task_.num_regions) return;
  tls_parallel_sink = &sinks_[index];
  SweepMasked(task_.clock,
              task_.clock->region_sched_->region_masks[index],
              task_.strided_fire);
  tls_parallel_sink = nullptr;
}

void ParallelEngine::WorkerMain(unsigned index) {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t epoch;
    int spins = 0;
    for (;;) {
      epoch = go_epoch_.load(std::memory_order_acquire);
      if (epoch != seen) break;
      if (shutdown_.load(std::memory_order_acquire)) return;
      ++spins;
      if (spins < kForkSpins) {
        CpuRelax();
      } else if (spins < kForkSpins + kForkYields) {
        std::this_thread::yield();
      } else {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] {
          return go_epoch_.load(std::memory_order_relaxed) != seen ||
                 shutdown_.load(std::memory_order_relaxed);
        });
        // Loop back to reload with acquire before acting on either signal.
        spins = 0;
      }
    }
    RunRegion(index);
    seen = epoch;
    done_[index].epoch.store(epoch, std::memory_order_release);
  }
}

void ParallelEngine::Drain(ParallelSink& sink) {
  // Replayed on the main thread (no sink armed), so every deferred call
  // takes the plain sequential path now. Order within a sink is the
  // worker's deterministic sweep order; sinks drain in worker order.
  for (TwoPhase* element : sink.dirty_now) element->MarkDirty();
  for (const ParallelSink::DirtyAtOp& op : sink.dirty_at) {
    op.element->MarkDirtyAt(op.due);
  }
  for (const ParallelSink::WakeOp& op : sink.wakes) {
    op.module->Wake(op.hold_edges);
  }
  for (const ParallelSink::TimerOp& op : sink.timers) {
    op.module->clock_->AddTimer(op.due, op.module);
  }
  sink.Clear();
}

void ParallelEngine::EvaluateClock(Clock* clock) {
  std::chrono::steady_clock::time_point t0;
  std::chrono::steady_clock::time_point t1;
  EngineProfile* prof = clock->profile_;
  if (prof != nullptr) t0 = std::chrono::steady_clock::now();
  clock->PopDueTimers();
  if (prof != nullptr) {
    t1 = std::chrono::steady_clock::now();
    prof->park_wake_sec += std::chrono::duration<double>(t1 - t0).count();
  }

  // Phase-start snapshot, exactly as in Clock::EvaluatePhaseSoa: workers
  // sweep the snapshot while wakes mutate the live words (atomically, see
  // Clock::SetBit) for the next edge.
  clock->eval_scratch_.assign(clock->eval_every_bits_.begin(),
                              clock->eval_every_bits_.end());
  const bool strided_fire =
      clock->strided_uniform_ < 0 ||
      (clock->strided_uniform_ > 0 &&
       clock->cycles_ % clock->strided_uniform_ == 0);
  if (strided_fire) {
    clock->eval_scratch_strided_.assign(clock->eval_strided_bits_.begin(),
                                        clock->eval_strided_bits_.end());
  }

  const Clock::RegionSchedule& sched = EnsureSchedule(clock);
  bool fan_out = sched.num_regions > 1;
  if (fan_out) {
    std::size_t active = PopCountWords(clock->eval_scratch_);
    if (strided_fire) {
      active += PopCountWords(clock->eval_scratch_strided_);
    }
    fan_out = active >= kMinActivePerRegion *
                            static_cast<std::size_t>(sched.num_regions);
  }
  if (!fan_out) {
    // Unpartitioned clock (no region labels) or an edge too idle to repay
    // the barrier: sweep sequentially. Identical results either way.
    clock->RunFlagged(clock->eval_scratch_, /*per_module_stride=*/false);
    if (strided_fire) {
      clock->RunFlagged(clock->eval_scratch_strided_,
                        /*per_module_stride=*/clock->strided_uniform_ < 0);
    }
    if (prof != nullptr) prof->evaluate_sec += SecondsSince(t1);
    return;
  }

  // Shared prologue: monitors, taps and pools evaluate on the main thread
  // before any worker runs (see the protocol note in parallel.h).
  SweepMasked(clock, sched.shared_mask, strided_fire);

  // Fork. task_ and the snapshots are published by the release store of the
  // new epoch; the mutex makes the store visible to workers already inside
  // the cv wait (no missed wakeup).
  task_.clock = clock;
  task_.strided_fire = strided_fire;
  task_.num_regions = sched.num_regions;
  const std::uint64_t epoch = go_epoch_.load(std::memory_order_relaxed) + 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    go_epoch_.store(epoch, std::memory_order_release);
  }
  cv_.notify_all();

  RunRegion(0);

  // Join barrier: every region's evaluates complete (and are published by
  // each worker's release store) before anything merges or commits.
  for (unsigned w = 1; w < threads_; ++w) {
    std::atomic<std::uint64_t>& done = done_[w].epoch;
    int spins = 0;
    while (done.load(std::memory_order_acquire) != epoch) {
      if (++spins < kJoinSpins) {
        CpuRelax();
      } else {
        std::this_thread::yield();
      }
    }
  }

  // Deterministic merge: worker order, then each sink's buffered order.
  for (unsigned w = 0; w < threads_; ++w) Drain(sinks_[w]);

  if (prof != nullptr) prof->evaluate_sec += SecondsSince(t1);
}

}  // namespace aethereal::sim
