// Flat storage for hot simulation state (the SoA engine's data layout).
//
// The optimized engine's remaining cost at large meshes is pointer chasing:
// routers, NI kernels, link wires and channel queues each lived in their own
// heap allocation, so every evaluate/commit sweep hopped between cache lines
// scattered across the heap. The SoA layout packs those objects into
// contiguous slabs so sweeps over the dirty/active sets touch consecutive
// memory (DESIGN.md §7).
//
// Slab<T> is the building block: a fixed-capacity placement-new arena whose
// elements never move. That address stability is load-bearing — modules
// register TwoPhase state elements (and wires register consumers) by
// pointer at construction time, so the container must never relocate them
// the way std::vector does on growth.
#ifndef AETHEREAL_SIM_SOA_STATE_H
#define AETHEREAL_SIM_SOA_STATE_H

#include <cstddef>
#include <new>
#include <utility>

#include "util/check.h"

namespace aethereal::sim {

/// Fixed-capacity arena of T with stable addresses. Elements are
/// constructed in place with Emplace() (up to the capacity given to
/// Reset()) and destroyed in reverse construction order. Non-copyable,
/// non-movable.
template <typename T>
class Slab {
 public:
  Slab() = default;
  explicit Slab(std::size_t capacity) { Reset(capacity); }
  ~Slab() { Release(); }

  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  /// Destroys all elements and reallocates raw storage for `capacity`
  /// elements. Must not be called while element addresses are registered
  /// elsewhere.
  void Reset(std::size_t capacity) {
    Release();
    capacity_ = capacity;
    if (capacity > 0) {
      data_ = static_cast<T*>(::operator new(
          capacity * sizeof(T), std::align_val_t{alignof(T)}));
    }
  }

  /// Constructs the next element in place and returns its (stable) address.
  template <typename... Args>
  T* Emplace(Args&&... args) {
    AETHEREAL_CHECK_MSG(size_ < capacity_, "Slab capacity exhausted");
    T* element = new (data_ + size_) T(std::forward<Args>(args)...);
    ++size_;
    return element;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t index) {
    AETHEREAL_CHECK(index < size_);
    return data_[index];
  }
  const T& operator[](std::size_t index) const {
    AETHEREAL_CHECK(index < size_);
    return data_[index];
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void Release() {
    for (std::size_t i = size_; i > 0; --i) data_[i - 1].~T();
    size_ = 0;
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{alignof(T)});
      data_ = nullptr;
    }
    capacity_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace aethereal::sim

#endif  // AETHEREAL_SIM_SOA_STATE_H
