// Deterministic region-parallel stepping for the SoA engine.
//
// EngineConfig{kSoa, threads > 1} splits each clock's evaluate phase across
// a persistent pool of worker threads. The partition is spatial: the Soc
// labels every module with a mesh region (contiguous router blocks, each
// router bundled with its attached NIs, ports and application modules —
// see Soc's region assignment), and each worker sweeps exactly one
// region's slice of the per-clock activity bitmaps. The commit phase stays
// sequential and in registration order, exactly as on every other engine.
//
// Why this is bit-exact at any thread count (DESIGN.md §7):
//
//  * Evaluate() reads only committed state and stages updates (the §6
//    two-phase contract), so evaluation order within an edge cannot affect
//    results — concurrency is just another order.
//  * Everything a module stages during Evaluate lands in its own region
//    (its queues, registers, its NI's CDC write sides) with one exception:
//    shared infrastructure like the wire pool, plus wakes and timers
//    aimed across a region boundary. Those are buffered in a per-worker
//    ParallelSink (see kernel.h) and replayed on the main thread after the
//    join barrier, in worker order — a pure function of the partition.
//  * The per-clock scheduling bitmaps pack 64 modules per word, so words
//    straddle region boundaries; bit updates issued during the parallel
//    phase use atomic OR/AND (they are commutative, so order-free).
//  * Within-module dirty-element order can differ from the sequential
//    sweep only for the shared wire pool, and wire commits are commutative
//    (each wire owns its latch; consumer-mask bits are ORed; wakes
//    max-merge). Every other module's dirty list is filled by exactly one
//    worker in registration order.
//
// The per-edge protocol (EvaluateClock):
//   1. main: pop due timers, snapshot the activity bitmaps — identical to
//      the sequential SoA phase;
//   2. main: evaluate shared-region modules (monitors, taps, pools) in
//      registration order. They may read other modules' non-two-phase
//      state (stats counters), which is only safe — and only
//      order-identical to the sequential engines, where they are
//      registered first — while no worker runs;
//   3. fork: worker r sweeps snapshot ∩ region_mask[r] (worker 0 is the
//      calling thread, so threads=N uses exactly N threads);
//   4. join barrier — all evaluates complete before anything merges;
//   5. main: drain the per-worker sinks in worker order.
// The caller then runs the ordinary sequential commit phase: the second
// half of the two-phase barrier, applying every staged update in fixed
// module order.
//
// Workers park between edges with a spin → yield → condition-variable
// ladder: on a multi-core host the next fork arrives within the spin
// window, while an oversubscribed host (CI containers with one core)
// degrades to sleeping workers instead of a livelocked spin.
//
// Edges with too little active work to amortize a fork/join (idle or
// drained stretches of a run) fall back to the sequential sweep — a pure
// speed heuristic, invisible in results by the order-independence argument
// above.
#ifndef AETHEREAL_SIM_PARALLEL_H
#define AETHEREAL_SIM_PARALLEL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/kernel.h"

namespace aethereal::sim {

class ParallelEngine {
 public:
  /// Spawns threads - 1 persistent workers (the calling thread is worker
  /// 0). Requires threads >= 2; the kernel only constructs one then.
  explicit ParallelEngine(unsigned threads);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  unsigned threads() const { return threads_; }

  /// The threaded counterpart of Clock::EvaluatePhaseSoa(): timers,
  /// snapshot, shared prologue, region fan-out, join, deterministic sink
  /// merge. Must be called from the kernel's stepping thread only.
  void EvaluateClock(Clock* clock);

 private:
  /// Parameters of the in-flight fan-out, published to workers by the
  /// fork's release/acquire epoch handshake.
  struct Task {
    Clock* clock = nullptr;
    bool strided_fire = false;
    int num_regions = 0;
  };
  /// One cache line per worker so the join spin never bounces a line
  /// between finishing workers.
  struct alignas(64) DoneSlot {
    std::atomic<std::uint64_t> epoch{0};
  };

  /// Lazily (re)derives the clock's region masks from the modules' region
  /// labels. Cheap to check (one size compare); rebuilt only when modules
  /// were registered since the last edge.
  Clock::RegionSchedule& EnsureSchedule(Clock* clock);
  /// Evaluates snapshot ∩ mask in registration order — the unit of work of
  /// both the shared prologue and each region worker.
  void SweepMasked(Clock* clock, const std::vector<std::uint64_t>& mask,
                   bool strided_fire);
  void RunRegion(unsigned index);
  void WorkerMain(unsigned index);
  void Drain(ParallelSink& sink);

  unsigned threads_;
  std::vector<ParallelSink> sinks_;  // one per worker; index == region
  Task task_;
  std::atomic<std::uint64_t> go_epoch_{0};
  std::unique_ptr<DoneSlot[]> done_;
  std::atomic<bool> shutdown_{false};
  std::mutex mu_;                // guards the go-epoch publish for sleepers
  std::condition_variable cv_;
  std::vector<std::thread> workers_;  // threads_ - 1 entries
};

}  // namespace aethereal::sim

#endif  // AETHEREAL_SIM_PARALLEL_H
