#include "sim/kernel.h"

#include <algorithm>
#include <cmath>

namespace aethereal::sim {

namespace {

// Min-heap comparator: std::*_heap build max-heaps, so "greater" yields a
// min-heap. Ties break on clock id so coincident edges pop in id order
// (deterministic, and matches the original all-clocks scan order).
bool EdgeAfter(const Clock* a, const Clock* b) {
  if (a->next_edge_ps() != b->next_edge_ps())
    return a->next_edge_ps() > b->next_edge_ps();
  return a->id() > b->id();
}

}  // namespace

// ---------------------------------------------------------------------------
// Module
// ---------------------------------------------------------------------------

void Module::RegisterState(TwoPhase* element) {
  AETHEREAL_CHECK_MSG(element->owner_ == nullptr,
                      name() << ": state element already registered");
  element->owner_ = this;
  state_.push_back(element);
  // Keep the dirty lists allocation-free at commit time.
  dirty_.reserve(state_.size());
  dirty_scratch_.reserve(state_.size());
}

void Module::CommitState() {
  if (clock_ == nullptr || clock_->kernel_ == nullptr ||
      clock_->kernel_->optimize()) {
    // Dirty-list commit. Elements may re-arm (MarkDirty) from inside
    // Commit(); they then land on the fresh dirty_ list for the next edge,
    // so iterate a swapped-out snapshot.
    if (dirty_.empty()) return;
    dirty_scratch_.swap(dirty_);
    for (TwoPhase* s : dirty_scratch_) {
      s->dirty_ = false;
      s->Commit();
    }
    dirty_scratch_.clear();
  } else {
    // Naïve reference path: commit everything, every edge. Reset the dirty
    // bookkeeping first so re-arms inside Commit() cannot grow it without
    // bound (the flags are meaningless on this path).
    for (TwoPhase* s : dirty_) s->dirty_ = false;
    dirty_.clear();
    for (TwoPhase* s : state_) s->Commit();
  }
}

void Module::Park() {
  if (parked_) return;
  if (clock_ == nullptr || clock_->kernel_ == nullptr ||
      !clock_->kernel_->optimize()) {
    return;
  }
  if (!dirty_.empty()) return;             // staged state must commit first
  if (clock_->cycles_ <= wake_until_) return;  // recent wake holds us awake
  parked_ = true;
  clock_->run_list_dirty_ = true;
}

void Module::ParkUntil(Cycle cycle) {
  Park();
  if (parked_) clock_->AddTimer(cycle, this);
}

// ---------------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------------

Clock* Kernel::AddClock(std::string name, Picoseconds period_ps) {
  clocks_.push_back(std::make_unique<Clock>(
      static_cast<int>(clocks_.size()), std::move(name), period_ps));
  Clock* clock = clocks_.back().get();
  clock->kernel_ = this;
  edge_heap_.reserve(clocks_.size());
  firing_.reserve(clocks_.size());
  heap_dirty_ = true;
  return clock;
}

Clock* Kernel::AddClockMhz(std::string name, double mhz) {
  AETHEREAL_CHECK(mhz > 0.0);
  const auto period = static_cast<Picoseconds>(std::llround(1e6 / mhz));
  return AddClock(std::move(name), period);
}

void Kernel::set_optimize(bool on) {
  AETHEREAL_CHECK_MSG(!stepped_,
                      "set_optimize must be called before the first Step()");
  optimize_ = on;
}

void Kernel::RebuildHeap() const {
  edge_heap_.clear();
  for (const auto& c : clocks_) edge_heap_.push_back(c.get());
  std::make_heap(edge_heap_.begin(), edge_heap_.end(), EdgeAfter);
  heap_dirty_ = false;
}

Picoseconds Kernel::NextEdgeTime() const {
  AETHEREAL_CHECK_MSG(!clocks_.empty(), "no clocks in kernel");
  if (clocks_.size() == 1) return clocks_.front()->next_edge_ps();
  if (heap_dirty_) RebuildHeap();
  return edge_heap_.front()->next_edge_ps();
}

Picoseconds Kernel::Step() {
  AETHEREAL_CHECK_MSG(!clocks_.empty(), "no clocks in kernel");
  stepped_ = true;

  // Single-clock fast path: no scan, no heap, no scratch.
  if (clocks_.size() == 1) {
    Clock* c = clocks_.front().get();
    const Picoseconds t = c->next_edge_ps_;
    if (optimize_) {
      // Parked / no-op / off-stride modules skip Evaluate only. Every
      // module still reaches the commit phase so state staged into it
      // (register writes, synchronizer traffic) lands at exactly the same
      // edge as on the naïve path; the virtual Commit() call is elided for
      // modules with nothing staged.
      c->EvaluatePhase();
      c->CommitPhase();
    } else {
      for (Module* m : c->modules_) m->Evaluate();
      for (Module* m : c->modules_) m->Commit();
    }
    c->cycles_ += 1;
    c->next_edge_ps_ += c->period_ps_;
    now_ps_ = t;
    return t;
  }

  if (heap_dirty_) RebuildHeap();
  const Picoseconds t = edge_heap_.front()->next_edge_ps_;

  // Pop every clock firing at t; pops come out in (time, id) order, so
  // coincident clocks are processed in id order (deterministic).
  firing_.clear();
  while (!edge_heap_.empty() && edge_heap_.front()->next_edge_ps_ == t) {
    std::pop_heap(edge_heap_.begin(), edge_heap_.end(), EdgeAfter);
    firing_.push_back(edge_heap_.back());
    edge_heap_.pop_back();
  }

  // Phase 1: evaluate everything before committing anything. On the
  // optimized path, parked / no-op / off-stride modules are skipped (their
  // Evaluate is a proven no-op).
  if (optimize_) {
    for (Clock* c : firing_) c->EvaluatePhase();
  } else {
    for (Clock* c : firing_) {
      for (Module* m : c->modules_) m->Evaluate();
    }
  }
  // Phase 2: commit. Every module reaches the commit phase — parked ones
  // too — so staged state always lands at the same edge as on the naïve
  // path; on the optimized path the virtual call is elided when clean.
  for (Clock* c : firing_) {
    if (optimize_) {
      c->CommitPhase();
    } else {
      for (Module* m : c->modules_) m->Commit();
    }
    c->cycles_ += 1;
    c->next_edge_ps_ += c->period_ps_;
  }
  for (Clock* c : firing_) {
    edge_heap_.push_back(c);
    std::push_heap(edge_heap_.begin(), edge_heap_.end(), EdgeAfter);
  }
  now_ps_ = t;
  return t;
}

void Kernel::RunUntil(Picoseconds until_ps) {
  AETHEREAL_CHECK_MSG(!clocks_.empty(), "no clocks in kernel");
  while (NextEdgeTime() <= until_ps) Step();
}

void Kernel::RunCycles(Clock* clock, Cycle n) {
  AETHEREAL_CHECK(clock != nullptr);
  const Cycle target = clock->cycles() + n;
  while (clock->cycles() < target) Step();
}

}  // namespace aethereal::sim
