#include "sim/kernel.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace aethereal::sim {

Cycle Module::CycleCount() const {
  AETHEREAL_CHECK(clock_ != nullptr);
  return clock_->cycles();
}

Clock* Kernel::AddClock(std::string name, Picoseconds period_ps) {
  clocks_.push_back(std::make_unique<Clock>(
      static_cast<int>(clocks_.size()), std::move(name), period_ps));
  return clocks_.back().get();
}

Clock* Kernel::AddClockMhz(std::string name, double mhz) {
  AETHEREAL_CHECK(mhz > 0.0);
  const auto period = static_cast<Picoseconds>(std::llround(1e6 / mhz));
  return AddClock(std::move(name), period);
}

Picoseconds Kernel::Step() {
  AETHEREAL_CHECK_MSG(!clocks_.empty(), "no clocks in kernel");
  Picoseconds t = std::numeric_limits<Picoseconds>::max();
  for (const auto& c : clocks_) t = std::min(t, c->next_edge_ps());

  // Gather firing clocks in id order (deterministic).
  std::vector<Clock*> firing;
  for (const auto& c : clocks_) {
    if (c->next_edge_ps() == t) firing.push_back(c.get());
  }
  // Phase 1: evaluate everything before committing anything.
  for (Clock* c : firing) {
    for (Module* m : c->modules_) m->Evaluate();
  }
  // Phase 2: commit.
  for (Clock* c : firing) {
    for (Module* m : c->modules_) m->Commit();
    c->cycles_ += 1;
    c->next_edge_ps_ += c->period_ps_;
  }
  now_ps_ = t;
  return t;
}

void Kernel::RunUntil(Picoseconds until_ps) {
  AETHEREAL_CHECK_MSG(!clocks_.empty(), "no clocks in kernel");
  while (true) {
    Picoseconds t = std::numeric_limits<Picoseconds>::max();
    for (const auto& c : clocks_) t = std::min(t, c->next_edge_ps());
    if (t > until_ps) break;
    Step();
  }
}

void Kernel::RunCycles(Clock* clock, Cycle n) {
  AETHEREAL_CHECK(clock != nullptr);
  const Cycle target = clock->cycles() + n;
  while (clock->cycles() < target) Step();
}

}  // namespace aethereal::sim
