#include "sim/kernel.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "sim/parallel.h"

namespace aethereal::sim {

thread_local constinit ParallelSink* tls_parallel_sink = nullptr;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Min-heap comparator: std::*_heap build max-heaps, so "greater" yields a
// min-heap. Ties break on clock id so coincident edges pop in id order
// (deterministic, and matches the original all-clocks scan order).
bool EdgeAfter(const Clock* a, const Clock* b) {
  if (a->next_edge_ps() != b->next_edge_ps())
    return a->next_edge_ps() > b->next_edge_ps();
  return a->id() > b->id();
}

}  // namespace

// ---------------------------------------------------------------------------
// Module
// ---------------------------------------------------------------------------

void Module::RegisterState(TwoPhase* element) {
  AETHEREAL_CHECK_MSG(element->owner_ == nullptr,
                      name() << ": state element already registered");
  element->owner_ = this;
  state_.push_back(element);
  // Keep the dirty lists allocation-free at commit time.
  dirty_.reserve(state_.size());
  dirty_scratch_.reserve(state_.size());
}

void Module::CommitState() {
  if (clock_ == nullptr || clock_->kernel_ == nullptr ||
      clock_->kernel_->gating()) {
    // Dirty-list commit. Elements may re-arm (MarkDirty / MarkDirtyAt)
    // from inside Commit(); they then land on the fresh dirty_ list for a
    // coming edge, so iterate a swapped-out snapshot.
    CommitDirty();
  } else {
    // Naïve reference path: commit everything, every edge. Reset the dirty
    // bookkeeping first so re-arms inside Commit() cannot grow it without
    // bound (the flags are meaningless on this path).
    for (TwoPhase* s : dirty_) s->dirty_ = false;
    dirty_.clear();
    for (TwoPhase* s : state_) s->Commit();
  }
}

void Module::Park() {
  if (parked_) return;
  if (clock_ == nullptr || clock_->kernel_ == nullptr ||
      !clock_->kernel_->gating()) {
    return;
  }
  // State staged for the coming edge must commit before the module sleeps
  // (the imminent commit may expose work). Elements armed only for FUTURE
  // edges (synchronizer traffic in flight) do not block parking: the commit
  // sweep visits parked modules too, and the maturing element wakes every
  // party that can act on the delivery.
  if (commit_due_ <= clock_->cycles_) return;
  if (clock_->cycles_ <= wake_until_) return;  // recent wake holds us awake
  parked_ = true;
  // A module only parks itself (Park is protected), so under threaded
  // stepping the caller is exactly this module's region worker; only the
  // shared bitmap words need atomic updates.
  clock_->NoteEvalStatus(this, tls_parallel_sink != nullptr);
}

void Module::ParkUntil(Cycle cycle) {
  Park();
  if (!parked_) return;
  // The timer heap is clock-global: always buffer it during the parallel
  // sweep. A park granted here that the sequential interleaving would have
  // denied (a cross-region wake still sitting in another worker's sink)
  // leaves a spurious timer behind; that timer only re-issues an idempotent
  // Wake at `cycle`, so results are unaffected.
  if (ParallelSink* sink = tls_parallel_sink; sink != nullptr) {
    sink->timers.push_back(ParallelSink::TimerOp{this, cycle});
    return;
  }
  clock_->AddTimer(cycle, this);
}

// ---------------------------------------------------------------------------
// Clock phases
// ---------------------------------------------------------------------------

void Clock::RefreshRunList() {
  if (!run_list_dirty_.load(std::memory_order_relaxed)) return;
  run_every_.clear();
  run_strided_.clear();
  uniform_stride_ = 0;
  for (Module* m : modules_) {
    if (m->parked_ || m->evaluate_noop_) continue;
    if (m->evaluate_stride_ == 1) {
      run_every_.push_back(m);
    } else {
      run_strided_.push_back(m);
      if (uniform_stride_ == 0) {
        uniform_stride_ = m->evaluate_stride_;
      } else if (uniform_stride_ != m->evaluate_stride_) {
        uniform_stride_ = -1;  // mixed strides: check per module
      }
    }
  }
  run_list_dirty_.store(false, std::memory_order_relaxed);
}

void Clock::PopDueTimers() {
  // Wake modules whose scheduled time has come, before the schedule is
  // consulted, so they are evaluated at exactly the edge they asked for.
  while (!timers_.empty() && timers_.front().due <= cycles_) {
    Module* m = timers_.front().module;
    std::pop_heap(timers_.begin(), timers_.end(), TimerAfter);
    timers_.pop_back();
    m->Wake();
  }
}

void Clock::EvaluatePhase() {
  if (profile_ != nullptr) {
    const auto t0 = std::chrono::steady_clock::now();
    PopDueTimers();
    RefreshRunList();
    const auto t1 = std::chrono::steady_clock::now();
    profile_->park_wake_sec +=
        std::chrono::duration<double>(t1 - t0).count();
    RunEvalLists();
    profile_->evaluate_sec += SecondsSince(t1);
    return;
  }
  PopDueTimers();
  RefreshRunList();
  RunEvalLists();
}

void Clock::RunEvalLists() {
  for (Module* m : run_every_) m->Evaluate();
  if (!run_strided_.empty()) {
    if (uniform_stride_ > 0) {
      // All strided modules share one stride (the common case: the slot
      // length): one check covers the whole list.
      if (cycles_ % uniform_stride_ == 0) {
        for (Module* m : run_strided_) m->Evaluate();
      }
    } else {
      for (Module* m : run_strided_) {
        if (cycles_ % m->evaluate_stride_ == 0) m->Evaluate();
      }
    }
  }
}

// The SoA evaluate sweep: instead of rebuilding run lists whenever a module
// parks or wakes (an O(modules) walk that large meshes trigger every few
// edges), scan the per-clock activity bytes maintained incrementally by
// NoteEvalStatus. Fully parked 8-module blocks cost one 64-bit load, so the
// per-edge cost tracks how much of the mesh is awake, not how much exists.
//
// The sweep walks a phase-start snapshot of the live bitmap, never the live
// words themselves. A module woken mid-sweep by an earlier module's
// Evaluate (a wire drive, a queue push) therefore runs at the NEXT edge,
// exactly like the run-list engine — its Evaluate this edge would be a
// proven no-op anyway (the inputs that woke it are staged, not committed),
// but under contention those no-op arbitration scans are real host work:
// on a saturated best-effort mesh every router wake-chains its downstream
// neighbours, and sweeping the live words re-evaluated about half of them
// a second time per slot edge.
void Clock::RunFlagged(const std::vector<std::uint64_t>& bits,
                       bool per_module_stride) {
  const std::size_t words = bits.size();
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t chunk = bits[w];
    while (chunk != 0) {
      const int b = std::countr_zero(chunk);
      chunk &= chunk - 1;
      Module* m = modules_[(w << 6) + static_cast<std::size_t>(b)];
      if (per_module_stride && cycles_ % m->evaluate_stride_ != 0) continue;
      m->Evaluate();
    }
  }
}

void Clock::EvaluatePhaseSoa() {
  std::chrono::steady_clock::time_point t0;
  std::chrono::steady_clock::time_point t1;
  if (profile_ != nullptr) t0 = std::chrono::steady_clock::now();
  PopDueTimers();
  if (profile_ != nullptr) {
    t1 = std::chrono::steady_clock::now();
    profile_->park_wake_sec +=
        std::chrono::duration<double>(t1 - t0).count();
  }
  // Snapshot the activity words before running anything: wakes issued by
  // modules evaluated this phase land in the live bitmap for the next
  // edge (see RunFlagged). assign() reuses capacity — no steady-state
  // allocation. The strided words are only copied on a boundary edge.
  eval_scratch_.assign(eval_every_bits_.begin(), eval_every_bits_.end());
  const bool strided_fire =
      strided_uniform_ < 0 ||
      (strided_uniform_ > 0 && cycles_ % strided_uniform_ == 0);
  if (strided_fire) {
    eval_scratch_strided_.assign(eval_strided_bits_.begin(),
                                 eval_strided_bits_.end());
  }
  RunFlagged(eval_scratch_, /*per_module_stride=*/false);
  if (strided_fire) {
    RunFlagged(eval_scratch_strided_,
               /*per_module_stride=*/strided_uniform_ < 0);
  }
  if (profile_ != nullptr) profile_->evaluate_sec += SecondsSince(t1);
}

// Commit dispatch over the contiguous pending bitmap: the scan touches a
// few cache lines instead of every module's dirty list (zero bytes are
// skipped eight modules at a time), and the virtual Commit() call happens
// only for modules with staged state (or a declared Commit override), on
// their declared stride phase.
void Clock::CommitPhase() {
  if (profile_ != nullptr) {
    const auto t0 = std::chrono::steady_clock::now();
    CommitSweep();
    profile_->commit_sec += SecondsSince(t0);
    return;
  }
  CommitSweep();
}

void Clock::CommitSweep() {
  const std::size_t words = commit_bits_.size();
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t chunk = commit_bits_[w];
    while (chunk != 0) {
      const int b = std::countr_zero(chunk);
      const std::uint64_t bit = chunk & (~chunk + 1);
      chunk &= chunk - 1;
      Module* m = modules_[(w << 6) + static_cast<std::size_t>(b)];
      if (m->always_commit_) {
        m->Commit();  // overridden Commit(): must stay a virtual call
        continue;     // bit stays set: commits every edge
      }
      if (m->commit_due_ > cycles_) {
        continue;  // every dirty element matures at a known future edge
      }
      if (m->commit_stride_ != 1 &&
          cycles_ % m->commit_stride_ != m->commit_phase_) {
        continue;  // still pending; commits on its phase edge
      }
      // Clear before committing: any element re-armed from inside the
      // commit (self re-arm or a cross-module ArmAt) goes through
      // AddDirty/AddDirtyAt, which sets the live bit again.
      commit_bits_[w] &= ~bit;
      m->CommitDirty();
    }
  }
}

// ---------------------------------------------------------------------------
// Kernel
// ---------------------------------------------------------------------------

Kernel::Kernel() = default;
Kernel::~Kernel() = default;

Clock* Kernel::AddClock(std::string name, Picoseconds period_ps) {
  clocks_.push_back(std::make_unique<Clock>(
      static_cast<int>(clocks_.size()), std::move(name), period_ps));
  Clock* clock = clocks_.back().get();
  clock->kernel_ = this;
  if (profiling_) clock->profile_ = &profile_data_;
  edge_heap_.reserve(clocks_.size());
  firing_.reserve(clocks_.size());
  heap_dirty_ = true;
  return clock;
}

Clock* Kernel::AddClockMhz(std::string name, double mhz) {
  AETHEREAL_CHECK(mhz > 0.0);
  const auto period = static_cast<Picoseconds>(std::llround(1e6 / mhz));
  return AddClock(std::move(name), period);
}

void Kernel::EnableProfiling() {
  profiling_ = true;
  profile_data_ = EngineProfile{};
  for (const auto& c : clocks_) c->profile_ = &profile_data_;
}

void Kernel::set_engine(EngineConfig config) {
  AETHEREAL_CHECK_MSG(!stepped_,
                      "set_engine must be called before the first Step()");
  const std::string error = ValidateEngineConfig(config);
  AETHEREAL_CHECK_MSG(error.empty(), "invalid engine config: " << error);
  engine_ = config;
}

void Kernel::RebuildHeap() const {
  edge_heap_.clear();
  for (const auto& c : clocks_) edge_heap_.push_back(c.get());
  std::make_heap(edge_heap_.begin(), edge_heap_.end(), EdgeAfter);
  heap_dirty_ = false;
}

Picoseconds Kernel::NextEdgeTime() const {
  AETHEREAL_CHECK_MSG(!clocks_.empty(), "no clocks in kernel");
  if (clocks_.size() == 1) return clocks_.front()->next_edge_ps();
  if (heap_dirty_) RebuildHeap();
  return edge_heap_.front()->next_edge_ps();
}

Picoseconds Kernel::Step() {
  AETHEREAL_CHECK_MSG(!clocks_.empty(), "no clocks in kernel");
  if (!stepped_) {
    stepped_ = true;
    // Spawn the worker pool on the first step, not at set_engine: a config
    // that never runs never starts a thread.
    if (engine_.kind == EngineKind::kSoa && engine_.threads > 1) {
      parallel_ = std::make_unique<ParallelEngine>(engine_.threads);
    }
  }
  if (profiling_) profile_data_.steps += 1;

  // Single-clock fast path: no scan, no heap, no scratch.
  if (clocks_.size() == 1) {
    Clock* c = clocks_.front().get();
    const Picoseconds t = c->next_edge_ps_;
    if (engine_.kind == EngineKind::kSoa) {
      if (parallel_ != nullptr) {
        parallel_->EvaluateClock(c);
      } else {
        c->EvaluatePhaseSoa();
      }
      c->CommitPhase();
    } else if (engine_.kind == EngineKind::kOptimized) {
      // Parked / no-op / off-stride modules skip Evaluate only. Every
      // module still reaches the commit phase so state staged into it
      // (register writes, synchronizer traffic) lands at exactly the same
      // edge as on the naïve path; the virtual Commit() call is elided for
      // modules with nothing staged.
      c->EvaluatePhase();
      c->CommitPhase();
    } else if (profiling_) {
      const auto t0 = std::chrono::steady_clock::now();
      for (Module* m : c->modules_) m->Evaluate();
      const auto t1 = std::chrono::steady_clock::now();
      profile_data_.evaluate_sec +=
          std::chrono::duration<double>(t1 - t0).count();
      for (Module* m : c->modules_) m->Commit();
      profile_data_.commit_sec += SecondsSince(t1);
    } else {
      for (Module* m : c->modules_) m->Evaluate();
      for (Module* m : c->modules_) m->Commit();
    }
    c->cycles_ += 1;
    c->next_edge_ps_ += c->period_ps_;
    now_ps_ = t;
    return t;
  }

  if (heap_dirty_) RebuildHeap();
  const Picoseconds t = edge_heap_.front()->next_edge_ps_;

  // Pop every clock firing at t; pops come out in (time, id) order, so
  // coincident clocks are processed in id order (deterministic).
  firing_.clear();
  while (!edge_heap_.empty() && edge_heap_.front()->next_edge_ps_ == t) {
    std::pop_heap(edge_heap_.begin(), edge_heap_.end(), EdgeAfter);
    firing_.push_back(edge_heap_.back());
    edge_heap_.pop_back();
  }

  // Phase 1: evaluate everything before committing anything. On the
  // gated paths, parked / no-op / off-stride modules are skipped (their
  // Evaluate is a proven no-op).
  if (engine_.kind == EngineKind::kSoa) {
    for (Clock* c : firing_) {
      if (parallel_ != nullptr) {
        parallel_->EvaluateClock(c);
      } else {
        c->EvaluatePhaseSoa();
      }
    }
  } else if (engine_.kind == EngineKind::kOptimized) {
    for (Clock* c : firing_) c->EvaluatePhase();
  } else if (profiling_) {
    const auto t0 = std::chrono::steady_clock::now();
    for (Clock* c : firing_) {
      for (Module* m : c->modules_) m->Evaluate();
    }
    profile_data_.evaluate_sec += SecondsSince(t0);
  } else {
    for (Clock* c : firing_) {
      for (Module* m : c->modules_) m->Evaluate();
    }
  }
  // Phase 2: commit. Every module reaches the commit phase — parked ones
  // too — so staged state always lands at the same edge as on the naïve
  // path; on the gated paths the virtual call is elided when clean.
  const bool time_naive_commit = profiling_ && !gating();
  std::chrono::steady_clock::time_point commit_t0;
  if (time_naive_commit) commit_t0 = std::chrono::steady_clock::now();
  for (Clock* c : firing_) {
    if (gating()) {
      c->CommitPhase();
    } else {
      for (Module* m : c->modules_) m->Commit();
    }
    c->cycles_ += 1;
    c->next_edge_ps_ += c->period_ps_;
  }
  if (time_naive_commit) profile_data_.commit_sec += SecondsSince(commit_t0);
  for (Clock* c : firing_) {
    edge_heap_.push_back(c);
    std::push_heap(edge_heap_.begin(), edge_heap_.end(), EdgeAfter);
  }
  now_ps_ = t;
  return t;
}

void Kernel::RunUntil(Picoseconds until_ps) {
  AETHEREAL_CHECK_MSG(!clocks_.empty(), "no clocks in kernel");
  while (NextEdgeTime() <= until_ps) Step();
}

void Kernel::RunCycles(Clock* clock, Cycle n) {
  AETHEREAL_CHECK(clock != nullptr);
  const Cycle target = clock->cycles() + n;
  while (clock->cycles() < target) Step();
}

}  // namespace aethereal::sim
