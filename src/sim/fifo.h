// Synchronous FIFO and register models with two-phase update semantics.
//
// These model the "custom-made hardware fifos" of the NI kernel (paper
// Section 4.1/5): readers see only state committed at the previous clock
// edge; pushes and pops staged during Evaluate() take effect at Commit().
//
// Both models participate in the dirty-list commit protocol (DESIGN.md §7):
// staging marks the element dirty; a commit with nothing staged is never
// required, so committed-but-idle queues cost nothing per edge.
#ifndef AETHEREAL_SIM_FIFO_H
#define AETHEREAL_SIM_FIFO_H

#include <utility>

#include "sim/kernel.h"
#include "sim/ring.h"
#include "util/check.h"

namespace aethereal::sim {

/// Single-clock FIFO. A word pushed at edge t is visible to the reader at
/// edge t+1. Same-edge push+pop is allowed; a pop frees space for a
/// same-edge push (flow-through space accounting, as in the Æthereal
/// hardware FIFOs which support simultaneous read and write access).
template <typename T>
class Fifo : public TwoPhase {
 public:
  explicit Fifo(int capacity)
      : capacity_(capacity), committed_(capacity), staged_pushes_(capacity) {
    AETHEREAL_CHECK(capacity > 0);
  }

  int capacity() const { return capacity_; }

  /// Committed occupancy (what a reader sees this cycle).
  int Size() const { return committed_.size(); }

  /// Occupancy after this edge's staged pushes/pops commit.
  int SizeAfterCommit() const {
    return Size() - staged_pops_ + staged_pushes_.size();
  }

  bool Empty() const { return committed_.empty(); }
  bool Full() const { return SizeAfterCommit() >= capacity_; }

  /// True if a push staged now will fit after commit.
  bool CanPush() const { return SizeAfterCommit() < capacity_; }

  /// True if another pop can be staged this cycle (data present).
  bool CanPop() const { return staged_pops_ < Size(); }

  /// Peek the element `offset` places behind the head, accounting for pops
  /// already staged this cycle.
  const T& Peek(int offset = 0) const {
    const int index = staged_pops_ + offset;
    AETHEREAL_CHECK_MSG(index < Size(), "Fifo::Peek past committed contents");
    return committed_[index];
  }

  /// Stage a push; takes effect at Commit().
  void Push(T value) {
    AETHEREAL_CHECK_MSG(CanPush(), "Fifo overflow (capacity " << capacity_ << ")");
    staged_pushes_.push_back(std::move(value));
    MarkDirty();
  }

  /// Stage a pop and return the popped value.
  T Pop() {
    AETHEREAL_CHECK_MSG(CanPop(), "Fifo underflow");
    T value = committed_[staged_pops_];
    ++staged_pops_;
    MarkDirty();
    return value;
  }

  void Commit() override {
    for (int i = 0; i < staged_pops_; ++i) committed_.pop_front();
    staged_pops_ = 0;
    while (!staged_pushes_.empty()) {
      committed_.push_back(staged_pushes_.pop_front());
    }
  }

  /// Drops all contents immediately (reset; not a hardware path).
  void Reset() {
    committed_.clear();
    staged_pushes_.clear();
    staged_pops_ = 0;
  }

 private:
  int capacity_;
  Ring<T> committed_;
  Ring<T> staged_pushes_;
  int staged_pops_ = 0;
};

/// A register: Get() returns the value committed at the last edge; Set()
/// stages the next value.
template <typename T>
class Register : public TwoPhase {
 public:
  Register() = default;
  explicit Register(T reset) : value_(reset), next_(reset) {}

  const T& Get() const { return value_; }
  void Set(T value) {
    next_ = std::move(value);
    MarkDirty();
  }

  void Commit() override { value_ = next_; }

 private:
  T value_{};
  T next_{};
};

}  // namespace aethereal::sim

#endif  // AETHEREAL_SIM_FIFO_H
