// Combined guaranteed-throughput / best-effort router model.
//
// Semantics follow the Æthereal router (Rijpkema et al., DATE 2003 — the
// paper's reference [21]), which the NI paper builds on:
//
//  * GT flits travel on pipelined TDM circuits: a flit injected in slot s
//    traverses one link per slot. Because the (centralized) allocator
//    reserves consecutive slots along the path, GT switching is
//    contention-free: the router forwards a GT flit to its output in the
//    same slot it arrives, with no arbitration and no buffering. The router
//    carries no slot table (paper §4.3: centralized configuration lets slot
//    tables be removed from routers); it checks the no-contention invariant
//    instead and treats a violation as a fatal configuration bug.
//
//  * BE flits are buffered per input and switched wormhole-style: a header
//    flit arbitrates (round-robin) for its output; the winning packet owns
//    the output until its end-of-packet flit. GT always preempts BE at slot
//    boundaries. Link-level credit flow control bounds the BE input buffers
//    ("this scheme has smaller packet buffers, and, hence, lower
//    implementation cost", paper §2).
#ifndef AETHEREAL_ROUTER_ROUTER_H
#define AETHEREAL_ROUTER_ROUTER_H

#include <cstdint>
#include <vector>

#include "link/flit.h"
#include "link/wire.h"
#include "sim/fifo.h"
#include "sim/kernel.h"
#include "util/types.h"

namespace aethereal::fault {
class FaultInjector;
}

namespace aethereal::router {

struct RouterConfig {
  int num_ports = 0;
  int be_buffer_flits = 8;  // BE input buffer depth, in flits
};

struct RouterStats {
  std::int64_t gt_flits = 0;         // GT flits forwarded
  std::int64_t be_flits = 0;         // BE flits forwarded
  std::int64_t be_packets = 0;       // BE header flits forwarded
  std::int64_t be_blocked_credit = 0;  // slots a BE head stalled for credits
  std::int64_t be_blocked_gt = 0;      // slots a BE head was preempted by GT
  std::int64_t be_max_occupancy = 0;   // max BE input-buffer fill seen (flits)
};

class Router : public sim::Module {
 public:
  Router(std::string name, RouterId id, const RouterConfig& config);

  /// Wires the inbound link of `port`: the router samples `wires->data` and
  /// drives `wires->credit_return` (returning BE buffer space upstream).
  void ConnectInput(int port, link::LinkWires* wires);

  /// Wires the outbound link of `port`: the router drives `wires->data` and
  /// samples `wires->credit_return`. `downstream_be_capacity` initializes
  /// the BE credit counter (the peer's BE input buffer size in flits; use a
  /// large value for NI-bound links, which always sink flits because
  /// end-to-end flow control already guarantees destination-queue space).
  void ConnectOutput(int port, link::LinkWires* wires,
                     int downstream_be_capacity);

  void Evaluate() override;

  RouterId id() const { return id_; }
  const RouterStats& stats() const { return stats_; }

  /// Arms fault injection (DESIGN.md §12). During a stall window the router
  /// stops accepting NEW packets (arriving headers are dropped whole, with
  /// link credits returned for discarded BE flits) and grants no new BE
  /// wormholes; in-flight continuations complete and credits keep flowing,
  /// so the datapath contract with neighbors is never violated.
  void SetFaultInjector(fault::FaultInjector* injector) {
    fault_ = injector;
  }

  /// BE credits currently available toward the peer of `port`.
  int OutputCredits(int port) const;

 private:
  /// A buffered BE flit with its routing decision (the output port derived
  /// from the header path when the flit was accepted; the header itself was
  /// rewritten with the consumed path for the next router).
  struct BufferedBeFlit {
    link::Flit flit;
    int target = kInvalidId;
  };

  bool IsSlotBoundary() const { return CycleCount() % kFlitWords == 0; }
  /// Returns true if any input carried a flit this slot.
  bool AcceptInputs(std::vector<link::Flit>& gt_out, bool frozen);
  void ForwardGt(int input, const link::Flit& flit, int target,
                 std::vector<link::Flit>& gt_out);
  void BufferBe(int input, const link::Flit& flit, int target);
  void ArbitrateBestEffort(const std::vector<link::Flit>& gt_out,
                           bool frozen);

  RouterId id_;
  RouterConfig config_;

  struct InputState {
    link::LinkWires* wires = nullptr;
    sim::Fifo<BufferedBeFlit> be_queue;
    int gt_target = kInvalidId;         // output of the in-progress GT packet
    int be_accept_target = kInvalidId;  // target of the BE packet being received
    int be_drain_target = kInvalidId;   // output of the BE packet being sent
    int credits_freed_this_slot = 0;
    bool gt_discard = false;  // dropping a GT packet begun during a stall
    bool be_discard = false;  // dropping a BE packet begun during a stall
    explicit InputState(int capacity) : be_queue(capacity) {}
  };
  struct OutputState {
    link::LinkWires* wires = nullptr;
    int be_credits = 0;
    int be_owner_input = kInvalidId;  // wormhole ownership
    int rr_pointer = 0;               // round-robin arbitration state
  };

  std::vector<InputState> inputs_;
  std::vector<OutputState> outputs_;
  // Per-slot GT crossbar scratch, preallocated so Evaluate() never touches
  // the heap (it used to build a fresh std::vector<Flit> every slot).
  // gt_out_ports_ lists the scratch entries holding a flit this slot, so
  // clearing and driving walk only the occupied ports (at most one per
  // input) instead of all of them.
  std::vector<link::Flit> gt_out_scratch_;
  std::vector<int> gt_out_ports_;
  // Activity summaries for the slot fast path: total BE flits resident in
  // the input buffers (staged or committed) and open BE wormholes. When
  // both are zero and no flit arrived, the whole BE pipeline — arbitration,
  // credit returns, buffered-work check — is provably a no-op this slot.
  int be_flits_buffered_ = 0;
  int open_wormholes_ = 0;
  // Wire pending masks (bit = port), set by SlotWire when it latches a
  // driven value (link/wire.h SetConsumerBit): the slot sweep polls two
  // words instead of sampling every connected port's wires.
  std::uint32_t inputs_pending_ = 0;   // data arrived on input port
  std::uint32_t credits_pending_ = 0;  // credits returned on output port
  RouterStats stats_;
  fault::FaultInjector* fault_ = nullptr;
};

}  // namespace aethereal::router

#endif  // AETHEREAL_ROUTER_ROUTER_H
