#include "router/router.h"

#include <algorithm>
#include <bit>

#include "fault/injector.h"
#include "link/header.h"
#include "util/check.h"

namespace aethereal::router {

using link::Flit;
using link::FlitKind;
using link::PacketHeader;

Router::Router(std::string name, RouterId id, const RouterConfig& config)
    : sim::Module(std::move(name)), id_(id), config_(config) {
  AETHEREAL_CHECK(config.num_ports > 0 && config.num_ports <= 32);
  AETHEREAL_CHECK(config.be_buffer_flits > 0);
  SetEvaluateStride(kFlitWords);  // all work happens at slot boundaries
  SetDefaultCommitOnly();
  inputs_.reserve(static_cast<std::size_t>(config.num_ports));
  outputs_.resize(static_cast<std::size_t>(config.num_ports));
  gt_out_scratch_.resize(static_cast<std::size_t>(config.num_ports),
                         Flit::Idle());
  for (int p = 0; p < config.num_ports; ++p) {
    inputs_.emplace_back(config.be_buffer_flits);
    RegisterState(&inputs_.back().be_queue);
  }
}

void Router::ConnectInput(int port, link::LinkWires* wires) {
  AETHEREAL_CHECK(port >= 0 && port < config_.num_ports);
  AETHEREAL_CHECK(wires != nullptr);
  inputs_[static_cast<std::size_t>(port)].wires = wires;
  // Flits arriving on this link must find us running, and flag their port
  // so the slot sweep samples only ports that latched something.
  wires->data.SetConsumer(this);
  wires->data.SetConsumerBit(&inputs_pending_, port);
}

void Router::ConnectOutput(int port, link::LinkWires* wires,
                           int downstream_be_capacity) {
  AETHEREAL_CHECK(port >= 0 && port < config_.num_ports);
  AETHEREAL_CHECK(wires != nullptr);
  AETHEREAL_CHECK(downstream_be_capacity > 0);
  auto& out = outputs_[static_cast<std::size_t>(port)];
  out.wires = wires;
  out.be_credits = downstream_be_capacity;
  // Credits returned by the downstream peer must find us running, and flag
  // their port so the slot sweep samples only ports with returns latched.
  wires->credit_return.SetConsumer(this);
  wires->credit_return.SetConsumerBit(&credits_pending_, port);
}

int Router::OutputCredits(int port) const {
  AETHEREAL_CHECK(port >= 0 && port < config_.num_ports);
  return outputs_[static_cast<std::size_t>(port)].be_credits;
}

void Router::Evaluate() {
  if (!IsSlotBoundary()) return;

  // Collect returned BE credits from downstream (only the ports whose
  // credit wire latched a return this slot are flagged).
  const bool credits_arrived = credits_pending_ != 0;
  while (credits_pending_ != 0) {
    const int p = std::countr_zero(credits_pending_);
    credits_pending_ &= credits_pending_ - 1;
    auto& out = outputs_[static_cast<std::size_t>(p)];
    out.be_credits += out.wires->credit_return.Sample();
  }

  // Phase A: accept arriving flits. GT flits are switched through
  // immediately; BE flits go to the input buffers. During a fault stall
  // window the router accepts no NEW packets: arriving headers (and their
  // continuations) are dropped whole, with link credits returned for the
  // discarded BE flits; packets already in flight complete normally.
  const bool frozen =
      fault_ != nullptr && fault_->RouterStalled(id_, CycleCount());
  for (const int p : gt_out_ports_) {
    gt_out_scratch_[static_cast<std::size_t>(p)] = Flit::Idle();
  }
  gt_out_ports_.clear();
  const bool flits_arrived = AcceptInputs(gt_out_scratch_, frozen);

  // Slot fast path: nothing arrived and the BE pipeline is empty, so there
  // is nothing to switch, arbitrate, drain or acknowledge — the remaining
  // phases are no-ops by construction.
  if (!flits_arrived && be_flits_buffered_ == 0 && open_wormholes_ == 0) {
    if (!credits_arrived) Park();
    return;
  }

  // Phase B: BE wormhole arbitration on the outputs GT left free.
  ArbitrateBestEffort(gt_out_scratch_, frozen);

  // Phase C: return one link-level credit per BE flit drained from each
  // input buffer this slot.
  bool credits_returned = false;
  bool be_buffered = false;
  for (auto& in : inputs_) {
    if (in.wires != nullptr && in.credits_freed_this_slot > 0) {
      in.wires->credit_return.Drive(in.credits_freed_this_slot);
      credits_returned = true;
    }
    in.credits_freed_this_slot = 0;
    if (in.be_queue.Size() > 0) be_buffered = true;
  }

  // A slot in which nothing arrived, nothing was buffered, and nothing was
  // driven cannot be followed by local work: any future work begins with a
  // wire drive, which wakes us.
  if (!flits_arrived && !credits_arrived && !credits_returned &&
      !be_buffered) {
    Park();
  }
}

bool Router::AcceptInputs(std::vector<Flit>& gt_out, bool frozen) {
  const bool any = inputs_pending_ != 0;
  while (inputs_pending_ != 0) {
    const auto i =
        static_cast<std::size_t>(std::countr_zero(inputs_pending_));
    inputs_pending_ &= inputs_pending_ - 1;
    auto& in = inputs_[i];
    const Flit& flit = in.wires->data.Sample();

    // Continuations of a packet whose header was dropped during a stall
    // window are discarded until (and including) its EOP, so downstream
    // never sees a half-open packet.
    if (flit.kind == FlitKind::kPayload &&
        (flit.gt ? in.gt_discard : in.be_discard)) {
      if (flit.eop) (flit.gt ? in.gt_discard : in.be_discard) = false;
      if (!flit.gt) in.credits_freed_this_slot += 1;
      fault_->NoteRouterStallDrop(id_, CycleCount(), flit.gt,
                                  /*is_header=*/false, flit.valid_words);
      continue;
    }

    if (frozen && flit.kind == FlitKind::kHeader) {
      if (flit.gt) {
        in.gt_discard = !flit.eop;
      } else {
        in.be_discard = !flit.eop;
        in.credits_freed_this_slot += 1;
      }
      fault_->NoteRouterStallDrop(id_, CycleCount(), flit.gt,
                                  /*is_header=*/true, flit.valid_words - 1);
      continue;
    }

    if (flit.kind == FlitKind::kHeader) {
      PacketHeader header = PacketHeader::Decode(flit.words[0]);
      AETHEREAL_CHECK_MSG(flit.gt == header.gt,
                          name() << ": GT sideband disagrees with header");
      AETHEREAL_CHECK_MSG(!header.path.Exhausted(),
                          name() << ": packet with exhausted path at input "
                                 << i);
      const int target = header.path.NextHop();
      AETHEREAL_CHECK_MSG(target >= 0 && target < config_.num_ports,
                          name() << ": path selects port " << target
                                 << " of " << config_.num_ports);
      header.path = header.path.Consume();
      Flit forwarded = flit;
      forwarded.words[0] = header.Encode();

      if (header.gt) {
        ForwardGt(static_cast<int>(i), forwarded, target, gt_out);
        in.gt_target = flit.eop ? kInvalidId : target;
      } else {
        BufferBe(static_cast<int>(i), forwarded, target);
        in.be_accept_target = flit.eop ? kInvalidId : target;
      }
    } else {
      // Payload flit: the sideband traffic class selects which in-progress
      // packet on this input it continues. GT packets occupy consecutive
      // slots, so a GT payload can never be mistaken for a BE one.
      if (flit.gt) {
        AETHEREAL_CHECK_MSG(in.gt_target != kInvalidId,
                            name() << ": orphan GT payload flit at input " << i);
        ForwardGt(static_cast<int>(i), flit, in.gt_target, gt_out);
        if (flit.eop) in.gt_target = kInvalidId;
      } else {
        AETHEREAL_CHECK_MSG(in.be_accept_target != kInvalidId,
                            name() << ": orphan BE payload flit at input " << i);
        BufferBe(static_cast<int>(i), flit, in.be_accept_target);
        if (flit.eop) in.be_accept_target = kInvalidId;
      }
    }
  }
  return any;
}

void Router::ForwardGt(int input, const Flit& flit, int target,
                       std::vector<Flit>& gt_out) {
  AETHEREAL_CHECK_MSG(
      gt_out[static_cast<std::size_t>(target)].IsIdle(),
      name() << ": GT slot contention on output " << target << " (input "
             << input << ") — slot allocation is corrupt");
  AETHEREAL_CHECK_MSG(outputs_[static_cast<std::size_t>(target)].wires != nullptr,
                      name() << ": GT flit to unconnected output " << target);
  gt_out[static_cast<std::size_t>(target)] = flit;
  gt_out_ports_.push_back(target);
  ++stats_.gt_flits;
}

void Router::BufferBe(int input, const Flit& flit, int target) {
  auto& in = inputs_[static_cast<std::size_t>(input)];
  AETHEREAL_CHECK_MSG(in.be_queue.CanPush(),
                      name() << ": BE buffer overflow at input " << input
                             << " — link credit protocol violated");
  in.be_queue.Push(BufferedBeFlit{flit, target});
  ++be_flits_buffered_;
  stats_.be_max_occupancy =
      std::max(stats_.be_max_occupancy,
               static_cast<std::int64_t>(in.be_queue.SizeAfterCommit()));
}

void Router::ArbitrateBestEffort(const std::vector<Flit>& gt_out,
                                 bool frozen) {
  // GT-only fast path: with no BE flits buffered and no open wormholes,
  // the only possible action per output is driving a switched GT flit —
  // and those outputs are exactly the ones listed in gt_out_ports_.
  // (be_blocked_gt cannot tick: it requires an owner, hence an open
  // wormhole.)
  if (be_flits_buffered_ == 0 && open_wormholes_ == 0) {
    for (const int o : gt_out_ports_) {
      outputs_[static_cast<std::size_t>(o)].wires->data.Drive(
          gt_out[static_cast<std::size_t>(o)]);
    }
    return;
  }

  for (int o = 0; o < config_.num_ports; ++o) {
    auto& out = outputs_[static_cast<std::size_t>(o)];
    if (out.wires == nullptr) continue;
    const Flit& gt_flit = gt_out[static_cast<std::size_t>(o)];
    if (!gt_flit.IsIdle()) {
      out.wires->data.Drive(gt_flit);
      if (out.be_owner_input != kInvalidId) ++stats_.be_blocked_gt;
      continue;
    }

    // Wormhole: continue the packet owning this output, if any.
    if (out.be_owner_input != kInvalidId) {
      auto& in = inputs_[static_cast<std::size_t>(out.be_owner_input)];
      if (!in.be_queue.CanPop()) continue;  // bubble inside the packet
      const BufferedBeFlit& head = in.be_queue.Peek();
      AETHEREAL_CHECK_MSG(head.flit.kind == FlitKind::kPayload &&
                              head.target == o,
                          name() << ": BE packet interleaving on input "
                                 << out.be_owner_input);
      if (out.be_credits <= 0) {
        ++stats_.be_blocked_credit;
        continue;
      }
      const BufferedBeFlit entry = in.be_queue.Pop();
      --be_flits_buffered_;
      in.credits_freed_this_slot += 1;
      out.be_credits -= 1;
      out.wires->data.Drive(entry.flit);
      ++stats_.be_flits;
      if (entry.flit.eop) {
        out.be_owner_input = kInvalidId;
        in.be_drain_target = kInvalidId;
        --open_wormholes_;
      }
      continue;
    }

    // Free output: round-robin among inputs whose head is a header flit
    // routed to this output. A stalled router grants no new wormholes (the
    // arbiter is frozen); buffered headers wait out the window.
    if (frozen) continue;
    for (int k = 0; k < config_.num_ports; ++k) {
      const int i = (out.rr_pointer + k) % config_.num_ports;
      auto& in = inputs_[static_cast<std::size_t>(i)];
      if (in.be_drain_target != kInvalidId) continue;  // busy with a packet
      if (!in.be_queue.CanPop()) continue;
      const BufferedBeFlit& head = in.be_queue.Peek();
      if (head.flit.kind != FlitKind::kHeader || head.target != o) continue;
      if (out.be_credits <= 0) {
        ++stats_.be_blocked_credit;
        break;  // head-of-line blocked on credits; no other packet may jump
      }
      const BufferedBeFlit entry = in.be_queue.Pop();
      --be_flits_buffered_;
      in.credits_freed_this_slot += 1;
      out.be_credits -= 1;
      out.wires->data.Drive(entry.flit);
      ++stats_.be_flits;
      ++stats_.be_packets;
      if (!entry.flit.eop) {
        out.be_owner_input = i;
        in.be_drain_target = o;
        ++open_wormholes_;
      }
      out.rr_pointer = (i + 1) % config_.num_ports;
      break;
    }
  }
}

}  // namespace aethereal::router
