// E1 (paper §5): synthesized-area figures of the NI components at 0.13 um,
// 500 MHz, and their scaling with instance parameters.
//
// Regenerates the paper's numbers from the calibrated analytical area model
// (the RTL synthesis flow is substituted per DESIGN.md), then sweeps the
// design-time parameters the paper says are XML-configurable: queue depth,
// channels per port, and slot-table size.
#include <iostream>

#include "analysis/area_model.h"
#include "bench/common.h"
#include "core/params.h"
#include "util/table.h"

using namespace aethereal;
using analysis::AreaModel;

namespace {

void PaperTable() {
  bench::PrintHeader(
      "E1a: component areas (mm^2, 0.13um, 500 MHz)",
      "Paper §5: kernel 0.110; narrowcast 0.004; multi-connection 0.007; "
      "DTL master 0.005; DTL slave 0.002;\nconfig shell 0.010; 4-port "
      "example total 0.143.");
  const auto ref = core::NiKernelParams::PaperReferenceInstance();
  const auto kernel = AreaModel::NiKernel(ref);
  Table table({"component", "paper mm^2", "model mm^2"});
  table.AddRow({"NI kernel (8 ch, 8x32b queues, STU 8)", "0.110",
                Table::Fmt(kernel.total_mm2, 3)});
  table.AddRow({"  - queues (custom hw fifos)", "-",
                Table::Fmt(kernel.queues_mm2, 3)});
  table.AddRow({"  - per-channel credit ctrs/regs", "-",
                Table::Fmt(kernel.per_channel_mm2, 3)});
  table.AddRow({"  - slot table + scheduler", "-",
                Table::Fmt(kernel.stu_mm2, 3)});
  table.AddRow({"  - pck/depck/control", "-",
                Table::Fmt(kernel.base_mm2, 3)});
  table.AddRow({"narrowcast shell (2 slaves)", "0.004",
                Table::Fmt(AreaModel::Narrowcast(2), 3)});
  table.AddRow({"multi-connection shell (4 conn)", "0.007",
                Table::Fmt(AreaModel::MultiConnection(4), 3)});
  table.AddRow({"DTL master shell", "0.005",
                Table::Fmt(AreaModel::DtlMaster(), 3)});
  table.AddRow({"DTL slave shell", "0.002",
                Table::Fmt(AreaModel::DtlSlave(), 3)});
  table.AddRow({"configuration shell", "0.010",
                Table::Fmt(AreaModel::ConfigShell(), 3)});
  table.AddRow({"4-port example NI total", "0.143",
                Table::Fmt(AreaModel::PaperExampleTotal(), 3)});
  table.Print(std::cout);
}

void QueueDepthSweep() {
  bench::PrintHeader("E1b: kernel area vs queue depth",
                     "Queue storage dominates NI area (the paper's reason "
                     "for area-efficient custom FIFOs).");
  Table table({"queue words", "kernel mm^2", "queues mm^2", "queue share %"});
  for (int words : {4, 8, 16, 32, 64}) {
    auto params = core::NiKernelParams::PaperReferenceInstance();
    for (auto& port : params.ports) {
      for (auto& ch : port.channels) {
        ch.source_queue_words = words;
        ch.dest_queue_words = words;
      }
    }
    const auto a = AreaModel::NiKernel(params);
    table.AddRow({Table::Fmt(static_cast<std::int64_t>(words)),
                  Table::Fmt(a.total_mm2, 3), Table::Fmt(a.queues_mm2, 3),
                  Table::Fmt(100.0 * a.queues_mm2 / a.total_mm2, 1)});
  }
  table.Print(std::cout);
}

void ChannelSweep() {
  bench::PrintHeader("E1c: kernel area vs number of channels",
                     "Modular design-time instantiation: pay only for the "
                     "connections configured.");
  Table table({"channels", "kernel mm^2", "mm^2 per channel"});
  for (int channels : {1, 2, 4, 8, 16, 32}) {
    core::NiKernelParams params;
    core::PortParams port;
    port.channels.assign(static_cast<std::size_t>(channels),
                         core::ChannelParams{});
    params.ports.push_back(port);
    const auto a = AreaModel::NiKernel(params);
    table.AddRow({Table::Fmt(static_cast<std::int64_t>(channels)),
                  Table::Fmt(a.total_mm2, 3),
                  Table::Fmt(a.total_mm2 / channels, 4)});
  }
  table.Print(std::cout);
}

void TechnologySweep() {
  bench::PrintHeader("E1d: technology scaling (first-order)",
                     "The 0.143 mm^2 / 500 MHz point is the paper's 0.13um "
                     "prototype; classic shrink projections follow.");
  Table table({"node nm", "example NI mm^2", "est. frequency MHz"});
  for (double node : {180.0, 130.0, 90.0, 65.0, 45.0}) {
    table.AddRow({Table::Fmt(node, 0),
                  Table::Fmt(AreaModel::ScaleToNode(
                                 AreaModel::PaperExampleTotal(), node),
                             4),
                  Table::Fmt(AreaModel::FrequencyMhzAtNode(node), 0)});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  std::cout << "bench_area — reproduces paper §5 area results (E1)\n";
  PaperTable();
  QueueDepthSweep();
  ChannelSweep();
  TechnologySweep();
  return 0;
}
